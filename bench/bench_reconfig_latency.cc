// Reproduces paper §5.1's reconfiguration-latency measurement: OCSTrx
// hardware switch (60-80 us), fast-switch (preloaded session) vs cold
// (control-plane) switching, and node-level session application. Uses
// Google Benchmark when available, else the vendored bench/microbench.h
// harness (same API subset), so the target always builds.
#if defined(IHBD_HAVE_GOOGLE_BENCHMARK)
#include <benchmark/benchmark.h>
#else
#include "bench/microbench.h"
#endif

#include "src/common/rng.h"
#include "src/evsim/engine.h"
#include "src/ocstrx/fabric_manager.h"
#include "src/ocstrx/transceiver.h"

using namespace ihbd;
using ocstrx::OcsPath;

namespace {

void BM_HardwareReconfigLatency(benchmark::State& state) {
  ocstrx::Transceiver trx(0);
  Rng rng(1);
  double total = 0.0;
  std::int64_t n = 0;
  bool flip = false;
  for (auto _ : state) {
    const auto latency = trx.reconfigure_now(
        flip ? OcsPath::kExternal1 : OcsPath::kExternal2, rng);
    flip = !flip;
    total += *latency;
    ++n;
    benchmark::DoNotOptimize(latency);
  }
  state.counters["sim_latency_us"] =
      benchmark::Counter(total / n * 1e6);
}
BENCHMARK(BM_HardwareReconfigLatency);

void BM_FastSwitchVsCold(benchmark::State& state) {
  const bool preloaded = state.range(0) != 0;
  ocstrx::Transceiver trx(0);
  Rng rng(1);
  double total = 0.0;
  std::int64_t n = 0;
  bool flip = false;
  for (auto _ : state) {
    const auto latency = trx.reconfigure_now(
        flip ? OcsPath::kExternal1 : OcsPath::kLoopback, rng, preloaded);
    flip = !flip;
    total += *latency;
    ++n;
  }
  state.counters["sim_latency_us"] = benchmark::Counter(total / n * 1e6);
}
BENCHMARK(BM_FastSwitchVsCold)->Arg(1)->Arg(0);

void BM_NodeSessionSwitch(benchmark::State& state) {
  // A full node steering all bundles between two preloaded topologies.
  ocstrx::NodeFabricManager fm(4, 4, 8);
  ocstrx::Session ring, park;
  for (std::uint32_t b = 0; b < 4; ++b) {
    ring[b] = b < 2 ? OcsPath::kExternal1 : OcsPath::kLoopback;
    park[b] = OcsPath::kLoopback;
  }
  fm.preload_session("ring", ring);
  fm.preload_session("park", park);
  Rng rng(1);
  double total = 0.0;
  std::int64_t n = 0;
  bool flip = false;
  for (auto _ : state) {
    const auto latency = fm.apply_session(flip ? "ring" : "park", rng);
    flip = !flip;
    total += *latency;
    ++n;
  }
  state.counters["sim_latency_us"] = benchmark::Counter(total / n * 1e6);
}
BENCHMARK(BM_NodeSessionSwitch);

void BM_EventDrivenBundleSteer(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    ocstrx::Bundle bundle(0, 0, 1, 8);
    evsim::Engine engine;
    bundle.steer_async(engine, OcsPath::kExternal2, rng, true);
    engine.run();
    benchmark::DoNotOptimize(engine.now());
  }
}
BENCHMARK(BM_EventDrivenBundleSteer);

}  // namespace

BENCHMARK_MAIN();
