// Always-on control-plane soak bench (the daemon of src/ctrl): fleet-scale
// sweeps of the event-driven orchestration service, reporting the SLOs an
// operator would page on — p50/p99/p999 job-wait and OCS reconfiguration
// latency — plus event throughput and churn counters.
//
// Each (cell, trial) is one full daemon run: a paper-calibrated fault trace
// (--trace-model poisson|physics|storm) and a Poisson job workload are
// generated from the trial's RNG substream, then ControlPlane::run()
// consumes every event up to the horizon. Full mode's largest cell (10,240
// nodes at 75% offered load over 96 days) processes >= 1M engine events in
// a single run.
//
// The Inject axis exercises the retry/backoff path: at a 10% session-switch
// failure rate every run still completes — failed steers back off, retry,
// and eventually dead-letter, while jobs start on their last good placement
// (degraded). The degraded-mode SLO split is reported separately.
//
// Runs on runtime::run_sweep_reduce with a ControlPlaneResult shard codec:
// the SLO tables are byte-identical for any --threads value and any
// --shard-dir fleet shape (CI diffs them), because every histogram lives in
// a local SloHistogram merged in trial order. Wall-clock events/s goes to
// stderr only, keeping stdout deterministic.
#include <chrono>
#include <cstdint>

#include "bench/bench_util.h"
#include "src/common/serde.h"
#include "src/ctrl/control_plane.h"
#include "src/ctrl/workload.h"
#include "src/fault/generator.h"
#include "src/fault/physics_generator.h"
#include "src/runtime/sweep.h"

using namespace ihbd;

namespace {

struct BenchScale {
  double duration_days;
  std::vector<double> node_counts;
};

/// Offered load -> Poisson arrival intensity. Steady-state group demand is
/// rate * mean_run * mean_groups; capacity is nodes / (t / r) groups.
double arrival_rate(const ctrl::WorkloadConfig& wl, int nodes,
                    int nodes_per_group, double utilization) {
  const double capacity_groups = static_cast<double>(nodes) / nodes_per_group;
  const double mean_groups = 0.5 * (wl.min_groups + wl.max_groups);
  return utilization * capacity_groups / (wl.mean_run_days * mean_groups);
}

fault::FaultTrace make_trial_trace(fault::TraceModel model, int nodes,
                                   double duration_days, std::uint64_t seed) {
  switch (model) {
    case fault::TraceModel::kPhysics:
    case fault::TraceModel::kStorm: {
      fault::PhysicsTraceConfig cfg = model == fault::TraceModel::kStorm
                                          ? fault::storm_trace_defaults()
                                          : fault::physics_trace_defaults();
      cfg.node_count = nodes;
      cfg.duration_days = duration_days;
      cfg.seed = seed;
      return fault::generate_physics_trace(cfg);
    }
    case fault::TraceModel::kPoisson:
      break;
  }
  fault::TraceGenConfig tg;  // paper-calibrated fault statistics
  tg.node_count = nodes;
  tg.duration_days = duration_days;
  tg.seed = seed;
  return fault::generate_trace(tg);
}

ctrl::ControlPlaneResult run_trial(int nodes, double utilization,
                                   double inject_rate, double duration_days,
                                   fault::TraceModel model, Rng& rng) {
  ctrl::ControlPlaneConfig cfg;
  cfg.node_count = nodes;
  cfg.nodes_per_tor = 4;
  cfg.tors_per_domain = 32;
  // Alignment constraints trade DCN locality against fault-degraded
  // capacity: at max_constraints() every fault expands to its whole ToR and
  // the paper trace's 2.33% mean fault ratio halves the carvable capacity;
  // at half that level the loss stays ~15%. The daemon runs the moderate
  // setting a production fleet would.
  {
    const dcn::FatTree probe(dcn::FatTreeConfig{nodes, cfg.nodes_per_tor,
                                                cfg.tors_per_domain});
    const orch::FatTreeOrchestrator probe_orch(probe, cfg.k,
                                               cfg.gpus_per_node);
    cfg.n_constraints = probe_orch.max_constraints() / 2;
  }

  const std::uint64_t trace_seed = rng.next();
  cfg.seed = rng.next();
  cfg.inject.session_failure_rate = inject_rate;
  cfg.inject.seed = rng.next();

  ctrl::WorkloadConfig wl;
  wl.duration_days = duration_days;
  wl.tp_size_gpus = cfg.gpus_per_node * 8;  // m = 8 nodes per TP group
  wl.arrival_rate_per_day = arrival_rate(wl, nodes, 8, utilization);

  const fault::FaultTrace trace =
      make_trial_trace(model, nodes, duration_days, trace_seed);
  return ctrl::run_control_plane(cfg, trace,
                                 ctrl::generate_workload(wl, rng));
}

std::string quantile_s(const ctrl::SloHistogram& h, double q) {
  return h.count() == 0 ? "-" : Table::fmt(h.quantile(q), 4) + " s";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner(std::string("Control plane: event-driven orchestration "
                            "service SLOs (trace model: ") +
                fault::trace_model_name(opt.trace_model) + ")");
  const int trials = bench::trials_or(opt, opt.quick ? 2 : 3);
  const BenchScale scale = opt.quick
                               ? BenchScale{6.0, {256, 512}}
                               : BenchScale{96.0, {2560, 10240}};

  runtime::SweepSpec spec;
  spec.seed = 90;
  spec.trials = trials;
  spec.keep_samples = false;
  // The trace model changes every trial's trace, so it must also change the
  // sweep identity (a --shard-dir run dir must never mix models).
  spec.fingerprint_salt = static_cast<std::uint64_t>(opt.trace_model) + 1;
  spec.axes = {
      runtime::Axis::of_values("Nodes", scale.node_counts,
                               [](double n) {
                                 return std::to_string(
                                     static_cast<int>(n));
                               }),
      // Offered load relative to the FAULT-FREE group capacity. The
      // paper-calibrated trace plus ToR-alignment expansion shave roughly
      // 10-15% off that in steady state (incidents transiently much more),
      // so 0.75 probes a loaded-but-stable fleet and 0.45 a comfortable one;
      // beyond ~0.8 the queue no longer drains between incidents.
      runtime::Axis::of_values("Load", {0.45, 0.75},
                               [](double u) { return Table::pct(u, 0); }),
      // Injected session-switch failure rate: 0 is the clean baseline, 10%
      // stress-tests retry/backoff + graceful degradation (the acceptance
      // bar: every run completes, retries converge, SLO split is stable).
      runtime::Axis::of_values("Inject", {0.0, 0.10},
                               [](double r) { return Table::pct(r, 0); }),
  };

  const runtime::shard::ShardCodec<ctrl::ControlPlaneResult> codec{
      [](serde::Writer& w, const ctrl::ControlPlaneResult& r) { r.save(w); },
      [](serde::Reader& r) { return ctrl::ControlPlaneResult::load(r); },
      [](ctrl::ControlPlaneResult& into, ctrl::ControlPlaneResult&& next) {
        into.merge(next);
      }};

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = runtime::run_sweep_reduce(
      spec, ctrl::ControlPlaneResult{},
      [&](const runtime::Scenario& s, Rng& rng) {
        return run_trial(static_cast<int>(s.value(0)), s.value(1),
                         s.value(2), scale.duration_days, opt.trace_model,
                         rng);
      },
      [](ctrl::ControlPlaneResult& acc, ctrl::ControlPlaneResult&& r) {
        acc.merge(r);
      },
      opt.threads, nullptr, &codec);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  {
    Table table("Control-plane SLOs (job wait = submit -> running, incl. "
                "reconfig drain; " +
                std::to_string(trials) + " trials/cell)");
    table.set_header({"Nodes", "Load", "Inject", "Wait p50", "Wait p99",
                      "Wait p999", "Reconf p50", "Reconf p99",
                      "Reconf p999"});
    for (std::size_t ni = 0; ni < spec.axes[0].size(); ++ni) {
      for (std::size_t ui = 0; ui < spec.axes[1].size(); ++ui) {
        for (std::size_t fi = 0; fi < spec.axes[2].size(); ++fi) {
          const auto& c = result.cell({ni, ui, fi});
          table.add_row({spec.axes[0].labels[ni], spec.axes[1].labels[ui],
                         spec.axes[2].labels[fi],
                         quantile_s(c.job_wait_s, 0.50),
                         quantile_s(c.job_wait_s, 0.99),
                         quantile_s(c.job_wait_s, 0.999),
                         quantile_s(c.reconfig_latency_s, 0.50),
                         quantile_s(c.reconfig_latency_s, 0.99),
                         quantile_s(c.reconfig_latency_s, 0.999)});
        }
      }
    }
    bench::emit(opt, "ctrl_plane_slo", table);
  }

  {
    // The robustness split: what the 10%-inject cells actually paid.
    // Degraded wait = jobs that started with >= 1 steer given up; retried
    // reconfig latency = successes that needed >= 1 retry. "Pend end" are
    // requests still backing off at the horizon (never a stall: the run
    // completed around them).
    Table table("Degraded-mode SLOs and retry/dead-letter accounting (" +
                std::to_string(trials) + " trials/cell)");
    table.set_header({"Nodes", "Load", "Inject", "Degr wait p50",
                      "Degr wait p99", "Retry reconf p99", "Degr starts",
                      "Retried", "Dead", "Injected", "Pend end"});
    for (std::size_t ni = 0; ni < spec.axes[0].size(); ++ni) {
      for (std::size_t ui = 0; ui < spec.axes[1].size(); ++ui) {
        for (std::size_t fi = 0; fi < spec.axes[2].size(); ++fi) {
          const auto& c = result.cell({ni, ui, fi});
          table.add_row({spec.axes[0].labels[ni], spec.axes[1].labels[ui],
                         spec.axes[2].labels[fi],
                         quantile_s(c.job_wait_degraded_s, 0.50),
                         quantile_s(c.job_wait_degraded_s, 0.99),
                         quantile_s(c.reconfig_latency_retried_s, 0.99),
                         std::to_string(c.degraded_starts),
                         std::to_string(c.reconfig_retried),
                         std::to_string(c.reconfig_dead_lettered),
                         std::to_string(c.reconfig_injected),
                         std::to_string(c.reconfig_pending_end)});
        }
      }
    }
    bench::emit(opt, "ctrl_plane_degraded", table);
  }

  std::uint64_t total_events = 0, max_cell_events = 0;
  {
    Table table("Control-plane throughput and churn (events = engine events "
                "executed, summed over trials)");
    table.set_header({"Nodes", "Load", "Inject", "Events", "Arrivals",
                      "Done", "Preempt", "Churn", "Coalesced", "Peak queue"});
    for (std::size_t ni = 0; ni < spec.axes[0].size(); ++ni) {
      for (std::size_t ui = 0; ui < spec.axes[1].size(); ++ui) {
        for (std::size_t fi = 0; fi < spec.axes[2].size(); ++fi) {
          const auto& c = result.cell({ni, ui, fi});
          total_events += c.events;
          if (trials > 0)
            max_cell_events = std::max(max_cell_events, c.events /
                                       static_cast<std::uint64_t>(trials));
          table.add_row({spec.axes[0].labels[ni], spec.axes[1].labels[ui],
                         spec.axes[2].labels[fi],
                         std::to_string(c.events), std::to_string(c.arrivals),
                         std::to_string(c.completions),
                         std::to_string(c.preemptions),
                         std::to_string(c.placement_churn),
                         std::to_string(c.reconfig_coalesced),
                         std::to_string(c.peak_reconfig_depth)});
        }
      }
    }
    bench::emit(opt, "ctrl_plane_throughput", table);
  }

  // Deterministic floor check (full mode): the acceptance bar is >= 1M
  // events in a single 10k-node run. Wall-clock throughput is environment
  // noise, so it goes to stderr only.
  std::printf("Largest cell: ~%llu events per run%s\n",
              static_cast<unsigned long long>(max_cell_events),
              opt.quick ? " (quick mode; full mode sustains >= 1M)" : "");
  if (!opt.quick && max_cell_events < 1000000)
    std::puts("WARNING: largest cell fell short of the 1M-event floor");
  std::fprintf(stderr, "ctrl-plane: %llu events total in %.2f s (%.0f events/s)\n",
               static_cast<unsigned long long>(total_events), wall_s,
               wall_s > 0.0 ? static_cast<double>(total_events) / wall_s : 0.0);
  bench::finish(opt);
  return 0;
}
