// Reproduces paper Table 3: communication load of TP (AllReduce) vs EP
// (AllToAll) on a single MoE layer, and the k < n regime where EP is
// cheaper.
#include "bench/bench_util.h"
#include "src/llmsim/model.h"

using namespace ihbd;
using namespace ihbd::llmsim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Table 3: TP vs EP traffic load per MoE layer");

  // GPT-MoE dimensions (Appendix B): b micro = 1 seq, s = 2048, h = 12288.
  const double b = 1, s = 2048, h = 12288;
  const int k = 2;

  Table table("Bytes per GPU per layer (bf16 activations); EP = TP * k/n");
  table.set_header({"Parallel size n", "TP AllReduce (MB)", "EP AllToAll (MB)",
                    "EP/TP ratio", "k<n => EP cheaper"});
  for (int n : {2, 4, 8, 16, 32}) {
    const double tp = tp_allreduce_load(b, s, h, n);
    const double ep = ep_alltoall_load(b, s, h, n, k);
    table.add_row({std::to_string(n), Table::fmt(tp / 1e6, 2),
                   Table::fmt(ep / 1e6, 2), Table::fmt(ep / tp, 3),
                   k < n ? "yes" : "no"});
  }
  bench::emit(opt, "table3_traffic_load", table);
  bench::finish(opt);
  return 0;
}
