// Shared setup for the fault-resilience benches (Figs. 13-16, 18, 20-23):
// the paper's simulation cluster is 2,880 GPUs of 4-GPU nodes (the largest
// multiple of 576 below the 3,200-GPU trace), replaying the 348-day
// production trace normalized from 8-GPU to 4-GPU nodes (Appendix A).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/fault/generator.h"
#include "src/fault/physics_generator.h"
#include "src/runtime/sweep.h"
#include "src/runtime/thread_pool.h"
#include "src/topo/baselines.h"
#include "src/topo/waste.h"

namespace ihbd::bench {

inline constexpr int kNodes4 = 720;   // 2,880 GPUs at 4 GPUs/node
inline constexpr int kGpusPerNode = 4;
inline constexpr int kClusterGpus = kNodes4 * kGpusPerNode;

/// The 348-day production-calibrated trace, normalized to 4-GPU nodes and
/// linearly remapped onto the 720-node simulation cluster. `model` picks
/// the trace family (--trace-model): memoryless Poisson draws, physics
/// degradation, or degradation + correlated storms — all calibrated to the
/// same Appendix A statistics, all deterministic per seed.
inline fault::FaultTrace make_sim_trace(
    bool quick = false,
    fault::TraceModel model = fault::TraceModel::kPoisson) {
  const auto trace8 = [&] {  // 375 x 8-GPU nodes, 348 days (60 in quick)
    switch (model) {
      case fault::TraceModel::kPhysics:
      case fault::TraceModel::kStorm: {
        fault::PhysicsTraceConfig cfg = model == fault::TraceModel::kStorm
                                            ? fault::storm_trace_defaults()
                                            : fault::physics_trace_defaults();
        if (quick) cfg.duration_days = 60.0;
        return fault::generate_physics_trace(cfg);
      }
      case fault::TraceModel::kPoisson:
        break;
    }
    fault::TraceGenConfig cfg;
    if (quick) cfg.duration_days = 60.0;
    return fault::generate_trace(cfg);
  }();
  Rng rng(91);
  return trace8.split_to_half_nodes(rng).remap_nodes(kNodes4);
}

/// Architecture set of §6.1 on the simulation cluster.
inline std::vector<std::unique_ptr<topo::HbdArchitecture>> make_archs() {
  return topo::make_paper_architectures(kNodes4, kGpusPerNode);
}

/// NVL-36 cannot host TP-64 at all; the paper omits it from those plots.
inline bool arch_supports_tp(const topo::HbdArchitecture& arch, int tp) {
  if (arch.name() == "NVL-36" && tp > 36) return false;
  return true;
}

/// Window layout of a nested cell-grid replay: when the grid alone
/// saturates the pool there are no idle workers for a cell's window
/// fan-out to recruit, and the single-window layout (0) is the cheapest
/// incremental replay — one cursor/allocator alive over the whole trace
/// per cell. With fewer cells than workers, windows are exactly what idle
/// workers steal. Output is bit-identical for any window size, so this is
/// purely a perf choice.
inline std::size_t nested_window_samples(std::size_t cell_count,
                                         const runtime::ThreadPool& pool) {
  return cell_count >= static_cast<std::size_t>(pool.size())
             ? 0
             : topo::TraceReplayOptions{}.window_samples;
}

/// Sweep-identity salt for a trace: two replay grids over different traces
/// (quick 60-day vs full 348-day, different clusters) must never share a
/// shard run directory entry even though their cell grids match, so the
/// trace's shape is folded into SweepSpec::fingerprint_salt. FNV-1a over
/// node count, duration bits, and every event's (node, start, end) bits.
inline std::uint64_t trace_fingerprint(const fault::FaultTrace& trace) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const auto mix_f64 = [&](double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(trace.node_count()));
  mix_f64(trace.duration_days());
  mix(trace.events().size());
  for (const auto& ev : trace.events()) {
    mix(static_cast<std::uint64_t>(ev.node));
    mix_f64(ev.start_day);
    mix_f64(ev.end_day);
  }
  return h;
}

/// The (TP x architecture) trace-replay grid shared by Figs. 13, 15, 16 and
/// 20, run on the generic sweep engine: one windowed trace replay per
/// supported cell. BOTH fan-out levels share one work-stealing pool
/// (--threads wide; 0 = the shared process pool): the sweep distributes
/// cells, and each cell's window fan-out recruits idle workers — so a grid
/// with fewer cells than cores no longer strands the rest of the machine.
/// Unsupported cells keep the default-constructed (empty) TraceWasteResult.
/// The replay is deterministic, so the grid is bit-identical for any thread
/// count AND for any `incremental` x `packed` setting (event-driven
/// cursor+allocator replay vs from-scratch re-allocation; word-parallel
/// packed masks vs per-node flip lists; CI diffs all combinations). The
/// attached trace_waste_codec makes the grid shardable: under an ambient
/// shard::ShardContext (bench --shard-dir, ihbd-sweepd) the cells spread
/// across the fleet and the reduced grid is byte-identical to a local run.
inline runtime::GenericSweepResult<topo::TraceWasteResult> replay_trace_grid(
    const std::vector<std::unique_ptr<topo::HbdArchitecture>>& archs,
    const fault::FaultTrace& trace, std::vector<double> tps, int threads,
    bool keep_samples = true, bool incremental = true, bool packed = true) {
  runtime::SweepSpec spec;
  spec.trials = 1;  // replay is deterministic; the grid itself is the work
  spec.keep_samples = keep_samples;
  spec.fingerprint_salt = trace_fingerprint(trace);
  std::size_t supported_cells = 0;
  for (const double tp : tps)
    for (const auto& arch : archs)
      if (arch_supports_tp(*arch, static_cast<int>(tp))) ++supported_cells;
  std::vector<std::string> arch_names;
  for (const auto& arch : archs) arch_names.push_back(arch->name());
  spec.axes = {
      runtime::Axis::of_values("TP", std::move(tps)),
      runtime::Axis::of_labels("Arch", std::move(arch_names)),
  };
  const runtime::PoolRef pool(threads);
  const std::size_t window_samples =
      nested_window_samples(supported_cells, *pool);
  return runtime::run_sweep_reduce(
      spec, topo::TraceWasteResult{},
      [&](const runtime::Scenario& s, Rng&) -> topo::TraceWasteResult {
        const int tp = static_cast<int>(s.value(0));
        const auto& arch = *archs[s.index(1)];
        if (!arch_supports_tp(arch, tp)) return {};
        topo::TraceReplayOptions opts;
        opts.pool = pool.get();  // nested fan-out on the sweep's own pool
        opts.window_samples = window_samples;
        opts.keep_samples = s.spec().keep_samples;
        opts.incremental = incremental;
        opts.packed = packed;
        return topo::evaluate_waste_over_trace(arch, trace, tp, opts);
      },
      [](topo::TraceWasteResult& acc, topo::TraceWasteResult&& replay) {
        acc = std::move(replay);
      },
      /*threads=*/0, pool.get(), &topo::trace_waste_codec());
}

/// True when a replay-grid cell actually ran (unsupported cells are empty).
inline bool replay_cell_supported(const topo::TraceWasteResult& cell) {
  return !cell.waste_ratio.t.empty();
}

}  // namespace ihbd::bench
