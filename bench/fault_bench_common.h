// Shared setup for the fault-resilience benches (Figs. 13-16, 18, 20-23):
// the paper's simulation cluster is 2,880 GPUs of 4-GPU nodes (the largest
// multiple of 576 below the 3,200-GPU trace), replaying the 348-day
// production trace normalized from 8-GPU to 4-GPU nodes (Appendix A).
#pragma once

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/fault/generator.h"
#include "src/topo/baselines.h"
#include "src/topo/waste.h"

namespace ihbd::bench {

inline constexpr int kNodes4 = 720;   // 2,880 GPUs at 4 GPUs/node
inline constexpr int kGpusPerNode = 4;
inline constexpr int kClusterGpus = kNodes4 * kGpusPerNode;

/// The 348-day production-calibrated trace, normalized to 4-GPU nodes and
/// linearly remapped onto the 720-node simulation cluster.
inline fault::FaultTrace make_sim_trace(bool quick = false) {
  fault::TraceGenConfig cfg;  // 375 x 8-GPU nodes, 348 days
  if (quick) cfg.duration_days = 60.0;
  const auto trace8 = fault::generate_trace(cfg);
  Rng rng(91);
  return trace8.split_to_half_nodes(rng).remap_nodes(kNodes4);
}

/// Architecture set of §6.1 on the simulation cluster.
inline std::vector<std::unique_ptr<topo::HbdArchitecture>> make_archs() {
  return topo::make_paper_architectures(kNodes4, kGpusPerNode);
}

/// NVL-36 cannot host TP-64 at all; the paper omits it from those plots.
inline bool arch_supports_tp(const topo::HbdArchitecture& arch, int tp) {
  if (arch.name() == "NVL-36" && tp > 36) return false;
  return true;
}

}  // namespace ihbd::bench
