// Vendored micro-benchmark harness: a drop-in for the subset of the Google
// Benchmark API that bench_reconfig_latency uses, so the target builds and
// runs even where Google Benchmark is not installed. Selected by CMake when
// the real library is absent (or when -DIHBD_FORCE_MICROBENCH=ON).
//
// Supported surface: benchmark::State (range-for iteration, range(i),
// counters), BENCHMARK(fn) registration with ->Arg(n), DoNotOptimize,
// Counter, and BENCHMARK_MAIN(). Timing is adaptive: each benchmark reruns
// with a growing iteration count until it occupies a minimum wall-clock
// window, then reports ns/iteration plus any user counters.
// The measurement window defaults to 0.05 s per benchmark and can be
// overridden with the IHBD_MICROBENCH_MIN_TIME environment variable
// (seconds; CI's quick mode uses a smaller window so the full registry
// stays cheap to run on every push).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

struct Counter {
  double value = 0.0;
  Counter() = default;
  Counter(double v) : value(v) {}  // NOLINT: implicit like the real API
};

class State {
 public:
  State(std::int64_t iterations, std::vector<std::int64_t> ranges)
      : iterations_(iterations), ranges_(std::move(ranges)) {}

  struct Ignored {
    Ignored() {}  // non-trivial: silences unused-variable on `auto _`
  };
  struct iterator {
    std::int64_t remaining;
    bool operator!=(const iterator& other) const {
      return remaining != other.remaining;
    }
    void operator++() { --remaining; }
    Ignored operator*() const { return {}; }
  };

  /// Starts the measured window; setup before the loop is excluded.
  iterator begin() {
    start_ = std::chrono::steady_clock::now();
    return {iterations_};
  }
  iterator end() { return {0}; }

  std::int64_t range(std::size_t i = 0) const { return ranges_.at(i); }
  std::int64_t iterations() const { return iterations_; }
  std::chrono::steady_clock::time_point start_time() const { return start_; }

  std::map<std::string, Counter> counters;

 private:
  std::int64_t iterations_;
  std::vector<std::int64_t> ranges_;
  std::chrono::steady_clock::time_point start_;
};

#if defined(__GNUC__) || defined(__clang__)
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
#else
template <typename T>
inline void DoNotOptimize(T const& value) {
  volatile const T* sink = &value;
  (void)sink;
}
#endif

namespace detail {

struct Registered {
  std::string name;
  void (*fn)(State&);
  /// One run per arg set; an empty list means one run with no args.
  std::vector<std::vector<std::int64_t>> arg_sets;
};

inline std::vector<Registered>& registry() {
  static std::vector<Registered> benches;
  return benches;
}

/// Registration handle; mirrors the real API's chained ->Arg(n).
class Handle {
 public:
  explicit Handle(std::size_t index) : index_(index) {}
  Handle* Arg(std::int64_t a) {
    registry()[index_].arg_sets.push_back({a});
    return this;
  }

 private:
  std::size_t index_;
};

inline Handle* Register(const char* name, void (*fn)(State&)) {
  registry().push_back({name, fn, {}});
  // Handles live for the program (still reachable, so LeakSanitizer-clean)
  // behind stable pointers; they are only used for ->Arg chains.
  static std::vector<std::unique_ptr<Handle>> handles;
  handles.push_back(std::make_unique<Handle>(registry().size() - 1));
  return handles.back().get();
}

/// Minimum measured wall-clock per benchmark; IHBD_MICROBENCH_MIN_TIME
/// (seconds) overrides the 0.05 s default.
inline double min_seconds() {
  static const double cached = [] {
    if (const char* env = std::getenv("IHBD_MICROBENCH_MIN_TIME")) {
      char* end = nullptr;
      const double v = std::strtod(env, &end);
      if (end != env && v >= 0.0) return v;
    }
    return 0.05;
  }();
  return cached;
}

/// One finished benchmark run, for the human table and the JSON export.
struct RunResult {
  std::string name;  ///< registered name plus "/arg" suffixes
  double ns_per_iter = 0.0;
  std::int64_t iterations = 0;
  std::map<std::string, Counter> counters;
};

inline RunResult run_one(const Registered& bench,
                         const std::vector<std::int64_t>& args) {
  using clock = std::chrono::steady_clock;
  const double kMinSeconds = min_seconds();
  constexpr std::int64_t kMaxIters = std::int64_t{1} << 30;

  RunResult result;
  double elapsed = 0.0;
  std::int64_t iters = 1;
  for (;; iters *= 4) {
    State state(iters, args);
    bench.fn(state);
    elapsed =
        std::chrono::duration<double>(clock::now() - state.start_time())
            .count();
    result.counters = state.counters;
    if (elapsed >= kMinSeconds || iters >= kMaxIters) break;
  }

  result.name = bench.name;
  for (const auto a : args) result.name += "/" + std::to_string(a);
  result.ns_per_iter = elapsed * 1e9 / static_cast<double>(iters);
  result.iterations = iters;

  std::string extra;
  for (const auto& [key, counter] : result.counters) {
    char buf[96];
    std::snprintf(buf, sizeof buf, " %s=%.4g", key.c_str(), counter.value);
    extra += buf;
  }
  std::printf("%-36s %12.1f ns/iter %12lld iters%s\n", result.name.c_str(),
              result.ns_per_iter, static_cast<long long>(iters),
              extra.c_str());
  return result;
}

/// Serialize finished runs as a JSON array (names/keys contain no characters
/// needing escapes; the harness stays self-contained, so no JSON library).
inline std::string results_json(const std::vector<RunResult>& results) {
  std::string out = "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    if (i > 0) out += ',';
    char buf[128];
    // name is appended separately: it may exceed the fixed buffer.
    out += "{\"name\":\"";
    out += r.name;
    std::snprintf(buf, sizeof buf,
                  "\",\"ns_per_iter\":%.17g,\"iterations\":%lld,"
                  "\"counters\":{",
                  r.ns_per_iter, static_cast<long long>(r.iterations));
    out += buf;
    bool first = true;
    for (const auto& [key, counter] : r.counters) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += key;
      std::snprintf(buf, sizeof buf, "\":%.17g", counter.value);
      out += buf;
    }
    out += "}}";
  }
  out += "]";
  return out;
}

}  // namespace detail

/// Run every registered benchmark: the human table goes to stdout and, when
/// the IHBD_MICROBENCH_JSON environment variable names a file, the same
/// results are written there as a JSON array of
/// {"name","ns_per_iter","iterations","counters":{...}} objects.
inline int RunAllBenchmarks() {
  std::printf("%-36s %20s %18s\n", "Benchmark (vendored harness)", "Time",
              "Iterations");
  std::vector<detail::RunResult> results;
  for (const auto& bench : detail::registry()) {
    if (bench.arg_sets.empty()) {
      results.push_back(detail::run_one(bench, {}));
    } else {
      for (const auto& args : bench.arg_sets)
        results.push_back(detail::run_one(bench, args));
    }
  }
  if (const char* path = std::getenv("IHBD_MICROBENCH_JSON")) {
    if (std::FILE* f = std::fopen(path, "wb")) {
      const std::string json = detail::results_json(results);
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::fprintf(stderr, "microbench results written to %s\n", path);
    } else {
      std::fprintf(stderr, "cannot write microbench results to '%s'\n", path);
    }
  }
  return 0;
}

}  // namespace benchmark

#define BENCHMARK(fn)                                    \
  static ::benchmark::detail::Handle* bench_handle_##fn = \
      ::benchmark::detail::Register(#fn, fn)

#define BENCHMARK_MAIN() \
  int main() { return ::benchmark::RunAllBenchmarks(); }
