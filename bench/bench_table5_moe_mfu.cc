// Reproduces paper Table 5: optimal parallelism for GPT-MoE (1.1T) under
// varying GPU counts with 20% practical expert imbalance. Paper trend:
// optimal EP = 1 everywhere (TP shards experts evenly, dodging the
// imbalance straggler) and optimal TP grows 16 -> 64.
//
// Runs on the generic sweep engine: one deterministic strategy search per
// GPU-count cell, fanned across --threads, bit-identical output.
#include "bench/bench_util.h"
#include "src/llmsim/perf.h"
#include "src/runtime/sweep.h"

using namespace ihbd;
using namespace ihbd::llmsim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Table 5: GPT-MoE optimal parallelism & MFU");

  TrainJob job;
  job.model = ModelConfig::gpt_moe_1t();
  job.global_batch = 1536;
  job.expert_imbalance = 0.20;  // §6.3: practical setting

  struct PaperRow {
    int gpus;
    double mfu;
    const char* tp_ep;
  };
  const PaperRow paper[] = {{1024, 0.4276, "16/1"},
                            {2048, 0.4140, "16/1"},
                            {4096, 0.3894, "32/1"},
                            {8192, 0.3656, "32/1"},
                            {16384, 0.3116, "64/1"}};

  runtime::SweepSpec spec;
  spec.trials = 1;  // the strategy search is deterministic
  std::vector<double> gpu_counts;
  for (const auto& row : paper) gpu_counts.push_back(row.gpus);
  spec.axes = {runtime::Axis::of_values(
      "GPU Num", std::move(gpu_counts),
      [](double g) { return std::to_string(static_cast<int>(g)); })};
  const auto grid = runtime::run_sweep_reduce(
      spec, SearchResult{},
      [&](const runtime::Scenario& s, Rng&) {
        return search_best_strategy(job, static_cast<int>(s.value(0)));
      },
      [](SearchResult& acc, SearchResult&& found) { acc = std::move(found); },
      opt.threads);

  Table table("Optimal strategies (EP in {1,2,4,8})");
  table.set_header(
      {"GPU Num", "TP", "DP", "PP", "EP", "MFU", "Paper MFU", "Paper TP/EP"});
  for (std::size_t g = 0; g < std::size(paper); ++g) {
    const auto& row = paper[g];
    const SearchResult& best = grid.cell({g});
    table.add_row({std::to_string(row.gpus), std::to_string(best.best.tp),
                   std::to_string(best.best.dp), std::to_string(best.best.pp),
                   std::to_string(best.best.ep), Table::fmt(best.perf.mfu),
                   Table::fmt(row.mfu), row.tp_ep});
  }
  bench::emit(opt, "table5_moe_mfu", table);
  bench::finish(opt);
  return 0;
}
