// Reproduces paper Fig. 13 (TP-16/TP-32) and Fig. 21 (TP-8..TP-64):
// CDF of the GPU waste ratio over the production fault trace, 4-GPU nodes,
// per HBD architecture. Headline (§1): InfiniteHBD TP-32 waste 0.53% vs
// NVL-72 10.04% and TPUv4 7.56%.
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figures 13 & 21: GPU waste ratio CDF over production trace");

  const auto trace = bench::make_sim_trace(opt.quick);
  const auto archs = bench::make_archs();

  for (int tp : {8, 16, 32, 64}) {
    Table table("TP-" + std::to_string(tp) +
                ": waste-ratio distribution over the trace");
    table.set_header({"Architecture", "mean", "p50", "p90", "p99", "max"});
    for (const auto& arch : archs) {
      if (!bench::arch_supports_tp(*arch, tp)) continue;
      const auto result =
          topo::evaluate_waste_over_trace(*arch, trace, tp, 1.0);
      const Summary& s = result.waste_summary;
      table.add_row({arch->name(), Table::pct(s.mean), Table::pct(s.p50),
                     Table::pct(s.p90), Table::pct(s.p99),
                     Table::pct(s.max)});
    }
    bench::emit(opt, "fig13_waste_cdf_tp" + std::to_string(tp), table);
  }

  std::puts("Paper anchors (TP-32): InfiniteHBD 0.53%, TPUv4 7.56%, "
            "NVL-72 10.04%.");
  return 0;
}
