// Reproduces paper Fig. 13 (TP-16/TP-32) and Fig. 21 (TP-8..TP-64):
// CDF of the GPU waste ratio over the production fault trace, 4-GPU nodes,
// per HBD architecture. Headline (§1): InfiniteHBD TP-32 waste 0.53% vs
// NVL-72 10.04% and TPUv4 7.56%.
//
// Runs on the generic sweep engine: each (TP, arch) cell replays the trace
// in windows and carries a full TraceWasteResult. Cells AND their windows
// share one work-stealing pool (nested parallel_for), and the tables stay
// bit-identical for any --threads value.
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figures 13 & 21: GPU waste ratio CDF over production trace");

  const auto trace = bench::make_sim_trace(opt.quick, opt.trace_model);
  const auto archs = bench::make_archs();

  const auto grid =
      bench::replay_trace_grid(archs, trace, {8, 16, 32, 64}, opt.threads,
                               /*keep_samples=*/true, opt.incremental,
                               opt.packed);

  for (std::size_t t = 0; t < grid.spec.axes[0].size(); ++t) {
    const int tp = static_cast<int>(grid.spec.axes[0].values[t]);
    Table table("TP-" + std::to_string(tp) +
                ": waste-ratio distribution over the trace");
    table.set_header({"Architecture", "mean", "p50", "p90", "p99", "max"});
    for (std::size_t a = 0; a < archs.size(); ++a) {
      const auto& cell = grid.cell({t, a});
      if (!bench::replay_cell_supported(cell)) continue;
      const Summary& s = cell.waste_summary;
      table.add_row({archs[a]->name(), Table::pct(s.mean), Table::pct(s.p50),
                     Table::pct(s.p90), Table::pct(s.p99),
                     Table::pct(s.max)});
    }
    bench::emit(opt, "fig13_waste_cdf_tp" + std::to_string(tp), table);
  }

  std::puts("Paper anchors (TP-32): InfiniteHBD 0.53%, TPUv4 7.56%, "
            "NVL-72 10.04%.");
  bench::finish(opt);
  return 0;
}
