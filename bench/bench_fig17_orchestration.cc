// Reproduces paper Fig. 17a-c: cross-ToR traffic rate of the HBD-DCN
// orchestration algorithm vs the greedy baseline on a Fat-Tree DCN,
// running TP-32 on InfiniteHBD:
//   (a) sensitivity to cluster size (8k-20k GPUs, job 85%, faults 5%),
//   (b) impact of job-scale ratio (70-90%, faults 5%),
//   (c) sensitivity to node fault ratio (0-8%, job 85%).
#include "bench/bench_util.h"
#include "src/dcn/traffic.h"
#include "src/fault/trace.h"
#include "src/orch/orchestrator.h"

using namespace ihbd;

namespace {

struct Setup {
  dcn::FatTree fat_tree;
  orch::FatTreeOrchestrator orchestrator;
  explicit Setup(int nodes)
      : fat_tree(dcn::FatTreeConfig{nodes, /*nodes_per_tor=*/8,
                                    /*tors_per_domain=*/64}),
        orchestrator(fat_tree, /*k=*/2, /*gpus_per_node=*/4) {}
};

struct Rates {
  double optimized;
  double baseline;
};

Rates measure(Setup& setup, double fault_ratio, double job_ratio, Rng& rng,
              int trials) {
  double opt_total = 0.0, base_total = 0.0;
  for (int t = 0; t < trials; ++t) {
    const int nodes = setup.fat_tree.node_count();
    const auto mask = fault::sample_fault_mask(nodes, fault_ratio, rng);
    orch::JobSpec job{32, static_cast<int>(nodes * 4 * job_ratio)};
    const int use = job.gpu_count / job.tp_size_gpus;

    const auto optimized = setup.orchestrator.orchestrate(mask, job);
    opt_total +=
        dcn::evaluate_cross_tor(setup.fat_tree, optimized, 4, {}, use)
            .cross_tor_rate();
    const auto baseline =
        orch::greedy_baseline(setup.fat_tree, 2, 4, mask, job, rng);
    base_total +=
        dcn::evaluate_cross_tor(setup.fat_tree, baseline, 4, {}, use)
            .cross_tor_rate();
  }
  return {opt_total / trials, base_total / trials};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figure 17a-c: HBD-DCN orchestration cross-ToR rate");
  const int trials = opt.quick ? 2 : 5;
  Rng rng(170);

  {
    Table table("Fig. 17a: sensitivity to cluster size (job 85%, faults 5%)");
    table.set_header({"Cluster (GPU)", "Baseline", "Optimized"});
    for (int nodes : {1024, 2048, 3072, 5120}) {
      Setup setup(nodes);
      const auto r = measure(setup, 0.05, 0.85, rng, trials);
      table.add_row({std::to_string(nodes * 4), Table::pct(r.baseline),
                     Table::pct(r.optimized)});
    }
    bench::emit(opt, "fig17a_cluster_size", table);
  }

  {
    Table table("Fig. 17b: impact of job-scale ratio (8192 GPUs, faults 5%)");
    table.set_header({"Job scale", "Baseline", "Optimized", "Paper opt"});
    Setup setup(2048);
    const char* paper[] = {"~0.5%", "~0.8%", "~1.1%", "1.72%"};
    int i = 0;
    for (double ratio : {0.70, 0.80, 0.85, 0.90}) {
      const auto r = measure(setup, 0.05, ratio, rng, trials);
      table.add_row({Table::pct(ratio, 0), Table::pct(r.baseline),
                     Table::pct(r.optimized), paper[i++]});
    }
    bench::emit(opt, "fig17b_job_scale", table);
  }

  {
    Table table("Fig. 17c: sensitivity to fault ratio (8192 GPUs, job 85%)");
    table.set_header({"Fault ratio", "Baseline", "Optimized"});
    Setup setup(2048);
    for (double f : {0.0, 0.01, 0.03, 0.05, 0.07, 0.08}) {
      const auto r = measure(setup, f, 0.85, rng, trials);
      table.add_row({Table::pct(f, 0), Table::pct(r.baseline),
                     Table::pct(r.optimized)});
    }
    bench::emit(opt, "fig17c_fault_ratio", table);
  }

  std::puts("Paper: baseline ~10% throughout; optimized near-zero under 7% "
            "faults, 1.72% at 90% job scale.");
  bench::finish(opt);
  return 0;
}
