// Reproduces paper Fig. 17a-c: cross-ToR traffic rate of the HBD-DCN
// orchestration algorithm vs the greedy baseline on a Fat-Tree DCN,
// running TP-32 on InfiniteHBD:
//   (a) sensitivity to cluster size (8k-20k GPUs, job 85%, faults 5%),
//   (b) impact of job-scale ratio (70-90%, faults 5%),
//   (c) sensitivity to node fault ratio (0-8%, job 85%).
//
// All three panels run on runtime::run_sweep_reduce with a paired
// accumulator (common random numbers: each trial draws one fault mask and
// evaluates both the optimized and the greedy placement on it) and a shard
// codec, so the tables are bit-identical across --threads values and
// --shard-dir fleet shapes.
#include <utility>

#include "bench/bench_util.h"
#include "src/common/serde.h"
#include "src/dcn/traffic.h"
#include "src/fault/trace.h"
#include "src/orch/orchestrator.h"
#include "src/runtime/sweep.h"

using namespace ihbd;

namespace {

struct Setup {
  dcn::FatTree fat_tree;
  orch::FatTreeOrchestrator orchestrator;
  explicit Setup(int nodes)
      : fat_tree(dcn::FatTreeConfig{nodes, /*nodes_per_tor=*/8,
                                    /*tors_per_domain=*/64}),
        orchestrator(fat_tree, /*k=*/2, /*gpus_per_node=*/4) {}
};

/// Paired cross-ToR rates from one fault mask.
struct Rates {
  double optimized;
  double baseline;
};

/// Per-cell fold of Rates (moments only; the figure reports means).
struct RateAcc {
  runtime::Accumulator optimized;
  runtime::Accumulator baseline;
  RateAcc() {
    optimized.set_keep_samples(false);
    baseline.set_keep_samples(false);
  }
};

const runtime::shard::ShardCodec<RateAcc>& rate_codec() {
  static const runtime::shard::ShardCodec<RateAcc> codec{
      [](serde::Writer& w, const RateAcc& a) {
        a.optimized.save(w);
        a.baseline.save(w);
      },
      [](serde::Reader& r) {
        RateAcc a;
        a.optimized = runtime::Accumulator::load(r);
        a.baseline = runtime::Accumulator::load(r);
        return a;
      },
      [](RateAcc& into, RateAcc&& next) {
        into.optimized.merge(next.optimized);
        into.baseline.merge(next.baseline);
      }};
  return codec;
}

/// One Monte-Carlo trial: one mask, both placements.
Rates measure(int nodes, double fault_ratio, double job_ratio, Rng& rng) {
  Setup setup(nodes);
  const auto mask = fault::sample_fault_mask(nodes, fault_ratio, rng);
  orch::JobSpec job{32, static_cast<int>(nodes * 4 * job_ratio)};
  const int use = job.gpu_count / job.tp_size_gpus;

  const auto optimized = setup.orchestrator.orchestrate(mask, job);
  const double opt =
      dcn::evaluate_cross_tor(setup.fat_tree, optimized, 4, {}, use)
          .cross_tor_rate();
  const auto baseline =
      orch::greedy_baseline(setup.fat_tree, 2, 4, mask, job, rng);
  const double base =
      dcn::evaluate_cross_tor(setup.fat_tree, baseline, 4, {}, use)
          .cross_tor_rate();
  return {opt, base};
}

/// Shared sweep driver for one panel: a single axis, paired fold.
template <typename Trial>
runtime::GenericSweepResult<RateAcc> panel(std::uint64_t seed, int trials,
                                           runtime::Axis axis, Trial&& trial,
                                           int threads) {
  runtime::SweepSpec spec;
  spec.seed = seed;
  spec.trials = trials;
  spec.keep_samples = false;
  spec.axes = {std::move(axis)};
  return runtime::run_sweep_reduce(
      spec, RateAcc{}, std::forward<Trial>(trial),
      [](RateAcc& acc, Rates&& r) {
        acc.optimized.add(r.optimized);
        acc.baseline.add(r.baseline);
      },
      threads, nullptr, &rate_codec());
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figure 17a-c: HBD-DCN orchestration cross-ToR rate");
  const int trials = bench::trials_or(opt, opt.quick ? 2 : 5);

  {
    Table table("Fig. 17a: sensitivity to cluster size (job 85%, faults 5%)");
    table.set_header({"Cluster (GPU)", "Baseline", "Optimized"});
    const auto result = panel(
        170, trials,
        runtime::Axis::of_values("Nodes", {1024, 2048, 3072, 5120}),
        [](const runtime::Scenario& s, Rng& rng) {
          return measure(static_cast<int>(s.value(0)), 0.05, 0.85, rng);
        },
        opt.threads);
    for (std::size_t i = 0; i < result.spec.axes[0].size(); ++i) {
      const auto& c = result.cell({i});
      table.add_row(
          {std::to_string(static_cast<int>(result.spec.axes[0].values[i]) * 4),
           Table::pct(c.baseline.mean()), Table::pct(c.optimized.mean())});
    }
    bench::emit(opt, "fig17a_cluster_size", table);
  }

  {
    Table table("Fig. 17b: impact of job-scale ratio (8192 GPUs, faults 5%)");
    table.set_header({"Job scale", "Baseline", "Optimized", "Paper opt"});
    const char* paper[] = {"~0.5%", "~0.8%", "~1.1%", "1.72%"};
    const auto result = panel(
        171, trials,
        runtime::Axis::of_values("Job scale", {0.70, 0.80, 0.85, 0.90},
                                 [](double r) { return Table::pct(r, 0); }),
        [](const runtime::Scenario& s, Rng& rng) {
          return measure(2048, 0.05, s.value(0), rng);
        },
        opt.threads);
    for (std::size_t i = 0; i < result.spec.axes[0].size(); ++i) {
      const auto& c = result.cell({i});
      table.add_row({result.spec.axes[0].labels[i],
                     Table::pct(c.baseline.mean()),
                     Table::pct(c.optimized.mean()), paper[i]});
    }
    bench::emit(opt, "fig17b_job_scale", table);
  }

  {
    Table table("Fig. 17c: sensitivity to fault ratio (8192 GPUs, job 85%)");
    table.set_header({"Fault ratio", "Baseline", "Optimized"});
    const auto result = panel(
        172, trials,
        runtime::Axis::of_values("Fault ratio",
                                 {0.0, 0.01, 0.03, 0.05, 0.07, 0.08},
                                 [](double f) { return Table::pct(f, 0); }),
        [](const runtime::Scenario& s, Rng& rng) {
          return measure(2048, s.value(0), 0.85, rng);
        },
        opt.threads);
    for (std::size_t i = 0; i < result.spec.axes[0].size(); ++i) {
      const auto& c = result.cell({i});
      table.add_row({result.spec.axes[0].labels[i],
                     Table::pct(c.baseline.mean()),
                     Table::pct(c.optimized.mean())});
    }
    bench::emit(opt, "fig17c_fault_ratio", table);
  }

  std::puts("Paper: baseline ~10% throughout; optimized near-zero under 7% "
            "faults, 1.72% at 90% job scale.");
  bench::finish(opt);
  return 0;
}
