// Reproduces paper Fig. 12: measured BER vs transmit OMA at four ambient
// temperatures. Expected shape: identically 0 at -5/25 C; 0 in most cases
// at 50/75 C with occasional errors only at very low OMA.
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/phy/ber.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figure 12: BER vs OMA vs temperature");

  phy::OcsSwitchMatrix matrix;
  phy::BerModel ber(matrix);
  Rng rng(12);
  const int measurements = opt.quick ? 20 : 60;

  Table table("Measured BER (max over repeated runs; 0 = below 1e-13 tester floor)");
  table.set_header({"Temp (C)", "OMA (mW)", "max BER", "nonzero runs"});
  for (double temp : {-5.0, 25.0, 50.0, 75.0}) {
    for (double oma : {0.25, 0.40, 0.55, 0.70, 0.85, 1.00}) {
      double worst = 0.0;
      int nonzero = 0;
      for (int i = 0; i < measurements; ++i) {
        const double b =
            ber.measure_ber(phy::OcsPath::kExternal1, oma, temp, rng);
        worst = std::max(worst, b);
        if (b > 0.0) ++nonzero;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1e", worst);
      table.add_row({Table::fmt(temp, 0), Table::fmt(oma, 2),
                     worst == 0.0 ? "0" : buf,
                     std::to_string(nonzero) + "/" +
                         std::to_string(measurements)});
    }
  }
  bench::emit(opt, "fig12_ber", table);
  bench::finish(opt);
  return 0;
}
