// Reproduces paper Fig. 15: maximal job scale supported by the 2,880-GPU
// cluster per architecture and TP size, replaying the production trace
// (upper limit 2,880).
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figure 15: maximal job scale supported by 2,880 GPUs");

  const auto trace = bench::make_sim_trace(opt.quick);
  const auto archs = bench::make_archs();

  Table table("Job scale (GPUs) supportable 99% of the trace duration");
  std::vector<std::string> header{"Architecture"};
  for (int tp : {8, 16, 32, 64}) header.push_back("TP" + std::to_string(tp));
  table.set_header(header);

  for (const auto& arch : archs) {
    std::vector<std::string> row{arch->name()};
    for (int tp : {8, 16, 32, 64}) {
      if (!bench::arch_supports_tp(*arch, tp)) {
        row.push_back("-");
        continue;
      }
      const auto result =
          topo::evaluate_waste_over_trace(*arch, trace, tp, 1.0);
      row.push_back(std::to_string(
          topo::max_job_scale(result.usable_gpus, 0.99, tp)));
    }
    table.add_row(row);
  }
  table.add_row({"Upper limit", "2880", "2880", "2880", "2880"});
  bench::emit(opt, "fig15_max_job", table);
  return 0;
}
