// Reproduces paper Fig. 15: maximal job scale supported by the 2,880-GPU
// cluster per architecture and TP size, replaying the production trace
// (upper limit 2,880).
//
// Runs on the generic sweep engine: each (TP, arch) cell replays the trace
// in windows and carries the usable-GPUs series the job-scale quantile is
// derived from. Cells and their windows share one work-stealing pool
// (nested parallel_for); bit-identical for any --threads value.
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figure 15: maximal job scale supported by 2,880 GPUs");

  const auto trace = bench::make_sim_trace(opt.quick, opt.trace_model);
  const auto archs = bench::make_archs();

  // keep_samples=false: only the usable-GPUs series feeds the quantile.
  const auto grid =
      bench::replay_trace_grid(archs, trace, {8, 16, 32, 64}, opt.threads,
                               /*keep_samples=*/false, opt.incremental,
                               opt.packed);

  Table table("Job scale (GPUs) supportable 99% of the trace duration");
  std::vector<std::string> header{"Architecture"};
  for (int tp : {8, 16, 32, 64}) header.push_back("TP" + std::to_string(tp));
  table.set_header(header);

  for (std::size_t a = 0; a < archs.size(); ++a) {
    std::vector<std::string> row{archs[a]->name()};
    for (std::size_t t = 0; t < grid.spec.axes[0].size(); ++t) {
      const int tp = static_cast<int>(grid.spec.axes[0].values[t]);
      const auto& cell = grid.cell({t, a});
      if (!bench::replay_cell_supported(cell)) {
        row.push_back("-");
        continue;
      }
      row.push_back(
          std::to_string(topo::max_job_scale(cell.usable_gpus, 0.99, tp)));
    }
    table.add_row(row);
  }
  table.add_row({"Upper limit", "2880", "2880", "2880", "2880"});
  bench::emit(opt, "fig15_max_job", table);
  bench::finish(opt);
  return 0;
}
