// Reproduces paper Fig. 10: insertion loss (a) and per-path core-module
// power (b) of the OCSTrx across ambient temperature.
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/phy/switch_matrix.h"

using namespace ihbd;
using phy::OcsPath;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figure 10: OCSTrx core-module insertion loss & power vs temperature");

  phy::OcsSwitchMatrix matrix;
  Rng rng(2025);
  const int samples = opt.quick ? 200 : 1000;

  Table loss("Fig. 10a: insertion loss (dB) - paper: mean 3.3 dB @25C, range 2.5-4.0");
  loss.set_header({"Temp (C)", "Average Loss", "Max Loss", "Min Loss"});
  for (double temp : {0.0, 25.0, 50.0, 85.0}) {
    std::vector<double> xs;
    xs.reserve(samples);
    for (int i = 0; i < samples; ++i)
      xs.push_back(
          matrix.sample_insertion_loss_db(OcsPath::kExternal1, temp, rng));
    const Summary s = summarize(xs);
    loss.add_row({Table::fmt(temp, 0), Table::fmt(s.mean, 2),
                  Table::fmt(s.max, 2), Table::fmt(s.min, 2)});
  }
  bench::emit(opt, "fig10a_insertion_loss", loss);

  Table power("Fig. 10b: core-module power (W) per activated path - paper: < 3.2 W");
  power.set_header({"Temp (C)", "Path 1 (ext)", "Path 2 (ext)", "Path 3 (loop)"});
  for (double temp : {0.0, 25.0, 50.0, 85.0}) {
    power.add_row(
        {Table::fmt(temp, 0),
         Table::fmt(matrix.drive_power_w(OcsPath::kExternal1, temp), 3),
         Table::fmt(matrix.drive_power_w(OcsPath::kExternal2, temp), 3),
         Table::fmt(matrix.drive_power_w(OcsPath::kLoopback, temp), 3)});
  }
  bench::emit(opt, "fig10b_power", power);
  bench::finish(opt);
  return 0;
}
