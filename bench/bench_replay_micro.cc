// Micro-benchmark for the trace-replay tiers (see src/topo/waste.h):
// serial oracle, windowed from-scratch replay, and event-driven incremental
// replay, on the 348-day production-calibrated sim trace (720 4-GPU nodes,
// same cluster as Figs. 13/15/16/20). Covers the K-Hop Ring and the
// baseline architectures (per-island allocators vs the memoizing fallback
// they replaced). Reports replayed samples per second per tier; CI runs it
// to track the speedups. Built directly on the vendored bench/microbench.h
// harness so it needs no Google Benchmark.
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <memory>

#include "bench/fault_bench_common.h"
#include "bench/microbench.h"
#include "src/fault/transitions.h"
#include "src/topo/baselines.h"
#include "src/topo/incremental.h"
#include "src/topo/khop_ring.h"
#include "src/topo/waste.h"

using namespace ihbd;

namespace {

const fault::FaultTrace& sim_trace() {
  static const fault::FaultTrace trace = bench::make_sim_trace();
  return trace;
}

const topo::KHopRing& khop_ring() {
  static const topo::KHopRing ring(bench::kNodes4, bench::kGpusPerNode, 2);
  return ring;
}

topo::TraceReplayOptions replay_options(bool incremental,
                                        double step_days = 1.0) {
  topo::TraceReplayOptions opts;
  opts.step_days = step_days;
  opts.threads = 1;  // isolate the per-sample cost, not pool fan-out
  opts.incremental = incremental;
  return opts;
}

/// Shared measured loop: `iteration` does one replay and returns how many
/// samples it covered; reports samples/second. Every tier reports through
/// this one wrapper so the numbers stay comparable.
template <typename Iteration>
void run_samples_bench(benchmark::State& state, Iteration&& iteration) {
  std::size_t samples = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) samples += iteration();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (secs > 0.0)
    state.counters["samples/s"] = static_cast<double>(samples) / secs;
}

/// run_samples_bench for the evaluate_waste_over_trace tiers.
template <typename Replay>
void run_replay_bench(benchmark::State& state, Replay&& replay) {
  run_samples_bench(state, [&] {
    const topo::TraceWasteResult result = replay();
    benchmark::DoNotOptimize(result);
    return result.waste_ratio.size();
  });
}

}  // namespace

static void BM_replay_serial(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp, 1.0);
  });
}
BENCHMARK(BM_replay_serial)->Arg(8)->Arg(32);

static void BM_replay_windowed(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           replay_options(false));
  });
}
BENCHMARK(BM_replay_windowed)->Arg(8)->Arg(32);

static void BM_replay_incremental(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           replay_options(true));
  });
}
BENCHMARK(BM_replay_incremental)->Arg(8)->Arg(32);

// --- baseline architectures: per-island allocators vs memoizing fallback --
//
// Arg encodes (architecture, TP): the paper baselines that used to ride the
// O(N)-per-transition MemoizingAllocator and now have true per-island
// incremental allocators. TPUv4 appears in both regimes (per-cube
// fragmentation at TP-32, pooled clean-cube assembly at TP-128).

namespace {

struct BaselineCase {
  const char* label;
  int tp;
};
constexpr BaselineCase kBaselineCases[] = {
    {"NVL-72", 32}, {"TPUv4", 32}, {"TPUv4", 128},
    {"SiP-Ring", 32}, {"Big-Switch", 32},
};

const topo::HbdArchitecture& baseline_arch(int case_index) {
  static const auto archs = bench::make_archs();
  const char* want = kBaselineCases[case_index].label;
  for (const auto& arch : archs)
    if (arch->name() == want) return *arch;
  std::abort();  // unreachable: every case names a paper architecture
}

/// Replay loop pinned to a specific IncrementalAllocator implementation
/// (the production path dispatches via make_incremental_allocator, which
/// no longer hands baselines the memoizing fallback — so the fallback tier
/// is driven directly here for the comparison).
template <typename MakeAllocator>
void run_allocator_replay_bench(benchmark::State& state,
                                MakeAllocator&& make_allocator) {
  const auto c = kBaselineCases[state.range(0)];
  const topo::HbdArchitecture& arch = baseline_arch(
      static_cast<int>(state.range(0)));
  const std::vector<double> days = sim_trace().sample_days(1.0);
  run_samples_bench(state, [&] {
    fault::FaultMaskCursor cursor(sim_trace());
    const auto allocator = make_allocator(arch, c.tp);
    double sink = 0.0;
    for (const double day : days) {
      const std::vector<int>& flipped = cursor.advance_to(day);
      sink += allocator->apply(cursor.mask(), flipped).waste_ratio();
    }
    benchmark::DoNotOptimize(sink);
    return days.size();
  });
}

}  // namespace

static void BM_baseline_serial(benchmark::State& state) {
  const auto c = kBaselineCases[state.range(0)];
  const topo::HbdArchitecture& arch =
      baseline_arch(static_cast<int>(state.range(0)));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(arch, sim_trace(), c.tp, 1.0);
  });
}
BENCHMARK(BM_baseline_serial)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

static void BM_baseline_memoizing(benchmark::State& state) {
  run_allocator_replay_bench(state, [](const topo::HbdArchitecture& arch,
                                       int tp) {
    return std::make_unique<topo::MemoizingAllocator>(arch, tp);
  });
}
BENCHMARK(BM_baseline_memoizing)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

static void BM_baseline_island(benchmark::State& state) {
  run_allocator_replay_bench(state, [](const topo::HbdArchitecture& arch,
                                       int tp) {
    return topo::make_incremental_allocator(arch, tp);
  });
}
BENCHMARK(BM_baseline_island)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// Quarter-day sampling: the event-driven tier's home turf — the transition
// count is fixed by the trace, so 4x the samples cost the serial tiers 4x
// but the incremental tier almost nothing (most samples see no flips).
static void BM_replay_serial_quarter_day(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           0.25);
  });
}
BENCHMARK(BM_replay_serial_quarter_day)->Arg(32);

static void BM_replay_incremental_quarter_day(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           replay_options(true, 0.25));
  });
}
BENCHMARK(BM_replay_incremental_quarter_day)->Arg(32);

BENCHMARK_MAIN();
