// Micro-benchmark for the trace-replay tiers (see src/topo/waste.h):
// serial oracle, windowed from-scratch replay, event-driven incremental
// replay (pinned to the per-node flip-list path of PRs 4-5, the comparison
// baseline), and the word-parallel packed tier (PackedMask + per-word XOR
// deltas), on the 348-day production-calibrated sim trace (720 4-GPU
// nodes, same cluster as Figs. 13/15/16/20). Covers the K-Hop Ring and the
// baseline architectures (per-island allocators vs the memoizing fallback
// they replaced, each with a packed variant). Reports replayed samples per
// second per tier; CI runs it to track the speedups. Built directly on the
// vendored bench/microbench.h harness so it needs no Google Benchmark.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <memory>

#include "bench/fault_bench_common.h"
#include "bench/microbench.h"
#include "src/fault/transitions.h"
#include "src/topo/baselines.h"
#include "src/topo/incremental.h"
#include "src/topo/khop_ring.h"
#include "src/topo/waste.h"

using namespace ihbd;

namespace {

const fault::FaultTrace& sim_trace() {
  static const fault::FaultTrace trace = bench::make_sim_trace();
  return trace;
}

const topo::KHopRing& khop_ring() {
  static const topo::KHopRing ring(bench::kNodes4, bench::kGpusPerNode, 2);
  return ring;
}

topo::TraceReplayOptions replay_options(bool incremental, bool packed,
                                        double step_days = 1.0) {
  topo::TraceReplayOptions opts;
  opts.step_days = step_days;
  opts.threads = 1;  // isolate the per-sample cost, not pool fan-out
  opts.incremental = incremental;
  opts.packed = packed;
  return opts;
}

/// Shared measured loop: `iteration` does one replay and returns how many
/// samples it covered; reports samples/second. Every tier reports through
/// this one wrapper so the numbers stay comparable.
template <typename Iteration>
void run_samples_bench(benchmark::State& state, Iteration&& iteration) {
  std::size_t samples = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) samples += iteration();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (secs > 0.0)
    state.counters["samples/s"] = static_cast<double>(samples) / secs;
}

/// run_samples_bench for the evaluate_waste_over_trace tiers.
template <typename Replay>
void run_replay_bench(benchmark::State& state, Replay&& replay) {
  run_samples_bench(state, [&] {
    const topo::TraceWasteResult result = replay();
    benchmark::DoNotOptimize(result);
    return result.waste_ratio.size();
  });
}

}  // namespace

static void BM_replay_serial(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp, 1.0);
  });
}
BENCHMARK(BM_replay_serial)->Arg(8)->Arg(32);

static void BM_replay_windowed(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           replay_options(false, false));
  });
}
BENCHMARK(BM_replay_windowed)->Arg(8)->Arg(32);

// Pinned to packed=false: this tier IS the PR 4/5 flip-list pipeline, kept
// as the speedup denominator for the packed tier below.
static void BM_replay_incremental(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           replay_options(true, false));
  });
}
BENCHMARK(BM_replay_incremental)->Arg(8)->Arg(32);

// The word-parallel tier: packed masks + per-word XOR deltas end-to-end
// (cursor.advance_to_words into apply_words, popcount healthy counts).
static void BM_replay_packed(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           replay_options(true, true));
  });
}
BENCHMARK(BM_replay_packed)->Arg(8)->Arg(32);

// --- baseline architectures: per-island allocators vs memoizing fallback --
//
// Arg encodes (architecture, TP): the paper baselines that used to ride the
// O(N)-per-transition MemoizingAllocator and now have true per-island
// incremental allocators. TPUv4 appears in both regimes (per-cube
// fragmentation at TP-32, pooled clean-cube assembly at TP-128).

namespace {

struct BaselineCase {
  const char* label;
  int tp;
};
constexpr BaselineCase kBaselineCases[] = {
    {"NVL-72", 32}, {"TPUv4", 32}, {"TPUv4", 128},
    {"SiP-Ring", 32}, {"Big-Switch", 32},
};

const topo::HbdArchitecture& baseline_arch(int case_index) {
  static const auto archs = bench::make_archs();
  const char* want = kBaselineCases[case_index].label;
  for (const auto& arch : archs)
    if (arch->name() == want) return *arch;
  std::abort();  // unreachable: every case names a paper architecture
}

/// Replay loop pinned to a specific IncrementalAllocator implementation
/// (the production path dispatches via make_incremental_allocator, which
/// no longer hands baselines the memoizing fallback — so the fallback tier
/// is driven directly here for the comparison). `packed` picks the cursor
/// entry point: per-node flip lists into apply() (the PR 4/5 path) vs
/// per-word XOR deltas into apply_words().
template <typename MakeAllocator>
void run_allocator_replay_bench(benchmark::State& state,
                                MakeAllocator&& make_allocator,
                                bool packed = false) {
  const auto c = kBaselineCases[state.range(0)];
  const topo::HbdArchitecture& arch = baseline_arch(
      static_cast<int>(state.range(0)));
  const std::vector<double> days = sim_trace().sample_days(1.0);
  run_samples_bench(state, [&] {
    // The packed loop binds its cursor to the grid-folded timeline, exactly
    // as the production replay in src/topo/waste.cc does.
    fault::FaultMaskCursor cursor =
        packed ? fault::FaultMaskCursor(sim_trace(), 1.0)
               : fault::FaultMaskCursor(sim_trace());
    const auto allocator = make_allocator(arch, c.tp);
    double sink = 0.0;
    if (packed) {
      for (const double day : days) {
        const auto& deltas = cursor.advance_to_words(day);
        sink += allocator->apply_words(cursor.packed_mask(), deltas)
                    .waste_ratio();
      }
    } else {
      for (const double day : days) {
        const std::vector<int>& flipped = cursor.advance_to(day);
        sink += allocator->apply(cursor.mask(), flipped).waste_ratio();
      }
    }
    benchmark::DoNotOptimize(sink);
    return days.size();
  });
}

}  // namespace

static void BM_baseline_serial(benchmark::State& state) {
  const auto c = kBaselineCases[state.range(0)];
  const topo::HbdArchitecture& arch =
      baseline_arch(static_cast<int>(state.range(0)));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(arch, sim_trace(), c.tp, 1.0);
  });
}
BENCHMARK(BM_baseline_serial)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

static void BM_baseline_memoizing(benchmark::State& state) {
  run_allocator_replay_bench(state, [](const topo::HbdArchitecture& arch,
                                       int tp) {
    return std::make_unique<topo::MemoizingAllocator>(arch, tp);
  });
}
BENCHMARK(BM_baseline_memoizing)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

static void BM_baseline_island(benchmark::State& state) {
  run_allocator_replay_bench(state, [](const topo::HbdArchitecture& arch,
                                       int tp) {
    return topo::make_incremental_allocator(arch, tp);
  });
}
BENCHMARK(BM_baseline_island)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

static void BM_baseline_packed(benchmark::State& state) {
  run_allocator_replay_bench(
      state,
      [](const topo::HbdArchitecture& arch, int tp) {
        return topo::make_incremental_allocator(arch, tp);
      },
      /*packed=*/true);
}
BENCHMARK(BM_baseline_packed)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// --- nested sweep × replay: one work-stealing pool for both levels --------
//
// The shape that motivated the scheduler (ISSUE 5): a LOW-CELL-COUNT sweep
// of LONG replays. Four (TP, step) cells of the from-scratch windowed
// replay with uneven cost — two daily cells and two quarter-day cells, i.e.
// 1+1+4+4 units of work — on a >= 8-worker pool. Outer-only fan-out (the
// pre-scheduler behavior: cells parallel, each replay pinned to 1 thread)
// is wall-clock-bounded by the heaviest cell replaying alone (~4 units);
// the nested tier fans every cell's windows on the SAME pool, so the bound
// drops to total-work / workers (10/8 units on 8 workers, ~3.2x ideal).
// Speedups require real cores: with fewer cores than cells both tiers
// saturate the machine and report the same throughput.

namespace {

constexpr int kNestedWorkers = 8;

topo::TraceWasteResult nested_cell_replay(const runtime::Scenario& s,
                                          runtime::ThreadPool* inner_pool) {
  topo::TraceReplayOptions opts;
  opts.step_days = s.value(0);
  opts.incremental = false;  // from-scratch windowed: the expensive tier
  opts.keep_samples = false;
  if (inner_pool != nullptr)
    opts.pool = inner_pool;  // nested: windows steal idle sweep workers
  else
    opts.threads = 1;  // outer-only: the pre-scheduler workaround
  return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(),
                                         static_cast<int>(s.value(1)), opts);
}

void run_nested_sweep_bench(benchmark::State& state, bool nested) {
  static runtime::ThreadPool pool(
      std::max(kNestedWorkers, runtime::ThreadPool::default_threads()));
  runtime::SweepSpec spec;
  spec.trials = 1;
  spec.axes = {runtime::Axis::of_values("step", {1.0, 0.25}),
               runtime::Axis::of_values("TP", {8, 32})};
  run_samples_bench(state, [&] {
    const auto grid = runtime::run_sweep_reduce(
        spec, topo::TraceWasteResult{},
        [&](const runtime::Scenario& s, Rng&) {
          return nested_cell_replay(s, nested ? &pool : nullptr);
        },
        [](topo::TraceWasteResult& acc, topo::TraceWasteResult&& replay) {
          acc = std::move(replay);
        },
        /*threads=*/0, &pool);
    std::size_t samples = 0;
    for (const auto& cell : grid.cells) samples += cell.waste_ratio.size();
    benchmark::DoNotOptimize(samples);
    return samples;
  });
}

}  // namespace

static void BM_nested_sweep_outer_only(benchmark::State& state) {
  run_nested_sweep_bench(state, false);
}
BENCHMARK(BM_nested_sweep_outer_only);

static void BM_nested_sweep_shared_pool(benchmark::State& state) {
  run_nested_sweep_bench(state, true);
}
BENCHMARK(BM_nested_sweep_shared_pool);

// Quarter-day sampling: the event-driven tier's home turf — the transition
// count is fixed by the trace, so 4x the samples cost the serial tiers 4x
// but the incremental tier almost nothing (most samples see no flips).
static void BM_replay_serial_quarter_day(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           0.25);
  });
}
BENCHMARK(BM_replay_serial_quarter_day)->Arg(32);

static void BM_replay_incremental_quarter_day(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           replay_options(true, false, 0.25));
  });
}
BENCHMARK(BM_replay_incremental_quarter_day)->Arg(32);

static void BM_replay_packed_quarter_day(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           replay_options(true, true, 0.25));
  });
}
BENCHMARK(BM_replay_packed_quarter_day)->Arg(32);

BENCHMARK_MAIN();
