// Micro-benchmark for the trace-replay tiers (see src/topo/waste.h):
// serial oracle, windowed from-scratch replay, and event-driven incremental
// replay, on the 348-day production-calibrated sim trace (720 4-GPU nodes,
// same cluster as Figs. 13/15/16/20). Reports replayed samples per second
// per tier; CI runs it to track the incremental speedup. Built directly on
// the vendored bench/microbench.h harness so it needs no Google Benchmark.
#include <chrono>
#include <cstddef>

#include "bench/fault_bench_common.h"
#include "bench/microbench.h"
#include "src/topo/khop_ring.h"
#include "src/topo/waste.h"

using namespace ihbd;

namespace {

const fault::FaultTrace& sim_trace() {
  static const fault::FaultTrace trace = bench::make_sim_trace();
  return trace;
}

const topo::KHopRing& khop_ring() {
  static const topo::KHopRing ring(bench::kNodes4, bench::kGpusPerNode, 2);
  return ring;
}

topo::TraceReplayOptions replay_options(bool incremental,
                                        double step_days = 1.0) {
  topo::TraceReplayOptions opts;
  opts.step_days = step_days;
  opts.threads = 1;  // isolate the per-sample cost, not pool fan-out
  opts.incremental = incremental;
  return opts;
}

/// Shared measured loop: replays per iteration, reports samples/second.
template <typename Replay>
void run_replay_bench(benchmark::State& state, Replay&& replay) {
  std::size_t samples = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const topo::TraceWasteResult result = replay();
    benchmark::DoNotOptimize(result);
    samples += result.waste_ratio.size();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (secs > 0.0)
    state.counters["samples/s"] = static_cast<double>(samples) / secs;
}

}  // namespace

static void BM_replay_serial(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp, 1.0);
  });
}
BENCHMARK(BM_replay_serial)->Arg(8)->Arg(32);

static void BM_replay_windowed(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           replay_options(false));
  });
}
BENCHMARK(BM_replay_windowed)->Arg(8)->Arg(32);

static void BM_replay_incremental(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           replay_options(true));
  });
}
BENCHMARK(BM_replay_incremental)->Arg(8)->Arg(32);

// Quarter-day sampling: the event-driven tier's home turf — the transition
// count is fixed by the trace, so 4x the samples cost the serial tiers 4x
// but the incremental tier almost nothing (most samples see no flips).
static void BM_replay_serial_quarter_day(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           0.25);
  });
}
BENCHMARK(BM_replay_serial_quarter_day)->Arg(32);

static void BM_replay_incremental_quarter_day(benchmark::State& state) {
  const int tp = static_cast<int>(state.range(0));
  run_replay_bench(state, [&] {
    return topo::evaluate_waste_over_trace(khop_ring(), sim_trace(), tp,
                                           replay_options(true, 0.25));
  });
}
BENCHMARK(BM_replay_incremental_quarter_day)->Arg(32);

BENCHMARK_MAIN();
