// Reproduces paper Fig. 18 (Appendix A): fault-node-ratio trace overview
// and its CDF for the production-calibrated synthetic trace.
// Paper statistics: mean 2.33%, p50 1.67%, p99 7.22% over 348 days.
#include "bench/bench_util.h"
#include "src/fault/generator.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figure 18: production fault trace statistics");

  const auto trace = fault::generate_trace();
  const Summary s = trace.ratio_summary(0.25);

  Table stats("Fig. 18 trace statistics (8-GPU nodes)");
  stats.set_header({"Metric", "Reproduced", "Paper"});
  stats.add_row({"mean fault-node ratio", Table::pct(s.mean), "2.33%"});
  stats.add_row({"p50", Table::pct(s.p50), "1.67%"});
  stats.add_row({"p99", Table::pct(s.p99), "7.22%"});
  stats.add_row({"duration (days)", Table::fmt(trace.duration_days(), 0),
                 "348"});
  stats.add_row({"fault events", std::to_string(trace.events().size()), "-"});
  stats.add_row({"mean repair (days)", Table::fmt(trace.mean_repair_days(), 2),
                 "-"});
  bench::emit(opt, "fig18_stats", stats);

  Table series("Fig. 18a: fault-node ratio over time (weekly samples)");
  series.set_header({"Day", "Fault Node Ratio"});
  const auto ts = trace.ratio_series(7.0);
  for (std::size_t i = 0; i < ts.size(); ++i)
    series.add_row({Table::fmt(ts.t[i], 0), Table::pct(ts.v[i])});
  bench::emit(opt, "fig18a_series", series);

  Table cdf("Fig. 18b: CDF of fault-node ratio");
  cdf.set_header({"Ratio", "CDF"});
  const auto points = empirical_cdf(trace.ratio_series(0.25).v);
  for (std::size_t i = 0; i < points.size(); i += points.size() / 20 + 1)
    cdf.add_row({Table::pct(points[i].value), Table::fmt(points[i].cum_prob, 3)});
  bench::emit(opt, "fig18b_cdf", cdf);

  // The Appendix-A normalization.
  Rng rng(91);
  const auto trace4 = trace.split_to_half_nodes(rng);
  Table norm("Appendix A: 8-GPU -> 4-GPU node normalization");
  norm.set_header({"Trace", "Nodes", "Mean fault ratio"});
  norm.add_row({"8-GPU nodes", std::to_string(trace.node_count()),
                Table::pct(s.mean)});
  norm.add_row({"4-GPU nodes", std::to_string(trace4.node_count()),
                Table::pct(trace4.ratio_summary(0.25).mean)});
  bench::emit(opt, "fig18_normalization", norm);
  bench::finish(opt);
  return 0;
}
