// Shared helpers for the bench harness. Every bench binary regenerates one
// table or figure of the paper: it prints the same rows/series the paper
// reports and, with --csv <dir>, also writes machine-readable CSV.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "src/common/csv.h"
#include "src/common/table.h"

namespace ihbd::bench {

struct Options {
  std::string csv_dir;  ///< empty = stdout only
  bool quick = false;   ///< reduced trial counts (CI mode)
  int trials = 0;       ///< 0 = the bench's own default (--trials N)
  int threads = 0;      ///< 0 = hardware concurrency (--threads N)
  /// Event-driven trace replay (--incremental 0|1). On by default; 0 runs
  /// the from-scratch windowed replay — output is bit-identical either way
  /// (CI diffs the two).
  bool incremental = true;
};

namespace detail {

[[noreturn]] inline void usage_error(const char* prog, const std::string& why) {
  std::fprintf(stderr,
               "%s: %s\n"
               "usage: %s [--quick] [--csv <dir>] [--trials N] [--threads N] "
               "[--incremental 0|1]\n",
               prog, why.c_str(), prog);
  std::exit(2);
}

inline bool parse_bool01(const char* prog, const std::string& flag,
                         const char* text) {
  const std::string value = text;
  if (value != "0" && value != "1")
    usage_error(prog, flag + " expects 0 or 1, got '" + value + "'");
  return value == "1";
}

inline int parse_positive_int(const char* prog, const std::string& flag,
                              const char* text) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v <= 0 ||
      v > std::numeric_limits<int>::max())
    usage_error(prog, flag + " expects a positive integer, got '" +
                          std::string(text) + "'");
  return static_cast<int>(v);
}

}  // namespace detail

/// Parse the shared bench flags. Unknown flags and missing flag values are
/// hard errors (exit 2) so typos cannot silently run the default config.
inline Options parse_args(int argc, char** argv) {
  Options opt;
  const char* prog = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      if (++i >= argc) detail::usage_error(prog, "--csv expects a directory");
      opt.csv_dir = argv[i];
    } else if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--trials") {
      if (++i >= argc) detail::usage_error(prog, "--trials expects a value");
      opt.trials = detail::parse_positive_int(prog, arg, argv[i]);
    } else if (arg == "--threads") {
      if (++i >= argc) detail::usage_error(prog, "--threads expects a value");
      opt.threads = detail::parse_positive_int(prog, arg, argv[i]);
    } else if (arg == "--incremental") {
      if (++i >= argc)
        detail::usage_error(prog, "--incremental expects 0 or 1");
      opt.incremental = detail::parse_bool01(prog, arg, argv[i]);
    } else {
      detail::usage_error(prog, "unknown flag '" + arg + "'");
    }
  }
  return opt;
}

/// The trial count to use: the --trials override, else the bench default.
inline int trials_or(const Options& opt, int bench_default) {
  return opt.trials > 0 ? opt.trials : bench_default;
}

inline void emit(const Options& opt, const std::string& name,
                 const Table& table) {
  table.print();
  std::puts("");
  if (!opt.csv_dir.empty()) write_csv(opt.csv_dir, name, table);
}

inline void banner(const std::string& what) {
  std::printf("=== %s ===\n", what.c_str());
}

}  // namespace ihbd::bench
