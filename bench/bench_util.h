// Shared helpers for the bench harness. Every bench binary regenerates one
// table or figure of the paper: it prints the same rows/series the paper
// reports and, with --csv <dir>, also writes machine-readable CSV.
#pragma once

#include <cstdio>
#include <string>

#include "src/common/csv.h"
#include "src/common/table.h"

namespace ihbd::bench {

struct Options {
  std::string csv_dir;  ///< empty = stdout only
  bool quick = false;   ///< reduced trial counts (CI mode)
};

inline Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv" && i + 1 < argc) {
      opt.csv_dir = argv[++i];
    } else if (arg == "--quick") {
      opt.quick = true;
    }
  }
  return opt;
}

inline void emit(const Options& opt, const std::string& name,
                 const Table& table) {
  table.print();
  std::puts("");
  if (!opt.csv_dir.empty()) write_csv(opt.csv_dir, name, table);
}

inline void banner(const std::string& what) {
  std::printf("=== %s ===\n", what.c_str());
}

}  // namespace ihbd::bench
