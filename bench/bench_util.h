// Shared helpers for the bench harness. Every bench binary regenerates one
// table or figure of the paper: it prints the same rows/series the paper
// reports and, with --csv <dir>, also writes machine-readable CSV.
//
// Observability (--metrics / --trace-out) never perturbs the bench output:
// the metrics snapshot table goes to STDERR and the artifacts (metrics.json,
// the Perfetto trace) are separate files, so stdout and the CSVs stay
// byte-identical with instrumentation on or off — CI diffs them.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>

#include "src/common/csv.h"
#include "src/common/table.h"
#include "src/fault/physics_generator.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/shard.h"
#include "src/sweepd/protocol.h"

namespace ihbd::bench {

struct Options {
  std::string csv_dir;  ///< empty = stdout only
  bool quick = false;   ///< reduced trial counts (CI mode)
  int trials = 0;       ///< 0 = the bench's own default (--trials N)
  int threads = 0;      ///< 0 = hardware concurrency (--threads N)
  /// Event-driven trace replay (--incremental 0|1). On by default; 0 runs
  /// the from-scratch windowed replay — output is bit-identical either way
  /// (CI diffs the two).
  bool incremental = true;
  /// Word-parallel replay core (--packed 0|1). On by default; 0 restores
  /// the per-node flip-list pipeline — output is bit-identical either way
  /// (CI diffs the two).
  bool packed = true;
  /// --trace-model poisson|physics|storm: which synthetic fault-trace
  /// family the fault benches replay (src/fault/generator.h Poisson draws
  /// vs src/fault/physics_generator.h degradation / degradation+storms).
  /// All three are calibrated to the paper's Appendix A statistics; output
  /// stays byte-identical across threads/packed/incremental/shards within
  /// any one model.
  fault::TraceModel trace_model = fault::TraceModel::kPoisson;
  /// --metrics: enable the src/obs metrics registry; at exit, print the
  /// snapshot table to stderr and write metrics.json (into --csv dir when
  /// given, else the working directory).
  bool metrics = false;
  /// --trace-out <file>: enable span tracing and export a Chrome
  /// trace-event / Perfetto JSON trace to this path at exit.
  std::string trace_out;
  /// --shard-dir <dir>: join a distributed sweep through the shared run
  /// directory (src/sweepd/protocol.h). Every codec-equipped sweep in the
  /// bench then runs plan -> claim/execute -> reduce across all processes
  /// sharing the dir; stdout stays byte-identical to a single-process run
  /// (all sharding chatter goes to stderr). Empty = local execution.
  std::string shard_dir;
  /// --shard-role worker|coordinator (default worker): whether this
  /// process claims+executes shards or only waits and reduces.
  bool shard_execute = true;
  std::string shard_owner;        ///< --shard-owner (default <host>-<pid>)
  int shard_count = 16;           ///< --shard-count (plan granularity)
  double shard_lease_s = 15.0;    ///< --shard-lease-s (stale threshold)
  double shard_poll_s = 0.2;      ///< --shard-poll-s (wait poll interval)
  double shard_timeout_s = 0.0;   ///< --shard-timeout-s (0 = wait forever)
  int shard_checkpoint_every = 1; ///< --shard-checkpoint-every (cells)
};

namespace detail {

inline const char* usage_text() {
  return
      "  --quick             reduced trial counts (CI smoke mode)\n"
      "  --csv <dir>         also write machine-readable CSV into <dir>\n"
      "  --trials N          override the bench's default trial count\n"
      "  --threads N         worker threads (default: hardware concurrency)\n"
      "  --incremental 0|1   event-driven trace replay (default 1); output\n"
      "                      is bit-identical either way\n"
      "  --packed 0|1        word-parallel packed-mask replay (default 1);\n"
      "                      output is bit-identical either way\n"
      "  --trace-model M     fault-trace family: poisson (default) | physics\n"
      "                      (degradation + thermal bursts) | storm (adds\n"
      "                      correlated blast-radius failures)\n"
      "  --metrics           collect src/obs metrics; print a snapshot table\n"
      "                      to stderr and write metrics.json at exit\n"
      "  --trace-out <file>  record spans; write a Perfetto / Chrome\n"
      "                      trace-event JSON trace to <file> at exit\n"
      "  --shard-dir <dir>   join a distributed sweep via this shared run\n"
      "                      directory (see ihbd-sweepd); stdout stays\n"
      "                      byte-identical to a single-process run\n"
      "  --shard-role R      worker (claim+execute, default) | coordinator\n"
      "                      (wait and reduce only)\n"
      "  --shard-owner NAME  participant id (default <host>-<pid>)\n"
      "  --shard-count N     plan granularity (first dir creator wins; 16)\n"
      "  --shard-lease-s S   reclaim leases idle longer than S (15)\n"
      "  --shard-poll-s S    poll interval while waiting on results (0.2)\n"
      "  --shard-timeout-s S give up waiting after S seconds (0 = never)\n"
      "  --shard-checkpoint-every N  checkpoint per N completed cells (1)\n"
      "  --help              print this help and exit\n";
}

[[noreturn]] inline void usage_error(const char* prog, const std::string& why) {
  std::fprintf(stderr,
               "%s: %s\n"
               "usage: %s [--quick] [--csv <dir>] [--trials N] [--threads N] "
               "[--incremental 0|1] [--packed 0|1] [--metrics] "
               "[--trace-out <file>] [--help]\n%s",
               prog, why.c_str(), prog, usage_text());
  std::exit(2);
}

[[noreturn]] inline void print_help(const char* prog) {
  std::printf(
      "usage: %s [--quick] [--csv <dir>] [--trials N] [--threads N] "
      "[--incremental 0|1] [--packed 0|1] [--metrics] [--trace-out <file>] "
      "[--help]\n%s",
      prog, usage_text());
  std::exit(0);
}

inline bool parse_bool01(const char* prog, const std::string& flag,
                         const char* text) {
  const std::string value = text;
  if (value != "0" && value != "1")
    usage_error(prog, flag + " expects 0 or 1, got '" + value + "'");
  return value == "1";
}

inline fault::TraceModel parse_trace_model(const char* prog,
                                           const std::string& flag,
                                           const char* text) {
  const std::string value = text;
  if (value == "poisson") return fault::TraceModel::kPoisson;
  if (value == "physics") return fault::TraceModel::kPhysics;
  if (value == "storm") return fault::TraceModel::kStorm;
  usage_error(prog,
              flag + " expects poisson|physics|storm, got '" + value + "'");
}

inline int parse_positive_int(const char* prog, const std::string& flag,
                              const char* text) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v <= 0 ||
      v > std::numeric_limits<int>::max())
    usage_error(prog, flag + " expects a positive integer, got '" +
                          std::string(text) + "'");
  return static_cast<int>(v);
}

inline double parse_seconds(const char* prog, const std::string& flag,
                            const char* text, bool allow_zero) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || v < 0.0 ||
      (!allow_zero && v == 0.0))
    usage_error(prog, flag + " expects a duration in seconds, got '" +
                          std::string(text) + "'");
  return v;
}

/// The ambient FileShardContext installed by --shard-dir. Owned here so it
/// outlives every sweep in the bench and is still around for finish()'s
/// fleet metrics merge.
inline std::unique_ptr<sweepd::FileShardContext>& shard_context_holder() {
  static std::unique_ptr<sweepd::FileShardContext> holder;
  return holder;
}

}  // namespace detail

/// Parse the shared bench flags. Unknown flags and missing flag values are
/// hard errors (exit 2) so typos cannot silently run the default config;
/// --help prints usage to stdout and exits 0. Enables the obs subsystems
/// requested by --metrics / --trace-out before returning, so spans and
/// counters cover the whole run.
inline Options parse_args(int argc, char** argv) {
  Options opt;
  const char* prog = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      if (++i >= argc) detail::usage_error(prog, "--csv expects a directory");
      opt.csv_dir = argv[i];
    } else if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--trials") {
      if (++i >= argc) detail::usage_error(prog, "--trials expects a value");
      opt.trials = detail::parse_positive_int(prog, arg, argv[i]);
    } else if (arg == "--threads") {
      if (++i >= argc) detail::usage_error(prog, "--threads expects a value");
      opt.threads = detail::parse_positive_int(prog, arg, argv[i]);
    } else if (arg == "--incremental") {
      if (++i >= argc)
        detail::usage_error(prog, "--incremental expects 0 or 1");
      opt.incremental = detail::parse_bool01(prog, arg, argv[i]);
    } else if (arg == "--packed") {
      if (++i >= argc) detail::usage_error(prog, "--packed expects 0 or 1");
      opt.packed = detail::parse_bool01(prog, arg, argv[i]);
    } else if (arg == "--trace-model") {
      if (++i >= argc)
        detail::usage_error(prog, "--trace-model expects poisson|physics|storm");
      opt.trace_model = detail::parse_trace_model(prog, arg, argv[i]);
    } else if (arg == "--metrics") {
      opt.metrics = true;
    } else if (arg == "--trace-out") {
      if (++i >= argc) detail::usage_error(prog, "--trace-out expects a file");
      opt.trace_out = argv[i];
    } else if (arg == "--shard-dir") {
      if (++i >= argc)
        detail::usage_error(prog, "--shard-dir expects a directory");
      opt.shard_dir = argv[i];
    } else if (arg == "--shard-role") {
      if (++i >= argc)
        detail::usage_error(prog, "--shard-role expects worker|coordinator");
      const std::string role = argv[i];
      if (role == "worker")
        opt.shard_execute = true;
      else if (role == "coordinator")
        opt.shard_execute = false;
      else
        detail::usage_error(prog, "--shard-role expects worker|coordinator, "
                                  "got '" + role + "'");
    } else if (arg == "--shard-owner") {
      if (++i >= argc) detail::usage_error(prog, "--shard-owner expects a name");
      opt.shard_owner = argv[i];
    } else if (arg == "--shard-count") {
      if (++i >= argc) detail::usage_error(prog, "--shard-count expects a value");
      opt.shard_count = detail::parse_positive_int(prog, arg, argv[i]);
    } else if (arg == "--shard-lease-s") {
      if (++i >= argc)
        detail::usage_error(prog, "--shard-lease-s expects seconds");
      opt.shard_lease_s =
          detail::parse_seconds(prog, arg, argv[i], /*allow_zero=*/false);
    } else if (arg == "--shard-poll-s") {
      if (++i >= argc)
        detail::usage_error(prog, "--shard-poll-s expects seconds");
      opt.shard_poll_s =
          detail::parse_seconds(prog, arg, argv[i], /*allow_zero=*/false);
    } else if (arg == "--shard-timeout-s") {
      if (++i >= argc)
        detail::usage_error(prog, "--shard-timeout-s expects seconds");
      opt.shard_timeout_s =
          detail::parse_seconds(prog, arg, argv[i], /*allow_zero=*/true);
    } else if (arg == "--shard-checkpoint-every") {
      if (++i >= argc)
        detail::usage_error(prog, "--shard-checkpoint-every expects a value");
      opt.shard_checkpoint_every =
          detail::parse_positive_int(prog, arg, argv[i]);
    } else if (arg == "--help" || arg == "-h") {
      detail::print_help(prog);
    } else {
      detail::usage_error(prog, "unknown flag '" + arg + "'");
    }
  }
  if (opt.metrics) obs::set_enabled(true);
  if (!opt.trace_out.empty()) obs::set_trace_enabled(true);
  if (!opt.shard_dir.empty()) {
    sweepd::FileShardOptions fso;
    fso.dir = opt.shard_dir;
    fso.owner = opt.shard_owner;
    fso.execute = opt.shard_execute;
    fso.lease_timeout_s = opt.shard_lease_s;
    fso.poll_interval_s = opt.shard_poll_s;
    fso.wait_timeout_s = opt.shard_timeout_s;
    fso.max_shards = static_cast<std::size_t>(opt.shard_count);
    fso.checkpoint_every = static_cast<std::size_t>(opt.shard_checkpoint_every);
    auto& holder = detail::shard_context_holder();
    holder = std::make_unique<sweepd::FileShardContext>(std::move(fso));
    runtime::shard::set_context(holder.get());
    std::fprintf(stderr, "shard: joined run dir %s as %s (%s)\n",
                 holder->options().dir.c_str(), holder->options().owner.c_str(),
                 opt.shard_execute ? "worker" : "coordinator");
  }
  return opt;
}

/// The trial count to use: the --trials override, else the bench default.
inline int trials_or(const Options& opt, int bench_default) {
  return opt.trials > 0 ? opt.trials : bench_default;
}

inline void emit(const Options& opt, const std::string& name,
                 const Table& table) {
  table.print();
  std::puts("");
  if (!opt.csv_dir.empty()) write_csv(opt.csv_dir, name, table);
}

inline void banner(const std::string& what) {
  std::printf("=== %s ===\n", what.c_str());
}

/// Flush observability artifacts at the end of a bench run. With --metrics:
/// snapshot table to stderr plus metrics.json (in --csv dir when given,
/// else "."). With --trace-out: the span trace as Perfetto-loadable JSON.
/// Everything goes to stderr or separate files — stdout stays byte-identical
/// to an uninstrumented run.
inline void finish(const Options& opt) {
  if (opt.metrics) {
    obs::MetricsSnapshot snap = obs::snapshot();
    if (auto& ctx = detail::shard_context_holder(); ctx != nullptr) {
      // Publish this process's counters into the run dir, then report the
      // whole fleet: metrics.json holds one merged snapshot no matter how
      // many workers took part (kill-resumed workers' checkpointed counters
      // included via the carried snapshots).
      if (ctx->write_own_metrics(snap))
        std::fprintf(stderr, "shard: metrics published under %s/metrics\n",
                     ctx->options().dir.c_str());
      snap = sweepd::merge_metrics_dir(ctx->options().dir);
    }
    std::fputs(snap.to_table().to_string().c_str(), stderr);
    const std::string path =
        (opt.csv_dir.empty() ? std::string(".") : opt.csv_dir) +
        "/metrics.json";
    if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
      const std::string json = snap.to_json();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::fprintf(stderr, "metrics snapshot written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to '%s'\n", path.c_str());
    }
  }
  if (!opt.trace_out.empty()) {
    if (obs::write_trace_json(opt.trace_out)) {
      std::fprintf(stderr, "trace written to %s", opt.trace_out.c_str());
      if (const std::uint64_t dropped = obs::trace_dropped(); dropped > 0)
        std::fprintf(stderr, " (%llu events dropped at the per-thread cap)",
                     static_cast<unsigned long long>(dropped));
      std::fputc('\n', stderr);
    }
  }
}

}  // namespace ihbd::bench
