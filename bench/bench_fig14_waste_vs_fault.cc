// Reproduces paper Fig. 14 (TP-16/TP-32) and Fig. 22 (TP-8..TP-64): mean
// GPU waste ratio as the node fault ratio sweeps 0-10% (i.i.d. fault
// model), per HBD architecture, 4-GPU nodes.
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figures 14 & 22: GPU waste ratio vs node fault ratio");

  const auto archs = bench::make_archs();
  const int trials = opt.quick ? 30 : 200;
  Rng rng(14);

  for (int tp : {8, 16, 32, 64}) {
    Table table("TP-" + std::to_string(tp) + ": mean waste ratio (" +
                std::to_string(trials) + " trials per point)");
    std::vector<std::string> header{"Fault ratio"};
    for (const auto& arch : archs)
      if (bench::arch_supports_tp(*arch, tp)) header.push_back(arch->name());
    table.set_header(header);

    for (double f : {0.0, 0.01, 0.02, 0.03, 0.05, 0.07, 0.10}) {
      std::vector<std::string> row{Table::pct(f, 0)};
      for (const auto& arch : archs) {
        if (!bench::arch_supports_tp(*arch, tp)) continue;
        row.push_back(Table::pct(
            topo::mean_waste_at_ratio(*arch, f, tp, trials, rng)));
      }
      table.add_row(row);
    }
    bench::emit(opt, "fig14_waste_vs_fault_tp" + std::to_string(tp), table);
  }
  return 0;
}
