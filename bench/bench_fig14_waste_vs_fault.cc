// Reproduces paper Fig. 14 (TP-16/TP-32) and Fig. 22 (TP-8..TP-64): mean
// GPU waste ratio as the node fault ratio sweeps 0-10% (i.i.d. fault
// model), per HBD architecture, 4-GPU nodes.
//
// Runs on the runtime sweep engine: every (TP, fault-ratio, arch, trial)
// draws from its own RNG substream, so the tables are bit-identical for any
// --threads value while the grid fans out across all cores.
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"
#include "src/fault/trace.h"
#include "src/runtime/report.h"
#include "src/runtime/sweep.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figures 14 & 22: GPU waste ratio vs node fault ratio");

  const auto archs = bench::make_archs();
  const int trials = bench::trials_or(opt, opt.quick ? 30 : 200);

  runtime::SweepSpec spec;
  spec.seed = 14;
  spec.trials = trials;
  std::vector<std::string> arch_names;
  for (const auto& arch : archs) arch_names.push_back(arch->name());
  spec.axes = {
      runtime::Axis::of_values("TP", {8, 16, 32, 64}),
      runtime::Axis::of_values("Fault ratio",
                               {0.0, 0.01, 0.02, 0.03, 0.05, 0.07, 0.10},
                               [](double f) { return Table::pct(f, 0); }),
      runtime::Axis::of_labels("Arch", arch_names),
  };

  const auto result = runtime::run_sweep(
      spec,
      [&](const runtime::Scenario& s, Rng& rng) {
        const int tp = static_cast<int>(s.value(0));
        const auto& arch = *archs[s.index(2)];
        if (!bench::arch_supports_tp(arch, tp))
          return std::numeric_limits<double>::quiet_NaN();
        const auto mask =
            fault::sample_fault_mask(arch.node_count(), s.value(1), rng);
        return arch.allocate(mask, tp).waste_ratio();
      },
      opt.threads);

  for (std::size_t t = 0; t < spec.axes[0].size(); ++t) {
    const int tp = static_cast<int>(spec.axes[0].values[t]);
    runtime::ReportSpec report;
    report.title = "TP-" + std::to_string(tp) + ": mean waste ratio (" +
                   std::to_string(trials) + " trials per point)";
    report.row_axis = 1;
    report.col_axis = 2;
    report.fixed = {{0, t}};
    report.format = [](double v) { return Table::pct(v); };
    bench::emit(opt, "fig14_waste_vs_fault_tp" + std::to_string(tp),
                runtime::to_table(result, report));
  }
  bench::finish(opt);
  return 0;
}
