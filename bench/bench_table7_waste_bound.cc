// Reproduces paper Table 7 (Appendix C): the analytic upper bound on the
// expected GPU waste ratio, 2 (Nt - R) Ps^K, for TP-32 at the production
// p99 fault rates - validated against the Monte-Carlo simulator.
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/fault/trace.h"
#include "src/topo/khop_ring.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Table 7: analytic waste-ratio upper bound (Appendix C)");

  const int tp = 32;
  const int trials = opt.quick ? 100 : 400;

  Table table("Upper bound for waste-ratio expectation, Nt = 32");
  table.set_header({"R", "Ps", "K", "Bound", "Paper", "Monte-Carlo mean"});
  struct Row {
    int r;
    double ps;
    int k;
    const char* paper;
  };
  const Row rows[] = {
      {4, 0.0367, 2, "7.54%"},   {4, 0.0367, 3, "0.28%"},
      {4, 0.0367, 4, "1.02e-4"}, {8, 0.0722, 2, "25.02%"},
      {8, 0.0722, 3, "1.81%"},   {8, 0.0722, 4, "0.13%"},
  };
  Rng rng(7);
  for (const auto& row : rows) {
    const double bound =
        topo::waste_ratio_upper_bound(tp, row.r, row.ps, row.k);
    const int m = tp / row.r;
    const int nodes = 400 * m;
    topo::KHopRing ring(nodes, row.r, row.k);
    double mc = 0.0;
    for (int t = 0; t < trials; ++t) {
      const auto mask = fault::sample_fault_mask_iid(nodes, row.ps, rng);
      mc += ring.allocate(mask, tp).waste_ratio();
    }
    mc /= trials;
    table.add_row({std::to_string(row.r), Table::pct(row.ps),
                   std::to_string(row.k), Table::pct(bound), row.paper,
                   Table::pct(mc)});
  }
  bench::emit(opt, "table7_waste_bound", table);
  std::puts("Note: the Monte-Carlo column includes the cluster-size\n"
            "fragmentation remainder (~m/2N ~= 0.1%) that the analytic\n"
            "breakpoint bound deliberately excludes.");
  return 0;
}
