// Reproduces paper Table 7 (Appendix C): the analytic upper bound on the
// expected GPU waste ratio, 2 (Nt - R) Ps^K, for TP-32 at the production
// p99 fault rates - validated against the Monte-Carlo simulator.
//
// The Monte-Carlo column runs on the runtime sweep engine: one substream
// per (row, trial), bit-stable for any --threads value.
#include <memory>

#include "bench/bench_util.h"
#include "src/fault/trace.h"
#include "src/runtime/sweep.h"
#include "src/topo/khop_ring.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Table 7: analytic waste-ratio upper bound (Appendix C)");

  const int tp = 32;
  const int trials = bench::trials_or(opt, opt.quick ? 100 : 400);

  struct Config {
    int r;
    double ps;
    int k;
    const char* paper;
  };
  const Config configs[] = {
      {4, 0.0367, 2, "7.54%"},   {4, 0.0367, 3, "0.28%"},
      {4, 0.0367, 4, "1.02e-4"}, {8, 0.0722, 2, "25.02%"},
      {8, 0.0722, 3, "1.81%"},   {8, 0.0722, 4, "0.13%"},
  };

  // One k-hop ring per table row, shared read-only across trials.
  std::vector<std::unique_ptr<topo::KHopRing>> rings;
  std::vector<std::string> row_labels;
  for (const auto& cfg : configs) {
    const int nodes = 400 * (tp / cfg.r);
    rings.push_back(std::make_unique<topo::KHopRing>(nodes, cfg.r, cfg.k));
    row_labels.push_back("R=" + std::to_string(cfg.r) +
                         " K=" + std::to_string(cfg.k));
  }

  runtime::SweepSpec spec;
  spec.seed = 7;
  spec.trials = trials;
  spec.axes = {runtime::Axis::of_labels("Config", row_labels)};
  const auto result = runtime::run_sweep(
      spec,
      [&](const runtime::Scenario& s, Rng& rng) {
        const auto& cfg = configs[s.index(0)];
        const auto& ring = *rings[s.index(0)];
        const auto mask =
            fault::sample_fault_mask_iid(ring.node_count(), cfg.ps, rng);
        return ring.allocate(mask, tp).waste_ratio();
      },
      opt.threads);

  Table table("Upper bound for waste-ratio expectation, Nt = 32");
  table.set_header({"R", "Ps", "K", "Bound", "Paper", "Monte-Carlo mean"});
  for (std::size_t i = 0; i < std::size(configs); ++i) {
    const auto& cfg = configs[i];
    const double bound =
        topo::waste_ratio_upper_bound(tp, cfg.r, cfg.ps, cfg.k);
    table.add_row({std::to_string(cfg.r), Table::pct(cfg.ps),
                   std::to_string(cfg.k), Table::pct(bound), cfg.paper,
                   Table::pct(result.cells[i].mean())});
  }
  bench::emit(opt, "table7_waste_bound", table);
  std::puts("Note: the Monte-Carlo column includes the cluster-size\n"
            "fragmentation remainder (~m/2N ~= 0.1%) that the analytic\n"
            "breakpoint bound deliberately excludes.");
  bench::finish(opt);
  return 0;
}
