// Reproduces paper Table 4: TP vs EP when training GPT-MoE under expert
// imbalance. Paper: TP 31.2% MFU; EP 31.5% at coef 0 degrading to 28.8% at
// coef 30% (the straggler effect) - TP overtakes EP once imbalance is
// realistic.
#include "bench/bench_util.h"
#include "src/llmsim/perf.h"

using namespace ihbd;
using namespace ihbd::llmsim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Table 4: TP vs EP under expert imbalance (GPT-MoE)");

  TrainJob job;
  job.model = ModelConfig::gpt_moe_1t();
  job.global_batch = 1536;
  const int gpus = 16384;

  // TP variant: experts sharded by TP, EP = 1. EP variant: EP = 8.
  job.expert_imbalance = 0.0;
  const auto tp_best = search_best_strategy(job, gpus);
  Parallelism ep_par = tp_best.best;
  ep_par.ep = 8;

  Table table("MFU (%) at " + std::to_string(gpus) + " GPUs, strategy " +
              tp_best.best.to_string() + " (+EP8 for the EP column)");
  table.set_header({"imbalance coef", "TP MFU", "EP MFU", "Paper TP",
                    "Paper EP"});
  const char* paper_ep[] = {"31.5", "30.5", "29.8", "28.8"};
  int i = 0;
  for (double coef : {0.0, 0.1, 0.2, 0.3}) {
    job.expert_imbalance = coef;
    Parallelism tp_par = tp_best.best;
    tp_par.ep = 1;
    const auto tp_r = simulate_training(job, tp_par);
    const auto ep_r = simulate_training(job, ep_par);
    table.add_row({Table::pct(coef, 0), Table::pct(tp_r.mfu, 1),
                   Table::pct(ep_r.mfu, 1), i == 0 ? "31.2" : "31.2",
                   paper_ep[i]});
    ++i;
  }
  bench::emit(opt, "table4_moe_imbalance", table);
  bench::finish(opt);
  return 0;
}
