// Reproduces paper §5.2 (small-scale cluster evaluation): Ring AllReduce
// bandwidth utilization at 16/32 GPUs vs the NVLink-switch 8-GPU baseline,
// and the small-packet latency advantage of direct GPU-GPU links.
#include "bench/bench_util.h"
#include "src/collective/ring_sim.h"

using namespace ihbd;
using namespace ihbd::collective;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("§5.2: small-scale cluster AllReduce");

  const double big = 1.0 * (1ull << 30);

  Table util("AllReduce bus-bandwidth utilization (paper: 77.11% @16, "
             "77.26% @32 ring; 81.77% switch @8)");
  util.set_header({"Fabric", "GPUs", "Utilization", "Paper"});
  const auto r16 = simulate_ring_allreduce(16, big);
  const auto r32 = simulate_ring_allreduce(32, big);
  const auto sw8 = simulate_switch_allreduce(8, big);
  util.add_row({"InfiniteHBD ring", "16", Table::pct(r16.bus_utilization),
                "77.11%"});
  util.add_row({"InfiniteHBD ring", "32", Table::pct(r32.bus_utilization),
                "77.26%"});
  util.add_row({"NVLink switch (no SHARP)", "8",
                Table::pct(sw8.bus_utilization), "81.77%"});
  bench::emit(opt, "small_cluster_utilization", util);

  Table lat("Small-packet latency (paper: direct links ~13% lower)");
  lat.set_header({"Packet (B)", "Direct (us)", "Switch (us)", "Reduction"});
  for (double bytes : {64.0, 256.0, 1024.0, 4096.0}) {
    const double d = direct_link_latency(bytes);
    const double s = switch_link_latency(bytes);
    lat.add_row({Table::fmt(bytes, 0), Table::fmt(d * 1e6, 3),
                 Table::fmt(s * 1e6, 3), Table::pct(1.0 - d / s)});
  }
  bench::emit(opt, "small_cluster_latency", lat);

  Table scaling("Ring utilization vs scale (minimal degradation)");
  scaling.set_header({"GPUs", "Utilization", "Time (ms)"});
  for (int n : {8, 16, 32, 64, 128}) {
    const auto r = simulate_ring_allreduce(n, big);
    scaling.add_row({std::to_string(n), Table::pct(r.bus_utilization),
                     Table::fmt(r.time_s * 1e3, 2)});
  }
  bench::emit(opt, "small_cluster_scaling", scaling);
  bench::finish(opt);
  return 0;
}
