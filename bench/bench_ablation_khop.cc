// Ablation benches for the design choices DESIGN.md calls out:
//   (1) hop reach K in {1,2,3,4}: fault resilience vs OCSTrx bundle cost;
//   (2) ring vs K-hop line topology (§4.2's trade-off);
//   (3) deployment-strategy on/off for the orchestrator (Algorithm 3).
//
// The Monte-Carlo sweeps (1) and (2) run on the runtime sweep engine: every
// (cell, trial) draws from its own RNG substream, so the tables are
// bit-identical for any --threads value. (3) is a single deterministic
// orchestration comparison and needs no trials.
#include <memory>
#include <utility>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/cost/bom.h"
#include "src/dcn/traffic.h"
#include "src/fault/trace.h"
#include "src/orch/orchestrator.h"
#include "src/runtime/sweep.h"
#include "src/topo/khop_ring.h"
#include "src/topo/waste.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Ablations: K sweep, ring-vs-line, deployment strategy");
  const int trials = bench::trials_or(opt, opt.quick ? 30 : 150);

  {
    Table table("K sweep: TP-32 waste ratio on 720 4-GPU nodes (+ per-GPU "
                "interconnect cost scaled by bundle count)");
    table.set_header({"K", "waste @2%", "waste @5%", "waste @10%",
                      "OCSTrx/node", "est. cost/GPU"});
    const auto boms = cost::paper_boms();
    const double k2_cost =
        cost::bom_by_name(boms, "InfiniteHBD(K=2)").cost_per_gpu();
    const double k3_cost =
        cost::bom_by_name(boms, "InfiniteHBD(K=3)").cost_per_gpu();
    const double per_bundle = k3_cost - k2_cost;  // one extra bundle

    std::vector<std::unique_ptr<topo::KHopRing>> rings;
    for (int k : {1, 2, 3, 4})
      rings.push_back(std::make_unique<topo::KHopRing>(720, 4, k));

    runtime::SweepSpec spec;
    spec.seed = 100;
    spec.trials = trials;
    spec.keep_samples = false;  // only cell means are reported
    spec.axes = {
        runtime::Axis::of_values("K", {1, 2, 3, 4}),
        runtime::Axis::of_values("Fault ratio", {0.02, 0.05, 0.10},
                                 [](double f) { return Table::pct(f, 0); }),
    };
    const auto result = runtime::run_sweep(
        spec,
        [&](const runtime::Scenario& s, Rng& rng) {
          const auto& ring = *rings[s.index(0)];
          const auto mask =
              fault::sample_fault_mask(ring.node_count(), s.value(1), rng);
          return ring.allocate(mask, 32).waste_ratio();
        },
        opt.threads);

    for (std::size_t ki = 0; ki < rings.size(); ++ki) {
      const int k = static_cast<int>(spec.axes[0].values[ki]);
      std::vector<std::string> row{std::to_string(k)};
      for (std::size_t fi = 0; fi < spec.axes[1].size(); ++fi)
        row.push_back(Table::pct(result.cell({ki, fi}).mean()));
      row.push_back(std::to_string(8 * k));
      row.push_back(Table::fmt(k2_cost + (k - 2) * per_bundle, 0));
      table.add_row(row);
    }
    bench::emit(opt, "ablation_k_sweep", table);
  }

  {
    Table table("Ring vs K-hop line (K=2, TP-32): the wrap link's value");
    table.set_header({"Fault ratio", "Ring waste", "Line waste"});
    const topo::KHopRing ring(720, 4, 2, true);
    const topo::KHopRing line(720, 4, 2, false);

    // Common random numbers: each trial draws ONE mask and evaluates both
    // topologies on it, so the wrap-link delta is paired, not noised by
    // independent mask sets. The generic reduce carries both samples.
    struct Paired {
      runtime::Accumulator ring_waste;
      runtime::Accumulator line_waste;
    };
    runtime::SweepSpec spec;
    spec.seed = 7;
    spec.trials = trials;
    spec.axes = {
        runtime::Axis::of_values("Fault ratio", {0.0, 0.02, 0.05, 0.10},
                                 [](double f) { return Table::pct(f, 0); }),
    };
    Paired init;
    init.ring_waste.set_keep_samples(false);
    init.line_waste.set_keep_samples(false);
    const auto result = runtime::run_sweep_reduce(
        spec, init,
        [&](const runtime::Scenario& s, Rng& rng) {
          const auto mask =
              fault::sample_fault_mask(ring.node_count(), s.value(0), rng);
          return std::pair{ring.allocate(mask, 32).waste_ratio(),
                           line.allocate(mask, 32).waste_ratio()};
        },
        [](Paired& acc, std::pair<double, double>&& waste) {
          acc.ring_waste.add(waste.first);
          acc.line_waste.add(waste.second);
        },
        opt.threads);

    for (std::size_t fi = 0; fi < spec.axes[0].size(); ++fi)
      table.add_row({spec.axes[0].labels[fi],
                     Table::pct(result.cell({fi}).ring_waste.mean()),
                     Table::pct(result.cell({fi}).line_waste.mean())});
    bench::emit(opt, "ablation_ring_vs_line", table);
  }

  {
    Table table("Deployment strategy ablation (2048 nodes, TP-32, job 85%, "
                "faults 3%): interleaved sub-lines vs naive physical order");
    table.set_header({"Deployment", "Cross-ToR rate"});
    dcn::FatTreeConfig cfg;
    cfg.node_count = 2048;
    cfg.nodes_per_tor = 8;
    cfg.tors_per_domain = 64;
    const dcn::FatTree ft(cfg);
    Rng rng(55);
    const auto mask = fault::sample_fault_mask(2048, 0.03, rng);
    orch::JobSpec job{32, static_cast<int>(2048 * 4 * 0.85)};
    const int use = job.gpu_count / 32;

    orch::FatTreeOrchestrator orchestrator(ft, 2, 4);
    const auto deployed = orchestrator.orchestrate(mask, job);
    table.add_row({"Algorithm 3 (interleaved)",
                   Table::pct(dcn::evaluate_cross_tor(ft, deployed, 4, {}, use)
                                  .cross_tor_rate())});

    // Naive: physical order = HBD order (§4.3's "sorting nodes based on
    // deployment order" strawman). TP groups then sit inside ToRs but DP
    // partners land in different ToRs.
    std::vector<int> naive(2048);
    for (int i = 0; i < 2048; ++i) naive[i] = i;
    auto groups = orch::orchestrate_dcn_free(naive, 2, mask, 8);
    dcn::PlacementScheme placement;
    for (auto& g : groups) {
      dcn::PlacedGroup pg;
      pg.group = std::move(g);
      placement.groups.push_back(std::move(pg));
    }
    table.add_row({"Naive physical order",
                   Table::pct(dcn::evaluate_cross_tor(ft, placement, 4, {},
                                                      use)
                                  .cross_tor_rate())});
    bench::emit(opt, "ablation_deployment", table);
  }
  bench::finish(opt);
  return 0;
}
