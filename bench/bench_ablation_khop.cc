// Ablation benches for the design choices DESIGN.md calls out:
//   (1) hop reach K in {1,2,3,4}: fault resilience vs OCSTrx bundle cost;
//   (2) ring vs K-hop line topology (§4.2's trade-off);
//   (3) deployment-strategy on/off for the orchestrator (Algorithm 3).
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/cost/bom.h"
#include "src/dcn/traffic.h"
#include "src/fault/trace.h"
#include "src/orch/orchestrator.h"
#include "src/topo/khop_ring.h"
#include "src/topo/waste.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Ablations: K sweep, ring-vs-line, deployment strategy");
  const int trials = opt.quick ? 30 : 150;

  {
    Table table("K sweep: TP-32 waste ratio on 720 4-GPU nodes (+ per-GPU "
                "interconnect cost scaled by bundle count)");
    table.set_header({"K", "waste @2%", "waste @5%", "waste @10%",
                      "OCSTrx/node", "est. cost/GPU"});
    const auto boms = cost::paper_boms();
    const double k2_cost =
        cost::bom_by_name(boms, "InfiniteHBD(K=2)").cost_per_gpu();
    const double k3_cost =
        cost::bom_by_name(boms, "InfiniteHBD(K=3)").cost_per_gpu();
    const double per_bundle = k3_cost - k2_cost;  // one extra bundle
    for (int k : {1, 2, 3, 4}) {
      topo::KHopRing ring(720, 4, k);
      Rng rng(100 + k);
      std::vector<std::string> row{std::to_string(k)};
      for (double f : {0.02, 0.05, 0.10})
        row.push_back(Table::pct(
            topo::mean_waste_at_ratio(ring, f, 32, trials, rng)));
      row.push_back(std::to_string(8 * k));
      row.push_back(Table::fmt(k2_cost + (k - 2) * per_bundle, 0));
      table.add_row(row);
    }
    bench::emit(opt, "ablation_k_sweep", table);
  }

  {
    Table table("Ring vs K-hop line (K=2, TP-32): the wrap link's value");
    table.set_header({"Fault ratio", "Ring waste", "Line waste"});
    topo::KHopRing ring(720, 4, 2, true);
    topo::KHopRing line(720, 4, 2, false);
    for (double f : {0.0, 0.02, 0.05, 0.10}) {
      Rng rng(7);
      Rng rng2(7);
      table.add_row(
          {Table::pct(f, 0),
           Table::pct(topo::mean_waste_at_ratio(ring, f, 32, trials, rng)),
           Table::pct(topo::mean_waste_at_ratio(line, f, 32, trials, rng2))});
    }
    bench::emit(opt, "ablation_ring_vs_line", table);
  }

  {
    Table table("Deployment strategy ablation (2048 nodes, TP-32, job 85%, "
                "faults 3%): interleaved sub-lines vs naive physical order");
    table.set_header({"Deployment", "Cross-ToR rate"});
    dcn::FatTreeConfig cfg;
    cfg.node_count = 2048;
    cfg.nodes_per_tor = 8;
    cfg.tors_per_domain = 64;
    const dcn::FatTree ft(cfg);
    Rng rng(55);
    const auto mask = fault::sample_fault_mask(2048, 0.03, rng);
    orch::JobSpec job{32, static_cast<int>(2048 * 4 * 0.85)};
    const int use = job.gpu_count / 32;

    orch::FatTreeOrchestrator orchestrator(ft, 2, 4);
    const auto deployed = orchestrator.orchestrate(mask, job);
    table.add_row({"Algorithm 3 (interleaved)",
                   Table::pct(dcn::evaluate_cross_tor(ft, deployed, 4, {}, use)
                                  .cross_tor_rate())});

    // Naive: physical order = HBD order (§4.3's "sorting nodes based on
    // deployment order" strawman). TP groups then sit inside ToRs but DP
    // partners land in different ToRs.
    std::vector<int> naive(2048);
    for (int i = 0; i < 2048; ++i) naive[i] = i;
    auto groups = orch::orchestrate_dcn_free(naive, 2, mask, 8);
    dcn::PlacementScheme placement;
    for (auto& g : groups) {
      dcn::PlacedGroup pg;
      pg.group = std::move(g);
      placement.groups.push_back(std::move(pg));
    }
    table.add_row({"Naive physical order",
                   Table::pct(dcn::evaluate_cross_tor(ft, placement, 4, {},
                                                      use)
                                  .cross_tor_rate())});
    bench::emit(opt, "ablation_deployment", table);
  }
  return 0;
}
