// Reproduces paper Tables 6 and 8: interconnect cost and power per GPU and
// per GBps, derived from the component-level bill of materials.
#include "bench/bench_util.h"
#include "src/cost/bom.h"

using namespace ihbd;
using namespace ihbd::cost;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Tables 6 & 8: interconnect cost and power");

  const auto boms = paper_boms();

  Table t8("Table 8: component BOM per architecture");
  t8.set_header({"Architecture", "Component", "Qty", "Unit $", "Unit GBps",
                 "Unit W"});
  for (const auto& bom : boms) {
    for (const auto& c : bom.components) {
      t8.add_row({bom.name, c.name, Table::fmt(c.quantity, 0),
                  Table::fmt(c.unit_cost_usd, 2),
                  Table::fmt(c.unit_bandwidth_GBps, 0),
                  Table::fmt(c.unit_power_w, 2)});
    }
  }
  bench::emit(opt, "table8_bom", t8);

  Table t6("Table 6: normalized interconnect cost ($) and power (W)");
  t6.set_header({"Architecture", "Per-GPU Cost", "Per-GPU Watts",
                 "Per-GBps Cost", "Per-GBps Watts"});
  for (const auto& bom : boms) {
    if (bom.name == "Alibaba HPN") continue;  // DCN reference, not in T6
    t6.add_row({bom.name, Table::fmt(bom.cost_per_gpu(), 2),
                Table::fmt(bom.watts_per_gpu(), 2),
                Table::fmt(bom.cost_per_GBps(), 2),
                Table::fmt(bom.watts_per_GBps(), 2)});
  }
  bench::emit(opt, "table6_cost_power", t6);

  const double k2 = bom_by_name(boms, "InfiniteHBD(K=2)").cost_per_GBps();
  std::printf("Headlines: InfiniteHBD(K=2) per-GBps cost is %.1f%% of "
              "NVL-72 (paper 30.9%%) and %.1f%% of TPUv4 (paper 62.8%%).\n",
              100.0 * k2 / bom_by_name(boms, "NVL-72").cost_per_GBps(),
              100.0 * k2 / bom_by_name(boms, "TPUv4").cost_per_GBps());
  bench::finish(opt);
  return 0;
}
