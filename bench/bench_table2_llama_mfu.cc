// Reproduces paper Table 2: optimal parallelism strategy and MFU for
// Llama-3.1-405B (MHA-simplified) as GPU count sweeps 1k -> 128k, against
// the TP-8-constrained baseline (NVLink-class HBD), and the improvement
// ratio. Paper's headline trend: optimal TP grows 16 -> 64; the TP-8
// baseline collapses at scale (3.37x improvement at 131k GPUs).
#include "bench/bench_util.h"
#include "src/llmsim/perf.h"

using namespace ihbd;
using namespace ihbd::llmsim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Table 2: Llama-3.1-405B optimal parallelism & MFU");

  TrainJob job;
  job.model = ModelConfig::llama31_405b_mha();
  job.global_batch = 2048;

  Table table("Optimal strategy vs TP-8 baseline");
  table.set_header({"GPU", "TP", "PP", "DP", "MFU", "MFU_TP-8", "Improve",
                    "Paper MFU", "Paper TP"});
  struct PaperRow {
    int gpus;
    double mfu;
    int tp;
  };
  const PaperRow paper[] = {{1024, 0.5236, 16},  {4096, 0.4668, 16},
                            {8192, 0.4247, 32},  {16384, 0.3756, 32},
                            {32768, 0.3090, 32}, {65536, 0.2493, 64},
                            {131072, 0.1851, 64}};
  for (const auto& row : paper) {
    const auto open = search_best_strategy(job, row.gpus);
    const auto tp8 = search_best_strategy(job, row.gpus, /*tp_limit=*/8);
    table.add_row({std::to_string(row.gpus), std::to_string(open.best.tp),
                   std::to_string(open.best.pp), std::to_string(open.best.dp),
                   Table::fmt(open.perf.mfu), Table::fmt(tp8.perf.mfu),
                   Table::fmt(open.perf.mfu / tp8.perf.mfu),
                   Table::fmt(row.mfu), std::to_string(row.tp)});
  }
  bench::emit(opt, "table2_llama_mfu", table);
  return 0;
}
