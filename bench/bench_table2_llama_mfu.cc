// Reproduces paper Table 2: optimal parallelism strategy and MFU for
// Llama-3.1-405B (MHA-simplified) as GPU count sweeps 1k -> 128k, against
// the TP-8-constrained baseline (NVLink-class HBD), and the improvement
// ratio. Paper's headline trend: optimal TP grows 16 -> 64; the TP-8
// baseline collapses at scale (3.37x improvement at 131k GPUs).
//
// Runs on the generic sweep engine: each (GPU count, TP regime) cell
// carries the full strategy-search result, so the expensive grid searches
// fan out across --threads while the table stays bit-identical.
#include "bench/bench_util.h"
#include "src/llmsim/perf.h"
#include "src/runtime/sweep.h"

using namespace ihbd;
using namespace ihbd::llmsim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Table 2: Llama-3.1-405B optimal parallelism & MFU");

  TrainJob job;
  job.model = ModelConfig::llama31_405b_mha();
  job.global_batch = 2048;

  struct PaperRow {
    int gpus;
    double mfu;
    int tp;
  };
  const PaperRow paper[] = {{1024, 0.5236, 16},  {4096, 0.4668, 16},
                            {8192, 0.4247, 32},  {16384, 0.3756, 32},
                            {32768, 0.3090, 32}, {65536, 0.2493, 64},
                            {131072, 0.1851, 64}};

  runtime::SweepSpec spec;
  spec.trials = 1;  // the strategy search is deterministic
  std::vector<double> gpu_counts;
  for (const auto& row : paper) gpu_counts.push_back(row.gpus);
  spec.axes = {
      runtime::Axis::of_values("GPU", std::move(gpu_counts),
                               [](double g) {
                                 return std::to_string(static_cast<int>(g));
                               }),
      runtime::Axis::of_labels("Regime", {"open", "TP-8"}),
  };
  const auto grid = runtime::run_sweep_reduce(
      spec, SearchResult{},
      [&](const runtime::Scenario& s, Rng&) {
        const int tp_limit = s.index(1) == 1 ? 8 : 0;
        return search_best_strategy(job, static_cast<int>(s.value(0)),
                                    tp_limit);
      },
      [](SearchResult& acc, SearchResult&& found) { acc = std::move(found); },
      opt.threads);

  Table table("Optimal strategy vs TP-8 baseline");
  table.set_header({"GPU", "TP", "PP", "DP", "MFU", "MFU_TP-8", "Improve",
                    "Paper MFU", "Paper TP"});
  for (std::size_t g = 0; g < std::size(paper); ++g) {
    const auto& row = paper[g];
    const SearchResult& open = grid.cell({g, 0});
    const SearchResult& tp8 = grid.cell({g, 1});
    table.add_row({std::to_string(row.gpus), std::to_string(open.best.tp),
                   std::to_string(open.best.pp), std::to_string(open.best.dp),
                   Table::fmt(open.perf.mfu), Table::fmt(tp8.perf.mfu),
                   Table::fmt(open.perf.mfu / tp8.perf.mfu),
                   Table::fmt(row.mfu), std::to_string(row.tp)});
  }
  bench::emit(opt, "table2_llama_mfu", table);
  bench::finish(opt);
  return 0;
}
