// Reproduces paper Fig. 20: GPU waste ratio over trace time (monthly
// samples printed; CSV mode additionally writes the full daily series),
// per architecture and TP size.
//
// Runs on the generic sweep engine with keep_samples=false: each (TP, arch)
// cell keeps only the replayed time series (what this figure prints), not a
// duplicate per-sample array inside the summary accumulator, bounding
// memory on fleet-scale sweeps. Cells and their windows share one
// work-stealing pool (nested parallel_for); bit-identical for any
// --threads value.
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figure 20: waste ratio over production-trace time");

  const auto trace = bench::make_sim_trace(opt.quick, opt.trace_model);
  const auto archs = bench::make_archs();

  // Representative TP pair of the paper's plot.
  const auto grid = bench::replay_trace_grid(archs, trace, {8, 32},
                                             opt.threads,
                                             /*keep_samples=*/false,
                                             opt.incremental, opt.packed);

  for (std::size_t t = 0; t < grid.spec.axes[0].size(); ++t) {
    const int tp = static_cast<int>(grid.spec.axes[0].values[t]);
    Table table("TP-" + std::to_string(tp) +
                ": waste ratio time series (30-day samples)");
    std::vector<std::string> header{"Day"};
    std::vector<const TimeSeries*> series;
    for (std::size_t a = 0; a < archs.size(); ++a) {
      const auto& cell = grid.cell({t, a});
      if (!bench::replay_cell_supported(cell)) continue;
      header.push_back(archs[a]->name());
      series.push_back(&cell.waste_ratio);
    }
    table.set_header(header);
    if (!series.empty()) {
      for (std::size_t i = 0; i < series[0]->size(); i += 30) {
        std::vector<std::string> row{Table::fmt(series[0]->t[i], 0)};
        for (const auto* ts : series) row.push_back(Table::pct(ts->v[i]));
        table.add_row(row);
      }
    }
    bench::emit(opt, "fig20_waste_timeseries_tp" + std::to_string(tp), table);

    // CSV mode additionally captures the full daily-resolution series.
    if (!opt.csv_dir.empty() && !series.empty()) {
      Table daily("TP-" + std::to_string(tp) +
                  ": waste ratio time series (daily)");
      daily.set_header(header);
      for (std::size_t i = 0; i < series[0]->size(); ++i) {
        std::vector<std::string> row{Table::fmt(series[0]->t[i], 0)};
        for (const auto* ts : series) row.push_back(Table::pct(ts->v[i]));
        daily.add_row(row);
      }
      write_csv(opt.csv_dir,
                "fig20_waste_timeseries_tp" + std::to_string(tp) + "_daily",
                daily);
    }
  }
  bench::finish(opt);
  return 0;
}
