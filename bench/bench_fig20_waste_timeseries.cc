// Reproduces paper Fig. 20: GPU waste ratio over trace time (monthly
// samples shown; CSV mode captures the full daily series), per
// architecture and TP size.
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figure 20: waste ratio over production-trace time");

  const auto trace = bench::make_sim_trace(opt.quick);
  const auto archs = bench::make_archs();

  for (int tp : {8, 32}) {  // representative pair; CSV emits all four
    Table table("TP-" + std::to_string(tp) +
                ": waste ratio time series (30-day samples)");
    std::vector<std::string> header{"Day"};
    std::vector<TimeSeries> series;
    for (const auto& arch : archs) {
      if (!bench::arch_supports_tp(*arch, tp)) continue;
      header.push_back(arch->name());
      series.push_back(
          topo::evaluate_waste_over_trace(*arch, trace, tp, 1.0).waste_ratio);
    }
    table.set_header(header);
    if (!series.empty()) {
      for (std::size_t i = 0; i < series[0].size(); i += 30) {
        std::vector<std::string> row{Table::fmt(series[0].t[i], 0)};
        for (const auto& ts : series) row.push_back(Table::pct(ts.v[i]));
        table.add_row(row);
      }
    }
    bench::emit(opt, "fig20_waste_timeseries_tp" + std::to_string(tp), table);
  }
  return 0;
}
