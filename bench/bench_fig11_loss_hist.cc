// Reproduces paper Fig. 11: insertion-loss distribution of the OCSTrx core
// module at four ambient temperatures.
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/phy/switch_matrix.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figure 11: insertion-loss distribution vs temperature");

  phy::OcsSwitchMatrix matrix;
  Rng rng(7);
  const int samples = opt.quick ? 300 : 2000;

  Table table("Histogram bin counts (loss dB, 2.0..4.5, 10 bins)");
  std::vector<std::string> header{"Temp (C)"};
  Histogram probe(2.0, 4.5, 10);
  for (std::size_t b = 0; b < probe.bin_count(); ++b)
    header.push_back(Table::fmt(probe.bin_lo(b), 2));
  table.set_header(header);

  for (double temp : {0.0, 25.0, 50.0, 85.0}) {
    Histogram hist(2.0, 4.5, 10);
    for (int i = 0; i < samples; ++i)
      hist.add(matrix.sample_insertion_loss_db(phy::OcsPath::kExternal1, temp,
                                               rng));
    std::vector<std::string> row{Table::fmt(temp, 0)};
    for (std::size_t b = 0; b < hist.bin_count(); ++b)
      row.push_back(std::to_string(hist.count(b)));
    table.add_row(row);

    std::printf("--- %g C ---\n%s", temp, hist.to_string(30).c_str());
  }
  bench::emit(opt, "fig11_loss_hist", table);
  bench::finish(opt);
  return 0;
}
