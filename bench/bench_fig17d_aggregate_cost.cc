// Reproduces paper Fig. 17d: aggregate cost (GPU cost of wasted + faulty
// GPUs plus interconnect cost) vs node fault ratio on a ~3K-GPU cluster at
// TP-32, normalized to InfiniteHBD(K=2) at zero faults = 100.
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"
#include "src/cost/bom.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figure 17d: aggregate cost vs node fault ratio");

  const auto boms = cost::paper_boms();
  const auto archs = bench::make_archs();
  const int trials = opt.quick ? 20 : 100;
  const int tp = 32;
  Rng rng(17);

  // Architecture -> BOM mapping (Big-Switch has no BOM; skip).
  auto bom_for = [&](const std::string& name) -> const cost::ArchitectureBom* {
    if (name == "InfiniteHBD(K=2)" || name == "InfiniteHBD(K=3)" ||
        name == "TPUv4" || name == "NVL-36" || name == "NVL-72" ||
        name == "NVL-576")
      return &cost::bom_by_name(boms, name);
    return nullptr;
  };

  const double norm = cost::aggregate_cost_usd(
      cost::bom_by_name(boms, "InfiniteHBD(K=2)"), bench::kClusterGpus, 0, 0);

  Table table("Aggregate cost (InfiniteHBD(K=2) @0% = 100)");
  std::vector<std::string> header{"Fault ratio"};
  for (const auto& arch : archs)
    if (bom_for(arch->name())) header.push_back(arch->name());
  table.set_header(header);

  for (double f : {0.0, 0.02, 0.05, 0.08, 0.12, 0.16, 0.20}) {
    std::vector<std::string> row{Table::pct(f, 0)};
    for (const auto& arch : archs) {
      const auto* bom = bom_for(arch->name());
      if (!bom) continue;
      double total = 0.0;
      Rng local = rng.fork();
      for (int t = 0; t < trials; ++t) {
        const auto mask =
            fault::sample_fault_mask(arch->node_count(), f, local);
        const auto alloc = arch->allocate(mask, tp);
        total += cost::aggregate_cost_usd(*bom, bench::kClusterGpus,
                                          alloc.wasted_healthy_gpus,
                                          alloc.faulty_gpus);
      }
      row.push_back(Table::fmt(total / trials / norm * 100.0, 1));
    }
    table.add_row(row);
  }
  bench::emit(opt, "fig17d_aggregate_cost", table);

  std::puts("Paper: InfiniteHBD lowest aggregate cost throughout; K=2 "
            "cheaper than K=3 below ~12.1% fault ratio.");
  bench::finish(opt);
  return 0;
}
