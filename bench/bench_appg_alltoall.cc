// Reproduces Appendix G: AllToAll on InfiniteHBD. Ring AllToAll is O(p^2);
// the Binary-Exchange algorithm over the +/-2^i wiring variant is
// O(p log p), with OCSTrx fast switching (60-80 us) overlappable with
// computation. Includes the Bruck reference and the functional
// block-delivery verification of Algorithm 6.
#include "bench/bench_util.h"
#include "src/collective/alltoall.h"
#include "src/collective/costs.h"
#include "src/topo/alltoall_topology.h"

using namespace ihbd;
using namespace ihbd::collective;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Appendix G: AllToAll algorithms on InfiniteHBD");

  LinkParams link;
  link.bandwidth_Bps = 400e9;  // per-direction HBD ring bandwidth
  link.alpha_s = 2e-6;
  const double msg = 4.0 * (1 << 20);  // 4 MiB per (src,dst) block
  const double reconfig = 70e-6;

  Table table("AllToAll completion time (ms), 4 MiB blocks");
  table.set_header({"p", "Ring O(p^2)", "BinExch (overlap)",
                    "BinExch (+reconfig)", "Bruck", "Pairwise", "Ring/BinExch"});
  for (int p : {4, 8, 16, 32, 64, 128, 256}) {
    const double ring = ring_alltoall_time(p, msg, link);
    const double bex = binary_exchange_alltoall_time(p, msg, link);
    const double bex_sw = binary_exchange_alltoall_time(p, msg, link, reconfig);
    const double bruck = bruck_alltoall_time(p, msg, link);
    const double pair = pairwise_alltoall_time(p, msg, link);
    table.add_row({std::to_string(p), Table::fmt(ring * 1e3, 3),
                   Table::fmt(bex * 1e3, 3), Table::fmt(bex_sw * 1e3, 3),
                   Table::fmt(bruck * 1e3, 3), Table::fmt(pair * 1e3, 3),
                   Table::fmt(ring / bex, 1)});
  }
  bench::emit(opt, "appg_alltoall_times", table);

  Table verify("Algorithm 6 functional verification (blocks delivered)");
  verify.set_header({"p", "rounds", "bytes/rank (blocks)", "delivered"});
  for (int p : {4, 16, 64}) {
    const auto bex = simulate_binary_exchange(p, 1.0);
    verify.add_row({std::to_string(p), std::to_string(bex.rounds),
                    Table::fmt(bex.bytes_sent_per_node, 0),
                    bex.delivered_all ? "yes" : "NO"});
  }
  bench::emit(opt, "appg_verification", verify);

  Table coupling("Appendix G.3: TP x EP coupling on the +/-2^i wiring");
  coupling.set_header({"Node", "Bundles", "Constraint", "Example"});
  topo::BinaryHopTopology small(256, 4, 4);
  topo::BinaryHopTopology big(1024, 8, 8);
  coupling.add_row({"4-GPU", "4", "TP x EP <= 64",
                    small.coupling_ok(4, 16) ? "TP4 x EP16 ok" : "ERR"});
  coupling.add_row({"8-GPU", "8", "TP x EP <= 2048",
                    big.coupling_ok(8, 256) ? "TP8 x EP256 ok" : "ERR"});
  bench::emit(opt, "appg_coupling", coupling);
  bench::finish(opt);
  return 0;
}
