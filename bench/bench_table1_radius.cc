// Reproduces the architectural comparison of paper Table 1: the fault
// explosion radius per HBD architecture - immediate bandwidth degradation
// from a single node fault, plus the healthy-GPU loss after
// re-orchestration (Monte-Carlo).
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"
#include "src/topo/explosion_radius.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Table 1: fault explosion radius per architecture");

  const int trials = opt.quick ? 40 : 200;
  Rng rng(1);

  Table table("Single-node-fault radius, TP-32 on 2,880 GPUs (4-GPU nodes)");
  table.set_header({"Architecture", "Immediate degraded GPUs",
                    "Realloc loss (mean)", "Realloc loss (worst)",
                    "Paper radius"});
  struct PaperRow {
    const char* name;
    const char* radius;
  };
  auto paper_radius = [](const std::string& name) -> const char* {
    if (name.rfind("InfiniteHBD", 0) == 0) return "Node-level";
    if (name.rfind("NVL", 0) == 0) return "Node-level (+switch-level)";
    if (name == "Big-Switch") return "ideal";
    if (name == "TPUv4") return "Cube-level (64)";
    if (name == "SiP-Ring") return "HBD-level";
    return "-";
  };

  for (const auto& arch : bench::make_archs()) {
    const auto report = topo::measure_radius(*arch, 32, trials, rng);
    table.add_row({report.architecture,
                   std::to_string(report.immediate_degraded_gpus),
                   Table::fmt(report.mean_reallocation_loss_gpus, 1),
                   std::to_string(report.worst_reallocation_loss_gpus),
                   paper_radius(report.architecture)});
  }
  bench::emit(opt, "table1_radius", table);
  bench::finish(opt);
  return 0;
}
