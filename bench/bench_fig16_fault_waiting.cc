// Reproduces paper Fig. 16 (TP-16/TP-32) and Fig. 23 (TP-8..TP-64): the
// fraction of time a job of a given scale must wait for repairs because
// usable GPUs fall below its requirement, over the production trace.
//
// Runs on the generic sweep engine via the shared replay grid: each
// (TP, arch) cell replays the trace in windows, cells and windows share one
// work-stealing pool, and the tables stay bit-identical for any --threads
// value (and across --shard-dir fleets — the grid carries the trace-waste
// shard codec).
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figures 16 & 23: job fault-waiting rate vs job scale");

  const auto trace = bench::make_sim_trace(opt.quick, opt.trace_model);
  const auto archs = bench::make_archs();

  // Only the usable-GPU series is read, so skip the waste samples.
  const auto grid =
      bench::replay_trace_grid(archs, trace, {8, 16, 32, 64}, opt.threads,
                               /*keep_samples=*/false, opt.incremental,
                               opt.packed);

  for (std::size_t t = 0; t < grid.spec.axes[0].size(); ++t) {
    const int tp = static_cast<int>(grid.spec.axes[0].values[t]);
    Table table("TP-" + std::to_string(tp) + ": fault-waiting rate");
    std::vector<std::string> header{"Job scale (GPU)"};
    std::vector<std::size_t> supported;
    for (std::size_t a = 0; a < archs.size(); ++a) {
      if (!bench::arch_supports_tp(*archs[a], tp)) continue;
      header.push_back(archs[a]->name());
      supported.push_back(a);
    }
    table.set_header(header);

    for (int scale : {1920, 2176, 2432, 2560, 2688, 2816}) {
      std::vector<std::string> row{std::to_string(scale)};
      for (const std::size_t a : supported)
        row.push_back(Table::pct(
            topo::fault_waiting_rate(grid.cell({t, a}).usable_gpus, scale)));
      table.add_row(row);
    }
    bench::emit(opt, "fig16_fault_waiting_tp" + std::to_string(tp), table);
  }
  bench::finish(opt);
  return 0;
}
