// Reproduces paper Fig. 16 (TP-16/TP-32) and Fig. 23 (TP-8..TP-64): the
// fraction of time a job of a given scale must wait for repairs because
// usable GPUs fall below its requirement, over the production trace.
//
// The expensive part — replaying the 348-day trace per (TP, architecture)
// pair — fans out across one work-stealing pool at BOTH levels: pairs are
// mapped in parallel and each pair's windowed replay recruits idle workers
// (nested parallel_for). Results are assembled in deterministic pair order,
// so output is identical for any --threads value.
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"
#include "src/runtime/thread_pool.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figures 16 & 23: job fault-waiting rate vs job scale");

  const auto trace = bench::make_sim_trace(opt.quick);
  const auto archs = bench::make_archs();
  const std::vector<int> tps{8, 16, 32, 64};

  // Flatten the (TP, arch) grid, skipping unsupported combinations.
  struct Cell {
    int tp;
    const topo::HbdArchitecture* arch;
  };
  std::vector<Cell> grid;
  for (int tp : tps)
    for (const auto& arch : archs)
      if (bench::arch_supports_tp(*arch, tp)) grid.push_back({tp, arch.get()});

  const runtime::PoolRef pool(opt.threads);
  const std::size_t window_samples =
      bench::nested_window_samples(grid.size(), *pool);
  const auto usable = runtime::parallel_map(
      grid,
      [&](const Cell& cell) {
        topo::TraceReplayOptions ropts;
        ropts.pool = pool.get();  // nested fan-out on the same pool
        ropts.window_samples = window_samples;
        ropts.keep_samples = false;  // only the usable series is read
        ropts.incremental = opt.incremental;
        ropts.packed = opt.packed;
        return topo::evaluate_waste_over_trace(*cell.arch, trace, cell.tp,
                                               ropts)
            .usable_gpus;
      },
      *pool);

  std::size_t next = 0;
  for (int tp : tps) {
    Table table("TP-" + std::to_string(tp) + ": fault-waiting rate");
    std::vector<std::string> header{"Job scale (GPU)"};
    const std::size_t begin = next;
    for (; next < grid.size() && grid[next].tp == tp; ++next)
      header.push_back(grid[next].arch->name());
    table.set_header(header);

    for (int scale : {1920, 2176, 2432, 2560, 2688, 2816}) {
      std::vector<std::string> row{std::to_string(scale)};
      for (std::size_t i = begin; i < next; ++i)
        row.push_back(Table::pct(topo::fault_waiting_rate(usable[i], scale)));
      table.add_row(row);
    }
    bench::emit(opt, "fig16_fault_waiting_tp" + std::to_string(tp), table);
  }
  bench::finish(opt);
  return 0;
}
