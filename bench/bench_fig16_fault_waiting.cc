// Reproduces paper Fig. 16 (TP-16/TP-32) and Fig. 23 (TP-8..TP-64): the
// fraction of time a job of a given scale must wait for repairs because
// usable GPUs fall below its requirement, over the production trace.
#include "bench/bench_util.h"
#include "bench/fault_bench_common.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const auto opt = bench::parse_args(argc, argv);
  bench::banner("Figures 16 & 23: job fault-waiting rate vs job scale");

  const auto trace = bench::make_sim_trace(opt.quick);
  const auto archs = bench::make_archs();

  for (int tp : {8, 16, 32, 64}) {
    Table table("TP-" + std::to_string(tp) + ": fault-waiting rate");
    std::vector<std::string> header{"Job scale (GPU)"};
    for (const auto& arch : archs)
      if (bench::arch_supports_tp(*arch, tp)) header.push_back(arch->name());
    table.set_header(header);

    // Pre-compute each architecture's usable series once.
    std::vector<TimeSeries> usable;
    for (const auto& arch : archs) {
      if (!bench::arch_supports_tp(*arch, tp)) continue;
      usable.push_back(
          topo::evaluate_waste_over_trace(*arch, trace, tp, 1.0).usable_gpus);
    }

    for (int scale : {1920, 2176, 2432, 2560, 2688, 2816}) {
      std::vector<std::string> row{std::to_string(scale)};
      for (const auto& series : usable)
        row.push_back(Table::pct(topo::fault_waiting_rate(series, scale)));
      table.add_row(row);
    }
    bench::emit(opt, "fig16_fault_waiting_tp" + std::to_string(tp), table);
  }
  return 0;
}
