// Example: place a TP-32 training job on an 8,192-GPU Fat-Tree cluster
// with live faults, using the HBD-DCN orchestration algorithm (§4.3 /
// Appendix D), and compare its cross-ToR traffic against the greedy
// baseline.
//
//   $ ./orchestrate_job [fault_percent] [job_percent]
#include <cstdio>
#include <cstdlib>

#include "src/common/error.h"
#include "src/dcn/traffic.h"
#include "src/fault/trace.h"
#include "src/orch/orchestrator.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const double fault_ratio = (argc > 1 ? std::atof(argv[1]) : 5.0) / 100.0;
  const double job_ratio = (argc > 2 ? std::atof(argv[2]) : 85.0) / 100.0;

  // 8,192 GPUs: 2,048 4-GPU nodes, 8 per ToR, 64 ToRs per aggregation
  // domain. InfiniteHBD K=2 rides the deployment of Algorithm 3.
  dcn::FatTreeConfig cfg;
  cfg.node_count = 2048;
  cfg.nodes_per_tor = 8;
  cfg.tors_per_domain = 64;
  const dcn::FatTree fat_tree(cfg);
  orch::FatTreeOrchestrator orchestrator(fat_tree, /*k=*/2,
                                         /*gpus_per_node=*/4);

  Rng rng(42);
  const auto faults =
      fault::sample_fault_mask(cfg.node_count, fault_ratio, rng);
  orch::JobSpec job;
  job.tp_size_gpus = 32;
  job.gpu_count = static_cast<int>(cfg.node_count * 4 * job_ratio);
  std::printf("Job: %d GPUs (TP-32) on 8192, faults %.1f%%\n\n",
              job.gpu_count, fault_ratio * 100);

  try {
    const auto placement = orchestrator.orchestrate(faults, job);
    const int use = job.gpu_count / job.tp_size_gpus;
    const auto stats =
        dcn::evaluate_cross_tor(fat_tree, placement, 4, {}, use);
    int aligned = 0;
    for (const auto& g : placement.groups)
      if (g.pos >= 0) ++aligned;
    std::printf("Orchestrated: %d TP groups placed (%d ToR-aligned)\n",
                placement.group_count(), aligned);
    std::printf("  cross-ToR rate: %.2f%% (%d of %d DCN edges)\n",
                stats.cross_tor_rate() * 100, stats.cross_tor_edges,
                stats.dcn_edges);

    const auto baseline =
        orch::greedy_baseline(fat_tree, 2, 4, faults, job, rng);
    const auto base_stats =
        dcn::evaluate_cross_tor(fat_tree, baseline, 4, {}, use);
    std::printf("Greedy baseline cross-ToR rate: %.2f%%  ->  %.1fx more "
                "congested traffic\n",
                base_stats.cross_tor_rate() * 100,
                base_stats.cross_tor_rate() /
                    std::max(stats.cross_tor_rate(), 1e-6));
  } catch (const ihbd::InfeasibleError& e) {
    std::printf("Placement infeasible: %s\n", e.what());
    return 1;
  }
  return 0;
}
