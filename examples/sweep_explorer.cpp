// Sweep explorer: drive the runtime Monte-Carlo sweep engine end to end.
//
// Sweeps GPU waste ratio over fault ratio x architecture on the paper's
// simulation cluster, runs the identical grid serially and in parallel,
// checks the results are bit-identical, and reports the wall-clock speedup.
//
//   $ ./sweep_explorer [trials] [threads]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/fault/trace.h"
#include "src/runtime/report.h"
#include "src/runtime/sweep.h"
#include "src/runtime/thread_pool.h"
#include "src/topo/baselines.h"

using namespace ihbd;

namespace {

int positive_arg(const char* text, const char* what) {
  const int v = std::atoi(text);
  if (v <= 0) {
    std::fprintf(stderr, "sweep_explorer: %s must be a positive integer, "
                         "got '%s'\nusage: sweep_explorer [trials] [threads]\n",
                 what, text);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? positive_arg(argv[1], "trials") : 100;
  const int threads = argc > 2 ? positive_arg(argv[2], "threads")
                               : runtime::ThreadPool::default_threads();

  // The §6.1 architecture set on the 720-node (2,880-GPU) simulation
  // cluster (TPUv4 requires the node count to tile its 4x4x4 cubes).
  const auto archs = topo::make_paper_architectures(720, 4);
  std::vector<std::string> names;
  for (const auto& arch : archs) names.push_back(arch->name());

  runtime::SweepSpec spec;
  spec.seed = 2025;
  spec.trials = trials;
  spec.axes = {
      runtime::Axis::of_values("Fault ratio", {0.0, 0.02, 0.05, 0.10},
                               [](double f) { return Table::pct(f, 0); }),
      runtime::Axis::of_labels("Arch", names),
  };

  const auto trial_fn = [&](const runtime::Scenario& s, Rng& rng) {
    const auto& arch = *archs[s.index(1)];
    const auto mask =
        fault::sample_fault_mask(arch.node_count(), s.value(0), rng);
    return arch.allocate(mask, /*tp_size_gpus=*/32).waste_ratio();
  };

  const auto run_timed = [&](int n_threads) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = runtime::run_sweep(spec, trial_fn, n_threads);
    const auto t1 = std::chrono::steady_clock::now();
    return std::pair(std::move(result),
                     std::chrono::duration<double>(t1 - t0).count());
  };

  std::printf("Sweep: %zu cells x %d trials, TP-32, 720 nodes\n",
              spec.cell_count(), trials);
  const auto [serial, serial_s] = run_timed(1);
  const auto [parallel, parallel_s] = run_timed(threads);

  // Substreams make the grid bit-stable in thread count: same samples,
  // same order, any schedule.
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    if (serial.cells[c].samples() != parallel.cells[c].samples()) {
      std::printf("MISMATCH in cell %zu — substreams broken\n", c);
      return 1;
    }
  }

  runtime::ReportSpec report;
  report.title = "Mean TP-32 waste ratio (" + std::to_string(trials) +
                 " trials per cell)";
  report.row_axis = 0;
  report.col_axis = 1;
  report.format = [](double v) { return Table::pct(v); };
  runtime::to_table(parallel, report).print();

  std::printf(
      "\n1 thread: %.3f s   %d threads: %.3f s   speedup: %.2fx\n"
      "Results bit-identical across thread counts.\n",
      serial_s, threads, parallel_s,
      parallel_s > 0 ? serial_s / parallel_s : 0.0);
  return 0;
}
