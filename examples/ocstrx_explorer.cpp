// Example: explore the OCSTrx hardware model - the photonic layer a
// transceiver vendor or link-budget engineer would poke at: insertion
// loss, TO drive power, BER margins and reconfiguration latency across
// operating conditions (§4.1 / §5.1).
//
//   $ ./ocstrx_explorer [temperature_C]
#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/phy/ber.h"
#include "src/phy/switch_matrix.h"

using namespace ihbd;
using phy::OcsPath;

int main(int argc, char** argv) {
  const double temp = argc > 1 ? std::atof(argv[1]) : 25.0;
  phy::OcsSwitchMatrix matrix;
  phy::BerModel ber(matrix);
  Rng rng(1);

  std::printf("OCSTrx core module at %.0f C (8-lane QSFP-DD 800G)\n\n", temp);
  const char* names[] = {"External 1", "External 2", "Loopback"};
  for (auto path :
       {OcsPath::kExternal1, OcsPath::kExternal2, OcsPath::kLoopback}) {
    std::vector<double> losses;
    for (int i = 0; i < 500; ++i)
      losses.push_back(matrix.sample_insertion_loss_db(path, temp, rng));
    const Summary s = summarize(losses);
    std::printf("%-11s: %d MZI stages | loss %.2f dB (%.2f..%.2f) | "
                "drive %.2f W\n",
                names[static_cast<int>(path)], matrix.stages_for(path),
                s.mean, s.min, s.max, matrix.drive_power_w(path, temp));
  }

  std::printf("\nLink budget (BER vs OMA on External 1):\n");
  std::printf("  %-10s %-12s %s\n", "OMA (mW)", "Q factor", "expected BER");
  for (double oma : {0.2, 0.3, 0.5, 0.8, 1.2}) {
    const double q = ber.q_factor(OcsPath::kExternal1, oma, temp);
    const double b = ber.expected_ber(OcsPath::kExternal1, oma, temp);
    std::printf("  %-10.2f %-12.2f %s\n", oma, q,
                b < 1e-13 ? "< 1e-13 (clean)" : "measurable");
  }

  std::vector<double> lat;
  for (int i = 0; i < 1000; ++i)
    lat.push_back(matrix.sample_reconfig_latency_s(rng) * 1e6);
  const Summary ls = summarize(lat);
  std::printf("\nReconfiguration latency: %.1f us mean (%.1f..%.1f us) - "
              "paper: 60-80 us\n",
              ls.mean, ls.min, ls.max);
  return 0;
}
