// Quickstart: build an InfiniteHBD cluster, carve TP rings, fail a node
// and watch its neighbors bypass it over OCSTrx backup paths within the
// 60-80 us reconfiguration budget.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/cluster.h"

using namespace ihbd;

int main() {
  // A 64-node (256-GPU) InfiniteHBD pod: 4 GPUs per node, K = 2 hop reach,
  // 8 x 800G OCSTrx per bundle (6.4 Tbps per GPU pair).
  core::InfiniteHbdCluster::Config config;
  config.node_count = 64;
  config.gpus_per_node = 4;
  config.k = 2;
  config.trx_per_bundle = 8;
  core::InfiniteHbdCluster cluster(config);
  std::printf("Cluster: %d nodes / %d GPUs, topology %s\n",
              cluster.node_count(), cluster.total_gpus(),
              cluster.topology().name().c_str());

  // Carve TP-32 rings (8 nodes per ring) across the whole pod.
  const auto plan = cluster.build_rings(/*tp_size_gpus=*/32);
  std::printf("Built %zu TP-32 rings (%d usable GPUs, %d wasted), "
              "%d bundles steered, worst switch latency %.1f us\n",
              plan.allocation.groups.size(), plan.allocation.usable_gpus,
              plan.allocation.wasted_healthy_gpus, plan.reconfigured_bundles,
              plan.reconfig_latency_s * 1e6);
  std::printf("Ring 0 nodes:");
  for (int node : plan.allocation.groups[0].nodes) std::printf(" N%d", node);
  std::printf("  (ends close via OCSTrx loopback)\n");

  // Fail an interior node of ring 0: its neighbors steer backup paths.
  const int victim = plan.allocation.groups[0].nodes[2];
  const auto bypass = cluster.fail_and_bypass(victim);
  std::printf("\nN%d failed. bypassed=%s, reconfiguration %.1f us "
              "(paper: 60-80 us hardware latency)\n",
              victim, bypass.bypassed ? "yes" : "no",
              bypass.reconfig_latency_s * 1e6);
  std::printf("Ring 0 now:");
  for (int node : cluster.active_plan().allocation.groups[0].nodes)
    std::printf(" N%d", node);
  std::printf("  (the fault explosion radius stayed at node level)\n");

  // Rebuild from scratch around the fault: near-zero healthy-GPU waste.
  const auto rebuilt = cluster.build_rings(32);
  std::printf("\nRebuild: %zu rings, %d usable GPUs, waste ratio %.2f%%\n",
              rebuilt.allocation.groups.size(), rebuilt.allocation.usable_gpus,
              rebuilt.allocation.waste_ratio() * 100.0);
  return 0;
}
