// Example: pick the MFU-optimal parallelism strategy for a model on a GPU
// budget - the §2.3/§6.3 analysis as a planning tool. Shows why large,
// adaptable TP (InfiniteHBD's contribution) matters as clusters grow.
//
//   $ ./training_planner [gpus] [llama|moe]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/table.h"
#include "src/llmsim/perf.h"

using namespace ihbd;
using namespace ihbd::llmsim;

int main(int argc, char** argv) {
  const int gpus = argc > 1 ? std::atoi(argv[1]) : 8192;
  const bool moe = argc > 2 && std::strcmp(argv[2], "moe") == 0;

  TrainJob job;
  job.model = moe ? ModelConfig::gpt_moe_1t() : ModelConfig::llama31_405b_mha();
  job.global_batch = moe ? 1536 : 2048;
  if (moe) job.expert_imbalance = 0.20;

  std::printf("Model: %s (%.0fB params), %d GPUs, batch %d\n\n",
              job.model.name.c_str(), job.model.param_count() / 1e9, gpus,
              job.global_batch);

  const auto best = search_best_strategy(job, gpus);
  if (!best.perf.feasible) {
    std::printf("No feasible strategy found.\n");
    return 1;
  }
  std::printf("Optimal strategy: %s  ->  MFU %.2f%%\n",
              best.best.to_string().c_str(), best.perf.mfu * 100);
  std::printf("  iteration %.2f s | bubble %.1f%% | TP comm (exposed) %.2f s "
              "| memory %.1f GiB/GPU\n\n",
              best.perf.iter_time_s, best.perf.bubble_fraction * 100,
              best.perf.tp_comm_time_s, best.perf.memory_bytes / (1 << 30));

  Table table("What an HBD size limit would cost (TP capped)");
  table.set_header({"Max TP (HBD limit)", "Best MFU", "vs optimal"});
  for (int cap : {8, 16, 32, 64, 128}) {
    const auto capped = search_best_strategy(job, gpus, cap);
    if (!capped.perf.feasible) {
      table.add_row({std::to_string(cap), "infeasible", "-"});
      continue;
    }
    table.add_row({std::to_string(cap), Table::pct(capped.perf.mfu),
                   Table::fmt(best.perf.mfu / capped.perf.mfu, 2) + "x"});
  }
  table.print();
  std::puts("\nAn 8-GPU HBD (DGX-class) caps TP at 8; InfiniteHBD's "
            "datacenter-scale rings remove the cap (paper: 3.37x MFU at "
            "128k GPUs).");
  return 0;
}
