// Example: multi-job cluster scheduling over a fault trace - the
// end-to-end consequence of each HBD architecture's waste ratio: goodput,
// per-job waiting and preemptions under identical fault conditions.
//
//   $ ./job_scheduler_sim [days]
#include <cstdio>
#include <cstdlib>

#include "src/common/table.h"
#include "src/core/scheduler.h"
#include "src/fault/generator.h"
#include "src/topo/baselines.h"
#include "src/topo/khop_ring.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 90.0;

  // 720 x 4-GPU nodes with a production-like fault process.
  fault::TraceGenConfig cfg;
  cfg.node_count = 360;
  cfg.duration_days = days;
  Rng rng(7);
  const auto trace = fault::generate_trace(cfg).split_to_half_nodes(rng);

  // A pretraining-heavy job mix that oversubscribes the cluster: one
  // flagship job plus mid-size runs competing for the remainder.
  std::vector<core::JobRequest> jobs{
      {1, 32, 2048, days * 0.85},  // flagship pretrain
      {2, 32, 512, days * 0.6},
      {3, 16, 384, days * 0.5},
      {4, 16, 256, days * 0.4},
      {5, 32, 128, days * 0.3},
  };

  Table table("Job mix on " + std::to_string(trace.node_count() * 4) +
              " GPUs over " + Table::fmt(days, 0) + " days");
  table.set_header({"Architecture", "Goodput (GPU-days)", "Utilization",
                    "Flagship waits (days)", "Flagship preemptions"});
  topo::KHopRing k3(720, 4, 3);
  topo::KHopRing k2(720, 4, 2);
  topo::NvlSwitch nvl72(720, 4, 72);
  topo::TpuV4 tpu(720, 4, 64);
  topo::SipRing sip(720, 4);
  const std::vector<const topo::HbdArchitecture*> archs{&k3, &k2, &nvl72,
                                                        &tpu, &sip};
  for (const topo::HbdArchitecture* arch : archs) {
    const auto result = core::simulate_schedule(*arch, trace, jobs, 0.5);
    table.add_row({arch->name(), Table::fmt(result.goodput_gpu_days, 0),
                   Table::pct(result.utilization()),
                   Table::fmt(result.outcomes[0].waiting_days, 1),
                   std::to_string(result.outcomes[0].preemptions)});
  }
  table.print();
  std::puts("\nInfiniteHBD's near-zero waste converts directly into "
            "goodput: the flagship job rides out fault bursts that preempt "
            "it on fragmented architectures.");
  return 0;
}
