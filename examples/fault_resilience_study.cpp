// Example: compare HBD architectures' fault resilience on a synthetic
// production-like trace - the §6.2 study as a library consumer would run
// it on their own cluster shape.
//
//   $ ./fault_resilience_study [tp_size]
#include <cstdio>
#include <cstdlib>

#include "src/common/table.h"
#include "src/fault/generator.h"
#include "src/topo/baselines.h"
#include "src/topo/waste.h"

using namespace ihbd;

int main(int argc, char** argv) {
  const int tp = argc > 1 ? std::atoi(argv[1]) : 32;
  const int nodes = 720;  // 2,880 GPUs at 4 GPUs/node

  // 1. Synthesize a production-calibrated fault trace (Appendix A stats)
  //    and normalize it from 8-GPU to 4-GPU nodes.
  fault::TraceGenConfig trace_cfg;
  trace_cfg.duration_days = 120.0;
  const auto trace8 = fault::generate_trace(trace_cfg);
  Rng rng(1);
  const auto trace = trace8.split_to_half_nodes(rng).remap_nodes(nodes);
  const auto stats = trace.ratio_summary();
  std::printf("Trace: %d nodes, %.0f days, mean fault ratio %.2f%% "
              "(p99 %.2f%%)\n\n",
              trace.node_count(), trace.duration_days(), stats.mean * 100,
              stats.p99 * 100);

  // 2. Replay it against every §6 architecture.
  Table table("GPU waste ratio and max job scale, TP-" + std::to_string(tp));
  table.set_header({"Architecture", "mean waste", "p99 waste",
                    "max job @99% uptime", "fault-wait @2688 GPUs"});
  for (const auto& arch : topo::make_paper_architectures(nodes, 4)) {
    if (tp > 36 && arch->name() == "NVL-36") continue;
    const auto result = topo::evaluate_waste_over_trace(*arch, trace, tp);
    table.add_row(
        {arch->name(), Table::pct(result.waste_summary.mean),
         Table::pct(result.waste_summary.p99),
         std::to_string(topo::max_job_scale(result.usable_gpus, 0.99, tp)),
         Table::pct(topo::fault_waiting_rate(result.usable_gpus, 2688))});
  }
  table.print();
  std::puts("\nInfiniteHBD(K=3) tracks the ideal Big-Switch; NVL pays its "
            "fragmentation floor; SiP-Ring collapses at large TP.");
  return 0;
}
