#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/core/scheduler.h"
#include "src/fault/generator.h"
#include "src/topo/baselines.h"
#include "src/topo/khop_ring.h"

namespace ihbd::core {
namespace {

fault::FaultTrace no_faults(int nodes, double days) {
  return fault::FaultTrace(nodes, days, {});
}

TEST(Scheduler, SingleJobRunsToCompletion) {
  topo::KHopRing ring(64, 4, 2);
  const auto trace = no_faults(64, 10.0);
  std::vector<JobRequest> jobs{{1, 32, 128, 2.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 0.5);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_TRUE(result.outcomes[0].finished());
  EXPECT_DOUBLE_EQ(result.outcomes[0].completed_day, 2.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].waiting_days, 0.0);
  EXPECT_DOUBLE_EQ(result.goodput_gpu_days, 128 * 2.0);
}

TEST(Scheduler, FifoQueuesWhenOversubscribed) {
  topo::KHopRing ring(64, 4, 2);  // 256 GPUs
  const auto trace = no_faults(64, 20.0);
  // Two jobs of 160 GPUs each cannot co-run on 256.
  std::vector<JobRequest> jobs{{1, 32, 160, 3.0}, {2, 32, 160, 3.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 0.5);
  EXPECT_TRUE(result.outcomes[0].finished());
  EXPECT_TRUE(result.outcomes[1].finished());
  EXPECT_DOUBLE_EQ(result.outcomes[0].completed_day, 3.0);
  EXPECT_GE(result.outcomes[1].waiting_days, 3.0);
  EXPECT_GT(result.outcomes[1].completed_day, 5.9);
}

TEST(Scheduler, SmallJobsBackfillAroundBigOnes) {
  topo::KHopRing ring(64, 4, 2);  // 256 GPUs
  const auto trace = no_faults(64, 20.0);
  std::vector<JobRequest> jobs{{1, 32, 192, 4.0}, {2, 32, 64, 1.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 0.5);
  // 192 + 64 = 256: both run immediately.
  EXPECT_DOUBLE_EQ(result.outcomes[1].completed_day, 1.0);
  EXPECT_DOUBLE_EQ(result.outcomes[1].waiting_days, 0.0);
}

TEST(Scheduler, FaultBurstPreemptsNewestJob) {
  topo::KHopRing ring(64, 4, 3);  // 256 GPUs
  // Days 5..10: 8 nodes (32 GPUs) down.
  std::vector<fault::FaultEvent> events;
  for (int n = 0; n < 8; ++n) events.push_back({n, 5.0, 10.0});
  fault::FaultTrace trace(64, 30.0, events);
  std::vector<JobRequest> jobs{{1, 32, 128, 8.0}, {2, 32, 128, 8.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 0.5);
  // Both fit until day 5 (256 usable); during the burst only 224 are
  // usable, so job 2 preempts. It resumes at day 8 when job 1 completes
  // (not day 10 - backfilling into the freed capacity), finishing late.
  EXPECT_TRUE(result.outcomes[0].finished());
  EXPECT_TRUE(result.outcomes[1].finished());
  EXPECT_GE(result.outcomes[1].preemptions, 1);
  EXPECT_NEAR(result.outcomes[1].waiting_days, 3.0, 0.6);
  EXPECT_GT(result.outcomes[1].completed_day,
            result.outcomes[0].completed_day);
}

TEST(Scheduler, UnfinishedJobReportedAsSuch) {
  topo::KHopRing ring(64, 4, 2);
  const auto trace = no_faults(64, 5.0);
  std::vector<JobRequest> jobs{{1, 32, 128, 100.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 1.0);
  EXPECT_FALSE(result.outcomes[0].finished());
  EXPECT_GT(result.goodput_gpu_days, 0.0);
}

TEST(Scheduler, UtilizationBounded) {
  topo::KHopRing ring(64, 4, 2);
  const auto trace = no_faults(64, 10.0);
  std::vector<JobRequest> jobs{{1, 32, 256, 10.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 0.5);
  EXPECT_GT(result.utilization(), 0.99);
  EXPECT_LE(result.utilization(), 1.0 + 1e-9);
}

TEST(Scheduler, RejectsBadJob) {
  topo::KHopRing ring(64, 4, 2);
  const auto trace = no_faults(64, 5.0);
  std::vector<JobRequest> jobs{{1, 32, 100, 1.0}};  // not a TP multiple
  EXPECT_THROW(simulate_schedule(ring, trace, jobs), ConfigError);
}

// --- event-driven scheduler vs dense oracle ---------------------------------

void expect_bit_identical(const ScheduleResult& dense,
                          const ScheduleResult& events) {
  // Bit-exact doubles: the event formulation must replay the oracle's FP
  // accumulation order, not merely approximate it.
  EXPECT_EQ(dense.goodput_gpu_days, events.goodput_gpu_days);
  EXPECT_EQ(dense.offered_gpu_days, events.offered_gpu_days);
  ASSERT_EQ(dense.outcomes.size(), events.outcomes.size());
  for (std::size_t i = 0; i < dense.outcomes.size(); ++i) {
    const auto& d = dense.outcomes[i];
    const auto& e = events.outcomes[i];
    EXPECT_EQ(d.id, e.id);
    EXPECT_EQ(d.completed_day, e.completed_day) << "job " << d.id;
    EXPECT_EQ(d.waiting_days, e.waiting_days) << "job " << d.id;
    EXPECT_EQ(d.preemptions, e.preemptions) << "job " << d.id;
  }
}

TEST(EventScheduler, MatchesOracleOnRegressionGrid) {
  // Generated traces x step sizes x job mixes: every cell must agree
  // bit-for-bit with the dense oracle.
  topo::KHopRing ring(96, 4, 3);  // 384 GPUs
  const std::vector<JobRequest> mixes[] = {
      {{1, 32, 192, 11.0}, {2, 32, 128, 6.5}, {3, 32, 64, 3.25}},
      {{1, 64, 256, 9.0}, {2, 32, 96, 4.0}, {3, 32, 96, 25.0}},
      {{1, 32, 384, 7.0}, {2, 64, 128, 0.75}},
  };
  for (unsigned seed : {11u, 12u}) {
    fault::TraceGenConfig cfg;
    cfg.node_count = 96;
    cfg.duration_days = 60.0;
    cfg.node_fault_rate_per_day = 0.008;
    cfg.seed = seed;
    const auto trace = fault::generate_trace(cfg);
    for (double step : {0.25, 0.5, 1.0}) {
      for (const auto& jobs : mixes) {
        const auto dense = simulate_schedule(ring, trace, jobs, step);
        EventScheduleStats stats;
        const auto events =
            simulate_schedule_events(ring, trace, jobs, step, &stats);
        expect_bit_identical(dense, events);
        EXPECT_EQ(stats.grid_days,
                  static_cast<std::uint64_t>(trace.sample_days(step).size()));
        // Decisions never exceed the grid; on a fine grid (where mask
        // changes land sparsely among the buckets) they must be sparser,
        // and memoized allocate calls stay below the oracle's
        // one-per-job-per-day.
        EXPECT_LE(stats.decision_events, stats.grid_days);
        if (step <= 0.25) {
          EXPECT_LT(stats.decision_events, stats.grid_days / 2);
          EXPECT_LT(stats.allocate_calls, stats.grid_days * jobs.size() / 2);
        }
      }
    }
  }
}

TEST(EventScheduler, MatchesOracleWithoutFaults) {
  topo::KHopRing ring(64, 4, 2);
  const auto trace = no_faults(64, 20.0);
  std::vector<JobRequest> jobs{{1, 32, 160, 3.0}, {2, 32, 160, 3.0}};
  EventScheduleStats stats;
  expect_bit_identical(simulate_schedule(ring, trace, jobs, 0.5),
                       simulate_schedule_events(ring, trace, jobs, 0.5,
                                                &stats));
  // Fault-free: decisions only at day 0 and after each completion.
  EXPECT_EQ(stats.decision_events, 3u);
}

TEST(EventScheduler, HandlesEmptyJobListAndZeroRemaining) {
  topo::KHopRing ring(64, 4, 2);
  const auto trace = no_faults(64, 5.0);
  expect_bit_identical(simulate_schedule(ring, trace, {}, 0.5),
                       simulate_schedule_events(ring, trace, {}, 0.5));
  std::vector<JobRequest> jobs{{1, 32, 128, 0.0}};  // nothing to run
  expect_bit_identical(simulate_schedule(ring, trace, jobs, 0.5),
                       simulate_schedule_events(ring, trace, jobs, 0.5));
}

TEST(Scheduler, ArchitectureComparisonFavorsInfiniteHbd) {
  // The same job mix on SiP-Ring suffers more waiting under faults.
  std::vector<fault::FaultEvent> events;
  for (int n = 0; n < 18; n += 3) events.push_back({n * 2, 2.0, 28.0});
  fault::FaultTrace trace(72, 30.0, events);
  topo::KHopRing ring(72, 4, 3);
  topo::SipRing sip(72, 4);
  std::vector<JobRequest> jobs{{1, 32, 192, 20.0}};
  const auto r_ring = simulate_schedule(ring, trace, jobs, 0.5);
  const auto r_sip = simulate_schedule(sip, trace, jobs, 0.5);
  EXPECT_GE(r_ring.goodput_gpu_days, r_sip.goodput_gpu_days);
}

}  // namespace
}  // namespace ihbd::core
