#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/core/scheduler.h"
#include "src/topo/baselines.h"
#include "src/topo/khop_ring.h"

namespace ihbd::core {
namespace {

fault::FaultTrace no_faults(int nodes, double days) {
  return fault::FaultTrace(nodes, days, {});
}

TEST(Scheduler, SingleJobRunsToCompletion) {
  topo::KHopRing ring(64, 4, 2);
  const auto trace = no_faults(64, 10.0);
  std::vector<JobRequest> jobs{{1, 32, 128, 2.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 0.5);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_TRUE(result.outcomes[0].finished());
  EXPECT_DOUBLE_EQ(result.outcomes[0].completed_day, 2.0);
  EXPECT_DOUBLE_EQ(result.outcomes[0].waiting_days, 0.0);
  EXPECT_DOUBLE_EQ(result.goodput_gpu_days, 128 * 2.0);
}

TEST(Scheduler, FifoQueuesWhenOversubscribed) {
  topo::KHopRing ring(64, 4, 2);  // 256 GPUs
  const auto trace = no_faults(64, 20.0);
  // Two jobs of 160 GPUs each cannot co-run on 256.
  std::vector<JobRequest> jobs{{1, 32, 160, 3.0}, {2, 32, 160, 3.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 0.5);
  EXPECT_TRUE(result.outcomes[0].finished());
  EXPECT_TRUE(result.outcomes[1].finished());
  EXPECT_DOUBLE_EQ(result.outcomes[0].completed_day, 3.0);
  EXPECT_GE(result.outcomes[1].waiting_days, 3.0);
  EXPECT_GT(result.outcomes[1].completed_day, 5.9);
}

TEST(Scheduler, SmallJobsBackfillAroundBigOnes) {
  topo::KHopRing ring(64, 4, 2);  // 256 GPUs
  const auto trace = no_faults(64, 20.0);
  std::vector<JobRequest> jobs{{1, 32, 192, 4.0}, {2, 32, 64, 1.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 0.5);
  // 192 + 64 = 256: both run immediately.
  EXPECT_DOUBLE_EQ(result.outcomes[1].completed_day, 1.0);
  EXPECT_DOUBLE_EQ(result.outcomes[1].waiting_days, 0.0);
}

TEST(Scheduler, FaultBurstPreemptsNewestJob) {
  topo::KHopRing ring(64, 4, 3);  // 256 GPUs
  // Days 5..10: 8 nodes (32 GPUs) down.
  std::vector<fault::FaultEvent> events;
  for (int n = 0; n < 8; ++n) events.push_back({n, 5.0, 10.0});
  fault::FaultTrace trace(64, 30.0, events);
  std::vector<JobRequest> jobs{{1, 32, 128, 8.0}, {2, 32, 128, 8.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 0.5);
  // Both fit until day 5 (256 usable); during the burst only 224 are
  // usable, so job 2 preempts. It resumes at day 8 when job 1 completes
  // (not day 10 - backfilling into the freed capacity), finishing late.
  EXPECT_TRUE(result.outcomes[0].finished());
  EXPECT_TRUE(result.outcomes[1].finished());
  EXPECT_GE(result.outcomes[1].preemptions, 1);
  EXPECT_NEAR(result.outcomes[1].waiting_days, 3.0, 0.6);
  EXPECT_GT(result.outcomes[1].completed_day,
            result.outcomes[0].completed_day);
}

TEST(Scheduler, UnfinishedJobReportedAsSuch) {
  topo::KHopRing ring(64, 4, 2);
  const auto trace = no_faults(64, 5.0);
  std::vector<JobRequest> jobs{{1, 32, 128, 100.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 1.0);
  EXPECT_FALSE(result.outcomes[0].finished());
  EXPECT_GT(result.goodput_gpu_days, 0.0);
}

TEST(Scheduler, UtilizationBounded) {
  topo::KHopRing ring(64, 4, 2);
  const auto trace = no_faults(64, 10.0);
  std::vector<JobRequest> jobs{{1, 32, 256, 10.0}};
  const auto result = simulate_schedule(ring, trace, jobs, 0.5);
  EXPECT_GT(result.utilization(), 0.99);
  EXPECT_LE(result.utilization(), 1.0 + 1e-9);
}

TEST(Scheduler, RejectsBadJob) {
  topo::KHopRing ring(64, 4, 2);
  const auto trace = no_faults(64, 5.0);
  std::vector<JobRequest> jobs{{1, 32, 100, 1.0}};  // not a TP multiple
  EXPECT_THROW(simulate_schedule(ring, trace, jobs), ConfigError);
}

TEST(Scheduler, ArchitectureComparisonFavorsInfiniteHbd) {
  // The same job mix on SiP-Ring suffers more waiting under faults.
  std::vector<fault::FaultEvent> events;
  for (int n = 0; n < 18; n += 3) events.push_back({n * 2, 2.0, 28.0});
  fault::FaultTrace trace(72, 30.0, events);
  topo::KHopRing ring(72, 4, 3);
  topo::SipRing sip(72, 4);
  std::vector<JobRequest> jobs{{1, 32, 192, 20.0}};
  const auto r_ring = simulate_schedule(ring, trace, jobs, 0.5);
  const auto r_sip = simulate_schedule(sip, trace, jobs, 0.5);
  EXPECT_GE(r_ring.goodput_gpu_days, r_sip.goodput_gpu_days);
}

}  // namespace
}  // namespace ihbd::core
