#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/runtime/report.h"
#include "src/runtime/substream.h"
#include "src/runtime/sweep.h"
#include "src/runtime/thread_pool.h"

namespace ihbd::runtime {
namespace {

// --- Rng jump / substreams ------------------------------------------------

TEST(RngJump, JumpMovesToDifferentSubsequence) {
  Rng a(123), b(123);
  b.jump();
  EXPECT_NE(a.state(), b.state());
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngJump, JumpIsDeterministic) {
  Rng a(7), b(7);
  a.jump();
  b.jump();
  EXPECT_EQ(a.state(), b.state());
  a.long_jump();
  b.long_jump();
  EXPECT_EQ(a.state(), b.state());
}

TEST(RngJump, LongJumpDiffersFromJump) {
  Rng a(9), b(9);
  a.jump();
  b.long_jump();
  EXPECT_NE(a.state(), b.state());
}

TEST(Substream, DeterministicAndOrderIndependent) {
  const Rng a = substream(42, 17);
  Rng b = substream(42, 999);  // materializing other streams in between
  (void)b.next();
  const Rng c = substream(42, 17);
  EXPECT_EQ(a.state(), c.state());
}

TEST(Substream, DistinctIndicesAreIndependent) {
  Rng a = substream(5, 0);
  Rng b = substream(5, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(SubstreamSeq, MatchesExplicitLongJumps) {
  SubstreamSeq seq(31);
  Rng expect(31);
  expect.long_jump();
  expect.long_jump();
  expect.long_jump();
  EXPECT_EQ(seq.at(3).state(), expect.state());
  // Cached-cursor forward access, then a restart going backwards.
  EXPECT_EQ(seq.at(3).state(), expect.state());
  Rng first(31);
  first.long_jump();
  EXPECT_EQ(seq.at(1).state(), first.state());
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForHonorsGrain) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(97);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37)
                                     throw ConfigError("bad scenario");
                                 }),
               ConfigError);
  // The pool must survive a failed fan-out.
  std::atomic<int> ran{0};
  pool.parallel_for(50, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ParallelForFromWorkerTaskCompletes) {
  // A parallel_for issued from a task already running on the pool must not
  // deadlock even with 1 worker: the blocked joiner executes the nested
  // chunks from its own deque itself (work-stealing helping join).
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  pool.submit([&] { pool.parallel_for(10, [&](std::size_t) { ++ran; }); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 20);
  pool.wait_idle();  // idempotent on an idle pool
}

TEST(ThreadPool, ParallelMapPreservesOrder) {
  std::vector<int> items;
  for (int i = 0; i < 200; ++i) items.push_back(i);
  const auto out =
      parallel_map(items, [](int v) { return v * v; }, 4);
  ASSERT_EQ(out.size(), items.size());
  for (int i = 0; i < 200; ++i) EXPECT_EQ(out[i], i * i);
}

// --- Accumulator ----------------------------------------------------------

TEST(Accumulator, MatchesStatsOnSamples) {
  Accumulator acc;
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.5, 9.0, 2.5};
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(acc.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.summary().p50, summarize(xs).p50);
}

TEST(Accumulator, MergeEqualsSequential) {
  Rng rng(88);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.normal(5.0, 2.0));

  Accumulator whole;
  for (double x : xs) whole.add(x);

  Accumulator a, b, c;
  for (int i = 0; i < 100; ++i) a.add(xs[i]);
  for (int i = 100; i < 250; ++i) b.add(xs[i]);
  for (int i = 250; i < 300; ++i) c.add(xs[i]);

  Accumulator left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  Accumulator bc = b;     // a + (b + c)
  bc.merge(c);
  Accumulator right = a;
  right.merge(bc);

  for (const Accumulator* m : {&left, &right}) {
    EXPECT_EQ(m->count(), whole.count());
    EXPECT_DOUBLE_EQ(m->min(), whole.min());
    EXPECT_DOUBLE_EQ(m->max(), whole.max());
    EXPECT_NEAR(m->mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(m->variance(), whole.variance(), 1e-8);
  }
  EXPECT_NEAR(left.mean(), right.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-8);
}

TEST(Accumulator, MergeMixedSampleRetentionDegradesToMoments) {
  Accumulator with_samples, moments_only;
  moments_only.set_keep_samples(false);
  for (int i = 0; i < 10; ++i) with_samples.add(i);
  for (int i = 10; i < 30; ++i) moments_only.add(i);

  with_samples.merge(moments_only);
  // A partial sample set must not leak into percentiles: the merged
  // accumulator keeps exact moments but drops samples entirely.
  EXPECT_EQ(with_samples.count(), 30u);
  EXPECT_TRUE(with_samples.samples().empty());
  EXPECT_NEAR(with_samples.mean(), 14.5, 1e-12);
  EXPECT_DOUBLE_EQ(with_samples.summary().p50, with_samples.mean());
  // ...and stays moments-only if more values arrive afterwards.
  with_samples.add(100.0);
  EXPECT_TRUE(with_samples.samples().empty());

  // Merging into an empty moments-only accumulator must not start
  // retaining the other side's samples.
  Accumulator empty_no_samples, donor;
  empty_no_samples.set_keep_samples(false);
  donor.add(1.0);
  empty_no_samples.merge(donor);
  EXPECT_EQ(empty_no_samples.count(), 1u);
  EXPECT_TRUE(empty_no_samples.samples().empty());
}

TEST(Accumulator, DisablingRetentionDiscardsSamples) {
  // Complete-or-empty invariant: freezing a sample array short of count()
  // would feed summary() percentiles over a partial subset.
  Accumulator acc;
  for (int i = 0; i < 4; ++i) acc.add(i);
  EXPECT_FALSE(acc.set_keep_samples(false));
  EXPECT_TRUE(acc.samples().empty());
  acc.add(100.0);
  EXPECT_EQ(acc.count(), 5u);
  EXPECT_TRUE(acc.samples().empty());
  EXPECT_DOUBLE_EQ(acc.summary().p50, acc.mean());
}

TEST(Accumulator, ReenablingRetentionAfterDropsIsRefused) {
  Accumulator acc;
  acc.set_keep_samples(false);
  acc.add(1.0);
  // The first value was already dropped; a late opt-in cannot complete the
  // set, so retention stays off instead of recording a partial tail.
  EXPECT_FALSE(acc.set_keep_samples(true));
  acc.add(2.0);
  EXPECT_TRUE(acc.samples().empty());
  EXPECT_EQ(acc.count(), 2u);

  // ...but toggling on an accumulator that never dropped anything is fine.
  Accumulator fresh;
  fresh.set_keep_samples(false);
  EXPECT_TRUE(fresh.set_keep_samples(true));
  fresh.add(3.0);
  Accumulator complete;
  complete.add(4.0);
  EXPECT_TRUE(complete.set_keep_samples(true));
  complete.add(5.0);
  EXPECT_EQ(complete.samples().size(), 2u);
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

// --- Sweep engine ---------------------------------------------------------

SweepSpec small_spec() {
  SweepSpec spec;
  spec.seed = 99;
  spec.trials = 25;
  spec.axes = {Axis::of_values("x", {0.1, 0.5, 0.9}),
               Axis::of_labels("mode", {"a", "b"})};
  return spec;
}

double noisy_trial(const Scenario& s, Rng& rng) {
  // Consume a scheduling-sensitive number of draws so stream sharing or
  // ordering bugs cannot cancel out.
  const int extra = static_cast<int>(rng.uniform_index(7));
  for (int i = 0; i < extra; ++i) rng.next();
  const double base = s.label(1) == "b" ? 10.0 : 0.0;
  return base + s.value(0) + rng.normal(0.0, 1.0);
}

TEST(Sweep, BitStableAcrossThreadCounts) {
  const auto spec = small_spec();
  const auto serial = run_sweep(spec, noisy_trial, 1);
  const auto wide = run_sweep(spec, noisy_trial, 8);
  ASSERT_EQ(serial.cells.size(), spec.cell_count());
  ASSERT_EQ(wide.cells.size(), spec.cell_count());
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    EXPECT_EQ(serial.cells[c].samples(), wide.cells[c].samples())
        << "cell " << c;
    EXPECT_DOUBLE_EQ(serial.cells[c].mean(), wide.cells[c].mean());
  }
}

TEST(Sweep, AxisIndexLooksUpByName) {
  const auto spec = small_spec();
  EXPECT_EQ(spec.axis_index("x"), 0u);
  EXPECT_EQ(spec.axis_index("mode"), 1u);
}

TEST(Sweep, ScenarioExposesGrid) {
  auto spec = small_spec();
  spec.trials = 1;
  const auto result = run_sweep(
      spec,
      [](const Scenario& s, Rng&) {
        return s.value(0) * 100.0 + static_cast<double>(s.index(1));
      },
      2);
  EXPECT_DOUBLE_EQ(result.cell({0, 0}).mean(), 10.0);
  EXPECT_DOUBLE_EQ(result.cell({2, 1}).mean(), 91.0);
}

TEST(Sweep, NanMarksCellNotApplicable) {
  auto spec = small_spec();
  const auto result = run_sweep(
      spec,
      [](const Scenario& s, Rng& rng) {
        if (s.label(1) == "b")
          return std::numeric_limits<double>::quiet_NaN();
        return rng.uniform();
      },
      3);
  EXPECT_TRUE(result.cell({0, 1}).empty());
  EXPECT_EQ(result.cell({0, 0}).count(),
            static_cast<std::size_t>(spec.trials));
}

TEST(Sweep, KeepSamplesOffStillHasMoments) {
  auto spec = small_spec();
  spec.keep_samples = false;
  const auto result =
      run_sweep(spec, [](const Scenario&, Rng& rng) { return rng.uniform(); },
                2);
  EXPECT_TRUE(result.cell({0, 0}).samples().empty());
  EXPECT_EQ(result.cell({0, 0}).count(),
            static_cast<std::size_t>(spec.trials));
  EXPECT_GT(result.cell({0, 0}).mean(), 0.0);
}

// --- Generic reduce engine -------------------------------------------------

TEST(GenericSweep, ScalarAdapterIsBitIdenticalToManualFold) {
  // run_sweep must be exactly the generic engine + Accumulator fold.
  const auto spec = small_spec();
  const auto scalar = run_sweep(spec, noisy_trial, 4);
  Accumulator init;
  init.set_keep_samples(spec.keep_samples);
  const auto generic = run_sweep_reduce(
      spec, init, noisy_trial,
      [](Accumulator& acc, double x) {
        if (!std::isnan(x)) acc.add(x);
      },
      4);
  ASSERT_EQ(scalar.cells.size(), generic.cells.size());
  for (std::size_t c = 0; c < scalar.cells.size(); ++c) {
    EXPECT_EQ(scalar.cells[c].samples(), generic.cells[c].samples());
    EXPECT_EQ(scalar.cells[c].count(), generic.cells[c].count());
  }
}

TEST(GenericSweep, NonScalarResultsFoldInTrialOrder) {
  // Trials return a struct; the accumulator is a vector of them. Fold order
  // within a cell must be trial order for ANY thread count.
  struct Draw {
    int trial;
    double value;
  };
  auto spec = small_spec();
  spec.trials = 40;
  auto run = [&](int threads) {
    return run_sweep_reduce(
        spec, std::vector<Draw>{},
        [](const Scenario& s, Rng& rng) {
          return Draw{s.trial(), rng.uniform()};
        },
        [](std::vector<Draw>& acc, Draw&& d) { acc.push_back(d); }, threads);
  };
  const auto serial = run(1);
  const auto wide = run(8);
  ASSERT_EQ(serial.cells.size(), spec.cell_count());
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    ASSERT_EQ(serial.cells[c].size(), 40u);
    for (int t = 0; t < 40; ++t) {
      EXPECT_EQ(serial.cells[c][t].trial, t);
      EXPECT_EQ(serial.cells[c][t].value, wide.cells[c][t].value);
    }
  }
}

TEST(GenericSweep, FoldMaySeeTheScenario) {
  auto spec = small_spec();
  spec.trials = 3;
  const auto result = run_sweep_reduce(
      spec, 0.0, [](const Scenario&, Rng&) { return 1.0; },
      [](double& acc, double x, const Scenario& s) {
        acc += x * s.value(0);  // scale by the cell's numeric level
      },
      2);
  EXPECT_DOUBLE_EQ(result.cell({0, 0}), 3 * 0.1);
  EXPECT_DOUBLE_EQ(result.cell({2, 1}), 3 * 0.9);
}

TEST(GenericSweep, TrialRngMatchesEngineSubstreams) {
  // trial_rng exposes the exact stream a (cell, trial) pair consumed.
  auto spec = small_spec();
  spec.trials = 5;
  const auto result = run_sweep(
      spec, [](const Scenario&, Rng& rng) { return rng.uniform(); }, 3);
  for (std::size_t cell = 0; cell < spec.cell_count(); ++cell) {
    for (int t = 0; t < spec.trials; ++t) {
      Rng rng = trial_rng(spec, cell, t);
      EXPECT_EQ(result.cells[cell].samples()[static_cast<std::size_t>(t)],
                rng.uniform());
    }
  }
}

// --- Report ---------------------------------------------------------------

TEST(Report, RendersRowsColsAndDropsEmptyColumns) {
  SweepSpec spec;
  spec.seed = 1;
  spec.trials = 4;
  spec.axes = {Axis::of_values("f", {0.0, 1.0}),
               Axis::of_labels("arch", {"good", "unsupported"})};
  const auto result = run_sweep(
      spec,
      [](const Scenario& s, Rng&) {
        if (s.index(1) == 1) return std::numeric_limits<double>::quiet_NaN();
        return s.value(0) + 1.0;
      },
      2);

  ReportSpec report;
  report.title = "demo";
  report.row_axis = 0;
  report.col_axis = 1;
  const Table table = to_table(result, report);
  const std::string rendered = table.to_string();
  EXPECT_NE(rendered.find("good"), std::string::npos);
  EXPECT_EQ(rendered.find("unsupported"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Report, ConvenienceReducers) {
  Accumulator acc;
  for (int i = 1; i <= 100; ++i) acc.add(i);
  EXPECT_DOUBLE_EQ(reduce_mean(acc), 50.5);
  EXPECT_DOUBLE_EQ(reduce_max(acc), 100.0);
  EXPECT_NEAR(reduce_p99(acc), 99.0, 1.0);

  // reduce_p99 plugged into a report renders the tail, not the mean.
  SweepSpec spec;
  spec.seed = 4;
  spec.trials = 100;
  spec.axes = {Axis::of_values("f", {0.0}), Axis::of_labels("arch", {"x"})};
  const auto result = run_sweep(
      spec,
      [](const Scenario& s, Rng&) { return static_cast<double>(s.trial()); },
      2);
  ReportSpec report;
  report.row_axis = 0;
  report.col_axis = 1;
  report.reduce = reduce_p99;
  report.format = [](double v) { return Table::fmt(v, 2); };
  const std::string rendered = to_table(result, report).to_string();
  EXPECT_NE(rendered.find("98.01"), std::string::npos);  // p99 of 0..99
}

TEST(Report, FixedAxisSelectsSlice) {
  SweepSpec spec;
  spec.seed = 3;
  spec.trials = 1;
  spec.axes = {Axis::of_values("tp", {8, 16}),
               Axis::of_values("f", {0.0, 1.0}),
               Axis::of_labels("arch", {"x"})};
  const auto result = run_sweep(
      spec,
      [](const Scenario& s, Rng&) { return s.value(0) + s.value(1); }, 2);

  ReportSpec report;
  report.row_axis = 1;
  report.col_axis = 2;
  report.fixed = {{0, 1}};  // tp = 16
  report.format = [](double v) { return Table::fmt(v, 0); };
  const std::string rendered = to_table(result, report).to_string();
  EXPECT_NE(rendered.find("17"), std::string::npos);  // 16 + 1.0
}

}  // namespace
}  // namespace ihbd::runtime
