#include <gtest/gtest.h>

#include "src/collective/binary_exchange_exec.h"
#include "src/collective/costs.h"

namespace ihbd::collective {
namespace {

topo::BinaryHopTopology wiring() { return {256, 4, 4}; }

TEST(BinExchExec, DeliversAndMatchesRounds) {
  const auto w = wiring();
  const auto result = execute_binary_exchange(w, 0, 16, 1e6);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.delivered_all);
  EXPECT_EQ(result.rounds, 4);
  EXPECT_GT(result.total_time_s, 0.0);
}

TEST(BinExchExec, InfeasibleOnUnsupportedGroup) {
  const auto w = wiring();
  EXPECT_FALSE(execute_binary_exchange(w, 8, 16, 1e6).feasible);  // misaligned
  EXPECT_FALSE(execute_binary_exchange(w, 0, 32, 1e6).feasible);  // too wide
}

TEST(BinExchExec, FullOverlapHidesReconfiguration) {
  const auto w = wiring();
  BinaryExchangeExecConfig cfg;
  cfg.reconfig_s = 70e-6;
  cfg.compute_window_s = 1.0;  // plenty of compute to hide behind
  const auto hidden = execute_binary_exchange(w, 0, 16, 1e6, cfg);
  EXPECT_DOUBLE_EQ(hidden.reconfig_exposed_s, 0.0);

  cfg.compute_window_s = 0.0;
  const auto exposed = execute_binary_exchange(w, 0, 16, 1e6, cfg);
  // log2(16) - 1 = 3 inter-round switches fully exposed.
  EXPECT_NEAR(exposed.reconfig_exposed_s, 3 * 70e-6, 1e-12);
  EXPECT_GT(exposed.total_time_s, hidden.total_time_s);
}

TEST(BinExchExec, MatchesAnalyticModelAtScale) {
  const auto w = wiring();
  BinaryExchangeExecConfig cfg;
  cfg.reconfig_s = 0.0;
  const double msg = 4e6;
  const auto exec = execute_binary_exchange(w, 0, 16, msg, cfg);
  LinkParams link;
  link.bandwidth_Bps = cfg.link_bandwidth_Bps;
  link.alpha_s = cfg.alpha_s;
  const double analytic = binary_exchange_alltoall_time(16, msg, link);
  EXPECT_NEAR(exec.total_time_s, analytic, 0.05 * analytic);
}

TEST(BinExchExec, TimeGrowsWithMessageSize) {
  const auto w = wiring();
  const auto small = execute_binary_exchange(w, 0, 8, 1e5);
  const auto large = execute_binary_exchange(w, 0, 8, 1e7);
  EXPECT_GT(large.total_time_s, small.total_time_s);
}

TEST(BinExchExec, TrivialGroup) {
  const auto w = wiring();
  const auto one = execute_binary_exchange(w, 0, 1, 1e6);
  EXPECT_TRUE(one.feasible);
  EXPECT_TRUE(one.delivered_all);
  EXPECT_EQ(one.rounds, 0);
}

class BinExchExecSizes : public ::testing::TestWithParam<int> {};

TEST_P(BinExchExecSizes, DeliveryHoldsAcrossGroupSizes) {
  const auto w = wiring();
  const int p = GetParam();
  const auto result = execute_binary_exchange(w, 0, p, 2.0);
  ASSERT_TRUE(result.feasible) << p;
  EXPECT_TRUE(result.delivered_all) << p;
}

INSTANTIATE_TEST_SUITE_P(Pow2, BinExchExecSizes,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace ihbd::collective
