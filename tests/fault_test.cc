#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/fault/generator.h"
#include "src/fault/trace.h"

namespace ihbd::fault {
namespace {

TEST(FaultTrace, ValidatesEvents) {
  EXPECT_THROW(FaultTrace(0, 10.0, {}), ConfigError);
  EXPECT_THROW(FaultTrace(4, 10.0, {{5, 0.0, 1.0}}), ConfigError);
  EXPECT_THROW(FaultTrace(4, 10.0, {{1, 2.0, 1.0}}), ConfigError);
}

TEST(FaultTrace, FaultyAtRespectsIntervals) {
  FaultTrace trace(4, 10.0, {{1, 2.0, 4.0}, {3, 3.0, 5.0}});
  EXPECT_FALSE(trace.faulty_at(1.0)[1]);
  EXPECT_TRUE(trace.faulty_at(2.5)[1]);
  EXPECT_TRUE(trace.faulty_at(3.5)[1]);
  EXPECT_TRUE(trace.faulty_at(3.5)[3]);
  EXPECT_FALSE(trace.faulty_at(4.5)[1]);
  EXPECT_TRUE(trace.faulty_at(4.5)[3]);
  EXPECT_EQ(trace.faulty_count_at(3.5), 2);
}

TEST(FaultTrace, RatioSeriesLengthAndRange) {
  FaultTrace trace(10, 30.0, {{0, 0.0, 30.0}});
  const auto ts = trace.ratio_series(1.0);
  EXPECT_EQ(ts.size(), 30u);
  for (double v : ts.v) EXPECT_DOUBLE_EQ(v, 0.1);
}

TEST(FaultTrace, MeanRepairDays) {
  FaultTrace trace(4, 10.0, {{0, 0.0, 1.0}, {1, 2.0, 5.0}});
  EXPECT_DOUBLE_EQ(trace.mean_repair_days(), 2.0);
}

TEST(FaultTrace, SplitToHalfNodesPreservesTiming) {
  FaultTrace trace(4, 10.0, {{2, 1.0, 3.0}});
  Rng rng(1);
  const auto half = trace.split_to_half_nodes(rng, /*inherit_prob=*/1.0);
  EXPECT_EQ(half.node_count(), 8);
  EXPECT_EQ(half.events().size(), 2u);
  EXPECT_TRUE(half.faulty_at(2.0)[4]);
  EXPECT_TRUE(half.faulty_at(2.0)[5]);
}

TEST(FaultTrace, SplitInheritProbabilityMatchesPaper) {
  // Appendix A: each 4-GPU half inherits with P = 50.21%, so the 4-GPU
  // node fault ratio is ~half the 8-GPU ratio.
  std::vector<FaultEvent> events;
  for (int n = 0; n < 300; ++n) events.push_back({n, 0.0, 10.0});
  FaultTrace trace(300, 10.0, events);
  Rng rng(7);
  const auto half = trace.split_to_half_nodes(rng);
  const double ratio8 = 1.0;
  const double ratio4 =
      static_cast<double>(half.faulty_count_at(5.0)) / half.node_count();
  EXPECT_NEAR(ratio4, 0.5021 * ratio8, 0.06);
}

TEST(FaultTrace, RemapNodesDropsOutOfRange) {
  FaultTrace trace(10, 5.0, {{1, 0.0, 1.0}, {9, 0.0, 1.0}});
  const auto small = trace.remap_nodes(5);
  EXPECT_EQ(small.node_count(), 5);
  EXPECT_EQ(small.events().size(), 1u);
  EXPECT_THROW(trace.remap_nodes(0), ConfigError);
  EXPECT_THROW(trace.remap_nodes(11), ConfigError);
}

TEST(SampleFaultMask, ExactCount) {
  Rng rng(1);
  const auto mask = sample_fault_mask(1000, 0.05, rng);
  EXPECT_EQ(std::count(mask.begin(), mask.end(), true), 50);
}

TEST(SampleFaultMask, ZeroAndFullRatios) {
  Rng rng(1);
  auto none = sample_fault_mask(100, 0.0, rng);
  auto all = sample_fault_mask(100, 1.0, rng);
  EXPECT_EQ(std::count(none.begin(), none.end(), true), 0);
  EXPECT_EQ(std::count(all.begin(), all.end(), true), 100);
}

TEST(SampleFaultMask, IidApproximatesRatio) {
  Rng rng(2);
  int total = 0;
  for (int t = 0; t < 50; ++t) {
    const auto mask = sample_fault_mask_iid(1000, 0.03, rng);
    total += static_cast<int>(std::count(mask.begin(), mask.end(), true));
  }
  EXPECT_NEAR(total / 50.0 / 1000.0, 0.03, 0.005);
}

TEST(Generator, CalibratedToPaperStatistics) {
  // Appendix A / Fig. 18: mean 2.33%, p50 1.67%, p99 7.22% for 8-GPU nodes.
  const FaultTrace trace = generate_trace();
  const Summary s = trace.ratio_summary(0.25);
  EXPECT_NEAR(s.mean, PaperTraceStats::kMeanRatio, 0.006);
  EXPECT_NEAR(s.p50, PaperTraceStats::kP50Ratio, 0.006);
  EXPECT_NEAR(s.p99, PaperTraceStats::kP99Ratio, 0.022);
}

TEST(Generator, DeterministicForSeed) {
  TraceGenConfig cfg;
  const auto a = generate_trace(cfg);
  const auto b = generate_trace(cfg);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_DOUBLE_EQ(a.events()[i].start_day, b.events()[i].start_day);
  }
}

TEST(Generator, EventsWithinWindow) {
  const auto trace = generate_trace();
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.start_day, 0.0);
    EXPECT_LE(e.end_day, trace.duration_days());
    EXPECT_GE(e.duration(), 0.0);
  }
}

TEST(Generator, SplitTraceHalvesTheRatio) {
  const auto trace8 = generate_trace();
  Rng rng(3);
  const auto trace4 = trace8.split_to_half_nodes(rng);
  const double mean8 = trace8.ratio_summary(1.0).mean;
  const double mean4 = trace4.ratio_summary(1.0).mean;
  EXPECT_NEAR(mean4, mean8 * 0.5021, 0.004);
}

TEST(Generator, RejectsBadConfig) {
  TraceGenConfig cfg;
  cfg.node_count = 0;
  EXPECT_THROW(generate_trace(cfg), ConfigError);
}

TEST(Generator, ValidationNamesTheOffendingField) {
  const auto expect_names = [](TraceGenConfig cfg, const char* field) {
    try {
      generate_trace(cfg);
      FAIL() << "expected ConfigError naming " << field;
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  TraceGenConfig cfg;
  cfg.node_count = -3;
  expect_names(cfg, "TraceGenConfig.node_count");
  cfg = {};
  cfg.duration_days = 0.0;
  expect_names(cfg, "TraceGenConfig.duration_days");
  cfg = {};
  cfg.node_fault_rate_per_day = -0.1;
  expect_names(cfg, "TraceGenConfig.node_fault_rate_per_day");
  cfg = {};
  cfg.repair_lognorm_sigma = -1.0;
  expect_names(cfg, "TraceGenConfig.repair_lognorm_sigma");
  cfg = {};
  cfg.incident_rate_per_day = 0.0;
  expect_names(cfg, "TraceGenConfig.incident_rate_per_day");
  cfg = {};
  cfg.incident_frac_mean = 0.0;
  expect_names(cfg, "TraceGenConfig.incident_frac_mean");
  cfg = {};
  cfg.incident_frac_sigma = -0.5;
  expect_names(cfg, "TraceGenConfig.incident_frac_sigma");
  cfg = {};
  cfg.incident_duration_sigma = -0.5;
  expect_names(cfg, "TraceGenConfig.incident_duration_sigma");
}

}  // namespace
}  // namespace ihbd::fault
