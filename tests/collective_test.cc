#include <gtest/gtest.h>

#include <cmath>

#include "src/collective/alltoall.h"
#include "src/collective/costs.h"
#include "src/collective/ring_sim.h"

namespace ihbd::collective {
namespace {

TEST(Costs, RingAllReduceFormula) {
  LinkParams link;
  link.bandwidth_Bps = 100e9;
  link.alpha_s = 0.0;
  // 2(n-1)/n * bytes / bw.
  EXPECT_NEAR(ring_allreduce_time(4, 400e6, link),
              2.0 * 3 * (100e6 / 100e9), 1e-12);
  EXPECT_DOUBLE_EQ(ring_allreduce_time(1, 1e9, link), 0.0);
}

TEST(Costs, BusUtilizationIdentity) {
  // With zero latency, utilization == protocol efficiency by construction.
  LinkParams link;
  link.alpha_s = 0.0;
  link.protocol_efficiency = 0.8;
  const double t = ring_allreduce_time(8, 1e9, link);
  EXPECT_NEAR(allreduce_bus_utilization(8, 1e9, t, link.bandwidth_Bps), 0.8,
              1e-9);
}

TEST(Costs, AllToAllAsymptotics) {
  LinkParams link;
  link.alpha_s = 1e-6;
  const double m = 1e6;
  // Ring grows ~p^2, binary exchange ~p log p: at p=64 ring must be far
  // slower; at p=2 they coincide (one exchange).
  EXPECT_GT(ring_alltoall_time(64, m, link),
            3.0 * binary_exchange_alltoall_time(64, m, link));
  EXPECT_NEAR(ring_alltoall_time(2, m, link),
              binary_exchange_alltoall_time(2, m, link), 1e-9);
}

TEST(Costs, BinaryExchangeMatchesAppendixGFormula) {
  // T = ts log2 p + tw m p/2 log2 p.
  LinkParams link;
  link.bandwidth_Bps = 1e9;
  link.alpha_s = 5e-6;
  const int p = 16;
  const double m = 1e6;
  const double expect =
      4 * (5e-6) + 4 * (p * m / 2.0) / 1e9;
  EXPECT_NEAR(binary_exchange_alltoall_time(p, m, link), expect, 1e-12);
}

TEST(Costs, ReconfigOverheadAdds) {
  LinkParams link;
  const double base = binary_exchange_alltoall_time(16, 1e6, link, 0.0);
  const double with_switch =
      binary_exchange_alltoall_time(16, 1e6, link, 70e-6);
  EXPECT_NEAR(with_switch - base, 4 * 70e-6, 1e-12);
}

TEST(Costs, BruckAndPairwiseSanity) {
  LinkParams link;
  EXPECT_GT(bruck_alltoall_time(16, 1e6, link), 0.0);
  EXPECT_GT(pairwise_alltoall_time(16, 1e6, link),
            bruck_alltoall_time(16, 1e6, link) * 0.1);
  EXPECT_DOUBLE_EQ(bruck_alltoall_time(1, 1e6, link), 0.0);
}

// ------------------------------------------------- functional AllToAll ---

class BinaryExchangeSizes : public ::testing::TestWithParam<int> {};

TEST_P(BinaryExchangeSizes, DeliversAllBlocks) {
  const int p = GetParam();
  const auto result = simulate_binary_exchange(p, 1.0);
  EXPECT_TRUE(result.delivered_all) << "p = " << p;
  int log2p = 0;
  while ((1 << log2p) < p) ++log2p;
  EXPECT_EQ(result.rounds, log2p);
}

TEST_P(BinaryExchangeSizes, MovesPHalfPerRound) {
  // Appendix G.2: transmitted data size per round is p*m/2.
  const int p = GetParam();
  if (p < 2) return;
  const auto result = simulate_binary_exchange(p, 2.0);
  for (double bytes : result.round_bytes)
    EXPECT_DOUBLE_EQ(bytes, p * 2.0 / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Pow2, BinaryExchangeSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

class RingAllToAllSizes : public ::testing::TestWithParam<int> {};

TEST_P(RingAllToAllSizes, DeliversAllBlocks) {
  const int p = GetParam();
  const auto result = simulate_ring_alltoall(p, 1.0);
  EXPECT_TRUE(result.delivered_all) << "p = " << p;
  EXPECT_EQ(result.rounds, std::max(0, p - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingAllToAllSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

TEST(AllToAllSims, RingMovesQuadraticallyMoreData) {
  const auto ring = simulate_ring_alltoall(32, 1.0);
  const auto bex = simulate_binary_exchange(32, 1.0);
  // Ring: sum_{j=1..p-1}(p-j) = p(p-1)/2 = 496; binary: p/2*log2 p = 80.
  EXPECT_DOUBLE_EQ(ring.bytes_sent_per_node, 496.0);
  EXPECT_DOUBLE_EQ(bex.bytes_sent_per_node, 80.0);
}

// -------------------------------------------------- §5.2 reproduction ---

TEST(RingSim, UtilizationMatchesPaperSmallCluster) {
  // Paper §5.2: 16-GPU ring 77.11%, 32-GPU ring 77.26% of ring bandwidth.
  const double bytes = 1.0 * (1ull << 30);
  const auto r16 = simulate_ring_allreduce(16, bytes);
  const auto r32 = simulate_ring_allreduce(32, bytes);
  EXPECT_NEAR(r16.bus_utilization, 0.7711, 0.02);
  EXPECT_NEAR(r32.bus_utilization, 0.7726, 0.02);
  // "minimal degradation with scaling"
  EXPECT_NEAR(r16.bus_utilization, r32.bus_utilization, 0.01);
}

TEST(RingSim, SwitchUtilizationMatchesPaper) {
  // Paper §5.2: NVIDIA H100 8-GPU machine reaches 81.77% without SHARP.
  const double bytes = 1.0 * (1ull << 30);
  const auto sw = simulate_switch_allreduce(8, bytes);
  EXPECT_NEAR(sw.bus_utilization, 0.8177, 0.02);
}

TEST(RingSim, DirectLinksCutSmallPacketLatency) {
  // Paper §5.2: direct GPU-GPU links reduce small-packet latency ~13%.
  const double small_packet = 256.0;
  const double direct = direct_link_latency(small_packet);
  const double via_switch = switch_link_latency(small_packet);
  const double reduction = 1.0 - direct / via_switch;
  EXPECT_NEAR(reduction, 0.13, 0.03);
}

TEST(RingSim, LargeBuffersApproachProtocolEfficiency) {
  RingSimParams params;
  const auto r = simulate_ring_allreduce(8, 4.0 * (1ull << 30), params);
  EXPECT_NEAR(r.bus_utilization, params.protocol_efficiency, 0.02);
}

TEST(RingSim, TinyBuffersAreLatencyBound) {
  const auto r = simulate_ring_allreduce(16, 64.0 * 1024);
  EXPECT_LT(r.bus_utilization, 0.4);
}

TEST(RingSim, TimeScalesWithBytes) {
  const auto a = simulate_ring_allreduce(8, 1.0 * (1ull << 30));
  const auto b = simulate_ring_allreduce(8, 2.0 * (1ull << 30));
  EXPECT_NEAR(b.time_s / a.time_s, 2.0, 0.1);
}

}  // namespace
}  // namespace ihbd::collective
