// Windowed parallel trace replay (src/topo/waste.h): bit-equivalence
// against the serial reference for any thread count and window size,
// window-order merge associativity, sample-day/slice/window primitives
// (src/fault/trace.h), and the keep_samples memory-bounding mode.
#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "src/fault/generator.h"
#include "src/fault/trace.h"
#include "src/runtime/sweep.h"
#include "src/runtime/thread_pool.h"
#include "src/topo/khop_ring.h"
#include "src/topo/waste.h"

namespace ihbd::topo {
namespace {

fault::FaultTrace small_trace(int nodes = 96, double days = 45.0) {
  fault::TraceGenConfig cfg;
  cfg.node_count = nodes;
  cfg.duration_days = days;
  return fault::generate_trace(cfg);
}

void expect_same_result(const TraceWasteResult& a, const TraceWasteResult& b) {
  // Bitwise: vector<double> operator== compares element bits for non-NaN.
  EXPECT_EQ(a.waste_ratio.t, b.waste_ratio.t);
  EXPECT_EQ(a.waste_ratio.v, b.waste_ratio.v);
  EXPECT_EQ(a.usable_gpus.t, b.usable_gpus.t);
  EXPECT_EQ(a.usable_gpus.v, b.usable_gpus.v);
  EXPECT_EQ(a.waste_summary.count, b.waste_summary.count);
  EXPECT_EQ(a.waste_summary.mean, b.waste_summary.mean);
  EXPECT_EQ(a.waste_summary.p50, b.waste_summary.p50);
  EXPECT_EQ(a.waste_summary.p90, b.waste_summary.p90);
  EXPECT_EQ(a.waste_summary.p99, b.waste_summary.p99);
  EXPECT_EQ(a.waste_summary.min, b.waste_summary.min);
  EXPECT_EQ(a.waste_summary.max, b.waste_summary.max);
}

// --- fault-layer primitives ----------------------------------------------

TEST(SampleDays, MatchesSerialLoopEnumeration) {
  const auto trace = small_trace();
  for (double step : {1.0, 0.7, 2.5}) {
    const auto days = trace.sample_days(step);
    std::vector<double> expect;
    for (double day = 0.0; day < trace.duration_days(); day += step)
      expect.push_back(day);
    EXPECT_EQ(days, expect) << "step " << step;
  }
}

TEST(SplitWindows, CoversEveryIndexOnceInOrder) {
  for (std::size_t n : {0ul, 1ul, 10ul, 97ul}) {
    for (std::size_t w : {0ul, 1ul, 3ul, 7ul, 97ul, 1000ul}) {
      const auto windows = fault::split_windows(n, w);
      std::size_t next = 0;
      for (const auto& window : windows) {
        EXPECT_EQ(window.begin, next);
        EXPECT_GT(window.count, 0u);
        if (w > 0) EXPECT_LE(window.count, w);
        next = window.begin + window.count;
      }
      EXPECT_EQ(next, n) << "n=" << n << " w=" << w;
      if (n > 0 && w == 0) EXPECT_EQ(windows.size(), 1u);
    }
  }
}

TEST(TraceSlice, MasksMatchFullTraceInsideTheWindow) {
  const auto trace = small_trace();
  const double lo = 10.0, hi = 20.0;
  const auto sliced = trace.slice(lo, hi);
  EXPECT_EQ(sliced.node_count(), trace.node_count());
  EXPECT_LE(sliced.events().size(), trace.events().size());
  for (double day : {10.0, 13.7, 20.0})
    EXPECT_EQ(sliced.faulty_at(day), trace.faulty_at(day)) << "day " << day;
}

TEST(TraceSlice, DurationClampsToTheSliceEnd) {
  const auto trace = small_trace();  // 45 days
  const auto sliced = trace.slice(10.0, 20.0);
  // Clamped to just past end_day: sample_days/ratio_series stop at the
  // slice boundary (end_day itself still included) instead of running over
  // the full 45-day range.
  EXPECT_GE(sliced.duration_days(), 20.0);
  EXPECT_LT(sliced.duration_days(), 20.0 + 1e-9);
  const auto days = sliced.sample_days(1.0);
  ASSERT_EQ(days.size(), 21u);  // 0..20 inclusive
  EXPECT_EQ(days.back(), 20.0);
  EXPECT_EQ(sliced.ratio_series(1.0).size(), 21u);
  // A slice past the trace end keeps the full duration.
  EXPECT_EQ(trace.slice(0.0, 100.0).duration_days(), trace.duration_days());
  // Degenerate slice at day 0 stays constructible and samples one day.
  EXPECT_EQ(trace.slice(0.0, 0.0).sample_days(1.0).size(), 1u);
}

// --- windowed replay vs serial reference ---------------------------------

TEST(WindowedReplay, BitIdenticalToSerialAcrossThreadsAndWindows) {
  const auto trace = small_trace();
  const KHopRing ring(96, 4, 2);
  const auto serial = evaluate_waste_over_trace(ring, trace, 8, 1.0);
  ASSERT_EQ(serial.waste_ratio.size(), 45u);

  for (int threads : {1, 2, 8}) {
    for (std::size_t window : {1ul, 3ul, 7ul, 64ul, 1000ul, 0ul}) {
      for (bool incremental : {false, true}) {
        for (bool packed : {false, true}) {
          TraceReplayOptions opts;
          opts.threads = threads;
          opts.window_samples = window;
          opts.incremental = incremental;
          opts.packed = packed;
          const auto windowed = evaluate_waste_over_trace(ring, trace, 8, opts);
          SCOPED_TRACE("threads=" + std::to_string(threads) +
                       " window=" + std::to_string(window) +
                       " incremental=" + std::to_string(incremental) +
                       " packed=" + std::to_string(packed));
          expect_same_result(serial, windowed);
        }
      }
    }
  }
}

TEST(WindowedReplay, NestedSweepInReplayBitIdenticalToSerialOracle) {
  // The production shape of Figs. 13/15/16/20: a sweep over (TP) cells
  // whose trials each fan their replay windows out on the SAME pool
  // (TraceReplayOptions::pool). The work-stealing scheduler interleaves
  // both levels arbitrarily; results must stay bit-identical to the serial
  // oracle for any worker count.
  const auto trace = small_trace();
  const KHopRing ring(96, 4, 2);
  const std::vector<double> tps{4, 8, 16};

  std::vector<TraceWasteResult> oracle;
  for (const double tp : tps)
    oracle.push_back(
        evaluate_waste_over_trace(ring, trace, static_cast<int>(tp), 1.0));

  for (int workers : {1, 2, 8}) {
    runtime::ThreadPool pool(workers);
    runtime::SweepSpec spec;
    spec.trials = 1;
    spec.axes = {runtime::Axis::of_values("TP", tps)};
    const auto grid = runtime::run_sweep_reduce(
        spec, TraceWasteResult{},
        [&](const runtime::Scenario& s, Rng&) {
          TraceReplayOptions opts;
          opts.pool = &pool;  // nested: windows steal idle sweep workers
          opts.window_samples = 7;
          return evaluate_waste_over_trace(ring, trace,
                                           static_cast<int>(s.value(0)), opts);
        },
        [](TraceWasteResult& acc, TraceWasteResult&& replay) {
          acc = std::move(replay);
        },
        /*threads=*/0, &pool);
    for (std::size_t t = 0; t < tps.size(); ++t) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " tp=" + std::to_string(static_cast<int>(tps[t])));
      expect_same_result(oracle[t], grid.cells[t]);
    }
  }
}

TEST(WindowedReplay, BitIdenticalOnFractionalStep) {
  // day += 0.7 accumulates floating-point error; the windowed replay must
  // enumerate the exact same day sequence.
  const auto trace = small_trace();
  const KHopRing ring(96, 4, 3);
  const auto serial = evaluate_waste_over_trace(ring, trace, 16, 0.7);
  TraceReplayOptions opts;
  opts.step_days = 0.7;
  opts.threads = 4;
  opts.window_samples = 5;
  expect_same_result(serial, evaluate_waste_over_trace(ring, trace, 16, opts));
}

TEST(WindowedReplay, KeepSamplesOffKeepsSeriesAndMoments) {
  const auto trace = small_trace();
  const KHopRing ring(96, 4, 2);
  const auto exact = evaluate_waste_over_trace(ring, trace, 8, 1.0);
  TraceReplayOptions opts;
  opts.threads = 2;
  opts.window_samples = 7;
  opts.keep_samples = false;
  const auto bounded = evaluate_waste_over_trace(ring, trace, 8, opts);
  // The series (what fig20 prints) are untouched...
  EXPECT_EQ(bounded.waste_ratio.v, exact.waste_ratio.v);
  EXPECT_EQ(bounded.usable_gpus.v, exact.usable_gpus.v);
  EXPECT_EQ(bounded.waste_summary.count, exact.waste_summary.count);
  EXPECT_NEAR(bounded.waste_summary.mean, exact.waste_summary.mean, 1e-12);
  EXPECT_EQ(bounded.waste_summary.max, exact.waste_summary.max);
  // ...but percentiles degrade to the documented moments-only approximation.
  EXPECT_EQ(bounded.waste_summary.p99, bounded.waste_summary.mean);
}

// --- fragment merge --------------------------------------------------------

TEST(TraceWindowFragment, MergeIsAssociativeAndMatchesSerial) {
  const auto trace = small_trace();
  const KHopRing ring(96, 4, 2);
  const auto days = trace.sample_days(1.0);
  const auto windows = fault::split_windows(days.size(), 17);
  ASSERT_EQ(windows.size(), 3u);  // 45 samples -> 17 + 17 + 11

  auto replay = [&](std::size_t w) {
    return replay_trace_window(ring, trace, 8, days, windows[w], true);
  };

  // (a . b) . c
  TraceWindowFragment left = replay(0);
  left.merge_next(replay(1));
  left.merge_next(replay(2));
  // a . (b . c)
  TraceWindowFragment bc = replay(1);
  bc.merge_next(replay(2));
  TraceWindowFragment right = replay(0);
  right.merge_next(std::move(bc));

  EXPECT_EQ(left.waste_ratio.v, right.waste_ratio.v);
  EXPECT_EQ(left.usable_gpus.v, right.usable_gpus.v);
  EXPECT_EQ(left.waste_acc.samples(), right.waste_acc.samples());
  EXPECT_EQ(left.waste_acc.count(), right.waste_acc.count());
  EXPECT_EQ(left.waste_acc.min(), right.waste_acc.min());
  EXPECT_EQ(left.waste_acc.max(), right.waste_acc.max());

  const auto serial = evaluate_waste_over_trace(ring, trace, 8, 1.0);
  EXPECT_EQ(left.waste_ratio.v, serial.waste_ratio.v);
  EXPECT_EQ(left.waste_acc.summary().p99, serial.waste_summary.p99);
}

}  // namespace
}  // namespace ihbd::topo
