// Cross-module integration tests: trace -> topology -> waste; orchestration
// over realistic fault masks; cost model fed by simulated waste - the same
// pipelines the bench harness runs, at reduced scale.
#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/cost/bom.h"
#include "src/dcn/traffic.h"
#include "src/fault/generator.h"
#include "src/llmsim/perf.h"
#include "src/orch/orchestrator.h"
#include "src/topo/baselines.h"
#include "src/topo/waste.h"

namespace ihbd {
namespace {

TEST(Integration, TraceToWastePipeline) {
  // Generate an 8-GPU-node trace, normalize to 4-GPU nodes (Appendix A),
  // replay against the paper's architecture set and verify the headline
  // ordering of Fig. 13: InfiniteHBD(K=3) ~ Big-Switch ~ 0, NVL stuck at
  // its fragmentation floor.
  fault::TraceGenConfig cfg;
  cfg.node_count = 360;
  cfg.duration_days = 60.0;
  const auto trace8 = fault::generate_trace(cfg);
  Rng rng(1);
  const auto trace4 = trace8.split_to_half_nodes(rng);
  ASSERT_EQ(trace4.node_count(), 720);

  const topo::KHopRing k3(720, 4, 3);
  const topo::NvlSwitch nvl72(720, 4, 72);
  const auto r_k3 = topo::evaluate_waste_over_trace(k3, trace4, 32, 2.0);
  const auto r_nvl = topo::evaluate_waste_over_trace(nvl72, trace4, 32, 2.0);
  EXPECT_LT(r_k3.waste_summary.mean, 0.01);   // paper: 0.53%
  EXPECT_GT(r_nvl.waste_summary.mean, 0.09);  // paper: 10.04%
}

TEST(Integration, MaxJobScaleOrdering) {
  // Fig. 15: InfiniteHBD K=2/K=3 support the largest jobs on 2880 GPUs.
  fault::TraceGenConfig cfg;
  cfg.node_count = 360;
  cfg.duration_days = 40.0;
  Rng rng(2);
  const auto trace = fault::generate_trace(cfg).split_to_half_nodes(rng);
  const topo::KHopRing k3(720, 4, 3);
  const topo::SipRing sip(720, 4);
  const auto r_k3 = topo::evaluate_waste_over_trace(k3, trace, 64, 2.0);
  const auto r_sip = topo::evaluate_waste_over_trace(sip, trace, 64, 2.0);
  EXPECT_GT(topo::max_job_scale(r_k3.usable_gpus, 0.99, 64),
            topo::max_job_scale(r_sip.usable_gpus, 0.99, 64));
}

TEST(Integration, OrchestratorOverGeneratedFaults) {
  dcn::FatTreeConfig ft_cfg;
  ft_cfg.node_count = 1024;
  ft_cfg.nodes_per_tor = 4;
  ft_cfg.tors_per_domain = 32;
  const dcn::FatTree ft(ft_cfg);
  orch::FatTreeOrchestrator orchestrator(ft, 2, 4);
  Rng rng(3);
  const auto mask = fault::sample_fault_mask(1024, 0.03, rng);
  orch::JobSpec job{32, static_cast<int>(1024 * 4 * 0.85)};
  const auto placement = orchestrator.orchestrate(mask, job);
  EXPECT_GE(placement.gpu_count(4), job.gpu_count);
  const auto stats = dcn::evaluate_cross_tor(
      ft, placement, 4, {}, job.gpu_count / job.tp_size_gpus);
  // Near-zero cross-ToR at 3% faults (Fig. 17c regime).
  EXPECT_LT(stats.cross_tor_rate(), 0.04);
}

TEST(Integration, AggregateCostUsesSimulatedWaste) {
  // Fig. 17d's pipeline: waste(f) from the topology model feeds the
  // aggregate cost; InfiniteHBD(K=2) cheapest at production fault levels.
  const auto boms = cost::paper_boms();
  const auto& k2_bom = cost::bom_by_name(boms, "InfiniteHBD(K=2)");
  const auto& nvl_bom = cost::bom_by_name(boms, "NVL-72");
  const topo::KHopRing k2(720, 4, 2);
  const topo::NvlSwitch nvl(720, 4, 72);
  Rng rng(4);
  const auto mask = fault::sample_fault_mask(720, 0.05, rng);
  const auto a_k2 = k2.allocate(mask, 32);
  const auto a_nvl = nvl.allocate(mask, 32);
  const double cost_k2 = cost::aggregate_cost_usd(
      k2_bom, 2880, a_k2.wasted_healthy_gpus, a_k2.faulty_gpus);
  const double cost_nvl = cost::aggregate_cost_usd(
      nvl_bom, 2880, a_nvl.wasted_healthy_gpus, a_nvl.faulty_gpus);
  EXPECT_LT(cost_k2, cost_nvl);
}

TEST(Integration, ClusterSurvivesFaultStorm) {
  // Fail a third of the nodes one by one with live bypass, then rebuild;
  // the plan must stay consistent with the analytic topology model.
  core::InfiniteHbdCluster::Config cfg;
  cfg.node_count = 48;
  cfg.gpus_per_node = 4;
  cfg.k = 3;
  cfg.trx_per_bundle = 1;
  core::InfiniteHbdCluster cluster(cfg);
  cluster.build_rings(32);
  Rng rng(5);
  for (int i = 0; i < 16; ++i) {
    const int node = static_cast<int>(rng.uniform_index(48));
    if (!cluster.node_faulty(node)) cluster.fail_and_bypass(node);
  }
  const auto plan = cluster.build_rings(32);
  const auto expect = cluster.topology().allocate(cluster.fault_mask(), 32);
  EXPECT_EQ(plan.allocation.usable_gpus, expect.usable_gpus);
  for (const auto& link : plan.links) EXPECT_LE(link.hop, 3);
}

TEST(Integration, MfuGainJustifiesLargeTp) {
  // §1 headline: dynamic ring formation enables much higher MFU than an
  // 8-GPU/node DGX at datacenter scale (paper: 3.37x at 128k GPUs).
  llmsim::TrainJob job;
  job.model = llmsim::ModelConfig::llama31_405b_mha();
  const auto dgx = llmsim::search_best_strategy(job, 65536, /*tp_limit=*/8);
  const auto ihbd = llmsim::search_best_strategy(job, 65536);
  ASSERT_TRUE(dgx.perf.feasible);
  ASSERT_TRUE(ihbd.perf.feasible);
  EXPECT_GT(ihbd.perf.mfu / dgx.perf.mfu, 1.5);
  EXPECT_GT(ihbd.best.tp, 8);
}

}  // namespace
}  // namespace ihbd
