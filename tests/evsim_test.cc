#include <gtest/gtest.h>

#include <vector>

#include "src/evsim/engine.h"

namespace ihbd::evsim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&](Engine&) { order.push_back(3); });
  e.schedule_at(1.0, [&](Engine&) { order.push_back(1); });
  e.schedule_at(2.0, [&](Engine&) { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.executed(), 3u);
}

TEST(Engine, EqualTimesRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    e.schedule_at(1.0, [&order, i](Engine&) { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NowAdvancesWithEvents) {
  Engine e;
  double seen = -1.0;
  e.schedule_at(2.5, [&](Engine& eng) { seen = eng.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(e.now(), 2.5);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double t2 = 0.0;
  e.schedule_at(1.0, [&](Engine& eng) {
    eng.schedule_in(0.5, [&](Engine& inner) { t2 = inner.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(t2, 1.5);
}

TEST(Engine, CascadedEvents) {
  Engine e;
  int count = 0;
  std::function<void(Engine&)> tick = [&](Engine& eng) {
    if (++count < 10) eng.schedule_in(1.0, tick);
  };
  e.schedule_at(0.0, tick);
  e.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(Engine, RunUntilStopsEarly) {
  Engine e;
  int ran = 0;
  e.schedule_at(1.0, [&](Engine&) { ++ran; });
  e.schedule_at(5.0, [&](Engine&) { ++ran; });
  e.run_until(2.0);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run();
  EXPECT_EQ(ran, 2);
}

TEST(Engine, RunOnEmptyQueueIsNoop) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.run(), 0.0);
  EXPECT_EQ(e.executed(), 0u);
}

// --- run_until semantics (documented contract) ------------------------------

TEST(RunUntil, EventExactlyAtHorizonRuns) {
  Engine e;
  int ran = 0;
  e.schedule_at(2.0, [&](Engine&) { ++ran; });
  e.run_until(2.0);  // inclusive bound
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.executed(), 1u);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(RunUntil, ClockAdvancesToHorizonWithEventsStillPending) {
  Engine e;
  e.schedule_at(10.0, [](Engine&) {});
  e.run_until(4.0);
  // The pending event did not run, but now() is exactly the horizon so a
  // follow-up schedule_in is relative to it.
  EXPECT_EQ(e.executed(), 0u);
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_DOUBLE_EQ(e.now(), 4.0);
  double seen = -1.0;
  e.schedule_in(1.0, [&](Engine& eng) { seen = eng.now(); });
  e.run_until(5.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_EQ(e.pending(), 1u);  // the 10.0 event still waits
}

TEST(RunUntil, DrainedQueueStillLandsOnHorizon) {
  Engine e;
  e.schedule_at(1.0, [](Engine&) {});
  e.run_until(7.0);
  EXPECT_DOUBLE_EQ(e.now(), 7.0);  // not 1.0, and never beyond 7.0
}

TEST(RunUntil, HorizonBelowNowIsNoop) {
  Engine e;
  e.schedule_at(5.0, [](Engine&) {});
  e.run_until(5.0);
  e.schedule_at(8.0, [](Engine&) {});
  e.run_until(3.0);  // backwards horizon: nothing runs, clock untouched
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_EQ(e.executed(), 1u);
  EXPECT_EQ(e.pending(), 1u);
}

// --- cancellable events -----------------------------------------------------

TEST(Cancel, PendingEventNeverRuns) {
  Engine e;
  int ran = 0;
  const EventId id = e.schedule_at(1.0, [&](Engine&) { ++ran; });
  e.schedule_at(2.0, [&](Engine&) { ++ran; });
  EXPECT_EQ(e.pending(), 2u);
  EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.pending(), 1u);  // drops immediately, before the pop
  EXPECT_EQ(e.cancelled(), 1u);
  e.run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.executed(), 1u);  // cancelled events never count as executed
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Cancel, ReturnsFalseForDeadOrUnknownIds) {
  Engine e;
  const EventId id = e.schedule_at(1.0, [](Engine&) {});
  EXPECT_FALSE(e.cancel(id + 100));  // never existed
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // already cancelled
  const EventId fired = e.schedule_at(2.0, [](Engine&) {});
  e.run();
  EXPECT_FALSE(e.cancel(fired));  // already fired
}

TEST(Cancel, FromInsideAnotherCallback) {
  Engine e;
  int ran = 0;
  const EventId victim = e.schedule_at(2.0, [&](Engine&) { ++ran; });
  e.schedule_at(1.0, [&](Engine& eng) { EXPECT_TRUE(eng.cancel(victim)); });
  e.run();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(e.executed(), 1u);
  EXPECT_EQ(e.pending(), 0u);
}

// --- periodic timers --------------------------------------------------------

TEST(Periodic, FiresAtFixedCadenceUntilCancelled) {
  Engine e;
  std::vector<double> at;
  const EventId id =
      e.schedule_every(1.0, 2.0, [&](Engine& eng) { at.push_back(eng.now()); });
  e.run_until(7.0);
  EXPECT_EQ(at, (std::vector<double>{1.0, 3.0, 5.0, 7.0}));
  EXPECT_EQ(e.executed(), 4u);
  EXPECT_EQ(e.pending(), 1u);  // the next occurrence counts exactly once
  EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.pending(), 0u);
  e.run();
  EXPECT_EQ(e.executed(), 4u);
}

TEST(Periodic, SelfCancelStopsTheTimer) {
  Engine e;
  int fired = 0;
  EventId id = 0;
  id = e.schedule_every(1.0, 1.0, [&](Engine& eng) {
    if (++fired == 3) EXPECT_TRUE(eng.cancel(id));
  });
  e.run();  // would never drain if the timer kept re-arming
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.executed(), 3u);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.cancelled(), 1u);
}

TEST(Periodic, InterleavesFifoWithOneShots) {
  Engine e;
  std::vector<int> order;
  e.schedule_every(1.0, 1.0, [&](Engine& eng) {
    order.push_back(100 + static_cast<int>(eng.now()));
    if (eng.now() >= 3.0) eng.cancel(1);  // first id handed out
  });
  e.schedule_at(2.0, [&](Engine&) { order.push_back(2); });
  // Same-time tie: the periodic's occurrence at 2.0 was re-armed at 1.0,
  // AFTER the one-shot was scheduled, so the one-shot runs first.
  e.run();
  EXPECT_EQ(order, (std::vector<int>{101, 2, 102, 103}));
}

}  // namespace
}  // namespace ihbd::evsim
