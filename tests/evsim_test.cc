#include <gtest/gtest.h>

#include <vector>

#include "src/evsim/engine.h"

namespace ihbd::evsim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&](Engine&) { order.push_back(3); });
  e.schedule_at(1.0, [&](Engine&) { order.push_back(1); });
  e.schedule_at(2.0, [&](Engine&) { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.executed(), 3u);
}

TEST(Engine, EqualTimesRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    e.schedule_at(1.0, [&order, i](Engine&) { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NowAdvancesWithEvents) {
  Engine e;
  double seen = -1.0;
  e.schedule_at(2.5, [&](Engine& eng) { seen = eng.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(e.now(), 2.5);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double t2 = 0.0;
  e.schedule_at(1.0, [&](Engine& eng) {
    eng.schedule_in(0.5, [&](Engine& inner) { t2 = inner.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(t2, 1.5);
}

TEST(Engine, CascadedEvents) {
  Engine e;
  int count = 0;
  std::function<void(Engine&)> tick = [&](Engine& eng) {
    if (++count < 10) eng.schedule_in(1.0, tick);
  };
  e.schedule_at(0.0, tick);
  e.run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(Engine, RunUntilStopsEarly) {
  Engine e;
  int ran = 0;
  e.schedule_at(1.0, [&](Engine&) { ++ran; });
  e.schedule_at(5.0, [&](Engine&) { ++ran; });
  e.run_until(2.0);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run();
  EXPECT_EQ(ran, 2);
}

TEST(Engine, RunOnEmptyQueueIsNoop) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.run(), 0.0);
  EXPECT_EQ(e.executed(), 0u);
}

}  // namespace
}  // namespace ihbd::evsim
