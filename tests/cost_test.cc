#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/cost/bom.h"

namespace ihbd::cost {
namespace {

TEST(Bom, Table6PerGpuCosts) {
  const auto boms = paper_boms();
  EXPECT_NEAR(bom_by_name(boms, "TPUv4").cost_per_gpu(), 1567.20, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "NVL-36").cost_per_gpu(), 9563.20, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "NVL-72").cost_per_gpu(), 9563.20, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "NVL-36x2").cost_per_gpu(), 17924.00, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "NVL-576").cost_per_gpu(), 30417.60, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "InfiniteHBD(K=2)").cost_per_gpu(), 2626.80,
              0.01);
  EXPECT_NEAR(bom_by_name(boms, "InfiniteHBD(K=3)").cost_per_gpu(), 3740.60,
              0.01);
}

TEST(Bom, Table6PerGpuWatts) {
  const auto boms = paper_boms();
  EXPECT_NEAR(bom_by_name(boms, "TPUv4").watts_per_gpu(), 19.39, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "NVL-36").watts_per_gpu(), 75.95, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "NVL-72").watts_per_gpu(), 75.95, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "NVL-576").watts_per_gpu(), 413.45, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "InfiniteHBD(K=2)").watts_per_gpu(), 48.10,
              0.01);
  EXPECT_NEAR(bom_by_name(boms, "InfiniteHBD(K=3)").watts_per_gpu(), 72.05,
              0.01);
  // NVL-36x2: the paper prints 150.33 W; the BOM arithmetic gives 152.1 -
  // accept the 2% inconsistency in the source table.
  EXPECT_NEAR(bom_by_name(boms, "NVL-36x2").watts_per_gpu(), 150.33, 3.0);
}

TEST(Bom, Table6PerGBps) {
  const auto boms = paper_boms();
  EXPECT_NEAR(bom_by_name(boms, "TPUv4").cost_per_GBps(), 5.22, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "NVL-72").cost_per_GBps(), 10.63, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "NVL-576").cost_per_GBps(), 33.80, 0.01);
  EXPECT_NEAR(bom_by_name(boms, "InfiniteHBD(K=2)").cost_per_GBps(), 3.28,
              0.01);
  EXPECT_NEAR(bom_by_name(boms, "InfiniteHBD(K=3)").cost_per_GBps(), 4.68,
              0.01);
}

TEST(Bom, HeadlineCostReductions) {
  // §1: InfiniteHBD costs 31% of NVL-72 (3.24x) and 62.8% of TPUv4 (1.59x)
  // per GBps.
  const auto boms = paper_boms();
  const double k2 = bom_by_name(boms, "InfiniteHBD(K=2)").cost_per_GBps();
  const double nvl = bom_by_name(boms, "NVL-72").cost_per_GBps();
  const double tpu = bom_by_name(boms, "TPUv4").cost_per_GBps();
  EXPECT_NEAR(k2 / nvl, 0.3086, 0.005);
  EXPECT_NEAR(k2 / tpu, 0.6284, 0.005);
}

TEST(Bom, InfiniteHbdCheapestPerGBps) {
  for (const auto& bom : paper_boms()) {
    if (bom.name == "InfiniteHBD(K=2)" || bom.name == "Alibaba HPN") continue;
    EXPECT_GT(bom.cost_per_GBps(),
              bom_by_name(paper_boms(), "InfiniteHBD(K=2)").cost_per_GBps())
        << bom.name;
  }
}

TEST(Bom, LookupThrowsOnUnknown) {
  const auto boms = paper_boms();
  EXPECT_THROW(bom_by_name(boms, "NVL-9000"), ConfigError);
}

TEST(Bom, ComponentTotals) {
  Component c{"thing", 10, 2.5, 0.0, 1.5};
  EXPECT_DOUBLE_EQ(c.total_cost(), 25.0);
  EXPECT_DOUBLE_EQ(c.total_power(), 15.0);
}

TEST(AggregateCost, FormulaAndOrdering) {
  const auto boms = paper_boms();
  const auto& k2 = bom_by_name(boms, "InfiniteHBD(K=2)");
  const auto& nvl = bom_by_name(boms, "NVL-72");
  // Zero waste: pure interconnect.
  EXPECT_DOUBLE_EQ(aggregate_cost_usd(k2, 1000, 0, 0),
                   k2.cost_per_gpu() * 1000);
  // Waste adds GPU cost.
  EXPECT_DOUBLE_EQ(aggregate_cost_usd(k2, 1000, 10, 5, 20000.0),
                   k2.cost_per_gpu() * 1000 + 15 * 20000.0);
  // At equal waste, InfiniteHBD is cheaper than NVL-72 (Fig. 17d).
  EXPECT_LT(aggregate_cost_usd(k2, 3000, 50, 50),
            aggregate_cost_usd(nvl, 3000, 50, 50));
}

TEST(AggregateCost, K2CheaperThanK3AtLowFaults) {
  // §6.5: below ~12% fault ratio K=2 beats K=3 (less hardware, similar
  // waste).
  const auto boms = paper_boms();
  const auto& k2 = bom_by_name(boms, "InfiniteHBD(K=2)");
  const auto& k3 = bom_by_name(boms, "InfiniteHBD(K=3)");
  EXPECT_LT(aggregate_cost_usd(k2, 3000, 5, 30),
            aggregate_cost_usd(k3, 3000, 0, 30));
}

}  // namespace
}  // namespace ihbd::cost
