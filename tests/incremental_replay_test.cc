// Event-driven incremental replay (src/fault/transitions.h +
// src/topo/incremental.h): transition-cursor semantics (zero-length events,
// same-day up/down, overlapping intervals, slice boundaries, the
// monotonicity contract, word-delta equivalence), the KHopRing incremental
// allocator's arc maintenance against allocate(), the word-parallel
// apply_words paths against the flip-list paths, and the randomized
// end-to-end property that the incremental replay is bit-identical to the
// serial evaluate_waste_over_trace oracle across architectures, TP sizes
// and the packed toggle.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fault/generator.h"
#include "src/fault/packed_mask.h"
#include "src/fault/trace.h"
#include "src/fault/transitions.h"
#include "src/topo/baselines.h"
#include "src/topo/incremental.h"
#include "src/topo/khop_ring.h"
#include "src/topo/waste.h"

namespace ihbd::topo {
namespace {

fault::FaultTrace gen_trace(int nodes, double days, std::uint64_t seed) {
  fault::TraceGenConfig cfg;
  cfg.node_count = nodes;
  cfg.duration_days = days;
  cfg.seed = seed;
  return fault::generate_trace(cfg);
}

void expect_same_result(const TraceWasteResult& a, const TraceWasteResult& b) {
  EXPECT_EQ(a.waste_ratio.t, b.waste_ratio.t);
  EXPECT_EQ(a.waste_ratio.v, b.waste_ratio.v);
  EXPECT_EQ(a.usable_gpus.t, b.usable_gpus.t);
  EXPECT_EQ(a.usable_gpus.v, b.usable_gpus.v);
  EXPECT_EQ(a.waste_summary.count, b.waste_summary.count);
  EXPECT_EQ(a.waste_summary.mean, b.waste_summary.mean);
  EXPECT_EQ(a.waste_summary.stddev, b.waste_summary.stddev);
  EXPECT_EQ(a.waste_summary.min, b.waste_summary.min);
  EXPECT_EQ(a.waste_summary.max, b.waste_summary.max);
  EXPECT_EQ(a.waste_summary.p50, b.waste_summary.p50);
  EXPECT_EQ(a.waste_summary.p90, b.waste_summary.p90);
  EXPECT_EQ(a.waste_summary.p99, b.waste_summary.p99);
}

// --- transition timeline --------------------------------------------------

TEST(TransitionTimeline, SortedAndComplete) {
  const auto trace = gen_trace(64, 30.0, 7);
  const auto edges = trace.transitions();
  ASSERT_EQ(edges.size(), trace.events().size() * 2);
  for (std::size_t i = 1; i < edges.size(); ++i)
    EXPECT_LE(edges[i - 1].day, edges[i].day);
  std::size_t downs = 0;
  for (const auto& e : edges) downs += e.down ? 1 : 0;
  EXPECT_EQ(downs, trace.events().size());
}

// --- cursor semantics -----------------------------------------------------

TEST(FaultMaskCursor, MatchesFaultyAtOnGeneratedTrace) {
  const auto trace = gen_trace(96, 45.0, 11);
  fault::FaultMaskCursor cursor(trace);
  std::vector<bool> replayed(static_cast<std::size_t>(trace.node_count()),
                             false);
  for (const double day : trace.sample_days(0.25)) {
    const auto& flipped = cursor.advance_to(day);
    // The reported flips alone must transform the previous mask into the
    // current one (no silent changes, no spurious reports).
    for (const int node : flipped) {
      const auto i = static_cast<std::size_t>(node);
      replayed[i] = !replayed[i];
    }
    EXPECT_EQ(cursor.mask(), trace.faulty_at(day)) << "day " << day;
    EXPECT_EQ(replayed, cursor.mask()) << "day " << day;
  }
  // Edges past the last sample day (repairs completing after the trace
  // window) may remain; advancing past every event drains the timeline and
  // clears the mask.
  cursor.advance_to(std::numeric_limits<double>::max());
  EXPECT_EQ(cursor.remaining(), 0u);
  for (const bool faulty : cursor.mask()) EXPECT_FALSE(faulty);
}

TEST(FaultMaskCursor, ZeroLengthAndSameDayAndOverlappingEvents) {
  // node 0: zero-length event (never faulty: start <= d < end is empty)
  // node 1: overlapping intervals [1,3) and [2,5) (faulty through day 4)
  // node 2: back-to-back [1,2) + [2,4): repair and re-fault on day 2 — the
  //         bit never clears, so day 2 must report no flip for node 2
  // node 3: plain [0,2)
  const fault::FaultTrace trace(
      5, 6.0,
      {{0, 2.0, 2.0}, {1, 1.0, 3.0}, {1, 2.0, 5.0}, {2, 1.0, 2.0},
       {2, 2.0, 4.0}, {3, 0.0, 2.0}});
  fault::FaultMaskCursor cursor(trace);

  EXPECT_EQ(cursor.advance_to(0.0), (std::vector<int>{3}));
  EXPECT_EQ(cursor.advance_to(1.0), (std::vector<int>{1, 2}));
  // Day 2: node 0's zero-length event cancels itself, node 1 stays down
  // (second interval active), node 2's up+down cancel, node 3 comes up.
  EXPECT_EQ(cursor.advance_to(2.0), (std::vector<int>{3}));
  EXPECT_EQ(cursor.mask(),
            (std::vector<bool>{false, true, true, false, false}));
  EXPECT_EQ(cursor.advance_to(3.0), (std::vector<int>{}));  // 1 still overlapped
  EXPECT_EQ(cursor.advance_to(4.0), (std::vector<int>{2}));
  EXPECT_EQ(cursor.advance_to(5.0), (std::vector<int>{1}));
  for (int node = 0; node < 5; ++node)
    EXPECT_FALSE(cursor.mask()[static_cast<std::size_t>(node)]);
  // Repeated advance to the same day is a no-op.
  EXPECT_TRUE(cursor.advance_to(5.0).empty());
}

TEST(FaultMaskCursor, WordDeltasMatchFaultyAt) {
  const auto trace = gen_trace(96, 45.0, 11);
  fault::FaultMaskCursor cursor(trace);
  fault::PackedMask replayed(trace.node_count());
  for (const double day : trace.sample_days(0.25)) {
    const auto& deltas = cursor.advance_to_words(day);
    int prev_word = -1;
    for (const auto& d : deltas) {
      // Contract: ascending word index, nonzero XOR bits, no tail bits.
      EXPECT_GT(d.word, prev_word) << "day " << day;
      EXPECT_NE(d.xor_bits, 0u) << "day " << day;
      prev_word = d.word;
      replayed.apply_xor(d.word, d.xor_bits);
    }
    EXPECT_EQ(cursor.packed_mask(), trace.packed_faulty_at(day))
        << "day " << day;
    EXPECT_EQ(replayed, cursor.packed_mask()) << "day " << day;
    // The bool mirror stays in sync with the packed mask.
    EXPECT_EQ(cursor.mask(), cursor.packed_mask().to_bools()) << "day " << day;
  }
}

TEST(FaultMaskCursor, GridAlignedCursorMatchesFaultyAt) {
  // The grid constructor binds the word engine to the per-sample-day folded
  // timeline (FaultTrace::word_delta_timeline(step)); on the grid it must
  // be indistinguishable from the exact-day cursor — including a fresh
  // cursor fast-forwarded to a mid-grid day, the window-start case where
  // the whole prefix folds in one multi-group advance.
  const auto trace = gen_trace(96, 45.0, 11);
  for (const double step : {1.0, 0.25, 0.7}) {
    SCOPED_TRACE(step);
    const auto days = trace.sample_days(step);
    fault::FaultMaskCursor cursor(trace, step);
    for (const double day : days) {
      const auto& deltas = cursor.advance_to_words(day);
      int prev_word = -1;
      for (const auto& d : deltas) {
        EXPECT_GT(d.word, prev_word) << "day " << day;
        EXPECT_NE(d.xor_bits, 0u) << "day " << day;
        prev_word = d.word;
      }
      EXPECT_EQ(cursor.packed_mask(), trace.packed_faulty_at(day))
          << "day " << day;
    }
    // Window start: jump a fresh grid cursor straight to the middle.
    const double mid = days[days.size() / 2];
    fault::FaultMaskCursor jumped(trace, step);
    jumped.advance_to_words(mid);
    EXPECT_EQ(jumped.packed_mask(), trace.packed_faulty_at(mid));
    // Beyond the last grid day the exact-day tail groups still apply.
    jumped.advance_to_words(std::numeric_limits<double>::max());
    EXPECT_EQ(jumped.packed_mask().popcount(), 0);
  }
}

TEST(FaultMaskCursor, EntryPointsInterleave) {
  // Both advance entry points share one timeline walk, so a caller may mix
  // them; each reports exactly the flips since the previous advance.
  const auto trace = gen_trace(96, 45.0, 11);
  fault::FaultMaskCursor words_cursor(trace);
  fault::FaultMaskCursor mixed_cursor(trace);
  bool use_words = false;
  for (const double day : trace.sample_days(0.5)) {
    words_cursor.advance_to_words(day);
    if (use_words)
      mixed_cursor.advance_to_words(day);
    else
      mixed_cursor.advance_to(day);
    use_words = !use_words;
    EXPECT_EQ(mixed_cursor.packed_mask(), words_cursor.packed_mask())
        << "day " << day;
    EXPECT_EQ(mixed_cursor.mask(), words_cursor.mask()) << "day " << day;
  }
}

TEST(FaultMaskCursor, FlipListMatchesWordDeltaExpansion) {
  const auto trace = gen_trace(64, 30.0, 19);
  fault::FaultMaskCursor flips_cursor(trace);
  fault::FaultMaskCursor words_cursor(trace);
  for (const double day : trace.sample_days(1.0)) {
    const std::vector<int> flipped = flips_cursor.advance_to(day);
    std::vector<int> expanded;
    for (const auto& d : words_cursor.advance_to_words(day))
      fault::for_each_set_bit(d.xor_bits, d.word,
                              [&](int i) { expanded.push_back(i); });
    EXPECT_EQ(flipped, expanded) << "day " << day;
  }
}

// The documented forward-only contract (transitions.h): a cursor cannot
// rewind, and the violation must trip the IHBD_EXPECTS guard rather than
// silently corrupt the mask.
using FaultMaskCursorDeathTest = ::testing::Test;

TEST(FaultMaskCursorDeathTest, RejectsNonMonotonicAdvance) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto trace = gen_trace(32, 20.0, 23);
  fault::FaultMaskCursor cursor(trace);
  cursor.advance_to(10.0);
  EXPECT_DEATH(cursor.advance_to(9.5), "day >= day_");
  EXPECT_DEATH(cursor.advance_to_words(0.0), "day >= day_");
  // NaN never satisfies day >= day_, so it is rejected too.
  EXPECT_DEATH(cursor.advance_to(std::numeric_limits<double>::quiet_NaN()),
               "day >= day_");
  // Equal day remains a legal no-op.
  EXPECT_TRUE(cursor.advance_to(10.0).empty());
}

TEST(FaultMaskCursor, SliceBoundariesMatchTheFullTrace) {
  const auto trace = gen_trace(64, 40.0, 3);
  const double lo = 12.0, hi = 23.0;
  const auto sliced = trace.slice(lo, hi);
  fault::FaultMaskCursor cursor(sliced);
  for (double day = lo; day <= hi; day += 0.5) {
    cursor.advance_to(day);
    EXPECT_EQ(cursor.mask(), trace.faulty_at(day)) << "day " << day;
  }
}

// --- KHopRing incremental allocator vs allocate() -------------------------

void expect_same_aggregates(const Allocation& a, const Allocation& b,
                            const std::string& what) {
  EXPECT_EQ(a.total_gpus, b.total_gpus) << what;
  EXPECT_EQ(a.faulty_gpus, b.faulty_gpus) << what;
  EXPECT_EQ(a.usable_gpus, b.usable_gpus) << what;
  EXPECT_EQ(a.wasted_healthy_gpus, b.wasted_healthy_gpus) << what;
}

TEST(KHopRingIncremental, RandomFlipSequencesMatchAllocate) {
  Rng rng(1234);
  for (const bool ring_variant : {true, false}) {
    for (const int k : {1, 2, 3}) {
      for (const int m : {2, 4, 8}) {
        const int n = 48;
        const int g = 4;
        const KHopRing ring(n, g, k, ring_variant);
        KHopRingIncrementalAllocator inc(ring, m * g);
        // Start from a random mask, then walk 400 random flip batches.
        std::vector<bool> mask(static_cast<std::size_t>(n), false);
        for (auto&& bit : mask) bit = rng.bernoulli(0.2);
        std::vector<int> flipped;
        inc.apply(mask, flipped);
        for (int step = 0; step < 400; ++step) {
          flipped.clear();
          const int batch = 1 + static_cast<int>(rng.uniform_index(3));
          for (int b = 0; b < batch; ++b) {
            const int x = static_cast<int>(rng.uniform_index(n));
            mask[static_cast<std::size_t>(x)] =
                !mask[static_cast<std::size_t>(x)];
            flipped.push_back(x);
          }
          // A node flipped twice in one batch nets out; drop both entries
          // the way a cursor would (the allocator must also tolerate them,
          // so leave them in on odd steps).
          const auto& got = inc.apply(mask, flipped);
          const auto want = ring.allocate(mask, m * g);
          expect_same_aggregates(
              got, want,
              (ring_variant ? "ring" : "line") + std::string(" k=") +
                  std::to_string(k) + " m=" + std::to_string(m) + " step " +
                  std::to_string(step));
        }
      }
    }
  }
}

TEST(KHopRingIncremental, ExtremeMasksMatchAllocate) {
  const int n = 24, g = 4, tp = 16;
  for (const bool ring_variant : {true, false}) {
    const KHopRing ring(n, g, 2, ring_variant);
    KHopRingIncrementalAllocator inc(ring, tp);
    std::vector<bool> mask(static_cast<std::size_t>(n), false);
    std::vector<int> flipped;
    inc.apply(mask, flipped);  // all healthy
    // Take every node down one by one, then bring them all back.
    for (int x = 0; x < n; ++x) {
      mask[static_cast<std::size_t>(x)] = true;
      const auto& got = inc.apply(mask, {x});
      expect_same_aggregates(got, ring.allocate(mask, tp),
                             "down x=" + std::to_string(x));
    }
    for (int x = n - 1; x >= 0; --x) {
      mask[static_cast<std::size_t>(x)] = false;
      const auto& got = inc.apply(mask, {x});
      expect_same_aggregates(got, ring.allocate(mask, tp),
                             "up x=" + std::to_string(x));
    }
  }
}

// --- per-island baseline allocators vs allocate() -------------------------

/// The island-decomposable baselines on a 144 x 4 cluster (the smallest
/// every §6.1 baseline accepts, incl. NVL-576), with direct constructors
/// for the concrete allocator classes so the test exercises each
/// implementation rather than whatever the dispatch picks.
struct BaselineCase {
  std::unique_ptr<HbdArchitecture> arch;
  std::unique_ptr<IncrementalAllocator> allocator;
  int tp = 0;
};

std::vector<BaselineCase> baseline_cases(int nodes, int gpus, int tp) {
  std::vector<BaselineCase> cases;
  const auto add = [&](std::unique_ptr<HbdArchitecture> arch,
                       std::unique_ptr<IncrementalAllocator> alloc) {
    cases.push_back({std::move(arch), std::move(alloc), tp});
  };
  {
    auto bs = std::make_unique<BigSwitch>(nodes, gpus);
    auto alloc = std::make_unique<IslandModuloAllocator>(
        *bs, bs->island_partition(), tp);
    add(std::move(bs), std::move(alloc));
  }
  for (const int hbd : {36, 72, 576}) {
    auto nvl = std::make_unique<NvlSwitch>(nodes, gpus, hbd);
    auto alloc = std::make_unique<IslandModuloAllocator>(
        *nvl, nvl->island_partition(), tp);
    add(std::move(nvl), std::move(alloc));
  }
  {
    auto tpu = std::make_unique<TpuV4>(nodes, gpus);
    auto alloc =
        tp > tpu->cube_gpus()
            ? std::unique_ptr<IncrementalAllocator>(
                  std::make_unique<TpuCubePoolAllocator>(*tpu, tp))
            : std::make_unique<IslandModuloAllocator>(
                  *tpu, tpu->island_partition(), tp);
    add(std::move(tpu), std::move(alloc));
  }
  {
    auto sip = std::make_unique<SipRing>(nodes, gpus);
    auto alloc = std::make_unique<SipRingIncrementalAllocator>(*sip, tp);
    add(std::move(sip), std::move(alloc));
  }
  return cases;
}

TEST(BaselineIncremental, RandomFlipSequencesMatchAllocate) {
  Rng rng(4321);
  const int n = 144, g = 4;
  // TP sweep covers every regime: in-island fragmentation (8, 64),
  // TPUv4's pooled clean-cube regime and NVL-36/72 whole-island waste
  // (128), and m larger than the whole cluster (640).
  for (const int tp : {8, 64, 128, 640}) {
    for (auto& c : baseline_cases(n, g, tp)) {
      std::vector<bool> mask(static_cast<std::size_t>(n), false);
      for (auto&& bit : mask) bit = rng.bernoulli(0.15);
      std::vector<int> flipped;
      c.allocator->apply(mask, flipped);
      for (int step = 0; step < 400; ++step) {
        flipped.clear();
        const int batch = 1 + static_cast<int>(rng.uniform_index(3));
        for (int b = 0; b < batch; ++b) {
          const int x = static_cast<int>(rng.uniform_index(n));
          mask[static_cast<std::size_t>(x)] =
              !mask[static_cast<std::size_t>(x)];
          flipped.push_back(x);
        }
        // Double flips of one node stay in the list: the allocator must
        // tolerate spurious (net-zero) entries.
        const auto& got = c.allocator->apply(mask, flipped);
        const auto want = c.arch->allocate(mask, tp);
        expect_same_aggregates(got, want,
                               c.arch->name() + " tp=" + std::to_string(tp) +
                                   " step " + std::to_string(step));
      }
    }
  }
}

TEST(BaselineIncremental, DegenerateMasksMatchAllocate) {
  const int n = 144, g = 4;
  for (const int tp : {32, 128}) {
    for (auto& c : baseline_cases(n, g, tp)) {
      std::vector<bool> mask(static_cast<std::size_t>(n), false);
      std::vector<int> flipped;
      // All healthy, then take one island (the first 18 nodes — one NVL-72
      // island, more than one TPUv4 cube span) fully down node by node,
      // then the whole cluster down, then everything back up.
      expect_same_aggregates(c.allocator->apply(mask, flipped),
                             c.arch->allocate(mask, tp),
                             c.arch->name() + " all-healthy");
      for (int x = 0; x < n; ++x) {
        mask[static_cast<std::size_t>(x)] = true;
        expect_same_aggregates(
            c.allocator->apply(mask, {x}), c.arch->allocate(mask, tp),
            c.arch->name() + " tp=" + std::to_string(tp) + " down x=" +
                std::to_string(x));
      }
      for (int x = n - 1; x >= 0; --x) {
        mask[static_cast<std::size_t>(x)] = false;
        expect_same_aggregates(
            c.allocator->apply(mask, {x}), c.arch->allocate(mask, tp),
            c.arch->name() + " tp=" + std::to_string(tp) + " up x=" +
                std::to_string(x));
      }
    }
  }
}

TEST(BaselineIncremental, InitializesFromDegenerateFirstMask) {
  // First apply() seeds wholesale from the mask: start from all-faulty and
  // from one-island-down instead of from all-healthy.
  const int n = 144, g = 4, tp = 32;
  for (const bool all_faulty : {true, false}) {
    for (auto& c : baseline_cases(n, g, tp)) {
      std::vector<bool> mask(static_cast<std::size_t>(n), all_faulty);
      if (!all_faulty)  // exactly one NVL-36 island (9 nodes) fully down
        for (int x = 0; x < 9; ++x) mask[static_cast<std::size_t>(x)] = true;
      expect_same_aggregates(
          c.allocator->apply(mask, {}), c.arch->allocate(mask, tp),
          c.arch->name() + (all_faulty ? " all-faulty" : " island-down"));
      // One repair out of the degenerate state.
      mask[0] = false;
      expect_same_aggregates(c.allocator->apply(mask, {0}),
                             c.arch->allocate(mask, tp),
                             c.arch->name() + " first repair");
    }
  }
}

TEST(BaselineIncremental, DispatchCoversEveryPaperArchitecture) {
  // make_incremental_allocator must hand every §6.1 architecture a true
  // incremental allocator whose aggregates match allocate() — including
  // TPUv4 on both sides of the cube-size regime boundary.
  const int nodes = 144;
  Rng rng(77);
  auto archs = make_paper_architectures(nodes, 4);
  for (const auto& arch : archs) {
    for (const int tp : {8, 64, 128}) {
      const auto allocator = make_incremental_allocator(*arch, tp);
      std::vector<bool> mask(static_cast<std::size_t>(nodes), false);
      for (auto&& bit : mask) bit = rng.bernoulli(0.1);
      expect_same_aggregates(allocator->apply(mask, {}),
                             arch->allocate(mask, tp),
                             arch->name() + " tp=" + std::to_string(tp));
      for (int step = 0; step < 32; ++step) {
        const int x = static_cast<int>(rng.uniform_index(nodes));
        mask[static_cast<std::size_t>(x)] = !mask[static_cast<std::size_t>(x)];
        expect_same_aggregates(
            allocator->apply(mask, {x}), arch->allocate(mask, tp),
            arch->name() + " tp=" + std::to_string(tp) + " step " +
                std::to_string(step));
      }
    }
  }
}

// --- word-parallel apply_words vs allocate() ------------------------------

/// Flip `batch` random nodes of `mask` and return the net word deltas (a
/// node flipped twice in one batch nets out of its word's XOR bits; a word
/// whose bits all net out is dropped), exactly what a cursor would emit.
std::vector<fault::WordDelta> random_word_batch(fault::PackedMask& mask,
                                                int batch, Rng& rng) {
  std::vector<std::uint64_t> xor_by_word(
      static_cast<std::size_t>(mask.word_count()), 0);
  for (int b = 0; b < batch; ++b) {
    const int x = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(mask.size())));
    xor_by_word[static_cast<std::size_t>(x / fault::PackedMask::kWordBits)] ^=
        std::uint64_t{1} << (x % fault::PackedMask::kWordBits);
  }
  std::vector<fault::WordDelta> deltas;
  for (int w = 0; w < mask.word_count(); ++w) {
    const std::uint64_t bits = xor_by_word[static_cast<std::size_t>(w)];
    if (bits == 0) continue;
    mask.apply_xor(w, bits);
    deltas.push_back({w, bits});
  }
  return deltas;
}

TEST(ApplyWords, RandomWordBatchesMatchAllocate) {
  // Every allocator the dispatch hands out (KHop word-Fenwick, the
  // per-island baselines, TPUv4's pooled regime) plus the memoizing
  // fallback and the KHop allocator driven directly: word deltas in,
  // aggregates bit-identical to a from-scratch allocate().
  Rng rng(9999);
  const int n = 144, g = 4;
  std::vector<BaselineCase> cases;
  for (const int tp : {8, 64, 128}) {
    for (auto& c : baseline_cases(n, g, tp)) cases.push_back(std::move(c));
    auto ring = std::make_unique<KHopRing>(n, g, 2);
    auto ring_alloc = std::make_unique<KHopRingIncrementalAllocator>(*ring, tp);
    cases.push_back({std::move(ring), std::move(ring_alloc), tp});
    auto bs = std::make_unique<BigSwitch>(n, g);
    auto memo = std::make_unique<MemoizingAllocator>(*bs, tp);
    cases.push_back({std::move(bs), std::move(memo), tp});
  }
  for (auto& c : cases) {
    fault::PackedMask mask(n);
    for (int i = 0; i < n; ++i) mask.set(i, rng.bernoulli(0.15));
    c.allocator->apply_words(mask, {});
    for (int step = 0; step < 200; ++step) {
      const int batch = 1 + static_cast<int>(rng.uniform_index(3));
      const auto deltas = random_word_batch(mask, batch, rng);
      const auto& got = c.allocator->apply_words(mask, deltas);
      const auto want = c.arch->allocate(mask, c.tp);
      expect_same_aggregates(got, want,
                             c.arch->name() + " tp=" + std::to_string(c.tp) +
                                 " step " + std::to_string(step));
    }
  }
}

TEST(ApplyWords, ToleratesSpuriousDeltas) {
  // A delta whose word already matches the mask (net-zero change) must be
  // ignored, mirroring the flip-list paths' spurious-flip filtering.
  const int n = 144, g = 4, tp = 32;
  for (auto& c : baseline_cases(n, g, tp)) {
    fault::PackedMask mask(n);
    for (int x = 0; x < 9; ++x) mask.set(x, true);
    c.allocator->apply_words(mask, {});
    // Claim every word changed; none did.
    std::vector<fault::WordDelta> spurious;
    for (int w = 0; w < mask.word_count(); ++w)
      spurious.push_back({w, mask.valid_mask(w)});
    expect_same_aggregates(c.allocator->apply_words(mask, spurious),
                           c.arch->allocate(mask, tp),
                           c.arch->name() + " spurious");
    // And a real change still lands after the spurious round.
    mask.set(100, true);
    expect_same_aggregates(
        c.allocator->apply_words(
            mask, {{100 / fault::PackedMask::kWordBits,
                    std::uint64_t{1} << (100 % fault::PackedMask::kWordBits)}}),
        c.arch->allocate(mask, tp), c.arch->name() + " post-spurious");
  }
}

TEST(ApplyWords, DegenerateMasksMatchAllocate) {
  const int n = 144, g = 4;
  for (const int tp : {32, 128}) {
    for (auto& c : baseline_cases(n, g, tp)) {
      fault::PackedMask mask(n);
      c.allocator->apply_words(mask, {});
      // Whole words down at once (the worst-case delta density), then the
      // whole cluster, then everything back up word by word.
      for (int w = 0; w < mask.word_count(); ++w) {
        const std::uint64_t bits = mask.valid_mask(w);
        mask.apply_xor(w, bits);
        expect_same_aggregates(c.allocator->apply_words(mask, {{w, bits}}),
                               c.arch->allocate(mask, tp),
                               c.arch->name() + " word-down " +
                                   std::to_string(w));
      }
      for (int w = mask.word_count() - 1; w >= 0; --w) {
        const std::uint64_t bits = mask.valid_mask(w);
        mask.apply_xor(w, bits);
        expect_same_aggregates(c.allocator->apply_words(mask, {{w, bits}}),
                               c.arch->allocate(mask, tp),
                               c.arch->name() + " word-up " +
                                   std::to_string(w));
      }
    }
  }
}

// --- end-to-end: incremental replay vs serial oracle ----------------------

TEST(IncrementalReplay, BitIdenticalToSerialOracleAcrossArchitectures) {
  // 144 nodes x 4 GPUs = 576 GPUs: the smallest cluster every paper
  // architecture (incl. NVL-576) accepts.
  const int nodes = 144;
  for (const std::uint64_t seed : {1ull, 42ull}) {
    const auto trace = gen_trace(nodes, 60.0, seed);
    auto archs = make_paper_architectures(nodes, 4);
    archs.push_back(std::make_unique<KHopRing>(nodes, 4, 2, /*ring=*/false));
    for (const auto& arch : archs) {
      // 128 exercises TPUv4's pooled regime and NVL-36/72 whole-island
      // waste through the full replay stack, not just the allocator units.
      for (const int tp : {8, 32, 64, 128}) {
        const auto serial = evaluate_waste_over_trace(*arch, trace, tp, 1.0);
        for (const std::size_t window : {1ul, 16ul, 0ul}) {
          for (const bool packed : {false, true}) {
            TraceReplayOptions opts;
            opts.threads = 2;
            opts.window_samples = window;
            opts.incremental = true;
            opts.packed = packed;
            SCOPED_TRACE(arch->name() + " tp=" + std::to_string(tp) +
                         " window=" + std::to_string(window) + " seed=" +
                         std::to_string(seed) + " packed=" +
                         std::to_string(packed));
            expect_same_result(
                serial, evaluate_waste_over_trace(*arch, trace, tp, opts));
          }
        }
      }
    }
  }
}

TEST(IncrementalReplay, BitIdenticalOnFractionalStep) {
  const auto trace = gen_trace(96, 45.0, 5);
  const KHopRing ring(96, 4, 3);
  const auto serial = evaluate_waste_over_trace(ring, trace, 16, 0.7);
  TraceReplayOptions opts;
  opts.step_days = 0.7;
  opts.threads = 4;
  opts.window_samples = 5;
  opts.incremental = true;
  expect_same_result(serial, evaluate_waste_over_trace(ring, trace, 16, opts));
}

}  // namespace
}  // namespace ihbd::topo
