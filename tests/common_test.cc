#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/common/csv.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace ihbd {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, LognormalMedian) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.lognormal(0.5, 0.8));
  EXPECT_NEAR(percentile(xs, 50.0), std::exp(0.5), 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(6.5));
  EXPECT_NEAR(sum / n, 6.5, 0.1);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkIndependence) {
  Rng a(31);
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

TEST(Stats, MeanAndStddev) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptyInputs) {
  std::vector<double> xs;
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
  EXPECT_EQ(summarize(xs).count, 0u);
  EXPECT_TRUE(empirical_cdf(xs).empty());
}

TEST(Stats, PercentileInterpolation) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Stats, PercentileSingleElement) {
  std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 99.0), 7.0);
}

TEST(Stats, SummaryFields) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Stats, EmpiricalCdfMonotone) {
  std::vector<double> xs{3, 1, 2, 2, 5};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 5u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].cum_prob, cdf[i].cum_prob);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cum_prob, 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // clamps into bin 0
  h.add(0.5);
  h.add(9.99);
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, NanIsCountedSeparatelyNotBinned) {
  // Regression: NaN fell through both range guards into the bin cast (UB).
  Histogram h(0.0, 10.0, 10);
  h.add(std::nan(""));
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.nan_count(), 1u);
  for (std::size_t b = 0; b < h.bin_count(); ++b) EXPECT_EQ(h.count(b), 0u);
  h.add(5.0);
  h.add(-std::nan(""));
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.count(5), 1u);
}

TEST(Histogram, UpperEdgeClampsIntoLastBin) {
  // Bins are half-open [lo, hi), but x == hi is documented to clamp into
  // the last bin rather than being dropped.
  Histogram h(0.0, 10.0, 10);
  h.add(10.0);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 1u);
  // Infinities follow the same clamping as any out-of-range value.
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.nan_count(), 0u);
}

TEST(Histogram, ToStringContainsBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.25);
  const std::string s = h.to_string();
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Table, RendersHeaderAndRows) {
  Table t("Demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, FormattingHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
}

TEST(Table, CsvEscaping) {
  Table t;
  t.set_header({"x,y", "plain"});
  t.add_row({"a\"b", "c"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"a\"\"b\""), std::string::npos);
}

TEST(Csv, WritesFile) {
  Table t;
  t.set_header({"col"});
  t.add_row({"42"});
  EXPECT_TRUE(write_csv(::testing::TempDir(), "ihbd_csv_test", t));
  EXPECT_TRUE(write_csv("", "noop", t));  // empty dir is a no-op success
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::gbps_to_GBps(800.0), 100.0);
  EXPECT_DOUBLE_EQ(units::GBps_to_gbps(100.0), 800.0);
  EXPECT_DOUBLE_EQ(units::us(80.0), 80e-6);
  EXPECT_DOUBLE_EQ(units::to_us(80e-6), 80.0);
}

}  // namespace
}  // namespace ihbd
