// Work-stealing scheduler (src/runtime/thread_pool.h): nested parallel_for
// determinism against a serial oracle, steal-order stress with randomized
// task durations, exception capture/propagation through TaskGroup and from
// inner nesting levels, the auto-grain heuristic's bit-identity, and the
// process-wide shared() pool. This suite (plus runtime_test) is what the
// CI ThreadSanitizer job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/runtime/substream.h"
#include "src/runtime/thread_pool.h"

namespace ihbd::runtime {
namespace {

// Deterministic per-(cell, window) value with uneven per-index cost: the
// serial oracle for the sweep-in-replay shape (an outer grid whose cells
// each fan out an inner range on the SAME pool).
double cell_window_value(std::size_t cell, std::size_t window) {
  Rng rng = substream(1234, cell * 1024 + window);
  double x = static_cast<double>(cell);
  const int draws = 1 + static_cast<int>(rng.uniform_index(16));
  for (int k = 0; k < draws; ++k) x += rng.normal(0.0, 1.0);
  return x;
}

// --- nested determinism ----------------------------------------------------

TEST(WorkSteal, NestedParallelForMatchesSerialOracle) {
  constexpr std::size_t kCells = 6, kWindows = 40;
  std::vector<double> oracle(kCells * kWindows);
  for (std::size_t c = 0; c < kCells; ++c)
    for (std::size_t w = 0; w < kWindows; ++w)
      oracle[c * kWindows + w] = cell_window_value(c, w);

  for (int workers : {1, 2, 8}) {
    ThreadPool pool(workers);
    std::vector<double> out(kCells * kWindows, 0.0);
    pool.parallel_for(kCells, [&](std::size_t c) {
      // Inner fan-out on the same pool: stealable by idle sweep workers,
      // helped by this (blocked) cell task. Bodies own their (c, w) slot,
      // so the result is bit-identical for any steal order.
      pool.parallel_for(kWindows, [&](std::size_t w) {
        out[c * kWindows + w] = cell_window_value(c, w);
      });
    });
    EXPECT_EQ(out, oracle) << "workers=" << workers;  // bitwise
  }
}

TEST(WorkSteal, ThreeNestingLevelsCoverEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kA = 3, kB = 4, kC = 5;
  std::vector<std::atomic<int>> hits(kA * kB * kC);
  pool.parallel_for(kA, [&](std::size_t a) {
    pool.parallel_for(kB, [&](std::size_t b) {
      pool.parallel_for(kC, [&](std::size_t c) {
        ++hits[(a * kB + b) * kC + c];
      });
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --- steal-order stress -----------------------------------------------------

TEST(WorkSteal, StressRandomizedDurationsAndNesting) {
  // Bodies spin for pseudo-random durations so claim order and steal
  // victims vary from round to round; every round must still execute every
  // (outer, inner) index exactly once.
  ThreadPool pool(8);
  for (std::uint64_t round = 0; round < 15; ++round) {
    constexpr std::size_t kOuter = 61;
    std::vector<std::atomic<int>> outer_hits(kOuter);
    std::atomic<long long> inner_total{0};
    long long expect_inner = 0;
    for (std::size_t i = 0; i < kOuter; ++i)
      expect_inner += 1 + static_cast<long long>(i % 5);

    pool.parallel_for(kOuter, [&](std::size_t i) {
      Rng rng = substream(round, i);
      volatile double sink = 0.0;
      const int spin = static_cast<int>(rng.uniform_index(3000));
      for (int k = 0; k < spin; ++k) sink = sink + static_cast<double>(k);
      pool.parallel_for(1 + i % 5, [&](std::size_t) {
        inner_total.fetch_add(1, std::memory_order_relaxed);
      });
      ++outer_hits[i];
    });
    for (const auto& h : outer_hits) ASSERT_EQ(h.load(), 1);
    EXPECT_EQ(inner_total.load(), expect_inner) << "round " << round;
  }
}

// --- exception capture and propagation --------------------------------------

TEST(WorkSteal, ExceptionFromInnerNestingLevelPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t c) {
                          pool.parallel_for(16, [&](std::size_t w) {
                            if (c == 3 && w == 11)
                              throw ConfigError("inner nesting failure");
                          });
                        }),
      ConfigError);
  // The pool must survive a failed nested fan-out.
  std::atomic<int> ran{0};
  pool.parallel_for(50, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 50);
}

TEST(TaskGroup, CapturesTaskExceptionAndRethrowsAtWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  group.run([&] { ++ran; });
  group.run([] { throw ConfigError("task failed"); });
  group.run([&] { ++ran; });
  EXPECT_THROW(group.wait(), ConfigError);
  EXPECT_EQ(ran.load(), 2);
  EXPECT_FALSE(group.failed());  // consumed by wait; group is reusable
  group.run([&] { ++ran; });
  group.wait();
  EXPECT_EQ(ran.load(), 3);
}

TEST(TaskGroup, FirstExceptionWinsLaterOnesAreDropped) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  for (int i = 0; i < 16; ++i)
    group.run([] { throw ConfigError("one of many"); });
  EXPECT_THROW(group.wait(), ConfigError);
  group.wait();  // nothing pending, nothing stored
}

TEST(ThreadPool, SubmitExceptionIsRethrownAtWaitIdle) {
  // submit()ted tasks belong to the pool's internal root group: an escaping
  // exception no longer terminates the process, it surfaces at wait_idle.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.submit([] { throw ConfigError("submitted task failed"); });
  pool.submit([&] { ++ran; });
  EXPECT_THROW(pool.wait_idle(), ConfigError);
  EXPECT_EQ(ran.load(), 2);
  // Consumed: the pool stays usable and the next wait_idle is clean.
  pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 3);
}

// --- fork/join from tasks and external threads -------------------------------

TEST(TaskGroup, ForkJoinInsideAPoolTaskRecruitsWorkers) {
  ThreadPool pool(4);
  std::atomic<int> inner{0};
  TaskGroup outer(pool);
  outer.run([&] {
    TaskGroup nested(pool);
    for (int i = 0; i < 32; ++i) nested.run([&] { ++inner; });
    nested.wait();  // helping join from a worker thread
  });
  outer.wait();
  EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, TaskForkingDuringShutdownDrainCompletes) {
  // Destroying the pool while a submitted task is still queued must let the
  // shutdown drain run it — INCLUDING any tasks it forks (a nested
  // parallel_for enqueues during the drain; that must not trip the
  // stopping-pool assertion reserved for non-worker threads). Looped to hit
  // both interleavings: worker pops the task before vs after stop is set.
  for (int i = 0; i < 50; ++i) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(1);
      pool.submit([&] {
        pool.parallel_for(10, [&](std::size_t) { ++ran; });
      });
      // No wait_idle(): the destructor races the worker claiming the task.
    }
    ASSERT_EQ(ran.load(), 10) << "iteration " << i;
  }
}

TEST(TaskGroup, DestructorJoinsOutstandingTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) group.run([&] { ++ran; });
    // No wait(): the destructor must join (dropping exceptions) so tasks
    // never outlive the state they captured.
  }
  EXPECT_EQ(ran.load(), 8);
}

// --- auto-grain --------------------------------------------------------------

TEST(WorkSteal, AutoGrainBitIdenticalAcrossGrainsAndWorkers) {
  constexpr std::size_t kN = 1037;
  auto run = [&](int workers, std::size_t grain) {
    ThreadPool pool(workers);
    std::vector<double> out(kN);
    pool.parallel_for(
        kN,
        [&](std::size_t i) {
          Rng rng = substream(7, i);
          out[i] = rng.normal(0.0, 1.0);
        },
        grain);
    return out;
  };
  const auto oracle = run(1, 1);
  for (int workers : {2, 8})
    for (std::size_t grain : {std::size_t{0},  // 0 = auto: n / (workers * 8)
                              std::size_t{1}, std::size_t{7}, std::size_t{64},
                              std::size_t{5000}})  // one chunk > n
      EXPECT_EQ(run(workers, grain), oracle)
          << "workers=" << workers << " grain=" << grain;
}

// --- shared pool -------------------------------------------------------------

TEST(SharedPool, IsProcessWideAndUsable) {
  ThreadPool& a = ThreadPool::shared();
  EXPECT_EQ(&a, &ThreadPool::shared());
  EXPECT_GE(a.size(), 1);
  std::atomic<int> ran{0};
  a.parallel_for(100, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 100);
}

TEST(SharedPool, ParallelMapDefaultRidesItAndPreservesOrder) {
  std::vector<int> items;
  for (int i = 0; i < 200; ++i) items.push_back(i);
  // threads omitted: no transient pool is spun up per call any more.
  const auto out = parallel_map(items, [](int v) { return v * v; });
  ASSERT_EQ(out.size(), items.size());
  for (int i = 0; i < 200; ++i) EXPECT_EQ(out[i], i * i);
  // Explicit-pool overload.
  ThreadPool pool(3);
  const auto out2 = parallel_map(items, [](int v) { return v + 1; }, pool);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(out2[i], i + 1);
}

}  // namespace
}  // namespace ihbd::runtime
