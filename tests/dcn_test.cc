#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/dcn/fattree.h"
#include "src/dcn/traffic.h"

namespace ihbd::dcn {
namespace {

FatTree small_tree() {
  FatTreeConfig cfg;
  cfg.node_count = 64;
  cfg.nodes_per_tor = 4;
  cfg.tors_per_domain = 4;
  return FatTree(cfg);
}

TEST(FatTree, ValidatesConfig) {
  FatTreeConfig bad;
  bad.node_count = 10;
  bad.nodes_per_tor = 4;  // 10 % 4 != 0
  EXPECT_THROW(FatTree{bad}, ConfigError);
}

TEST(FatTree, TorAndDomainMapping) {
  const FatTree ft = small_tree();
  EXPECT_EQ(ft.tor_count(), 16);
  EXPECT_EQ(ft.domain_size_nodes(), 16);
  EXPECT_EQ(ft.domain_count(), 4);
  EXPECT_EQ(ft.tor_of(0), 0);
  EXPECT_EQ(ft.tor_of(5), 1);
  EXPECT_EQ(ft.domain_of(15), 0);
  EXPECT_EQ(ft.domain_of(16), 1);
}

TEST(FatTree, NetworkDistances) {
  const FatTree ft = small_tree();
  EXPECT_EQ(ft.network_distance(0, 0), 0);
  EXPECT_EQ(ft.network_distance(0, 1), 1);   // same ToR
  EXPECT_EQ(ft.network_distance(0, 5), 3);   // same domain, different ToR
  EXPECT_EQ(ft.network_distance(0, 40), 5);  // cross-domain
}

namespace {
PlacedGroup make_group(std::vector<int> nodes, int subline = -1,
                       int domain = -1, int pos = -1) {
  PlacedGroup g;
  g.group.nodes = std::move(nodes);
  g.subline = subline;
  g.domain = domain;
  g.pos = pos;
  return g;
}
}  // namespace

TEST(Traffic, AlignedPlacementIsIntraToR) {
  // Two groups at the same (domain,pos) across sublines 0 and 1; their
  // rank-r nodes share ToRs -> zero cross-ToR volume.
  const FatTree ft = small_tree();
  PlacementScheme placement;
  placement.groups.push_back(make_group({0, 4}, 0, 0, 0));
  placement.groups.push_back(make_group({1, 5}, 1, 0, 0));
  const auto stats = evaluate_cross_tor(ft, placement, 4);
  EXPECT_EQ(stats.cross_tor_edges, 0);
  EXPECT_GT(stats.dcn_volume, 0.0);
  EXPECT_DOUBLE_EQ(stats.cross_tor_rate(), 0.0);
}

TEST(Traffic, MisalignedMemberCrossesToR) {
  const FatTree ft = small_tree();
  PlacementScheme placement;
  placement.groups.push_back(make_group({0, 4}, 0, 0, 0));
  placement.groups.push_back(make_group({5, 9}, 1, 0, 0));  // shifted a ToR
  const auto stats = evaluate_cross_tor(ft, placement, 4);
  EXPECT_EQ(stats.cross_tor_edges, 2);  // both ranks cross
  EXPECT_GT(stats.cross_tor_rate(), 0.0);
}

TEST(Traffic, ResidualGroupsChainAcrossToRs) {
  const FatTree ft = small_tree();
  PlacementScheme placement;
  // Four residual groups (no coordinates) of one node each, far apart.
  placement.groups.push_back(make_group({0}));
  placement.groups.push_back(make_group({16}));
  placement.groups.push_back(make_group({32}));
  placement.groups.push_back(make_group({48}));
  const auto stats = evaluate_cross_tor(ft, placement, 4);
  EXPECT_EQ(stats.dcn_edges, 4);  // ring of width p=4
  EXPECT_EQ(stats.cross_tor_edges, 4);
  EXPECT_DOUBLE_EQ(stats.dcn_cross_fraction(), 1.0);
}

TEST(Traffic, FullyMisalignedRateMatchesVolumeRatio) {
  // With tp_to_dcn_volume_ratio = 9, an all-cross placement yields a rate
  // near 1/(9+1) = 10% - the paper's baseline level.
  const FatTree ft = small_tree();
  PlacementScheme placement;
  for (int g = 0; g < 8; ++g)
    placement.groups.push_back(make_group({g * 8, g * 8 + 4}));
  TrafficModel model;
  model.tp_to_dcn_volume_ratio = 9.0;
  const auto stats = evaluate_cross_tor(ft, placement, 4, model);
  EXPECT_NEAR(stats.cross_tor_rate(), 0.10, 0.02);
}

TEST(Traffic, UseGroupsLimitsAccounting) {
  const FatTree ft = small_tree();
  PlacementScheme placement;
  placement.groups.push_back(make_group({0, 4}, 0, 0, 0));
  placement.groups.push_back(make_group({1, 5}, 1, 0, 0));
  placement.groups.push_back(make_group({32}));
  const auto all = evaluate_cross_tor(ft, placement, 4);
  const auto two = evaluate_cross_tor(ft, placement, 4, {}, 2);
  EXPECT_LT(two.total_volume, all.total_volume);
}

TEST(Traffic, GpuCountCountsNodes) {
  PlacementScheme placement;
  placement.groups.push_back(make_group({0, 1, 2}));
  placement.groups.push_back(make_group({3}));
  EXPECT_EQ(placement.gpu_count(4), 16);
}

TEST(Traffic, TwoMemberRingHasSingleLink) {
  const FatTree ft = small_tree();
  PlacementScheme placement;
  placement.groups.push_back(make_group({0}, 0, 0, 0));
  placement.groups.push_back(make_group({1}, 1, 0, 0));
  const auto stats = evaluate_cross_tor(ft, placement, 4);
  EXPECT_EQ(stats.dcn_edges, 1);  // no double-counted wrap link
}

}  // namespace
}  // namespace ihbd::dcn
