#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/core/cluster.h"

namespace ihbd::core {
namespace {

InfiniteHbdCluster::Config small_config(int nodes = 16, int k = 2) {
  InfiniteHbdCluster::Config cfg;
  cfg.node_count = nodes;
  cfg.gpus_per_node = 4;
  cfg.k = k;
  cfg.trx_per_bundle = 2;  // keep tests fast
  return cfg;
}

TEST(Cluster, ConstructionAndBasics) {
  InfiniteHbdCluster cluster(small_config());
  EXPECT_EQ(cluster.node_count(), 16);
  EXPECT_EQ(cluster.total_gpus(), 64);
  EXPECT_EQ(cluster.faulty_node_count(), 0);
}

TEST(Cluster, RejectsKBeyondBundles) {
  auto cfg = small_config();
  cfg.k = 5;  // needs 5 bundles > 4 GPUs
  EXPECT_THROW(InfiniteHbdCluster cluster(cfg), ConfigError);
}

TEST(Cluster, BundleForHopConvention) {
  InfiniteHbdCluster cluster(small_config(16, 3));
  EXPECT_EQ(cluster.bundle_for_hop(+1).first, 0);
  EXPECT_EQ(cluster.bundle_for_hop(-1).first, 1);
  EXPECT_EQ(cluster.bundle_for_hop(+2).first, 0);
  EXPECT_EQ(cluster.bundle_for_hop(-2).first, 1);
  EXPECT_EQ(cluster.bundle_for_hop(+3).first, 2);
  EXPECT_EQ(cluster.bundle_for_hop(-3).first, 2);
  EXPECT_EQ(cluster.bundle_for_hop(+1).second, ocstrx::OcsPath::kExternal1);
  EXPECT_EQ(cluster.bundle_for_hop(+2).second, ocstrx::OcsPath::kExternal2);
}

TEST(Cluster, BuildRingsHealthyCluster) {
  InfiniteHbdCluster cluster(small_config());
  const auto plan = cluster.build_rings(16);  // m = 4 -> 4 groups
  EXPECT_EQ(plan.allocation.groups.size(), 4u);
  EXPECT_EQ(plan.allocation.usable_gpus, 64);
  EXPECT_EQ(plan.allocation.wasted_healthy_gpus, 0);
  // 3 internal links per 4-node group.
  EXPECT_EQ(plan.links.size(), 4u * 3u);
  // Fast-switch budget: hardware-only reconfiguration.
  EXPECT_GT(plan.reconfig_latency_s, 0.0);
  EXPECT_LE(plan.reconfig_latency_s, 80e-6);
}

TEST(Cluster, LinksRespectHopBound) {
  auto cfg = small_config(20, 2);
  InfiniteHbdCluster cluster(cfg);
  cluster.fail_node(3);
  cluster.fail_node(9);
  const auto plan = cluster.build_rings(16);
  for (const auto& link : plan.links) {
    EXPECT_GE(link.hop, 1);
    EXPECT_LE(link.hop, 2);
    EXPECT_FALSE(cluster.node_faulty(link.from_node));
    EXPECT_FALSE(cluster.node_faulty(link.to_node));
  }
}

TEST(Cluster, FaultBeforeBuildExcludesNode) {
  InfiniteHbdCluster cluster(small_config());
  cluster.fail_node(5);
  const auto plan = cluster.build_rings(16);
  for (const auto& group : plan.allocation.groups)
    for (int node : group.nodes) EXPECT_NE(node, 5);
  EXPECT_EQ(plan.allocation.faulty_gpus, 4);
}

TEST(Cluster, MidRingFaultIsBypassed) {
  InfiniteHbdCluster cluster(small_config(16, 2));
  cluster.build_rings(16);
  // Node 1 is interior to group {0,1,2,3}: neighbors 0 and 2 can bridge
  // the 2-hop gap at K=2.
  const auto result = cluster.fail_and_bypass(1);
  EXPECT_TRUE(result.ring_was_member);
  EXPECT_TRUE(result.bypassed);
  EXPECT_GT(result.reconfig_latency_s, 0.0);
  EXPECT_LE(result.reconfig_latency_s, 80e-6);
  EXPECT_EQ(result.degraded_group, 0);
}

TEST(Cluster, EndNodeFaultShrinksSegment) {
  InfiniteHbdCluster cluster(small_config(16, 2));
  cluster.build_rings(16);
  const auto result = cluster.fail_and_bypass(0);  // end of group 0
  EXPECT_TRUE(result.ring_was_member);
  EXPECT_TRUE(result.bypassed);
}

TEST(Cluster, NonMemberFaultNeedsNoBypass) {
  InfiniteHbdCluster cluster(small_config(18, 2));
  cluster.build_rings(16);  // 4 groups of 4; nodes 16,17 wasted
  const auto result = cluster.fail_and_bypass(17);
  EXPECT_FALSE(result.ring_was_member);
  EXPECT_FALSE(result.bypassed);
}

TEST(Cluster, BypassReducesGroupSize) {
  InfiniteHbdCluster cluster(small_config(16, 2));
  cluster.build_rings(16);
  cluster.fail_and_bypass(2);
  const auto& group = cluster.active_plan().allocation.groups[0];
  EXPECT_EQ(group.nodes.size(), 3u);
}

TEST(Cluster, RepairRestoresCapacity) {
  InfiniteHbdCluster cluster(small_config());
  cluster.fail_node(5);
  auto degraded = cluster.build_rings(16);
  EXPECT_LT(degraded.allocation.usable_gpus, 64);
  cluster.repair_node(5);
  auto restored = cluster.build_rings(16);
  EXPECT_EQ(restored.allocation.usable_gpus, 64);
}

TEST(Cluster, ExternalBandwidthReflectsActiveLinks) {
  InfiniteHbdCluster cluster(small_config());
  cluster.build_rings(16);
  // Interior node of a group: fwd + bwd bundles active, 2 trx x 800G each.
  const int interior = cluster.active_plan().allocation.groups[0].nodes[1];
  EXPECT_GT(cluster.hbd_bandwidth_per_gpu_gbps(interior), 0.0);
}

TEST(Cluster, RebuildAfterFaultsMatchesTopologyModel) {
  InfiniteHbdCluster cluster(small_config(20, 3));
  cluster.fail_node(4);
  cluster.fail_node(5);
  const auto plan = cluster.build_rings(16);
  const auto expect = cluster.topology().allocate(cluster.fault_mask(), 16);
  EXPECT_EQ(plan.allocation.usable_gpus, expect.usable_gpus);
  EXPECT_EQ(plan.allocation.wasted_healthy_gpus, expect.wasted_healthy_gpus);
}

TEST(Cluster, SingleNodeGroups) {
  // TP size = one node: every healthy node forms its own loopback ring.
  InfiniteHbdCluster cluster(small_config(16, 2));
  const auto plan = cluster.build_rings(4);
  EXPECT_EQ(plan.allocation.groups.size(), 16u);
  EXPECT_TRUE(plan.links.empty());  // loopback-only rings
}

}  // namespace
}  // namespace ihbd::core
