#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/common/error.h"
#include "src/common/serde.h"
#include "src/ctrl/control_plane.h"
#include "src/ctrl/slo.h"
#include "src/ctrl/workload.h"
#include "src/fault/trace.h"

namespace ihbd::ctrl {
namespace {

// --- SloHistogram -----------------------------------------------------------

TEST(SloHistogram, QuantilesAreBucketUpperBounds) {
  SloHistogram h;
  for (int i = 0; i < 90; ++i) h.observe(1.0);    // bucket upper bound 1.0
  for (int i = 0; i < 9; ++i) h.observe(100.0);   // (64, 128]
  h.observe(100000.0);                            // (65536, 131072]
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 128.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 131072.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 131072.0);
}

TEST(SloHistogram, EmptyAndNaNAndMerge) {
  SloHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  h.observe(std::nan(""));  // dropped, like obs::Histogram
  EXPECT_EQ(h.count(), 0u);
  h.observe(2.0);
  SloHistogram other;
  other.observe(8.0);
  other.observe(8.0);
  h.merge(other);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 18.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 8.0);
}

TEST(SloHistogram, SerdeRoundTripIsExact) {
  SloHistogram h;
  for (double x : {1e-6, 7.5e-5, 7.7e-5, 0.3, 1e4}) h.observe(x);
  serde::Writer w;
  h.save(w);
  auto bytes = w.take();
  serde::Reader r(bytes);
  const auto back = SloHistogram::load(r);
  r.expect_done("slo histogram");
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.sum(), h.sum());  // bit-exact doubles
  for (double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_DOUBLE_EQ(back.quantile(q), h.quantile(q));
}

// --- workload ---------------------------------------------------------------

TEST(Workload, DeterministicAndInBounds) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_day = 50.0;
  cfg.duration_days = 10.0;
  cfg.min_groups = 2;
  cfg.max_groups = 5;
  Rng a(7), b(7);
  const auto w1 = generate_workload(cfg, a);
  const auto w2 = generate_workload(cfg, b);
  ASSERT_EQ(w1.size(), w2.size());
  ASSERT_GT(w1.size(), 300u);  // ~500 expected
  double prev = 0.0;
  for (std::size_t i = 0; i < w1.size(); ++i) {
    EXPECT_EQ(w1[i].day, w2[i].day);
    EXPECT_EQ(w1[i].run_days, w2[i].run_days);
    EXPECT_EQ(w1[i].groups, w2[i].groups);
    EXPECT_EQ(w1[i].id, static_cast<int>(i));
    EXPECT_GE(w1[i].day, prev);
    EXPECT_LT(w1[i].day, 10.0);
    EXPECT_GE(w1[i].groups, 2);
    EXPECT_LE(w1[i].groups, 5);
    EXPECT_GT(w1[i].run_days, 0.0);
    prev = w1[i].day;
  }
}

// --- control plane ----------------------------------------------------------

ControlPlaneConfig small_config() {
  ControlPlaneConfig cfg;
  cfg.node_count = 256;
  cfg.nodes_per_tor = 4;
  cfg.tors_per_domain = 16;
  cfg.k = 2;
  cfg.gpus_per_node = 4;
  cfg.reconfig_batch = 32;
  return cfg;
}

std::vector<JobArrival> small_workload(double duration_days,
                                       double rate = 40.0,
                                       std::uint64_t seed = 5) {
  WorkloadConfig wl;
  wl.arrival_rate_per_day = rate;
  wl.duration_days = duration_days;
  wl.tp_size_gpus = 32;  // m = 8 nodes per group
  wl.min_groups = 1;
  wl.max_groups = 3;
  wl.mean_run_days = 0.05;
  Rng rng(seed);
  return generate_workload(wl, rng);
}

std::string result_bytes(const ControlPlaneResult& r) {
  serde::Writer w;
  r.save(w);
  return w.take();
}

TEST(ControlPlane, FaultFreeRunCompletesEveryJob) {
  const fault::FaultTrace trace(256, 8.0, {});
  const auto arrivals = small_workload(8.0);
  auto result = run_control_plane(small_config(), trace, arrivals);

  EXPECT_EQ(result.arrivals, arrivals.size());
  EXPECT_EQ(result.preemptions, 0u);
  EXPECT_EQ(result.fault_transitions, 0u);
  // Light load on a healthy fleet: everything submitted early finishes;
  // at most the last few arrivals can straddle the horizon.
  EXPECT_GE(result.completions + 5, result.arrivals);
  EXPECT_EQ(result.unfinished, result.arrivals - result.completions);
  EXPECT_GE(result.starts, result.completions);
  EXPECT_GT(result.events, arrivals.size());  // arrivals + drains + ...
  // Every started job steered its nodes through the batched queue.
  EXPECT_GT(result.reconfig_enqueued, 0u);
  EXPECT_EQ(result.reconfig_drained,
            result.reconfig_enqueued);  // queue fully drained
  EXPECT_EQ(result.reconfig_failed, 0u);
  EXPECT_EQ(result.job_wait_s.count(), result.starts);
  // Job wait = drain latency on an idle queue: within a few drain periods.
  EXPECT_LT(result.job_wait_s.quantile(0.99), 16.0);
  EXPECT_GT(result.reconfig_latency_s.count(), 0u);
  // Reconfig latency: batching delay (~1 s drain tick) + 60-80 us switch.
  EXPECT_LT(result.reconfig_latency_s.quantile(0.999), 16.0);
}

TEST(ControlPlane, DeterministicAcrossRuns) {
  const fault::FaultTrace trace(
      256, 6.0, {{3, 1.0, 3.0}, {40, 2.0, 4.0}, {41, 2.5, 5.5}});
  const auto arrivals = small_workload(6.0);
  const auto a = run_control_plane(small_config(), trace, arrivals);
  const auto b = run_control_plane(small_config(), trace, arrivals);
  EXPECT_EQ(result_bytes(a), result_bytes(b));  // byte-identical
}

TEST(ControlPlane, FaultBurstPreemptsAndRecovers) {
  // Kill half the fleet mid-run under near-saturating load: jobs must be
  // preempted (cancelling their completion events), then recover capacity
  // after the repair.
  std::vector<fault::FaultEvent> events;
  for (int n = 0; n < 128; ++n) events.push_back({n, 2.0, 4.0});
  const fault::FaultTrace trace(256, 10.0, events);
  const auto arrivals = small_workload(10.0, /*rate=*/250.0);
  auto cfg = small_config();
  auto result = run_control_plane(cfg, trace, arrivals);

  EXPECT_EQ(result.fault_transitions, 256u);
  EXPECT_GT(result.preemptions, 0u);
  EXPECT_GT(result.placement_churn, 0u);
  EXPECT_GT(result.completions, arrivals.size() / 2);
  // Faults landed while reconfigs were in flight at least once in a while:
  // the queue reports them rather than stalling.
  EXPECT_EQ(result.reconfig_drained, result.reconfig_enqueued);
}

TEST(ControlPlane, CoalescingKicksInUnderChurn) {
  // Tiny drain budget + rapid job turnover: park/steer requests for the
  // same node overlap in the queue and coalesce.
  std::vector<fault::FaultEvent> events;
  for (int n = 0; n < 32; ++n)
    events.push_back({n, 1.0 + 0.05 * n, 1.5 + 0.05 * n});
  const fault::FaultTrace trace(256, 8.0, events);
  const auto arrivals = small_workload(8.0, /*rate=*/150.0);
  auto cfg = small_config();
  cfg.reconfig_batch = 4;
  cfg.drain_period_days = 8.0 / 86400.0;
  auto result = run_control_plane(cfg, trace, arrivals);
  EXPECT_GT(result.reconfig_coalesced, 0u);
  EXPECT_EQ(result.reconfig_drained, result.reconfig_enqueued);
  EXPECT_GT(result.peak_reconfig_depth, 4u);
}

TEST(ControlPlane, RejectsMismatchedTraceAndMixedTp) {
  const fault::FaultTrace trace(128, 4.0, {});
  EXPECT_THROW(run_control_plane(small_config(), trace, small_workload(4.0)),
               ConfigError);
  const fault::FaultTrace ok_trace(256, 4.0, {});
  auto arrivals = small_workload(4.0);
  arrivals[1].tp_size_gpus = 64;
  EXPECT_THROW(run_control_plane(small_config(), ok_trace, arrivals),
               ConfigError);
}

TEST(ControlPlane, DepthCountersAgreeWithFaultyAtUnderNestedIntervals) {
  // Regression for the overlap contract in src/fault/trace.h: the plane's
  // per-node depth counters must reproduce FaultTrace::faulty_at exactly
  // when intervals on one node nest or overlap. Interval endpoints sit off
  // the 0.25-day sampler grid so the probe never races a same-instant
  // fault edge.
  const fault::FaultTrace trace(256, 8.0,
                                {{3, 1.1, 5.3},    // outer
                                 {3, 2.2, 3.7},    // nested: no 1->0 edge
                                 {3, 4.9, 6.1},    // overlaps the outer tail
                                 {7, 2.2, 2.9},
                                 {7, 2.9, 3.3}});  // back-to-back, no gap
  const auto arrivals = small_workload(8.0);
  ControlPlane plane(small_config(), trace, arrivals);
  int probes = 0;
  plane.health_probe = [&](const ControlPlane& p, double day) {
    const auto expect = trace.faulty_at(day);
    for (int n = 0; n < 256; ++n)
      ASSERT_EQ(p.node_faulty(n), static_cast<bool>(expect[n]))
          << "node " << n << " at day " << day;
    ++probes;
  };
  plane.run();
  EXPECT_GE(probes, 30);  // the 0.25-day sampler covered the horizon
}

TEST(ControlPlane, InjectedFailuresRetryToConvergence) {
  // 10% of session switches fail transiently: every run must still
  // complete, retries must converge (nothing left in flight beyond the
  // horizon's pending tail), and the whole thing stays byte-deterministic.
  const fault::FaultTrace trace(
      256, 8.0, {{3, 1.1, 3.0}, {40, 2.0, 4.0}, {41, 2.5, 5.5}});
  const auto arrivals = small_workload(8.0, /*rate=*/120.0);
  auto cfg = small_config();
  cfg.inject.session_failure_rate = 0.10;
  cfg.inject.seed = 17;
  const auto a = run_control_plane(cfg, trace, arrivals);
  const auto b = run_control_plane(cfg, trace, arrivals);
  EXPECT_EQ(result_bytes(a), result_bytes(b));

  EXPECT_GT(a.reconfig_injected, 0u);
  EXPECT_GT(a.reconfig_retried, 0u);
  // Conservation: every enqueued request is either resolved (drained) or
  // still waiting out a backoff at the horizon.
  EXPECT_EQ(a.reconfig_drained + a.reconfig_pending_end, a.reconfig_enqueued);
  // At 10% per attempt with the default 6-attempt budget, dead letters are
  // ~1e-6 likely per request; retried successes land in the retried split.
  EXPECT_GT(a.reconfig_latency_retried_s.count(), 0u);
  // The run makes progress comparable to fault-free despite the injection.
  EXPECT_GT(a.completions, arrivals.size() / 2);
}

TEST(ControlPlane, DeadLettersDegradeJobsInsteadOfStalling) {
  // Brutal injection (every switch fails) with a 2-attempt budget: steers
  // dead-letter, jobs start anyway on their last good placement, and their
  // waits land in the degraded SLO split — the run never stalls.
  const fault::FaultTrace trace(256, 8.0, {});
  const auto arrivals = small_workload(8.0);
  auto cfg = small_config();
  cfg.inject.session_failure_rate = 1.0;
  cfg.inject.seed = 3;
  cfg.retry.max_attempts = 2;
  const auto r = run_control_plane(cfg, trace, arrivals);

  EXPECT_GT(r.reconfig_dead_lettered, 0u);
  EXPECT_GT(r.degraded_starts, 0u);
  EXPECT_EQ(r.job_wait_degraded_s.count(), r.degraded_starts);
  // Degraded or not, the light-load invariant holds: everything submitted
  // early still finishes.
  EXPECT_GE(r.completions + 5, r.arrivals);
  // The two SLO splits partition the starts.
  EXPECT_EQ(r.job_wait_s.count() + r.job_wait_degraded_s.count(), r.starts);
}

TEST(ControlPlane, MergeAndSerdeRoundTrip) {
  const fault::FaultTrace trace(256, 4.0, {{9, 1.0, 2.0}});
  const auto a = run_control_plane(small_config(), trace, small_workload(4.0));
  const auto b =
      run_control_plane(small_config(), trace, small_workload(4.0, 40.0, 9));

  auto merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.arrivals, a.arrivals + b.arrivals);
  EXPECT_EQ(merged.events, a.events + b.events);
  EXPECT_EQ(merged.job_wait_s.count(),
            a.job_wait_s.count() + b.job_wait_s.count());
  EXPECT_EQ(merged.peak_pending_jobs,
            std::max(a.peak_pending_jobs, b.peak_pending_jobs));

  const auto bytes = result_bytes(merged);
  serde::Reader r(bytes);
  const auto back = ControlPlaneResult::load(r);
  r.expect_done("ctrl result");
  EXPECT_EQ(result_bytes(back), bytes);
}

}  // namespace
}  // namespace ihbd::ctrl
