// The plan -> execute -> reduce pipeline and its durability story:
// deterministic planning, in-memory and file-based transports, checkpoint
// rotation/corruption fallback, stale-lease reclaim — and, throughout,
// bit-identity of the sharded result with the plain local engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/common/error.h"
#include "src/common/serde.h"
#include "src/runtime/checkpoint.h"
#include "src/runtime/shard.h"
#include "src/runtime/sweep.h"
#include "src/sweepd/protocol.h"

namespace ihbd::runtime {
namespace {

namespace fs = std::filesystem;

SweepSpec make_spec(int trials = 3, std::uint64_t salt = 0) {
  SweepSpec spec;
  spec.seed = 99;
  spec.trials = trials;
  spec.fingerprint_salt = salt;
  spec.axes = {Axis::of_values("x", {0.5, 1.5, 2.5}),
               Axis::of_labels("mode", {"a", "b"})};
  return spec;
}

double trial_value(const Scenario& s, Rng& rng) {
  return rng.uniform() + s.value(0);
}

/// Reference: the plain local engine (no ambient context).
SweepResult local_reference(const SweepSpec& spec) {
  return run_sweep(spec, trial_value, /*threads=*/2);
}

void expect_bit_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].count(), b.cells[i].count()) << "cell " << i;
    EXPECT_EQ(a.cells[i].mean(), b.cells[i].mean()) << "cell " << i;
    EXPECT_EQ(a.cells[i].variance(), b.cells[i].variance()) << "cell " << i;
    EXPECT_EQ(a.cells[i].min(), b.cells[i].min()) << "cell " << i;
    EXPECT_EQ(a.cells[i].max(), b.cells[i].max()) << "cell " << i;
    EXPECT_EQ(a.cells[i].samples(), b.cells[i].samples()) << "cell " << i;
  }
}

/// Installs an ambient context for one scope, always restoring on exit so a
/// failing test cannot leak sharding into later tests.
struct AmbientContext {
  explicit AmbientContext(shard::ShardContext* ctx) { shard::set_context(ctx); }
  ~AmbientContext() { shard::set_context(nullptr); }
};

/// Minimal single-process transport: claims every shard itself, keeps
/// results in memory, optionally checkpoints under a directory.
class MemoryShardContext final : public shard::ShardContext {
 public:
  explicit MemoryShardContext(shard::PlanPolicy policy,
                              std::string ckpt_dir = "")
      : policy_(policy), ckpt_dir_(std::move(ckpt_dir)) {}

  shard::PlanPolicy policy() const override { return policy_; }
  void begin_sweep(const shard::ShardPlan& plan) override {
    claimed_.assign(plan.shards.size(), false);
    results_.assign(plan.shards.size(), std::nullopt);
  }
  bool executes() const override { return true; }
  std::optional<std::size_t> claim() override {
    for (std::size_t i = 0; i < claimed_.size(); ++i) {
      if (!claimed_[i]) {
        claimed_[i] = true;
        return i;
      }
    }
    return std::nullopt;
  }
  std::string checkpoint_path(std::size_t shard) const override {
    if (ckpt_dir_.empty()) return "";
    return ckpt_dir_ + "/s" + std::to_string(shard) + ".ckpt";
  }
  void publish_result(std::size_t shard, std::string payload) override {
    results_[shard] = std::move(payload);
  }
  std::optional<std::vector<std::string>> try_collect() override {
    std::vector<std::string> all;
    for (const auto& r : results_) {
      if (!r.has_value()) return std::nullopt;
      all.push_back(*r);
    }
    return all;
  }
  void poll_wait() override {
    // Single participant: if execution didn't fill every result, waiting
    // can never help.
    throw ConfigError("MemoryShardContext: wait would deadlock");
  }
  void end_sweep() override {}

 private:
  shard::PlanPolicy policy_;
  std::string ckpt_dir_;
  std::vector<bool> claimed_;
  std::vector<std::optional<std::string>> results_;
};

// --- planner ----------------------------------------------------------------

TEST(ShardPlan, DeterministicBalancedTiling) {
  const SweepSpec spec = make_spec();  // 6 cells
  const shard::ShardPlan plan =
      shard::plan_shards(spec, {.max_shards = 4, .split_trials = false});
  ASSERT_EQ(plan.shards.size(), 4u);
  EXPECT_EQ(plan.cell_count, 6u);
  EXPECT_EQ(plan.trials, 3);

  // Contiguous, in order, balanced to within one cell, covering everything.
  std::size_t next_cell = 0;
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    const shard::ShardSpec& sh = plan.shards[i];
    EXPECT_EQ(sh.index, i);
    EXPECT_EQ(sh.cell_begin, next_cell);
    next_cell = sh.cell_end;
    EXPECT_GE(sh.cells(), 1u);
    EXPECT_LE(sh.cells(), 2u);
    EXPECT_EQ(sh.trial_begin, 0);
    EXPECT_EQ(sh.trial_end, 3);
  }
  EXPECT_EQ(next_cell, plan.cell_count);

  // Same spec + policy -> the identical plan, including ids, in any process.
  const shard::ShardPlan again =
      shard::plan_shards(spec, {.max_shards = 4, .split_trials = false});
  EXPECT_EQ(again.plan_hash, plan.plan_hash);
  for (std::size_t i = 0; i < plan.shards.size(); ++i)
    EXPECT_EQ(again.shards[i].id, plan.shards[i].id);
}

TEST(ShardPlan, NeverSplitsFinerThanOneCell) {
  const shard::ShardPlan plan = shard::plan_shards(make_spec(),
                                                   {.max_shards = 100});
  EXPECT_EQ(plan.shards.size(), 6u);  // 6 cells, whole-cell granularity
}

TEST(ShardPlan, TrialSplitCoversTrialRanges) {
  SweepSpec spec = make_spec(/*trials=*/8);
  spec.axes = {Axis::of_values("x", {1.0})};  // one cell
  const shard::ShardPlan plan =
      shard::plan_shards(spec, {.max_shards = 4, .split_trials = true});
  ASSERT_EQ(plan.shards.size(), 4u);
  int next_trial = 0;
  for (const shard::ShardSpec& sh : plan.shards) {
    EXPECT_EQ(sh.cells(), 1u);
    EXPECT_EQ(sh.trial_begin, next_trial);
    next_trial = sh.trial_end;
    EXPECT_EQ(sh.trials(), 2);
  }
  EXPECT_EQ(next_trial, 8);
}

TEST(ShardPlan, IdentityRespondsToSpecAndPolicy) {
  const std::uint64_t base = shard::spec_fingerprint(make_spec());
  EXPECT_EQ(shard::spec_fingerprint(make_spec()), base);
  EXPECT_NE(shard::spec_fingerprint(make_spec(4)), base);  // trials differ
  EXPECT_NE(shard::spec_fingerprint(make_spec(3, 7)), base);  // salt differs
  SweepSpec other_seed = make_spec();
  other_seed.seed = 100;
  EXPECT_NE(shard::spec_fingerprint(other_seed), base);
  SweepSpec other_values = make_spec();
  other_values.axes[0] = Axis::of_values("x", {0.5, 1.5, 2.6});
  EXPECT_NE(shard::spec_fingerprint(other_values), base);

  // The policy folds into the plan hash but not the spec hash.
  const auto p4 = shard::plan_shards(make_spec(), {.max_shards = 4});
  const auto p2 = shard::plan_shards(make_spec(), {.max_shards = 2});
  EXPECT_EQ(p4.spec_hash, p2.spec_hash);
  EXPECT_NE(p4.plan_hash, p2.plan_hash);

  EXPECT_THROW(shard::plan_shards(make_spec(), {.max_shards = 0}),
               ConfigError);
  EXPECT_EQ(shard::shard_id_hex(0xABCDull).size(), 16u);
}

// --- pipeline vs local engine ----------------------------------------------

TEST(ShardPipeline, ShardedScalarSweepIsBitIdenticalToLocal) {
  const SweepSpec spec = make_spec(/*trials=*/5);
  const SweepResult ref = local_reference(spec);

  for (const std::size_t max_shards : {1u, 2u, 5u, 16u}) {
    MemoryShardContext ctx({.max_shards = max_shards});
    AmbientContext ambient(&ctx);
    const SweepResult sharded = run_sweep(spec, trial_value, /*threads=*/2);
    expect_bit_identical(ref, sharded);
  }
}

TEST(ShardPipeline, TrialSplitIsExactInCountMinMaxSamples) {
  SweepSpec spec = make_spec(/*trials=*/8);
  spec.axes = {Axis::of_values("x", {1.0})};
  const SweepResult ref = local_reference(spec);

  MemoryShardContext ctx({.max_shards = 4, .split_trials = true});
  AmbientContext ambient(&ctx);
  const SweepResult sharded = run_sweep(spec, trial_value, /*threads=*/2);

  ASSERT_EQ(sharded.cells.size(), 1u);
  const Accumulator &a = ref.cells[0], &b = sharded.cells[0];
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.samples(), b.samples());  // concatenated in trial order
  // Chan's moment merge is associative only up to FP rounding.
  EXPECT_NEAR(a.mean(), b.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), b.variance(), 1e-12);
}

TEST(ShardPipeline, ReduceRejectsIncompleteCoverage) {
  const SweepSpec spec = make_spec();
  const shard::ShardPlan plan = shard::plan_shards(spec, {.max_shards = 2});

  std::vector<std::string> too_few(1, std::string());
  std::vector<Accumulator> cells(spec.cell_count());
  EXPECT_THROW(detail::reduce_shard_payloads(plan, too_few,
                                             shard::accumulator_codec(),
                                             cells),
               ConfigError);

  // A payload claiming the wrong shard id must be rejected.
  shard::ShardPayload bogus;
  bogus.plan_hash = plan.plan_hash;
  bogus.shard_id = plan.shards[0].id + 1;
  bogus.shard_index = 0;
  std::vector<std::string> wrong_id = {shard::encode_shard_payload(bogus),
                                       std::string()};
  EXPECT_THROW(detail::reduce_shard_payloads(plan, wrong_id,
                                             shard::accumulator_codec(),
                                             cells),
               ConfigError);
}

// --- checkpoint durability --------------------------------------------------

TEST(Checkpoint, WriteRotatesGenerationsAndLoadsFallBack) {
  const std::string dir = ::testing::TempDir() + "/ckpt_rotate";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/s.ckpt";

  ASSERT_TRUE(checkpoint::write(path, "gen-one"));
  ASSERT_TRUE(checkpoint::write(path, "gen-two"));

  EXPECT_EQ(checkpoint::load_file(path).payload, "gen-two");
  EXPECT_EQ(checkpoint::load_file(path + ".1").payload, "gen-one");

  // Corrupt the newest generation: fallback recovers the previous one and
  // reports what it saw.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }
  EXPECT_EQ(checkpoint::load_file(path).status,
            checkpoint::LoadStatus::bad_checksum);
  const checkpoint::Recovered rec = checkpoint::load_with_fallback(path);
  EXPECT_TRUE(rec.valid);
  EXPECT_EQ(rec.generation, 1);
  EXPECT_EQ(rec.payload, "gen-one");
  EXPECT_EQ(rec.primary, checkpoint::LoadStatus::bad_checksum);

  // Truncation and wrong file kind are typed distinctly.
  fs::resize_file(path, 5);
  EXPECT_EQ(checkpoint::load_file(path).status,
            checkpoint::LoadStatus::truncated);
  ASSERT_TRUE(serde::write_file_atomic(path, std::string(64, 'x')));
  EXPECT_EQ(checkpoint::load_file(path).status,
            checkpoint::LoadStatus::bad_magic);
  fs::remove(path);
  fs::remove(path + ".1");
  EXPECT_EQ(checkpoint::load_file(path).status, checkpoint::LoadStatus::missing);
  EXPECT_FALSE(checkpoint::load_with_fallback(path).valid);
}

TEST(Checkpoint, ResumeSkipsCheckpointedCellsAndStaysBitIdentical) {
  const SweepSpec spec = make_spec(/*trials=*/4);  // 6 cells, 1 shard below
  const SweepResult ref = local_reference(spec);

  const std::string dir = ::testing::TempDir() + "/ckpt_resume";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Craft a mid-shard checkpoint holding the first 2 cells, exactly as a
  // killed worker would have left it.
  const shard::ShardPlan plan = shard::plan_shards(spec, {.max_shards = 1});
  shard::ShardPayload partial;
  partial.plan_hash = plan.plan_hash;
  partial.shard_id = plan.shards[0].id;
  partial.shard_index = 0;
  for (std::size_t cell = 0; cell < 2; ++cell) {
    shard::ShardPayloadEntry e;
    e.cell = cell;
    e.trial_begin = 0;
    e.trial_end = spec.trials;
    serde::Writer w;
    shard::accumulator_codec().save(w, ref.cells[cell]);
    e.acc_bytes = w.take();
    partial.entries.push_back(std::move(e));
  }
  MemoryShardContext ctx({.max_shards = 1}, dir);
  ASSERT_TRUE(checkpoint::write(ctx.checkpoint_path(0),
                                shard::encode_shard_payload(partial)));

  // Count fresh executions: resumed cells must not re-run their trials.
  std::atomic<int> trial_calls{0};
  const auto counting_trial = [&](const Scenario& s, Rng& rng) {
    trial_calls.fetch_add(1);
    return trial_value(s, rng);
  };
  AmbientContext ambient(&ctx);
  const SweepResult resumed = run_sweep(spec, counting_trial, /*threads=*/1);
  expect_bit_identical(ref, resumed);
  EXPECT_EQ(trial_calls.load(), 4 * (6 - 2));  // only the 4 pending cells
}

TEST(Checkpoint, CorruptPrimaryFallsBackToPreviousGenerationBitIdentical) {
  const SweepSpec spec = make_spec(/*trials=*/3);
  const SweepResult ref = local_reference(spec);

  const std::string dir = ::testing::TempDir() + "/ckpt_corrupt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  MemoryShardContext seed_ctx({.max_shards = 1}, dir);
  {
    // A full run with checkpoint_every=1 leaves the two newest generations
    // behind (5 and 6 completed cells).
    AmbientContext ambient(&seed_ctx);
    const SweepResult first = run_sweep(spec, trial_value, /*threads=*/1);
    expect_bit_identical(ref, first);
  }
  const std::string path = seed_ctx.checkpoint_path(0);
  ASSERT_TRUE(fs::exists(path));
  ASSERT_TRUE(fs::exists(path + ".1"));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }

  std::atomic<int> trial_calls{0};
  const auto counting_trial = [&](const Scenario& s, Rng& rng) {
    trial_calls.fetch_add(1);
    return trial_value(s, rng);
  };
  MemoryShardContext ctx({.max_shards = 1}, dir);
  AmbientContext ambient(&ctx);
  const SweepResult resumed = run_sweep(spec, counting_trial, /*threads=*/1);
  expect_bit_identical(ref, resumed);
  // The fallback generation held all but the last completed cell, so only
  // the one missing cell re-ran.
  EXPECT_EQ(trial_calls.load(), 3 * 1);
}

// --- file-based transport (src/sweepd) --------------------------------------

sweepd::FileShardOptions file_opts(const std::string& dir,
                                   const std::string& owner) {
  sweepd::FileShardOptions o;
  o.dir = dir;
  o.owner = owner;
  o.max_shards = 3;
  o.lease_timeout_s = 5.0;
  o.poll_interval_s = 0.01;
  return o;
}

TEST(FileShard, SweepThroughRunDirIsBitIdenticalAndResultsAreReused) {
  const SweepSpec spec = make_spec(/*trials=*/4);
  const SweepResult ref = local_reference(spec);
  const std::string dir = ::testing::TempDir() + "/fileshard_basic";
  fs::remove_all(dir);

  {
    sweepd::FileShardContext ctx(file_opts(dir, "w1"));
    AmbientContext ambient(&ctx);
    expect_bit_identical(ref, run_sweep(spec, trial_value, /*threads=*/2));
  }

  // A second participant joining the finished run dir must not execute
  // anything — every shard already has a published result to collect.
  std::atomic<int> trial_calls{0};
  const auto counting_trial = [&](const Scenario& s, Rng& rng) {
    trial_calls.fetch_add(1);
    return trial_value(s, rng);
  };
  sweepd::FileShardContext ctx2(file_opts(dir, "w2"));
  AmbientContext ambient(&ctx2);
  expect_bit_identical(ref, run_sweep(spec, counting_trial, /*threads=*/2));
  EXPECT_EQ(trial_calls.load(), 0);
}

TEST(FileShard, ManifestPinsShardCountForLateJoiners) {
  const std::string dir = ::testing::TempDir() + "/fileshard_manifest";
  fs::remove_all(dir);
  sweepd::FileShardContext first(file_opts(dir, "w1"));  // max_shards=3
  auto other = file_opts(dir, "w2");
  other.max_shards = 7;  // CLI mismatch: manifest must win
  sweepd::FileShardContext second(other);
  EXPECT_EQ(second.policy().max_shards, 3u);
  EXPECT_EQ(second.options().max_shards, 3u);
}

TEST(FileShard, StaleLeaseIsReclaimedFreshLeaseIsNot) {
  const SweepSpec spec = make_spec();
  const std::string dir = ::testing::TempDir() + "/fileshard_lease";
  fs::remove_all(dir);

  sweepd::FileShardContext ctx(file_opts(dir, "rescuer"));
  const shard::ShardPlan plan = shard::plan_shards(spec, ctx.policy());
  ctx.begin_sweep(plan);

  // Manufacture a dead owner's lease for shard 0: correct file name, mtime
  // far in the past.
  const fs::path sweep_dir =
      fs::path(dir) / ("sweep-000-" + shard::shard_id_hex(plan.plan_hash));
  const fs::path lease0 =
      sweep_dir /
      ("s0000-" + shard::shard_id_hex(plan.shards[0].id) + ".lease");
  {
    std::ofstream out(lease0);
    out << "deadworker\n";
  }
  fs::last_write_time(lease0,
                      fs::file_time_type::clock::now() - std::chrono::hours(1));

  // ...and a live owner's lease for shard 1 (fresh mtime): must be skipped.
  const fs::path lease1 =
      sweep_dir /
      ("s0001-" + shard::shard_id_hex(plan.shards[1].id) + ".lease");
  {
    std::ofstream out(lease1);
    out << "liveworker\n";
  }

  const auto first = ctx.claim();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 0u);  // reclaimed the stale lease
  // Without releasing shard 0 (its lease is now fresh — ours), the next
  // claim must skip both held leases and take shard 2.
  const auto second = ctx.claim();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2u);  // shard 1's fresh lease was respected
  ctx.release(*first);
  ctx.release(*second);
  ctx.end_sweep();
}

TEST(FileShard, InvalidResultFileIsDiscardedAndBecomesClaimable) {
  const SweepSpec spec = make_spec();
  const std::string dir = ::testing::TempDir() + "/fileshard_badresult";
  fs::remove_all(dir);

  sweepd::FileShardContext ctx(file_opts(dir, "w1"));
  const shard::ShardPlan plan = shard::plan_shards(spec, ctx.policy());
  ctx.begin_sweep(plan);

  const fs::path sweep_dir =
      fs::path(dir) / ("sweep-000-" + shard::shard_id_hex(plan.plan_hash));
  const fs::path result0 =
      sweep_dir /
      ("s0000-" + shard::shard_id_hex(plan.shards[0].id) + ".result");
  {
    std::ofstream out(result0, std::ios::binary);
    out << "garbage, not a frame";
  }
  EXPECT_FALSE(ctx.try_collect().has_value());
  EXPECT_FALSE(fs::exists(result0));  // deleted -> claimable again
  const auto claimed = ctx.claim();
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(*claimed, 0u);
  ctx.release(*claimed);
  ctx.end_sweep();
}

}  // namespace
}  // namespace ihbd::runtime
