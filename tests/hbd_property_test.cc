// Property-based invariants that must hold for EVERY HBD architecture,
// TP size and fault pattern. Parameterized sweeps (TEST_P) over the §6.1
// architecture set cross TP in {8,16,32,64} cross fault ratios.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "src/fault/trace.h"
#include "src/topo/baselines.h"
#include "src/topo/khop_ring.h"

namespace ihbd::topo {
namespace {

constexpr int kNodes = 288;  // 1,152 GPUs; divisible by 36/72/576-GPU islands
constexpr int kGpusPerNode = 4;

enum class Arch { kK2, kK3, kBigSwitch, kTpuV4, kNvl36, kNvl72, kNvl576, kSip };

std::unique_ptr<HbdArchitecture> make(Arch which) {
  switch (which) {
    case Arch::kK2: return std::make_unique<KHopRing>(kNodes, kGpusPerNode, 2);
    case Arch::kK3: return std::make_unique<KHopRing>(kNodes, kGpusPerNode, 3);
    case Arch::kBigSwitch:
      return std::make_unique<BigSwitch>(kNodes, kGpusPerNode);
    case Arch::kTpuV4:
      return std::make_unique<TpuV4>(kNodes, kGpusPerNode, 64);
    case Arch::kNvl36:
      return std::make_unique<NvlSwitch>(kNodes, kGpusPerNode, 36);
    case Arch::kNvl72:
      return std::make_unique<NvlSwitch>(kNodes, kGpusPerNode, 72);
    case Arch::kNvl576:
      return std::make_unique<NvlSwitch>(kNodes, kGpusPerNode, 576);
    case Arch::kSip: return std::make_unique<SipRing>(kNodes, kGpusPerNode);
  }
  return nullptr;
}

using Case = std::tuple<Arch, int, double>;  // arch, tp, fault ratio

class HbdInvariant : public ::testing::TestWithParam<Case> {
 protected:
  void SetUp() override {
    arch_ = make(std::get<0>(GetParam()));
    tp_ = std::get<1>(GetParam());
    ratio_ = std::get<2>(GetParam());
  }
  std::unique_ptr<HbdArchitecture> arch_;
  int tp_ = 0;
  double ratio_ = 0.0;
};

TEST_P(HbdInvariant, GpuAccountingConserved) {
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const auto mask = fault::sample_fault_mask(kNodes, ratio_, rng);
    const auto alloc = arch_->allocate(mask, tp_);
    EXPECT_EQ(alloc.total_gpus, kNodes * kGpusPerNode);
    EXPECT_EQ(alloc.usable_gpus + alloc.wasted_healthy_gpus +
                  alloc.faulty_gpus,
              alloc.total_gpus)
        << arch_->name();
    EXPECT_GE(alloc.usable_gpus, 0);
    EXPECT_GE(alloc.wasted_healthy_gpus, 0);
  }
}

TEST_P(HbdInvariant, GroupsAreExactHealthyAndDisjoint) {
  Rng rng(77);
  const auto mask = fault::sample_fault_mask(kNodes, ratio_, rng);
  const auto alloc = arch_->allocate(mask, tp_);
  const int m = tp_ / kGpusPerNode;
  std::set<int> seen;
  for (const auto& g : alloc.groups) {
    EXPECT_EQ(static_cast<int>(g.nodes.size()), m) << arch_->name();
    for (int node : g.nodes) {
      EXPECT_FALSE(mask[static_cast<std::size_t>(node)]) << arch_->name();
      EXPECT_TRUE(seen.insert(node).second)
          << arch_->name() << " reused node " << node;
    }
  }
  EXPECT_EQ(static_cast<int>(alloc.groups.size()) * tp_, alloc.usable_gpus);
}

TEST_P(HbdInvariant, UsableNeverBeatsIdeal) {
  // No architecture can place more than the ideal Big-Switch.
  Rng rng(99);
  BigSwitch ideal(kNodes, kGpusPerNode);
  for (int trial = 0; trial < 10; ++trial) {
    const auto mask = fault::sample_fault_mask(kNodes, ratio_, rng);
    EXPECT_LE(arch_->allocate(mask, tp_).usable_gpus,
              ideal.allocate(mask, tp_).usable_gpus)
        << arch_->name();
  }
}

TEST_P(HbdInvariant, MoreFaultsNeverHelp) {
  // Adding one fault to a mask cannot increase usable GPUs.
  Rng rng(5);
  auto mask = fault::sample_fault_mask(kNodes, ratio_, rng);
  const int before = arch_->allocate(mask, tp_).usable_gpus;
  // Fail the first healthy node.
  for (int i = 0; i < kNodes; ++i) {
    if (!mask[static_cast<std::size_t>(i)]) {
      mask[static_cast<std::size_t>(i)] = true;
      break;
    }
  }
  EXPECT_LE(arch_->allocate(mask, tp_).usable_gpus, before) << arch_->name();
}

TEST_P(HbdInvariant, ZeroFaultsZeroFaultyGpus) {
  std::vector<bool> clean(kNodes, false);
  const auto alloc = arch_->allocate(clean, tp_);
  EXPECT_EQ(alloc.faulty_gpus, 0);
  if (alloc.usable_gpus > 0) {
    // Structural fragmentation only - strictly below total.
    EXPECT_LT(alloc.waste_ratio(), 1.0);
  } else {
    // TP larger than the architecture's island (NVL-36 at TP-64): the
    // entire healthy cluster is unusable for this job shape.
    EXPECT_DOUBLE_EQ(alloc.waste_ratio(), 1.0);
  }
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  static const char* names[] = {"K2",    "K3",    "BigSwitch", "TPUv4",
                                "NVL36", "NVL72", "NVL576",    "SiP"};
  return std::string(names[static_cast<int>(std::get<0>(info.param))]) +
         "_TP" + std::to_string(std::get<1>(info.param)) + "_F" +
         std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HbdInvariant,
    ::testing::Combine(
        ::testing::Values(Arch::kK2, Arch::kK3, Arch::kBigSwitch,
                          Arch::kTpuV4, Arch::kNvl36, Arch::kNvl72,
                          Arch::kNvl576, Arch::kSip),
        ::testing::Values(8, 16, 32, 64),
        ::testing::Values(0.0, 0.02, 0.08)),
    case_name);

// KHopRing-specific structural invariants.
class KHopStructure : public ::testing::TestWithParam<int> {};

TEST_P(KHopStructure, GroupMembersAreKReachable) {
  const int k = GetParam();
  KHopRing ring(kNodes, kGpusPerNode, k);
  Rng rng(404 + k);
  for (double ratio : {0.01, 0.05, 0.12}) {
    const auto mask = fault::sample_fault_mask(kNodes, ratio, rng);
    const auto alloc = ring.allocate(mask, 32);
    for (const auto& g : alloc.groups) {
      for (std::size_t i = 0; i + 1 < g.nodes.size(); ++i) {
        EXPECT_LE(ring.hop_distance(g.nodes[i], g.nodes[i + 1]), k)
            << "K=" << k;
      }
    }
  }
}

TEST_P(KHopStructure, ArcsPartitionHealthyNodes) {
  const int k = GetParam();
  KHopRing ring(kNodes, kGpusPerNode, k);
  Rng rng(500 + k);
  const auto mask = fault::sample_fault_mask(kNodes, 0.10, rng);
  std::set<int> covered;
  for (const auto& arc : ring.healthy_arcs(mask)) {
    for (int node : arc.nodes) {
      EXPECT_FALSE(mask[static_cast<std::size_t>(node)]);
      EXPECT_TRUE(covered.insert(node).second) << "node in two arcs";
    }
  }
  const auto healthy = static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), false));
  EXPECT_EQ(covered.size(), healthy);
}

TEST_P(KHopStructure, LargerKNeverWastesMore) {
  const int k = GetParam();
  if (k >= 4) return;
  KHopRing smaller(kNodes, kGpusPerNode, k);
  KHopRing larger(kNodes, kGpusPerNode, k + 1);
  Rng rng(600 + k);
  for (int trial = 0; trial < 30; ++trial) {
    const auto mask = fault::sample_fault_mask(kNodes, 0.08, rng);
    EXPECT_LE(larger.allocate(mask, 32).wasted_healthy_gpus,
              smaller.allocate(mask, 32).wasted_healthy_gpus)
        << "K=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, KHopStructure, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace ihbd::topo
