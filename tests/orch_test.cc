#include <gtest/gtest.h>

#include <set>

#include "src/common/error.h"
#include "src/fault/trace.h"
#include "src/orch/orchestrator.h"

namespace ihbd::orch {
namespace {

dcn::FatTree test_tree(int nodes = 1024, int p = 4, int tors_per_domain = 32) {
  dcn::FatTreeConfig cfg;
  cfg.node_count = nodes;
  cfg.nodes_per_tor = p;
  cfg.tors_per_domain = tors_per_domain;
  return dcn::FatTree(cfg);
}

TEST(Deployment, InterleavesSublines) {
  // Algorithm 3 on 8 nodes, p=2: sub-line 0 = {0,2,4,6}, sub-line 1 =
  // {1,3,5,7}, concatenated.
  const auto order = deployment_order(8, 2);
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(Deployment, CoversEveryNodeOnce) {
  const auto order = deployment_order(64, 4);
  std::set<int> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 64u);
}

TEST(DcnFree, GroupsHealthyRuns) {
  // 10 nodes in order, node 3 faulty, K=2, m=3: component {0,1,2,4,5,6,7,
  // 8,9} bridges the gap -> 3 groups.
  std::vector<int> order(10);
  for (int i = 0; i < 10; ++i) order[i] = i;
  std::vector<bool> faulty(10, false);
  faulty[3] = true;
  const auto groups = orchestrate_dcn_free(order, 2, faulty, 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].nodes, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(groups[1].nodes, (std::vector<int>{4, 5, 6}));
}

TEST(DcnFree, BreakpointSplitsComponents) {
  std::vector<int> order(10);
  for (int i = 0; i < 10; ++i) order[i] = i;
  std::vector<bool> faulty(10, false);
  faulty[4] = faulty[5] = true;  // gap of 2 > K-1 for K=2
  const auto groups = orchestrate_dcn_free(order, 2, faulty, 4);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].nodes, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(groups[1].nodes, (std::vector<int>{6, 7, 8, 9}));
}

TEST(DcnFree, RespectsCustomOrder) {
  // Deploy order is not physical order: groups follow the given order.
  std::vector<int> order{0, 4, 8, 12};
  std::vector<bool> faulty(16, false);
  const auto groups = orchestrate_dcn_free(order, 2, faulty, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].nodes, (std::vector<int>{0, 4}));
  EXPECT_EQ(groups[1].nodes, (std::vector<int>{8, 12}));
}

TEST(Orchestrator, FullConstraintsAlignedWhenHealthy) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  std::vector<bool> faulty(1024, false);
  JobSpec job;
  job.tp_size_gpus = 32;  // m = 8 = chunk length
  job.gpu_count = 3600;
  const auto placement = orch.place(faulty, job, orch.max_constraints());
  // Every group carved from a chunk carries deployment coordinates.
  for (const auto& g : placement.groups) {
    EXPECT_GE(g.subline, 0);
    EXPECT_GE(g.domain, 0);
    EXPECT_EQ(g.group.nodes.size(), 8u);
  }
  EXPECT_EQ(placement.gpu_count(4), 1024 * 4);
}

TEST(Orchestrator, ZeroConstraintsIsPureDcnFree) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  std::vector<bool> faulty(1024, false);
  JobSpec job{32, 2048};
  const auto placement = orch.place(faulty, job, 0);
  for (const auto& g : placement.groups) EXPECT_EQ(g.pos, -1);
}

TEST(Orchestrator, CapacityMonotoneInConstraints) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  Rng rng(3);
  const auto mask = fault::sample_fault_mask(1024, 0.06, rng);
  JobSpec job{32, 0};
  int prev = 1 << 30;
  for (int c : {0, 8, 16, 32, orch.max_constraints()}) {
    const int cap = orch.place(mask, job, c).gpu_count(4);
    EXPECT_LE(cap, prev) << "constraints " << c;
    prev = cap;
  }
}

TEST(Orchestrator, AlignmentExpandsFaultsToToR) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  std::vector<bool> faulty(1024, false);
  faulty[0] = true;  // domain 0, ToR 0
  JobSpec job{32, 0};
  const int full = orch.max_constraints();
  const auto aligned = orch.place(faulty, job, full);
  const auto carved_only =
      orch.place(faulty, job, full - ft.domain_count());
  // Alignment wastes the whole ToR (p=4 nodes) instead of one node.
  EXPECT_LT(aligned.gpu_count(4), carved_only.gpu_count(4));
  // Node 1 (same ToR) must be absent from the aligned placement.
  for (const auto& g : aligned.groups)
    for (int node : g.group.nodes) EXPECT_NE(node, 1);
}

TEST(Orchestrator, BinarySearchSatisfiesJob) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  Rng rng(5);
  const auto mask = fault::sample_fault_mask(1024, 0.05, rng);
  JobSpec job{32, 3300};
  const auto placement = orch.orchestrate(mask, job);
  EXPECT_GE(placement.gpu_count(4), 3300);
}

TEST(Orchestrator, ThrowsWhenInfeasible) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  std::vector<bool> faulty(1024, true);  // everything down
  JobSpec job{32, 512};
  EXPECT_THROW(orch.orchestrate(faulty, job), InfeasibleError);
}

TEST(Orchestrator, PlacedNodesAreHealthyAndUnique) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  Rng rng(7);
  const auto mask = fault::sample_fault_mask(1024, 0.08, rng);
  JobSpec job{32, 2048};
  const auto placement = orch.orchestrate(mask, job);
  std::set<int> seen;
  for (const auto& g : placement.groups) {
    for (int node : g.group.nodes) {
      EXPECT_FALSE(mask[static_cast<std::size_t>(node)]);
      EXPECT_TRUE(seen.insert(node).second) << "node reused: " << node;
    }
  }
}

TEST(Greedy, ProducesFeasiblePlacement) {
  const auto ft = test_tree();
  Rng rng(9);
  const auto mask = fault::sample_fault_mask(1024, 0.05, rng);
  JobSpec job{32, 2800};
  const auto placement = greedy_baseline(ft, 2, 4, mask, job, rng);
  EXPECT_GE(placement.gpu_count(4), 2800);
  for (const auto& g : placement.groups) EXPECT_EQ(g.group.nodes.size(), 8u);
}

TEST(Greedy, RandomizesGroupOrder) {
  const auto ft = test_tree();
  Rng rng_a(1), rng_b(2);
  std::vector<bool> faulty(1024, false);
  JobSpec job{32, 4096};
  const auto a = greedy_baseline(ft, 2, 4, faulty, job, rng_a);
  const auto b = greedy_baseline(ft, 2, 4, faulty, job, rng_b);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.groups.size(); ++i)
    if (a.groups[i].group.nodes != b.groups[i].group.nodes) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(EndToEnd, OptimizedBeatsGreedyOnCrossToR) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  Rng rng(11);
  const auto mask = fault::sample_fault_mask(1024, 0.04, rng);
  JobSpec job{32, static_cast<int>(1024 * 4 * 0.8)};

  const auto optimized = orch.orchestrate(mask, job);
  const auto greedy = greedy_baseline(ft, 2, 4, mask, job, rng);
  const int use = job.gpu_count / job.tp_size_gpus;
  const auto opt_stats = dcn::evaluate_cross_tor(ft, optimized, 4, {}, use);
  const auto greedy_stats = dcn::evaluate_cross_tor(ft, greedy, 4, {}, use);
  EXPECT_LT(opt_stats.cross_tor_rate(), greedy_stats.cross_tor_rate() * 0.5);
  EXPECT_NEAR(greedy_stats.cross_tor_rate(), 0.10, 0.035);
}

}  // namespace
}  // namespace ihbd::orch
