#include <gtest/gtest.h>

#include <set>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/fault/trace.h"
#include "src/orch/incremental.h"
#include "src/orch/orchestrator.h"

namespace ihbd::orch {
namespace {

dcn::FatTree test_tree(int nodes = 1024, int p = 4, int tors_per_domain = 32) {
  dcn::FatTreeConfig cfg;
  cfg.node_count = nodes;
  cfg.nodes_per_tor = p;
  cfg.tors_per_domain = tors_per_domain;
  return dcn::FatTree(cfg);
}

TEST(Deployment, InterleavesSublines) {
  // Algorithm 3 on 8 nodes, p=2: sub-line 0 = {0,2,4,6}, sub-line 1 =
  // {1,3,5,7}, concatenated.
  const auto order = deployment_order(8, 2);
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 1, 3, 5, 7}));
}

TEST(Deployment, CoversEveryNodeOnce) {
  const auto order = deployment_order(64, 4);
  std::set<int> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 64u);
}

TEST(DcnFree, GroupsHealthyRuns) {
  // 10 nodes in order, node 3 faulty, K=2, m=3: component {0,1,2,4,5,6,7,
  // 8,9} bridges the gap -> 3 groups.
  std::vector<int> order(10);
  for (int i = 0; i < 10; ++i) order[i] = i;
  std::vector<bool> faulty(10, false);
  faulty[3] = true;
  const auto groups = orchestrate_dcn_free(order, 2, faulty, 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].nodes, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(groups[1].nodes, (std::vector<int>{4, 5, 6}));
}

TEST(DcnFree, BreakpointSplitsComponents) {
  std::vector<int> order(10);
  for (int i = 0; i < 10; ++i) order[i] = i;
  std::vector<bool> faulty(10, false);
  faulty[4] = faulty[5] = true;  // gap of 2 > K-1 for K=2
  const auto groups = orchestrate_dcn_free(order, 2, faulty, 4);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].nodes, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(groups[1].nodes, (std::vector<int>{6, 7, 8, 9}));
}

TEST(DcnFree, RespectsCustomOrder) {
  // Deploy order is not physical order: groups follow the given order.
  std::vector<int> order{0, 4, 8, 12};
  std::vector<bool> faulty(16, false);
  const auto groups = orchestrate_dcn_free(order, 2, faulty, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].nodes, (std::vector<int>{0, 4}));
  EXPECT_EQ(groups[1].nodes, (std::vector<int>{8, 12}));
}

TEST(Orchestrator, FullConstraintsAlignedWhenHealthy) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  std::vector<bool> faulty(1024, false);
  JobSpec job;
  job.tp_size_gpus = 32;  // m = 8 = chunk length
  job.gpu_count = 3600;
  const auto placement = orch.place(faulty, job, orch.max_constraints());
  // Every group carved from a chunk carries deployment coordinates.
  for (const auto& g : placement.groups) {
    EXPECT_GE(g.subline, 0);
    EXPECT_GE(g.domain, 0);
    EXPECT_EQ(g.group.nodes.size(), 8u);
  }
  EXPECT_EQ(placement.gpu_count(4), 1024 * 4);
}

TEST(Orchestrator, ZeroConstraintsIsPureDcnFree) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  std::vector<bool> faulty(1024, false);
  JobSpec job{32, 2048};
  const auto placement = orch.place(faulty, job, 0);
  for (const auto& g : placement.groups) EXPECT_EQ(g.pos, -1);
}

TEST(Orchestrator, CapacityMonotoneInConstraints) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  Rng rng(3);
  const auto mask = fault::sample_fault_mask(1024, 0.06, rng);
  JobSpec job{32, 0};
  int prev = 1 << 30;
  for (int c : {0, 8, 16, 32, orch.max_constraints()}) {
    const int cap = orch.place(mask, job, c).gpu_count(4);
    EXPECT_LE(cap, prev) << "constraints " << c;
    prev = cap;
  }
}

TEST(Orchestrator, AlignmentExpandsFaultsToToR) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  std::vector<bool> faulty(1024, false);
  faulty[0] = true;  // domain 0, ToR 0
  JobSpec job{32, 0};
  const int full = orch.max_constraints();
  const auto aligned = orch.place(faulty, job, full);
  const auto carved_only =
      orch.place(faulty, job, full - ft.domain_count());
  // Alignment wastes the whole ToR (p=4 nodes) instead of one node.
  EXPECT_LT(aligned.gpu_count(4), carved_only.gpu_count(4));
  // Node 1 (same ToR) must be absent from the aligned placement.
  for (const auto& g : aligned.groups)
    for (int node : g.group.nodes) EXPECT_NE(node, 1);
}

TEST(Orchestrator, BinarySearchSatisfiesJob) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  Rng rng(5);
  const auto mask = fault::sample_fault_mask(1024, 0.05, rng);
  JobSpec job{32, 3300};
  const auto placement = orch.orchestrate(mask, job);
  EXPECT_GE(placement.gpu_count(4), 3300);
}

TEST(Orchestrator, ThrowsWhenInfeasible) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  std::vector<bool> faulty(1024, true);  // everything down
  JobSpec job{32, 512};
  EXPECT_THROW(orch.orchestrate(faulty, job), InfeasibleError);
}

TEST(Orchestrator, PlacedNodesAreHealthyAndUnique) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  Rng rng(7);
  const auto mask = fault::sample_fault_mask(1024, 0.08, rng);
  JobSpec job{32, 2048};
  const auto placement = orch.orchestrate(mask, job);
  std::set<int> seen;
  for (const auto& g : placement.groups) {
    for (int node : g.group.nodes) {
      EXPECT_FALSE(mask[static_cast<std::size_t>(node)]);
      EXPECT_TRUE(seen.insert(node).second) << "node reused: " << node;
    }
  }
}

TEST(Orchestrator, AllFaultyMaskPlacesNothing) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  std::vector<bool> faulty(1024, true);
  JobSpec job{32, 0};
  // Every constraint level, including the relaxed floor, must carve zero
  // groups — and never touch out-of-range deploy windows doing so.
  for (int c : {0, 1, ft.domain_count(), orch.max_constraints()}) {
    const auto placement = orch.place(faulty, job, c);
    EXPECT_TRUE(placement.groups.empty()) << "constraints " << c;
    EXPECT_EQ(placement.gpu_count(4), 0) << "constraints " << c;
  }
}

TEST(Orchestrator, JobScaleEqualToFullCluster) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  std::vector<bool> faulty(1024, false);
  JobSpec job{32, 1024 * 4};  // s = every GPU in the cluster
  // A healthy cluster can place the full-scale job even fully aligned.
  const auto placement = orch.orchestrate(faulty, job);
  EXPECT_EQ(placement.gpu_count(4), 1024 * 4);
  // One faulty node makes the full-cluster scale infeasible at every
  // constraint level.
  faulty[500] = true;
  EXPECT_THROW(orch.orchestrate(faulty, job), InfeasibleError);
}

TEST(DcnFree, HopReachAtLeastNodeCountBridgesAnyGap) {
  // k >= node count: every healthy pair is "adjacent", so one component
  // spans the whole line no matter how faults are scattered.
  std::vector<int> order(12);
  for (int i = 0; i < 12; ++i) order[i] = i;
  std::vector<bool> faulty(12, false);
  faulty[1] = faulty[2] = faulty[3] = faulty[4] = faulty[5] = true;
  const auto groups = orchestrate_dcn_free(order, 12, faulty, 3);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].nodes, (std::vector<int>{0, 6, 7}));
  EXPECT_EQ(groups[1].nodes, (std::vector<int>{8, 9, 10}));
  // And a K far beyond the line length behaves identically.
  EXPECT_EQ(orchestrate_dcn_free(order, 1 << 20, faulty, 3).size(), 2u);
}

TEST(ChunkAligned, ChunkShorterThanGroupYieldsNothingAligned) {
  // chunk length 5 < m = 8: pass 1 has no whole aligned window; pass 2
  // cannot tile a whole group either -> empty carve.
  std::vector<int> chunk{0, 1, 2, 3, 4};
  std::vector<bool> faulty(5, false);
  const auto carved = orchestrate_chunk_aligned(chunk, 2, faulty, 8);
  EXPECT_TRUE(carved.groups.empty());
  EXPECT_TRUE(carved.aligned_pos.empty());
  // m == chunk length is the boundary: exactly one aligned group.
  const auto exact = orchestrate_chunk_aligned(chunk, 2, faulty, 5);
  ASSERT_EQ(exact.groups.size(), 1u);
  EXPECT_EQ(exact.aligned_pos[0], 0);
}

// --- incremental re-orchestration -------------------------------------------

void expect_same_placement(const dcn::PlacementScheme& a,
                           const dcn::PlacementScheme& b) {
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].group.nodes, b.groups[i].group.nodes) << "group " << i;
    EXPECT_EQ(a.groups[i].subline, b.groups[i].subline) << "group " << i;
    EXPECT_EQ(a.groups[i].domain, b.groups[i].domain) << "group " << i;
    EXPECT_EQ(a.groups[i].pos, b.groups[i].pos) << "group " << i;
  }
}

TEST(Incremental, MatchesFromScratchPlaceAcrossFlipWalk) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  JobSpec job{32, 0};
  Rng rng(41);
  // Every constraint regime: relaxed floor, chunk-only, partially aligned,
  // fully aligned.
  for (int c : {0, 16, orch.max_constraints() - 8, orch.max_constraints()}) {
    std::vector<bool> mask(1024, false);
    IncrementalPlacement inc(orch, job, c, mask);
    expect_same_placement(inc.placement(), orch.place(mask, job, c));
    for (int step = 0; step < 60; ++step) {
      const int node = static_cast<int>(rng.uniform_index(1024));
      const bool to = !mask[static_cast<std::size_t>(node)];
      mask[static_cast<std::size_t>(node)] = to;
      inc.set_faulty(node, to);
      const auto oracle = orch.place(mask, job, c);
      expect_same_placement(inc.placement(), oracle);
      EXPECT_EQ(inc.gpu_count(), oracle.gpu_count(4));
    }
  }
}

TEST(Incremental, DeltaReportsTrueChurnOnly) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  JobSpec job{32, 0};
  std::vector<bool> mask(1024, false);
  IncrementalPlacement inc(orch, job, orch.max_constraints(), mask);
  const int before = inc.group_count();

  // Failing one node in an aligned domain kills its ToR's aligned windows.
  auto delta = inc.set_faulty(40, true);
  EXPECT_FALSE(delta.empty());
  EXPECT_GT(delta.removed.size(), delta.added.size());
  EXPECT_EQ(inc.group_count(),
            before - static_cast<int>(delta.removed.size()) +
                static_cast<int>(delta.added.size()));
  // A second fault in the SAME ToR changes nothing: the ToR was already
  // expanded-faulty, so the carve is untouched and the delta is empty.
  EXPECT_TRUE(inc.set_faulty(41, true).empty());
  // Idempotent no-op flip.
  EXPECT_TRUE(inc.set_faulty(40, true).empty());
  // Repairing node 40 alone keeps the ToR faulty (41 still down): no churn.
  EXPECT_TRUE(inc.set_faulty(40, false).empty());
  // Repairing the last fault restores the original carve exactly.
  delta = inc.set_faulty(41, false);
  EXPECT_GT(delta.added.size(), delta.removed.size());
  EXPECT_EQ(inc.group_count(), before);
  expect_same_placement(inc.placement(), orch.place(mask, job,
                                                    orch.max_constraints()));
}

TEST(Greedy, ProducesFeasiblePlacement) {
  const auto ft = test_tree();
  Rng rng(9);
  const auto mask = fault::sample_fault_mask(1024, 0.05, rng);
  JobSpec job{32, 2800};
  const auto placement = greedy_baseline(ft, 2, 4, mask, job, rng);
  EXPECT_GE(placement.gpu_count(4), 2800);
  for (const auto& g : placement.groups) EXPECT_EQ(g.group.nodes.size(), 8u);
}

TEST(Greedy, RandomizesGroupOrder) {
  const auto ft = test_tree();
  Rng rng_a(1), rng_b(2);
  std::vector<bool> faulty(1024, false);
  JobSpec job{32, 4096};
  const auto a = greedy_baseline(ft, 2, 4, faulty, job, rng_a);
  const auto b = greedy_baseline(ft, 2, 4, faulty, job, rng_b);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.groups.size(); ++i)
    if (a.groups[i].group.nodes != b.groups[i].group.nodes) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(EndToEnd, OptimizedBeatsGreedyOnCrossToR) {
  const auto ft = test_tree();
  FatTreeOrchestrator orch(ft, 2, 4);
  Rng rng(11);
  const auto mask = fault::sample_fault_mask(1024, 0.04, rng);
  JobSpec job{32, static_cast<int>(1024 * 4 * 0.8)};

  const auto optimized = orch.orchestrate(mask, job);
  const auto greedy = greedy_baseline(ft, 2, 4, mask, job, rng);
  const int use = job.gpu_count / job.tp_size_gpus;
  const auto opt_stats = dcn::evaluate_cross_tor(ft, optimized, 4, {}, use);
  const auto greedy_stats = dcn::evaluate_cross_tor(ft, greedy, 4, {}, use);
  EXPECT_LT(opt_stats.cross_tor_rate(), greedy_stats.cross_tor_rate() * 0.5);
  EXPECT_NEAR(greedy_stats.cross_tor_rate(), 0.10, 0.035);
}

}  // namespace
}  // namespace ihbd::orch
