#include <gtest/gtest.h>

#include <numeric>

#include "src/common/error.h"
#include "src/fault/generator.h"
#include "src/topo/alltoall_topology.h"
#include "src/topo/baselines.h"
#include "src/topo/khop_ring.h"
#include "src/topo/waste.h"

namespace ihbd::topo {
namespace {

std::vector<bool> mask_of(int n, std::initializer_list<int> faulty) {
  std::vector<bool> m(static_cast<std::size_t>(n), false);
  for (int f : faulty) m[static_cast<std::size_t>(f)] = true;
  return m;
}

// ------------------------------------------------------------- KHopRing ---

TEST(KHopRing, ValidatesConfig) {
  EXPECT_THROW(KHopRing(1, 4, 2), ConfigError);
  EXPECT_THROW(KHopRing(10, 4, 5), ConfigError);  // 2K >= N
  EXPECT_THROW(KHopRing(10, 0, 2), ConfigError);
  EXPECT_NO_THROW(KHopRing(10, 4, 2));
}

TEST(KHopRing, HopDistanceWrapsOnRing) {
  KHopRing ring(10, 4, 2);
  EXPECT_EQ(ring.hop_distance(0, 9), 1);
  EXPECT_EQ(ring.hop_distance(0, 5), 5);
  EXPECT_EQ(ring.hop_distance(2, 4), 2);
}

TEST(KHopRing, LineVariantDoesNotWrap) {
  KHopRing line(10, 4, 2, /*ring=*/false);
  EXPECT_EQ(line.hop_distance(0, 9), 9);
  EXPECT_FALSE(line.connected(0, 9));
}

TEST(KHopRing, NeighborsHaveDegree2K) {
  KHopRing ring(20, 4, 3);
  const auto nbrs = ring.neighbors(5);
  EXPECT_EQ(nbrs.size(), 6u);
  for (int nb : nbrs) EXPECT_TRUE(ring.connected(5, nb));
}

TEST(KHopRing, AllHealthyFormsOneCircularArc) {
  KHopRing ring(12, 4, 2);
  const auto arcs = ring.healthy_arcs(mask_of(12, {}));
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_TRUE(arcs[0].circular);
  EXPECT_EQ(arcs[0].nodes.size(), 12u);
}

TEST(KHopRing, SingleFaultIsBypassedAtK2) {
  KHopRing ring(12, 4, 2);
  const auto arcs = ring.healthy_arcs(mask_of(12, {5}));
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_TRUE(arcs[0].circular);
  EXPECT_EQ(arcs[0].nodes.size(), 11u);
}

TEST(KHopRing, TwoAdjacentFaultsBreakK2ButNotK3) {
  const auto mask = mask_of(12, {5, 6});
  KHopRing k2(12, 4, 2);
  const auto arcs2 = k2.healthy_arcs(mask);
  ASSERT_EQ(arcs2.size(), 1u);
  EXPECT_FALSE(arcs2[0].circular);  // ring cut into one line arc

  KHopRing k3(12, 4, 3);
  const auto arcs3 = k3.healthy_arcs(mask);
  ASSERT_EQ(arcs3.size(), 1u);
  EXPECT_TRUE(arcs3[0].circular);  // K=3 bridges the 2-node gap
}

TEST(KHopRing, TwoSeparatedBreakpointsMakeTwoArcs) {
  KHopRing k2(20, 4, 2);
  const auto arcs = k2.healthy_arcs(mask_of(20, {3, 4, 11, 12}));
  ASSERT_EQ(arcs.size(), 2u);
  // Arcs: 5..10 (6 nodes) and 13..2 wrapped (10 nodes).
  std::vector<std::size_t> sizes{arcs[0].nodes.size(), arcs[1].nodes.size()};
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes[0], 6u);
  EXPECT_EQ(sizes[1], 10u);
}

TEST(KHopRing, WrapAroundArcIsContiguous) {
  KHopRing k2(10, 4, 2);
  const auto arcs = k2.healthy_arcs(mask_of(10, {4, 5}));
  ASSERT_EQ(arcs.size(), 1u);
  const auto& nodes = arcs[0].nodes;
  // Expect 6,7,8,9,0,1,2,3 in ring order.
  EXPECT_EQ(nodes.front(), 6);
  EXPECT_EQ(nodes.back(), 3);
}

TEST(KHopRing, AllFaultyYieldsNoArcs) {
  KHopRing k2(8, 4, 2);
  std::vector<bool> all(8, true);
  EXPECT_TRUE(k2.healthy_arcs(all).empty());
  const auto alloc = k2.allocate(all, 16);
  EXPECT_EQ(alloc.usable_gpus, 0);
  EXPECT_EQ(alloc.faulty_gpus, 32);
  EXPECT_EQ(alloc.wasted_healthy_gpus, 0);
}

TEST(KHopRing, AllocateTilesArcs) {
  KHopRing k2(12, 4, 2);
  // TP-16 -> m = 4 nodes per group; 12 healthy nodes -> 3 groups, 0 waste.
  const auto alloc = k2.allocate(mask_of(12, {}), 16);
  EXPECT_EQ(alloc.groups.size(), 3u);
  EXPECT_EQ(alloc.usable_gpus, 48);
  EXPECT_EQ(alloc.wasted_healthy_gpus, 0);
  EXPECT_DOUBLE_EQ(alloc.waste_ratio(), 0.0);
}

TEST(KHopRing, AllocateWithBypassedFault) {
  KHopRing k2(13, 4, 2);
  // One fault -> 12 healthy in a circular arc -> 3 groups of 4 nodes.
  const auto alloc = k2.allocate(mask_of(13, {7}), 16);
  EXPECT_EQ(alloc.groups.size(), 3u);
  EXPECT_EQ(alloc.wasted_healthy_gpus, 0);
  // Group members must be within K hops of their ring-successor.
  for (const auto& g : alloc.groups) {
    for (std::size_t i = 0; i + 1 < g.nodes.size(); ++i) {
      EXPECT_LE(k2.hop_distance(g.nodes[i], g.nodes[i + 1]), 2);
    }
  }
}

TEST(KHopRing, GroupSizesExact) {
  KHopRing k3(30, 4, 3);
  const auto alloc = k3.allocate(mask_of(30, {0, 1, 10}), 32);  // m = 8
  for (const auto& g : alloc.groups) EXPECT_EQ(g.nodes.size(), 8u);
  EXPECT_EQ(alloc.usable_gpus + alloc.wasted_healthy_gpus +
                alloc.faulty_gpus,
            alloc.total_gpus);
}

TEST(KHopRing, RejectsBadTpSize) {
  KHopRing k2(12, 4, 2);
  EXPECT_THROW(k2.allocate(mask_of(12, {}), 0), ConfigError);
  EXPECT_THROW(k2.allocate(mask_of(12, {}), 10), ConfigError);
  EXPECT_THROW(k2.allocate(mask_of(11, {}), 16), ConfigError);
}

TEST(KHopRing, LineVariantWastesMoreThanRing) {
  // The line cannot wrap: with no faults and m not dividing N, both waste
  // the same; with the arc cut at the ends the line can only do worse.
  KHopRing ring(50, 4, 2, true);
  KHopRing line(50, 4, 2, false);
  Rng rng(3);
  double ring_waste = 0.0, line_waste = 0.0;
  for (int t = 0; t < 200; ++t) {
    const auto mask = fault::sample_fault_mask(50, 0.08, rng);
    ring_waste += ring.allocate(mask, 32).waste_ratio();
    line_waste += line.allocate(mask, 32).waste_ratio();
  }
  EXPECT_LE(ring_waste, line_waste);
}

// -------------------------------------------------- Appendix C property ---

struct BoundCase {
  int k;
  int gpus_per_node;
  double fault_prob;
};

class WasteBoundProperty : public ::testing::TestWithParam<BoundCase> {};

TEST_P(WasteBoundProperty, MonteCarloRespectsAnalyticBound) {
  // Appendix C: E[waste ratio] <= 2 (Nt - R) Ps^K for i.i.d. node faults
  // (fragmentation-of-the-remainder excluded: the bound covers breakpoint
  // waste, so we run with N a multiple of m and subtract the remainder
  // term, which is <= (m-1)/N and vanishes for large N).
  const auto [k, r, ps] = GetParam();
  const int tp = 32;
  const int m = tp / r;
  const int n_nodes = 200 * m;
  KHopRing ring(n_nodes, r, k);
  Rng rng(42 + k);
  double waste = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const auto mask = fault::sample_fault_mask_iid(n_nodes, ps, rng);
    waste += ring.allocate(mask, tp).waste_ratio();
  }
  waste /= trials;
  const double bound = waste_ratio_upper_bound(tp, r, ps, k);
  // Allow the remainder-fragmentation term plus Monte-Carlo noise.
  const double slack = static_cast<double>(m) / n_nodes + 0.2 * bound + 5e-4;
  EXPECT_LE(waste, bound + slack)
      << "K=" << k << " R=" << r << " Ps=" << ps;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WasteBoundProperty,
    ::testing::Values(BoundCase{2, 4, 0.0367}, BoundCase{3, 4, 0.0367},
                      BoundCase{2, 8, 0.0722}, BoundCase{3, 8, 0.0722},
                      BoundCase{2, 4, 0.01}, BoundCase{3, 4, 0.05}));

TEST(WasteBound, MatchesPaperTable7) {
  // Table 7: upper bounds for TP-32, GPU failure rate 0.93%.
  EXPECT_NEAR(waste_ratio_upper_bound(32, 4, 0.0367, 2), 0.0754, 0.0003);
  EXPECT_NEAR(waste_ratio_upper_bound(32, 4, 0.0367, 3), 0.0028, 0.0002);
  EXPECT_NEAR(waste_ratio_upper_bound(32, 4, 0.0367, 4), 1.02e-4, 1e-5);
  EXPECT_NEAR(waste_ratio_upper_bound(32, 8, 0.0722, 2), 0.2502, 0.0005);
  EXPECT_NEAR(waste_ratio_upper_bound(32, 8, 0.0722, 3), 0.0181, 0.0003);
  EXPECT_NEAR(waste_ratio_upper_bound(32, 8, 0.0722, 4), 0.0013, 0.0001);
}

// ------------------------------------------------------------ baselines ---

TEST(NvlSwitch, ValidatesConfig) {
  // Regression: node_count <= 0 used to pass — 0 * gpus % hbd_gpus == 0
  // satisfied the only divisibility check — and gpus_per_node == 0 divided
  // by zero inside it.
  EXPECT_THROW(NvlSwitch(0, 4, 72), ConfigError);
  EXPECT_THROW(NvlSwitch(-18, 4, 72), ConfigError);
  EXPECT_THROW(NvlSwitch(18, 0, 72), ConfigError);
  EXPECT_THROW(NvlSwitch(18, -4, 72), ConfigError);
  EXPECT_THROW(NvlSwitch(18, 4, 0), ConfigError);
  EXPECT_THROW(NvlSwitch(18, 4, 30), ConfigError);   // not a node multiple
  EXPECT_THROW(NvlSwitch(20, 4, 72), ConfigError);   // cluster not divisible
  EXPECT_NO_THROW(NvlSwitch(18, 4, 72));
}

TEST(TpuV4, ValidatesConfig) {
  // Same regression as NvlSwitch, with the cube divisibility checks.
  EXPECT_THROW(TpuV4(0, 4), ConfigError);
  EXPECT_THROW(TpuV4(-16, 4), ConfigError);
  EXPECT_THROW(TpuV4(16, 0), ConfigError);
  EXPECT_THROW(TpuV4(16, -4), ConfigError);
  EXPECT_THROW(TpuV4(16, 4, 0), ConfigError);
  EXPECT_THROW(TpuV4(16, 4, 30), ConfigError);       // not a node multiple
  EXPECT_THROW(TpuV4(17, 4, 64), ConfigError);       // cluster not divisible
  EXPECT_NO_THROW(TpuV4(16, 4));
}

TEST(IslandPartition, GeometryAccessors) {
  const NvlSwitch nvl72(36, 4, 72);
  const IslandPartition islands = nvl72.island_partition();
  EXPECT_EQ(islands.nodes_per_island, 18);
  EXPECT_EQ(islands.full_island_count(), 2);
  EXPECT_EQ(islands.island_of(17), 0);
  EXPECT_EQ(islands.island_of(18), 1);
  EXPECT_EQ(islands.island_begin(1), 18);
  EXPECT_EQ(islands.island_end(1), 36);

  EXPECT_EQ(BigSwitch(720, 4).island_partition().full_island_count(), 1);
  EXPECT_EQ(TpuV4(48, 4).island_partition().nodes_per_island, 16);

  // SiP-Ring's TP-sized rings leave a trailing remainder.
  const IslandPartition rings = SipRing(22, 4).ring_partition(8);
  EXPECT_EQ(rings.full_island_count(), 2);
  EXPECT_EQ(rings.island_of(21), 2);  // trailing node
  EXPECT_EQ(rings.island_end(2), 22);
}

TEST(BigSwitch, PureGlobalFragmentation) {
  BigSwitch ideal(720, 4);
  const auto alloc = ideal.allocate(mask_of(720, {1, 2, 3}), 32);
  // 717 healthy nodes = 2868 GPUs; 2868 mod 32 = 20 GPUs wasted = 5 nodes.
  EXPECT_EQ(alloc.wasted_healthy_gpus, 2868 % 32);
  EXPECT_EQ(alloc.usable_gpus, 2868 - 2868 % 32);
}

TEST(NvlSwitch, ElevenPercentFloorAtTp16) {
  // §2.1: NVL-36 running TP-16 wastes >= 11% even with zero faults.
  NvlSwitch nvl36(720, 4, 36);
  const auto alloc = nvl36.allocate(mask_of(720, {}), 16);
  EXPECT_NEAR(alloc.waste_ratio(), 4.0 / 36.0, 1e-9);
}

TEST(NvlSwitch, Nvl72SameFloorAtTp32) {
  NvlSwitch nvl72(720, 4, 72);
  const auto alloc = nvl72.allocate(mask_of(720, {}), 32);
  EXPECT_NEAR(alloc.waste_ratio(), 8.0 / 72.0, 1e-9);
}

TEST(NvlSwitch, Nvl576NoFragmentationWhenClean) {
  NvlSwitch nvl576(720, 4, 576);
  EXPECT_DOUBLE_EQ(nvl576.allocate(mask_of(720, {}), 32).waste_ratio(), 0.0);
}

TEST(NvlSwitch, TpLargerThanIslandWastesIsland) {
  NvlSwitch nvl36(72, 4, 36);
  const auto alloc = nvl36.allocate(mask_of(72, {}), 64);
  EXPECT_EQ(alloc.usable_gpus, 0);
  EXPECT_EQ(alloc.wasted_healthy_gpus, 288);
}

TEST(NvlSwitch, FaultShiftsIslandFragmentation) {
  NvlSwitch nvl72(36, 4, 72);  // two islands of 18 nodes
  const auto alloc = nvl72.allocate(mask_of(36, {0}), 32);
  // Island 0: 68 healthy GPUs -> 2 groups, 4 wasted. Island 1: 72 -> 2
  // groups, 8 wasted.
  EXPECT_EQ(alloc.wasted_healthy_gpus, 4 + 8);
  EXPECT_EQ(alloc.groups.size(), 4u);
}

TEST(TpuV4, PerCubeFragmentationSmallTp) {
  TpuV4 tpu(32, 4, 64);  // two cubes of 16 nodes
  // One fault in cube 0: 60 healthy -> TP-32: one group + 28 wasted.
  const auto alloc = tpu.allocate(mask_of(32, {3}), 32);
  EXPECT_EQ(alloc.wasted_healthy_gpus, 28);
  EXPECT_EQ(alloc.groups.size(), 1u + 2u);
}

TEST(TpuV4, CubeExplosionRadiusLargeTp) {
  TpuV4 tpu(48, 4, 64);  // three cubes
  // TP-128 spans two cubes; a single fault poisons its whole cube.
  const auto alloc = tpu.allocate(mask_of(48, {0}), 128);
  EXPECT_EQ(alloc.usable_gpus, 128);          // two clean cubes = 1 group
  EXPECT_EQ(alloc.wasted_healthy_gpus, 60);   // rest of the dirty cube
}

TEST(TpuV4, MatchesPaperTraceWasteAtTp32) {
  // §1: TPUv4 shows ~7.56% waste on the production trace with TP-32.
  // Under the i.i.d. equivalent (4-GPU node fault ratio 1.17%) the
  // per-cube fragmentation model lands in the same band.
  TpuV4 tpu(720, 4, 64);
  Rng rng(11);
  double waste = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const auto mask = fault::sample_fault_mask_iid(720, 0.0117, rng);
    waste += tpu.allocate(mask, 32).waste_ratio();
  }
  waste /= trials;
  EXPECT_NEAR(waste, 0.0756, 0.02);
}

TEST(SipRing, BrokenRingWastesHealthyMembers) {
  SipRing sip(16, 4);
  // TP-16 -> rings of 4 nodes; fault node 1 breaks ring 0 entirely.
  const auto alloc = sip.allocate(mask_of(16, {1}), 16);
  EXPECT_EQ(alloc.wasted_healthy_gpus, 12);
  EXPECT_EQ(alloc.groups.size(), 3u);
}

TEST(SipRing, TrailingNodesAreStructuralWaste) {
  SipRing sip(10, 4);
  const auto alloc = sip.allocate(mask_of(10, {}), 16);  // rings of 4
  EXPECT_EQ(alloc.groups.size(), 2u);
  EXPECT_EQ(alloc.wasted_healthy_gpus, 8);  // nodes 8, 9
}

TEST(SipRing, DegradesWithTpSize) {
  SipRing sip(720, 4);
  Rng rng(5);
  double waste16 = 0.0, waste64 = 0.0;
  for (int t = 0; t < 100; ++t) {
    const auto mask = fault::sample_fault_mask(720, 0.05, rng);
    waste16 += sip.allocate(mask, 16).waste_ratio();
    waste64 += sip.allocate(mask, 64).waste_ratio();
  }
  EXPECT_LT(waste16, waste64);
}

// ------------------------------------------- architecture ordering ---------

TEST(Architectures, PaperOrderingUnderFaults) {
  // Fig. 13/14's qualitative ordering at TP-32, 5% faults:
  // InfiniteHBD(K=3) ~ BigSwitch < InfiniteHBD(K=2) << NVL-72, and TPUv4 /
  // SiP-Ring trail behind the InfiniteHBD variants.
  Rng rng(17);
  KHopRing k2(720, 4, 2), k3(720, 4, 3);
  BigSwitch ideal(720, 4);
  NvlSwitch nvl72(720, 4, 72);
  TpuV4 tpu(720, 4, 64);
  SipRing sip(720, 4);
  const int trials = 150;
  const double f = 0.05;
  auto mean_waste = [&](const HbdArchitecture& a) {
    Rng local(99);
    double w = 0.0;
    for (int t = 0; t < trials; ++t)
      w += a.allocate(fault::sample_fault_mask(720, f, local), 32)
               .waste_ratio();
    return w / trials;
  };
  const double w_k2 = mean_waste(k2);
  const double w_k3 = mean_waste(k3);
  const double w_ideal = mean_waste(ideal);
  const double w_nvl = mean_waste(nvl72);
  const double w_tpu = mean_waste(tpu);
  const double w_sip = mean_waste(sip);

  EXPECT_NEAR(w_k3, w_ideal, 0.004);
  EXPECT_LE(w_ideal, w_k2 + 1e-12);
  EXPECT_LT(w_k3, 0.01);      // near-zero
  EXPECT_LT(w_k2, 0.03);
  EXPECT_GT(w_nvl, 0.05);     // fragmentation dominated
  EXPECT_GT(w_tpu, w_k2);
  EXPECT_GT(w_sip, w_k2);

  // At the production-trace fault ratio (1.17% for 4-GPU nodes), NVL-72
  // sits at its ~10% fragmentation floor (paper §1: 10.04%).
  Rng prod(123);
  double w_nvl_prod = 0.0;
  for (int t = 0; t < trials; ++t)
    w_nvl_prod += nvl72.allocate(fault::sample_fault_mask(720, 0.0117, prod),
                                 32)
                      .waste_ratio();
  w_nvl_prod /= trials;
  EXPECT_NEAR(w_nvl_prod, 0.1004, 0.012);
}

TEST(Architectures, FactoryCoversPaperSet) {
  const auto archs = make_paper_architectures(720, 4);
  EXPECT_EQ(archs.size(), 8u);
  std::vector<std::string> names;
  for (const auto& a : archs) names.push_back(a->name());
  EXPECT_NE(std::find(names.begin(), names.end(), "InfiniteHBD(K=2)"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "NVL-576"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "TPUv4"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "SiP-Ring"), names.end());
}

// -------------------------------------------------------- waste drivers ---

TEST(WasteDrivers, TraceEvaluationShapes) {
  fault::TraceGenConfig cfg;
  cfg.node_count = 180;
  cfg.duration_days = 40.0;
  const auto trace = fault::generate_trace(cfg);
  KHopRing k3(180, 4, 3);
  const auto result = evaluate_waste_over_trace(k3, trace, 32, 1.0);
  EXPECT_EQ(result.waste_ratio.size(), 40u);
  EXPECT_EQ(result.usable_gpus.size(), 40u);
  EXPECT_LT(result.waste_summary.mean, 0.02);
}

TEST(WasteDrivers, MaxJobScaleQuantiles) {
  TimeSeries usable;
  for (int i = 0; i < 100; ++i) usable.push(i, 1000.0 + i);  // 1000..1099
  EXPECT_EQ(max_job_scale(usable, 1.0, 32), (1000 / 32) * 32);
  EXPECT_GE(max_job_scale(usable, 0.5, 32), (1040 / 32) * 32);
}

TEST(WasteDrivers, MaxJobScaleSurvivesPercentileFpNoise) {
  // 11 samples: one dip to 0, plateau at 960. quantile = 0.9 puts the
  // percentile rank mathematically dead on sorted index 1 (value 960), but
  // (1 - 0.9) * 100 = 9.999999999999998 interpolates to 959.99999999999977;
  // a raw int cast truncated that to 959 and floored away an entire TP-32
  // group (928 instead of 960).
  TimeSeries usable;
  usable.push(0.0, 0.0);
  for (int i = 1; i <= 10; ++i) usable.push(i, 960.0);
  EXPECT_EQ(max_job_scale(usable, 0.9, 32), 960);
}

TEST(WasteDrivers, FaultWaitingRate) {
  TimeSeries usable;
  for (int i = 0; i < 10; ++i) usable.push(i, i < 3 ? 900.0 : 1100.0);
  EXPECT_DOUBLE_EQ(fault_waiting_rate(usable, 1000.0), 0.3);
  EXPECT_DOUBLE_EQ(fault_waiting_rate(usable, 100.0), 0.0);
}

// --------------------------------------------- Appendix G.3 wiring --------

TEST(BinaryHop, ConnectivityIsPowersOfTwo) {
  BinaryHopTopology t(64, 4, 4);  // distances 1, 2, 4, 8
  EXPECT_TRUE(t.connected(0, 1));
  EXPECT_TRUE(t.connected(0, 2));
  EXPECT_TRUE(t.connected(0, 4));
  EXPECT_TRUE(t.connected(0, 8));
  EXPECT_FALSE(t.connected(0, 3));
  EXPECT_FALSE(t.connected(0, 16));
}

TEST(BinaryHop, CouplingConstraintMatchesPaper) {
  // Appendix G.3: 4-GPU node with 4 bundles -> TPsize x EPsize <= 64;
  // 8-GPU node with 8 bundles -> <= 2048.
  BinaryHopTopology small(64, 4, 4);
  EXPECT_TRUE(small.coupling_ok(4, 16));
  EXPECT_FALSE(small.coupling_ok(4, 17));
  BinaryHopTopology big(1024, 8, 8);
  EXPECT_TRUE(big.coupling_ok(8, 256));
  EXPECT_FALSE(big.coupling_ok(8, 257));
}

TEST(BinaryHop, SupportsAlignedPow2Groups) {
  BinaryHopTopology t(64, 4, 4);
  EXPECT_TRUE(t.supports_binary_exchange(0, 16));
  EXPECT_TRUE(t.supports_binary_exchange(16, 16));
  EXPECT_FALSE(t.supports_binary_exchange(8, 16));  // misaligned
  EXPECT_FALSE(t.supports_binary_exchange(0, 32));  // exceeds 2^B
  EXPECT_FALSE(t.supports_binary_exchange(0, 12));  // not a power of two
}

TEST(BinaryHop, ScheduleTouchesEveryPartnerOnce) {
  BinaryHopTopology t(64, 4, 4);
  const auto schedule = t.binary_exchange_schedule(16, 16);
  EXPECT_EQ(schedule.size(), 4u);  // log2(16) rounds
  for (const auto& round : schedule) {
    EXPECT_EQ(round.size(), 8u);  // p/2 disjoint pairs
    std::vector<int> seen;
    for (auto [a, b] : round) {
      EXPECT_TRUE(t.connected(a, b));
      seen.push_back(a);
      seen.push_back(b);
    }
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    EXPECT_EQ(seen.size(), 16u);  // every member exactly once
  }
}

TEST(BinaryHop, ScheduleThrowsWhenUnsupported) {
  BinaryHopTopology t(64, 4, 3);
  EXPECT_THROW(t.binary_exchange_schedule(0, 16), InfeasibleError);
}

}  // namespace
}  // namespace ihbd::topo
