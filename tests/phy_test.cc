#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/stats.h"
#include "src/phy/ber.h"
#include "src/phy/mzi.h"
#include "src/phy/switch_matrix.h"

namespace ihbd::phy {
namespace {

TEST(Mzi, TransferConservesPower) {
  MziElement mzi;
  for (double phase : {0.0, 0.5, 1.0, M_PI / 2, M_PI}) {
    const double total = mzi.transfer_bar(phase) + mzi.transfer_cross(phase);
    EXPECT_NEAR(total, 1.0, 0.01) << "phase " << phase;
  }
}

TEST(Mzi, BarAndCrossStatesRoute) {
  MziElement mzi;
  // Phase 0: bar dominates. Phase pi: cross dominates.
  EXPECT_GT(mzi.transfer_bar(0.0), 0.99);
  EXPECT_LT(mzi.transfer_cross(0.0), 0.01);
  EXPECT_GT(mzi.transfer_cross(M_PI), 0.99);
  EXPECT_LT(mzi.transfer_bar(M_PI), 0.01);
}

TEST(Mzi, TargetPhaseFollowsState) {
  MziElement mzi;
  mzi.set_state(MziState::kBar);
  EXPECT_DOUBLE_EQ(mzi.target_phase_rad(), 0.0);
  mzi.set_state(MziState::kCross);
  EXPECT_DOUBLE_EQ(mzi.target_phase_rad(), M_PI);
}

TEST(Mzi, HoldPowerDropsWithAmbient) {
  MziElement mzi;
  mzi.set_state(MziState::kCross);
  EXPECT_GT(mzi.hold_power_w(0.0), mzi.hold_power_w(85.0));
}

TEST(Mzi, CrossStateUsesMorePowerThanBar) {
  MziElement cross, bar;
  cross.set_state(MziState::kCross);
  bar.set_state(MziState::kBar);
  EXPECT_GT(cross.hold_power_w(25.0), bar.hold_power_w(25.0));
}

TEST(Mzi, LossGrowsWithTemperature) {
  MziElement mzi;
  EXPECT_LT(mzi.mean_loss_db(0.0), mzi.mean_loss_db(85.0));
}

TEST(SwitchMatrix, StageCounts) {
  OcsSwitchMatrix m;  // 8 lanes
  EXPECT_EQ(m.stages_for(OcsPath::kExternal1), 3);
  EXPECT_EQ(m.stages_for(OcsPath::kExternal2), 3);
  EXPECT_EQ(m.stages_for(OcsPath::kLoopback), 6);  // + log2(8) matrix stages
}

TEST(SwitchMatrix, ExternalPathsHaveConsistentLoss) {
  OcsSwitchMatrix m;
  EXPECT_DOUBLE_EQ(m.mean_insertion_loss_db(OcsPath::kExternal1, 25.0),
                   m.mean_insertion_loss_db(OcsPath::kExternal2, 25.0));
}

TEST(SwitchMatrix, MeanLossMatchesPaperAtRoomTemp) {
  // Paper §5.1: average insertion loss 3.3 dB at 25 C.
  OcsSwitchMatrix m;
  EXPECT_NEAR(m.mean_insertion_loss_db(OcsPath::kExternal1, 25.0), 3.3, 0.05);
}

TEST(SwitchMatrix, SampledLossWithinPaperEnvelope) {
  // Paper §5.1: measured 2.5 - 4.0 dB across units at room temperature.
  OcsSwitchMatrix m;
  Rng rng(1);
  std::vector<double> losses;
  for (int i = 0; i < 2000; ++i)
    losses.push_back(m.sample_insertion_loss_db(OcsPath::kExternal1, 25.0,
                                                rng));
  const Summary s = summarize(losses);
  EXPECT_NEAR(s.mean, 3.3, 0.1);
  EXPECT_GT(s.min, 2.3);
  EXPECT_LT(s.max, 4.3);
}

class SwitchMatrixTemp : public ::testing::TestWithParam<double> {};

TEST_P(SwitchMatrixTemp, PowerBelowSpecAcrossTemperatures) {
  // Paper Fig. 10b: core module < 3.2 W across 0-85 C for all three paths.
  OcsSwitchMatrix m;
  const double temp = GetParam();
  for (auto path :
       {OcsPath::kExternal1, OcsPath::kExternal2, OcsPath::kLoopback}) {
    const double watts = m.drive_power_w(path, temp);
    EXPECT_GT(watts, 2.5) << "temp " << temp;
    EXPECT_LE(watts, 3.2) << "temp " << temp;
  }
}

TEST_P(SwitchMatrixTemp, LossWithinOperatingEnvelope) {
  OcsSwitchMatrix m;
  const double mu =
      m.mean_insertion_loss_db(OcsPath::kExternal1, GetParam());
  EXPECT_GT(mu, 2.8);
  EXPECT_LT(mu, 4.0);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, SwitchMatrixTemp,
                         ::testing::Values(0.0, 25.0, 50.0, 85.0));

TEST(SwitchMatrix, LoopbackCostsMoreThanExternal) {
  OcsSwitchMatrix m;
  EXPECT_GT(m.mean_insertion_loss_db(OcsPath::kLoopback, 25.0),
            m.mean_insertion_loss_db(OcsPath::kExternal1, 25.0));
  EXPECT_GT(m.drive_power_w(OcsPath::kLoopback, 25.0),
            m.drive_power_w(OcsPath::kExternal1, 25.0));
}

TEST(SwitchMatrix, ReconfigLatencyInPaperWindow) {
  // Paper §5.1: 60-80 us hardware reconfiguration latency.
  OcsSwitchMatrix m;
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double t = m.sample_reconfig_latency_s(rng);
    EXPECT_GE(t, 60e-6);
    EXPECT_LE(t, 80e-6);
  }
}

TEST(Ber, ZeroAtRoomTempAcrossOma) {
  // Paper Fig. 12: at -5 C and 25 C, BER was consistently 0.
  OcsSwitchMatrix m;
  BerModel ber(m);
  Rng rng(3);
  for (double temp : {-5.0, 25.0}) {
    for (double oma = 0.3; oma <= 1.2; oma += 0.1) {
      for (int i = 0; i < 50; ++i)
        EXPECT_EQ(ber.measure_ber(OcsPath::kExternal1, oma, temp, rng), 0.0)
            << "oma " << oma << " temp " << temp;
    }
  }
}

TEST(Ber, OccasionalErrorsAtHighTempLowOma) {
  // Paper Fig. 12: at 50/75 C, occasional errors only at very low OMA.
  OcsSwitchMatrix m;
  BerModel ber(m);
  Rng rng(4);
  int nonzero_low = 0, nonzero_high = 0;
  for (int i = 0; i < 400; ++i) {
    if (ber.measure_ber(OcsPath::kExternal1, 0.25, 75.0, rng) > 0.0)
      ++nonzero_low;
    if (ber.measure_ber(OcsPath::kExternal1, 1.0, 75.0, rng) > 0.0)
      ++nonzero_high;
  }
  EXPECT_GT(nonzero_low, 0);          // some errors at very low OMA
  EXPECT_LT(nonzero_low, 300);        // but not systematic
  EXPECT_LT(nonzero_high, nonzero_low);  // high OMA is (near) clean
}

TEST(Ber, QFactorMonotoneInOma) {
  OcsSwitchMatrix m;
  BerModel ber(m);
  EXPECT_LT(ber.q_factor(OcsPath::kExternal1, 0.2, 25.0),
            ber.q_factor(OcsPath::kExternal1, 0.8, 25.0));
}

TEST(Ber, QFactorDegradesWithTemperature) {
  OcsSwitchMatrix m;
  BerModel ber(m);
  EXPECT_GT(ber.q_factor(OcsPath::kExternal1, 0.5, 25.0),
            ber.q_factor(OcsPath::kExternal1, 0.5, 75.0));
}

TEST(Ber, BerFromQLimits) {
  EXPECT_DOUBLE_EQ(BerModel::ber_from_q(0.0), 0.5);
  EXPECT_LT(BerModel::ber_from_q(14.0), 1e-20);
  EXPECT_GT(BerModel::ber_from_q(2.0), 1e-3);
}

}  // namespace
}  // namespace ihbd::phy
