#include <gtest/gtest.h>

#include "src/llmsim/model.h"
#include "src/llmsim/perf.h"

namespace ihbd::llmsim {
namespace {

TEST(Model, Llama405bParameterCount) {
  const auto m = ModelConfig::llama31_405b_mha();
  // MHA-simplified 405B-class model: ~4.0-4.2e11 parameters.
  EXPECT_NEAR(m.param_count(), 4.1e11, 0.2e11);
  EXPECT_DOUBLE_EQ(m.param_count(), m.active_param_count());  // dense
}

TEST(Model, GptMoeParameterCount) {
  const auto m = ModelConfig::gpt_moe_1t();
  // Appendix B: ~1.1T total parameters; top-2 of 8 experts active.
  EXPECT_NEAR(m.param_count(), 1.13e12, 0.08e12);
  EXPECT_LT(m.active_param_count(), 0.5 * m.param_count());
}

TEST(Model, FlopsPerTokenDominatedByMatmul) {
  const auto m = ModelConfig::llama31_405b_mha();
  EXPECT_NEAR(m.train_flops_per_token(), 6.0 * m.param_count(),
              0.1 * 6.0 * m.param_count());
}

TEST(Model, Table3TrafficFormulas) {
  // Table 3: TP AllReduce 2bsh (n-1)/n; EP AllToAll adds k/n.
  const double b = 4, s = 2048, h = 12288;
  const double tp = tp_allreduce_load(b, s, h, 8);
  const double ep = ep_alltoall_load(b, s, h, 8, 2);
  EXPECT_DOUBLE_EQ(tp, 2 * b * s * h * 2.0 * 7 / 8);
  EXPECT_DOUBLE_EQ(ep, tp * 2 / 8);
  EXPECT_LT(ep, tp);  // EP is cheaper whenever k < n
}

TEST(Perf, RejectsIndivisibleStrategies) {
  TrainJob job;
  job.model = ModelConfig::llama31_405b_mha();
  Parallelism bad;
  bad.tp = 3;  // does not divide hidden
  EXPECT_FALSE(simulate_training(job, bad).feasible);
  Parallelism bad2;
  bad2.pp = 5;  // does not divide 126 layers
  EXPECT_FALSE(simulate_training(job, bad2).feasible);
}

TEST(Perf, MemoryGateRejectsTinyParallelism) {
  TrainJob job;
  job.model = ModelConfig::llama31_405b_mha();
  Parallelism tiny;  // 405B on a single GPU
  tiny.tp = 1;
  tiny.pp = 1;
  tiny.dp = 1;
  const auto r = simulate_training(job, tiny);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.infeasible_why, "exceeds GPU memory");
}

TEST(Perf, ReasonableMfuAt1024Gpus) {
  // Table 2 row 1: ~0.52 at 1024 GPUs with TP-16/PP-4/DP-16.
  TrainJob job;
  job.model = ModelConfig::llama31_405b_mha();
  Parallelism par;
  par.tp = 16;
  par.pp = 4;
  par.dp = 16;
  const auto r = simulate_training(job, par);
  ASSERT_TRUE(r.feasible) << r.infeasible_why;
  EXPECT_GT(r.mfu, 0.45);
  EXPECT_LT(r.mfu, 0.60);
}

TEST(Perf, Tp8CollapsesAtExtremeScale) {
  // Table 2 last row: TP-8 at 131072 GPUs falls to ~0.055 (huge pipeline
  // bubble from DP=1024 and only 2 microbatches).
  TrainJob job;
  job.model = ModelConfig::llama31_405b_mha();
  const auto r8 = search_best_strategy(job, 131072, /*tp_limit=*/8);
  ASSERT_TRUE(r8.perf.feasible);
  EXPECT_LT(r8.perf.mfu, 0.12);
  const auto open = search_best_strategy(job, 131072);
  EXPECT_GT(open.perf.mfu / r8.perf.mfu, 2.0);  // paper: 3.37x
}

TEST(Perf, OptimalTpGrowsWithScale) {
  // Table 2 trend: optimal TP grows from 8-16 at 1k GPUs to 32-64+ at 32k+.
  TrainJob job;
  job.model = ModelConfig::llama31_405b_mha();
  const auto small = search_best_strategy(job, 1024);
  const auto large = search_best_strategy(job, 32768);
  ASSERT_TRUE(small.perf.feasible);
  ASSERT_TRUE(large.perf.feasible);
  EXPECT_LE(small.best.tp, 16);
  EXPECT_GE(large.best.tp, 32);
  EXPECT_GT(large.best.tp, small.best.tp);
}

TEST(Perf, MfuDecaysWithScaleAtFixedBatch) {
  TrainJob job;
  job.model = ModelConfig::llama31_405b_mha();
  double prev = 1.0;
  for (int gpus : {1024, 4096, 16384, 65536}) {
    const auto r = search_best_strategy(job, gpus);
    ASSERT_TRUE(r.perf.feasible) << gpus;
    EXPECT_LT(r.perf.mfu, prev) << gpus;
    prev = r.perf.mfu;
  }
}

TEST(Perf, BubbleFractionFormula) {
  TrainJob job;
  job.model = ModelConfig::llama31_405b_mha();
  Parallelism par;
  par.tp = 16;
  par.pp = 4;
  par.dp = 16;  // n_micro = 128
  const auto r = simulate_training(job, par);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.bubble_fraction, 3.0 / 131.0, 1e-9);
}

TEST(Perf, ExpertImbalanceDegradesEp) {
  // Table 4 trend: EP MFU decays as the imbalance coefficient grows.
  TrainJob job;
  job.model = ModelConfig::gpt_moe_1t();
  job.global_batch = 1536;
  Parallelism par;
  par.tp = 8;
  par.pp = 4;
  par.dp = 32;
  par.ep = 8;
  par.vpp = 3;
  double prev = 1.0;
  for (double coef : {0.0, 0.1, 0.2, 0.3}) {
    job.expert_imbalance = coef;
    const auto r = simulate_training(job, par);
    ASSERT_TRUE(r.feasible) << r.infeasible_why;
    EXPECT_LT(r.mfu, prev);
    prev = r.mfu;
  }
}

TEST(Perf, ImbalanceDoesNotAffectTpOnlyMoe) {
  // TP shards every expert equally -> no straggler effect (§2.3).
  TrainJob job;
  job.model = ModelConfig::gpt_moe_1t();
  job.global_batch = 1536;
  Parallelism par;
  par.tp = 16;
  par.pp = 4;
  par.dp = 16;
  par.ep = 1;
  par.vpp = 3;
  job.expert_imbalance = 0.0;
  const double mfu0 = simulate_training(job, par).mfu;
  job.expert_imbalance = 0.3;
  const double mfu3 = simulate_training(job, par).mfu;
  EXPECT_DOUBLE_EQ(mfu0, mfu3);
}

TEST(Perf, MoeSearchPrefersTpOverEp) {
  // Table 5: with 20% practical imbalance, optimal EP = 1 at every scale.
  TrainJob job;
  job.model = ModelConfig::gpt_moe_1t();
  job.global_batch = 1536;
  job.expert_imbalance = 0.20;
  for (int gpus : {1024, 4096, 16384}) {
    const auto r = search_best_strategy(job, gpus);
    ASSERT_TRUE(r.perf.feasible) << gpus;
    EXPECT_EQ(r.best.ep, 1) << gpus;
  }
}

TEST(Perf, SearchRespectsTpLimit) {
  TrainJob job;
  job.model = ModelConfig::llama31_405b_mha();
  const auto r = search_best_strategy(job, 8192, /*tp_limit=*/8);
  ASSERT_TRUE(r.perf.feasible);
  EXPECT_LE(r.best.tp, 8);
}

TEST(Perf, AccountingIsInternallyConsistent) {
  TrainJob job;
  job.model = ModelConfig::llama31_405b_mha();
  Parallelism par;
  par.tp = 32;
  par.pp = 8;
  par.dp = 8;
  const auto r = simulate_training(job, par);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.iter_time_s,
            r.compute_time_s + r.tp_comm_time_s);  // bubble adds time
  EXPECT_GE(r.bubble_fraction, 0.0);
  EXPECT_LT(r.bubble_fraction, 1.0);
  EXPECT_GT(r.memory_bytes, 0.0);
}

TEST(Perf, ParallelismToString) {
  Parallelism par;
  par.tp = 16;
  par.pp = 4;
  par.dp = 16;
  EXPECT_EQ(par.to_string(), "TP16/PP4/DP16");
  par.ep = 8;
  EXPECT_EQ(par.to_string(), "TP16/PP4/DP16/EP8");
}

}  // namespace
}  // namespace ihbd::llmsim
