#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "src/common/error.h"
#include "src/common/serde.h"
#include "src/common/stats.h"
#include "src/obs/metrics.h"
#include "src/runtime/accumulate.h"
#include "src/topo/waste.h"

namespace ihbd {
namespace {

TEST(Serde, PrimitiveRoundTrip) {
  serde::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1.5e300);
  w.str("hello \0 world");  // embedded NUL truncates at construction — fine
  w.str("");
  w.f64_vec({1.0, -2.25, 3.5});

  serde::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -1.5e300);
  EXPECT_EQ(r.str(), "hello ");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.0, -2.25, 3.5}));
  EXPECT_TRUE(r.done());
  r.expect_done("primitives");
}

TEST(Serde, DoublesTravelByBitPattern) {
  const double nan = std::nan("0x5ca1e");
  const double inf = std::numeric_limits<double>::infinity();
  serde::Writer w;
  w.f64(nan);
  w.f64(-inf);
  w.f64(-0.0);
  serde::Reader r(w.buffer());
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.f64(), -inf);
  EXPECT_TRUE(std::signbit(r.f64()));
}

TEST(Serde, ReaderThrowsOnUnderflow) {
  serde::Writer w;
  w.u32(7);
  serde::Reader r(w.buffer());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW(r.u8(), ConfigError);

  // A length prefix larger than the remaining bytes must throw, not
  // allocate or read out of bounds.
  serde::Writer bad;
  bad.u64(1000);  // claims a 1000-byte string with no bytes behind it
  serde::Reader rs(bad.buffer());
  EXPECT_THROW(rs.str(), ConfigError);
  serde::Reader rv(bad.buffer());
  EXPECT_THROW(rv.f64_vec(), ConfigError);
}

TEST(Serde, ExpectDoneThrowsOnTrailingBytes) {
  serde::Writer w;
  w.u8(1);
  w.u8(2);
  serde::Reader r(w.buffer());
  r.u8();
  EXPECT_THROW(r.expect_done("partial"), ConfigError);
}

TEST(Serde, Crc32KnownVector) {
  // The classic IEEE CRC-32 check value.
  EXPECT_EQ(serde::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(serde::crc32(""), 0x00000000u);
}

TEST(Serde, FrameRoundTripAndTamperDetection) {
  const std::string payload = "shard payload bytes";
  const std::string framed = serde::frame_record(0x4B434849, 1, payload);

  std::string_view out;
  EXPECT_EQ(serde::parse_record(framed, 0x4B434849, 1, &out),
            serde::FrameStatus::ok);
  EXPECT_EQ(out, payload);

  // Wrong magic / version are typed, not garbage.
  EXPECT_EQ(serde::parse_record(framed, 0x11111111, 1, &out),
            serde::FrameStatus::bad_magic);
  EXPECT_EQ(serde::parse_record(framed, 0x4B434849, 2, &out),
            serde::FrameStatus::bad_version);

  // Flip one payload byte: checksum catches it.
  std::string tampered = framed;
  tampered.back() ^= 0x01;
  EXPECT_EQ(serde::parse_record(tampered, 0x4B434849, 1, &out),
            serde::FrameStatus::bad_checksum);

  // Truncations anywhere are typed as truncated.
  for (std::size_t cut : {std::size_t{0}, std::size_t{10}, framed.size() - 1}) {
    EXPECT_EQ(serde::parse_record(std::string_view(framed).substr(0, cut),
                                  0x4B434849, 1, &out),
              serde::FrameStatus::truncated)
        << "cut=" << cut;
  }
  // Trailing bytes beyond the declared payload are rejected too.
  EXPECT_EQ(serde::parse_record(framed + "x", 0x4B434849, 1, &out),
            serde::FrameStatus::truncated);
}

TEST(Serde, AtomicFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/serde_atomic.bin";
  const std::string bytes("abc\0def\xff", 8);
  ASSERT_TRUE(serde::write_file_atomic(path, bytes));
  const auto back = serde::read_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
  // Overwrite is atomic too (same call path) and replaces the content.
  ASSERT_TRUE(serde::write_file_atomic(path, "v2"));
  EXPECT_EQ(serde::read_file(path).value(), "v2");
  std::remove(path.c_str());
  EXPECT_FALSE(serde::read_file(path).has_value());
}

TEST(Serde, TimeSeriesAndSummaryRoundTrip) {
  TimeSeries ts;
  ts.push(0.0, 1.5);
  ts.push(0.25, -2.0);
  Summary s;
  s.count = 7;
  s.mean = 1.25;
  s.stddev = 0.5;
  s.min = -1;
  s.max = 9;
  s.p50 = 1.0;
  s.p90 = 4.0;
  s.p99 = 8.5;

  serde::Writer w;
  serde::write_time_series(w, ts);
  serde::write_summary(w, s);
  serde::Reader r(w.buffer());
  const TimeSeries ts2 = serde::read_time_series(r);
  const Summary s2 = serde::read_summary(r);
  r.expect_done("time series + summary");
  EXPECT_EQ(ts2.t, ts.t);
  EXPECT_EQ(ts2.v, ts.v);
  EXPECT_EQ(s2.count, s.count);
  EXPECT_EQ(s2.mean, s.mean);
  EXPECT_EQ(s2.stddev, s.stddev);
  EXPECT_EQ(s2.min, s.min);
  EXPECT_EQ(s2.max, s.max);
  EXPECT_EQ(s2.p50, s.p50);
  EXPECT_EQ(s2.p90, s.p90);
  EXPECT_EQ(s2.p99, s.p99);
}

TEST(Serde, AccumulatorRoundTripIsExact) {
  runtime::Accumulator acc;
  acc.add(1.0);
  acc.add(-3.75);
  acc.add(100.125);

  serde::Writer w;
  acc.save(w);
  serde::Reader r(w.buffer());
  const runtime::Accumulator back = runtime::Accumulator::load(r);
  r.expect_done("accumulator");

  EXPECT_EQ(back.count(), acc.count());
  EXPECT_EQ(back.mean(), acc.mean());
  EXPECT_EQ(back.variance(), acc.variance());
  EXPECT_EQ(back.min(), acc.min());
  EXPECT_EQ(back.max(), acc.max());
  EXPECT_EQ(back.samples(), acc.samples());

  // The restored accumulator keeps accumulating identically: add the same
  // value to both and every moment still matches bit-for-bit.
  runtime::Accumulator a = acc, b = back;
  a.add(0.5);
  b.add(0.5);
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
}

TEST(Serde, AccumulatorLoadRejectsPartialSamples) {
  runtime::Accumulator acc;
  acc.add(1.0);
  acc.add(2.0);
  serde::Writer w;
  acc.save(w);
  // Rewrite with count=3 but only the 2 retained samples: the
  // complete-or-empty invariant must reject it.
  serde::Reader probe(w.buffer());
  (void)probe.u64();  // count
  serde::Writer forged;
  forged.u64(3);
  const std::string rest(w.buffer().substr(8));
  for (char c : rest) forged.u8(static_cast<std::uint8_t>(c));
  serde::Reader r(forged.buffer());
  EXPECT_THROW(runtime::Accumulator::load(r), ConfigError);
}

TEST(Serde, MetricsSnapshotRoundTripAndMerge) {
  obs::MetricsSnapshot a;
  a.counters["sweep.cells"] = 10;
  a.gauges["pool.width"] = 8.0;
  a.histograms["lat"].count = 2;
  a.histograms["lat"].sum = 3.5;
  a.histograms["lat"].buckets = {{0.1, 1}, {1.0, 2}};

  serde::Writer w;
  a.save(w);
  serde::Reader r(w.buffer());
  const obs::MetricsSnapshot back = obs::MetricsSnapshot::load(r);
  r.expect_done("metrics snapshot");
  EXPECT_EQ(back.to_json(), a.to_json());

  obs::MetricsSnapshot b;
  b.counters["sweep.cells"] = 5;
  b.gauges["pool.width"] = 4.0;
  b.histograms["lat"].count = 1;
  b.histograms["lat"].sum = 0.25;
  b.histograms["lat"].buckets = {{0.1, 1}, {1.0, 1}};

  obs::MetricsSnapshot merged = back;
  merged.merge(b);
  EXPECT_EQ(merged.counters["sweep.cells"], 15u);
  EXPECT_EQ(merged.gauges["pool.width"], 4.0);  // later wins
  EXPECT_EQ(merged.histograms["lat"].count, 3u);
  EXPECT_EQ(merged.histograms["lat"].sum, 3.75);
}

TEST(Serde, TraceWasteCodecRoundTrip) {
  topo::TraceWasteResult res;
  res.waste_ratio.push(0.0, 0.01);
  res.waste_ratio.push(1.0, 0.02);
  res.usable_gpus.push(0.0, 2816.0);
  res.waste_summary.count = 2;
  res.waste_summary.mean = 0.015;
  res.waste_summary.max = 0.02;

  const auto& codec = topo::trace_waste_codec();
  serde::Writer w;
  codec.save(w, res);
  serde::Reader r(w.buffer());
  const topo::TraceWasteResult back = codec.load(r);
  r.expect_done("trace waste result");

  EXPECT_EQ(back.waste_ratio.t, res.waste_ratio.t);
  EXPECT_EQ(back.waste_ratio.v, res.waste_ratio.v);
  EXPECT_EQ(back.usable_gpus.t, res.usable_gpus.t);
  EXPECT_EQ(back.usable_gpus.v, res.usable_gpus.v);
  EXPECT_EQ(back.waste_summary.count, res.waste_summary.count);
  EXPECT_EQ(back.waste_summary.mean, res.waste_summary.mean);
  EXPECT_EQ(back.waste_summary.max, res.waste_summary.max);
}

}  // namespace
}  // namespace ihbd
