// Randomized differential tests for fault::PackedMask against a
// std::vector<bool> oracle: every word-parallel operation (set / flip /
// XOR-apply / popcount / range popcount / first-set scan / complement /
// dirty-word enumeration) must agree with the naive per-node computation,
// across word-boundary sizes (N % 64 in {0, 1, 63}) and degenerate
// all-healthy / all-faulty masks.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/fault/packed_mask.h"
#include "src/fault/trace_io.h"

namespace ihbd::fault {
namespace {

// Sizes straddling word boundaries plus small degenerate ones.
const int kSizes[] = {1, 63, 64, 65, 127, 128, 191, 192, 720};

std::vector<bool> random_bools(int n, double p, Rng& rng) {
  std::vector<bool> bits(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) bits[static_cast<std::size_t>(i)] =
      rng.bernoulli(p);
  return bits;
}

int oracle_popcount_range(const std::vector<bool>& bits, int begin, int end) {
  int count = 0;
  for (int i = begin; i < end; ++i)
    count += bits[static_cast<std::size_t>(i)] ? 1 : 0;
  return count;
}

int oracle_find_first_from(const std::vector<bool>& bits, int from) {
  for (int i = from; i < static_cast<int>(bits.size()); ++i)
    if (bits[static_cast<std::size_t>(i)]) return i;
  return -1;
}

void expect_matches_oracle(const PackedMask& mask,
                           const std::vector<bool>& bits) {
  ASSERT_EQ(mask.size(), static_cast<int>(bits.size()));
  int oracle_count = 0;
  for (int i = 0; i < mask.size(); ++i) {
    ASSERT_EQ(mask.test(i), bits[static_cast<std::size_t>(i)]) << "bit " << i;
    oracle_count += bits[static_cast<std::size_t>(i)] ? 1 : 0;
  }
  EXPECT_EQ(mask.popcount(), oracle_count);
  EXPECT_EQ(mask.to_bools(), bits);
  // Tail invariant: no set bit at or beyond size() in the last word.
  if (mask.word_count() > 0) {
    const int last = mask.word_count() - 1;
    EXPECT_EQ(mask.word(last) & ~mask.valid_mask(last), 0u);
  }
}

TEST(PackedMask, FromBoolsRoundTripAllSizesAndDensities) {
  Rng rng(1234);
  for (const int n : kSizes) {
    for (const double p : {0.0, 0.03, 0.5, 1.0}) {
      const auto bits = random_bools(n, p, rng);
      expect_matches_oracle(PackedMask::from_bools(bits), bits);
    }
  }
}

TEST(PackedMask, RandomSetFlipWalkMatchesOracle) {
  Rng rng(77);
  for (const int n : kSizes) {
    PackedMask mask(n);
    std::vector<bool> oracle(static_cast<std::size_t>(n));
    for (int step = 0; step < 400; ++step) {
      const int i = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(n)));
      if (rng.bernoulli(0.5)) {
        const bool v = rng.bernoulli(0.5);
        mask.set(i, v);
        oracle[static_cast<std::size_t>(i)] = v;
      } else {
        mask.flip(i);
        oracle[static_cast<std::size_t>(i)] =
            !oracle[static_cast<std::size_t>(i)];
      }
    }
    expect_matches_oracle(mask, oracle);
  }
}

TEST(PackedMask, ApplyXorMatchesPerBitFlips) {
  Rng rng(991);
  for (const int n : kSizes) {
    auto bits = random_bools(n, 0.3, rng);
    PackedMask mask = PackedMask::from_bools(bits);
    for (int round = 0; round < 50; ++round) {
      const int w = static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(mask.word_count())));
      const std::uint64_t xor_bits = rng.next() & mask.valid_mask(w);
      mask.apply_xor(w, xor_bits);
      for_each_set_bit(xor_bits, w, [&](int i) {
        bits[static_cast<std::size_t>(i)] =
            !bits[static_cast<std::size_t>(i)];
      });
    }
    expect_matches_oracle(mask, bits);
  }
}

TEST(PackedMask, PopcountRangeMatchesOracle) {
  Rng rng(5150);
  for (const int n : kSizes) {
    const auto bits = random_bools(n, 0.4, rng);
    const PackedMask mask = PackedMask::from_bools(bits);
    for (int round = 0; round < 200; ++round) {
      const int begin =
          static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
      const int end = begin + static_cast<int>(rng.uniform_index(
                                  static_cast<std::uint64_t>(n - begin + 1)));
      EXPECT_EQ(mask.popcount_range(begin, end),
                oracle_popcount_range(bits, begin, end))
          << "n=" << n << " [" << begin << "," << end << ")";
    }
    EXPECT_EQ(mask.popcount_range(0, n), mask.popcount());
    EXPECT_EQ(mask.popcount_range(n, n), 0);
  }
}

TEST(PackedMask, FindFirstFromMatchesOracle) {
  Rng rng(31337);
  for (const int n : kSizes) {
    for (const double p : {0.0, 0.05, 1.0}) {
      const auto bits = random_bools(n, p, rng);
      const PackedMask mask = PackedMask::from_bools(bits);
      for (int from = 0; from <= n; ++from)
        EXPECT_EQ(mask.find_first_from(from),
                  oracle_find_first_from(bits, from))
            << "n=" << n << " p=" << p << " from=" << from;
    }
  }
}

TEST(PackedMask, ComplementIsHealthyMask) {
  Rng rng(404);
  for (const int n : kSizes) {
    const auto bits = random_bools(n, 0.25, rng);
    const PackedMask mask = PackedMask::from_bools(bits);
    const PackedMask healthy = mask.complement();
    std::vector<bool> oracle(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      oracle[static_cast<std::size_t>(i)] =
          !bits[static_cast<std::size_t>(i)];
    expect_matches_oracle(healthy, oracle);
    EXPECT_EQ(mask.popcount() + healthy.popcount(), n);
    EXPECT_EQ(healthy.complement(), mask);
  }
}

TEST(PackedMask, ForEachSetBitEnumeratesAscending) {
  Rng rng(8080);
  for (const int n : kSizes) {
    const auto bits = random_bools(n, 0.2, rng);
    const PackedMask mask = PackedMask::from_bools(bits);
    std::vector<int> seen;
    for_each_set_bit(mask, [&](int i) { seen.push_back(i); });
    std::vector<int> expected;
    for (int i = 0; i < n; ++i)
      if (bits[static_cast<std::size_t>(i)]) expected.push_back(i);
    EXPECT_EQ(seen, expected);
  }
}

TEST(PackedMask, EqualityIsValueEquality) {
  Rng rng(2020);
  const auto bits = random_bools(130, 0.5, rng);
  const PackedMask a = PackedMask::from_bools(bits);
  PackedMask b = PackedMask::from_bools(bits);
  EXPECT_EQ(a, b);
  b.flip(129);
  EXPECT_NE(a, b);
  b.flip(129);
  EXPECT_EQ(a, b);
  // Same prefix, different size: not equal.
  EXPECT_NE(a, PackedMask(130));
  EXPECT_NE(PackedMask(64), PackedMask(65));
}

TEST(PackedMask, WireRoundTrip) {
  Rng rng(606);
  for (const int n : kSizes) {
    for (const double p : {0.0, 0.3, 1.0}) {
      const PackedMask mask = PackedMask::from_bools(random_bools(n, p, rng));
      std::stringstream wire;
      save_packed_mask(mask, wire);
      EXPECT_EQ(load_packed_mask(wire), mask) << "n=" << n << " p=" << p;
    }
  }
}

TEST(PackedMask, WireRejectsMalformedInput) {
  {
    std::stringstream in("not-a-mask v1 8 0");
    EXPECT_THROW(load_packed_mask(in), ConfigError);
  }
  {
    std::stringstream in("packed-mask v2 8 0");
    EXPECT_THROW(load_packed_mask(in), ConfigError);
  }
  {
    std::stringstream in("packed-mask v1 128 ff");  // one word missing
    EXPECT_THROW(load_packed_mask(in), ConfigError);
  }
  {
    std::stringstream in("packed-mask v1 8 xyz");
    EXPECT_THROW(load_packed_mask(in), ConfigError);
  }
  {
    // Bit 8 set in an 8-bit mask: beyond the declared size.
    std::stringstream in("packed-mask v1 8 100");
    EXPECT_THROW(load_packed_mask(in), ConfigError);
  }
}

}  // namespace
}  // namespace ihbd::fault
