#include <gtest/gtest.h>

#include "src/topo/baselines.h"
#include "src/topo/explosion_radius.h"
#include "src/topo/khop_ring.h"

namespace ihbd::topo {
namespace {

TEST(Radius, InfiniteHbdIsNodeLevel) {
  // Table 1: InfiniteHBD's fault explosion radius is node-level - no
  // healthy GPU loses bandwidth when a single node fails (K >= 2 backup
  // links bypass it).
  KHopRing k2(64, 4, 2), k3(64, 4, 3);
  EXPECT_EQ(immediate_degraded_gpus(k2, 32), 0);
  EXPECT_EQ(immediate_degraded_gpus(k3, 32), 0);
}

TEST(Radius, KOneHasNoBackupPath) {
  KHopRing k1(64, 4, 1);
  EXPECT_EQ(immediate_degraded_gpus(k1, 32), 8);  // both neighbors degraded
}

TEST(Radius, TpuV4IsCubeLevel) {
  TpuV4 tpu(64, 4, 64);
  EXPECT_EQ(immediate_degraded_gpus(tpu, 32), 60);  // rest of the 64-cube
}

TEST(Radius, SipRingIsRingLevel) {
  SipRing sip(64, 4);
  EXPECT_EQ(immediate_degraded_gpus(sip, 32), 28);
  EXPECT_EQ(immediate_degraded_gpus(sip, 64), 60);  // grows with TP
}

TEST(Radius, SwitchArchitecturesNodeFaultIsIsolated) {
  NvlSwitch nvl(72, 4, 72);
  BigSwitch big(72, 4);
  EXPECT_EQ(immediate_degraded_gpus(nvl, 32), 0);
  EXPECT_EQ(immediate_degraded_gpus(big, 32), 0);
}

TEST(Radius, ReallocationLossConvergesToIdealFragmentation) {
  // A *single* fault costs every architecture roughly the ideal's
  // fragmentation remainder (719 healthy nodes mod 8 = 7 nodes = 28 GPUs
  // at TP-32); the architectural differences appear in the immediate
  // bandwidth radius and under multi-fault traces (§6.2 figures), not in
  // the one-fault re-allocation.
  Rng rng(3);
  KHopRing k3(720, 4, 3);
  TpuV4 tpu(720, 4, 64);
  SipRing sip(720, 4);
  BigSwitch ideal(720, 4);
  const auto r_k3 = measure_radius(k3, 32, 120, rng);
  const auto r_tpu = measure_radius(tpu, 32, 120, rng);
  const auto r_sip = measure_radius(sip, 32, 120, rng);
  const auto r_ideal = measure_radius(ideal, 32, 120, rng);
  // InfiniteHBD matches the ideal exactly; nobody beats the ideal.
  EXPECT_DOUBLE_EQ(r_k3.mean_reallocation_loss_gpus,
                   r_ideal.mean_reallocation_loss_gpus);
  EXPECT_GE(r_tpu.mean_reallocation_loss_gpus,
            r_ideal.mean_reallocation_loss_gpus);
  EXPECT_GE(r_sip.mean_reallocation_loss_gpus,
            r_ideal.mean_reallocation_loss_gpus);
  // SiP-Ring: one fault always wastes the remaining 7 nodes of its ring.
  EXPECT_NEAR(r_sip.mean_reallocation_loss_gpus, 28.0, 1e-9);
}

TEST(Radius, ReportCarriesArchitectureName) {
  Rng rng(1);
  KHopRing k2(64, 4, 2);
  EXPECT_EQ(measure_radius(k2, 32, 10, rng).architecture,
            "InfiniteHBD(K=2)");
}

}  // namespace
}  // namespace ihbd::topo
