#include <gtest/gtest.h>

#include <sstream>

#include "src/common/error.h"
#include "src/fault/generator.h"
#include "src/fault/trace_io.h"

namespace ihbd::fault {
namespace {

TEST(TraceIo, RoundTripPreservesEverything) {
  TraceGenConfig cfg;
  cfg.node_count = 40;
  cfg.duration_days = 30.0;
  const auto original = generate_trace(cfg);

  std::stringstream buffer;
  save_trace_csv(original, buffer);
  const auto loaded =
      load_trace_csv(buffer, original.node_count(), original.duration_days());

  ASSERT_EQ(loaded.events().size(), original.events().size());
  EXPECT_EQ(loaded.node_count(), original.node_count());
  EXPECT_DOUBLE_EQ(loaded.duration_days(), original.duration_days());
  for (std::size_t i = 0; i < loaded.events().size(); ++i) {
    EXPECT_EQ(loaded.events()[i].node, original.events()[i].node);
    EXPECT_NEAR(loaded.events()[i].start_day, original.events()[i].start_day,
                1e-9);
    EXPECT_NEAR(loaded.events()[i].end_day, original.events()[i].end_day,
                1e-9);
  }
}

TEST(TraceIo, InfersDimensions) {
  std::stringstream in("node,start_day,end_day\n3,1.0,2.0\n7,4.5,6.25\n");
  const auto trace = load_trace_csv(in);
  EXPECT_EQ(trace.node_count(), 8);
  EXPECT_DOUBLE_EQ(trace.duration_days(), 6.25);
  EXPECT_TRUE(trace.faulty_at(1.5)[3]);
}

TEST(TraceIo, SkipsCommentsAndHeader) {
  std::stringstream in(
      "# produced by test\nnode,start_day,end_day\n# mid comment\n0,0.5,1\n");
  const auto trace = load_trace_csv(in, 4, 10.0);
  EXPECT_EQ(trace.events().size(), 1u);
}

TEST(TraceIo, ThrowsOnMalformedRow) {
  std::stringstream in("0,1.0\n");  // missing end_day
  EXPECT_THROW(load_trace_csv(in, 4, 10.0), ConfigError);
  std::stringstream bad("zero,1.0,2.0\n");
  EXPECT_THROW(load_trace_csv(bad, 4, 10.0), ConfigError);
}

TEST(TraceIo, RejectsPartialAndNonFiniteFields) {
  // Trailing junk after a numeric field is an error, not a truncation.
  std::stringstream junk_node("12abc,1.0,2.0\n");
  EXPECT_THROW(load_trace_csv(junk_node, 40, 10.0), ConfigError);
  std::stringstream junk_day("1,1.0x,2.0\n");
  EXPECT_THROW(load_trace_csv(junk_day, 40, 10.0), ConfigError);
  std::stringstream extra_col("1,1.0,2.0,extra\n");
  EXPECT_THROW(load_trace_csv(extra_col, 40, 10.0), ConfigError);
  std::stringstream nan_day("1,nan,2.0\n");
  EXPECT_THROW(load_trace_csv(nan_day, 40, 10.0), ConfigError);
  std::stringstream inf_day("1,1.0,inf\n");
  EXPECT_THROW(load_trace_csv(inf_day, 40, 10.0), ConfigError);
}

TEST(TraceIo, RejectsOutOfRangeEvents) {
  std::stringstream neg_node("-1,1.0,2.0\n");
  EXPECT_THROW(load_trace_csv(neg_node, 4, 10.0), ConfigError);
  std::stringstream big_node("4,1.0,2.0\n");  // node_count=4 -> max id 3
  EXPECT_THROW(load_trace_csv(big_node, 4, 10.0), ConfigError);
  std::stringstream neg_start("1,-0.5,2.0\n");
  EXPECT_THROW(load_trace_csv(neg_start, 4, 10.0), ConfigError);
  std::stringstream ends_early("1,3.0,2.0\n");
  EXPECT_THROW(load_trace_csv(ends_early, 4, 10.0), ConfigError);
  std::stringstream past_end("1,1.0,11.0\n");  // duration_days=10
  EXPECT_THROW(load_trace_csv(past_end, 4, 10.0), ConfigError);
  // The same rows are fine when the violated bound is inferred instead.
  std::stringstream infer("4,1.0,11.0\n");
  const auto trace = load_trace_csv(infer);
  EXPECT_EQ(trace.node_count(), 5);
  EXPECT_DOUBLE_EQ(trace.duration_days(), 11.0);
}

TEST(TraceIo, RejectsUnsortedEvents) {
  std::stringstream unsorted("1,5.0,6.0\n0,1.0,2.0\n");
  EXPECT_THROW(load_trace_csv(unsorted, 4, 10.0), ConfigError);
  // Equal start days are legal (ties are broken internally).
  std::stringstream ties("1,5.0,6.0\n0,5.0,7.0\n");
  EXPECT_EQ(load_trace_csv(ties, 4, 10.0).events().size(), 2u);
}

TEST(TraceIo, ErrorNamesOffendingLine) {
  std::stringstream in("0,1.0,2.0\nbogus,3.0,4.0\n");
  try {
    load_trace_csv(in, 4, 10.0);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(TraceIo, ThrowsOnEmptyWithoutDimensions) {
  std::stringstream in("");
  EXPECT_THROW(load_trace_csv(in), ConfigError);
}

TEST(TraceIo, FileRoundTrip) {
  TraceGenConfig cfg;
  cfg.node_count = 10;
  cfg.duration_days = 12.0;
  const auto trace = generate_trace(cfg);
  const std::string path = ::testing::TempDir() + "/ihbd_trace.csv";
  ASSERT_TRUE(save_trace_csv(trace, path));
  const auto loaded = load_trace_csv_file(path, 10, 12.0);
  EXPECT_EQ(loaded.events().size(), trace.events().size());
  EXPECT_THROW(load_trace_csv_file("/nonexistent/x.csv"), ConfigError);
}

TEST(TraceIo, LoadedTraceDrivesReplay) {
  std::stringstream in("0,0.0,5.0\n1,2.0,3.0\n");
  const auto trace = load_trace_csv(in, 8, 10.0);
  EXPECT_EQ(trace.faulty_count_at(2.5), 2);
  EXPECT_EQ(trace.faulty_count_at(4.0), 1);
  EXPECT_EQ(trace.faulty_count_at(6.0), 0);
}

}  // namespace
}  // namespace ihbd::fault
