#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/evsim/engine.h"
#include "src/ocstrx/bundle.h"
#include "src/ocstrx/fabric_manager.h"
#include "src/ocstrx/reconfig_queue.h"
#include "src/ocstrx/transceiver.h"

namespace ihbd::ocstrx {
namespace {

TEST(Transceiver, StartsIdleAndDark) {
  Transceiver trx(0);
  EXPECT_EQ(trx.state(), TrxState::kIdle);
  EXPECT_FALSE(trx.active_path().has_value());
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kExternal1), 0.0);
}

TEST(Transceiver, SynchronousReconfigureActivates) {
  Transceiver trx(0);
  Rng rng(1);
  const auto latency = trx.reconfigure_now(OcsPath::kExternal1, rng);
  ASSERT_TRUE(latency.has_value());
  EXPECT_GE(*latency, 60e-6);
  EXPECT_LE(*latency, 80e-6);
  EXPECT_EQ(trx.state(), TrxState::kActive);
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kExternal1), 800.0);
}

TEST(Transceiver, TimeDivisionExclusivity) {
  // §4.1 Design 1: activating one path completely disables the others.
  Transceiver trx(0);
  Rng rng(1);
  trx.reconfigure_now(OcsPath::kExternal1, rng);
  trx.reconfigure_now(OcsPath::kExternal2, rng);
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kExternal1), 0.0);
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kExternal2), 800.0);
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kLoopback), 0.0);
}

TEST(Transceiver, ReconfigureToSamePathIsFree) {
  Transceiver trx(0);
  Rng rng(1);
  trx.reconfigure_now(OcsPath::kLoopback, rng);
  const auto again = trx.reconfigure_now(OcsPath::kLoopback, rng);
  ASSERT_TRUE(again.has_value());
  EXPECT_DOUBLE_EQ(*again, 0.0);
}

TEST(Transceiver, ControlPlaneLatencyWhenNotPreloaded) {
  Transceiver trx(0);
  Rng rng(1);
  const auto cold =
      trx.reconfigure_now(OcsPath::kExternal1, rng, /*preloaded=*/false);
  ASSERT_TRUE(cold.has_value());
  EXPECT_GT(*cold, 500e-6);  // hardware + control plane
}

TEST(Transceiver, EventDrivenReconfiguration) {
  Transceiver trx(0);
  Rng rng(1);
  evsim::Engine engine;
  bool done = false;
  ASSERT_TRUE(trx.reconfigure(engine, OcsPath::kExternal1, rng,
                              /*preloaded=*/true, [&] { done = true; }));
  EXPECT_EQ(trx.state(), TrxState::kReconfiguring);
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kExternal1), 0.0);
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(trx.state(), TrxState::kActive);
  EXPECT_GE(engine.now(), 60e-6);
  EXPECT_LE(engine.now(), 80e-6);
}

TEST(Transceiver, RejectsReconfigureWhileInFlight) {
  Transceiver trx(0);
  Rng rng(1);
  evsim::Engine engine;
  ASSERT_TRUE(trx.reconfigure(engine, OcsPath::kExternal1, rng, true));
  EXPECT_FALSE(trx.reconfigure(engine, OcsPath::kExternal2, rng, true));
}

TEST(Transceiver, FailureDropsInFlightCompletion) {
  Transceiver trx(0);
  Rng rng(1);
  evsim::Engine engine;
  bool done = false;
  trx.reconfigure(engine, OcsPath::kExternal1, rng, true, [&] { done = true; });
  trx.fail();
  engine.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(trx.state(), TrxState::kFailed);
}

TEST(Transceiver, FailAndRepairLifecycle) {
  Transceiver trx(0);
  Rng rng(1);
  trx.fail();
  EXPECT_FALSE(trx.healthy());
  EXPECT_FALSE(trx.reconfigure_now(OcsPath::kExternal1, rng).has_value());
  trx.repair();
  EXPECT_TRUE(trx.healthy());
  EXPECT_TRUE(trx.reconfigure_now(OcsPath::kExternal1, rng).has_value());
}

TEST(Bundle, AggregatesLineRate) {
  Bundle b(0, 0, 1, 8);
  EXPECT_DOUBLE_EQ(b.total_line_rate_gbps(), 6400.0);  // 8 x 800G = 6.4 Tbps
}

TEST(Bundle, SteerMovesAllMembers) {
  Bundle b(0, 0, 1, 8);
  Rng rng(1);
  const auto latency = b.steer(OcsPath::kExternal1, rng);
  ASSERT_TRUE(latency.has_value());
  EXPECT_DOUBLE_EQ(b.bandwidth_gbps(OcsPath::kExternal1), 6400.0);
  EXPECT_DOUBLE_EQ(b.bandwidth_gbps(OcsPath::kLoopback), 0.0);
}

TEST(Bundle, PartialFailureDegradesBandwidth) {
  Bundle b(0, 0, 1, 8);
  Rng rng(1);
  b.steer(OcsPath::kExternal1, rng);
  b.fail_one(3);
  EXPECT_FALSE(b.healthy());
  EXPECT_DOUBLE_EQ(b.bandwidth_gbps(OcsPath::kExternal1), 5600.0);
}

TEST(Bundle, SteerFailsWhenMemberFailed) {
  Bundle b(0, 0, 1, 4);
  Rng rng(1);
  b.fail_one(0);
  EXPECT_FALSE(b.steer(OcsPath::kExternal2, rng).has_value());
  b.repair();
  EXPECT_TRUE(b.steer(OcsPath::kExternal2, rng).has_value());
}

TEST(Bundle, AsyncSteerCompletesViaBarrier) {
  Bundle b(0, 0, 1, 4);
  Rng rng(1);
  evsim::Engine engine;
  bool done = false;
  ASSERT_TRUE(b.steer_async(engine, OcsPath::kExternal1, rng, true,
                            [&] { done = true; }));
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(b.bandwidth_gbps(OcsPath::kExternal1), 3200.0);
}

TEST(FabricManager, RejectsBadConfigs) {
  EXPECT_THROW(NodeFabricManager(1, 1, 8), ConfigError);
  EXPECT_THROW(NodeFabricManager(4, 5, 8), ConfigError);
  EXPECT_THROW(NodeFabricManager(4, 4, 0), ConfigError);
}

TEST(FabricManager, SessionPreloadAndApply) {
  NodeFabricManager fm(4, 4, 2);
  Rng rng(1);
  Session ring;
  ring[0] = OcsPath::kExternal1;
  ring[1] = OcsPath::kExternal1;
  ring[2] = OcsPath::kLoopback;
  ring[3] = OcsPath::kLoopback;
  fm.preload_session("ring", ring);
  EXPECT_TRUE(fm.has_session("ring"));
  const auto latency = fm.apply_session("ring", rng);
  ASSERT_TRUE(latency.has_value());
  EXPECT_LE(*latency, 80e-6);  // fast switch: hardware latency only
  EXPECT_DOUBLE_EQ(fm.external_bandwidth_gbps(), 2 * 2 * 800.0);
}

TEST(FabricManager, UnknownSessionFails) {
  NodeFabricManager fm(4, 4, 1);
  Rng rng(1);
  EXPECT_FALSE(fm.apply_session("nope", rng).has_value());
}

TEST(FabricManager, AdhocPaysControlPlane) {
  NodeFabricManager fm(4, 2, 1);
  Rng rng(1);
  Session s;
  s[0] = OcsPath::kExternal2;
  const auto latency = fm.apply_adhoc(s, rng);
  ASSERT_TRUE(latency.has_value());
  EXPECT_GT(*latency, 500e-6);
}

TEST(FabricManager, ParkAllLoopback) {
  NodeFabricManager fm(4, 4, 2);
  Rng rng(1);
  fm.park_all_loopback(rng);
  EXPECT_DOUBLE_EQ(fm.external_bandwidth_gbps(), 0.0);
  for (int b = 0; b < fm.bundle_count(); ++b)
    EXPECT_DOUBLE_EQ(fm.bundle(b).bandwidth_gbps(OcsPath::kLoopback),
                     2 * 800.0);
}

TEST(FabricManager, HealthTracksBundles) {
  NodeFabricManager fm(4, 4, 1);
  EXPECT_TRUE(fm.healthy());
  fm.bundle(2).fail();
  EXPECT_FALSE(fm.healthy());
  fm.bundle(2).repair();
  EXPECT_TRUE(fm.healthy());
}

std::vector<NodeFabricManager> test_fleet(int nodes) {
  std::vector<NodeFabricManager> fleet;
  fleet.reserve(static_cast<std::size_t>(nodes));
  Session ring;
  ring[0] = OcsPath::kExternal1;
  ring[1] = OcsPath::kExternal2;
  Session park;
  park[0] = OcsPath::kLoopback;
  park[1] = OcsPath::kLoopback;
  for (int n = 0; n < nodes; ++n) {
    fleet.emplace_back(4, 2, 1);
    fleet.back().preload_session("ring", ring);
    fleet.back().preload_session("park", park);
  }
  return fleet;
}

TEST(ReconfigQueue, DrainsFifoWithinBatchBudget) {
  auto fleet = test_fleet(8);
  ReconfigQueue q(/*max_batch=*/3);
  Rng rng(1);
  for (int n = 0; n < 5; ++n) EXPECT_TRUE(q.enqueue(n, "ring", 1.0 + n));
  EXPECT_EQ(q.pending(), 5u);

  const auto first = q.drain_batch(fleet, 10.0, rng);
  ASSERT_EQ(first.size(), 3u);  // batch budget caps the drain
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(first[static_cast<std::size_t>(i)].request.node, i);
    EXPECT_TRUE(first[static_cast<std::size_t>(i)].ok());
    EXPECT_LE(*first[static_cast<std::size_t>(i)].switch_latency_s, 80e-6);
    EXPECT_DOUBLE_EQ(first[static_cast<std::size_t>(i)].drained_at, 10.0);
  }
  EXPECT_EQ(q.pending(), 2u);
  const auto rest = q.drain_batch(fleet, 11.0, rng);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].request.node, 3);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.drained(), 5u);
  EXPECT_EQ(q.failed(), 0u);
}

TEST(ReconfigQueue, CoalescesPerNodeKeepingOldestWait) {
  auto fleet = test_fleet(4);
  ReconfigQueue q;
  Rng rng(1);
  EXPECT_TRUE(q.enqueue(2, "ring", 1.0));
  EXPECT_TRUE(q.enqueue(0, "ring", 2.0));
  // Retarget node 2 while queued: no new entry, position and enqueue time
  // stay those of the original request, target becomes the latest ask.
  EXPECT_FALSE(q.enqueue(2, "park", 3.0));
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_EQ(q.coalesced(), 1u);

  const auto out = q.drain_batch(fleet, 5.0, rng);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].request.node, 2);
  EXPECT_EQ(out[0].request.session, "park");
  EXPECT_DOUBLE_EQ(out[0].request.enqueued_at, 1.0);
  // Once drained, the node can be queued afresh.
  EXPECT_TRUE(q.enqueue(2, "ring", 6.0));
}

TEST(ReconfigQueue, ReportsFailuresWithoutStalling) {
  auto fleet = test_fleet(3);
  fleet[1].bundle(0).fail();
  ReconfigQueue q;
  Rng rng(1);
  q.enqueue(0, "ring", 0.0);
  q.enqueue(1, "ring", 0.0);   // touched bundle failed -> !ok()
  q.enqueue(2, "nope", 0.0);   // unknown session -> !ok()
  q.enqueue(99, "ring", 0.0);  // out-of-fleet node -> !ok()
  const auto out = q.drain_batch(fleet, 1.0, rng);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(out[0].ok());
  EXPECT_FALSE(out[1].ok());
  EXPECT_FALSE(out[2].ok());
  EXPECT_FALSE(out[3].ok());
  EXPECT_EQ(q.failed(), 3u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace ihbd::ocstrx
