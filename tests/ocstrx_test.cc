#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/evsim/engine.h"
#include "src/ocstrx/bundle.h"
#include "src/ocstrx/fabric_manager.h"
#include "src/ocstrx/reconfig_queue.h"
#include "src/ocstrx/transceiver.h"

namespace ihbd::ocstrx {
namespace {

TEST(Transceiver, StartsIdleAndDark) {
  Transceiver trx(0);
  EXPECT_EQ(trx.state(), TrxState::kIdle);
  EXPECT_FALSE(trx.active_path().has_value());
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kExternal1), 0.0);
}

TEST(Transceiver, SynchronousReconfigureActivates) {
  Transceiver trx(0);
  Rng rng(1);
  const auto latency = trx.reconfigure_now(OcsPath::kExternal1, rng);
  ASSERT_TRUE(latency.has_value());
  EXPECT_GE(*latency, 60e-6);
  EXPECT_LE(*latency, 80e-6);
  EXPECT_EQ(trx.state(), TrxState::kActive);
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kExternal1), 800.0);
}

TEST(Transceiver, TimeDivisionExclusivity) {
  // §4.1 Design 1: activating one path completely disables the others.
  Transceiver trx(0);
  Rng rng(1);
  trx.reconfigure_now(OcsPath::kExternal1, rng);
  trx.reconfigure_now(OcsPath::kExternal2, rng);
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kExternal1), 0.0);
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kExternal2), 800.0);
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kLoopback), 0.0);
}

TEST(Transceiver, ReconfigureToSamePathIsFree) {
  Transceiver trx(0);
  Rng rng(1);
  trx.reconfigure_now(OcsPath::kLoopback, rng);
  const auto again = trx.reconfigure_now(OcsPath::kLoopback, rng);
  ASSERT_TRUE(again.has_value());
  EXPECT_DOUBLE_EQ(*again, 0.0);
}

TEST(Transceiver, ControlPlaneLatencyWhenNotPreloaded) {
  Transceiver trx(0);
  Rng rng(1);
  const auto cold =
      trx.reconfigure_now(OcsPath::kExternal1, rng, /*preloaded=*/false);
  ASSERT_TRUE(cold.has_value());
  EXPECT_GT(*cold, 500e-6);  // hardware + control plane
}

TEST(Transceiver, EventDrivenReconfiguration) {
  Transceiver trx(0);
  Rng rng(1);
  evsim::Engine engine;
  bool done = false;
  ASSERT_TRUE(trx.reconfigure(engine, OcsPath::kExternal1, rng,
                              /*preloaded=*/true, [&] { done = true; }));
  EXPECT_EQ(trx.state(), TrxState::kReconfiguring);
  EXPECT_DOUBLE_EQ(trx.bandwidth_gbps(OcsPath::kExternal1), 0.0);
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(trx.state(), TrxState::kActive);
  EXPECT_GE(engine.now(), 60e-6);
  EXPECT_LE(engine.now(), 80e-6);
}

TEST(Transceiver, RejectsReconfigureWhileInFlight) {
  Transceiver trx(0);
  Rng rng(1);
  evsim::Engine engine;
  ASSERT_TRUE(trx.reconfigure(engine, OcsPath::kExternal1, rng, true));
  EXPECT_FALSE(trx.reconfigure(engine, OcsPath::kExternal2, rng, true));
}

TEST(Transceiver, FailureDropsInFlightCompletion) {
  Transceiver trx(0);
  Rng rng(1);
  evsim::Engine engine;
  bool done = false;
  trx.reconfigure(engine, OcsPath::kExternal1, rng, true, [&] { done = true; });
  trx.fail();
  engine.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(trx.state(), TrxState::kFailed);
}

TEST(Transceiver, FailAndRepairLifecycle) {
  Transceiver trx(0);
  Rng rng(1);
  trx.fail();
  EXPECT_FALSE(trx.healthy());
  EXPECT_FALSE(trx.reconfigure_now(OcsPath::kExternal1, rng).has_value());
  trx.repair();
  EXPECT_TRUE(trx.healthy());
  EXPECT_TRUE(trx.reconfigure_now(OcsPath::kExternal1, rng).has_value());
}

TEST(Bundle, AggregatesLineRate) {
  Bundle b(0, 0, 1, 8);
  EXPECT_DOUBLE_EQ(b.total_line_rate_gbps(), 6400.0);  // 8 x 800G = 6.4 Tbps
}

TEST(Bundle, SteerMovesAllMembers) {
  Bundle b(0, 0, 1, 8);
  Rng rng(1);
  const auto latency = b.steer(OcsPath::kExternal1, rng);
  ASSERT_TRUE(latency.has_value());
  EXPECT_DOUBLE_EQ(b.bandwidth_gbps(OcsPath::kExternal1), 6400.0);
  EXPECT_DOUBLE_EQ(b.bandwidth_gbps(OcsPath::kLoopback), 0.0);
}

TEST(Bundle, PartialFailureDegradesBandwidth) {
  Bundle b(0, 0, 1, 8);
  Rng rng(1);
  b.steer(OcsPath::kExternal1, rng);
  b.fail_one(3);
  EXPECT_FALSE(b.healthy());
  EXPECT_DOUBLE_EQ(b.bandwidth_gbps(OcsPath::kExternal1), 5600.0);
}

TEST(Bundle, SteerFailsWhenMemberFailed) {
  Bundle b(0, 0, 1, 4);
  Rng rng(1);
  b.fail_one(0);
  EXPECT_FALSE(b.steer(OcsPath::kExternal2, rng).has_value());
  b.repair();
  EXPECT_TRUE(b.steer(OcsPath::kExternal2, rng).has_value());
}

TEST(Bundle, AsyncSteerCompletesViaBarrier) {
  Bundle b(0, 0, 1, 4);
  Rng rng(1);
  evsim::Engine engine;
  bool done = false;
  ASSERT_TRUE(b.steer_async(engine, OcsPath::kExternal1, rng, true,
                            [&] { done = true; }));
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(b.bandwidth_gbps(OcsPath::kExternal1), 3200.0);
}

TEST(FabricManager, RejectsBadConfigs) {
  EXPECT_THROW(NodeFabricManager(1, 1, 8), ConfigError);
  EXPECT_THROW(NodeFabricManager(4, 5, 8), ConfigError);
  EXPECT_THROW(NodeFabricManager(4, 4, 0), ConfigError);
}

TEST(FabricManager, SessionPreloadAndApply) {
  NodeFabricManager fm(4, 4, 2);
  Rng rng(1);
  Session ring;
  ring[0] = OcsPath::kExternal1;
  ring[1] = OcsPath::kExternal1;
  ring[2] = OcsPath::kLoopback;
  ring[3] = OcsPath::kLoopback;
  fm.preload_session("ring", ring);
  EXPECT_TRUE(fm.has_session("ring"));
  const auto latency = fm.apply_session("ring", rng);
  ASSERT_TRUE(latency.has_value());
  EXPECT_LE(*latency, 80e-6);  // fast switch: hardware latency only
  EXPECT_DOUBLE_EQ(fm.external_bandwidth_gbps(), 2 * 2 * 800.0);
}

TEST(FabricManager, UnknownSessionFails) {
  NodeFabricManager fm(4, 4, 1);
  Rng rng(1);
  EXPECT_FALSE(fm.apply_session("nope", rng).has_value());
}

TEST(FabricManager, AdhocPaysControlPlane) {
  NodeFabricManager fm(4, 2, 1);
  Rng rng(1);
  Session s;
  s[0] = OcsPath::kExternal2;
  const auto latency = fm.apply_adhoc(s, rng);
  ASSERT_TRUE(latency.has_value());
  EXPECT_GT(*latency, 500e-6);
}

TEST(FabricManager, ParkAllLoopback) {
  NodeFabricManager fm(4, 4, 2);
  Rng rng(1);
  fm.park_all_loopback(rng);
  EXPECT_DOUBLE_EQ(fm.external_bandwidth_gbps(), 0.0);
  for (int b = 0; b < fm.bundle_count(); ++b)
    EXPECT_DOUBLE_EQ(fm.bundle(b).bandwidth_gbps(OcsPath::kLoopback),
                     2 * 800.0);
}

TEST(FabricManager, HealthTracksBundles) {
  NodeFabricManager fm(4, 4, 1);
  EXPECT_TRUE(fm.healthy());
  fm.bundle(2).fail();
  EXPECT_FALSE(fm.healthy());
  fm.bundle(2).repair();
  EXPECT_TRUE(fm.healthy());
}

std::vector<NodeFabricManager> test_fleet(int nodes) {
  std::vector<NodeFabricManager> fleet;
  fleet.reserve(static_cast<std::size_t>(nodes));
  Session ring;
  ring[0] = OcsPath::kExternal1;
  ring[1] = OcsPath::kExternal2;
  Session park;
  park[0] = OcsPath::kLoopback;
  park[1] = OcsPath::kLoopback;
  for (int n = 0; n < nodes; ++n) {
    fleet.emplace_back(4, 2, 1);
    fleet.back().preload_session("ring", ring);
    fleet.back().preload_session("park", park);
  }
  return fleet;
}

TEST(ReconfigQueue, DrainsFifoWithinBatchBudget) {
  auto fleet = test_fleet(8);
  ReconfigQueue q(/*max_batch=*/3);
  Rng rng(1);
  for (int n = 0; n < 5; ++n) EXPECT_TRUE(q.enqueue(n, "ring", 1.0 + n));
  EXPECT_EQ(q.pending(), 5u);

  const auto first = q.drain_batch(fleet, 10.0, rng);
  ASSERT_EQ(first.size(), 3u);  // batch budget caps the drain
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(first[static_cast<std::size_t>(i)].request.node, i);
    EXPECT_TRUE(first[static_cast<std::size_t>(i)].ok());
    EXPECT_LE(*first[static_cast<std::size_t>(i)].switch_latency_s, 80e-6);
    EXPECT_DOUBLE_EQ(first[static_cast<std::size_t>(i)].drained_at, 10.0);
  }
  EXPECT_EQ(q.pending(), 2u);
  const auto rest = q.drain_batch(fleet, 11.0, rng);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].request.node, 3);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.drained(), 5u);
  EXPECT_EQ(q.failed(), 0u);
}

TEST(ReconfigQueue, CoalescesPerNodeKeepingOldestWait) {
  auto fleet = test_fleet(4);
  ReconfigQueue q;
  Rng rng(1);
  EXPECT_TRUE(q.enqueue(2, "ring", 1.0));
  EXPECT_TRUE(q.enqueue(0, "ring", 2.0));
  // Retarget node 2 while queued: no new entry, position and enqueue time
  // stay those of the original request, target becomes the latest ask.
  EXPECT_FALSE(q.enqueue(2, "park", 3.0));
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_EQ(q.coalesced(), 1u);

  const auto out = q.drain_batch(fleet, 5.0, rng);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].request.node, 2);
  EXPECT_EQ(out[0].request.session, "park");
  EXPECT_DOUBLE_EQ(out[0].request.enqueued_at, 1.0);
  // Once drained, the node can be queued afresh.
  EXPECT_TRUE(q.enqueue(2, "ring", 6.0));
}

TEST(ReconfigQueue, ReportsFailuresWithoutStalling) {
  auto fleet = test_fleet(3);
  fleet[1].bundle(0).fail();
  ReconfigQueue q;
  Rng rng(1);
  q.enqueue(0, "ring", 0.0);
  q.enqueue(1, "ring", 0.0);   // touched bundle failed -> transient !ok()
  q.enqueue(2, "nope", 0.0);   // unknown session -> permanent !ok()
  q.enqueue(99, "ring", 0.0);  // out-of-fleet node -> permanent !ok()
  const auto out = q.drain_batch(fleet, 1.0, rng);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(out[0].ok());
  EXPECT_FALSE(out[1].ok());
  EXPECT_TRUE(out[1].will_retry);  // hardware can recover: retry
  EXPECT_FALSE(out[2].ok());
  EXPECT_TRUE(out[2].permanent);  // a wrong request stays wrong: resolve
  EXPECT_FALSE(out[3].ok());
  EXPECT_TRUE(out[3].permanent);
  EXPECT_EQ(q.failed(), 3u);
  EXPECT_EQ(q.retrying(), 1u);
  EXPECT_EQ(q.drained(), 3u);  // node 1 is unresolved, not drained
  EXPECT_FALSE(q.empty());

  // The bundle comes back; the retry succeeds once its backoff elapses.
  fleet[1].bundle(0).repair();
  ASSERT_TRUE(q.next_retry_at().has_value());
  const auto again = q.drain_batch(fleet, *q.next_retry_at(), rng);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(again[0].ok());
  EXPECT_EQ(again[0].request.node, 1);
  EXPECT_EQ(again[0].request.attempts, 2);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.drained(), 4u);
}

TEST(ReconfigQueue, BackoffScheduleIsCappedExponential) {
  RetryPolicy p;
  p.base_backoff = 2.0;
  p.backoff_factor = 2.0;
  p.max_backoff = 16.0;
  EXPECT_DOUBLE_EQ(p.backoff_for(1), 2.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(2), 4.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(3), 8.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(4), 16.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(5), 16.0);  // capped
  EXPECT_DOUBLE_EQ(p.backoff_for(50), 16.0);

  // The queue schedules exactly that ladder: each failed attempt's next
  // deadline is now + backoff_for(attempts so far).
  auto fleet = test_fleet(1);
  fleet[0].bundle(0).fail();
  p.max_attempts = 100;
  ReconfigQueue q(/*max_batch=*/4, p);
  Rng rng(1);
  q.enqueue(0, "ring", 0.0);
  double now = 0.0;
  const double expect_gap[] = {2.0, 4.0, 8.0, 16.0, 16.0};
  for (const double gap : expect_gap) {
    const auto out = q.drain_batch(fleet, now, rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].will_retry);
    ASSERT_TRUE(q.next_retry_at().has_value());
    EXPECT_DOUBLE_EQ(*q.next_retry_at(), now + gap);
    // Draining before the deadline is a no-op: the request backs off.
    EXPECT_TRUE(q.drain_batch(fleet, now + gap / 2, rng).empty());
    now = *q.next_retry_at();
  }
  EXPECT_EQ(q.retried(), 5u);
}

TEST(ReconfigQueue, DeadLettersAfterMaxAttempts) {
  auto fleet = test_fleet(2);
  fleet[1].bundle(1).fail();
  RetryPolicy p;
  p.max_attempts = 3;
  p.base_backoff = 1.0;
  p.backoff_factor = 2.0;
  p.max_backoff = 4.0;
  ReconfigQueue q(/*max_batch=*/4, p);
  Rng rng(1);
  q.enqueue(1, "ring", 0.0);
  double now = 0.0;
  for (int attempt = 1; attempt <= 3; ++attempt) {
    const auto out = q.drain_batch(fleet, now, rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].request.attempts, attempt);
    EXPECT_FALSE(out[0].ok());
    if (attempt < 3) {
      EXPECT_TRUE(out[0].will_retry);
      now = *q.next_retry_at();
    } else {
      EXPECT_TRUE(out[0].dead_lettered);
      EXPECT_FALSE(out[0].will_retry);
    }
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.dead_lettered(), 1u);
  EXPECT_EQ(q.drained(), 1u);  // dead-lettering RESOLVES the request
  EXPECT_EQ(q.failed(), 3u);
  ASSERT_EQ(q.dead_letters().size(), 1u);
  EXPECT_EQ(q.dead_letters()[0].node, 1);
  EXPECT_EQ(q.dead_letters()[0].session, "ring");
  EXPECT_EQ(q.dead_letters()[0].attempts, 3);
  // The dead letter freed the coalescing key: the node can re-enqueue.
  EXPECT_TRUE(q.enqueue(1, "park", now));
}

TEST(ReconfigQueue, InjectedFailuresAreDeterministic) {
  fault::InjectionPlan plan;
  plan.session_failure_rate = 0.5;
  plan.seed = 7;
  // The plan is a pure hash: same (node, sequence) -> same verdict.
  for (int n = 0; n < 4; ++n) {
    for (std::uint64_t s = 0; s < 8; ++s) {
      EXPECT_EQ(plan.should_fail(n, s), plan.should_fail(n, s));
    }
  }

  // Two identical queues see identical injected-failure sequences.
  const auto run = [&] {
    auto fleet = test_fleet(8);
    ReconfigQueue q(/*max_batch=*/64, RetryPolicy{}, plan);
    Rng rng(3);
    for (int n = 0; n < 8; ++n) q.enqueue(n, "ring", 0.0);
    std::string verdicts;
    for (const auto& oc : q.drain_batch(fleet, 1.0, rng))
      verdicts += oc.injected ? 'x' : '.';
    return verdicts;
  };
  const std::string a = run();
  EXPECT_EQ(a, run());
  EXPECT_NE(a.find('x'), std::string::npos);  // rate 0.5 over 8 draws
  EXPECT_NE(a.find('.'), std::string::npos);

  // rate = 1 fails every attempt until the dead-letter gives up.
  plan.session_failure_rate = 1.0;
  auto fleet = test_fleet(1);
  RetryPolicy p;
  p.max_attempts = 4;
  ReconfigQueue q(/*max_batch=*/4, p, plan);
  Rng rng(3);
  q.enqueue(0, "ring", 0.0);
  double now = 0.0;
  while (!q.empty()) {
    q.drain_batch(fleet, now, rng);
    now = q.next_retry_at().value_or(now + 1.0);
  }
  EXPECT_EQ(q.injected(), 4u);
  EXPECT_EQ(q.dead_lettered(), 1u);
}

TEST(ReconfigQueue, CoalescingOntoBackoffKeepsSlotButResetsBudget) {
  auto fleet = test_fleet(2);
  fleet[0].bundle(0).fail();
  RetryPolicy p;
  p.max_attempts = 3;
  p.base_backoff = 2.0;
  p.max_backoff = 8.0;
  ReconfigQueue q(/*max_batch=*/4, p);
  Rng rng(1);
  q.enqueue(0, "ring", 0.0);
  auto out = q.drain_batch(fleet, 1.0, rng);
  ASSERT_TRUE(out[0].will_retry);
  const double deadline = *q.next_retry_at();

  // Retarget while backing off: no new entry, the backoff slot and the
  // original enqueue time survive, but the attempt budget is fresh (the
  // intent is new).
  EXPECT_FALSE(q.enqueue(0, "park", 2.0));
  EXPECT_EQ(q.coalesced(), 1u);
  EXPECT_DOUBLE_EQ(*q.next_retry_at(), deadline);

  fleet[0].bundle(0).repair();
  out = q.drain_batch(fleet, deadline, rng);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].ok());
  EXPECT_EQ(out[0].request.session, "park");
  EXPECT_DOUBLE_EQ(out[0].request.enqueued_at, 0.0);
  EXPECT_EQ(out[0].request.attempts, 1);  // budget was reset on coalesce
}

TEST(ReconfigQueue, PromotedRetriesKeepDeadlineOrder) {
  auto fleet = test_fleet(4);
  fleet[2].bundle(0).fail();
  fleet[3].bundle(0).fail();
  RetryPolicy p;
  p.base_backoff = 2.0;
  p.max_backoff = 8.0;
  p.max_attempts = 5;
  ReconfigQueue q(/*max_batch=*/8, p);
  Rng rng(1);
  // Node 3 fails first (earlier deadline), then node 2 one drain later.
  q.enqueue(3, "ring", 0.0);
  q.drain_batch(fleet, 0.0, rng);        // 3 -> retry at 2.0
  q.enqueue(2, "ring", 0.5);
  q.drain_batch(fleet, 0.5, rng);        // 2 -> retry at 2.5
  q.enqueue(1, "ring", 1.0);             // fresh arrival
  fleet[2].bundle(0).repair();
  fleet[3].bundle(0).repair();
  // At 3.0 both retries are due: they rejoin ahead-of-batch in deadline
  // order (3 before 2), after the already-ready fresh arrival.
  const auto out = q.drain_batch(fleet, 3.0, rng);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].request.node, 1);
  EXPECT_EQ(out[1].request.node, 3);
  EXPECT_EQ(out[2].request.node, 2);
  for (const auto& oc : out) EXPECT_TRUE(oc.ok());
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace ihbd::ocstrx
