// Tests for the physics-grounded fault generator (src/fault/physics_generator.h):
// calibration against the paper's Appendix A statistics, the burstiness
// contract versus the Poisson baseline, determinism, config validation, and
// the overlapping-interval geometry storm traces feed into every consumer.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/common/error.h"
#include "src/fault/generator.h"
#include "src/fault/injection.h"
#include "src/fault/physics_generator.h"

namespace ihbd::fault {
namespace {

TEST(PhysicsGenerator, CalibratedToPaperStatistics) {
  // Appendix A / Fig. 18 targets: mean 2.33%, p50 1.67%, p99 7.22% for
  // 8-GPU nodes over 348 days. The degradation models reproduce mean/p50
  // on the Poisson generator's tolerance; the correlated tail is heavier
  // by design (that is the point of the physics), so p99 gets more slack.
  for (const auto& cfg : {physics_trace_defaults(), storm_trace_defaults()}) {
    const Summary s = generate_physics_trace(cfg).ratio_summary(0.25);
    EXPECT_NEAR(s.mean, PaperTraceStats::kMeanRatio, 0.006);
    EXPECT_NEAR(s.p50, PaperTraceStats::kP50Ratio, 0.006);
    EXPECT_NEAR(s.p99, PaperTraceStats::kP99Ratio, 0.035);
  }
}

TEST(PhysicsGenerator, StrictlyBurstierThanPoissonBaseline) {
  // The degradation models exist because real failures arrive in correlated
  // bursts: at the calibrated defaults both must have a strictly heavier
  // p99/p50 ratio than the memoryless Poisson baseline.
  const Summary poisson = generate_trace().ratio_summary(0.25);
  const Summary physics =
      generate_physics_trace(physics_trace_defaults()).ratio_summary(0.25);
  const Summary storm =
      generate_physics_trace(storm_trace_defaults()).ratio_summary(0.25);
  ASSERT_GT(poisson.p50, 0.0);
  EXPECT_GT(physics.p99 / physics.p50, poisson.p99 / poisson.p50);
  EXPECT_GT(storm.p99 / storm.p50, poisson.p99 / poisson.p50);
}

TEST(PhysicsGenerator, DeterministicForSeed) {
  PhysicsTraceConfig cfg = storm_trace_defaults();
  cfg.duration_days = 60.0;
  const auto a = generate_physics_trace(cfg);
  const auto b = generate_physics_trace(cfg);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
    EXPECT_DOUBLE_EQ(a.events()[i].start_day, b.events()[i].start_day);
    EXPECT_DOUBLE_EQ(a.events()[i].end_day, b.events()[i].end_day);
  }
  cfg.seed = 7;
  const auto c = generate_physics_trace(cfg);
  EXPECT_NE(a.events().size(), c.events().size());
}

TEST(PhysicsGenerator, EventsStayInsideTheWindow) {
  PhysicsTraceConfig cfg = storm_trace_defaults();
  cfg.duration_days = 90.0;
  const auto trace = generate_physics_trace(cfg);
  EXPECT_FALSE(trace.events().empty());
  for (const auto& ev : trace.events()) {
    EXPECT_GE(ev.node, 0);
    EXPECT_LT(ev.node, cfg.node_count);
    EXPECT_GE(ev.start_day, 0.0);
    EXPECT_LT(ev.start_day, ev.end_day);
    EXPECT_LE(ev.end_day, cfg.duration_days);
  }
}

TEST(PhysicsGenerator, StormTracesProduceOverlappingIntervals) {
  // Storm outages land on nodes that may already be down with a degradation
  // fault: the default storm trace must contain same-node interval overlap,
  // the geometry every consumer's depth counting exists for (see the
  // FaultEvent overlap contract in src/fault/trace.h).
  const auto trace = generate_physics_trace(storm_trace_defaults());
  std::vector<std::vector<std::pair<double, double>>> per(
      static_cast<std::size_t>(trace.node_count()));
  for (const auto& ev : trace.events())
    per[static_cast<std::size_t>(ev.node)].push_back(
        {ev.start_day, ev.end_day});
  int overlapping = 0;
  for (auto& v : per) {
    std::sort(v.begin(), v.end());
    for (std::size_t i = 1; i < v.size(); ++i)
      if (v[i].first < v[i - 1].second) ++overlapping;
  }
  EXPECT_GT(overlapping, 0);
}

TEST(PhysicsGenerator, CrewPoolQueuesDomainStorms) {
  // With one crew, a domain-wide storm must drain serially: the repair
  // completion times of its nodes are strictly staggered, giving storms
  // their long tail. A large crew pool repairs the same storm in parallel.
  PhysicsTraceConfig cfg = storm_trace_defaults();
  cfg.duration_days = 120.0;
  cfg.excursion_rate_per_day = 0.0;   // isolate the storm process
  cfg.aging_db_per_day = 0.0;
  cfg.aging_walk_db = 0.0;
  cfg.drift_sigma_db = 0.0;
  cfg.transient_prob = 0.0;
  cfg.storm.rate_per_day = 0.05;
  cfg.storm.domain_prob = 1.0;  // every storm takes a whole domain
  cfg.storm.repair_crews = 1;
  const auto queued = generate_physics_trace(cfg);
  cfg.storm.repair_crews = 1000;
  const auto parallel = generate_physics_trace(cfg);
  ASSERT_FALSE(queued.events().empty());
  ASSERT_EQ(queued.events().size(), parallel.events().size());
  // Same outages, strictly longer downtime under the bounded crew pool.
  double queued_downtime = 0.0, parallel_downtime = 0.0;
  for (const auto& ev : queued.events()) queued_downtime += ev.duration();
  for (const auto& ev : parallel.events()) parallel_downtime += ev.duration();
  EXPECT_GT(queued_downtime, 2.0 * parallel_downtime);
}

TEST(PhysicsGenerator, ValidationNamesTheOffendingField) {
  const auto expect_names = [](PhysicsTraceConfig cfg, const char* field) {
    try {
      generate_physics_trace(cfg);
      FAIL() << "expected ConfigError naming " << field;
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  PhysicsTraceConfig cfg;
  cfg.node_count = 0;
  expect_names(cfg, "PhysicsTraceConfig.node_count");
  cfg = {};
  cfg.duration_days = -1.0;
  expect_names(cfg, "PhysicsTraceConfig.duration_days");
  cfg = {};
  cfg.tick_days = 0.0;
  expect_names(cfg, "PhysicsTraceConfig.tick_days");
  cfg = {};
  cfg.transient_prob = 1.5;
  expect_names(cfg, "PhysicsTraceConfig.transient_prob");
  cfg = {};
  cfg.aging_db_per_day = -0.1;
  expect_names(cfg, "PhysicsTraceConfig.aging_db_per_day");
  cfg = {};
  cfg.ber_threshold = 0.7;
  expect_names(cfg, "PhysicsTraceConfig.ber_threshold");
  cfg = {};
  cfg.storm.rate_per_day = 0.01;
  cfg.storm.repair_crews = 0;
  expect_names(cfg, "PhysicsTraceConfig.storm.repair_crews");
  cfg = {};
  cfg.storm.rate_per_day = 0.01;
  cfg.storm.domain_prob = -0.2;
  expect_names(cfg, "PhysicsTraceConfig.storm.domain_prob");
}

TEST(InjectionPlan, PureHashIsDeterministicAndRateBounded) {
  InjectionPlan off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.should_fail(3, 17));

  InjectionPlan plan;
  plan.session_failure_rate = 0.10;
  plan.seed = 42;
  int hits = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const bool fail = plan.should_fail(i % 64, static_cast<std::uint64_t>(i));
    EXPECT_EQ(fail,
              plan.should_fail(i % 64, static_cast<std::uint64_t>(i)));
    hits += fail ? 1 : 0;
  }
  // ~10% +- sampling noise.
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.10, 0.01);

  // A different seed is a different plan.
  InjectionPlan other = plan;
  other.seed = 43;
  int agree = 0;
  for (int i = 0; i < 1000; ++i)
    agree += plan.should_fail(0, static_cast<std::uint64_t>(i)) ==
                     other.should_fail(0, static_cast<std::uint64_t>(i))
                 ? 1
                 : 0;
  EXPECT_LT(agree, 1000);
}

TEST(TraceModel, NamesAreCanonical) {
  EXPECT_STREQ(trace_model_name(TraceModel::kPoisson), "poisson");
  EXPECT_STREQ(trace_model_name(TraceModel::kPhysics), "physics");
  EXPECT_STREQ(trace_model_name(TraceModel::kStorm), "storm");
}

}  // namespace
}  // namespace ihbd::fault
