// Observability stack (src/obs): lock-free sharded metrics vs a serial
// oracle under concurrent hammering, histogram bucketing, snapshot merge
// associativity, disabled-path no-ops, span-trace JSON well-formedness
// (balanced B/E, per-thread monotonic timestamps), and the standing
// invariant that instrumentation never perturbs bench output (byte-equal
// replay-grid tables with obs on vs off).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/fault_bench_common.h"
#include "src/common/table.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/thread_pool.h"

namespace ihbd::obs {
namespace {

/// Every test leaves the global obs state as it found it (off, zeroed):
/// the suite shares one process-wide registry.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    set_trace_enabled(false);
    reset();
    clear_trace();
  }
  void TearDown() override { SetUp(); }
};

#if IHBD_OBS

TEST_F(ObsTest, CounterConcurrentHammerMatchesSerialOracle) {
  set_enabled(true);
  Counter& c = counter("test.hammer.counter");
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  runtime::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    for (int k = 0; k < kAddsPerTask; ++k) c.add(i % 3 + 1);
  });
  std::uint64_t oracle = 0;
  for (int i = 0; i < kTasks; ++i)
    oracle += static_cast<std::uint64_t>(i % 3 + 1) * kAddsPerTask;
  EXPECT_EQ(c.value(), oracle);
}

TEST_F(ObsTest, HistogramConcurrentHammerMatchesSerialOracle) {
  set_enabled(true);
  Histogram& h = histogram("test.hammer.histogram");
  constexpr int kTasks = 32;
  constexpr int kObsPerTask = 500;
  const auto value_of = [](std::size_t task, int k) {
    // Deterministic spread over ~9 decades, including sub-1 values.
    return 1e-4 * static_cast<double>(task * kObsPerTask + k + 1);
  };
  runtime::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    for (int k = 0; k < kObsPerTask; ++k) h.observe(value_of(i, k));
  });

  std::uint64_t oracle_buckets[kHistogramBuckets] = {};
  double oracle_sum = 0.0;
  for (std::size_t i = 0; i < kTasks; ++i)
    for (int k = 0; k < kObsPerTask; ++k) {
      const double x = value_of(i, k);
      ++oracle_buckets[Histogram::bucket_of(x)];
      oracle_sum += x;
    }
  EXPECT_EQ(h.count(), std::uint64_t{kTasks} * kObsPerTask);
  for (std::size_t b = 0; b < kHistogramBuckets; ++b)
    EXPECT_EQ(h.bucket_count(b), oracle_buckets[b]) << "bucket " << b;
  // The shard sums add in unspecified order: tolerance, not equality.
  EXPECT_NEAR(h.sum(), oracle_sum, 1e-6 * oracle_sum);
}

TEST_F(ObsTest, HistogramBucketing) {
  // Each bucket's inclusive upper bound contains itself; nudging above it
  // moves to the next bucket.
  for (std::size_t b = 1; b + 1 < kHistogramBuckets; ++b) {
    const double ub = Histogram::bucket_upper_bound(b);
    EXPECT_EQ(Histogram::bucket_of(ub), b);
    EXPECT_EQ(Histogram::bucket_of(ub * 1.001), b + 1);
  }
  EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1e300), kHistogramBuckets - 1);

  set_enabled(true);
  Histogram& h = histogram("test.bucketing");
  h.observe(std::nan(""));  // dropped: fits no bucket
  EXPECT_EQ(h.count(), 0u);
  h.observe(1.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::bucket_of(1.0)), 1u);
}

TEST_F(ObsTest, DisabledHandlesAreNoops) {
  Counter& c = counter("test.disabled.counter");
  Gauge& g = gauge("test.disabled.gauge");
  Histogram& h = histogram("test.disabled.histogram");
  c.add(7);
  g.set(3.5);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  {
    IHBD_TRACE_SPAN("disabled_span");
  }
  EXPECT_EQ(trace_json().find("disabled_span"), std::string::npos);
}

TEST_F(ObsTest, SnapshotMergeIsAssociative) {
  // Exactly representable values so (a⊕b)⊕c and a⊕(b⊕c) serialize to the
  // same bytes.
  const auto make = [](std::uint64_t n, double gauge_v) {
    MetricsSnapshot s;
    s.counters["c.shared"] = n;
    s.counters["c.only" + std::to_string(n)] = 1;
    s.gauges["g"] = gauge_v;
    HistogramSnapshot h;
    h.count = n;
    h.sum = static_cast<double>(n) * 0.5;
    h.buckets = {{1.0, n}, {2.0, 2 * n}};
    s.histograms["h"] = h;
    return s;
  };
  const MetricsSnapshot a = make(1, 10.0);
  const MetricsSnapshot b = make(2, 20.0);
  const MetricsSnapshot c = make(4, 40.0);

  MetricsSnapshot left = a;     // (a ⊕ b) ⊕ c
  left.merge(b);
  left.merge(c);
  MetricsSnapshot bc = b;       // a ⊕ (b ⊕ c)
  bc.merge(c);
  MetricsSnapshot right = a;
  right.merge(bc);

  EXPECT_EQ(left.to_json(), right.to_json());
  EXPECT_EQ(left.counters.at("c.shared"), 7u);
  EXPECT_EQ(left.gauges.at("g"), 40.0);  // right operand wins
  EXPECT_EQ(left.histograms.at("h").count, 7u);
}

TEST_F(ObsTest, SnapshotRoundTripsRegisteredMetrics) {
  set_enabled(true);
  counter("test.snap.counter").add(41);
  counter("test.snap.counter").add(1);
  gauge("test.snap.gauge").set(2.5);
  histogram("test.snap.histogram").observe(3.0);
  const MetricsSnapshot s = snapshot();
  EXPECT_EQ(s.counters.at("test.snap.counter"), 42u);
  EXPECT_EQ(s.gauges.at("test.snap.gauge"), 2.5);
  EXPECT_EQ(s.histograms.at("test.snap.histogram").count, 1u);
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"test.snap.counter\":42"), std::string::npos);
  EXPECT_GT(s.to_table().row_count(), 0u);
}

// --- trace ------------------------------------------------------------------

struct ParsedEvent {
  std::string name;
  char phase = '?';
  double ts_us = 0.0;
  int tid = -1;
};

/// Extract the events from the fixed field order trace_json() emits. Field
/// extraction failing (npos finds, garbled numbers) fails the test via the
/// EXPECTs in the caller — this doubles as the well-formedness check.
std::vector<ParsedEvent> parse_events(const std::string& json) {
  std::vector<ParsedEvent> events;
  const std::string kStart = "{\"name\":\"";
  for (std::size_t pos = json.find(kStart); pos != std::string::npos;
       pos = json.find(kStart, pos + 1)) {
    ParsedEvent ev;
    const std::size_t name_begin = pos + kStart.size();
    const std::size_t name_end = json.find('"', name_begin);
    if (name_end == std::string::npos) break;
    ev.name = json.substr(name_begin, name_end - name_begin);
    const std::size_t ph = json.find("\"ph\":\"", name_end);
    if (ph == std::string::npos) break;
    ev.phase = json[ph + 6];
    const std::size_t ts = json.find("\"ts\":", ph);
    if (ts == std::string::npos) break;
    ev.ts_us = std::strtod(json.c_str() + ts + 5, nullptr);
    const std::size_t tid = json.find("\"tid\":", ts);
    if (tid == std::string::npos) break;
    ev.tid = std::atoi(json.c_str() + tid + 6);
    events.push_back(ev);
  }
  return events;
}

TEST_F(ObsTest, TraceJsonWellFormed) {
  set_trace_enabled(true);
  runtime::ThreadPool pool(4);
  pool.parallel_for(16, [&](std::size_t i) {
    IHBD_TRACE_SPAN("outer");
    if (i % 2 == 0) {
      IHBD_TRACE_SPAN("inner");
    }
  });
  set_trace_enabled(false);

  const std::string json = trace_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);

  const std::vector<ParsedEvent> events = parse_events(json);
  ASSERT_EQ(events.size(), 16u + 8u + 16u + 8u);  // 24 B + 24 E

  // Per thread: timestamps monotone non-decreasing, B/E properly nested
  // with matching names, nothing left open.
  std::map<int, std::vector<std::string>> stacks;
  std::map<int, double> last_ts;
  for (const ParsedEvent& ev : events) {
    ASSERT_TRUE(ev.phase == 'B' || ev.phase == 'E') << ev.phase;
    ASSERT_GE(ev.tid, 0);
    if (last_ts.count(ev.tid)) EXPECT_GE(ev.ts_us, last_ts[ev.tid]);
    last_ts[ev.tid] = ev.ts_us;
    auto& stack = stacks[ev.tid];
    if (ev.phase == 'B') {
      stack.push_back(ev.name);
    } else {
      ASSERT_FALSE(stack.empty()) << "E without B on tid " << ev.tid;
      EXPECT_EQ(stack.back(), ev.name);
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks)
    EXPECT_TRUE(stack.empty()) << "unbalanced spans on tid " << tid;
  EXPECT_EQ(trace_dropped(), 0u);

  clear_trace();
  EXPECT_TRUE(parse_events(trace_json()).empty());
}

// --- the invariant the whole design serves ----------------------------------

std::pair<std::string, std::string> replay_grid_table(int threads) {
  fault::TraceGenConfig cfg;
  cfg.node_count = 72;
  cfg.duration_days = 30.0;
  Rng rng(91);
  const auto trace =
      fault::generate_trace(cfg).split_to_half_nodes(rng).remap_nodes(144);
  const auto archs = topo::make_paper_architectures(144, 4);
  const auto grid =
      bench::replay_trace_grid(archs, trace, {8.0, 16.0}, threads);
  Table table("replay grid");
  table.set_header({"TP", "Arch", "Mean waste", "Samples"});
  for (std::size_t cell = 0; cell < grid.cells.size(); ++cell) {
    const auto& r = grid.cells[cell];
    if (!bench::replay_cell_supported(r)) continue;
    table.add_row({std::to_string(cell % 1000), "-",
                   Table::fmt(r.waste_summary.mean, 12),
                   std::to_string(r.waste_ratio.v.size())});
  }
  return {table.to_string(), table.to_csv()};
}

TEST_F(ObsTest, BenchOutputByteIdenticalWithObsOnVsOff) {
  const auto plain = replay_grid_table(/*threads=*/2);

  set_enabled(true);
  set_trace_enabled(true);
  const auto instrumented = replay_grid_table(/*threads=*/2);
  set_enabled(false);
  set_trace_enabled(false);

  EXPECT_EQ(plain.first, instrumented.first);
  EXPECT_EQ(plain.second, instrumented.second);
  // The instrumented run actually recorded something — the identity above
  // is not vacuous.
  const MetricsSnapshot snap = snapshot();
  EXPECT_GT(snap.counters.at("replay.samples"), 0u);
  EXPECT_NE(trace_json().find("replay_window"), std::string::npos);
}

#endif  // IHBD_OBS

}  // namespace
}  // namespace ihbd::obs
