#include "src/sweepd/protocol.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <system_error>

#include <unistd.h>

#include "src/common/error.h"
#include "src/common/serde.h"

namespace ihbd::sweepd {

namespace fs = std::filesystem;

namespace {

struct SweepdObs {
  obs::Counter& shards_claimed;
  obs::Counter& shards_completed;
  obs::Counter& shards_reclaimed;
  obs::Counter& lease_renewals;
  obs::Counter& result_bytes;
  obs::Counter& wait_polls;
  obs::Counter& results_invalid;
  obs::Counter& sweeps;
};

SweepdObs& sweepd_obs() {
  static SweepdObs o{obs::counter("sweepd.shards_claimed"),
                     obs::counter("sweepd.shards_completed"),
                     obs::counter("sweepd.shards_reclaimed"),
                     obs::counter("sweepd.lease_renewals"),
                     obs::counter("sweepd.result_bytes"),
                     obs::counter("sweepd.wait_polls"),
                     obs::counter("sweepd.results_invalid"),
                     obs::counter("sweepd.sweeps")};
  return o;
}

std::string default_owner() {
  char host[256] = "host";
  if (::gethostname(host, sizeof host) != 0) {
    std::snprintf(host, sizeof host, "host");
  }
  host[sizeof host - 1] = '\0';
  return std::string(host) + "-" +
         std::to_string(static_cast<long long>(::getpid()));
}

/// Atomic exclusive create: succeeds iff the file did not exist ("wx").
/// This is the only claim primitive the protocol needs.
bool create_exclusive(const fs::path& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wx");
  if (f == nullptr) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

double lease_age_seconds(const fs::path& lease) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(lease, ec);
  if (ec) return -1.0;  // vanished: not stale, just gone
  const auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double>(age).count();
}

}  // namespace

FileShardContext::FileShardContext(FileShardOptions options)
    : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw ConfigError("sweepd: --shard-dir must not be empty");
  }
  if (options_.owner.empty()) options_.owner = default_owner();
  if (options_.heartbeat_interval_s <= 0.0) {
    options_.heartbeat_interval_s = options_.lease_timeout_s / 4.0;
  }
  dir_ = fs::path(options_.dir);
  std::error_code ec;
  fs::create_directories(dir_ / "metrics", ec);
  if (ec) {
    throw ConfigError("sweepd: cannot create run directory '" +
                      options_.dir + "': " + ec.message());
  }
  // First creator wins the run config; later joiners adopt it so every
  // participant plans with the same granularity even if CLI flags differ.
  const fs::path manifest = dir_ / "MANIFEST";
  const std::string body = "ihbd-sweepd v1\nmax_shards=" +
                           std::to_string(options_.max_shards) + "\n";
  if (!create_exclusive(manifest, body)) {
    std::ifstream in(manifest);
    if (!in) {
      throw ConfigError("sweepd: cannot read " + manifest.string());
    }
    std::string line;
    bool found = false;
    while (std::getline(in, line)) {
      if (line.rfind("max_shards=", 0) == 0) {
        options_.max_shards =
            static_cast<std::size_t>(std::stoull(line.substr(11)));
        found = true;
      }
    }
    if (!found) {
      throw ConfigError("sweepd: malformed MANIFEST in " + options_.dir);
    }
  }
}

FileShardContext::~FileShardContext() { stop_heartbeat(); }

runtime::shard::PlanPolicy FileShardContext::policy() const {
  runtime::shard::PlanPolicy policy;
  policy.max_shards = options_.max_shards;
  policy.split_trials = false;
  return policy;
}

void FileShardContext::begin_sweep(const runtime::shard::ShardPlan& plan) {
  plan_ = plan;
  collected_.clear();
  char name[64];
  std::snprintf(name, sizeof name, "sweep-%03zu-%s", sweep_ordinal_,
                runtime::shard::shard_id_hex(plan.plan_hash).c_str());
  ++sweep_ordinal_;
  sweep_dir_ = dir_ / name;
  std::error_code ec;
  fs::create_directories(sweep_dir_, ec);
  if (ec) {
    throw ConfigError("sweepd: cannot create " + sweep_dir_.string() + ": " +
                      ec.message());
  }
  // The sweep dir name already pins ordinal + plan hash; PLAN is a
  // human-readable cross-check that fails loudly on a genuine hash
  // collision or a tampered dir.
  const std::string body =
      "plan_hash=" + runtime::shard::shard_id_hex(plan.plan_hash) +
      "\nshards=" + std::to_string(plan.shards.size()) +
      "\ncells=" + std::to_string(plan.cell_count) +
      "\ntrials=" + std::to_string(plan.trials) + "\n";
  const fs::path plan_file = sweep_dir_ / "PLAN";
  if (!create_exclusive(plan_file, body)) {
    const std::optional<std::string> existing =
        serde::read_file(plan_file.string());
    if (!existing.has_value() || *existing != body) {
      throw ConfigError("sweepd: " + plan_file.string() +
                        " does not match this process's plan — the run "
                        "directory is shared by sweeps over different specs");
    }
  }
  if (options_.wait_timeout_s > 0.0) {
    has_deadline_ = true;
    wait_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(
                             options_.wait_timeout_s));
  } else {
    has_deadline_ = false;
  }
  sweepd_obs().sweeps.add(1);
}

fs::path FileShardContext::shard_stem(std::size_t shard) const {
  char name[48];
  std::snprintf(name, sizeof name, "s%04zu-%s", shard,
                runtime::shard::shard_id_hex(plan_.shards[shard].id).c_str());
  return sweep_dir_ / name;
}

fs::path FileShardContext::lease_path(std::size_t shard) const {
  return shard_stem(shard) += ".lease";
}

fs::path FileShardContext::result_path(std::size_t shard) const {
  return shard_stem(shard) += ".result";
}

std::string FileShardContext::checkpoint_path(std::size_t shard) const {
  return (shard_stem(shard) += ".ckpt").string();
}

bool FileShardContext::try_create_lease(std::size_t shard) {
  return create_exclusive(lease_path(shard), options_.owner + "\n");
}

std::optional<std::size_t> FileShardContext::claim() {
  for (std::size_t shard = 0; shard < plan_.shards.size(); ++shard) {
    if (collected_.count(shard)) continue;
    std::error_code ec;
    if (fs::exists(result_path(shard), ec)) continue;
    if (try_create_lease(shard)) {
      sweepd_obs().shards_claimed.add(1);
      start_heartbeat(shard);
      return shard;
    }
    // Lease exists. Reclaim only if its heartbeat went stale (owner died
    // or lost the filesystem); the unlink+recreate race between two
    // reclaimers is settled by the exclusive create.
    const double age = lease_age_seconds(lease_path(shard));
    if (age > options_.lease_timeout_s) {
      fs::remove(lease_path(shard), ec);
      if (try_create_lease(shard)) {
        std::fprintf(stderr,
                     "sweepd: [%s] reclaimed stale lease for shard %zu "
                     "(age %.1fs > %.1fs)\n",
                     options_.owner.c_str(), shard, age,
                     options_.lease_timeout_s);
        SweepdObs& o = sweepd_obs();
        o.shards_claimed.add(1);
        o.shards_reclaimed.add(1);
        start_heartbeat(shard);
        return shard;
      }
    }
  }
  return std::nullopt;
}

void FileShardContext::start_heartbeat(std::size_t shard) {
  stop_heartbeat();
  hb_stop_ = false;
  const fs::path lease = lease_path(shard);
  const auto interval = std::chrono::duration<double>(
      std::max(0.01, options_.heartbeat_interval_s));
  heartbeat_ = std::thread([this, lease, interval] {
    std::unique_lock<std::mutex> lock(hb_mu_);
    while (!hb_cv_.wait_for(lock, interval, [this] { return hb_stop_; })) {
      // Rewriting the content bumps mtime — that IS the heartbeat.
      std::ofstream out(lease, std::ios::trunc);
      out << options_.owner << "\n";
      sweepd_obs().lease_renewals.add(1);
    }
  });
}

void FileShardContext::stop_heartbeat() {
  if (!heartbeat_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  heartbeat_.join();
}

void FileShardContext::note_progress(std::size_t shard) {
  // The periodic heartbeat thread already keeps the lease fresh during
  // long-running cells, so completions need no extra I/O here. The hook
  // doubles as the deterministic kill point for the durability tests:
  // with IHBD_SWEEPD_KILL_AFTER=N in the environment, the process
  // SIGKILLs itself on the N-th completed cell — after earlier cells were
  // checkpointed but before this one is, exactly like a machine dying
  // mid-shard. Replay benches finish in milliseconds, so an external
  // `kill -9` cannot reliably land mid-shard; this knob can.
  (void)shard;
  static const long kill_after = [] {
    const char* env = std::getenv("IHBD_SWEEPD_KILL_AFTER");
    return env != nullptr ? std::atol(env) : 0L;
  }();
  if (kill_after > 0) {
    static std::atomic<long> completed{0};
    if (completed.fetch_add(1) + 1 >= kill_after) {
      std::fprintf(stderr,
                   "sweepd: [%s] fault injection: SIGKILL after %ld "
                   "completed cells\n",
                   options_.owner.c_str(), kill_after);
      std::raise(SIGKILL);
    }
  }
}

void FileShardContext::publish_result(std::size_t shard, std::string payload) {
  stop_heartbeat();
  const std::string framed =
      serde::frame_record(kResultMagic, kResultVersion, payload);
  if (!serde::write_file_atomic(result_path(shard).string(), framed)) {
    throw ConfigError("sweepd: cannot write " + result_path(shard).string());
  }
  std::error_code ec;
  fs::remove(lease_path(shard), ec);
  SweepdObs& o = sweepd_obs();
  o.shards_completed.add(1);
  o.result_bytes.add(framed.size());
  collected_.emplace(shard, std::move(payload));
}

void FileShardContext::release(std::size_t shard) {
  stop_heartbeat();
  std::error_code ec;
  fs::remove(lease_path(shard), ec);
}

std::optional<std::vector<std::string>> FileShardContext::try_collect() {
  for (std::size_t shard = 0; shard < plan_.shards.size(); ++shard) {
    if (collected_.count(shard)) continue;
    const std::optional<std::string> bytes =
        serde::read_file(result_path(shard).string());
    if (!bytes.has_value()) return std::nullopt;
    std::string_view payload;
    const serde::FrameStatus status =
        serde::parse_record(*bytes, kResultMagic, kResultVersion, &payload);
    if (status != serde::FrameStatus::ok) {
      // A torn or corrupt result is deleted so the shard becomes claimable
      // again; this participant (or another) will re-execute it.
      std::fprintf(stderr,
                   "sweepd: [%s] discarding invalid result for shard %zu "
                   "(%s)\n",
                   options_.owner.c_str(), shard, serde::to_string(status));
      std::error_code ec;
      fs::remove(result_path(shard), ec);
      sweepd_obs().results_invalid.add(1);
      return std::nullopt;
    }
    collected_.emplace(shard, std::string(payload));
  }
  std::vector<std::string> all;
  all.reserve(plan_.shards.size());
  for (std::size_t shard = 0; shard < plan_.shards.size(); ++shard) {
    all.push_back(collected_.at(shard));
  }
  return all;
}

void FileShardContext::poll_wait() {
  if (has_deadline_ && std::chrono::steady_clock::now() > wait_deadline_) {
    throw ConfigError("sweepd: timed out after " +
                      std::to_string(options_.wait_timeout_s) +
                      "s waiting for shard results in " + sweep_dir_.string());
  }
  sweepd_obs().wait_polls.add(1);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(options_.poll_interval_s));
}

void FileShardContext::note_resumed_metrics(std::string_view metrics_bytes) {
  try {
    serde::Reader r(metrics_bytes);
    const obs::MetricsSnapshot snap = obs::MetricsSnapshot::load(r);
    r.expect_done("resumed metrics snapshot");
    std::lock_guard<std::mutex> lock(carried_mu_);
    carried_.merge(snap);
    has_carried_ = true;
  } catch (const ConfigError&) {
    // A snapshot from an incompatible writer: drop it — metrics are
    // best-effort observability, never worth failing a sweep over.
  }
}

void FileShardContext::end_sweep() {
  stop_heartbeat();
  collected_.clear();
}

bool FileShardContext::write_own_metrics(const obs::MetricsSnapshot& own) {
  obs::MetricsSnapshot merged;
  {
    std::lock_guard<std::mutex> lock(carried_mu_);
    if (has_carried_) merged = carried_;
  }
  merged.merge(own);
  serde::Writer w;
  merged.save(w);
  const std::string framed =
      serde::frame_record(kMetricsMagic, kMetricsVersion, w.buffer());
  const fs::path path = dir_ / "metrics" / (options_.owner + ".bin");
  return serde::write_file_atomic(path.string(), framed);
}

obs::MetricsSnapshot merge_metrics_dir(const std::string& run_dir) {
  obs::MetricsSnapshot merged;
  const fs::path metrics_dir = fs::path(run_dir) / "metrics";
  std::error_code ec;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(metrics_dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".bin") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    const std::optional<std::string> bytes = serde::read_file(file.string());
    if (!bytes.has_value()) continue;
    std::string_view payload;
    if (serde::parse_record(*bytes, kMetricsMagic, kMetricsVersion,
                            &payload) != serde::FrameStatus::ok) {
      std::fprintf(stderr, "sweepd: skipping invalid metrics file %s\n",
                   file.c_str());
      continue;
    }
    try {
      serde::Reader r(payload);
      merged.merge(obs::MetricsSnapshot::load(r));
    } catch (const ConfigError&) {
      std::fprintf(stderr, "sweepd: skipping undecodable metrics file %s\n",
                   file.c_str());
    }
  }
  return merged;
}

}  // namespace ihbd::sweepd
