// File-based shard transport for distributed sweeps: the concrete
// runtime::shard::ShardContext that ihbd-sweepd and bench_util --shard-dir
// install. Any shared filesystem (local disk, NFS) is the only
// coordination channel — there is no server.
//
// Run-directory layout (one run dir serves a whole fleet):
//
//   <dir>/MANIFEST                      first-creator-wins run config
//                                       (max_shards); later joiners adopt
//   <dir>/metrics/<owner>.bin           per-owner obs::MetricsSnapshot
//                                       (serde frame), merged into one
//                                       fleet metrics.json by bench_util
//                                       --metrics or `ihbd-sweepd
//                                       merge-metrics`
//   <dir>/sweep-NNN-<plan_hash16>/      one dir per sweep a binary runs
//                                       (NNN = sweep ordinal in process
//                                       order, so repeated sweeps over an
//                                       identical spec stay distinct)
//     PLAN                              text summary; joiners verify the
//                                       plan hash matches their own
//     sNNNN-<shard_id16>.lease          exclusive claim (O_EXCL create);
//                                       content = owner, mtime = heartbeat
//     sNNNN-<shard_id16>.ckpt{,.1}      checkpoint generations
//                                       (src/runtime/checkpoint.h)
//     sNNNN-<shard_id16>.result         published ShardPayload
//                                       (serde frame "IHRS")
//
// Protocol invariants:
//   * Claim is an atomic exclusive create of the lease file. A lease whose
//     mtime is older than lease_timeout_s is stale: any worker may unlink
//     it and re-claim (the reclaim is logged and counted). A heartbeat
//     thread re-writes the lease every heartbeat_interval_s while the
//     shard executes.
//   * Publishing a result is atomic (temp + rename), after which the lease
//     is released. A result file is authoritative and immutable; claim()
//     never touches a shard whose result validates. Duplicate execution
//     after a reclaim race is benign: execution is deterministic, so both
//     workers publish byte-identical payloads.
//   * try_collect() validates every result frame; an invalid (torn,
//     corrupt) result file is deleted so the shard becomes claimable
//     again.
//   * Kill-resume: a worker that dies mid-shard leaves its checkpoint
//     generations behind; whoever re-claims the shard resumes from the
//     newest valid generation and carries the dead worker's checkpointed
//     metrics snapshot forward (note_resumed_metrics), so fleet metrics
//     lose nothing that was checkpointed.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <condition_variable>
#include <vector>

#include "src/obs/metrics.h"
#include "src/runtime/shard.h"

namespace ihbd::sweepd {

inline constexpr std::uint32_t kResultMagic = 0x53524849;   // "IHRS" LE
inline constexpr std::uint32_t kMetricsMagic = 0x534D4849;  // "IHMS" LE
inline constexpr std::uint32_t kResultVersion = 1;
inline constexpr std::uint32_t kMetricsVersion = 1;

struct FileShardOptions {
  std::string dir;    ///< shared run directory (created if absent)
  std::string owner;  ///< unique per participant; "" = "<host>-<pid>"
  bool execute = true;  ///< worker claims+executes; coordinator only reduces
  /// A lease older than this is stale and may be reclaimed.
  double lease_timeout_s = 15.0;
  /// Sleep between claim/collect attempts while waiting on other workers.
  double poll_interval_s = 0.2;
  /// Lease refresh cadence while executing; 0 = lease_timeout_s / 4.
  double heartbeat_interval_s = 0.0;
  /// Give up waiting for missing results after this long; 0 = wait forever.
  double wait_timeout_s = 0.0;
  /// Plan granularity (PlanPolicy::max_shards). First creator of the run
  /// dir writes it to MANIFEST; later joiners adopt the manifest value, so
  /// mismatched CLI flags cannot fork the plan.
  std::size_t max_shards = 16;
  /// Checkpoint after every N completed cells.
  std::size_t checkpoint_every = 1;
};

class FileShardContext final : public runtime::shard::ShardContext {
 public:
  /// Creates the run directory and MANIFEST (or adopts an existing one,
  /// overriding max_shards from it). Throws ConfigError on an unusable dir
  /// or a malformed manifest.
  explicit FileShardContext(FileShardOptions options);
  ~FileShardContext() override;

  FileShardContext(const FileShardContext&) = delete;
  FileShardContext& operator=(const FileShardContext&) = delete;

  // ShardContext transport interface (see src/runtime/shard.h).
  runtime::shard::PlanPolicy policy() const override;
  void begin_sweep(const runtime::shard::ShardPlan& plan) override;
  bool executes() const override { return options_.execute; }
  std::optional<std::size_t> claim() override;
  std::string checkpoint_path(std::size_t shard) const override;
  std::size_t checkpoint_every() const override {
    return options_.checkpoint_every;
  }
  void note_progress(std::size_t shard) override;
  void publish_result(std::size_t shard, std::string payload) override;
  void release(std::size_t shard) override;
  std::optional<std::vector<std::string>> try_collect() override;
  void poll_wait() override;
  void note_resumed_metrics(std::string_view metrics_bytes) override;
  void end_sweep() override;

  const FileShardOptions& options() const { return options_; }

  /// Publish this process's metrics under metrics/<owner>.bin — the given
  /// snapshot merged with every snapshot carried from resumed checkpoints.
  /// bench_util::finish calls this before merging the fleet.
  bool write_own_metrics(const obs::MetricsSnapshot& own);

 private:
  std::filesystem::path shard_stem(std::size_t shard) const;
  std::filesystem::path lease_path(std::size_t shard) const;
  std::filesystem::path result_path(std::size_t shard) const;
  bool try_create_lease(std::size_t shard);
  void start_heartbeat(std::size_t shard);
  void stop_heartbeat();

  FileShardOptions options_;
  std::filesystem::path dir_;

  // Per-sweep state (between begin_sweep and end_sweep).
  std::filesystem::path sweep_dir_;
  runtime::shard::ShardPlan plan_;
  std::size_t sweep_ordinal_ = 0;
  std::chrono::steady_clock::time_point wait_deadline_{};
  bool has_deadline_ = false;
  /// Validated result payloads already read this sweep (results are
  /// immutable once valid, so each is read at most once).
  std::map<std::size_t, std::string> collected_;

  // Heartbeat thread for the currently executing shard.
  std::thread heartbeat_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;

  // Metrics snapshots recovered from checkpoints of dead incarnations.
  std::mutex carried_mu_;
  obs::MetricsSnapshot carried_;
  bool has_carried_ = false;
};

/// Merge every valid metrics/<owner>.bin under `run_dir` (ascending owner
/// name, so gauge right-wins deterministically). Invalid frames are
/// skipped with a note on stderr. Used by bench_util --metrics and
/// `ihbd-sweepd merge-metrics`.
obs::MetricsSnapshot merge_metrics_dir(const std::string& run_dir);

}  // namespace ihbd::sweepd
