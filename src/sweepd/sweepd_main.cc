// ihbd-sweepd — multi-process driver for distributed sweeps.
//
// Any bench built on bench_util already speaks the shard protocol via its
// --shard-dir flag; this driver is the fleet-side convenience around that:
//
//   ihbd-sweepd worker      --shard-dir D [opts] -- <bench> [bench args]
//   ihbd-sweepd coordinator --shard-dir D [opts] -- <bench> [bench args]
//       exec the bench with the matching --shard-role flags appended.
//       Workers claim+execute shards; the coordinator only reduces (and is
//       the process whose stdout carries the bench's tables).
//
//   ihbd-sweepd run --shard-dir D --workers N [opts] -- <bench> [args]
//       one-machine fleet: fork N workers (stdout/stderr to
//       <dir>/logs/worker-K.log) plus a coordinator inheriting this
//       process's stdout, then wait for all of them. Exit status is the
//       coordinator's (worker failures are reported but non-fatal as long
//       as the coordinator reduced a complete result set).
//
//   ihbd-sweepd status --shard-dir D
//       render the run directory: per sweep, each shard's lease/result/
//       checkpoint state.
//
//   ihbd-sweepd merge-metrics --shard-dir D [-o metrics.json]
//       merge every per-owner metrics snapshot into one fleet
//       metrics.json.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/common/serde.h"
#include "src/sweepd/protocol.h"

namespace {

namespace fs = std::filesystem;
using ihbd::sweepd::kResultMagic;
using ihbd::sweepd::kResultVersion;

constexpr const char* kUsage = R"(ihbd-sweepd — distributed sweep driver

usage:
  ihbd-sweepd worker      --shard-dir DIR [opts] -- <bench> [args...]
  ihbd-sweepd coordinator --shard-dir DIR [opts] -- <bench> [args...]
  ihbd-sweepd run         --shard-dir DIR --workers N [opts] -- <bench> [args...]
  ihbd-sweepd status      --shard-dir DIR
  ihbd-sweepd merge-metrics --shard-dir DIR [-o FILE]

options forwarded to the bench's shard layer:
  --owner NAME            participant id (default <host>-<pid>)
  --shard-count N         plan granularity (first creator wins, default 16)
  --lease-s SECONDS       stale-lease reclaim threshold (default 15)
  --poll-s SECONDS        wait-poll interval (default 0.2)
  --timeout-s SECONDS     give up waiting for results (default: never)
  --checkpoint-every N    checkpoint after every N completed cells (default 1)
)";

struct DriverOptions {
  std::string dir;
  std::string owner;
  std::string shard_count;
  std::string lease_s;
  std::string poll_s;
  std::string timeout_s;
  std::string checkpoint_every;
  int workers = 2;
  std::string out_file = "metrics.json";
  std::vector<std::string> command;
};

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "ihbd-sweepd: %s\n", message.c_str());
  std::exit(2);
}

DriverOptions parse_options(int argc, char** argv, int first) {
  DriverOptions opt;
  int i = first;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--shard-dir" || arg == "--dir") {
      opt.dir = next();
    } else if (arg == "--owner") {
      opt.owner = next();
    } else if (arg == "--shard-count") {
      opt.shard_count = next();
    } else if (arg == "--lease-s") {
      opt.lease_s = next();
    } else if (arg == "--poll-s") {
      opt.poll_s = next();
    } else if (arg == "--timeout-s") {
      opt.timeout_s = next();
    } else if (arg == "--checkpoint-every") {
      opt.checkpoint_every = next();
    } else if (arg == "--workers") {
      opt.workers = std::atoi(next().c_str());
    } else if (arg == "-o" || arg == "--out") {
      opt.out_file = next();
    } else if (arg == "--") {
      for (++i; i < argc; ++i) opt.command.push_back(argv[i]);
      break;
    } else {
      die("unknown option '" + arg + "' (see --help)");
    }
  }
  if (opt.dir.empty()) die("--shard-dir is required");
  return opt;
}

/// The bench argv: the user's command plus the shard flags that wire it
/// into the run directory with the given role.
std::vector<std::string> bench_argv(const DriverOptions& opt,
                                    const std::string& role,
                                    const std::string& owner) {
  if (opt.command.empty()) die("no bench command given (use -- <bench> ...)");
  std::vector<std::string> args = opt.command;
  args.insert(args.end(), {"--shard-dir", opt.dir, "--shard-role", role});
  if (!owner.empty()) args.insert(args.end(), {"--shard-owner", owner});
  if (!opt.shard_count.empty())
    args.insert(args.end(), {"--shard-count", opt.shard_count});
  if (!opt.lease_s.empty())
    args.insert(args.end(), {"--shard-lease-s", opt.lease_s});
  if (!opt.poll_s.empty())
    args.insert(args.end(), {"--shard-poll-s", opt.poll_s});
  if (!opt.timeout_s.empty())
    args.insert(args.end(), {"--shard-timeout-s", opt.timeout_s});
  if (!opt.checkpoint_every.empty())
    args.insert(args.end(), {"--shard-checkpoint-every", opt.checkpoint_every});
  return args;
}

[[noreturn]] void exec_command(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execvp(argv[0], argv.data());
  std::fprintf(stderr, "ihbd-sweepd: cannot exec '%s': %s\n", argv[0],
               std::strerror(errno));
  std::exit(127);
}

/// Fork a child running `args`; when `log_path` is non-empty its
/// stdout+stderr go there (the coordinator keeps the parent's).
pid_t spawn(const std::vector<std::string>& args, const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid < 0) die(std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    if (!log_path.empty()) {
      const int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                            0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
      }
    }
    exec_command(args);
  }
  return pid;
}

int wait_status(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

int cmd_run(const DriverOptions& opt) {
  std::error_code ec;
  fs::create_directories(fs::path(opt.dir) / "logs", ec);
  if (opt.workers < 1) die("--workers must be >= 1");
  std::vector<pid_t> workers;
  for (int w = 0; w < opt.workers; ++w) {
    const std::string owner = "worker-" + std::to_string(w);
    const std::string log =
        (fs::path(opt.dir) / "logs" / (owner + ".log")).string();
    workers.push_back(spawn(bench_argv(opt, "worker", owner), log));
    std::fprintf(stderr, "ihbd-sweepd: started %s (pid %d), log %s\n",
                 owner.c_str(), static_cast<int>(workers.back()), log.c_str());
  }
  const pid_t coordinator =
      spawn(bench_argv(opt, "coordinator", "coordinator"), "");
  const int coord_status = wait_status(coordinator);
  int worker_failures = 0;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const int status = wait_status(workers[w]);
    if (status != 0) {
      ++worker_failures;
      std::fprintf(stderr, "ihbd-sweepd: worker-%zu exited with status %d\n",
                   w, status);
    }
  }
  if (coord_status != 0) {
    std::fprintf(stderr, "ihbd-sweepd: coordinator exited with status %d\n",
                 coord_status);
    return coord_status;
  }
  // The coordinator reduced a complete, validated result set: dead workers
  // (preempted, killed) were by definition compensated for.
  if (worker_failures > 0) {
    std::fprintf(stderr,
                 "ihbd-sweepd: %d worker(s) failed but the coordinator "
                 "completed — their shards were reclaimed\n",
                 worker_failures);
  }
  return 0;
}

int cmd_status(const DriverOptions& opt) {
  const fs::path dir(opt.dir);
  if (!fs::exists(dir)) die("no run directory at " + opt.dir);
  std::vector<fs::path> sweeps;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("sweep-", 0) == 0) {
      sweeps.push_back(entry.path());
    }
  }
  std::sort(sweeps.begin(), sweeps.end());
  std::printf("run directory: %s (%zu sweep(s))\n", opt.dir.c_str(),
              sweeps.size());
  for (const fs::path& sweep : sweeps) {
    std::printf("\n%s\n", sweep.filename().c_str());
    std::map<std::string, std::string> state;  // stem -> description
    for (const auto& entry : fs::directory_iterator(sweep)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("s", 0) != 0) continue;
      const std::size_t dot = name.rfind('.');
      if (dot == std::string::npos) continue;
      const std::string stem = name.substr(0, dot);
      const std::string ext = name.substr(dot);
      if (ext == ".result") {
        const auto bytes = ihbd::serde::read_file(entry.path().string());
        std::string_view payload;
        const bool ok =
            bytes.has_value() &&
            ihbd::serde::parse_record(*bytes, kResultMagic, kResultVersion,
                                      &payload) ==
                ihbd::serde::FrameStatus::ok;
        state[stem] = ok ? "done (" + std::to_string(bytes->size()) + " B)"
                         : "INVALID RESULT";
      } else if (ext == ".lease" && !state.count(stem)) {
        std::string owner = "?";
        std::ifstream in(entry.path());
        std::getline(in, owner);
        state[stem] = "running (lease: " + owner + ")";
      } else if (ext == ".ckpt" && !state.count(stem)) {
        state[stem] = "checkpointed, unclaimed";
      }
    }
    for (const auto& [stem, desc] : state) {
      std::printf("  %-30s %s\n", stem.c_str(), desc.c_str());
    }
  }
  return 0;
}

int cmd_merge_metrics(const DriverOptions& opt) {
  const ihbd::obs::MetricsSnapshot merged =
      ihbd::sweepd::merge_metrics_dir(opt.dir);
  if (merged.counters.empty() && merged.gauges.empty() &&
      merged.histograms.empty()) {
    std::fprintf(stderr, "ihbd-sweepd: no metrics snapshots under %s\n",
                 opt.dir.c_str());
    return 1;
  }
  std::ofstream out(opt.out_file, std::ios::trunc);
  out << merged.to_json() << "\n";
  if (!out) die("cannot write " + opt.out_file);
  std::fprintf(stderr, "ihbd-sweepd: merged fleet metrics -> %s (%zu counters)\n",
               opt.out_file.c_str(), merged.counters.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "-h") {
    std::fputs(kUsage, argc < 2 ? stderr : stdout);
    return argc < 2 ? 2 : 0;
  }
  const std::string verb = argv[1];
  const DriverOptions opt = parse_options(argc, argv, 2);
  if (verb == "worker" || verb == "coordinator") {
    exec_command(bench_argv(opt, verb, opt.owner));
  } else if (verb == "run") {
    return cmd_run(opt);
  } else if (verb == "status") {
    return cmd_status(opt);
  } else if (verb == "merge-metrics") {
    return cmd_merge_metrics(opt);
  }
  die("unknown verb '" + verb + "' (see --help)");
}
