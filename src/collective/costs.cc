#include "src/collective/costs.h"

#include <cmath>

#include "src/common/contracts.h"

namespace ihbd::collective {

namespace {
double xfer_time(double bytes, const LinkParams& link) {
  return link.alpha_s +
         bytes / (link.bandwidth_Bps * link.protocol_efficiency);
}
int ceil_log2(int v) {
  int d = 0;
  while ((1 << d) < v) ++d;
  return d;
}
}  // namespace

double ring_allreduce_time(int n, double bytes, const LinkParams& link) {
  IHBD_EXPECTS(n >= 1 && bytes >= 0.0);
  if (n == 1) return 0.0;
  const double per_step = bytes / n;
  return 2.0 * (n - 1) * xfer_time(per_step, link);
}

double allreduce_bus_utilization(int n, double bytes, double time_s,
                                 double line_rate_Bps) {
  IHBD_EXPECTS(n >= 1 && time_s > 0.0 && line_rate_Bps > 0.0);
  const double busbw = 2.0 * (n - 1) / n * bytes / time_s;
  return busbw / line_rate_Bps;
}

double ring_alltoall_time(int p, double msg_bytes, const LinkParams& link) {
  IHBD_EXPECTS(p >= 1 && msg_bytes >= 0.0);
  if (p == 1) return 0.0;
  // Round j (j = 1..p-1): each rank forwards the data still travelling,
  // (p - j) messages deep. Total = sum_j (alpha + (p-j) msg / bw).
  double total = 0.0;
  for (int j = 1; j <= p - 1; ++j)
    total += xfer_time(static_cast<double>(p - j) * msg_bytes, link);
  return total;
}

double binary_exchange_alltoall_time(int p, double msg_bytes,
                                     const LinkParams& link,
                                     double reconfig_s) {
  IHBD_EXPECTS(p >= 1 && msg_bytes >= 0.0 && reconfig_s >= 0.0);
  if (p == 1) return 0.0;
  const int rounds = ceil_log2(p);
  // Each round exchanges p*m/2 bytes per rank (Appendix G.2's
  // T = ts log2 p + tw m p/2 log2 p), plus unoverlapped switching.
  return rounds *
         (xfer_time(p * msg_bytes / 2.0, link) + reconfig_s);
}

double bruck_alltoall_time(int p, double msg_bytes, const LinkParams& link) {
  IHBD_EXPECTS(p >= 1 && msg_bytes >= 0.0);
  if (p == 1) return 0.0;
  const int rounds = ceil_log2(p);
  return rounds * xfer_time(p * msg_bytes / 2.0, link);
}

double pairwise_alltoall_time(int p, double msg_bytes,
                              const LinkParams& link) {
  IHBD_EXPECTS(p >= 1 && msg_bytes >= 0.0);
  if (p == 1) return 0.0;
  return (p - 1) * xfer_time(msg_bytes, link);
}

}  // namespace ihbd::collective
