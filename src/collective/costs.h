// Analytic cost models for the collectives the paper reasons about:
// Ring AllReduce (the HBD's target primitive, bandwidth-optimal per
// Patarasuk & Yuan), switch-based AllReduce, and the AllToAll family of
// Appendix G (ring O(p^2), Bruck / Binary-Exchange O(p log p), pairwise).
//
// Conventions: times in seconds, sizes in bytes, bandwidth in bytes/s.
// `alpha` is the per-transfer setup latency (the t_s of Appendix G),
// including protocol overhead but not reconfiguration.
#pragma once

namespace ihbd::collective {

/// Link/protocol parameters for analytic estimates.
struct LinkParams {
  double bandwidth_Bps = 100.0e9;  ///< per-direction link bandwidth
  double alpha_s = 2.0e-6;         ///< per-transfer setup latency
  double protocol_efficiency = 1.0;  ///< achievable fraction of line rate
};

/// Ring AllReduce over n ranks of a `bytes`-sized buffer:
/// 2(n-1) steps, each moving bytes/n per link.
double ring_allreduce_time(int n, double bytes, const LinkParams& link);

/// Bus-bandwidth utilization of an AllReduce run: busbw / line rate, with
/// busbw = 2 (n-1)/n * bytes / time (the NCCL convention).
double allreduce_bus_utilization(int n, double bytes, double time_s,
                                 double line_rate_Bps);

/// Ring AllToAll without runtime switching (paper §7): each rank owns
/// (p-1) * msg_bytes destined to the others; data is forwarded around the
/// ring, total transported volume O(p^2) * msg.
double ring_alltoall_time(int p, double msg_bytes, const LinkParams& link);

/// Binary-Exchange AllToAll (Appendix G.2): log2(p) rounds, each moving
/// p * msg_bytes / 2 per rank; add `reconfig_s` of unoverlapped OCSTrx
/// switching per round (0 when fully overlapped with computation).
double binary_exchange_alltoall_time(int p, double msg_bytes,
                                     const LinkParams& link,
                                     double reconfig_s = 0.0);

/// Bruck AllToAll (reference; needs node-level loopback, which InfiniteHBD
/// does not provide - included as the "ideal" comparator of §7).
double bruck_alltoall_time(int p, double msg_bytes, const LinkParams& link);

/// Pairwise-exchange AllToAll over a full mesh: p-1 direct rounds.
double pairwise_alltoall_time(int p, double msg_bytes, const LinkParams& link);

}  // namespace ihbd::collective
