// Functional AllToAll simulations (paper Appendix G.2, Algorithm 6).
//
// These move actual (source, destination) data blocks between ranks and
// verify delivery, in addition to counting the bytes each round moves -
// the basis for the O(p log p) vs O(p^2) comparison of Appendix G.
#pragma once

#include <vector>

namespace ihbd::collective {

struct AllToAllSimResult {
  int rounds = 0;
  double bytes_sent_per_node = 0.0;  ///< total bytes each rank transmitted
  std::vector<double> round_bytes;   ///< per-round bytes per rank (max)
  bool delivered_all = false;        ///< every rank ended with every block
};

/// Binary-Exchange AllToAll over p ranks (p a power of two), msg_bytes per
/// (src, dst) block: log2(p) rounds, rank i exchanging with i XOR 2^k.
/// Tracks Msg and Commset exactly as Algorithm 6 and verifies delivery.
AllToAllSimResult simulate_binary_exchange(int p, double msg_bytes);

/// Ring AllToAll (no runtime switching): p-1 rounds of neighbor forwarding;
/// round j moves every block still in flight one hop. O(p^2) volume.
AllToAllSimResult simulate_ring_alltoall(int p, double msg_bytes);

}  // namespace ihbd::collective
