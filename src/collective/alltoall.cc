#include "src/collective/alltoall.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/common/contracts.h"

namespace ihbd::collective {

namespace {
bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

AllToAllSimResult simulate_binary_exchange(int p, double msg_bytes) {
  IHBD_EXPECTS(is_pow2(p));
  IHBD_EXPECTS(msg_bytes >= 0.0);
  AllToAllSimResult result;
  if (p == 1) {
    result.delivered_all = true;
    return result;
  }

  // blocks[i] = set of (src, dst) blocks currently held by rank i.
  std::vector<std::set<std::pair<int, int>>> blocks(
      static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i)
    for (int d = 0; d < p; ++d)
      blocks[static_cast<std::size_t>(i)].insert({i, d});

  int log2p = 0;
  while ((1 << log2p) < p) ++log2p;

  // Round k = 1..log2 p, partner r = i XOR 2^(log2 p - k); rank i hands
  // over every held block whose destination sits on r's side of the
  // current stride bit (Algorithm 6's m_send window).
  for (int k = 1; k <= log2p; ++k) {
    const int stride = 1 << (log2p - k);
    double max_round_bytes = 0.0;
    std::vector<std::set<std::pair<int, int>>> next = blocks;
    for (int i = 0; i < p; ++i) {
      const int r = i ^ stride;
      std::set<std::pair<int, int>> to_send;
      for (const auto& blk : blocks[static_cast<std::size_t>(i)]) {
        if ((blk.second & stride) == (r & stride)) to_send.insert(blk);
      }
      for (const auto& blk : to_send) {
        next[static_cast<std::size_t>(i)].erase(blk);
        next[static_cast<std::size_t>(r)].insert(blk);
      }
      const double sent = static_cast<double>(to_send.size()) * msg_bytes;
      result.bytes_sent_per_node =
          std::max(result.bytes_sent_per_node, 0.0);  // accumulate below
      max_round_bytes = std::max(max_round_bytes, sent);
    }
    blocks = std::move(next);
    result.round_bytes.push_back(max_round_bytes);
    ++result.rounds;
  }

  for (double b : result.round_bytes) result.bytes_sent_per_node += b;

  // Verify: rank i must end with exactly the blocks destined to i, one
  // from every source.
  result.delivered_all = true;
  for (int i = 0; i < p; ++i) {
    const auto& held = blocks[static_cast<std::size_t>(i)];
    if (static_cast<int>(held.size()) != p) result.delivered_all = false;
    for (int m = 0; m < p; ++m)
      if (held.find({m, i}) == held.end()) result.delivered_all = false;
  }
  return result;
}

AllToAllSimResult simulate_ring_alltoall(int p, double msg_bytes) {
  IHBD_EXPECTS(p >= 1);
  IHBD_EXPECTS(msg_bytes >= 0.0);
  AllToAllSimResult result;
  if (p == 1) {
    result.delivered_all = true;
    return result;
  }

  // blocks[i] holds (src, dst) blocks not yet at their destination.
  std::vector<std::set<std::pair<int, int>>> in_flight(
      static_cast<std::size_t>(p));
  std::vector<std::set<std::pair<int, int>>> delivered(
      static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i)
    for (int d = 0; d < p; ++d) {
      if (d == i) delivered[static_cast<std::size_t>(i)].insert({i, d});
      else in_flight[static_cast<std::size_t>(i)].insert({i, d});
    }

  // Each round every rank forwards all in-flight blocks one hop clockwise.
  for (int round = 0; round < p - 1; ++round) {
    double max_round_bytes = 0.0;
    std::vector<std::set<std::pair<int, int>>> next(
        static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
      const int nxt = (i + 1) % p;
      const double sent =
          static_cast<double>(in_flight[static_cast<std::size_t>(i)].size()) *
          msg_bytes;
      max_round_bytes = std::max(max_round_bytes, sent);
      for (const auto& blk : in_flight[static_cast<std::size_t>(i)]) {
        if (blk.second == nxt)
          delivered[static_cast<std::size_t>(nxt)].insert(blk);
        else
          next[static_cast<std::size_t>(nxt)].insert(blk);
      }
    }
    in_flight = std::move(next);
    result.round_bytes.push_back(max_round_bytes);
    ++result.rounds;
  }

  for (double b : result.round_bytes) result.bytes_sent_per_node += b;

  result.delivered_all = true;
  for (int i = 0; i < p; ++i) {
    if (!in_flight[static_cast<std::size_t>(i)].empty())
      result.delivered_all = false;
    if (static_cast<int>(delivered[static_cast<std::size_t>(i)].size()) != p)
      result.delivered_all = false;
  }
  return result;
}

}  // namespace ihbd::collective
