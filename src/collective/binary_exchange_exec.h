// Event-driven execution of the Binary-Exchange AllToAll (Appendix G) on
// the +/-2^i InfiniteHBD wiring variant, including the OCSTrx fast-switch
// reconfiguration between rounds and its overlap with computation.
//
// This goes beyond the analytic cost model in costs.h: every round's
// transfers run concurrently on the simulated links, rounds barrier on the
// slowest pair, and the 60-80 us OCSTrx switch is paid only where the
// available computation window cannot hide it (§7: "reconfiguration can be
// overlapped with computation").
#pragma once

#include "src/topo/alltoall_topology.h"

namespace ihbd::collective {

struct BinaryExchangeExecConfig {
  double link_bandwidth_Bps = 400e9;  ///< per-direction OCSTrx path rate
  double alpha_s = 2e-6;              ///< per-transfer setup latency
  double reconfig_s = 70e-6;          ///< OCSTrx switch between rounds
  double compute_window_s = 0.0;      ///< per-round computation that can
                                      ///< hide the reconfiguration
};

struct BinaryExchangeExecResult {
  bool feasible = false;        ///< wiring supports the group
  int rounds = 0;
  double total_time_s = 0.0;
  double comm_time_s = 0.0;     ///< pure transfer time
  double reconfig_exposed_s = 0.0;  ///< unhidden switching time
  bool delivered_all = false;   ///< functional verification
};

/// Execute Binary-Exchange AllToAll for the aligned node group
/// [base, base + p) with `msg_bytes` per (src, dst) block. Each node pair
/// exchanges over its direct +/-2^k link; data movement is tracked
/// functionally and verified at the end.
BinaryExchangeExecResult execute_binary_exchange(
    const topo::BinaryHopTopology& wiring, int base, int p, double msg_bytes,
    const BinaryExchangeExecConfig& config = {});

}  // namespace ihbd::collective
