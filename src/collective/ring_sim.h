// Event-driven AllReduce simulation (paper §5.2 reproduction).
//
// Simulates chunk-pipelined Ring AllReduce over direct GPU-GPU links and a
// two-stage (reduce-scatter + all-gather) AllReduce through a central
// switch, with per-hop propagation latency, switch forwarding latency,
// per-chunk protocol overhead and link serialization - the effects that
// separate the paper's measured 77.1-77.3% ring utilization from the
// 81.77% NVLink-switch figure, and give direct links their ~13% latency
// win on small packets.
#pragma once

#include "src/evsim/engine.h"

namespace ihbd::collective {

/// Physical parameters of the simulated fabric. Defaults are calibrated to
/// the paper's small-cluster measurements (96-lane PCIe-4 inter-host HBD
/// for the ring; NVLink + NVSwitch for the switch baseline, no SHARP).
struct RingSimParams {
  double link_bandwidth_Bps = 24.0e9;    ///< per-direction link rate
  double hop_latency_s = 0.60e-6;        ///< GPU-to-GPU propagation
  double switch_latency_s = 0.26e-6;     ///< added per switch traversal
  double chunk_overhead_s = 0.85e-6;     ///< per-chunk protocol handling
  double protocol_efficiency = 0.774;    ///< payload fraction of line rate
  double switch_protocol_efficiency = 0.818;  ///< NVLink switch fabric
  int pipeline_chunks = 16;              ///< chunks per ring segment
};

struct AllReduceResult {
  double time_s = 0.0;
  double bus_utilization = 0.0;  ///< busbw / link rate (NCCL convention)
};

/// Simulate Ring AllReduce over `n` GPUs on direct links, reducing a
/// `bytes` buffer.
AllReduceResult simulate_ring_allreduce(int n, double bytes,
                                        const RingSimParams& params = {});

/// Simulate switch-based AllReduce (reduce-scatter + all-gather through a
/// non-blocking switch, one extra forwarding hop per transfer).
AllReduceResult simulate_switch_allreduce(int n, double bytes,
                                          const RingSimParams& params = {});

/// Small-packet one-hop latency of the two fabrics (paper: direct links
/// reduce latency by ~13% vs. the NVLink switch design).
double direct_link_latency(double bytes, const RingSimParams& params = {});
double switch_link_latency(double bytes, const RingSimParams& params = {});

}  // namespace ihbd::collective
