#include "src/collective/binary_exchange_exec.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "src/common/contracts.h"
#include "src/evsim/engine.h"

namespace ihbd::collective {

BinaryExchangeExecResult execute_binary_exchange(
    const topo::BinaryHopTopology& wiring, int base, int p, double msg_bytes,
    const BinaryExchangeExecConfig& config) {
  BinaryExchangeExecResult result;
  if (!wiring.supports_binary_exchange(base, p)) return result;
  result.feasible = true;
  if (p == 1) {
    result.delivered_all = true;
    return result;
  }

  const auto schedule = wiring.binary_exchange_schedule(base, p);
  result.rounds = static_cast<int>(schedule.size());

  // Functional state: blocks[i] = (src, dst) blocks held by group rank i.
  std::vector<std::set<std::pair<int, int>>> blocks(
      static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i)
    for (int d = 0; d < p; ++d)
      blocks[static_cast<std::size_t>(i)].insert({i, d});

  evsim::Engine engine;
  double round_start = 0.0;
  int log2p = 0;
  while ((1 << log2p) < p) ++log2p;

  for (int k = 1; k <= result.rounds; ++k) {
    const int stride = 1 << (log2p - k);

    // OCSTrx reconfiguration before every round after the first: the
    // active path moves to the 2^(log2p-k)-distance neighbor. Exposed only
    // beyond the computation window.
    if (k > 1) {
      const double exposed =
          std::max(0.0, config.reconfig_s - config.compute_window_s);
      result.reconfig_exposed_s += exposed;
      round_start += exposed;
    }

    // All pairs transfer concurrently; the round barriers on the slowest.
    double round_end = round_start;
    for (const auto& [a, b] : schedule[static_cast<std::size_t>(k - 1)]) {
      const int i = a - base;
      const int r = b - base;
      // Blocks rank i hands to r and vice versa (destination bit matches
      // the partner's side of the stride).
      auto moving = [&](int from, int to) {
        std::set<std::pair<int, int>> send;
        for (const auto& blk : blocks[static_cast<std::size_t>(from)])
          if ((blk.second & stride) == (to & stride)) send.insert(blk);
        return send;
      };
      const auto send_ab = moving(i, r);
      const auto send_ba = moving(r, i);
      const double bytes =
          std::max(send_ab.size(), send_ba.size()) * msg_bytes;
      const double duration =
          config.alpha_s + bytes / config.link_bandwidth_Bps;
      engine.schedule_at(round_start + duration, [](evsim::Engine&) {});
      round_end = std::max(round_end, round_start + duration);
      result.comm_time_s += duration;
      for (const auto& blk : send_ab) {
        blocks[static_cast<std::size_t>(i)].erase(blk);
        blocks[static_cast<std::size_t>(r)].insert(blk);
      }
      for (const auto& blk : send_ba) {
        blocks[static_cast<std::size_t>(r)].erase(blk);
        blocks[static_cast<std::size_t>(i)].insert(blk);
      }
    }
    engine.run_until(round_end);
    round_start = round_end;
  }
  result.total_time_s = round_start;
  // comm_time_s summed per pair; report the critical-path average per round
  // instead of the aggregate across parallel links.
  result.comm_time_s = result.total_time_s - result.reconfig_exposed_s;

  result.delivered_all = true;
  for (int i = 0; i < p; ++i) {
    const auto& held = blocks[static_cast<std::size_t>(i)];
    if (static_cast<int>(held.size()) != p) result.delivered_all = false;
    for (int m = 0; m < p; ++m)
      if (held.find({m, i}) == held.end()) result.delivered_all = false;
  }
  return result;
}

}  // namespace ihbd::collective
