#include "src/collective/ring_sim.h"

#include <algorithm>
#include <functional>

#include "src/collective/costs.h"

#include <deque>
#include <memory>
#include <vector>

#include "src/common/contracts.h"

namespace ihbd::collective {

namespace {

constexpr double kSwitchLegFactor = 0.47;  // shorter intra-chassis legs

/// Per-link FIFO with serialization, driven by the event engine.
struct Link {
  double busy_until = 0.0;
  std::deque<std::pair<int, int>> queue;  // (chunk id, hop index)
};

double payload_time(double bytes, double bw, double eff) {
  return bytes / (bw * eff);
}

}  // namespace

AllReduceResult simulate_ring_allreduce(int n, double bytes,
                                        const RingSimParams& params) {
  IHBD_EXPECTS(n >= 2 && bytes > 0.0);
  // Each of the n segments is split into `pipeline_chunks` chunks; every
  // chunk travels 2(n-1) hops around the ring (reduce-scatter + gather).
  const int chunks_per_seg = params.pipeline_chunks;
  const int total_chunks = n * chunks_per_seg;
  const double chunk_bytes = bytes / total_chunks;
  const int hops = 2 * (n - 1);
  const double ser = payload_time(chunk_bytes, params.link_bandwidth_Bps,
                                  params.protocol_efficiency) +
                     params.chunk_overhead_s;

  evsim::Engine engine;
  std::vector<Link> links(static_cast<std::size_t>(n));
  // chunk id c: segment c / chunks_per_seg originates at node (seg mod n).
  std::vector<int> hops_done(static_cast<std::size_t>(total_chunks), 0);
  std::vector<int> at_node(static_cast<std::size_t>(total_chunks));
  for (int c = 0; c < total_chunks; ++c)
    at_node[static_cast<std::size_t>(c)] = (c / chunks_per_seg) % n;

  double finish = 0.0;

  // Forward declaration via std::function-free recursion using a shared
  // lambda holder (the engine owns copies of the closures).
  struct Ctx {
    evsim::Engine& engine;
    std::vector<Link>& links;
    std::vector<int>& hops_done;
    std::vector<int>& at_node;
    int n, hops;
    double ser, hop_latency;
    double* finish;
  };
  auto ctx = std::make_shared<Ctx>(Ctx{engine, links, hops_done, at_node, n,
                                       hops, ser, params.hop_latency_s,
                                       &finish});

  // try_send(link): start the next queued transfer if the link is free.
  auto try_send = std::make_shared<std::function<void(int)>>();
  *try_send = [ctx, try_send](int link_id) {
    Link& link = ctx->links[static_cast<std::size_t>(link_id)];
    const double now = ctx->engine.now();
    if (link.queue.empty() || link.busy_until > now) return;
    const auto [chunk, hop] = link.queue.front();
    link.queue.pop_front();
    link.busy_until = now + ctx->ser;
    const double arrival = link.busy_until + ctx->hop_latency;
    // Link becomes free -> try the next queued chunk.
    ctx->engine.schedule_at(link.busy_until,
                            [try_send, link_id](evsim::Engine&) {
                              (*try_send)(link_id);
                            });
    // Chunk arrives at the next node -> enqueue its next hop (if any).
    ctx->engine.schedule_at(arrival, [ctx, try_send, chunk, hop,
                                      link_id](evsim::Engine&) {
      const int node = (link_id + 1) % ctx->n;
      ctx->at_node[static_cast<std::size_t>(chunk)] = node;
      ctx->hops_done[static_cast<std::size_t>(chunk)] = hop + 1;
      *ctx->finish = std::max(*ctx->finish, ctx->engine.now());
      if (hop + 1 < ctx->hops) {
        ctx->links[static_cast<std::size_t>(node)].queue.emplace_back(chunk,
                                                                      hop + 1);
        (*try_send)(node);
      }
    });
  };

  // Seed: every chunk's first hop queued at its origin.
  for (int c = 0; c < total_chunks; ++c) {
    const int origin = at_node[static_cast<std::size_t>(c)];
    links[static_cast<std::size_t>(origin)].queue.emplace_back(c, 0);
  }
  for (int i = 0; i < n; ++i) (*try_send)(i);
  engine.run();
  // The closure captures its own shared_ptr holder; reset it or the
  // self-cycle outlives the simulation (leak under ASan).
  *try_send = nullptr;

  AllReduceResult result;
  result.time_s = finish;
  result.bus_utilization = allreduce_bus_utilization(
      n, bytes, finish, params.link_bandwidth_Bps);
  return result;
}

AllReduceResult simulate_switch_allreduce(int n, double bytes,
                                          const RingSimParams& params) {
  IHBD_EXPECTS(n >= 2 && bytes > 0.0);
  // Reduce-scatter then all-gather through a non-blocking switch: each GPU
  // sends (n-1)/n of the buffer per stage out of its single egress port,
  // which is the serialization bottleneck. Chunked for pipelining; each
  // transfer pays two legs plus the switch forwarding latency.
  const double stage_bytes = bytes * (n - 1) / n;
  const int chunks = params.pipeline_chunks * (n - 1);
  const double chunk_bytes = stage_bytes / chunks;
  const double ser = payload_time(chunk_bytes, params.link_bandwidth_Bps,
                                  params.switch_protocol_efficiency) +
                     params.chunk_overhead_s / (n - 1);
  const double path_latency =
      2.0 * kSwitchLegFactor * params.hop_latency_s + params.switch_latency_s;

  // Egress serialization dominates and all GPUs are symmetric: the last
  // chunk of stage 2 leaves after 2*chunks*ser and lands path_latency
  // later. (The switch is non-blocking, so no cross-GPU queueing.)
  const double finish = 2.0 * (chunks * ser + path_latency);

  AllReduceResult result;
  result.time_s = finish;
  result.bus_utilization = allreduce_bus_utilization(
      n, bytes, finish, params.link_bandwidth_Bps);
  return result;
}

double direct_link_latency(double bytes, const RingSimParams& params) {
  return params.hop_latency_s + params.chunk_overhead_s +
         payload_time(bytes, params.link_bandwidth_Bps,
                      params.protocol_efficiency);
}

double switch_link_latency(double bytes, const RingSimParams& params) {
  return 2.0 * kSwitchLegFactor * params.hop_latency_s +
         params.switch_latency_s + params.chunk_overhead_s +
         payload_time(bytes, params.link_bandwidth_Bps,
                      params.switch_protocol_efficiency);
}

}  // namespace ihbd::collective
