#include "src/evsim/engine.h"

#include <limits>

#include "src/common/contracts.h"

namespace ihbd::evsim {

EventId Engine::schedule_at(SimTime at, EventFn fn) {
  IHBD_EXPECTS(at >= now_);
  const EventId id = next_id_++;
  live_.emplace(id, 0.0);
  queue_.push(Item{at, seq_++, id, std::move(fn)});
  return id;
}

EventId Engine::schedule_in(SimTime delay, EventFn fn) {
  IHBD_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_every(SimTime first_delay, SimTime period,
                               EventFn fn) {
  IHBD_EXPECTS(first_delay >= 0.0);
  IHBD_EXPECTS(period > 0.0);
  const EventId id = next_id_++;
  live_.emplace(id, period);
  queue_.push(Item{now_ + first_delay, seq_++, id, std::move(fn)});
  return id;
}

bool Engine::cancel(EventId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  live_.erase(it);
  ++cancelled_;
  ++dead_in_queue_;  // exactly one queue entry carries a live id
  return true;
}

SimTime Engine::run() {
  return run_until(std::numeric_limits<double>::infinity());
}

SimTime Engine::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    // Copy out; the callback may schedule new events (queue reallocation).
    Item item = queue_.top();
    queue_.pop();
    const auto it = live_.find(item.id);
    if (it == live_.end()) {
      --dead_in_queue_;  // cancelled while queued: drop un-executed
      continue;
    }
    const SimTime period = it->second;
    if (period == 0.0) live_.erase(it);
    now_ = item.at;
    ++executed_;
    item.fn(*this);
    // Periodic: re-arm under the same id unless the callback cancelled it
    // (the cancel dropped it from live_ and pre-counted a dead queue entry
    // that will never exist — rebalance by not re-pushing).
    if (period != 0.0) {
      if (live_.count(item.id) != 0) {
        queue_.push(Item{now_ + period, seq_++, item.id, std::move(item.fn)});
      } else {
        --dead_in_queue_;
      }
    }
  }
  if (now_ < until && until < std::numeric_limits<double>::infinity())
    now_ = until;
  return now_;
}

}  // namespace ihbd::evsim
