#include "src/evsim/engine.h"

#include "src/common/contracts.h"

namespace ihbd::evsim {

void Engine::schedule_at(SimTime at, EventFn fn) {
  IHBD_EXPECTS(at >= now_);
  queue_.push(Item{at, seq_++, std::move(fn)});
}

void Engine::schedule_in(SimTime delay, EventFn fn) {
  IHBD_EXPECTS(delay >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

SimTime Engine::run() {
  while (!queue_.empty()) {
    // Copy out; the callback may schedule new events (queue reallocation).
    Item item = queue_.top();
    queue_.pop();
    now_ = item.at;
    ++executed_;
    item.fn(*this);
  }
  return now_;
}

SimTime Engine::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.at;
    ++executed_;
    item.fn(*this);
  }
  if (now_ < until) now_ = until;
  return now_;
}

}  // namespace ihbd::evsim
