// Discrete-event simulation engine.
//
// A minimal priority-queue scheduler over simulated seconds. Used by the
// collective-communication simulator (§5.2 reproduction), by the OCSTrx
// reconfiguration state machine to model the 60-80 us switching latency,
// and by the src/ctrl control-plane daemon as its event loop (job
// arrivals/departures, fault transitions, reconfig batch drains).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace ihbd::evsim {

using SimTime = double;  ///< simulated seconds

/// Handle to a scheduled event or periodic timer, usable with cancel().
/// Ids are never reused within one Engine.
using EventId = std::uint64_t;

/// Event callback; runs at its scheduled time with the engine available for
/// scheduling follow-up events.
class Engine;
using EventFn = std::function<void(Engine&)>;

/// Priority-queue discrete-event engine. Events at equal times run in
/// scheduling (FIFO) order, which keeps simulations deterministic.
class Engine {
 public:
  Engine() = default;

  /// Current simulated time (seconds). 0 before the first event runs.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now()). The returned id
  /// stays valid until the event fires or is cancelled.
  EventId schedule_at(SimTime at, EventFn fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, EventFn fn);

  /// Schedule `fn` to run every `period` seconds (period > 0), first at
  /// now() + first_delay (first_delay >= 0), then at fixed period
  /// increments. The id stays valid across firings; the timer runs until
  /// cancelled (including from inside its own callback).
  EventId schedule_every(SimTime first_delay, SimTime period, EventFn fn);

  /// Cancel a pending event or an active periodic timer. Returns true if
  /// the id was live (the event will not fire again); false if it already
  /// fired, was already cancelled, or never existed. Safe to call from
  /// inside event callbacks.
  bool cancel(EventId id);

  /// Run until the event queue drains (or, for run_until, events at times
  /// <= `until` are exhausted). Returns the final now().
  ///
  /// run_until semantics, precisely:
  ///   * events scheduled exactly AT `until` do run (inclusive bound);
  ///   * when events remain pending beyond `until`, the engine's clock is
  ///     still advanced to exactly `until` (final now() == until), so a
  ///     subsequent schedule_in() is relative to the horizon, not to the
  ///     last executed event;
  ///   * when the queue drains before `until`, now() is likewise left at
  ///     `until`, never beyond it;
  ///   * run_until never runs backwards: a horizon below now() leaves the
  ///     clock untouched and executes nothing.
  SimTime run();
  SimTime run_until(SimTime until);

  /// Number of events executed so far. Cancelled events never count;
  /// each firing of a periodic timer counts once.
  std::uint64_t executed() const { return executed_; }
  /// Number of events still pending: cancelled-but-not-yet-popped queue
  /// entries are excluded, and an active periodic timer counts exactly
  /// once (its next occurrence).
  std::size_t pending() const { return queue_.size() - dead_in_queue_; }
  /// Number of events cancelled so far (periodic timers count once).
  std::uint64_t cancelled() const { return cancelled_; }

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break (fresh per firing)
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Live-event table: id -> period (0 = one-shot). An id absent from the
  /// table but still in the queue was cancelled; the queue entry is dropped
  /// un-executed when it surfaces.
  std::unordered_map<EventId, SimTime> live_;

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t dead_in_queue_ = 0;
};

}  // namespace ihbd::evsim
