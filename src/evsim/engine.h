// Discrete-event simulation engine.
//
// A minimal priority-queue scheduler over simulated seconds. Used by the
// collective-communication simulator (§5.2 reproduction) and by the OCSTrx
// reconfiguration state machine to model the 60-80 us switching latency.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ihbd::evsim {

using SimTime = double;  ///< simulated seconds

/// Event callback; runs at its scheduled time with the engine available for
/// scheduling follow-up events.
class Engine;
using EventFn = std::function<void(Engine&)>;

/// Priority-queue discrete-event engine. Events at equal times run in
/// scheduling (FIFO) order, which keeps simulations deterministic.
class Engine {
 public:
  Engine() = default;

  /// Current simulated time (seconds). 0 before the first event runs.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now()).
  void schedule_at(SimTime at, EventFn fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  void schedule_in(SimTime delay, EventFn fn);

  /// Run until the event queue drains (or `until` is reached if given).
  /// Returns the time of the last executed event.
  SimTime run();
  SimTime run_until(SimTime until);

  /// Number of events executed so far.
  std::uint64_t executed() const { return executed_; }
  /// Number of events still pending.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Item {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break
    EventFn fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ihbd::evsim
