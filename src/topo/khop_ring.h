// The InfiniteHBD reconfigurable K-Hop Ring topology (paper §4.2, Design 2).
//
// All N nodes sit on one datacenter-scale ring; every node connects via
// OCSTrx to the nodes at hop distance 1..K on both sides (degree 2K). For
// AllReduce only two of the 2K links are active; the rest are backups.
// A run of j consecutive faulty nodes is bypassed by a (j+1)-hop link,
// possible iff j <= K-1; longer runs are *breakpoints* that split the ring
// into healthy arcs. Rings of any size are closed with the OCSTrx
// cross-lane loopback at both ends of a node segment.
#pragma once

#include <optional>
#include <vector>

#include "src/topo/hbd.h"

namespace ihbd::topo {

/// A healthy arc: maximal sequence of healthy nodes in ring order in which
/// consecutive members are within K hops of each other.
struct HealthyArc {
  std::vector<int> nodes;
  bool circular = false;  ///< true when the arc is the entire (unbroken) ring
};

class KHopRing : public HbdArchitecture {
 public:
  /// `k` is the hop reach (OCSTrx bundle count per side); `ring` selects the
  /// ring topology (default) vs the K-hop *line* variant (§4.2: "can be
  /// broken into the K-Hop line topology, with the trade-off of reduced
  /// fault tolerance").
  KHopRing(int node_count, int gpus_per_node, int k, bool ring = true);

  std::string name() const override;
  int node_count() const override { return node_count_; }
  int gpus_per_node() const override { return gpus_per_node_; }
  int k() const { return k_; }
  bool is_ring() const { return ring_; }

  /// Hop distance between two nodes on the ring (shortest direction);
  /// on the line variant, |a - b|.
  int hop_distance(int a, int b) const;

  /// True if a direct OCSTrx link exists between nodes a and b.
  bool connected(int a, int b) const;

  /// All neighbors of a node (ring order: +1..+K then -1..-K, wrapped).
  std::vector<int> neighbors(int node) const;

  /// Decompose the healthy nodes into arcs given the fault mask. A single
  /// circular arc is returned when no breakpoint (faulty run >= K) exists.
  std::vector<HealthyArc> healthy_arcs(const fault::PackedMask& faulty) const;

  /// vector<bool> adapter over the packed decomposition above.
  std::vector<HealthyArc> healthy_arcs(const std::vector<bool>& faulty) const {
    return healthy_arcs(fault::PackedMask::from_bools(faulty));
  }

  /// Greedy ring construction: tile each arc with groups of `m` nodes.
  Allocation allocate(const fault::PackedMask& faulty,
                      int tp_size_gpus) const override;
  using HbdArchitecture::allocate;

  /// The longest faulty run that can still be bypassed (= K - 1).
  int max_bypassable_run() const { return k_ - 1; }

 private:
  int node_count_;
  int gpus_per_node_;
  int k_;
  bool ring_;
};

/// Appendix-C analytic upper bound on the expected healthy-GPU waste ratio
/// of InfiniteHBD: E[WR] <= 2 (Nt - R) Ps^K, with Nt the TP size in GPUs,
/// R the GPUs per node, Ps the node fault probability and K the hop reach.
double waste_ratio_upper_bound(int tp_size_gpus, int gpus_per_node,
                               double node_fault_prob, int k);

}  // namespace ihbd::topo
