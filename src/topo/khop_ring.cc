#include "src/topo/khop_ring.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::topo {

KHopRing::KHopRing(int node_count, int gpus_per_node, int k, bool ring)
    : node_count_(node_count), gpus_per_node_(gpus_per_node), k_(k),
      ring_(ring) {
  if (node_count < 2) throw ConfigError("KHopRing needs >= 2 nodes");
  if (gpus_per_node < 1) throw ConfigError("GPUs per node must be >= 1");
  if (k < 1) throw ConfigError("K must be >= 1");
  if (2 * k >= node_count)
    throw ConfigError("K too large for node count (2K must be < N)");
}

std::string KHopRing::name() const {
  return std::string("InfiniteHBD(K=") + std::to_string(k_) +
         (ring_ ? ")" : ",line)");
}

int KHopRing::hop_distance(int a, int b) const {
  IHBD_EXPECTS(a >= 0 && a < node_count_ && b >= 0 && b < node_count_);
  int d = std::abs(a - b);
  if (ring_) d = std::min(d, node_count_ - d);
  return d;
}

bool KHopRing::connected(int a, int b) const {
  const int d = hop_distance(a, b);
  return d >= 1 && d <= k_;
}

std::vector<int> KHopRing::neighbors(int node) const {
  IHBD_EXPECTS(node >= 0 && node < node_count_);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(2 * k_));
  for (int h = 1; h <= k_; ++h) {
    const int fwd = node + h;
    const int bwd = node - h;
    if (ring_) {
      out.push_back((fwd) % node_count_);
      out.push_back((bwd % node_count_ + node_count_) % node_count_);
    } else {
      if (fwd < node_count_) out.push_back(fwd);
      if (bwd >= 0) out.push_back(bwd);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<HealthyArc> KHopRing::healthy_arcs(
    const fault::PackedMask& faulty) const {
  IHBD_EXPECTS(faulty.size() == node_count_);
  const int n = node_count_;

  std::vector<int> healthy;
  healthy.reserve(static_cast<std::size_t>(n));
  fault::for_each_set_bit(faulty.complement(),
                          [&](int i) { healthy.push_back(i); });
  if (healthy.empty()) return {};

  // Gap between consecutive healthy nodes (#faulty in between). Bypassable
  // iff gap <= K-1, i.e. the bridging link spans gap+1 <= K hops.
  auto gap_after = [&](std::size_t idx) {
    const int cur = healthy[idx];
    const int nxt = healthy[(idx + 1) % healthy.size()];
    int gap = nxt - cur - 1;
    if (gap < 0) gap += n;  // wrap
    return gap;
  };

  // Find cut positions (index i such that the link healthy[i]->healthy[i+1]
  // is NOT bypassable).
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < healthy.size(); ++i) {
    bool cut = gap_after(i) > max_bypassable_run();
    // Line variant: the wrap-around link does not exist at all.
    if (!ring_ && (i + 1) == healthy.size()) cut = true;
    if (cut) cuts.push_back(i);
  }

  std::vector<HealthyArc> arcs;
  if (cuts.empty()) {
    // Unbroken: one circular arc containing every healthy node.
    HealthyArc arc;
    arc.nodes = healthy;
    arc.circular = true;
    arcs.push_back(std::move(arc));
    return arcs;
  }

  // Walk arc-by-arc: each arc starts right after a cut and ends at the next.
  for (std::size_t c = 0; c < cuts.size(); ++c) {
    const std::size_t begin = (cuts[c] + 1) % healthy.size();
    const std::size_t end = cuts[(c + 1) % cuts.size()];  // inclusive
    HealthyArc arc;
    std::size_t i = begin;
    while (true) {
      arc.nodes.push_back(healthy[i]);
      if (i == end) break;
      i = (i + 1) % healthy.size();
    }
    arcs.push_back(std::move(arc));
    if (cuts.size() == 1) break;  // single cut -> single line arc
  }
  return arcs;
}

Allocation KHopRing::allocate(const fault::PackedMask& faulty,
                              int tp_size_gpus) const {
  const int m = check_args(faulty, tp_size_gpus);
  Allocation result;
  result.total_gpus = total_gpus();
  result.faulty_gpus = faulty.popcount() * gpus_per_node_;

  for (const auto& arc : healthy_arcs(faulty)) {
    const int len = static_cast<int>(arc.nodes.size());
    const int groups_here = len / m;
    for (int g = 0; g < groups_here; ++g) {
      TpGroup group;
      group.nodes.assign(arc.nodes.begin() + static_cast<std::ptrdiff_t>(g) * m,
                         arc.nodes.begin() +
                             static_cast<std::ptrdiff_t>(g + 1) * m);
      result.groups.push_back(std::move(group));
    }
    result.usable_gpus += groups_here * m * gpus_per_node_;
    result.wasted_healthy_gpus += (len % m) * gpus_per_node_;
  }
  return result;
}

double waste_ratio_upper_bound(int tp_size_gpus, int gpus_per_node,
                               double node_fault_prob, int k) {
  IHBD_EXPECTS(tp_size_gpus > 0 && gpus_per_node > 0 && k >= 1);
  IHBD_EXPECTS(node_fault_prob >= 0.0 && node_fault_prob <= 1.0);
  return 2.0 * (tp_size_gpus - gpus_per_node) *
         std::pow(node_fault_prob, k);
}

}  // namespace ihbd::topo
