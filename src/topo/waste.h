// Evaluation drivers for HBD fault resilience (paper §6.2): GPU waste ratio
// over a fault trace or fault-ratio sweep, maximum supported job scale, and
// job fault-waiting rate. Shared by Figs. 13-16 and 20-23 benches.
//
// Trace replay comes in three tiers:
//   * evaluate_waste_over_trace(arch, trace, tp, step_days) — the serial
//     reference: one pass over the sample days, re-allocating from scratch
//     at each. Kept as the bit-equivalence oracle.
//   * evaluate_waste_over_trace(arch, trace, tp, TraceReplayOptions) — the
//     windowed parallel replay: the sample-day sequence is split into
//     windows (fault::split_windows), each window replays a sliced
//     sub-trace on a ThreadPool worker, and the per-window
//     Accumulator/TimeSeries fragments merge in window order.
//   * The same entry point with options.incremental (the default): each
//     window walks the trace's transition timeline with a
//     fault::FaultMaskCursor and patches a topo::IncrementalAllocator by
//     fault deltas, so samples with no transitions never re-allocate and
//     KHopRing windows update their healthy-arc state in O(log N) per
//     transition (see incremental.h).
//   * options.packed (the default, composing with either tier above):
//     masks travel as fault::PackedMask and deltas as per-word XOR spans —
//     the incremental tier runs cursor.advance_to_words() into
//     IncrementalAllocator::apply_words(), the from-scratch tier allocates
//     straight from trace.packed_faulty_at(). Off restores the
//     vector<bool>/flip-list pipeline of PRs 4-5 for oracle comparisons.
// All tiers produce bit-identical output for any thread count, window
// size, incremental setting and packed setting (when keep_samples is true;
// with it off the summary degrades to moments identically in every tier).
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/fault/trace.h"
#include "src/runtime/accumulate.h"
#include "src/runtime/shard.h"
#include "src/topo/hbd.h"

namespace ihbd::runtime {
class ThreadPool;
}  // namespace ihbd::runtime

namespace ihbd::topo {

/// Result of replaying a fault trace against an architecture.
struct TraceWasteResult {
  TimeSeries waste_ratio;  ///< healthy-GPU waste ratio per sample time
  TimeSeries usable_gpus;  ///< GPUs inside placed TP groups per sample time
  Summary waste_summary;   ///< summary over waste_ratio.v
};

/// ShardCodec for replay sweeps whose cells hold a TraceWasteResult (the
/// fig13/15/16/20 grids): bit-exact save/load of both series and the
/// summary. Replay grids run one trial per cell, so no merge is needed —
/// the distributed reduce is pure placement, keeping the sharded result
/// byte-identical to the single-process one.
const runtime::shard::ShardCodec<TraceWasteResult>& trace_waste_codec();

/// Tuning knobs of the windowed parallel replay.
struct TraceReplayOptions {
  double step_days = 1.0;
  /// Replay fan-out width when no `pool` is given: 0 fans windows out on
  /// the process-wide runtime::ThreadPool::shared(); 1 replays inline on
  /// the calling thread; >1 uses a dedicated transient pool of that width.
  int threads = 0;
  /// Fan windows out on this pool instead (threads is then ignored, except
  /// that a 1-worker pool still replays inline). Pass the pool that is
  /// already running the enclosing sweep: the work-stealing scheduler lets
  /// the window fan-out of one sweep cell recruit idle sweep workers
  /// (nested parallelism) instead of serializing.
  runtime::ThreadPool* pool = nullptr;
  /// Samples per parallel window (0 = one window spanning the trace).
  std::size_t window_samples = 64;
  /// Retain per-sample values inside the merged waste summary so its
  /// percentiles are exact. false bounds memory to O(series) — the summary
  /// degrades to moments (percentile fields = mean), the series are kept.
  bool keep_samples = true;
  /// Replay each window event-driven (cursor + incremental allocator)
  /// instead of re-allocating from scratch at every sample. Bit-identical
  /// either way; off exists for oracle comparisons and CI diff jobs.
  bool incremental = true;
  /// Run the replay word-parallel: packed masks and per-word XOR deltas
  /// end-to-end (see packed_mask.h). Bit-identical either way; off
  /// restores the per-node flip pipeline for oracle comparisons and CI
  /// diff jobs.
  bool packed = true;
};

/// One window's fragment of a trace replay. merge_next() appends the
/// fragment of the immediately following window; the operation is
/// associative, so fragments may be combined pairwise in any tree shape as
/// long as window order is preserved.
struct TraceWindowFragment {
  TimeSeries waste_ratio;
  TimeSeries usable_gpus;
  runtime::Accumulator waste_acc;

  void merge_next(TraceWindowFragment&& next);
};

/// Replay the samples days[window.begin .. window.begin+window.count) of
/// `trace` (typically a FaultTrace::slice covering just that day range),
/// re-allocating from scratch at every sample.
TraceWindowFragment replay_trace_window(const HbdArchitecture& arch,
                                        const fault::FaultTrace& trace,
                                        int tp_size_gpus,
                                        const std::vector<double>& days,
                                        const fault::SampleWindow& window,
                                        bool keep_samples = true,
                                        bool packed = true);

/// Event-driven variant of replay_trace_window: advances a
/// fault::FaultMaskCursor across the window's sample days and feeds the
/// flip deltas to a topo::IncrementalAllocator. Bit-identical fragment.
/// Unlike the from-scratch variant this is normally handed the FULL trace
/// (the cursor fast-forwards to the window start over the trace's shared
/// cached timeline; no per-window slice is needed), though a slice
/// covering the window also works. `step_days` must be the step that
/// produced `days` (= trace.sample_days(step_days)): the packed tier binds
/// its cursor to the trace's grid-folded word-delta timeline for that step.
TraceWindowFragment replay_trace_window_incremental(
    const HbdArchitecture& arch, const fault::FaultTrace& trace,
    int tp_size_gpus, const std::vector<double>& days,
    const fault::SampleWindow& window, double step_days,
    bool keep_samples = true, bool packed = true);

/// Windowed parallel replay of `trace` against `arch` with TP size
/// `tp_size_gpus`; see the header comment for the determinism contract.
TraceWasteResult evaluate_waste_over_trace(const HbdArchitecture& arch,
                                           const fault::FaultTrace& trace,
                                           int tp_size_gpus,
                                           const TraceReplayOptions& options);

/// Serial reference replay, sampling every `step_days`. Kept as the
/// bit-equivalence oracle for the windowed replay (tests) and for callers
/// that want no thread machinery.
TraceWasteResult evaluate_waste_over_trace(const HbdArchitecture& arch,
                                           const fault::FaultTrace& trace,
                                           int tp_size_gpus,
                                           double step_days = 1.0);

/// Mean waste ratio at an exact node-fault ratio (Fig. 14 sweep), averaged
/// over `trials` random fault masks.
double mean_waste_at_ratio(const HbdArchitecture& arch, double fault_ratio,
                           int tp_size_gpus, int trials, Rng& rng);

/// Maximum job scale (GPUs) supportable a `quantile` fraction of the time,
/// e.g. quantile = 0.99 -> the job size that would have been placeable 99%
/// of the trace. Derived from a usable-GPUs series, rounded down to a
/// multiple of the TP size.
int max_job_scale(const TimeSeries& usable_gpus, double quantile,
                  int tp_size_gpus);

/// Fraction of sampled time where fewer than `job_scale_gpus` usable GPUs
/// were available (Fig. 16's fault-waiting rate).
double fault_waiting_rate(const TimeSeries& usable_gpus,
                          double job_scale_gpus);

}  // namespace ihbd::topo
