// Evaluation drivers for HBD fault resilience (paper §6.2): GPU waste ratio
// over a fault trace or fault-ratio sweep, maximum supported job scale, and
// job fault-waiting rate. Shared by Figs. 13-16 and 20-23 benches.
#pragma once

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/fault/trace.h"
#include "src/topo/hbd.h"

namespace ihbd::topo {

/// Result of replaying a fault trace against an architecture.
struct TraceWasteResult {
  TimeSeries waste_ratio;  ///< healthy-GPU waste ratio per sample time
  TimeSeries usable_gpus;  ///< GPUs inside placed TP groups per sample time
  Summary waste_summary;   ///< summary over waste_ratio.v
};

/// Replay `trace` against `arch` with TP size `tp_size_gpus`, sampling every
/// `step_days`.
TraceWasteResult evaluate_waste_over_trace(const HbdArchitecture& arch,
                                           const fault::FaultTrace& trace,
                                           int tp_size_gpus,
                                           double step_days = 1.0);

/// Mean waste ratio at an exact node-fault ratio (Fig. 14 sweep), averaged
/// over `trials` random fault masks.
double mean_waste_at_ratio(const HbdArchitecture& arch, double fault_ratio,
                           int tp_size_gpus, int trials, Rng& rng);

/// Maximum job scale (GPUs) supportable a `quantile` fraction of the time,
/// e.g. quantile = 0.99 -> the job size that would have been placeable 99%
/// of the trace. Derived from a usable-GPUs series, rounded down to a
/// multiple of the TP size.
int max_job_scale(const TimeSeries& usable_gpus, double quantile,
                  int tp_size_gpus);

/// Fraction of sampled time where fewer than `job_scale_gpus` usable GPUs
/// were available (Fig. 16's fault-waiting rate).
double fault_waiting_rate(const TimeSeries& usable_gpus,
                          double job_scale_gpus);

}  // namespace ihbd::topo
