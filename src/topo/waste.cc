#include "src/topo/waste.h"

#include <algorithm>
#include <cmath>

#include "src/common/contracts.h"

namespace ihbd::topo {

TraceWasteResult evaluate_waste_over_trace(const HbdArchitecture& arch,
                                           const fault::FaultTrace& trace,
                                           int tp_size_gpus,
                                           double step_days) {
  IHBD_EXPECTS(trace.node_count() == arch.node_count());
  IHBD_EXPECTS(step_days > 0.0);
  TraceWasteResult out;
  for (double day = 0.0; day < trace.duration_days(); day += step_days) {
    const auto mask = trace.faulty_at(day);
    const Allocation alloc = arch.allocate(mask, tp_size_gpus);
    out.waste_ratio.push(day, alloc.waste_ratio());
    out.usable_gpus.push(day, static_cast<double>(alloc.usable_gpus));
  }
  out.waste_summary = out.waste_ratio.summarize_values();
  return out;
}

double mean_waste_at_ratio(const HbdArchitecture& arch, double fault_ratio,
                           int tp_size_gpus, int trials, Rng& rng) {
  IHBD_EXPECTS(trials > 0);
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auto mask =
        fault::sample_fault_mask(arch.node_count(), fault_ratio, rng);
    total += arch.allocate(mask, tp_size_gpus).waste_ratio();
  }
  return total / trials;
}

int max_job_scale(const TimeSeries& usable_gpus, double quantile,
                  int tp_size_gpus) {
  IHBD_EXPECTS(quantile >= 0.0 && quantile <= 1.0);
  IHBD_EXPECTS(tp_size_gpus > 0);
  if (usable_gpus.v.empty()) return 0;
  // The job size supportable `quantile` of the time is the
  // (1 - quantile)-percentile of the usable series.
  const double val =
      percentile(usable_gpus.v, (1.0 - quantile) * 100.0);
  const int gpus = static_cast<int>(val);
  return (gpus / tp_size_gpus) * tp_size_gpus;
}

double fault_waiting_rate(const TimeSeries& usable_gpus,
                          double job_scale_gpus) {
  if (usable_gpus.v.empty()) return 0.0;
  std::size_t waiting = 0;
  for (double u : usable_gpus.v)
    if (u < job_scale_gpus) ++waiting;
  return static_cast<double>(waiting) /
         static_cast<double>(usable_gpus.v.size());
}

}  // namespace ihbd::topo
