#include "src/topo/waste.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include <chrono>
#include <cstdint>

#include "src/common/contracts.h"
#include "src/fault/transitions.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/thread_pool.h"
#include "src/topo/incremental.h"

namespace ihbd::topo {

namespace {

/// Replay metrics (src/obs): windows/samples replayed per tier, fault flips
/// applied by the event-driven tier, merge cost, and the per-window
/// throughput distribution. Recording is skipped unless obs is enabled and
/// never touches replay results (byte-identical output on vs off).
struct ReplayObs {
  obs::Counter& windows_scratch;     ///< from-scratch windows replayed
  obs::Counter& windows_incremental; ///< event-driven windows replayed
  obs::Counter& samples;             ///< samples replayed (all tiers)
  obs::Counter& flips_applied;       ///< net fault flips fed to allocators
  obs::Counter& merge_ns;            ///< fragment-merge wall time
  obs::Counter& evaluations;         ///< evaluate_waste_over_trace calls
  obs::Histogram& window_samples_per_s;  ///< per-window replay throughput
};

ReplayObs& replay_obs() {
  static ReplayObs o{obs::counter("replay.windows_scratch"),
                     obs::counter("replay.windows_incremental"),
                     obs::counter("replay.samples"),
                     obs::counter("replay.flips_applied"),
                     obs::counter("replay.merge_ns"),
                     obs::counter("replay.evaluations"),
                     obs::histogram("replay.window_samples_per_s")};
  return o;
}

std::uint64_t obs_elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void append_series(TimeSeries& dst, TimeSeries&& src) {
  if (dst.t.empty()) {
    dst = std::move(src);
    return;
  }
  dst.t.insert(dst.t.end(), src.t.begin(), src.t.end());
  dst.v.insert(dst.v.end(), src.v.begin(), src.v.end());
}

}  // namespace

void TraceWindowFragment::merge_next(TraceWindowFragment&& next) {
  append_series(waste_ratio, std::move(next.waste_ratio));
  append_series(usable_gpus, std::move(next.usable_gpus));
  waste_acc.merge(next.waste_acc);
}

TraceWindowFragment replay_trace_window(const HbdArchitecture& arch,
                                        const fault::FaultTrace& trace,
                                        int tp_size_gpus,
                                        const std::vector<double>& days,
                                        const fault::SampleWindow& window,
                                        bool keep_samples, bool packed) {
  IHBD_EXPECTS(window.begin + window.count <= days.size());
  IHBD_TRACE_SPAN("replay_window_scratch");
  const bool obs_on = obs::enabled();
  const auto t0 = obs_on ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  TraceWindowFragment frag;
  frag.waste_acc.set_keep_samples(keep_samples);
  for (std::size_t i = window.begin; i < window.begin + window.count; ++i) {
    const double day = days[i];
    // Packed and bool masks hold the same bits, and the packed allocate()
    // overloads restate the same integer arithmetic, so the two branches
    // are bit-identical.
    const Allocation alloc =
        packed ? arch.allocate(trace.packed_faulty_at(day), tp_size_gpus)
               : arch.allocate(trace.faulty_at(day), tp_size_gpus);
    const double waste = alloc.waste_ratio();
    frag.waste_ratio.push(day, waste);
    frag.usable_gpus.push(day, static_cast<double>(alloc.usable_gpus));
    frag.waste_acc.add(waste);
  }
  if (obs_on) {
    ReplayObs& o = replay_obs();
    o.windows_scratch.add(1);
    o.samples.add(window.count);
    const double secs = static_cast<double>(obs_elapsed_ns(t0)) * 1e-9;
    if (secs > 0.0)
      o.window_samples_per_s.observe(static_cast<double>(window.count) / secs);
  }
  return frag;
}

TraceWindowFragment replay_trace_window_incremental(
    const HbdArchitecture& arch, const fault::FaultTrace& trace,
    int tp_size_gpus, const std::vector<double>& days,
    const fault::SampleWindow& window, double step_days, bool keep_samples,
    bool packed) {
  IHBD_EXPECTS(window.begin + window.count <= days.size());
  IHBD_TRACE_SPAN("replay_window");
  const bool obs_on = obs::enabled();
  const auto t0 = obs_on ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  std::uint64_t flips = 0;
  TraceWindowFragment frag;
  frag.waste_acc.set_keep_samples(keep_samples);
  frag.waste_ratio.t.reserve(window.count);
  frag.waste_ratio.v.reserve(window.count);
  frag.usable_gpus.t.reserve(window.count);
  frag.usable_gpus.v.reserve(window.count);
  // The packed tier samples strictly on the step grid, so its cursor binds
  // to the grid-folded word-delta timeline: at most one pre-folded group
  // per sample instead of re-folding the step's transition days on every
  // advance of every window's cursor.
  fault::FaultMaskCursor cursor =
      packed ? fault::FaultMaskCursor(trace, step_days)
             : fault::FaultMaskCursor(trace);
  // Every §6.1 architecture now gets a true incremental allocator (KHopRing
  // arcs, per-island aggregates for the baselines); only out-of-tree
  // architectures take the memoizing O(N)-per-transition fallback.
  const auto allocator = make_incremental_allocator(arch, tp_size_gpus);
  if (packed) {
    // Word-parallel pipeline: per-word XOR spans from the cursor straight
    // into the allocator's dirty-word path. A sample with no deltas cannot
    // change the allocation, so the previous aggregates are re-emitted
    // without even the virtual call — identical values either way.
    double waste = 0.0;
    double usable = 0.0;
    bool have_alloc = false;
    for (std::size_t i = window.begin; i < window.begin + window.count; ++i) {
      const double day = days[i];
      const std::vector<fault::WordDelta>& deltas =
          cursor.advance_to_words(day);
      if (!have_alloc || !deltas.empty()) {
        if (obs_on)
          for (const fault::WordDelta& d : deltas)
            flips += static_cast<std::uint64_t>(std::popcount(d.xor_bits));
        const Allocation& alloc =
            allocator->apply_words(cursor.packed_mask(), deltas);
        waste = alloc.waste_ratio();
        usable = static_cast<double>(alloc.usable_gpus);
        have_alloc = true;
      }
      frag.waste_ratio.push(day, waste);
      frag.usable_gpus.push(day, usable);
      frag.waste_acc.add(waste);
    }
  } else {
    for (std::size_t i = window.begin; i < window.begin + window.count; ++i) {
      const double day = days[i];
      // The cursor's mask equals trace.faulty_at(day) bit-for-bit, and the
      // allocator's aggregates equal arch.allocate(mask, tp) on it, so this
      // fragment matches replay_trace_window exactly.
      const std::vector<int>& flipped = cursor.advance_to(day);
      flips += flipped.size();
      const Allocation& alloc = allocator->apply(cursor.mask(), flipped);
      const double waste = alloc.waste_ratio();
      frag.waste_ratio.push(day, waste);
      frag.usable_gpus.push(day, static_cast<double>(alloc.usable_gpus));
      frag.waste_acc.add(waste);
    }
  }
  if (obs_on) {
    ReplayObs& o = replay_obs();
    o.windows_incremental.add(1);
    o.samples.add(window.count);
    o.flips_applied.add(flips);
    const double secs = static_cast<double>(obs_elapsed_ns(t0)) * 1e-9;
    if (secs > 0.0)
      o.window_samples_per_s.observe(static_cast<double>(window.count) / secs);
  }
  return frag;
}

// The windowed replay is the same plan -> execute -> reduce shape as the
// sweep engine (src/runtime/sweep.h), one level down: plan the window
// partition, execute each window into a serializable TraceWindowFragment,
// reduce the fragments in window order. The three named stages below keep
// that boundary explicit.
namespace {

/// Plan: partition the sample-day sequence into replay windows.
/// A single worker gains nothing from window splits; one window lets the
/// incremental tier keep one cursor/allocator alive over the whole trace
/// instead of fast-forwarding a fresh one per window. Output is identical
/// for any window size, so this is purely a perf choice.
std::vector<fault::SampleWindow> plan_replay_windows(
    std::size_t sample_count, const TraceReplayOptions& options) {
  runtime::ThreadPool* pool = options.pool;
  const int workers = pool != nullptr ? pool->size()
                      : options.threads == 0
                          ? runtime::ThreadPool::default_threads()
                          : options.threads;
  const std::size_t window_samples =
      options.incremental && workers == 1 ? 0 : options.window_samples;
  return fault::split_windows(sample_count, window_samples);
}

/// Execute: replay every window into its fragment, fanning out on the pool.
std::vector<TraceWindowFragment> execute_replay_windows(
    const HbdArchitecture& arch, const fault::FaultTrace& trace,
    int tp_size_gpus, const std::vector<double>& days,
    const std::vector<fault::SampleWindow>& windows,
    const TraceReplayOptions& options) {
  std::vector<TraceWindowFragment> fragments(windows.size());
  const auto replay_one = [&](std::size_t w) {
    const auto& window = windows[w];
    if (options.incremental) {
      // The cursor walks the (shared, cached) transition timeline, so the
      // full trace is passed directly — no per-window slice needed.
      fragments[w] = replay_trace_window_incremental(
          arch, trace, tp_size_gpus, days, window, options.step_days,
          options.keep_samples, options.packed);
    } else {
      // Slicing bounds each worker's per-sample event scan to its own day
      // range.
      const fault::FaultTrace sliced = trace.slice(
          days[window.begin], days[window.begin + window.count - 1]);
      fragments[w] = replay_trace_window(arch, sliced, tp_size_gpus, days,
                                         window, options.keep_samples,
                                         options.packed);
    }
  };
  runtime::ThreadPool* pool = options.pool;
  const int workers = pool != nullptr ? pool->size()
                      : options.threads == 0
                          ? runtime::ThreadPool::default_threads()
                          : options.threads;
  if (workers == 1 || windows.size() <= 1) {
    // Nothing to fan out: replay inline on the calling thread.
    for (std::size_t w = 0; w < windows.size(); ++w) replay_one(w);
  } else {
    // PoolRef resolves to options.pool when given — the nested-parallel
    // fast path: when the caller is itself a task on that pool (a sweep
    // cell), the work-stealing scheduler hands these windows to idle
    // workers and the blocked caller helps instead of sleeping.
    const runtime::PoolRef ref(options.threads, pool);
    ref->parallel_for(windows.size(), replay_one);
  }
  return fragments;
}

/// Reduce: merge fragments strictly in window order. The concatenated
/// series and the sample-retaining accumulator then match the serial
/// reference bit-for-bit regardless of thread count. (merge_next is
/// associative, so a tree grouping would also do; the in-order fold is the
/// canonical one.)
TraceWasteResult reduce_replay_fragments(
    std::vector<TraceWindowFragment> fragments) {
  TraceWasteResult out;
  if (fragments.empty()) return out;
  IHBD_TRACE_SPAN("replay_merge");
  const bool obs_on = obs::enabled();
  const auto merge_t0 = obs_on ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
  TraceWindowFragment merged = std::move(fragments.front());
  for (std::size_t w = 1; w < fragments.size(); ++w)
    merged.merge_next(std::move(fragments[w]));
  if (obs_on) replay_obs().merge_ns.add(obs_elapsed_ns(merge_t0));
  out.waste_ratio = std::move(merged.waste_ratio);
  out.usable_gpus = std::move(merged.usable_gpus);
  out.waste_summary = merged.waste_acc.summary();
  return out;
}

}  // namespace

TraceWasteResult evaluate_waste_over_trace(const HbdArchitecture& arch,
                                           const fault::FaultTrace& trace,
                                           int tp_size_gpus,
                                           const TraceReplayOptions& options) {
  IHBD_EXPECTS(trace.node_count() == arch.node_count());
  IHBD_EXPECTS(options.step_days > 0.0);
  IHBD_EXPECTS(options.threads >= 0);

  IHBD_TRACE_SPAN("replay_trace");
  replay_obs().evaluations.add(1);

  const std::vector<double> days = trace.sample_days(options.step_days);
  const std::vector<fault::SampleWindow> windows =
      plan_replay_windows(days.size(), options);
  std::vector<TraceWindowFragment> fragments = execute_replay_windows(
      arch, trace, tp_size_gpus, days, windows, options);
  return reduce_replay_fragments(std::move(fragments));
}

const runtime::shard::ShardCodec<TraceWasteResult>& trace_waste_codec() {
  static const runtime::shard::ShardCodec<TraceWasteResult> codec{
      [](serde::Writer& w, const TraceWasteResult& r) {
        serde::write_time_series(w, r.waste_ratio);
        serde::write_time_series(w, r.usable_gpus);
        serde::write_summary(w, r.waste_summary);
      },
      [](serde::Reader& r) {
        TraceWasteResult out;
        out.waste_ratio = serde::read_time_series(r);
        out.usable_gpus = serde::read_time_series(r);
        out.waste_summary = serde::read_summary(r);
        return out;
      },
      // Replay grids run one trial per cell: plans never split a cell, so
      // no merge is required (and none would be bit-faithful for the
      // concatenated series anyway).
      {},
  };
  return codec;
}

TraceWasteResult evaluate_waste_over_trace(const HbdArchitecture& arch,
                                           const fault::FaultTrace& trace,
                                           int tp_size_gpus,
                                           double step_days) {
  IHBD_EXPECTS(trace.node_count() == arch.node_count());
  IHBD_EXPECTS(step_days > 0.0);
  TraceWasteResult out;
  for (double day = 0.0; day < trace.duration_days(); day += step_days) {
    const auto mask = trace.faulty_at(day);
    const Allocation alloc = arch.allocate(mask, tp_size_gpus);
    out.waste_ratio.push(day, alloc.waste_ratio());
    out.usable_gpus.push(day, static_cast<double>(alloc.usable_gpus));
  }
  out.waste_summary = out.waste_ratio.summarize_values();
  return out;
}

double mean_waste_at_ratio(const HbdArchitecture& arch, double fault_ratio,
                           int tp_size_gpus, int trials, Rng& rng) {
  IHBD_EXPECTS(trials > 0);
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auto mask =
        fault::sample_fault_mask(arch.node_count(), fault_ratio, rng);
    total += arch.allocate(mask, tp_size_gpus).waste_ratio();
  }
  return total / trials;
}

int max_job_scale(const TimeSeries& usable_gpus, double quantile,
                  int tp_size_gpus) {
  IHBD_EXPECTS(quantile >= 0.0 && quantile <= 1.0);
  IHBD_EXPECTS(tp_size_gpus > 0);
  if (usable_gpus.v.empty()) return 0;
  // The job size supportable `quantile` of the time is the
  // (1 - quantile)-percentile of the usable series. The series holds
  // integer GPU counts, but linear interpolation (and the (1 - quantile)
  // rank itself) carries FP noise, so a mathematically integral result can
  // land at 959.999... — truncating that floors away an entire TP group.
  // Round within an epsilon before flooring.
  const double val =
      percentile(usable_gpus.v, (1.0 - quantile) * 100.0);
  const int gpus = static_cast<int>(std::floor(val + 1e-9));
  return (gpus / tp_size_gpus) * tp_size_gpus;
}

double fault_waiting_rate(const TimeSeries& usable_gpus,
                          double job_scale_gpus) {
  if (usable_gpus.v.empty()) return 0.0;
  std::size_t waiting = 0;
  for (double u : usable_gpus.v)
    if (u < job_scale_gpus) ++waiting;
  return static_cast<double>(waiting) /
         static_cast<double>(usable_gpus.v.size());
}

}  // namespace ihbd::topo
