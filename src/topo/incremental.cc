#include "src/topo/incremental.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "src/common/contracts.h"
#include "src/common/error.h"
#include "src/obs/metrics.h"

namespace ihbd::topo {

namespace {

/// Incremental-allocator metrics (src/obs): how often each KHop flip tier
/// fires, memoizing-fallback behaviour, per-island flip volume, and the
/// dirty-word traffic of the packed path. All recording sits behind
/// obs::enabled() so the allocators' O(1)/O(log N) hot paths are
/// unperturbed by default.
struct AllocObs {
  obs::Counter& khop_residue_step;   ///< tier 1: unbroken-ring residue step
  obs::Counter& khop_arc_patch;      ///< tier 2: arc-interior length patch
  obs::Counter& khop_general;        ///< tier 3: window subtract/re-add
  obs::Counter& memo_realloc;        ///< memoizing fallback full reallocs
  obs::Counter& memo_hits;           ///< memoizing fallback cache hits
  obs::Counter& island_flips;        ///< per-island O(1) flips applied
  obs::Counter& dirty_words;         ///< word deltas consumed by apply_words
};

AllocObs& alloc_obs() {
  static AllocObs o{obs::counter("alloc.khop.residue_step"),
                    obs::counter("alloc.khop.arc_patch"),
                    obs::counter("alloc.khop.general_window"),
                    obs::counter("alloc.memo.reallocs"),
                    obs::counter("alloc.memo.hits"),
                    obs::counter("alloc.island.flips"),
                    obs::counter("alloc.dirty_words")};
  return o;
}

}  // namespace

// ---------------------------------------------------------------------------
// IncrementalAllocator: default apply_words -> apply adapter
// ---------------------------------------------------------------------------

const Allocation& IncrementalAllocator::apply_words(
    const fault::PackedMask& mask,
    const std::vector<fault::WordDelta>& deltas) {
  adapter_flips_.clear();
  if (!adapter_initialized_ ||
      static_cast<int>(adapter_mask_.size()) != mask.size()) {
    adapter_mask_ = mask.to_bools();
    adapter_initialized_ = true;
  } else {
    for (const fault::WordDelta& d : deltas) {
      fault::for_each_set_bit(d.xor_bits, d.word, [&](int x) {
        // Resync from `mask` instead of blind XOR: spurious delta bits
        // (whose word already matches) then leave the mirror untouched.
        const bool v = mask.test(x);
        if (adapter_mask_[static_cast<std::size_t>(x)] == v) return;
        adapter_mask_[static_cast<std::size_t>(x)] = v;
        adapter_flips_.push_back(x);
      });
    }
  }
  return apply(adapter_mask_, adapter_flips_);
}

// ---------------------------------------------------------------------------
// MemoizingAllocator
// ---------------------------------------------------------------------------

MemoizingAllocator::MemoizingAllocator(const HbdArchitecture& arch,
                                       int tp_size_gpus)
    : arch_(arch), tp_size_gpus_(tp_size_gpus) {
  if (tp_size_gpus <= 0 || tp_size_gpus % arch.gpus_per_node() != 0)
    throw ConfigError("TP size must be a positive multiple of GPUs/node");
}

const Allocation& MemoizingAllocator::apply(const std::vector<bool>& mask,
                                            const std::vector<int>& flipped) {
  if (!initialized_ || !flipped.empty()) {
    alloc_ = arch_.allocate(mask, tp_size_gpus_);
    initialized_ = true;
    cached_mask_ = fault::PackedMask{};  // packed cache no longer current
    if (obs::enabled()) alloc_obs().memo_realloc.add(1);
  } else if (obs::enabled()) {
    alloc_obs().memo_hits.add(1);
  }
  return alloc_;
}

const Allocation& MemoizingAllocator::apply_words(
    const fault::PackedMask& mask,
    const std::vector<fault::WordDelta>& deltas) {
  // Spurious-delta filtering is a word compare against the cached mask.
  bool changed = !initialized_ || cached_mask_.size() != mask.size();
  if (!changed) {
    for (const fault::WordDelta& d : deltas) {
      if (mask.word(d.word) != cached_mask_.word(d.word)) {
        changed = true;
        break;
      }
    }
  }
  if (changed) {
    alloc_ = arch_.allocate(mask, tp_size_gpus_);
    cached_mask_ = mask;
    initialized_ = true;
    if (obs::enabled()) alloc_obs().memo_realloc.add(1);
  } else if (obs::enabled()) {
    alloc_obs().memo_hits.add(1);
  }
  return alloc_;
}

// ---------------------------------------------------------------------------
// KHopRingIncrementalAllocator
//
// Invariants (mirroring KHopRing::healthy_arcs exactly):
//   * healthy_ (set bit = healthy node) / fenwick_ / healthy_count_ track
//     the healthy node set, and prev_/next_ link the healthy nodes into a
//     circular list (entries for faulty nodes are stale until they come
//     back up).
//   * fenwick_ is word-granular: leaf w holds popcount(healthy_.word(w)),
//     so healthy_prefix(i) is a tree walk over i/64 words plus one masked
//     popcount of the word containing i — and a flip updates the single
//     leaf of its word.
//   * cuts_ holds every healthy position p whose link to the next healthy
//     node s (clockwise, wrapping) is NOT bypassable: the faulty gap
//     between them exceeds K-1 hops, or it is the wrap link of the line
//     variant. A lone healthy node's self-link is always a cut.
//   * Arcs are the intervals between consecutive cuts: for each c in
//     cuts_, one arc holding the healthy nodes in (c, next_cut(c)]. With
//     no cuts (and any healthy nodes) the ring is one unbroken circular
//     arc of healthy_count_ nodes.
//   * wasted_nodes_ is the sum of len % m over all arcs — exactly what
//     allocate() derives from its arc walk; usable nodes follow as
//     healthy_count_ - wasted_nodes_ (usable + wasted = healthy, always).
//
// A single-node flip only disturbs the links incident to the flipped node
// x and its healthy neighbors p and s: cut membership can change at keys p
// and x only. Every affected arc therefore lies between the nearest
// *persistent* cuts around the neighborhood (cA counterclockwise of p, cB
// clockwise of x); flip() subtracts the arcs in that window, mutates the
// structures, and re-adds the window's arcs — O(log(N/64)) per flip. When
// no persistent cut exists the whole ring holds at most three arcs and is
// re-accumulated globally at the same cost.
// ---------------------------------------------------------------------------

KHopRingIncrementalAllocator::KHopRingIncrementalAllocator(const KHopRing& ring,
                                                           int tp_size_gpus)
    : ring_(ring), n_(ring.node_count()), circular_(ring.is_ring()) {
  if (tp_size_gpus <= 0 || tp_size_gpus % ring.gpus_per_node() != 0)
    throw ConfigError("TP size must be a positive multiple of GPUs/node");
  m_ = tp_size_gpus / ring.gpus_per_node();
}

void KHopRingIncrementalAllocator::fenwick_word_add(int w, int delta) {
  const int words = static_cast<int>(fenwick_.size()) - 1;
  for (++w; w <= words; w += w & -w)
    fenwick_[static_cast<std::size_t>(w)] += delta;
}

int KHopRingIncrementalAllocator::healthy_prefix(int i) const {
  const int w = i / fault::PackedMask::kWordBits;
  const int r = i % fault::PackedMask::kWordBits;
  // Low r+1 bits of the word containing i, plus full words before it.
  int s = std::popcount(healthy_.word(w) &
                        (~std::uint64_t{0} >>
                         (fault::PackedMask::kWordBits - 1 - r)));
  for (int j = w; j > 0; j -= j & -j)
    s += fenwick_[static_cast<std::size_t>(j)];
  return s;
}

int KHopRingIncrementalAllocator::next_healthy_of_faulty(int x) const {
  // Word-scan the packed healthy set clockwise, wrapping. Callers
  // guarantee at least one healthy node exists.
  const int s = healthy_.find_first_from(x + 1 == n_ ? 0 : x + 1);
  return s >= 0 ? s : healthy_.find_first_from(0);
}

int KHopRingIncrementalAllocator::arc_len(int a, int b) const {
  if (a == b) return healthy_count_;  // full circle
  const int pa = healthy_prefix(a);
  const int pb = healthy_prefix(b);
  return a < b ? pb - pa : healthy_count_ - pa + pb;
}

int KHopRingIncrementalAllocator::gap(int p, int s) const {
  const int d = s - p - 1;  // p == s (lone node) -> n - 1
  return d < 0 ? d + n_ : d;
}

bool KHopRingIncrementalAllocator::is_cut_link(int p, int s) const {
  if (gap(p, s) > ring_.max_bypassable_run()) return true;
  return !circular_ && s <= p;  // the line variant has no wrap link
}

int KHopRingIncrementalAllocator::next_cut(int c) const {
  const auto it = std::upper_bound(cuts_.begin(), cuts_.end(), c);
  return it == cuts_.end() ? cuts_.front() : *it;
}

int KHopRingIncrementalAllocator::prev_cut_excluding(int from, int e1,
                                                     int e2) const {
  std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(cuts_.begin(), cuts_.end(), from) - cuts_.begin());
  for (std::size_t i = 0; i < cuts_.size(); ++i) {
    idx = (idx == 0 ? cuts_.size() : idx) - 1;  // step backwards, wrapping
    const int v = cuts_[idx];
    if (v != e1 && v != e2) return v;
  }
  return -1;
}

int KHopRingIncrementalAllocator::next_cut_excluding(int from, int e1,
                                                     int e2) const {
  std::size_t idx = static_cast<std::size_t>(
      std::upper_bound(cuts_.begin(), cuts_.end(), from) - cuts_.begin());
  for (std::size_t i = 0; i < cuts_.size(); ++i) {
    if (idx == cuts_.size()) idx = 0;
    const int v = cuts_[idx];
    if (v != e1 && v != e2) return v;
    ++idx;
  }
  return -1;
}

void KHopRingIncrementalAllocator::cut_erase(int key) {
  const auto it = std::lower_bound(cuts_.begin(), cuts_.end(), key);
  if (it != cuts_.end() && *it == key) cuts_.erase(it);
}

void KHopRingIncrementalAllocator::cut_insert(int key) {
  cuts_.insert(std::lower_bound(cuts_.begin(), cuts_.end(), key), key);
}

void KHopRingIncrementalAllocator::add_arc(int len, int sign) {
  wasted_nodes_ += sign * (len % m_);
}

void KHopRingIncrementalAllocator::accumulate_window(int from_cut, int to_cut,
                                                     int sign) {
  // Consecutive arcs share a boundary, so chain the prefix sums: one
  // Fenwick query per cut instead of two per arc.
  int c = from_cut;
  int pc = healthy_prefix(c);
  while (true) {
    const int cn = next_cut(c);
    const int pn = c == cn ? pc : healthy_prefix(cn);
    const int len =
        c == cn ? healthy_count_
                : (c < cn ? pn - pc : healthy_count_ - pc + pn);
    add_arc(len, sign);
    if (cn == to_cut) break;
    c = cn;
    pc = pn;
  }
}

void KHopRingIncrementalAllocator::accumulate_all(int sign) {
  if (healthy_count_ == 0) return;
  if (cuts_.empty()) {  // unbroken circular arc
    add_arc(healthy_count_, sign);
    return;
  }
  const int c0 = *cuts_.begin();
  accumulate_window(c0, c0, sign);
}

void KHopRingIncrementalAllocator::rebuild_from_healthy() {
  prev_.assign(static_cast<std::size_t>(n_), 0);
  next_.assign(static_cast<std::size_t>(n_), 0);
  const int words = healthy_.word_count();
  fenwick_.assign(static_cast<std::size_t>(words) + 1, 0);
  // Linear-time Fenwick build: add each leaf into its parent once.
  for (int j = 1; j <= words; ++j) {
    fenwick_[static_cast<std::size_t>(j)] +=
        std::popcount(healthy_.word(j - 1));
    const int parent = j + (j & -j);
    if (parent <= words)
      fenwick_[static_cast<std::size_t>(parent)] +=
          fenwick_[static_cast<std::size_t>(j)];
  }
  healthy_count_ = healthy_.popcount();
  cuts_.clear();
  wasted_nodes_ = 0;
  // Link the healthy nodes circularly and collect cuts, straight off the
  // packed words. Cut keys come out ascending: stays sorted.
  int first = -1;
  int prev_node = -1;
  fault::for_each_set_bit(healthy_, [&](int i) {
    if (first < 0) {
      first = i;
    } else {
      next_[static_cast<std::size_t>(prev_node)] = i;
      prev_[static_cast<std::size_t>(i)] = prev_node;
      if (is_cut_link(prev_node, i)) cuts_.push_back(prev_node);
    }
    prev_node = i;
  });
  if (prev_node >= 0) {  // close the circle (self-link for a lone node)
    next_[static_cast<std::size_t>(prev_node)] = first;
    prev_[static_cast<std::size_t>(first)] = prev_node;
    if (is_cut_link(prev_node, first)) cuts_.push_back(prev_node);
  }
  accumulate_all(+1);
  initialized_ = true;
}

void KHopRingIncrementalAllocator::flip(int x) {
  const bool to_faulty = healthy_.test(x);
  const int xw = x / fault::PackedMask::kWordBits;

  // Lone-node transitions have no healthy neighbors to define links.
  // (Counted under the general tier: they rewrite cut structure wholesale.)
  if ((to_faulty ? healthy_count_ == 1 : healthy_count_ == 0) &&
      obs::enabled())
    alloc_obs().khop_general.add(1);
  if (to_faulty && healthy_count_ == 1) {
    accumulate_all(-1);
    healthy_.set(x, false);
    fenwick_word_add(xw, -1);
    healthy_count_ = 0;
    cuts_.clear();
    return;
  }
  if (!to_faulty && healthy_count_ == 0) {
    healthy_.set(x, true);
    fenwick_word_add(xw, +1);
    healthy_count_ = 1;
    prev_[static_cast<std::size_t>(x)] = x;
    next_[static_cast<std::size_t>(x)] = x;
    cut_insert(x);  // a lone node's self-link is always a cut
    accumulate_all(+1);
    return;
  }

  // Healthy neighbors of x, excluding x itself (ring order p -> x -> s with
  // only faulty nodes in between; p == s when only one other node exists).
  // Down-flips read them off the linked list in O(1); up-flips word-scan
  // the packed healthy set to the successor.
  const int s = to_faulty ? next_[static_cast<std::size_t>(x)]
                          : next_healthy_of_faulty(x);
  const int p = to_faulty ? prev_[static_cast<std::size_t>(x)]
                          : prev_[static_cast<std::size_t>(s)];

  // Structural mutations shared by all tiers below.
  const auto unlink_x = [&] {
    healthy_.set(x, false);
    fenwick_word_add(xw, -1);
    --healthy_count_;
    next_[static_cast<std::size_t>(p)] = s;
    prev_[static_cast<std::size_t>(s)] = p;
  };
  const auto link_x = [&] {
    healthy_.set(x, true);
    fenwick_word_add(xw, +1);
    ++healthy_count_;
    next_[static_cast<std::size_t>(p)] = x;
    prev_[static_cast<std::size_t>(x)] = p;
    next_[static_cast<std::size_t>(x)] = s;
    prev_[static_cast<std::size_t>(s)] = x;
  };

  // An up-flip can only shrink gaps, so it introduces a cut only via the
  // line variant's wrap link (s <= p); a down-flip only via the new (p, s)
  // link. Everything else leaves cut membership untouched.
  if (to_faulty ? (!is_cut_link(p, x) && !is_cut_link(x, s) &&
                   !is_cut_link(p, s))
                : !is_cut_link(p, s)) {
    if (cuts_.empty()) {
      // Tier 1: unbroken ring stays unbroken. The single circular arc
      // changes length by one, so the wasted residue (== healthy_count_ %
      // m_ here) steps modularly — no division, no search, no Fenwick
      // range query.
      if (obs::enabled()) alloc_obs().khop_residue_step.add(1);
      if (to_faulty) {
        unlink_x();
        wasted_nodes_ = wasted_nodes_ == 0 ? m_ - 1 : wasted_nodes_ - 1;
      } else {
        link_x();
        if (++wasted_nodes_ == m_) wasted_nodes_ = 0;
      }
    } else {
      // Tier 2: arc-interior flip with cuts elsewhere. Only the arc
      // containing x changes length; locate it with two plain binary
      // searches (p and x hold no cuts here, so no exclusions needed).
      if (obs::enabled()) alloc_obs().khop_arc_patch.add(1);
      const auto lb = std::lower_bound(cuts_.begin(), cuts_.end(), x);
      const int ca = lb == cuts_.begin() ? cuts_.back() : *(lb - 1);
      const int cb = next_cut(ca);
      const int len = arc_len(ca, cb);  // before the mutation, so with x
      if (to_faulty) {
        unlink_x();
        wasted_nodes_ += (len - 1) % m_ - len % m_;
      } else {
        link_x();
        wasted_nodes_ += (len + 1) % m_ - len % m_;
      }
    }
    return;
  }

  // Tier 3 (general): cut membership changes at keys p and x only; the
  // affected arcs lie between the nearest persistent cuts around the
  // neighborhood. Subtract those arcs, mutate, re-add them.
  if (obs::enabled()) alloc_obs().khop_general.add(1);
  const int ca = prev_cut_excluding(p, p, x);
  const int cb = ca < 0 ? -1 : next_cut_excluding(x, p, x);

  if (ca < 0) {
    accumulate_all(-1);
  } else {
    accumulate_window(ca, cb, -1);
  }

  if (to_faulty) {
    unlink_x();
    cut_erase(x);  // old link x -> s
    cut_erase(p);  // old link p -> x
    const int s2 = healthy_count_ == 1 ? p : s;
    if (is_cut_link(p, s2)) cut_insert(p);  // new link p -> s
  } else {
    link_x();
    cut_erase(p);  // old link p -> s
    if (is_cut_link(p, x)) cut_insert(p);
    const int s2 = healthy_count_ == 2 ? p : s;
    if (is_cut_link(x, s2)) cut_insert(x);
  }

  if (ca < 0) {
    accumulate_all(+1);
  } else {
    accumulate_window(ca, cb, +1);
  }
}

void KHopRingIncrementalAllocator::fill_alloc() {
  alloc_.total_gpus = ring_.total_gpus();
  alloc_.faulty_gpus = (n_ - healthy_count_) * ring_.gpus_per_node();
  alloc_.usable_gpus =
      (healthy_count_ - wasted_nodes_) * ring_.gpus_per_node();
  alloc_.wasted_healthy_gpus = wasted_nodes_ * ring_.gpus_per_node();
}

const Allocation& KHopRingIncrementalAllocator::apply(
    const std::vector<bool>& mask, const std::vector<int>& flipped) {
  IHBD_EXPECTS(static_cast<int>(mask.size()) == n_);
  if (!initialized_) {
    healthy_ = fault::PackedMask::from_bools(mask).complement();
    rebuild_from_healthy();
  } else {
    for (const int x : flipped) {
      IHBD_EXPECTS(x >= 0 && x < n_);
      // Tolerate spurious entries: only apply genuine bit changes.
      if (healthy_.test(x) == mask[static_cast<std::size_t>(x)]) flip(x);
    }
  }
  fill_alloc();
  return alloc_;
}

const Allocation& KHopRingIncrementalAllocator::apply_words(
    const fault::PackedMask& mask,
    const std::vector<fault::WordDelta>& deltas) {
  IHBD_EXPECTS(mask.size() == n_);
  if (!initialized_) {
    healthy_ = mask.complement();
    rebuild_from_healthy();
  } else {
    for (const fault::WordDelta& d : deltas) {
      IHBD_EXPECTS(d.word >= 0 && d.word < healthy_.word_count());
      // Genuine changes only: our faulty word is the complement of the
      // healthy word over the valid bits.
      const std::uint64_t ours =
          ~healthy_.word(d.word) & healthy_.valid_mask(d.word);
      const std::uint64_t changed = mask.word(d.word) ^ ours;
      if (changed == 0) continue;
      if (obs::enabled()) alloc_obs().dirty_words.add(1);
      // flip() interleaves Fenwick queries with cut/arc bookkeeping, so
      // bits are applied one at a time — but all of a word's flips hit the
      // same Fenwick leaf, and the word compare above already filtered
      // the spurious ones.
      fault::for_each_set_bit(changed, d.word, [&](int x) { flip(x); });
    }
  }
  fill_alloc();
  return alloc_;
}

// ---------------------------------------------------------------------------
// Per-island baseline allocators
//
// Every §6.1 baseline decomposes into islands that fragment independently,
// so the per-island aggregates below are exact restatements of the
// corresponding allocate() arithmetic — integer-only, hence bit-identical:
//   * modulo islands (Big-Switch / NVL / TPUv4 TP <= cube):
//       wasted = sum_i healthy_i % m
//   * TPUv4 pooled (TP > cube), with npc nodes per cube:
//       wasted = (healthy - clean_cubes * npc) + (clean_cubes * npc) % m
//   * SiP-Ring: wasted = sum_{broken rings} (m - faults_r) + trailing_healthy
// A flip touches exactly one island, so each update is O(1); seeding from a
// full mask is one masked popcount per island.
// ---------------------------------------------------------------------------

PerIslandAllocatorBase::PerIslandAllocatorBase(const HbdArchitecture& arch,
                                               int tp_size_gpus)
    : n_(arch.node_count()), gpus_per_node_(arch.gpus_per_node()) {
  if (tp_size_gpus <= 0 || tp_size_gpus % arch.gpus_per_node() != 0)
    throw ConfigError("TP size must be a positive multiple of GPUs/node");
  m_ = tp_size_gpus / arch.gpus_per_node();
  alloc_.total_gpus = arch.total_gpus();
}

void PerIslandAllocatorBase::initialize_from(const fault::PackedMask& mask) {
  faulty_ = mask;
  healthy_count_ = n_ - mask.popcount();
  init_islands(faulty_);
  initialized_ = true;
}

const Allocation& PerIslandAllocatorBase::finish() {
  const int wasted = wasted_nodes();
  alloc_.faulty_gpus = (n_ - healthy_count_) * gpus_per_node_;
  alloc_.usable_gpus = (healthy_count_ - wasted) * gpus_per_node_;
  alloc_.wasted_healthy_gpus = wasted * gpus_per_node_;
  return alloc_;
}

const Allocation& PerIslandAllocatorBase::apply(
    const std::vector<bool>& mask, const std::vector<int>& flipped) {
  IHBD_EXPECTS(static_cast<int>(mask.size()) == n_);
  if (!initialized_) {
    initialize_from(fault::PackedMask::from_bools(mask));
    return finish();
  }
  for (const int x : flipped) {
    IHBD_EXPECTS(x >= 0 && x < n_);
    // Tolerate spurious entries: only apply genuine bit changes.
    const bool cur = faulty_.test(x);
    if (cur == mask[static_cast<std::size_t>(x)]) continue;
    faulty_.set(x, !cur);
    healthy_count_ += cur ? 1 : -1;
    island_flip(x, /*to_faulty=*/!cur);
    if (obs::enabled()) alloc_obs().island_flips.add(1);
  }
  return finish();
}

const Allocation& PerIslandAllocatorBase::apply_words(
    const fault::PackedMask& mask,
    const std::vector<fault::WordDelta>& deltas) {
  IHBD_EXPECTS(mask.size() == n_);
  if (!initialized_) {
    initialize_from(mask);
    return finish();
  }
  for (const fault::WordDelta& d : deltas) {
    IHBD_EXPECTS(d.word >= 0 && d.word < faulty_.word_count());
    // Spurious-flip filtering is one word compare; the genuine flips split
    // by direction with two ANDs.
    const std::uint64_t changed = mask.word(d.word) ^ faulty_.word(d.word);
    if (changed == 0) continue;
    const std::uint64_t now_faulty = changed & mask.word(d.word);
    const std::uint64_t now_healthy = changed ^ now_faulty;
    healthy_count_ +=
        std::popcount(now_healthy) - std::popcount(now_faulty);
    faulty_.apply_xor(d.word, changed);
    fault::for_each_set_bit(now_faulty, d.word,
                            [&](int x) { island_flip(x, true); });
    fault::for_each_set_bit(now_healthy, d.word,
                            [&](int x) { island_flip(x, false); });
    if (obs::enabled()) {
      AllocObs& o = alloc_obs();
      o.dirty_words.add(1);
      o.island_flips.add(static_cast<std::uint64_t>(std::popcount(changed)));
    }
  }
  return finish();
}

IslandModuloAllocator::IslandModuloAllocator(const HbdArchitecture& arch,
                                             IslandPartition islands,
                                             int tp_size_gpus)
    : PerIslandAllocatorBase(arch, tp_size_gpus), islands_(islands) {
  IHBD_EXPECTS(islands_.node_count == arch.node_count());
  // Modulo islands partition the cluster exactly; a trailing remainder
  // would need SiP-Ring-style special casing.
  IHBD_EXPECTS(islands_.node_count % islands_.nodes_per_island == 0);
  island_of_.resize(static_cast<std::size_t>(islands_.node_count));
  for (int i = 0; i < islands_.node_count; ++i)
    island_of_[static_cast<std::size_t>(i)] = islands_.island_of(i);
  residue_.resize(static_cast<std::size_t>(islands_.nodes_per_island) + 1);
  for (int h = 0; h <= islands_.nodes_per_island; ++h)
    residue_[static_cast<std::size_t>(h)] = h % m_;
}

void IslandModuloAllocator::init_islands(const fault::PackedMask& faulty) {
  const int count = islands_.full_island_count();
  island_healthy_.assign(static_cast<std::size_t>(count), 0);
  wasted_nodes_ = 0;
  for (int i = 0; i < count; ++i) {
    const int healthy =
        islands_.nodes_per_island -
        faulty.popcount_range(islands_.island_begin(i), islands_.island_end(i));
    island_healthy_[static_cast<std::size_t>(i)] = healthy;
    wasted_nodes_ += healthy % m_;
  }
}

void IslandModuloAllocator::island_flip(int node, bool to_faulty) {
  int& healthy = island_healthy_[static_cast<std::size_t>(
      island_of_[static_cast<std::size_t>(node)])];
  const int next = healthy + (to_faulty ? -1 : 1);
  wasted_nodes_ += residue_[static_cast<std::size_t>(next)] -
                   residue_[static_cast<std::size_t>(healthy)];
  healthy = next;
}

TpuCubePoolAllocator::TpuCubePoolAllocator(const TpuV4& tpu, int tp_size_gpus)
    : PerIslandAllocatorBase(tpu, tp_size_gpus),
      cubes_(tpu.island_partition()) {
  IHBD_EXPECTS(tp_size_gpus > tpu.cube_gpus());
  cube_of_.resize(static_cast<std::size_t>(cubes_.node_count));
  for (int i = 0; i < cubes_.node_count; ++i)
    cube_of_[static_cast<std::size_t>(i)] = cubes_.island_of(i);
}

void TpuCubePoolAllocator::init_islands(const fault::PackedMask& faulty) {
  const int count = cubes_.full_island_count();
  cube_faulty_.assign(static_cast<std::size_t>(count), 0);
  clean_cubes_ = 0;
  for (int c = 0; c < count; ++c) {
    const int faults =
        faulty.popcount_range(cubes_.island_begin(c), cubes_.island_end(c));
    cube_faulty_[static_cast<std::size_t>(c)] = faults;
    if (faults == 0) ++clean_cubes_;
  }
}

void TpuCubePoolAllocator::island_flip(int node, bool to_faulty) {
  int& faults =
      cube_faulty_[static_cast<std::size_t>(
          cube_of_[static_cast<std::size_t>(node)])];
  if (to_faulty) {
    if (faults++ == 0) --clean_cubes_;
  } else {
    if (--faults == 0) ++clean_cubes_;
  }
}

int TpuCubePoolAllocator::wasted_nodes() const {
  const int pool = clean_cubes_ * cubes_.nodes_per_island;
  return (healthy_count() - pool) + pool % m_;
}

SipRingIncrementalAllocator::SipRingIncrementalAllocator(const SipRing& sip,
                                                         int tp_size_gpus)
    : PerIslandAllocatorBase(sip, tp_size_gpus),
      rings_(sip.ring_partition(m_)) {
  ring_of_.resize(static_cast<std::size_t>(rings_.node_count));
  for (int i = 0; i < rings_.node_count; ++i)
    ring_of_[static_cast<std::size_t>(i)] = rings_.island_of(i);
}

void SipRingIncrementalAllocator::init_islands(
    const fault::PackedMask& faulty) {
  const int count = rings_.full_island_count();
  ring_faulty_.assign(static_cast<std::size_t>(count), 0);
  broken_waste_nodes_ = 0;
  for (int r = 0; r < count; ++r) {
    const int begin = rings_.island_begin(r);
    const int faults = faulty.popcount_range(begin, begin + m_);
    ring_faulty_[static_cast<std::size_t>(r)] = faults;
    if (faults > 0) broken_waste_nodes_ += m_ - faults;
  }
  const int trail_begin = rings_.island_begin(count);
  trailing_healthy_ = node_count() - trail_begin -
                      faulty.popcount_range(trail_begin, node_count());
}

void SipRingIncrementalAllocator::island_flip(int node, bool to_faulty) {
  const int ring = ring_of_[static_cast<std::size_t>(node)];
  if (ring >= rings_.full_island_count()) {
    trailing_healthy_ += to_faulty ? -1 : 1;
    return;
  }
  int& faults = ring_faulty_[static_cast<std::size_t>(ring)];
  // A broken ring wastes its m - faults healthy members; an intact ring
  // wastes none.
  broken_waste_nodes_ -= faults > 0 ? m_ - faults : 0;
  faults += to_faulty ? 1 : -1;
  broken_waste_nodes_ += faults > 0 ? m_ - faults : 0;
}

std::unique_ptr<IncrementalAllocator> make_incremental_allocator(
    const HbdArchitecture& arch, int tp_size_gpus) {
  if (const auto* ring = dynamic_cast<const KHopRing*>(&arch))
    return std::make_unique<KHopRingIncrementalAllocator>(*ring, tp_size_gpus);
  if (const auto* bs = dynamic_cast<const BigSwitch*>(&arch))
    return std::make_unique<IslandModuloAllocator>(
        *bs, bs->island_partition(), tp_size_gpus);
  if (const auto* nvl = dynamic_cast<const NvlSwitch*>(&arch))
    return std::make_unique<IslandModuloAllocator>(
        *nvl, nvl->island_partition(), tp_size_gpus);
  if (const auto* tpu = dynamic_cast<const TpuV4*>(&arch)) {
    if (tp_size_gpus > tpu->cube_gpus())
      return std::make_unique<TpuCubePoolAllocator>(*tpu, tp_size_gpus);
    return std::make_unique<IslandModuloAllocator>(
        *tpu, tpu->island_partition(), tp_size_gpus);
  }
  if (const auto* sip = dynamic_cast<const SipRing*>(&arch))
    return std::make_unique<SipRingIncrementalAllocator>(*sip, tp_size_gpus);
  return std::make_unique<MemoizingAllocator>(arch, tp_size_gpus);
}

}  // namespace ihbd::topo
