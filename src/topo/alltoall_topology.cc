#include "src/topo/alltoall_topology.h"

#include <cmath>

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::topo {

namespace {
bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }
int ilog2(int v) {
  int d = 0;
  while ((1 << d) < v) ++d;
  return d;
}
}  // namespace

BinaryHopTopology::BinaryHopTopology(int node_count, int gpus_per_node,
                                     int bundles)
    : node_count_(node_count), gpus_per_node_(gpus_per_node),
      bundles_(bundles) {
  if (node_count < 2) throw ConfigError("need >= 2 nodes");
  if (gpus_per_node < 1) throw ConfigError("GPUs per node must be >= 1");
  if (bundles < 1) throw ConfigError("bundles must be >= 1");
  if ((1 << (bundles - 1)) * 2 > node_count)
    throw ConfigError("largest hop distance must fit the ring");
}

int BinaryHopTopology::ring_distance(int a, int b) const {
  IHBD_EXPECTS(a >= 0 && a < node_count_ && b >= 0 && b < node_count_);
  int d = std::abs(a - b);
  return std::min(d, node_count_ - d);
}

bool BinaryHopTopology::connected(int a, int b) const {
  const int d = ring_distance(a, b);
  return is_pow2(d) && d <= (1 << (bundles_ - 1));
}

bool BinaryHopTopology::coupling_ok(int tp_size_gpus, int ep_size) const {
  IHBD_EXPECTS(tp_size_gpus > 0 && ep_size > 0);
  return tp_size_gpus * ep_size <= gpus_per_node_ * (1 << bundles_);
}

bool BinaryHopTopology::supports_binary_exchange(int base, int p) const {
  if (!is_pow2(p) || p > max_ep_group_nodes()) return false;
  if (base % p != 0 || base + p > node_count_) return false;
  for (int i = 0; i < p; ++i) {
    for (int k = 0; (1 << k) < p; ++k) {
      const int partner = i ^ (1 << k);
      if (!connected(base + i, base + partner)) return false;
    }
  }
  return true;
}

std::vector<std::vector<std::pair<int, int>>>
BinaryHopTopology::binary_exchange_schedule(int base, int p) const {
  if (!supports_binary_exchange(base, p))
    throw InfeasibleError("group cannot run Binary Exchange on this wiring");
  const int rounds = ilog2(p);
  std::vector<std::vector<std::pair<int, int>>> schedule;
  schedule.reserve(static_cast<std::size_t>(rounds));
  // Round k = 1..log2(p): partner = i XOR 2^(log2 p - k)  (Algorithm 6).
  for (int k = 1; k <= rounds; ++k) {
    const int stride = 1 << (rounds - k);
    std::vector<std::pair<int, int>> round;
    for (int i = 0; i < p; ++i) {
      const int j = i ^ stride;
      if (i < j) round.emplace_back(base + i, base + j);
    }
    schedule.push_back(std::move(round));
  }
  return schedule;
}

}  // namespace ihbd::topo
