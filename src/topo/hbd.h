// Common interface for High-Bandwidth Domain (HBD) architectures.
//
// Every architecture the paper evaluates (§6.1) implements this interface:
// given the faulty-node mask and a TP size, produce the best allocation of
// TP groups the architecture supports, from which the GPU waste ratio,
// maximum job scale and fault-waiting metrics all derive.
//
// Waste-ratio semantics follow §2.1: the numerator counts HEALTHY GPUs that
// are rendered unusable (fragmentation, disconnection, bandwidth
// degradation); faulty GPUs are excluded from the numerator but not the
// denominator (which is the full cluster).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/fault/packed_mask.h"

namespace ihbd::topo {

/// One placed TP group: the member nodes in ring order.
struct TpGroup {
  std::vector<int> nodes;
};

/// Result of allocating TP groups on a (possibly degraded) cluster.
struct Allocation {
  int total_gpus = 0;           ///< cluster size (denominator)
  int faulty_gpus = 0;          ///< GPUs on faulty nodes
  int usable_gpus = 0;          ///< GPUs inside placed TP groups
  int wasted_healthy_gpus = 0;  ///< healthy GPUs that could not be placed
  std::vector<TpGroup> groups;  ///< the placed groups

  /// Healthy-GPU waste ratio over the whole cluster (§2.1).
  double waste_ratio() const {
    return total_gpus == 0
               ? 0.0
               : static_cast<double>(wasted_healthy_gpus) / total_gpus;
  }
};

/// Abstract HBD architecture.
class HbdArchitecture {
 public:
  virtual ~HbdArchitecture() = default;

  virtual std::string name() const = 0;
  virtual int node_count() const = 0;
  virtual int gpus_per_node() const = 0;
  int total_gpus() const { return node_count() * gpus_per_node(); }

  /// Place as many TP groups of `tp_size_gpus` GPUs as the architecture
  /// allows given `faulty` (one bit per node). `tp_size_gpus` must be a
  /// positive multiple of gpus_per_node(). This packed overload is the
  /// primary virtual: the replay core hands architectures PackedMasks
  /// directly.
  virtual Allocation allocate(const fault::PackedMask& faulty,
                              int tp_size_gpus) const = 0;

  /// Compatibility adapter for vector<bool> callers (the serial oracle,
  /// sweep drivers, tests): packs the mask and dispatches to the packed
  /// overload. Derived classes re-expose it with
  /// `using HbdArchitecture::allocate;`.
  Allocation allocate(const std::vector<bool>& faulty, int tp_size_gpus) const {
    return allocate(fault::PackedMask::from_bools(faulty), tp_size_gpus);
  }

 protected:
  /// Shared precondition checks; returns GPUs-per-group node count m.
  int check_args(const fault::PackedMask& faulty, int tp_size_gpus) const;
};

}  // namespace ihbd::topo
