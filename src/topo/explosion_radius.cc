#include "src/topo/explosion_radius.h"

#include <algorithm>

#include "src/common/contracts.h"
#include "src/topo/baselines.h"
#include "src/topo/khop_ring.h"

namespace ihbd::topo {

int immediate_degraded_gpus(const HbdArchitecture& arch, int tp_size_gpus) {
  const int r = arch.gpus_per_node();
  if (const auto* ring = dynamic_cast<const KHopRing*>(&arch)) {
    // K >= 2: backup links restore full bandwidth around any single fault.
    // K = 1: no backup hop - both ring neighbors lose their link partner.
    return ring->k() >= 2 ? 0 : 2 * r;
  }
  if (dynamic_cast<const BigSwitch*>(&arch) ||
      dynamic_cast<const NvlSwitch*>(&arch)) {
    return 0;  // node fault: other ports unaffected (switch faults differ)
  }
  if (const auto* tpu = dynamic_cast<const TpuV4*>(&arch)) {
    return tpu->cube_gpus() - r;  // the rest of the cube
  }
  if (dynamic_cast<const SipRing*>(&arch)) {
    return tp_size_gpus - r;  // the rest of the static ring
  }
  IHBD_EXPECTS(false && "unknown architecture");
  return 0;
}

RadiusReport measure_radius(const HbdArchitecture& arch, int tp_size_gpus,
                            int trials, Rng& rng) {
  IHBD_EXPECTS(trials > 0);
  RadiusReport report;
  report.architecture = arch.name();
  report.immediate_degraded_gpus =
      immediate_degraded_gpus(arch, tp_size_gpus);

  std::vector<bool> clean(static_cast<std::size_t>(arch.node_count()), false);
  const int usable_clean = arch.allocate(clean, tp_size_gpus).usable_gpus;

  double total_loss = 0.0;
  int worst = 0;
  for (int t = 0; t < trials; ++t) {
    auto mask = clean;
    const int victim =
        static_cast<int>(rng.uniform_index(arch.node_count()));
    mask[static_cast<std::size_t>(victim)] = true;
    const int usable = arch.allocate(mask, tp_size_gpus).usable_gpus;
    // Loss beyond the faulty node's own GPUs.
    const int loss =
        std::max(0, usable_clean - usable - arch.gpus_per_node());
    total_loss += loss;
    worst = std::max(worst, loss);
  }
  report.mean_reallocation_loss_gpus = total_loss / trials;
  report.worst_reallocation_loss_gpus = worst;
  return report;
}

}  // namespace ihbd::topo
