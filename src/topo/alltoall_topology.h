// AllToAll-oriented InfiniteHBD wiring variant (paper Appendix G.3).
//
// Instead of connecting each node to neighbors at distances 1..K, backup
// lines are rewired to distances 1, 2, 4, ..., 2^(B-1) (B = OCSTrx bundles
// per node). Node i in a group then reaches exactly the partners the
// Binary-Exchange AllToAll algorithm needs (i XOR 2^k), enabling
// O(p log p) EP AllToAll with OCSTrx fast switching between rounds.
//
// The trade-off the paper discusses: TP and EP sizes couple through the
// limited bundle count - TPsize x EPsize <= R * 2^B (64 for a 4-GPU node
// with 4 bundles; 2048 for an 8-GPU node with 8 bundles).
#pragma once

#include <utility>
#include <vector>

#include "src/topo/hbd.h"

namespace ihbd::topo {

class BinaryHopTopology {
 public:
  /// `bundles` = B OCSTrx bundles per node, wired at hop distances
  /// +/- 2^0 .. 2^(B-1) on the node ring.
  BinaryHopTopology(int node_count, int gpus_per_node, int bundles);

  int node_count() const { return node_count_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int bundles() const { return bundles_; }

  /// Direct OCSTrx link between a and b? (ring distance a power of two
  /// <= 2^(B-1)).
  bool connected(int a, int b) const;

  /// Hop distance on the node ring.
  int ring_distance(int a, int b) const;

  /// Largest EP group (in nodes) the wiring supports for Binary Exchange:
  /// 2^B (partner distance reaches p/2).
  int max_ep_group_nodes() const { return 1 << bundles_; }

  /// The paper's coupling constraint: TPsize x EPsize <= R * 2^B.
  /// TP size in GPUs, EP size in ranks (one rank per TP group).
  bool coupling_ok(int tp_size_gpus, int ep_size) const;

  /// True iff the aligned node group [base, base + p) can run Binary
  /// Exchange: p a power of two <= 2^B, base aligned to p, all partner
  /// links present.
  bool supports_binary_exchange(int base, int p) const;

  /// The Binary Exchange communication schedule for group [base, base+p):
  /// one vector per round k = 1..log2(p), each containing the (i, i XOR
  /// 2^(log2 p - k)) node-id pairs (each unordered pair listed once).
  std::vector<std::vector<std::pair<int, int>>> binary_exchange_schedule(
      int base, int p) const;

 private:
  int node_count_;
  int gpus_per_node_;
  int bundles_;
};

}  // namespace ihbd::topo
