// Baseline HBD architectures the paper compares against (§6.1):
// Big-Switch (ideal), NVIDIA NVL-36/72/576, Google TPUv4, SiP-Ring.
//
// The paper's in-house simulator is closed; the allocation models below are
// reverse-engineered from the architecture descriptions (§2.2) and validated
// against every number the paper states (NVL 11% fragmentation floor,
// TPUv4 7.56% TP-32 trace waste, SiP-Ring's collapse at large TP, 0.53%
// for InfiniteHBD). Model assumptions are documented per class.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/contracts.h"
#include "src/topo/hbd.h"

namespace ihbd::topo {

/// Equal-size contiguous partition of the node range [0, node_count) into
/// islands (an NVL HBD, a TPUv4 cube, the single Big-Switch domain).
/// Islands fault and fragment independently, which is what the per-island
/// incremental allocators in incremental.h exploit: a node flip only
/// disturbs its own island's aggregate. `node_count` need not be an exact
/// multiple of `nodes_per_island` in general (SiP-Ring's TP-sized rings
/// leave a trailing remainder); `full_island_count()` counts only complete
/// islands.
struct IslandPartition {
  /// Validates at construction so the dividing accessors below can never
  /// hit a zero island size.
  IslandPartition(int node_count, int nodes_per_island)
      : node_count(node_count), nodes_per_island(nodes_per_island) {
    IHBD_EXPECTS(node_count >= 1 && nodes_per_island >= 1);
  }

  int node_count;
  int nodes_per_island;

  int full_island_count() const { return node_count / nodes_per_island; }
  /// Island index of a node; trailing-remainder nodes map to
  /// full_island_count().
  int island_of(int node) const { return node / nodes_per_island; }
  int island_begin(int island) const { return island * nodes_per_island; }
  /// One past the last node of the island, clamped to the node range.
  int island_end(int island) const {
    const int e = (island + 1) * nodes_per_island;
    return e < node_count ? e : node_count;
  }
};

/// The ideal HBD: one giant non-blocking switch over the whole cluster, no
/// forwarding latency, no fault coupling. Waste is pure global
/// fragmentation: healthy GPUs mod TP size.
class BigSwitch : public HbdArchitecture {
 public:
  BigSwitch(int node_count, int gpus_per_node);
  std::string name() const override { return "Big-Switch"; }
  int node_count() const override { return node_count_; }
  int gpus_per_node() const override { return gpus_per_node_; }
  /// One global island spanning the whole cluster.
  IslandPartition island_partition() const { return {node_count_, node_count_}; }
  Allocation allocate(const fault::PackedMask& faulty,
                      int tp_size_gpus) const override;
  using HbdArchitecture::allocate;

 private:
  int node_count_;
  int gpus_per_node_;
};

/// Switch-centric NVL-style HBD: the cluster is partitioned into
/// independent HBD islands of `hbd_gpus` GPUs (36/72/576); each island
/// fragments independently (waste = island-healthy mod TP). A TP group
/// cannot span islands; TP larger than the island wastes the whole island.
class NvlSwitch : public HbdArchitecture {
 public:
  NvlSwitch(int node_count, int gpus_per_node, int hbd_gpus);
  std::string name() const override;
  int node_count() const override { return node_count_; }
  int gpus_per_node() const override { return gpus_per_node_; }
  int hbd_gpus() const { return hbd_gpus_; }
  int nodes_per_island() const { return hbd_gpus_ / gpus_per_node_; }
  /// The independent NVL islands (exact partition, no remainder).
  IslandPartition island_partition() const {
    return {node_count_, nodes_per_island()};
  }
  Allocation allocate(const fault::PackedMask& faulty,
                      int tp_size_gpus) const override;
  using HbdArchitecture::allocate;

 private:
  int node_count_;
  int gpus_per_node_;
  int hbd_gpus_;
};

/// Switch-GPU hybrid TPUv4: 4^3 = 64-GPU cubes joined by a centralized OCS
/// with cube-granularity scheduling.
/// Model: for TP <= 64 a TP group must fit inside a single cube (the OCS
/// stitches cube faces, it cannot route around interior faults), so each
/// cube fragments independently: waste = cube-healthy mod TP. For TP > 64,
/// groups are assembled from *fault-free* cubes only (cube-level explosion
/// radius); every healthy GPU in a faulted cube is wasted.
class TpuV4 : public HbdArchitecture {
 public:
  TpuV4(int node_count, int gpus_per_node, int cube_gpus = 64);
  std::string name() const override { return "TPUv4"; }
  int node_count() const override { return node_count_; }
  int gpus_per_node() const override { return gpus_per_node_; }
  int cube_gpus() const { return cube_gpus_; }
  int nodes_per_cube() const { return cube_gpus_ / gpus_per_node_; }
  /// The independent cubes (exact partition, no remainder).
  IslandPartition island_partition() const {
    return {node_count_, nodes_per_cube()};
  }
  Allocation allocate(const fault::PackedMask& faulty,
                      int tp_size_gpus) const override;
  using HbdArchitecture::allocate;

 private:
  int node_count_;
  int gpus_per_node_;
  int cube_gpus_;
};

/// GPU-centric SiP-Ring: static rings of exactly TP-size GPUs. A single
/// fault breaks a ring into a line, which cannot serve the fixed-size ring
/// workload: every healthy GPU in a broken ring is wasted (Fig. 1b).
class SipRing : public HbdArchitecture {
 public:
  SipRing(int node_count, int gpus_per_node);
  std::string name() const override { return "SiP-Ring"; }
  int node_count() const override { return node_count_; }
  int gpus_per_node() const override { return gpus_per_node_; }
  /// The static TP-sized rings for a group size of `tp_nodes` nodes; nodes
  /// past the last full ring are the structural-fragmentation remainder.
  IslandPartition ring_partition(int tp_nodes) const {
    return {node_count_, tp_nodes};
  }
  Allocation allocate(const fault::PackedMask& faulty,
                      int tp_size_gpus) const override;
  using HbdArchitecture::allocate;

 private:
  int node_count_;
  int gpus_per_node_;
};

/// Factory for the architecture set evaluated in §6 on a cluster of
/// `node_count` x `gpus_per_node` GPUs. Names match the paper's legends.
std::vector<std::unique_ptr<HbdArchitecture>> make_paper_architectures(
    int node_count, int gpus_per_node);

}  // namespace ihbd::topo
