// Baseline HBD architectures the paper compares against (§6.1):
// Big-Switch (ideal), NVIDIA NVL-36/72/576, Google TPUv4, SiP-Ring.
//
// The paper's in-house simulator is closed; the allocation models below are
// reverse-engineered from the architecture descriptions (§2.2) and validated
// against every number the paper states (NVL 11% fragmentation floor,
// TPUv4 7.56% TP-32 trace waste, SiP-Ring's collapse at large TP, 0.53%
// for InfiniteHBD). Model assumptions are documented per class.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/topo/hbd.h"

namespace ihbd::topo {

/// The ideal HBD: one giant non-blocking switch over the whole cluster, no
/// forwarding latency, no fault coupling. Waste is pure global
/// fragmentation: healthy GPUs mod TP size.
class BigSwitch : public HbdArchitecture {
 public:
  BigSwitch(int node_count, int gpus_per_node);
  std::string name() const override { return "Big-Switch"; }
  int node_count() const override { return node_count_; }
  int gpus_per_node() const override { return gpus_per_node_; }
  Allocation allocate(const std::vector<bool>& faulty,
                      int tp_size_gpus) const override;

 private:
  int node_count_;
  int gpus_per_node_;
};

/// Switch-centric NVL-style HBD: the cluster is partitioned into
/// independent HBD islands of `hbd_gpus` GPUs (36/72/576); each island
/// fragments independently (waste = island-healthy mod TP). A TP group
/// cannot span islands; TP larger than the island wastes the whole island.
class NvlSwitch : public HbdArchitecture {
 public:
  NvlSwitch(int node_count, int gpus_per_node, int hbd_gpus);
  std::string name() const override;
  int node_count() const override { return node_count_; }
  int gpus_per_node() const override { return gpus_per_node_; }
  int hbd_gpus() const { return hbd_gpus_; }
  Allocation allocate(const std::vector<bool>& faulty,
                      int tp_size_gpus) const override;

 private:
  int node_count_;
  int gpus_per_node_;
  int hbd_gpus_;
};

/// Switch-GPU hybrid TPUv4: 4^3 = 64-GPU cubes joined by a centralized OCS
/// with cube-granularity scheduling.
/// Model: for TP <= 64 a TP group must fit inside a single cube (the OCS
/// stitches cube faces, it cannot route around interior faults), so each
/// cube fragments independently: waste = cube-healthy mod TP. For TP > 64,
/// groups are assembled from *fault-free* cubes only (cube-level explosion
/// radius); every healthy GPU in a faulted cube is wasted.
class TpuV4 : public HbdArchitecture {
 public:
  TpuV4(int node_count, int gpus_per_node, int cube_gpus = 64);
  std::string name() const override { return "TPUv4"; }
  int node_count() const override { return node_count_; }
  int gpus_per_node() const override { return gpus_per_node_; }
  int cube_gpus() const { return cube_gpus_; }
  Allocation allocate(const std::vector<bool>& faulty,
                      int tp_size_gpus) const override;

 private:
  int node_count_;
  int gpus_per_node_;
  int cube_gpus_;
};

/// GPU-centric SiP-Ring: static rings of exactly TP-size GPUs. A single
/// fault breaks a ring into a line, which cannot serve the fixed-size ring
/// workload: every healthy GPU in a broken ring is wasted (Fig. 1b).
class SipRing : public HbdArchitecture {
 public:
  SipRing(int node_count, int gpus_per_node);
  std::string name() const override { return "SiP-Ring"; }
  int node_count() const override { return node_count_; }
  int gpus_per_node() const override { return gpus_per_node_; }
  Allocation allocate(const std::vector<bool>& faulty,
                      int tp_size_gpus) const override;

 private:
  int node_count_;
  int gpus_per_node_;
};

/// Factory for the architecture set evaluated in §6 on a cluster of
/// `node_count` x `gpus_per_node` GPUs. Names match the paper's legends.
std::vector<std::unique_ptr<HbdArchitecture>> make_paper_architectures(
    int node_count, int gpus_per_node);

}  // namespace ihbd::topo
