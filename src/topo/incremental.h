// Incremental allocation (the event-driven replay tier, see waste.h).
//
// Replaying a fault trace calls HbdArchitecture::allocate() once per sample
// day, but between consecutive samples only the nodes with a fault
// transition change — usually none, sometimes a handful. An
// IncrementalAllocator keeps the allocation state alive across samples and
// updates it from the per-sample deltas a fault::FaultMaskCursor produces.
// Deltas come in two currencies: the classic per-node flip list (apply())
// and the word-parallel {word_index, xor_bits} spans of
// FaultMaskCursor::advance_to_words (apply_words()) — the packed path
// filters spurious flips with one word XOR, seeds per-island healthy
// counts with masked popcounts, and batches KHop's Fenwick updates at word
// granularity:
//
//   * MemoizingAllocator — generic fallback for any architecture: memoizes
//     the last Allocation and re-runs allocate() only when at least one bit
//     actually flipped. Zero-transition samples (the common case at
//     sub-day steps) cost O(1).
//   * KHopRingIncrementalAllocator — true incremental implementation for
//     the K-Hop Ring: maintains the healthy-arc decomposition (a Fenwick
//     tree over healthy-popcounts per 64-node word plus the set of
//     non-bypassable cut links) under single-node flips in O(log(N/64))
//     per flip, never rebuilding the full N-node arc walk.
//   * Per-island allocators for the baseline architectures (§6.1): every
//     baseline decomposes into independent islands (the one Big-Switch
//     domain, NVL HBDs, TPUv4 cubes, SiP-Ring's static TP-sized rings), so
//     a node flip only disturbs its own island's aggregate — O(1) per flip
//     instead of the memoizing fallback's full O(N) allocate() on every
//     sample with a transition. This mirrors how OCS-partitioned domains
//     bound reconfiguration work to the affected partition (Mission
//     Apollo). See IslandModuloAllocator, TpuCubePoolAllocator,
//     SipRingIncrementalAllocator.
//
// All implementations produce aggregate fields (total/faulty/usable/wasted
// GPUs, and thus waste_ratio()) bit-identical to arch.allocate(mask, tp) on
// the same mask, through either entry point. The true incremental
// implementations do not materialize Allocation::groups (the replay metrics
// never read them); MemoizingAllocator returns whatever the wrapped
// allocate() produced, groups included.
#pragma once

#include <memory>
#include <vector>

#include "src/fault/packed_mask.h"
#include "src/topo/baselines.h"
#include "src/topo/hbd.h"
#include "src/topo/khop_ring.h"

namespace ihbd::topo {

/// Allocation state that survives across replay samples and is patched by
/// fault deltas instead of recomputed from scratch.
class IncrementalAllocator {
 public:
  virtual ~IncrementalAllocator() = default;

  /// The allocation for `mask`, given that exactly the nodes in `flipped`
  /// changed their faulty bit since the previous call (as reported by
  /// FaultMaskCursor::advance_to). The first call initializes from `mask`
  /// wholesale and may ignore `flipped`. Nodes listed in `flipped` whose
  /// bit did not actually change are tolerated (skipped or re-evaluated,
  /// never corrupting state). The reference stays valid until the next
  /// call.
  virtual const Allocation& apply(const std::vector<bool>& mask,
                                  const std::vector<int>& flipped) = 0;

  /// Word-parallel variant: `deltas` are the XOR spans since the previous
  /// call (as reported by FaultMaskCursor::advance_to_words; spurious
  /// entries whose word already matches `mask` are tolerated). The default
  /// implementation adapts onto apply() by unpacking the deltas, so any
  /// out-of-tree allocator stays correct; the in-tree allocators override
  /// it to consume dirty words natively. Drive one allocator through one
  /// entry point only — mixing apply() and apply_words() calls on the same
  /// instance is unspecified.
  virtual const Allocation& apply_words(
      const fault::PackedMask& mask,
      const std::vector<fault::WordDelta>& deltas);

 private:
  // Bool mirror for the default apply_words adapter.
  std::vector<bool> adapter_mask_;
  std::vector<int> adapter_flips_;
  bool adapter_initialized_ = false;
};

/// Generic fallback: re-runs arch.allocate() only when the mask changed.
class MemoizingAllocator : public IncrementalAllocator {
 public:
  /// `arch` must outlive the allocator.
  MemoizingAllocator(const HbdArchitecture& arch, int tp_size_gpus);

  const Allocation& apply(const std::vector<bool>& mask,
                          const std::vector<int>& flipped) override;
  const Allocation& apply_words(
      const fault::PackedMask& mask,
      const std::vector<fault::WordDelta>& deltas) override;

 private:
  const HbdArchitecture& arch_;
  int tp_size_gpus_;
  bool initialized_ = false;
  fault::PackedMask cached_mask_;  // packed-path spurious-delta filter
  Allocation alloc_;
};

/// True incremental allocator for KHopRing (ring and line variants).
class KHopRingIncrementalAllocator : public IncrementalAllocator {
 public:
  /// `ring` must outlive the allocator; `tp_size_gpus` must be a positive
  /// multiple of ring.gpus_per_node() (same contract as allocate()).
  KHopRingIncrementalAllocator(const KHopRing& ring, int tp_size_gpus);

  const Allocation& apply(const std::vector<bool>& mask,
                          const std::vector<int>& flipped) override;
  const Allocation& apply_words(
      const fault::PackedMask& mask,
      const std::vector<fault::WordDelta>& deltas) override;

 private:
  // --- arc bookkeeping (see incremental.cc for the invariants) ---
  int healthy_prefix(int i) const;      // #healthy in [0..i]
  int arc_len(int a, int b) const;      // #healthy in ring-interval (a, b]
  int gap(int p, int s) const;          // #faulty strictly between p and s
  bool is_cut_link(int p, int s) const; // link p -> s not bypassable
  int next_cut(int c) const;            // smallest cut > c, wrapping
  int prev_cut_excluding(int from, int e1, int e2) const;
  int next_cut_excluding(int from, int e1, int e2) const;
  void cut_erase(int key);
  void cut_insert(int key);
  int next_healthy_of_faulty(int x) const;  // smallest healthy > x, wrapping
  void add_arc(int len, int sign);
  void accumulate_window(int from_cut, int to_cut, int sign);
  void accumulate_all(int sign);
  void fenwick_word_add(int w, int delta);
  void rebuild_from_healthy();
  void flip(int x);
  void fill_alloc();

  const KHopRing& ring_;
  int n_;                    // node count
  int m_;                    // nodes per TP group
  bool circular_;            // ring (true) vs line variant
  bool initialized_ = false;
  // Set bit = healthy node (the complement of the fault mask): arc lengths
  // are masked popcounts and faulty-run walks are word scans.
  fault::PackedMask healthy_;
  // Circular doubly-linked list over healthy nodes (entries of faulty
  // nodes are stale): O(1) neighbor lookup on down-flips.
  std::vector<int> prev_, next_;
  // Fenwick tree over per-word healthy popcounts (1-based, one leaf per
  // 64-node word): a word's worth of flips hits one leaf, and the tree is
  // 64x smaller than the node-granular one it replaces.
  std::vector<int> fenwick_;
  int healthy_count_ = 0;
  // Healthy positions p whose following link is a cut, sorted ascending.
  // A flat vector: cut sets are tiny on realistic fault ratios (a cut
  // needs a faulty run >= K), so binary search + memmove beat a node-based
  // set on every operation.
  std::vector<int> cuts_;
  // Sum over arcs of len % m. Usable nodes need no separate counter:
  // usable + wasted = healthy, always.
  int wasted_nodes_ = 0;
  Allocation alloc_;
};

/// Shared frame for the per-island baseline allocators: owns the packed
/// faulty bitmap and healthy count, filters spurious deltas with a word
/// compare, routes genuine single-node flips to the derived class's island
/// aggregate, and fills the Allocation aggregates from the derived
/// wasted-node total (usable + wasted = healthy holds for every baseline).
class PerIslandAllocatorBase : public IncrementalAllocator {
 public:
  const Allocation& apply(const std::vector<bool>& mask,
                          const std::vector<int>& flipped) final;
  const Allocation& apply_words(
      const fault::PackedMask& mask,
      const std::vector<fault::WordDelta>& deltas) final;

 protected:
  /// `arch` must outlive the allocator; `tp_size_gpus` must be a positive
  /// multiple of arch.gpus_per_node() (same contract as allocate()).
  PerIslandAllocatorBase(const HbdArchitecture& arch, int tp_size_gpus);

  int healthy_count() const { return healthy_count_; }
  int node_count() const { return n_; }

  int m_;  ///< nodes per TP group

 private:
  /// Seed the per-island aggregates from a full fault mask (the healthy
  /// count is already set in the base); implementations use masked
  /// popcounts per island.
  virtual void init_islands(const fault::PackedMask& faulty) = 0;
  /// Update the flipped node's island aggregate (the node's bit and the
  /// healthy count have already been updated in the base).
  virtual void island_flip(int node, bool to_faulty) = 0;
  /// Total healthy-but-unplaceable nodes over all islands.
  virtual int wasted_nodes() const = 0;

  void initialize_from(const fault::PackedMask& mask);
  const Allocation& finish();

  int n_;
  int gpus_per_node_;
  bool initialized_ = false;
  fault::PackedMask faulty_;
  int healthy_count_ = 0;
  Allocation alloc_;
};

/// True incremental allocator for the modulo-fragmenting islands:
/// Big-Switch (one global island), NVL-36/72/576 (independent HBD islands)
/// and TPUv4 at TP <= cube (independent cubes). Each island wastes
/// healthy_i % m nodes — which also covers TP groups larger than the island
/// (healthy_i < m, so the residue is the whole island's healthy count, the
/// "TP cannot span islands" rule) — so a flip updates one island's residue
/// in O(1).  Requires an exact partition (no trailing remainder).
class IslandModuloAllocator : public PerIslandAllocatorBase {
 public:
  IslandModuloAllocator(const HbdArchitecture& arch, IslandPartition islands,
                        int tp_size_gpus);

 private:
  void init_islands(const fault::PackedMask& faulty) override;
  void island_flip(int node, bool to_faulty) override;
  int wasted_nodes() const override { return wasted_nodes_; }

  IslandPartition islands_;
  std::vector<int> island_healthy_;
  // Flip-path divisions traded for L1 lookups: node -> island, and
  // healthy -> healthy % m over the whole [0, nodes_per_island] range.
  std::vector<int> island_of_;
  std::vector<int> residue_;
  int wasted_nodes_ = 0;
};

/// True incremental allocator for TPUv4's pooled regime (TP > cube): groups
/// are tiled over the pool of fault-free cubes and every healthy node in a
/// faulted cube is wasted, so only the per-cube fault counts and the clean
/// cube count matter — O(1) per flip, O(1) waste readout.
class TpuCubePoolAllocator : public PerIslandAllocatorBase {
 public:
  /// Requires tp_size_gpus > tpu.cube_gpus(); the per-cube fragmentation
  /// regime is IslandModuloAllocator's job (make_incremental_allocator
  /// picks the right one).
  TpuCubePoolAllocator(const TpuV4& tpu, int tp_size_gpus);

 private:
  void init_islands(const fault::PackedMask& faulty) override;
  void island_flip(int node, bool to_faulty) override;
  int wasted_nodes() const override;

  IslandPartition cubes_;
  std::vector<int> cube_of_;      ///< node -> cube (flip-path div removal)
  std::vector<int> cube_faulty_;  ///< faulty-node count per cube
  int clean_cubes_ = 0;
};

/// True incremental allocator for SiP-Ring: static rings of exactly m
/// consecutive nodes, where one fault breaks the whole ring (every healthy
/// member is wasted) and nodes past the last full ring are structural
/// fragmentation. Tracks per-ring fault counts plus the trailing healthy
/// count — O(1) per flip.
class SipRingIncrementalAllocator : public PerIslandAllocatorBase {
 public:
  SipRingIncrementalAllocator(const SipRing& sip, int tp_size_gpus);

 private:
  void init_islands(const fault::PackedMask& faulty) override;
  void island_flip(int node, bool to_faulty) override;
  int wasted_nodes() const override {
    return broken_waste_nodes_ + trailing_healthy_;
  }

  IslandPartition rings_;
  std::vector<int> ring_of_;      ///< node -> ring (flip-path div removal)
  std::vector<int> ring_faulty_;  ///< faulty-node count per full ring
  int broken_waste_nodes_ = 0;    ///< sum over broken rings of (m - faults)
  int trailing_healthy_ = 0;
};

/// The right allocator for `arch`: the true incremental implementations for
/// KHopRing and every §6.1 baseline (Big-Switch, NVL, TPUv4 in either TP
/// regime, SiP-Ring), the memoizing fallback for anything else.
std::unique_ptr<IncrementalAllocator> make_incremental_allocator(
    const HbdArchitecture& arch, int tp_size_gpus);

}  // namespace ihbd::topo
