#include "src/topo/hbd.h"

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::topo {

int HbdArchitecture::check_args(const fault::PackedMask& faulty,
                                int tp_size_gpus) const {
  if (faulty.size() != node_count())
    throw ConfigError("fault mask size != node count");
  if (tp_size_gpus <= 0 || tp_size_gpus % gpus_per_node() != 0)
    throw ConfigError("TP size must be a positive multiple of GPUs/node");
  return tp_size_gpus / gpus_per_node();
}

}  // namespace ihbd::topo
