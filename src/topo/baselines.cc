#include "src/topo/baselines.h"

#include <algorithm>

#include "src/common/contracts.h"
#include "src/common/error.h"
#include "src/topo/khop_ring.h"

namespace ihbd::topo {

namespace {

/// Tile `healthy_nodes` (already restricted to one pool that can form rings
/// freely) into groups of m nodes; update allocation counters.
void tile_pool(const std::vector<int>& healthy_nodes, int m,
               int gpus_per_node, Allocation& result) {
  const int len = static_cast<int>(healthy_nodes.size());
  const int groups_here = len / m;
  for (int g = 0; g < groups_here; ++g) {
    TpGroup group;
    group.nodes.assign(
        healthy_nodes.begin() + static_cast<std::ptrdiff_t>(g) * m,
        healthy_nodes.begin() + static_cast<std::ptrdiff_t>(g + 1) * m);
    result.groups.push_back(std::move(group));
  }
  result.usable_gpus += groups_here * m * gpus_per_node;
  result.wasted_healthy_gpus += (len % m) * gpus_per_node;
}

/// Healthy nodes of [begin, end) in ascending order.
std::vector<int> healthy_in_range(const fault::PackedMask& faulty, int begin,
                                  int end) {
  std::vector<int> healthy;
  healthy.reserve(static_cast<std::size_t>(end - begin));
  for (int i = begin; i < end; ++i)
    if (!faulty.test(i)) healthy.push_back(i);
  return healthy;
}

}  // namespace

// ---------------------------------------------------------------- BigSwitch

BigSwitch::BigSwitch(int node_count, int gpus_per_node)
    : node_count_(node_count), gpus_per_node_(gpus_per_node) {
  if (node_count < 1 || gpus_per_node < 1)
    throw ConfigError("BigSwitch: positive node and GPU counts required");
}

Allocation BigSwitch::allocate(const fault::PackedMask& faulty,
                               int tp_size_gpus) const {
  const int m = check_args(faulty, tp_size_gpus);
  Allocation result;
  result.total_gpus = total_gpus();
  result.faulty_gpus = faulty.popcount() * gpus_per_node_;
  tile_pool(healthy_in_range(faulty, 0, node_count_), m, gpus_per_node_,
            result);
  return result;
}

// ---------------------------------------------------------------- NvlSwitch

NvlSwitch::NvlSwitch(int node_count, int gpus_per_node, int hbd_gpus)
    : node_count_(node_count), gpus_per_node_(gpus_per_node),
      hbd_gpus_(hbd_gpus) {
  // Positivity must be checked before the divisibility tests: 0 % hbd_gpus
  // passes them, and a non-positive gpus_per_node would divide by zero.
  if (node_count < 1 || gpus_per_node < 1)
    throw ConfigError("NvlSwitch: positive node and GPU counts required");
  if (hbd_gpus < gpus_per_node || hbd_gpus % gpus_per_node != 0)
    throw ConfigError("NVL HBD size must be a multiple of GPUs/node");
  if ((node_count * gpus_per_node) % hbd_gpus != 0)
    throw ConfigError("cluster size must be a multiple of the NVL HBD size");
}

std::string NvlSwitch::name() const {
  return "NVL-" + std::to_string(hbd_gpus_);
}

Allocation NvlSwitch::allocate(const fault::PackedMask& faulty,
                               int tp_size_gpus) const {
  const int m = check_args(faulty, tp_size_gpus);
  Allocation result;
  result.total_gpus = total_gpus();
  result.faulty_gpus = faulty.popcount() * gpus_per_node_;

  const IslandPartition islands = island_partition();
  for (int isl = 0; isl < islands.full_island_count(); ++isl) {
    const int begin = islands.island_begin(isl);
    const int end = islands.island_end(isl);
    if (tp_size_gpus > hbd_gpus_) {
      // TP cannot span NVL islands: the whole island is unusable. No group
      // enumeration needed, so the healthy count is a masked popcount.
      result.wasted_healthy_gpus +=
          (end - begin - faulty.popcount_range(begin, end)) * gpus_per_node_;
      continue;
    }
    tile_pool(healthy_in_range(faulty, begin, end), m, gpus_per_node_,
              result);
  }
  return result;
}

// -------------------------------------------------------------------- TpuV4

TpuV4::TpuV4(int node_count, int gpus_per_node, int cube_gpus)
    : node_count_(node_count), gpus_per_node_(gpus_per_node),
      cube_gpus_(cube_gpus) {
  // Same ordering rationale as NvlSwitch: 0 % cube_gpus passes the
  // divisibility checks and gpus_per_node == 0 would divide by zero.
  if (node_count < 1 || gpus_per_node < 1)
    throw ConfigError("TpuV4: positive node and GPU counts required");
  if (cube_gpus < gpus_per_node || cube_gpus % gpus_per_node != 0)
    throw ConfigError("TPUv4 cube size must be a multiple of GPUs/node");
  if ((node_count * gpus_per_node) % cube_gpus != 0)
    throw ConfigError("cluster size must be a multiple of the cube size");
}

Allocation TpuV4::allocate(const fault::PackedMask& faulty,
                           int tp_size_gpus) const {
  const int m = check_args(faulty, tp_size_gpus);
  Allocation result;
  result.total_gpus = total_gpus();
  result.faulty_gpus = faulty.popcount() * gpus_per_node_;

  const IslandPartition cubes = island_partition();
  if (tp_size_gpus <= cube_gpus_) {
    // Per-cube fragmentation: a TP group lives inside one cube.
    for (int c = 0; c < cubes.full_island_count(); ++c) {
      tile_pool(healthy_in_range(faulty, cubes.island_begin(c),
                                 cubes.island_end(c)),
                m, gpus_per_node_, result);
    }
    return result;
  }

  // TP > cube: assemble groups from fault-free cubes via the central OCS;
  // any cube containing a fault is wasted entirely (cube explosion radius).
  std::vector<int> clean_pool;
  for (int c = 0; c < cubes.full_island_count(); ++c) {
    const int begin = cubes.island_begin(c);
    const int end = cubes.island_end(c);
    const int cube_faults = faulty.popcount_range(begin, end);
    if (cube_faults == 0) {
      for (int i = begin; i < end; ++i) clean_pool.push_back(i);
    } else {
      result.wasted_healthy_gpus +=
          (end - begin - cube_faults) * gpus_per_node_;
    }
  }
  tile_pool(clean_pool, m, gpus_per_node_, result);
  return result;
}

// ------------------------------------------------------------------ SipRing

SipRing::SipRing(int node_count, int gpus_per_node)
    : node_count_(node_count), gpus_per_node_(gpus_per_node) {
  if (node_count < 1 || gpus_per_node < 1)
    throw ConfigError("SipRing: positive node and GPU counts required");
}

Allocation SipRing::allocate(const fault::PackedMask& faulty,
                             int tp_size_gpus) const {
  const int m = check_args(faulty, tp_size_gpus);
  Allocation result;
  result.total_gpus = total_gpus();
  result.faulty_gpus = faulty.popcount() * gpus_per_node_;

  // Static rings of exactly m consecutive nodes; trailing nodes that do not
  // fill a ring are structural fragmentation.
  const IslandPartition rings = ring_partition(m);
  for (int r = 0; r < rings.full_island_count(); ++r) {
    const int begin = rings.island_begin(r);
    const int ring_faults = faulty.popcount_range(begin, begin + m);
    if (ring_faults > 0) {
      result.wasted_healthy_gpus += (m - ring_faults) * gpus_per_node_;
    } else {
      TpGroup group;
      group.nodes.resize(static_cast<std::size_t>(m));
      for (int i = 0; i < m; ++i)
        group.nodes[static_cast<std::size_t>(i)] = begin + i;
      result.groups.push_back(std::move(group));
      result.usable_gpus += m * gpus_per_node_;
    }
  }
  const int trail_begin = rings.island_begin(rings.full_island_count());
  result.wasted_healthy_gpus +=
      (node_count_ - trail_begin -
       faulty.popcount_range(trail_begin, node_count_)) *
      gpus_per_node_;
  return result;
}

// ------------------------------------------------------------------ factory

std::vector<std::unique_ptr<HbdArchitecture>> make_paper_architectures(
    int node_count, int gpus_per_node) {
  std::vector<std::unique_ptr<HbdArchitecture>> archs;
  archs.push_back(std::make_unique<KHopRing>(node_count, gpus_per_node, 2));
  archs.push_back(std::make_unique<KHopRing>(node_count, gpus_per_node, 3));
  archs.push_back(std::make_unique<BigSwitch>(node_count, gpus_per_node));
  archs.push_back(
      std::make_unique<TpuV4>(node_count, gpus_per_node, /*cube_gpus=*/64));
  archs.push_back(std::make_unique<NvlSwitch>(node_count, gpus_per_node, 36));
  archs.push_back(std::make_unique<NvlSwitch>(node_count, gpus_per_node, 72));
  archs.push_back(std::make_unique<NvlSwitch>(node_count, gpus_per_node, 576));
  archs.push_back(std::make_unique<SipRing>(node_count, gpus_per_node));
  return archs;
}

}  // namespace ihbd::topo
