// Fault explosion radius analysis (paper §2.1 / Table 1).
//
// The fault explosion radius is "the number of GPUs degraded by a single
// fault event". Two complementary measurements:
//
//  1. immediate_degraded_gpus(): healthy GPUs whose HBD bandwidth degrades
//     the moment one node fails, BEFORE any re-orchestration - the paper's
//     architectural radius (node-level for InfiniteHBD/NVL node faults,
//     cube-level for TPUv4, whole-ring for SiP-Ring).
//
//  2. reallocation_loss_gpus(): healthy GPUs that drop out of TP groups
//     once the scheduler re-orchestrates around the fault - the waste the
//     §6.2 figures accumulate.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/topo/hbd.h"

namespace ihbd::topo {

struct RadiusReport {
  std::string architecture;
  /// Healthy GPUs with degraded bandwidth immediately after one node
  /// fault (worst case over fault locations).
  int immediate_degraded_gpus = 0;
  /// Healthy GPUs lost from TP groups after re-allocation (mean and worst
  /// over fault locations, relative to the fault-free allocation).
  double mean_reallocation_loss_gpus = 0.0;
  int worst_reallocation_loss_gpus = 0;
};

/// Compute the immediate architectural radius of a single node fault.
/// Model per architecture (worst case over positions):
///  - InfiniteHBD(K>=2): 0 - ring neighbors bypass at full bandwidth;
///    (K=1 degrades the two neighbors: no backup hop exists).
///  - Big-Switch / NVL: 0 for a node fault (ports are independent; switch
///    faults are a different, switch-level event).
///  - TPUv4: the rest of the faulty node's cube (torus broken).
///  - SiP-Ring: the rest of the faulty node's static ring (ring -> line).
int immediate_degraded_gpus(const HbdArchitecture& arch, int tp_size_gpus);

/// Monte-Carlo the re-allocation loss of single-node faults.
RadiusReport measure_radius(const HbdArchitecture& arch, int tp_size_gpus,
                            int trials, Rng& rng);

}  // namespace ihbd::topo
