// Interconnect cost & power model (paper §6.5, Tables 6 and 8, Fig. 17d).
//
// Table 8's bill of materials is encoded as data; Table 6's per-GPU /
// per-GBps normalizations and the aggregate-cost model derive from it.
#pragma once

#include <string>
#include <vector>

namespace ihbd::cost {

/// One interconnect component line of Table 8.
struct Component {
  std::string name;
  double quantity = 0.0;
  double unit_cost_usd = 0.0;
  double unit_bandwidth_GBps = 0.0;
  double unit_power_w = 0.0;

  double total_cost() const { return quantity * unit_cost_usd; }
  double total_power() const { return quantity * unit_power_w; }
};

/// A full architecture BOM (one section of Table 8).
struct ArchitectureBom {
  std::string name;
  int gpu_count = 0;
  double per_gpu_bandwidth_GBps = 0.0;
  std::vector<Component> components;

  double total_cost_usd() const;
  double total_power_w() const;
  double cost_per_gpu() const;       ///< Table 6 "Per-GPU Cost"
  double watts_per_gpu() const;      ///< Table 6 "Per-GPU Watts"
  double cost_per_GBps() const;      ///< Table 6 "Per-GBps Cost"
  double watts_per_GBps() const;     ///< Table 6 "Per-GBps Watts"
};

/// The architectures of Table 8 (TPUv4, NVL-36/72/36x2/576, Alibaba HPN,
/// InfiniteHBD K=2/K=3) with the paper's quantities and unit prices.
std::vector<ArchitectureBom> paper_boms();

/// Look up a BOM by name; throws ConfigError if absent.
const ArchitectureBom& bom_by_name(const std::vector<ArchitectureBom>& boms,
                                   const std::string& name);

/// §6.5 aggregate cost: Cost_GPU x (N_wasted + N_faulty) + Cost_interconnect
/// for a cluster of `cluster_gpus` built on `bom`'s per-GPU interconnect.
/// Returned in USD.
double aggregate_cost_usd(const ArchitectureBom& bom, int cluster_gpus,
                          int wasted_gpus, int faulty_gpus,
                          double gpu_cost_usd = 25000.0);

}  // namespace ihbd::cost
