#include "src/cost/bom.h"

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::cost {

double ArchitectureBom::total_cost_usd() const {
  double total = 0.0;
  for (const auto& c : components) total += c.total_cost();
  return total;
}

double ArchitectureBom::total_power_w() const {
  double total = 0.0;
  for (const auto& c : components) total += c.total_power();
  return total;
}

double ArchitectureBom::cost_per_gpu() const {
  IHBD_EXPECTS(gpu_count > 0);
  return total_cost_usd() / gpu_count;
}

double ArchitectureBom::watts_per_gpu() const {
  IHBD_EXPECTS(gpu_count > 0);
  return total_power_w() / gpu_count;
}

double ArchitectureBom::cost_per_GBps() const {
  IHBD_EXPECTS(per_gpu_bandwidth_GBps > 0.0);
  return cost_per_gpu() / per_gpu_bandwidth_GBps;
}

double ArchitectureBom::watts_per_GBps() const {
  IHBD_EXPECTS(per_gpu_bandwidth_GBps > 0.0);
  return watts_per_gpu() / per_gpu_bandwidth_GBps;
}

std::vector<ArchitectureBom> paper_boms() {
  std::vector<ArchitectureBom> boms;

  boms.push_back(ArchitectureBom{
      "TPUv4", 4096, 300.0,
      {{"OCS (Palomar)", 48, 80000.0, 6400.0, 108.0},
       {"DAC Cable", 5120, 63.60, 50.0, 0.1},
       {"Optical Module", 6144, 360.0, 50.0, 12.0},
       {"Fiber", 6144, 6.80, 50.0, 0.0}}});

  boms.push_back(ArchitectureBom{
      "NVL-36", 36, 900.0,
      {{"NVLink Switch", 9, 28000.0, 3600.0, 275.0},
       {"DAC Cable", 2592, 35.60, 25.0, 0.1}}});

  boms.push_back(ArchitectureBom{
      "NVL-72", 72, 900.0,
      {{"NVLink Switch", 18, 28000.0, 3600.0, 275.0},
       {"DAC Cable", 5184, 35.60, 25.0, 0.1}}});

  boms.push_back(ArchitectureBom{
      "NVL-36x2", 72, 900.0,
      {{"NVLink Switch", 36, 28000.0, 3600.0, 275.0},
       {"DAC Cable", 6480, 35.60, 25.0, 0.1},
       {"ACC Cable", 162, 320.0, 200.0, 2.5}}});

  boms.push_back(ArchitectureBom{
      "NVL-576", 576, 900.0,
      {{"NVLink Switch", 432, 28000.0, 3600.0, 275.0},
       {"DAC Cable", 41472, 35.60, 25.0, 0.1},
       {"Optical Module", 4608, 850.0, 200.0, 25.0},
       {"Fiber", 4608, 6.80, 200.0, 0.0}}});

  boms.push_back(ArchitectureBom{
      "Alibaba HPN", 16320, 50.0,
      {{"EPS (51.2T)", 360, 14960.0, 6400.0, 3145.0},
       {"DAC Cable", 32640, 35.60, 25.0, 0.1},
       {"Optical Module", 28800, 360.0, 50.0, 12.0},
       {"Fiber", 14400, 6.80, 50.0, 0.0}}});

  boms.push_back(ArchitectureBom{
      "InfiniteHBD(K=2)", 4, 800.0,
      {{"DAC Cable (1.6T)", 4, 199.60, 200.0, 0.1},
       {"OCSTrx", 16, 600.0, 100.0, 12.0},
       {"Fiber", 16, 6.80, 100.0, 0.0}}});

  boms.push_back(ArchitectureBom{
      "InfiniteHBD(K=3)", 4, 800.0,
      {{"DAC Cable (1.6T)", 2, 199.60, 200.0, 0.1},
       {"OCSTrx", 24, 600.0, 100.0, 12.0},
       {"Fiber", 24, 6.80, 100.0, 0.0}}});

  return boms;
}

const ArchitectureBom& bom_by_name(const std::vector<ArchitectureBom>& boms,
                                   const std::string& name) {
  for (const auto& b : boms)
    if (b.name == name) return b;
  throw ConfigError("unknown BOM: " + name);
}

double aggregate_cost_usd(const ArchitectureBom& bom, int cluster_gpus,
                          int wasted_gpus, int faulty_gpus,
                          double gpu_cost_usd) {
  IHBD_EXPECTS(cluster_gpus > 0 && wasted_gpus >= 0 && faulty_gpus >= 0);
  const double interconnect = bom.cost_per_gpu() * cluster_gpus;
  return gpu_cost_usd * (wasted_gpus + faulty_gpus) + interconnect;
}

}  // namespace ihbd::cost
