#include "src/llmsim/model.h"

#include <cmath>

#include "src/common/contracts.h"

namespace ihbd::llmsim {

double ModelConfig::param_count() const {
  const double h = hidden;
  const double attn = 4.0 * h * h;
  const double mlp_dense = 2.0 * h * ffn_hidden;
  const double moe_layers = layers * moe_layer_ratio;
  const double dense_layers = layers - moe_layers;
  const double mlp = dense_layers * mlp_dense +
                     moe_layers * num_experts * mlp_dense;
  const double emb = 2.0 * static_cast<double>(vocab) * h;
  return layers * attn + mlp + emb;
}

double ModelConfig::active_param_count() const {
  const double h = hidden;
  const double attn = 4.0 * h * h;
  const double mlp_dense = 2.0 * h * ffn_hidden;
  const double moe_layers = layers * moe_layer_ratio;
  const double dense_layers = layers - moe_layers;
  const double mlp =
      dense_layers * mlp_dense + moe_layers * top_k * mlp_dense;
  const double emb = 2.0 * static_cast<double>(vocab) * h;
  return layers * attn + mlp + emb;
}

double ModelConfig::train_flops_per_token() const {
  const double fwd_matmul = 2.0 * active_param_count();
  const double fwd_attn_scores = 4.0 * static_cast<double>(seq_len) * hidden *
                                 layers;
  return 3.0 * (fwd_matmul + fwd_attn_scores);
}

ModelConfig ModelConfig::llama31_405b_mha() {
  ModelConfig m;
  m.name = "Llama-3.1-405B (MHA)";
  m.layers = 126;
  m.hidden = 16384;
  m.ffn_hidden = 4 * 16384;
  m.heads = 128;
  m.vocab = 128256;
  m.seq_len = 4096;
  return m;
}

ModelConfig ModelConfig::gpt_moe_1t() {
  ModelConfig m;
  m.name = "GPT-MoE 1.1T";
  m.layers = 192;
  m.hidden = 12288;
  m.ffn_hidden = 49152;
  m.heads = 128;
  m.vocab = 64000;
  m.seq_len = 2048;
  m.num_experts = 8;
  m.top_k = 2;
  m.moe_layer_ratio = 0.5;
  return m;
}

double tp_allreduce_load(double b, double s, double h, int n,
                         double elem_bytes) {
  IHBD_EXPECTS(n >= 1);
  return 2.0 * b * s * h * elem_bytes * (n - 1) / n;
}

double ep_alltoall_load(double b, double s, double h, int n, int k,
                        double elem_bytes) {
  IHBD_EXPECTS(n >= 1 && k >= 1);
  return 2.0 * b * s * h * elem_bytes * (n - 1) / n * k / n;
}

}  // namespace ihbd::llmsim
