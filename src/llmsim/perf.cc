#include "src/llmsim/perf.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/contracts.h"

namespace ihbd::llmsim {

std::string Parallelism::to_string() const {
  std::ostringstream os;
  os << "TP" << tp << "/PP" << pp << "/DP" << dp;
  if (ep > 1) os << "/EP" << ep;
  return os.str();
}

namespace {

/// Ring AllReduce wall time for a `bytes` buffer over n ranks: each rank
/// sends 2 (n-1)/n * bytes on its egress link.
double ring_allreduce_s(int n, double bytes, double bw_Bps, double eff) {
  if (n <= 1) return 0.0;
  return 2.0 * (n - 1) / n * bytes / (bw_Bps * eff);
}

/// Thin-GEMM efficiency: sustained fraction of peak as a function of the
/// per-GPU sharded column dimension (NVIDIA matmul-background behaviour:
/// efficiency falls once tiles get narrow).
double gemm_efficiency(double shard_cols, const PerfModelParams& p) {
  return p.gemm_peak_fraction * shard_cols /
         (shard_cols + p.gemm_shard_constant);
}

/// Additional small-M penalty for per-expert GEMMs (tokens per expert).
double moe_m_efficiency(double tokens_per_expert, const PerfModelParams& p) {
  return tokens_per_expert / (tokens_per_expert + p.moe_gemm_m_constant);
}

}  // namespace

PerfResult simulate_training(const TrainJob& job, const Parallelism& par,
                             const GpuSpec& gpu,
                             const PerfModelParams& params) {
  PerfResult r;
  const ModelConfig& m = job.model;
  auto reject = [&](const std::string& why) {
    r.feasible = false;
    r.infeasible_why = why;
    return r;
  };

  // ---- structural feasibility ------------------------------------------
  if (par.tp < 1 || par.pp < 1 || par.dp < 1 || par.ep < 1 ||
      par.vpp < 1 || par.micro_batch < 1)
    return reject("non-positive parallelism degree");
  if (m.hidden % par.tp != 0 || m.ffn_hidden % par.tp != 0 ||
      m.heads % par.tp != 0)
    return reject("TP does not divide model dimensions");
  // Stage imbalance from non-divisible layer counts is idealized away, as
  // in the paper's simulator (Table 2 pairs 126 layers with PP 4/8/16).
  if (par.pp > m.layers) return reject("more pipeline stages than layers");
  if (job.global_batch % (par.dp * par.micro_batch) != 0)
    return reject("global batch not divisible by DP * micro-batch");
  if (par.ep > 1) {
    if (m.num_experts % par.ep != 0) return reject("EP does not divide experts");
    if (par.dp % par.ep != 0) return reject("EP must divide DP");
  }
  const int n_micro = job.global_batch / (par.dp * par.micro_batch);

  // ---- memory model (weights bf16 replicated across DP; grads + Adam
  // states sharded over DP a la ZeRO-1/2: 2 + 16/dp bytes per parameter) --
  const double moe_params =
      m.layers * m.moe_layer_ratio * m.num_experts * 2.0 *
      static_cast<double>(m.hidden) * m.ffn_hidden;
  const double dense_params = m.param_count() - moe_params;
  const double params_per_gpu =
      dense_params / (par.tp * par.pp) +
      moe_params / (par.tp * par.pp * par.ep);
  const double bytes_per_param = 2.0 + 16.0 / par.dp;
  // Activations: 1F1B keeps up to pp microbatches in flight per stage =>
  // whole-model activations resident per GPU. ~16 bytes per element with
  // selective recompute, sharded by TP.
  const double act_bytes = static_cast<double>(m.layers) * m.seq_len *
                           par.micro_batch * m.hidden * 16.0 / par.tp;
  r.memory_bytes = params_per_gpu * bytes_per_param + act_bytes;
  if (r.memory_bytes > 0.94 * gpu.memory_bytes)
    return reject("exceeds GPU memory");

  // ---- compute time -----------------------------------------------------
  const double tokens = static_cast<double>(job.global_batch) * m.seq_len;
  const double total_flops = m.train_flops_per_token() * tokens;
  const double cluster_peak = static_cast<double>(par.gpus()) * gpu.peak_flops;

  // Split FLOPs into dense (attention + dense MLP + embeddings + scores)
  // and MoE-expert parts; the latter takes the small-M penalty and - when
  // EP shards experts - the imbalance straggler factor max = 2/(2 - coef).
  const double moe_active_flops_per_token =
      3.0 * 2.0 *
      (m.layers * m.moe_layer_ratio * m.top_k * 2.0 *
       static_cast<double>(m.hidden) * m.ffn_hidden);
  const double moe_flops = moe_active_flops_per_token * tokens;
  const double dense_flops = total_flops - moe_flops;

  const double shard_cols = static_cast<double>(m.hidden) / par.tp;
  const double eff_dense = gemm_efficiency(shard_cols, params);
  // Tokens per expert GEMM per microbatch: routed share, aggregated across
  // the EP group.
  const double tokens_per_expert =
      static_cast<double>(par.micro_batch) * m.seq_len * m.top_k * par.ep /
      std::max(1, m.num_experts);
  double eff_moe = eff_dense;
  double straggler = 1.0;
  if (m.num_experts > 1) {
    eff_moe = eff_dense * moe_m_efficiency(tokens_per_expert, params);
    if (par.ep > 1) straggler = 2.0 / (2.0 - job.expert_imbalance);
  }
  r.compute_time_s = dense_flops / (cluster_peak * eff_dense) +
                     moe_flops * straggler / (cluster_peak * eff_moe);

  // ---- TP communication (4 ring AllReduces per layer per microbatch of
  // b_micro * s * h activations, partially overlapped) -------------------
  const double act_ar_bytes = static_cast<double>(par.micro_batch) *
                              m.seq_len * m.hidden * 2.0;
  const double tp_per_layer =
      4.0 * ring_allreduce_s(par.tp, act_ar_bytes, gpu.hbd_bw_Bps,
                             gpu.hbd_efficiency);
  const double layers_per_gpu = static_cast<double>(m.layers) / par.pp;
  r.tp_comm_time_s = params.tp_comm_unoverlap * n_micro * layers_per_gpu *
                     tp_per_layer;

  // ---- EP communication (AllToAll per MoE layer; on the K-hop ring
  // without fast switching this pays the O(p^2)/p = p/2 forwarding
  // penalty, per the paper's §7 discussion) -------------------------------
  r.ep_comm_time_s = 0.0;
  if (par.ep > 1 && m.num_experts > 1) {
    const double a2a_fwd = ep_alltoall_load(
        par.micro_batch, m.seq_len, m.hidden, par.ep, m.top_k);
    const double ring_penalty = std::max(1.0, par.ep / 2.0);
    const double per_layer =
        2.0 * a2a_fwd * ring_penalty / (gpu.hbd_bw_Bps * gpu.hbd_efficiency);
    const double moe_layers_per_gpu =
        m.layers * m.moe_layer_ratio / par.pp;
    r.ep_comm_time_s = n_micro * moe_layers_per_gpu * per_layer;
  }

  // ---- pipeline bubble ---------------------------------------------------
  const double eff_stages = static_cast<double>(par.pp - 1) / par.vpp;
  r.bubble_fraction = eff_stages / (n_micro + eff_stages);

  // ---- DP gradient synchronization on the DCN ---------------------------
  const double grad_bytes = params_per_gpu * 4.0;
  r.dp_comm_time_s =
      params.dp_comm_unoverlap *
      ring_allreduce_s(par.dp, grad_bytes, gpu.dcn_bw_Bps,
                       gpu.dcn_efficiency);

  // ---- assembled iteration time and MFU ---------------------------------
  const double busy = r.compute_time_s + r.tp_comm_time_s + r.ep_comm_time_s;
  r.iter_time_s = busy / (1.0 - r.bubble_fraction) + r.dp_comm_time_s;
  r.mfu = total_flops / (r.iter_time_s * cluster_peak);
  r.feasible = true;
  return r;
}

SearchResult search_best_strategy(const TrainJob& job, int gpus,
                                  int tp_limit, const GpuSpec& gpu,
                                  const PerfModelParams& params) {
  IHBD_EXPECTS(gpus >= 1);
  SearchResult best;
  best.perf.mfu = -1.0;
  const int max_tp = tp_limit > 0 ? tp_limit : 128;
  const bool moe = job.model.num_experts > 1;
  for (int tp = 1; tp <= max_tp; tp *= 2) {
    for (int pp : {1, 2, 4, 8, 16}) {
      if (gpus % (tp * pp) != 0) continue;
      const int dp = gpus / (tp * pp);
      if (dp < 1 || dp > 1024 || (dp & (dp - 1)) != 0) continue;
      for (int ep : {1, 2, 4, 8}) {
        if (ep > 1 && !moe) break;
        Parallelism par;
        par.tp = tp;
        par.pp = pp;
        par.dp = dp;
        par.ep = ep;
        par.vpp = moe ? 3 : 1;
        par.micro_batch = 1;
        if (job.global_batch % (dp * par.micro_batch) != 0) continue;
        const PerfResult perf = simulate_training(job, par, gpu, params);
        if (perf.feasible && perf.mfu > best.perf.mfu) {
          best.best = par;
          best.perf = perf;
        }
      }
    }
  }
  return best;
}

}  // namespace ihbd::llmsim
