// The LLM training performance simulator (paper §6.3's "in-house LLM
// training simulator"): an analytic iteration-time model over a parallelism
// strategy, producing MFU. Models:
//   - GEMM efficiency shrinking as TP splits matrices thinner (the paper's
//     "increasing parallelism splits GEMMs into smaller, less efficient
//     tasks" [NVIDIA matmul guide]),
//   - TP Ring-AllReduce time on the HBD (partially overlapped),
//   - pipeline bubble with virtual pipeline stages,
//   - DP gradient AllReduce on the DCN (partially overlapped),
//   - EP AllToAll cost and the expert-imbalance straggler factor
//     (max load = 2/(2 - coef) x mean for (max-min)/max = coef),
//   - a device memory feasibility check (ZeRO-1 optimizer sharding).
#pragma once

#include <string>

#include "src/llmsim/model.h"

namespace ihbd::llmsim {

/// GPU + fabric characteristics (defaults: H100 + InfiniteHBD + CX-7 DCN).
struct GpuSpec {
  double peak_flops = 989e12;          ///< H100 BF16 dense
  double memory_bytes = 80.0 * (1ull << 30);
  double hbd_bw_Bps = 400e9;   ///< per-direction ring bandwidth (6.4 Tbps
                               ///< bidirectional per GPU -> 3.2 Tbps/dir)
  double dcn_bw_Bps = 50e9;    ///< ConnectX-7 400 Gbps
  double hbd_efficiency = 0.80;
  double dcn_efficiency = 0.80;
};

/// Calibration constants of the performance model.
struct PerfModelParams {
  double gemm_peak_fraction = 0.70;   ///< best-case sustained GEMM fraction
  double gemm_shard_constant = 24.0;  ///< thin-GEMM penalty half-point (cols)
  double moe_gemm_m_constant = 32.0;  ///< small-M penalty for expert GEMMs
  double tp_comm_unoverlap = 0.40;    ///< fraction of TP AllReduce exposed
  double dp_comm_unoverlap = 0.10;    ///< fraction of DP AllReduce exposed
};

/// A 4D parallelism strategy.
struct Parallelism {
  int tp = 1;
  int pp = 1;
  int dp = 1;
  int ep = 1;
  int vpp = 1;          ///< virtual pipeline stages
  int micro_batch = 1;  ///< sequences per microbatch

  int gpus() const { return tp * pp * dp; }
  std::string to_string() const;
};

/// Training job setup.
struct TrainJob {
  ModelConfig model;
  int global_batch = 2048;        ///< sequences
  double expert_imbalance = 0.0;  ///< (max-min)/max token skew across experts
};

/// Simulation output for one strategy.
struct PerfResult {
  bool feasible = false;       ///< fits memory and divisibility constraints
  std::string infeasible_why;
  double iter_time_s = 0.0;
  double mfu = 0.0;
  double compute_time_s = 0.0;  ///< per-iteration busy compute (no bubble)
  double tp_comm_time_s = 0.0;  ///< exposed TP AllReduce time
  double ep_comm_time_s = 0.0;  ///< exposed EP AllToAll time
  double dp_comm_time_s = 0.0;  ///< exposed DP AllReduce time
  double bubble_fraction = 0.0;
  double memory_bytes = 0.0;    ///< per-GPU footprint
};

/// Simulate one (job, strategy) pair on `gpu`.
PerfResult simulate_training(const TrainJob& job, const Parallelism& par,
                             const GpuSpec& gpu = {},
                             const PerfModelParams& params = {});

/// Grid-search the paper's strategy space (§6.3 footnote: TP in powers of
/// two up to `max_tp` (128), PP in {1,2,4,8,16}, DP in powers of two, EP in
/// {1,2,4,8} for MoE) for the best-MFU strategy on `gpus` GPUs.
/// `tp_limit` restricts TP (e.g. 8 for the MFU_TP-8 baseline column);
/// 0 = unrestricted.
struct SearchResult {
  Parallelism best;
  PerfResult perf;
};
SearchResult search_best_strategy(const TrainJob& job, int gpus,
                                  int tp_limit = 0, const GpuSpec& gpu = {},
                                  const PerfModelParams& params = {});

}  // namespace ihbd::llmsim
