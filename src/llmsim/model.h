// Transformer model configurations and analytic FLOPs/parameter/traffic
// accounting (paper §2.3, §6.3, Appendix B).
#pragma once

#include <string>

namespace ihbd::llmsim {

/// A (possibly MoE) decoder-only transformer.
struct ModelConfig {
  std::string name;
  int layers = 0;
  int hidden = 0;       ///< model (embedding) dimension h
  int ffn_hidden = 0;   ///< MLP inner dimension
  int heads = 0;
  int vocab = 0;
  int seq_len = 0;      ///< training sequence length s

  // MoE (num_experts == 1 -> dense)
  int num_experts = 1;
  int top_k = 1;
  double moe_layer_ratio = 0.0;  ///< fraction of layers that are MoE

  /// Total parameter count (MHA attention 4h^2, 2-matrix MLP, untied
  /// embeddings; MoE layers replicate the MLP per expert).
  double param_count() const;

  /// Parameters activated per token (MoE: top_k experts only).
  double active_param_count() const;

  /// Training FLOPs per token (fwd+bwd = 3x fwd; fwd = 2*active params
  /// + attention-score term 4*s*h per layer).
  double train_flops_per_token() const;

  /// The paper's Llama-3.1-405B with GQA simplified to MHA (§6.3 footnote).
  static ModelConfig llama31_405b_mha();
  /// The paper's GPT-MoE 1.1T (Appendix B).
  static ModelConfig gpt_moe_1t();
};

/// Table 3: communication load of TP vs EP on a single MoE layer, bytes
/// (b: batch in sequences, s: seq length, h: hidden, n: parallel size,
/// k: router top-k, elem_bytes: activation element size).
double tp_allreduce_load(double b, double s, double h, int n,
                         double elem_bytes = 2.0);
double ep_alltoall_load(double b, double s, double h, int n, int k,
                        double elem_bytes = 2.0);

}  // namespace ihbd::llmsim
