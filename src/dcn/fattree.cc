#include "src/dcn/fattree.h"

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::dcn {

FatTree::FatTree(const FatTreeConfig& config) : config_(config) {
  if (config.node_count <= 0 || config.nodes_per_tor <= 0 ||
      config.tors_per_domain <= 0)
    throw ConfigError("FatTree: all counts must be positive");
  if (config.node_count % config.nodes_per_tor != 0)
    throw ConfigError("FatTree: node_count must be a multiple of p");
  if (tor_count() % config.tors_per_domain != 0)
    throw ConfigError("FatTree: ToR count must be a multiple of "
                      "tors_per_domain");
}

int FatTree::tor_count() const {
  return config_.node_count / config_.nodes_per_tor;
}

int FatTree::domain_size_nodes() const {
  return config_.nodes_per_tor * config_.tors_per_domain;
}

int FatTree::domain_count() const {
  return config_.node_count / domain_size_nodes();
}

int FatTree::tor_of(int node) const {
  IHBD_EXPECTS(node >= 0 && node < config_.node_count);
  return node / config_.nodes_per_tor;
}

int FatTree::domain_of(int node) const {
  return tor_of(node) / config_.tors_per_domain;
}

int FatTree::network_distance(int a, int b) const {
  if (a == b) return 0;
  if (same_tor(a, b)) return 1;
  if (same_domain(a, b)) return 3;
  return 5;
}

}  // namespace ihbd::dcn
