// Fat-Tree DCN model (paper §4.3 / Appendix D).
//
// Only the structure the orchestration algorithm cares about is modelled:
// nodes grouped under ToR switches, ToRs grouped under Aggregation-Switch
// domains, and network distance (1 = same node via NIC loop, 3 = same ToR,
// 5 = same aggregation domain, 7 = core). InfiniteHBD main links connect
// nodes at network distance 5 (one node per ToR along a sub-line).
#pragma once

#include <string>

namespace ihbd::dcn {

struct FatTreeConfig {
  int node_count = 2048;    ///< total nodes (8192 GPUs at 4 GPUs/node)
  int nodes_per_tor = 16;   ///< p in the paper's notation
  int tors_per_domain = 8;  ///< aggregation domain spans d = p * this nodes
};

class FatTree {
 public:
  explicit FatTree(const FatTreeConfig& config);

  int node_count() const { return config_.node_count; }
  int nodes_per_tor() const { return config_.nodes_per_tor; }      ///< p
  int tor_count() const;
  int domain_size_nodes() const;                                   ///< d
  int domain_count() const;

  /// ToR switch id hosting `node`.
  int tor_of(int node) const;
  /// Aggregation-switch domain id hosting `node`.
  int domain_of(int node) const;

  bool same_tor(int a, int b) const { return tor_of(a) == tor_of(b); }
  bool same_domain(int a, int b) const { return domain_of(a) == domain_of(b); }

  /// Hop distance in the Fat-Tree: 3 within a ToR, 5 within a domain,
  /// 7 across domains (node-NIC-switch round counting as in the paper's
  /// "network distance of 3 (i.e., cross-ToR)" convention where ToR-local
  /// is 1 and one aggregation layer adds 2).
  int network_distance(int a, int b) const;

  const FatTreeConfig& config() const { return config_; }

 private:
  FatTreeConfig config_;
};

}  // namespace ihbd::dcn
