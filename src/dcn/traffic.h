// Cross-ToR traffic accounting for a placed job (paper §6.4, Fig. 17a-c).
//
// Semantics: nodes in the same TP group communicate over InfiniteHBD (never
// the DCN). The remaining parallel dimensions (DP/CP/...) form rings over
// same-rank nodes of different TP groups and ride the DCN. The cross-ToR
// rate is the fraction of the job's total communication volume that
// crosses a ToR uplink:
//     rate = (DCN volume on cross-ToR edges) / (HBD volume + DCN volume).
//
// ASSUMPTION (calibration): the per-GPU HBD(TP) to DCN(DP/CP) volume ratio
// is a workload knob `tp_to_dcn_volume_ratio`, default 9.0. With it, a
// fully misaligned placement (every DP edge cross-ToR) yields the ~10%
// baseline rate the paper reports, and a fully aligned placement yields ~0.
#pragma once

#include <vector>

#include "src/dcn/fattree.h"
#include "src/topo/hbd.h"

namespace ihbd::dcn {

/// A TP group plus the deployment coordinates the orchestrator placed it
/// at. Groups produced by the unconstrained residual pass carry -1s.
struct PlacedGroup {
  topo::TpGroup group;
  int subline = -1;   ///< which parallel sub-line (0..p-1)
  int domain = -1;    ///< aggregation domain of the sub-line chunk
  int pos = -1;       ///< group index within the chunk
};

/// An ordered placement of TP groups for one job.
struct PlacementScheme {
  std::vector<PlacedGroup> groups;

  int group_count() const { return static_cast<int>(groups.size()); }
  int gpu_count(int gpus_per_node) const;
};

/// Traffic volume model (relative units; only ratios matter).
struct TrafficModel {
  double tp_to_dcn_volume_ratio = 9.0;  ///< per-GPU HBD volume / DCN volume
  int dp_ring_width = 0;  ///< groups per DP ring; 0 = one ring per
                          ///< (domain,pos) key, residual chained at width p
};

struct CrossTorStats {
  double cross_tor_volume = 0.0;
  double dcn_volume = 0.0;
  double total_volume = 0.0;  ///< includes HBD (TP) volume
  int cross_tor_edges = 0;
  int dcn_edges = 0;

  /// The paper's Cross-ToR Rate.
  double cross_tor_rate() const {
    return total_volume > 0.0 ? cross_tor_volume / total_volume : 0.0;
  }
  /// Cross-ToR fraction of DCN-only traffic.
  double dcn_cross_fraction() const {
    return dcn_volume > 0.0 ? cross_tor_volume / dcn_volume : 0.0;
  }
};

/// Evaluate the cross-ToR rate of the first `use_groups` groups of a
/// placement (0 = all).
///
/// DP-ring assignment: DP rings must have a fixed width (the job's DP
/// degree, default p = nodes/ToR), but WHICH groups share a ring is the
/// orchestrator's to choose. The evaluator models the optimal choice the
/// paper's deployment enables: groups are sorted by their rank-to-ToR
/// tuple, so groups whose same-rank nodes sit under the same ToRs (e.g.
/// the same sub-line chunk position across parallel sub-lines) land in the
/// same ring and their DP/CP traffic stays intra-ToR; mismatched groups
/// (fault-shifted or randomly placed) end up ring-adjacent to strangers
/// and their edges cross ToRs.
CrossTorStats evaluate_cross_tor(const FatTree& fat_tree,
                                 const PlacementScheme& placement,
                                 int gpus_per_node,
                                 const TrafficModel& model = {},
                                 int use_groups = 0);

}  // namespace ihbd::dcn
