#include "src/dcn/traffic.h"

#include <algorithm>
#include <vector>

#include "src/common/contracts.h"

namespace ihbd::dcn {

int PlacementScheme::gpu_count(int gpus_per_node) const {
  int nodes = 0;
  for (const auto& g : groups) nodes += static_cast<int>(g.group.nodes.size());
  return nodes * gpus_per_node;
}

namespace {

/// Account one DP ring: volume and cross-ToR volume of its edges.
/// Each ring edge connects same-rank nodes of adjacent groups; per edge the
/// volume is gpus_per_node * per-GPU DCN volume (ring AllReduce sends the
/// full per-GPU volume over each node's outgoing edge).
void account_ring(const FatTree& fat_tree,
                  const std::vector<const PlacedGroup*>& ring,
                  int gpus_per_node, double dcn_vol_per_gpu,
                  CrossTorStats& stats) {
  if (ring.size() < 2) return;  // no DCN traffic for a singleton ring
  const std::size_t n = ring.size();
  for (std::size_t i = 0; i < n; ++i) {
    const PlacedGroup& a = *ring[i];
    const PlacedGroup& b = *ring[(i + 1) % n];
    // A 2-member "ring" has one physical link, not two.
    if (n == 2 && i == 1) break;
    const std::size_t ranks =
        std::min(a.group.nodes.size(), b.group.nodes.size());
    for (std::size_t r = 0; r < ranks; ++r) {
      const double vol = gpus_per_node * dcn_vol_per_gpu;
      stats.dcn_volume += vol;
      ++stats.dcn_edges;
      if (!fat_tree.same_tor(a.group.nodes[r], b.group.nodes[r])) {
        stats.cross_tor_volume += vol;
        ++stats.cross_tor_edges;
      }
    }
  }
}

}  // namespace

CrossTorStats evaluate_cross_tor(const FatTree& fat_tree,
                                 const PlacementScheme& placement,
                                 int gpus_per_node, const TrafficModel& model,
                                 int use_groups) {
  IHBD_EXPECTS(gpus_per_node > 0);
  CrossTorStats stats;
  const int total = placement.group_count();
  const int used = (use_groups <= 0 || use_groups > total) ? total : use_groups;

  // Per-GPU volumes in relative units: DCN = 1, HBD = ratio.
  const double dcn_vol_per_gpu = 1.0;
  const double hbd_vol_per_gpu = model.tp_to_dcn_volume_ratio;

  // Sort the used groups by their rank-to-ToR tuple so that ToR-matched
  // groups become ring neighbors (see header).
  struct Keyed {
    std::vector<int> tor_tuple;
    const PlacedGroup* group;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(static_cast<std::size_t>(used));
  int used_gpus = 0;
  for (int i = 0; i < used; ++i) {
    const PlacedGroup& g = placement.groups[static_cast<std::size_t>(i)];
    used_gpus += static_cast<int>(g.group.nodes.size()) * gpus_per_node;
    Keyed k;
    k.group = &g;
    k.tor_tuple.reserve(g.group.nodes.size());
    for (int node : g.group.nodes) k.tor_tuple.push_back(fat_tree.tor_of(node));
    keyed.push_back(std::move(k));
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     return a.tor_tuple < b.tor_tuple;
                   });

  // HBD (TP) volume: every used GPU contributes; it never crosses the DCN.
  stats.total_volume = used_gpus * hbd_vol_per_gpu;

  // Bucket rings: groups with identical rank-ToR tuples ring together (the
  // ToR-resident stage of a hierarchical DP/CP AllReduce - all edges
  // intra-ToR by construction). Tuple-singletons have no ToR-local partner
  // and are chained into rings of width p whose edges cross ToRs.
  const int width = model.dp_ring_width > 0 ? model.dp_ring_width
                                            : fat_tree.nodes_per_tor();
  std::vector<const PlacedGroup*> singletons;
  std::size_t i = 0;
  while (i < keyed.size()) {
    std::size_t j = i;
    while (j < keyed.size() && keyed[j].tor_tuple == keyed[i].tor_tuple) ++j;
    if (j - i >= 2) {
      std::vector<const PlacedGroup*> ring;
      for (std::size_t q = i; q < j; ++q) ring.push_back(keyed[q].group);
      account_ring(fat_tree, ring, gpus_per_node, dcn_vol_per_gpu, stats);
    } else {
      singletons.push_back(keyed[i].group);
    }
    i = j;
  }
  for (std::size_t base = 0; base < singletons.size();
       base += static_cast<std::size_t>(width)) {
    std::vector<const PlacedGroup*> ring(
        singletons.begin() + static_cast<std::ptrdiff_t>(base),
        singletons.begin() +
            static_cast<std::ptrdiff_t>(std::min(
                base + static_cast<std::size_t>(width), singletons.size())));
    account_ring(fat_tree, ring, gpus_per_node, dcn_vol_per_gpu, stats);
  }

  stats.total_volume += stats.dcn_volume;
  return stats;
}

}  // namespace ihbd::dcn
