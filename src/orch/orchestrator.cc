#include "src/orch/orchestrator.h"

#include <algorithm>
#include <optional>

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::orch {

std::vector<int> deployment_order(int node_count, int p) {
  IHBD_EXPECTS(node_count > 0 && p > 0);
  IHBD_EXPECTS(node_count % p == 0);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(node_count));
  const int subline_len = node_count / p;
  for (int i = 0; i < p; ++i)
    for (int j = 0; j < subline_len; ++j) order.push_back(i + j * p);
  return order;
}

std::vector<topo::TpGroup> orchestrate_dcn_free(
    const std::vector<int>& nodes_in_hbd_order, int k,
    const std::vector<bool>& faulty, int m) {
  IHBD_EXPECTS(k >= 1 && m >= 1);
  const int n = static_cast<int>(nodes_in_hbd_order.size());

  // Healthy positions in HBD order.
  std::vector<int> healthy_pos;
  for (int pos = 0; pos < n; ++pos) {
    const int node = nodes_in_hbd_order[static_cast<std::size_t>(pos)];
    IHBD_EXPECTS(node >= 0 && node < static_cast<int>(faulty.size()));
    if (!faulty[static_cast<std::size_t>(node)]) healthy_pos.push_back(pos);
  }

  // Connected components of the healthy K-hop line: consecutive healthy
  // positions belong to one component iff their gap is <= k (edge exists).
  // This is the DFS of Algorithm 2 specialized to the K-hop structure,
  // already yielding components sorted in HBD order.
  std::vector<topo::TpGroup> groups;
  std::vector<int> component;
  auto flush = [&] {
    const int len = static_cast<int>(component.size());
    for (int g = 0; g + m <= len; g += m) {
      topo::TpGroup group;
      for (int i = 0; i < m; ++i) {
        group.nodes.push_back(nodes_in_hbd_order[static_cast<std::size_t>(
            component[static_cast<std::size_t>(g + i)])]);
      }
      groups.push_back(std::move(group));
    }
    component.clear();
  };
  for (std::size_t i = 0; i < healthy_pos.size(); ++i) {
    if (!component.empty() && healthy_pos[i] - component.back() > k) flush();
    component.push_back(healthy_pos[i]);
  }
  flush();
  return groups;
}

ChunkGroups orchestrate_chunk_aligned(const std::vector<int>& chunk, int k,
                                      const std::vector<bool>& faulty,
                                      int m) {
  IHBD_EXPECTS(k >= 1 && m >= 1);
  const int l = static_cast<int>(chunk.size());
  ChunkGroups out;
  std::vector<bool> used(static_cast<std::size_t>(l), false);
  auto is_faulty = [&](int pos) {
    return faulty[static_cast<std::size_t>(
        chunk[static_cast<std::size_t>(pos)])];
  };

  // Pass 1: fault-free aligned windows [g*m, (g+1)*m).
  for (int g = 0; (g + 1) * m <= l; ++g) {
    bool clean = true;
    for (int i = g * m; i < (g + 1) * m; ++i)
      if (is_faulty(i)) clean = false;
    if (!clean) continue;
    topo::TpGroup group;
    for (int i = g * m; i < (g + 1) * m; ++i) {
      group.nodes.push_back(chunk[static_cast<std::size_t>(i)]);
      used[static_cast<std::size_t>(i)] = true;
    }
    out.groups.push_back(std::move(group));
    out.aligned_pos.push_back(g);
  }

  // Pass 2: tile the remaining healthy K-hop-connected runs (misaligned).
  std::vector<int> run;  // positions
  auto flush = [&] {
    for (int g = 0; (g + 1) * m <= static_cast<int>(run.size()); ++g) {
      topo::TpGroup group;
      for (int i = g * m; i < (g + 1) * m; ++i)
        group.nodes.push_back(
            chunk[static_cast<std::size_t>(run[static_cast<std::size_t>(i)])]);
      out.groups.push_back(std::move(group));
      out.aligned_pos.push_back(-1);
    }
    run.clear();
  };
  for (int pos = 0; pos < l; ++pos) {
    if (used[static_cast<std::size_t>(pos)] || is_faulty(pos)) {
      // A used (aligned) node terminates the run: rings cannot hop over
      // nodes already serving another group beyond the K reach.
      if (!run.empty() && used[static_cast<std::size_t>(pos)]) flush();
      // A faulty node is bypassable while the gap stays below K.
      if (!run.empty() && is_faulty(pos)) {
        int gap = 0;
        int q = pos;
        while (q < l && is_faulty(q)) {
          ++gap;
          ++q;
        }
        if (gap > k - 1) flush();
      }
      continue;
    }
    run.push_back(pos);
  }
  flush();
  return out;
}

FatTreeOrchestrator::FatTreeOrchestrator(const dcn::FatTree& fat_tree, int k,
                                         int gpus_per_node)
    : fat_tree_(fat_tree), k_(k), gpus_per_node_(gpus_per_node),
      chunk_len_(fat_tree.domain_size_nodes() / fat_tree.nodes_per_tor()),
      deploy_(deployment_order(fat_tree.node_count(),
                               fat_tree.nodes_per_tor())) {
  if (k < 1) throw ConfigError("K must be >= 1");
  if (gpus_per_node < 1) throw ConfigError("GPUs per node must be >= 1");
}

int FatTreeOrchestrator::max_constraints() const {
  const int n_maxsubline = fat_tree_.node_count() / chunk_len_;
  return fat_tree_.domain_count() + n_maxsubline;
}

dcn::PlacementScheme FatTreeOrchestrator::place(
    const std::vector<bool>& faulty, const JobSpec& job,
    int n_constraints) const {
  if (static_cast<int>(faulty.size()) != fat_tree_.node_count())
    throw ConfigError("fault mask size != node count");
  if (job.tp_size_gpus <= 0 || job.tp_size_gpus % gpus_per_node_ != 0)
    throw ConfigError("TP size must be a positive multiple of GPUs/node");
  const int m = job.tp_size_gpus / gpus_per_node_;
  const int p = fat_tree_.nodes_per_tor();
  const int n_domain = fat_tree_.domain_count();
  const int n_maxsubline = fat_tree_.node_count() / chunk_len_;
  const int n_align = std::max(0, n_constraints - n_maxsubline);
  const int n_subline = std::min(n_maxsubline, n_constraints);

  // Alignment constraint: ToR-expand faults within the first n_align
  // domains (a faulty node marks its whole ToR faulty, so every sub-line
  // cuts identically and TP ranks stay matched within each ToR).
  std::vector<bool> expanded = faulty;
  for (int dom = 0; dom < n_align; ++dom) {
    const int base = dom * fat_tree_.domain_size_nodes();
    for (int node = base; node < base + fat_tree_.domain_size_nodes();
         ++node) {
      if (faulty[static_cast<std::size_t>(node)]) {
        const int tor_base = (node / p) * p;
        for (int t = tor_base; t < tor_base + p; ++t)
          expanded[static_cast<std::size_t>(t)] = true;
      }
    }
  }

  dcn::PlacementScheme placement;

  // Fully relaxed floor: with zero constraints the whole deploy line is
  // orchestrated as one K-hop line (pure Algorithm 2) - the maximum-
  // capacity placement the binary search can always fall back to.
  if (n_constraints == 0) {
    for (auto& group : orchestrate_dcn_free(deploy_, k_, faulty, m)) {
      dcn::PlacedGroup pg;
      pg.group = std::move(group);
      placement.groups.push_back(std::move(pg));
    }
    return placement;
  }

  // Sub-line constraint: pop chunks of length l from S_deploy; chunk q
  // covers sub-line q / n_domain within domain q % n_domain; TP groups
  // carved inside a chunk never span aggregation domains.
  // Every chunk stays inside one aggregation domain (the cheap constraint).
  // The first n_subline chunks are carved ALIGNED (fault-free m-windows
  // first, leftovers recovered as misaligned groups); the rest are carved
  // with plain Orchestration-DCN-Free (bypass shifts, maximal capacity).
  // The binary search thus trades alignment for capacity chunk by chunk.
  std::vector<dcn::PlacedGroup> aligned_groups;
  std::vector<dcn::PlacedGroup> misaligned_groups;
  for (int q = 0; q < n_maxsubline; ++q) {
    std::vector<int> chunk(
        deploy_.begin() + static_cast<std::ptrdiff_t>(q) * chunk_len_,
        deploy_.begin() + static_cast<std::ptrdiff_t>(q + 1) * chunk_len_);
    const int subline = q / n_domain;
    const int domain = q % n_domain;
    if (q < n_subline) {
      auto carved = orchestrate_chunk_aligned(chunk, k_, expanded, m);
      for (std::size_t g = 0; g < carved.groups.size(); ++g) {
        dcn::PlacedGroup pg;
        pg.group = std::move(carved.groups[g]);
        if (carved.aligned_pos[g] >= 0) {
          pg.subline = subline;
          pg.domain = domain;
          pg.pos = carved.aligned_pos[g];
          aligned_groups.push_back(std::move(pg));
        } else if (domain >= n_align) {
          // In alignment-constrained domains the recovery pass is
          // disabled: expansion trades those nodes for rank alignment.
          misaligned_groups.push_back(std::move(pg));
        }
      }
    } else {
      for (auto& group : orchestrate_dcn_free(chunk, k_, expanded, m)) {
        dcn::PlacedGroup pg;
        pg.group = std::move(group);
        pg.subline = subline;
        pg.domain = domain;  // carved in-domain, but rank-shifted
        misaligned_groups.push_back(std::move(pg));
      }
    }
  }
  // Jobs consume aligned groups first (their DP/CP traffic stays
  // intra-ToR), then the shifted spill-over.
  for (auto& g : aligned_groups) placement.groups.push_back(std::move(g));
  for (auto& g : misaligned_groups) placement.groups.push_back(std::move(g));

  // Tail nodes beyond the last whole chunk (deploy order not divisible by
  // l) are orchestrated unconstrained.
  std::vector<int> residual(
      deploy_.begin() + static_cast<std::ptrdiff_t>(n_maxsubline) * chunk_len_,
      deploy_.end());
  for (auto& group : orchestrate_dcn_free(residual, k_, expanded, m)) {
    dcn::PlacedGroup pg;
    pg.group = std::move(group);
    placement.groups.push_back(std::move(pg));
  }
  return placement;
}

dcn::PlacementScheme FatTreeOrchestrator::orchestrate(
    const std::vector<bool>& faulty, const JobSpec& job) const {
  int low = 0;
  int high = max_constraints();
  std::optional<dcn::PlacementScheme> best;
  while (low <= high) {
    const int mid = (low + high) / 2;
    auto placement = place(faulty, job, mid);
    if (placement.gpu_count(gpus_per_node_) >= job.gpu_count) {
      best = std::move(placement);
      low = mid + 1;
    } else {
      high = mid - 1;
    }
  }
  if (!best)
    throw InfeasibleError("job does not fit the healthy cluster capacity");
  return *std::move(best);
}

dcn::PlacementScheme greedy_baseline(const dcn::FatTree& fat_tree, int k,
                                     int gpus_per_node,
                                     const std::vector<bool>& faulty,
                                     const JobSpec& job, Rng& rng) {
  if (static_cast<int>(faulty.size()) != fat_tree.node_count())
    throw ConfigError("fault mask size != node count");
  const int m = job.tp_size_gpus / gpus_per_node;
  const auto deploy = deployment_order(fat_tree.node_count(),
                                       fat_tree.nodes_per_tor());

  // Randomly exclude surplus healthy nodes one at a time, keeping each
  // exclusion only if the placement stays feasible - the "first random
  // permutation that meets the requirements" of §6.4. The result is a
  // genuinely arbitrary feasible subset with no ToR-rank coordination.
  const int needed_groups =
      (job.gpu_count + job.tp_size_gpus - 1) / job.tp_size_gpus;
  std::vector<bool> excluded = faulty;
  std::vector<int> ids(static_cast<std::size_t>(fat_tree.node_count()));
  for (int i = 0; i < fat_tree.node_count(); ++i)
    ids[static_cast<std::size_t>(i)] = i;
  rng.shuffle(ids);
  auto groups = orchestrate_dcn_free(deploy, k, excluded, m);
  int spare_groups = static_cast<int>(groups.size()) - needed_groups;
  for (int id : ids) {
    if (spare_groups <= 0) break;
    if (excluded[static_cast<std::size_t>(id)]) continue;
    excluded[static_cast<std::size_t>(id)] = true;
    auto candidate = orchestrate_dcn_free(deploy, k, excluded, m);
    const int candidate_spare =
        static_cast<int>(candidate.size()) - needed_groups;
    if (candidate_spare < 0) {
      excluded[static_cast<std::size_t>(id)] = false;  // would break the job
      continue;
    }
    groups = std::move(candidate);
    spare_groups = candidate_spare;
  }

  dcn::PlacementScheme placement;
  for (auto& group : groups) {
    dcn::PlacedGroup pg;
    pg.group = std::move(group);
    placement.groups.push_back(std::move(pg));
  }
  // Random DP ring order: the greedy does not coordinate group adjacency.
  rng.shuffle(placement.groups);
  return placement;
}

}  // namespace ihbd::orch
