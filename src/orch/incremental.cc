#include "src/orch/incremental.h"

#include <algorithm>

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::orch {
namespace {

bool same_group(const dcn::PlacedGroup& a, const dcn::PlacedGroup& b) {
  return a.subline == b.subline && a.domain == b.domain && a.pos == b.pos &&
         a.group.nodes == b.group.nodes;
}

}  // namespace

IncrementalPlacement::IncrementalPlacement(const FatTreeOrchestrator& orch,
                                           const JobSpec& job,
                                           int n_constraints,
                                           const std::vector<bool>& faulty)
    : orch_(orch) {
  const dcn::FatTree& ft = orch.fat_tree();
  if (static_cast<int>(faulty.size()) != ft.node_count())
    throw ConfigError("fault mask size != node count");
  if (job.tp_size_gpus <= 0 ||
      job.tp_size_gpus % orch.gpus_per_node() != 0)
    throw ConfigError("TP size must be a positive multiple of GPUs/node");
  if (n_constraints < 0 || n_constraints > orch.max_constraints())
    throw ConfigError("n_constraints out of [0, max_constraints()]");

  m_ = job.tp_size_gpus / orch.gpus_per_node();
  gpus_per_node_ = orch.gpus_per_node();
  n_constraints_ = n_constraints;
  chunk_len_ = orch.subline_chunk_len();
  const int n_maxsubline = ft.node_count() / chunk_len_;
  n_align_ = std::max(0, n_constraints - n_maxsubline);
  n_subline_ = std::min(n_maxsubline, n_constraints);
  // n_constraints == 0 is place()'s fully relaxed floor: the whole deploy
  // line is one unconstrained carve, which we model as an all-residual
  // placement with zero whole chunks.
  chunk_count_ = n_constraints == 0 ? 0 : n_maxsubline;

  faulty_ = faulty;
  const int p = ft.nodes_per_tor();
  tor_faults_.assign(static_cast<std::size_t>((ft.node_count() + p - 1) / p),
                     0);
  for (int n = 0; n < ft.node_count(); ++n)
    if (faulty_[static_cast<std::size_t>(n)])
      ++tor_faults_[static_cast<std::size_t>(n / p)];
  expanded_.resize(faulty_.size());
  for (int n = 0; n < ft.node_count(); ++n)
    expanded_[static_cast<std::size_t>(n)] = expanded_bit(n);

  chunks_.resize(static_cast<std::size_t>(chunk_count_) + 1);
  for (int q = 0; q <= chunk_count_; ++q) {
    carve_chunk(q, chunks_[static_cast<std::size_t>(q)]);
    group_count_ +=
        static_cast<int>(chunks_[static_cast<std::size_t>(q)].aligned.size() +
                         chunks_[static_cast<std::size_t>(q)].misaligned.size());
  }
}

int IncrementalPlacement::deploy_pos(int node) const {
  const dcn::FatTree& ft = orch_.fat_tree();
  const int p = ft.nodes_per_tor();
  const int subline_len = ft.node_count() / p;
  return (node % p) * subline_len + node / p;
}

bool IncrementalPlacement::expanded_bit(int node) const {
  if (faulty_[static_cast<std::size_t>(node)]) return true;
  const dcn::FatTree& ft = orch_.fat_tree();
  if (ft.domain_of(node) >= n_align_) return false;
  const int p = ft.nodes_per_tor();
  return tor_faults_[static_cast<std::size_t>(node / p)] > 0;
}

void IncrementalPlacement::carve_chunk(int q, ChunkCarve& out) const {
  const std::vector<int>& deploy = orch_.deployment();
  const int k = orch_.k();
  if (q == chunk_count_) {
    // Residual tail beyond the last whole chunk (the whole deploy line when
    // n_constraints == 0): unconstrained Algorithm 2, plain groups.
    std::vector<int> residual(
        deploy.begin() + static_cast<std::ptrdiff_t>(chunk_count_) * chunk_len_,
        deploy.end());
    for (auto& group : orchestrate_dcn_free(residual, k, expanded_, m_)) {
      dcn::PlacedGroup pg;
      pg.group = std::move(group);
      out.misaligned.push_back(std::move(pg));
    }
    return;
  }

  std::vector<int> chunk(
      deploy.begin() + static_cast<std::ptrdiff_t>(q) * chunk_len_,
      deploy.begin() + static_cast<std::ptrdiff_t>(q + 1) * chunk_len_);
  const int n_domain = orch_.fat_tree().domain_count();
  const int subline = q / n_domain;
  const int domain = q % n_domain;
  if (q < n_subline_) {
    auto carved = orchestrate_chunk_aligned(chunk, k, expanded_, m_);
    for (std::size_t g = 0; g < carved.groups.size(); ++g) {
      dcn::PlacedGroup pg;
      pg.group = std::move(carved.groups[g]);
      if (carved.aligned_pos[g] >= 0) {
        pg.subline = subline;
        pg.domain = domain;
        pg.pos = carved.aligned_pos[g];
        out.aligned.push_back(std::move(pg));
      } else if (domain >= n_align_) {
        out.misaligned.push_back(std::move(pg));
      }
    }
  } else {
    for (auto& group : orchestrate_dcn_free(chunk, k, expanded_, m_)) {
      dcn::PlacedGroup pg;
      pg.group = std::move(group);
      pg.subline = subline;
      pg.domain = domain;
      out.misaligned.push_back(std::move(pg));
    }
  }
}

PlacementDelta IncrementalPlacement::set_faulty(int node, bool faulty) {
  const dcn::FatTree& ft = orch_.fat_tree();
  IHBD_EXPECTS(node >= 0 && node < ft.node_count());
  PlacementDelta delta;
  if (faulty_[static_cast<std::size_t>(node)] == faulty) return delta;
  faulty_[static_cast<std::size_t>(node)] = faulty;
  const int p = ft.nodes_per_tor();
  const int tor = node / p;
  tor_faults_[static_cast<std::size_t>(tor)] += faulty ? 1 : -1;

  // Nodes whose expanded bit may have changed: the node itself, or — in an
  // alignment-constrained domain — its whole ToR (the expansion set).
  const bool tor_expanded = ft.domain_of(node) < n_align_;
  const int first = tor_expanded ? tor * p : node;
  const int last = tor_expanded ? tor * p + p : node + 1;

  std::vector<int> dirty;  // chunk indices needing a re-carve
  for (int n = first; n < last; ++n) {
    const bool bit = expanded_bit(n);
    if (expanded_[static_cast<std::size_t>(n)] == bit) continue;
    expanded_[static_cast<std::size_t>(n)] = bit;
    const int pos = deploy_pos(n);
    dirty.push_back(pos < chunk_count_ * chunk_len_ ? pos / chunk_len_
                                                    : chunk_count_);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  for (int q : dirty) {
    ChunkCarve& old = chunks_[static_cast<std::size_t>(q)];
    ChunkCarve fresh;
    carve_chunk(q, fresh);

    // Report only true churn: a group present (identically) on both sides
    // of the re-carve survived the fault and is dropped from the delta.
    auto diff = [&](std::vector<dcn::PlacedGroup>& before,
                    std::vector<dcn::PlacedGroup>& after) {
      std::vector<bool> matched(after.size(), false);
      for (auto& og : before) {
        bool found = false;
        for (std::size_t j = 0; j < after.size(); ++j) {
          if (matched[j] || !same_group(og, after[j])) continue;
          matched[j] = true;
          found = true;
          break;
        }
        if (!found) delta.removed.push_back(og);
      }
      for (std::size_t j = 0; j < after.size(); ++j)
        if (!matched[j]) delta.added.push_back(after[j]);
    };
    diff(old.aligned, fresh.aligned);
    diff(old.misaligned, fresh.misaligned);

    group_count_ +=
        static_cast<int>(fresh.aligned.size() + fresh.misaligned.size()) -
        static_cast<int>(old.aligned.size() + old.misaligned.size());
    old = std::move(fresh);
  }
  return delta;
}

dcn::PlacementScheme IncrementalPlacement::placement() const {
  dcn::PlacementScheme out;
  out.groups.reserve(static_cast<std::size_t>(group_count_));
  for (int q = 0; q < chunk_count_; ++q)
    for (const auto& g : chunks_[static_cast<std::size_t>(q)].aligned)
      out.groups.push_back(g);
  for (int q = 0; q < chunk_count_; ++q)
    for (const auto& g : chunks_[static_cast<std::size_t>(q)].misaligned)
      out.groups.push_back(g);
  for (const auto& g : chunks_[static_cast<std::size_t>(chunk_count_)].misaligned)
    out.groups.push_back(g);
  return out;
}

}  // namespace ihbd::orch
