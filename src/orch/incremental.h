// Incremental re-orchestration (the control-plane entry point into §4.3).
//
// FatTreeOrchestrator::place() carves the whole deployment line from
// scratch on every call — fine for one-shot evaluation, far too slow for a
// long-running control plane that must absorb a continuous stream of
// fault/repair transitions at 10k-100k-node scale. The key structural fact
// (mirroring topo::IncrementalAllocator for the replay path): Algorithm 4
// carves per-domain sub-line CHUNKS independently, so one node's health
// flip can only change the carve of the chunks whose *expanded* fault bits
// it touches —
//   * its own chunk, always;
//   * in alignment-constrained domains (domain < n_align), a faulty node
//     marks its whole ToR faulty, and the ToR's p nodes sit in p different
//     sub-lines: up to p chunks of that domain re-carve;
//   * the residual tail beyond the last whole chunk, when the node (or its
//     ToR) lives there.
//
// IncrementalPlacement maintains the per-chunk carve results and patches
// only the affected chunks per flip, reporting exactly which placed groups
// vanished and which appeared — the churn signal the control plane turns
// into job re-placements and OCS reconfiguration requests. The assembled
// placement() is bit-identical (group order, node order, and subline/
// domain/pos metadata) to a from-scratch place() on the same mask, for any
// flip history; orch_test walks randomized flip sequences against that
// oracle.
#pragma once

#include <vector>

#include "src/dcn/traffic.h"
#include "src/orch/orchestrator.h"

namespace ihbd::orch {

/// The groups removed from / added to the placement by one health flip.
/// Groups untouched by the patch (identical nodes and metadata) appear in
/// neither list, so the delta is the true churn, not the re-carve size.
struct PlacementDelta {
  std::vector<dcn::PlacedGroup> removed;
  std::vector<dcn::PlacedGroup> added;

  bool empty() const { return removed.empty() && added.empty(); }
};

/// Incrementally maintained Algorithm-4 placement at a fixed constraint
/// count. The always-on control plane pins n_constraints (typically
/// max_constraints() for full alignment, or a ControlPlaneConfig choice)
/// instead of re-running the Algorithm-5 binary search per event: capacity
/// is tracked incrementally and admission decisions read it directly.
class IncrementalPlacement {
 public:
  /// `orch` must outlive this object. `n_constraints` in
  /// [0, orch.max_constraints()].
  IncrementalPlacement(const FatTreeOrchestrator& orch, const JobSpec& job,
                       int n_constraints, const std::vector<bool>& faulty);

  /// Flip one node's health and patch the affected chunks. A no-op flip
  /// (node already in that state) returns an empty delta.
  PlacementDelta set_faulty(int node, bool faulty);

  /// Assemble the full placement — bit-identical to
  /// orch.place(current mask, job, n_constraints).
  dcn::PlacementScheme placement() const;

  /// Groups / GPUs currently placed (maintained incrementally).
  int group_count() const { return group_count_; }
  int gpu_count() const { return group_count_ * m_ * gpus_per_node_; }

  const std::vector<bool>& faulty() const { return faulty_; }
  int nodes_per_group() const { return m_; }
  int n_constraints() const { return n_constraints_; }

 private:
  struct ChunkCarve {
    std::vector<dcn::PlacedGroup> aligned;
    std::vector<dcn::PlacedGroup> misaligned;
  };

  /// Deploy position of a physical node (inverse of deployment_order).
  int deploy_pos(int node) const;
  /// Re-carve chunk q (or the residual tail for q == chunk_count_) from the
  /// current expanded mask into `out`.
  void carve_chunk(int q, ChunkCarve& out) const;
  /// Recompute the expanded bit of `node` from faulty_ / tor_faults_.
  bool expanded_bit(int node) const;

  const FatTreeOrchestrator& orch_;
  int m_;
  int gpus_per_node_;
  int n_constraints_;
  int chunk_len_;
  int chunk_count_;  ///< whole chunks (n_maxsubline); 0 when n_constraints==0
  int n_subline_;
  int n_align_;

  std::vector<bool> faulty_;
  std::vector<bool> expanded_;
  std::vector<int> tor_faults_;  ///< faulty-node count per ToR

  std::vector<ChunkCarve> chunks_;  ///< chunk_count_ + 1 (residual last)
  int group_count_ = 0;
};

}  // namespace ihbd::orch
