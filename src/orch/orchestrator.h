// HBD-DCN orchestration (paper §4.3 + Appendix D, Design 3).
//
// Deployment phase (Algorithm 3): nodes with the same index under each ToR
// form p parallel sub-lines in the InfiniteHBD ring; HBD-adjacent nodes are
// therefore in adjacent ToRs, and the p nodes of one ToR hold matching TP
// ranks - keeping DP/CP/PP/SP traffic intra-ToR when TP groups are aligned.
//
// Runtime phase:
//   - Algorithm 2 (Orchestration-DCN-Free): DFS connected components of the
//     healthy K-hop graph, sorted in HBD order, popped into m-node groups.
//   - Algorithm 4 (Placement-Fat-Tree): apply n_constraints constraints -
//     first carve per-domain sub-line chunks (TP stays inside an
//     aggregation domain), then ToR-expand faults in the first n_align
//     domains (rank alignment); orchestrate the remainder unconstrained.
//   - Algorithm 5 (Orchestration-Fat-Tree): binary-search the largest
//     n_constraints whose placement still satisfies the job scale.
#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/dcn/fattree.h"
#include "src/dcn/traffic.h"
#include "src/topo/hbd.h"

namespace ihbd::orch {

/// Job description for orchestration.
struct JobSpec {
  int tp_size_gpus = 32;  ///< t
  int gpu_count = 0;      ///< s: total GPUs the job needs
};

/// Algorithm 3 (Deployment-Strategy): the HBD ring order S_deploy for a
/// cluster of `node_count` physical nodes and p nodes per ToR: sub-line i
/// holds physical nodes {i, i+p, i+2p, ...}; sub-lines are concatenated.
std::vector<int> deployment_order(int node_count, int p);

/// Algorithm 2 (Orchestration-DCN-Free) over an ordered node list with
/// K-hop edges *in that order*: returns m-node TP groups built from the
/// healthy connected components, in HBD order. `faulty` is indexed by
/// physical node id.
std::vector<topo::TpGroup> orchestrate_dcn_free(
    const std::vector<int>& nodes_in_hbd_order, int k,
    const std::vector<bool>& faulty, int m);

/// Alignment-aware chunk placement: groups are first carved from fault-free
/// m-aligned windows (keeping TP ranks matched to ToR positions across
/// sub-lines - the paper's "align ranks within each ToR" objective); the
/// remaining healthy runs are then tiled into *misaligned* groups whose
/// DP traffic will cross ToRs. Aligned groups report their window index in
/// `aligned_pos`; misaligned groups get -1.
struct ChunkGroups {
  std::vector<topo::TpGroup> groups;
  std::vector<int> aligned_pos;  ///< parallel to groups
};
ChunkGroups orchestrate_chunk_aligned(const std::vector<int>& chunk, int k,
                                      const std::vector<bool>& faulty, int m);

/// The Fat-Tree orchestrator (Algorithms 4 + 5).
class FatTreeOrchestrator {
 public:
  /// `k` is the InfiniteHBD hop reach; `gpus_per_node` is r.
  FatTreeOrchestrator(const dcn::FatTree& fat_tree, int k, int gpus_per_node);

  /// Algorithm 5: binary-search n_constraints, return the placement with
  /// the most constraints that still satisfies the job. Throws
  /// InfeasibleError when even the unconstrained placement is too small.
  dcn::PlacementScheme orchestrate(const std::vector<bool>& faulty,
                                   const JobSpec& job) const;

  /// Algorithm 4 for a fixed constraint count (exposed for tests/ablation).
  dcn::PlacementScheme place(const std::vector<bool>& faulty,
                             const JobSpec& job, int n_constraints) const;

  /// n_domain + n_maxsubline: the binary search's upper bound.
  int max_constraints() const;

  int subline_chunk_len() const { return chunk_len_; }
  int gpus_per_node() const { return gpus_per_node_; }
  int k() const { return k_; }
  const dcn::FatTree& fat_tree() const { return fat_tree_; }
  /// S_deploy: the Algorithm-3 deployment order place() carves chunks from.
  const std::vector<int>& deployment() const { return deploy_; }

 private:
  const dcn::FatTree& fat_tree_;
  int k_;
  int gpus_per_node_;
  int chunk_len_;             ///< l = d / p nodes per per-domain sub-line chunk
  std::vector<int> deploy_;   ///< S_deploy
};

/// The §6.4 baseline: greedily pick healthy nodes at random (first feasible
/// permutation), ignoring DCN locality. Produces a placement whose DP rings
/// are essentially all cross-ToR.
dcn::PlacementScheme greedy_baseline(const dcn::FatTree& fat_tree, int k,
                                     int gpus_per_node,
                                     const std::vector<bool>& faulty,
                                     const JobSpec& job, Rng& rng);

}  // namespace ihbd::orch
