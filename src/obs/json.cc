#include "src/obs/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ihbd::obs {

void json_append_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  // Shortest representation that round-trips: try increasing precision.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void json_append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace ihbd::obs
