#include "src/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>

#include "src/common/serde.h"
#include "src/common/table.h"

namespace ihbd::obs {

using serde::json_append_number;
using serde::json_append_string;

namespace detail {

std::size_t thread_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace detail

void set_enabled(bool on) {
#if IHBD_OBS
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

// --- Counter ----------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_)
    total += shard.value.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (Shard& shard : shards_)
    shard.value.store(0, std::memory_order_relaxed);
}

// --- Histogram --------------------------------------------------------------

std::size_t Histogram::bucket_of(double x) {
  if (std::isnan(x)) return kHistogramBuckets;  // sentinel: dropped
  if (x <= 0.0) return 0;
  int exp = 0;
  const double m = std::frexp(x, &exp);  // x = m * 2^exp, m in [0.5, 1)
  // frexp's range is lower-inclusive, the documented buckets (2^(b-33),
  // 2^(b-32)] are upper-inclusive: exact powers of two (m == 0.5) belong to
  // the bucket below. Bucket b then covers (2^(b-33), 2^(b-32)] exactly.
  if (m == 0.5) --exp;
  const int b = exp + 32;
  if (b < 1) return 0;
  if (b >= static_cast<int>(kHistogramBuckets))
    return kHistogramBuckets - 1;
  return static_cast<std::size_t>(b);
}

double Histogram::bucket_upper_bound(std::size_t bucket) {
  if (bucket + 1 >= kHistogramBuckets)
    return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(bucket) - 32);
}

void Histogram::observe(double x) {
  if (!enabled()) return;
  const std::size_t bucket = bucket_of(x);
  if (bucket >= kHistogramBuckets) return;  // NaN: no bucket fits
  Shard& shard = shards_[detail::thread_index() % kMetricShards];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(x, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_)
    for (const auto& c : shard.counts)
      total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& shard : shards_)
    total += shard.sum.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::bucket_count(std::size_t bucket) const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_)
    total += shard.counts[bucket].load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

// --- registry ---------------------------------------------------------------

namespace {

struct Registry {
  std::mutex mu;
  // unique_ptr: handle addresses stay stable across rehash/insert.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// A metric name must keep one kind for the process lifetime; silently
/// returning a fresh object of another kind would fork the name.
void require_unique_kind(const Registry& reg, std::string_view name,
                         const void* self_map) {
  const bool clash =
      (&reg.counters != self_map && reg.counters.count(std::string(name))) ||
      (&reg.gauges != self_map && reg.gauges.count(std::string(name))) ||
      (&reg.histograms != self_map &&
       reg.histograms.count(std::string(name)));
  if (clash) {
    std::fprintf(stderr, "obs: metric '%.*s' re-registered as another kind\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
}

template <typename T, typename Map>
T& intern(Map& map, std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = map.find(name);
  if (it == map.end()) {
    require_unique_kind(reg, name, &map);
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& counter(std::string_view name) {
  return intern<Counter>(registry().counters, name);
}

Gauge& gauge(std::string_view name) {
  return intern<Gauge>(registry().gauges, name);
}

Histogram& histogram(std::string_view name) {
  return intern<Histogram>(registry().histograms, name);
}

// --- snapshot ---------------------------------------------------------------

MetricsSnapshot snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  MetricsSnapshot snap;
  for (const auto& [name, c] : reg.counters) snap.counters[name] = c->value();
  for (const auto& [name, g] : reg.gauges) snap.gauges[name] = g->value();
  for (const auto& [name, h] : reg.histograms) {
    HistogramSnapshot hs;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t n = h->bucket_count(b);
      if (n > 0) hs.buckets.emplace_back(Histogram::bucket_upper_bound(b), n);
      hs.count += n;
    }
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& [name, c] : reg.counters) c->reset();
  for (const auto& [name, g] : reg.gauges) g->reset();
  for (const auto& [name, h] : reg.histograms) h->reset();
}

void MetricsSnapshot::merge(const MetricsSnapshot& later) {
  for (const auto& [name, v] : later.counters) counters[name] += v;
  for (const auto& [name, v] : later.gauges) gauges[name] = v;  // right wins
  for (const auto& [name, hs] : later.histograms) {
    HistogramSnapshot& mine = histograms[name];
    mine.count += hs.count;
    mine.sum += hs.sum;
    // Merge the sparse (upper bound, count) lists; both are ascending.
    std::vector<std::pair<double, std::uint64_t>> merged;
    merged.reserve(mine.buckets.size() + hs.buckets.size());
    std::size_t i = 0, j = 0;
    while (i < mine.buckets.size() || j < hs.buckets.size()) {
      if (j == hs.buckets.size() ||
          (i < mine.buckets.size() &&
           mine.buckets[i].first < hs.buckets[j].first)) {
        merged.push_back(mine.buckets[i++]);
      } else if (i == mine.buckets.size() ||
                 hs.buckets[j].first < mine.buckets[i].first) {
        merged.push_back(hs.buckets[j++]);
      } else {
        merged.emplace_back(mine.buckets[i].first,
                            mine.buckets[i].second + hs.buckets[j].second);
        ++i;
        ++j;
      }
    }
    mine.buckets = std::move(merged);
  }
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    json_append_string(out, name);
    out += ':';
    json_append_number(out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    json_append_string(out, name);
    out += ':';
    json_append_number(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hs] : histograms) {
    if (!first) out += ',';
    first = false;
    json_append_string(out, name);
    out += ":{\"count\":";
    json_append_number(out, hs.count);
    out += ",\"sum\":";
    json_append_number(out, hs.sum);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < hs.buckets.size(); ++b) {
      if (b > 0) out += ',';
      out += '[';
      json_append_number(out, hs.buckets[b].first);
      out += ',';
      json_append_number(out, hs.buckets[b].second);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsSnapshot::save(serde::Writer& w) const {
  w.u64(counters.size());
  for (const auto& [name, v] : counters) {
    w.str(name);
    w.u64(v);
  }
  w.u64(gauges.size());
  for (const auto& [name, v] : gauges) {
    w.str(name);
    w.f64(v);
  }
  w.u64(histograms.size());
  for (const auto& [name, hs] : histograms) {
    w.str(name);
    w.u64(hs.count);
    w.f64(hs.sum);
    w.u64(hs.buckets.size());
    for (const auto& [le, n] : hs.buckets) {
      w.f64(le);
      w.u64(n);
    }
  }
}

MetricsSnapshot MetricsSnapshot::load(serde::Reader& r) {
  MetricsSnapshot snap;
  const std::uint64_t n_counters = r.u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    std::string name = r.str();
    snap.counters[std::move(name)] = r.u64();
  }
  const std::uint64_t n_gauges = r.u64();
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    std::string name = r.str();
    snap.gauges[std::move(name)] = r.f64();
  }
  const std::uint64_t n_hists = r.u64();
  for (std::uint64_t i = 0; i < n_hists; ++i) {
    std::string name = r.str();
    HistogramSnapshot hs;
    hs.count = r.u64();
    hs.sum = r.f64();
    const std::uint64_t n_buckets = r.u64();
    hs.buckets.reserve(n_buckets);
    for (std::uint64_t b = 0; b < n_buckets; ++b) {
      const double le = r.f64();
      hs.buckets.emplace_back(le, r.u64());
    }
    snap.histograms[std::move(name)] = std::move(hs);
  }
  return snap;
}

Table MetricsSnapshot::to_table() const {
  Table table("Metrics snapshot");
  table.set_header({"Metric", "Kind", "Value"});
  char buf[64];
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    table.add_row({name, "counter", buf});
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    table.add_row({name, "gauge", buf});
  }
  for (const auto& [name, hs] : histograms) {
    std::snprintf(buf, sizeof buf, "count=%llu mean=%.6g",
                  static_cast<unsigned long long>(hs.count), hs.mean());
    table.add_row({name, "histogram", buf});
  }
  return table;
}

}  // namespace ihbd::obs
