#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/serde.h"

namespace ihbd::obs {

using serde::json_append_number;
using serde::json_append_string;

namespace {

using Clock = std::chrono::steady_clock;

/// Hard cap per thread buffer (~24 MB of events at 24 B each): traces are
/// for bounded instrumented runs, and a runaway loop must not OOM the
/// process. Overflow is counted and surfaced via trace_dropped().
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

struct TraceEvent {
  const char* name;
  std::uint64_t ts_ns;  ///< since the trace epoch
  char phase;           ///< 'B' or 'E'
};

struct ThreadTraceBuffer {
  std::mutex mu;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::uint32_t next_tid = 0;
  Clock::time_point epoch = Clock::now();
};

TraceRegistry& registry() {
  static TraceRegistry r;
  return r;
}

ThreadTraceBuffer& local_buffer() {
  // shared_ptr: the registry (and so the export path) keeps the buffer
  // alive after the owning thread exits.
  thread_local const std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    auto b = std::make_shared<ThreadTraceBuffer>();
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    b->tid = reg.next_tid++;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void record(const char* name, char phase) {
  ThreadTraceBuffer& buf = local_buffer();
  const std::uint64_t ts_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           registry().epoch)
          .count());
  std::lock_guard<std::mutex> lock(buf.mu);  // uncontended except at export
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(TraceEvent{name, ts_ns, phase});
}

}  // namespace

void set_trace_enabled(bool on) {
#if IHBD_OBS
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

namespace detail {

void span_begin(const char* name) { record(name, 'B'); }
void span_end(const char* name) { record(name, 'E'); }

}  // namespace detail

std::string trace_json() {
  TraceRegistry& reg = registry();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    for (const TraceEvent& e : buf->events) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":";
      json_append_string(out, e.name);
      out += ",\"cat\":\"ihbd\",\"ph\":\"";
      out += e.phase;
      out += "\",\"ts\":";
      // Chrome trace-event timestamps are microseconds.
      json_append_number(out, static_cast<double>(e.ts_ns) / 1000.0);
      out += ",\"pid\":0,\"tid\":";
      json_append_number(out, static_cast<std::uint64_t>(buf->tid));
      out += '}';
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_trace_json(const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "obs: cannot write trace to '%s'\n", path.c_str());
    return false;
  }
  const std::string json = trace_json();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  return file.good();
}

void clear_trace() {
  TraceRegistry& reg = registry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
}

std::uint64_t trace_dropped() {
  TraceRegistry& reg = registry();
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

}  // namespace ihbd::obs
