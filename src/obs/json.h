// Minimal JSON emission helpers shared by the observability layer (metrics
// snapshots, trace-event export). Emission only — the repo has no JSON
// consumer; CI validates the artifacts with a stock python parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ihbd::obs {

/// Append `s` as a quoted JSON string literal (escaping quotes, backslashes
/// and control characters).
void json_append_string(std::string& out, std::string_view s);

/// Append a JSON number. Finite doubles render with the shortest decimal
/// form that round-trips to the same bits (so snapshot -> JSON -> snapshot
/// is lossless); non-finite values render as null (JSON has no NaN/inf).
void json_append_number(std::string& out, double v);
void json_append_number(std::string& out, std::uint64_t v);

}  // namespace ihbd::obs
