// Scoped span tracing with Chrome trace-event / Perfetto JSON export.
//
//   obs::set_trace_enabled(true);
//   { IHBD_TRACE_SPAN("replay_window"); ...work... }   // RAII begin/end
//   obs::write_trace_json("trace.json");               // open in Perfetto
//
// Spans record paired B/E (begin/end) events into per-thread buffers: the
// recording path takes the calling thread's own (uncontended) buffer mutex
// and a steady_clock read — no cross-thread traffic until export. Disabled
// (the default), IHBD_TRACE_SPAN costs one relaxed load + branch; with
// IHBD_OBS=0 it compiles away entirely.
//
// Span names must be string literals (or otherwise outlive the process):
// only the pointer is recorded. Nesting comes from scoping — inner spans
// close before outer ones, so every thread's event stream is balanced and
// its timestamps are monotonic (both CI-checked properties).
//
// The export is the Chrome trace-event "JSON object format":
// {"traceEvents":[{"name":...,"ph":"B"|"E","ts":<us>,"pid":0,"tid":N}]},
// loadable directly in https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"  // IHBD_OBS + the enabled-flag plumbing

namespace ihbd::obs {

/// Whether IHBD_TRACE_SPAN records anything. One relaxed load.
inline bool trace_enabled() {
#if IHBD_OBS
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Turn span recording on/off (off by default; no-op under IHBD_OBS=0).
void set_trace_enabled(bool on);

namespace detail {
void span_begin(const char* name);
void span_end(const char* name);
}  // namespace detail

/// RAII span: records B at construction (if tracing is enabled) and the
/// matching E at destruction. The E is emitted iff the B was, so streams
/// stay balanced even when tracing is toggled mid-span.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      detail::span_begin(name);
    }
  }
  ~SpanGuard() {
    if (name_ != nullptr) detail::span_end(name_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_ = nullptr;
};

/// Serialize every buffered event (all threads, per-thread order) as
/// Chrome trace-event JSON. Safe while spans are still being recorded,
/// but an in-flight span contributes only its B until it closes.
std::string trace_json();

/// trace_json() to a file; false (with a stderr note) if unwritable.
bool write_trace_json(const std::string& path);

/// Drop every buffered event (thread buffers stay registered).
void clear_trace();

/// Events discarded because a thread hit its buffer cap (bounded memory
/// beats silent unbounded growth; nonzero means the trace is truncated).
std::uint64_t trace_dropped();

}  // namespace ihbd::obs

#define IHBD_OBS_CONCAT2(a, b) a##b
#define IHBD_OBS_CONCAT(a, b) IHBD_OBS_CONCAT2(a, b)

#if IHBD_OBS
/// Scoped trace span; `name` must be a string literal.
#define IHBD_TRACE_SPAN(name) \
  ::ihbd::obs::SpanGuard IHBD_OBS_CONCAT(ihbd_trace_span_, __LINE__)(name)
#else
#define IHBD_TRACE_SPAN(name) static_cast<void>(0)
#endif
