// Low-overhead runtime metrics for the scheduler / sweep / replay stack.
//
// Design goals, in priority order:
//   1. NEVER perturb results. Instrumented code records wall time and event
//      counts only; every bench table/CSV is byte-identical with metrics on
//      or off (CI diffs them).
//   2. Near-zero cost when disabled (the default): every handle operation
//      starts with one relaxed atomic load + branch, nothing else. Defining
//      IHBD_OBS=0 at compile time folds even that branch away.
//   3. Lock-free and TSan-clean on the hot path when enabled: handles write
//      cache-line-padded per-thread-sharded atomic slots (threads hash to a
//      shard by a dense thread index); scraping merges the shards.
//
// Handles:
//   * Counter   — monotonically increasing uint64 (events, nanoseconds).
//   * Gauge     — last-written double (queue depth, epoch).
//   * Histogram — base-2 exponential buckets over positive doubles, plus
//                 sum and count. One universal bucket layout (2^-32..2^31)
//                 keeps every histogram mergeable with every snapshot.
//
// Handles are interned by name in a process-wide registry:
//
//   obs::Counter& flips = obs::counter("replay.flips_applied");
//   flips.add(n);                       // no-op unless obs::set_enabled(true)
//
// The registry lookup takes a mutex — resolve handles once (constructor,
// static) and keep the reference; references stay valid for the process
// lifetime. Names are shared across instances (two ThreadPools both bump
// "pool.tasks_executed"): metrics are fleet aggregates, not per-object.
//
// obs::snapshot() merges all shards into a MetricsSnapshot — a plain value
// type that itself merges associatively (counters/histograms add, gauges
// right-win), serializes to JSON, and is the intended wire format for
// shard state in future distributed sweeps (ROADMAP).
#pragma once

#ifndef IHBD_OBS
#define IHBD_OBS 1  ///< 0 compiles all instrumentation down to no-ops
#endif

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ihbd {
class Table;
}  // namespace ihbd

namespace ihbd::serde {
class Writer;
class Reader;
}  // namespace ihbd::serde

namespace ihbd::obs {

namespace detail {
#if IHBD_OBS
inline std::atomic<bool> g_metrics_enabled{false};
inline std::atomic<bool> g_trace_enabled{false};
#endif
/// Small dense index of the calling thread (assigned on first use); used to
/// pick a metric shard. Distinct from std::thread::id: consecutive values
/// spread the pool's workers across distinct shards.
std::size_t thread_index();
}  // namespace detail

/// Whether metric handles record anything. One relaxed load — callers on
/// hot paths may also cache the result across a batch of updates.
inline bool enabled() {
#if IHBD_OBS
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Turn metric recording on/off (off by default; no-op under IHBD_OBS=0).
/// Toggling does not clear recorded values — see reset().
void set_enabled(bool on);

inline constexpr std::size_t kMetricShards = 16;
inline constexpr std::size_t kHistogramBuckets = 64;

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::thread_index() % kMetricShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  /// Sum over shards (relaxed; exact once writers are quiescent).
  std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-written value (queue depths, epochs). Concurrent writers race
/// benignly: some write wins, which is all a sampled gauge promises.
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Exponential histogram: bucket b holds observations in
/// (2^(b-33), 2^(b-32)] for b in [1, 63); bucket 0 holds non-positive and
/// tiny values, bucket 63 everything above 2^30. NaN observations are
/// dropped (they fit no bucket and would poison the sum).
class Histogram {
 public:
  void observe(double x);
  std::uint64_t count() const;
  double sum() const;  ///< relaxed shard adds: FP order is unspecified
  /// Count in one bucket, summed over shards.
  std::uint64_t bucket_count(std::size_t bucket) const;
  void reset();

  static std::size_t bucket_of(double x);
  /// Inclusive upper bound of a bucket (+inf for the last).
  static double bucket_upper_bound(std::size_t bucket);

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> counts[kHistogramBuckets];
    std::atomic<double> sum{0.0};
  };
  Shard shards_[kMetricShards];
};

/// Intern a handle by name (create on first use). Thread-safe; the
/// reference is valid for the process lifetime. A name must keep one kind:
/// re-requesting it as a different kind aborts.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Merged view of one histogram: total count/sum plus the non-empty
/// buckets as (inclusive upper bound, count), ascending.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<std::pair<double, std::uint64_t>> buckets;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// Point-in-time merged view of every registered metric. A plain value:
/// serializable, mergeable, comparable. merge() is associative — counters
/// and histogram buckets add, gauges take the right (later) operand — so
/// partial snapshots from many shards/processes can be tree-reduced in any
/// grouping as long as their order is preserved (the planned wire format
/// for distributed-sweep shard state).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Fold `later` into this snapshot (this = this ⊕ later).
  void merge(const MetricsSnapshot& later);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{"count":..,
  /// "sum":..,"buckets":[[le,n],...]}}} — keys sorted (std::map order).
  std::string to_json() const;

  /// Binary codec (serde): the wire format for distributed-sweep shard
  /// state — checkpoints carry a snapshot so counters survive a worker
  /// kill, and sweepd workers publish per-owner snapshots that the
  /// coordinator merge()s into one fleet metrics.json. save -> load is
  /// exact (doubles travel by bit pattern).
  void save(serde::Writer& w) const;
  static MetricsSnapshot load(serde::Reader& r);

  /// Human-readable table (one row per metric) for --metrics output.
  Table to_table() const;
};

/// Scrape every registered metric (merging shards). Safe while writers run:
/// values are relaxed-atomic reads, exact once writers are quiescent.
MetricsSnapshot snapshot();

/// Zero every registered metric (tests / repeated bench sections).
void reset();

}  // namespace ihbd::obs
