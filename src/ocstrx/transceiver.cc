#include "src/ocstrx/transceiver.h"

#include "src/common/contracts.h"

namespace ihbd::ocstrx {

Transceiver::Transceiver(std::uint32_t id, const TrxConfig& config)
    : id_(id), config_(config), matrix_(config.matrix) {
  IHBD_EXPECTS(config.line_rate_gbps > 0.0);
  IHBD_EXPECTS(config.serdes_pairs > 0);
}

double Transceiver::bandwidth_gbps(OcsPath path) const {
  if (state_ == TrxState::kActive && active_ && *active_ == path)
    return config_.line_rate_gbps;
  return 0.0;
}

double Transceiver::switch_latency_s(Rng& rng, bool preloaded) const {
  double latency = matrix_.sample_reconfig_latency_s(rng);
  if (!preloaded) latency += config_.control_plane_latency_s;
  return latency;
}

bool Transceiver::reconfigure(evsim::Engine& engine, OcsPath path, Rng& rng,
                              bool preloaded, std::function<void()> done) {
  if (state_ == TrxState::kFailed || state_ == TrxState::kReconfiguring)
    return false;
  if (state_ == TrxState::kActive && active_ && *active_ == path) {
    if (done) engine.schedule_in(0.0, [d = std::move(done)](evsim::Engine&) {
      d();
    });
    return true;
  }
  state_ = TrxState::kReconfiguring;
  active_.reset();
  const double latency = switch_latency_s(rng, preloaded);
  const std::uint64_t epoch = epoch_;
  engine.schedule_in(latency, [this, path, epoch,
                               d = std::move(done)](evsim::Engine&) {
    if (epoch != epoch_) return;  // failed mid-flight; drop the completion
    state_ = TrxState::kActive;
    active_ = path;
    ++reconfig_count_;
    if (d) d();
  });
  return true;
}

std::optional<double> Transceiver::reconfigure_now(OcsPath path, Rng& rng,
                                                   bool preloaded) {
  if (state_ == TrxState::kFailed) return std::nullopt;
  if (state_ == TrxState::kActive && active_ && *active_ == path) return 0.0;
  const double latency = switch_latency_s(rng, preloaded);
  state_ = TrxState::kActive;
  active_ = path;
  ++reconfig_count_;
  return latency;
}

void Transceiver::fail() {
  state_ = TrxState::kFailed;
  active_.reset();
  ++epoch_;
}

void Transceiver::repair() {
  if (state_ == TrxState::kFailed) {
    state_ = TrxState::kIdle;
    ++epoch_;
  }
}

}  // namespace ihbd::ocstrx
