#include "src/ocstrx/reconfig_queue.h"

namespace ihbd::ocstrx {

bool ReconfigQueue::enqueue(int node, const std::string& session, double now) {
  const auto it = by_node_.find(node);
  if (it != by_node_.end()) {
    // Coalesce: retarget the queued request, keep its position and its
    // original enqueue time (the oldest waiter defines the wait).
    it->second->session = session;
    ++coalesced_;
    return false;
  }
  queue_.push_back(ReconfigRequest{node, session, now});
  by_node_.emplace(node, std::prev(queue_.end()));
  ++enqueued_;
  return true;
}

std::vector<ReconfigOutcome> ReconfigQueue::drain_batch(
    std::vector<NodeFabricManager>& fleet, double now, Rng& rng) {
  std::vector<ReconfigOutcome> out;
  while (!queue_.empty() && out.size() < max_batch_) {
    ReconfigOutcome oc;
    oc.request = std::move(queue_.front());
    oc.drained_at = now;
    by_node_.erase(oc.request.node);
    queue_.pop_front();
    if (oc.request.node >= 0 &&
        oc.request.node < static_cast<int>(fleet.size())) {
      oc.switch_latency_s =
          fleet[static_cast<std::size_t>(oc.request.node)].apply_session(
              oc.request.session, rng);
    }
    ++drained_;
    if (!oc.ok()) ++failed_;
    out.push_back(std::move(oc));
  }
  return out;
}

}  // namespace ihbd::ocstrx
