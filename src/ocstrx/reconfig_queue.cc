#include "src/ocstrx/reconfig_queue.h"

#include <algorithm>
#include <cmath>

namespace ihbd::ocstrx {

double RetryPolicy::backoff_for(int failed_attempts) const {
  double b = base_backoff;
  for (int i = 1; i < failed_attempts && b < max_backoff; ++i)
    b *= backoff_factor;
  return std::min(b, max_backoff);
}

bool ReconfigQueue::enqueue(int node, const std::string& session, double now) {
  const auto it = by_node_.find(node);
  if (it != by_node_.end()) {
    // Coalesce: retarget the queued request, keep its position and its
    // original enqueue time (the oldest waiter defines the wait). A
    // backing-off request also gets a fresh attempt budget — the intent is
    // new even though the node's backoff slot is not.
    it->second.it->session = session;
    if (it->second.in_retry) it->second.it->attempts = 0;
    ++coalesced_;
    return false;
  }
  ready_.push_back(ReconfigRequest{node, session, now, 0, now});
  by_node_.emplace(node, Slot{false, std::prev(ready_.end())});
  ++enqueued_;
  return true;
}

std::optional<double> ReconfigQueue::next_retry_at() const {
  if (retry_.empty()) return std::nullopt;
  return retry_.front().not_before;
}

std::vector<ReconfigOutcome> ReconfigQueue::drain_batch(
    std::vector<NodeFabricManager>& fleet, double now, Rng& rng) {
  // Due retries rejoin the FIFO tail in deadline order before the batch is
  // cut, so a recovered request competes fairly with fresh arrivals.
  while (!retry_.empty() && retry_.front().not_before <= now) {
    const int node = retry_.front().node;
    ready_.splice(ready_.end(), retry_, retry_.begin());
    by_node_[node] = Slot{false, std::prev(ready_.end())};
  }

  std::vector<ReconfigOutcome> out;
  while (!ready_.empty() && out.size() < max_batch_) {
    ReconfigOutcome oc;
    oc.request = std::move(ready_.front());
    oc.drained_at = now;
    by_node_.erase(oc.request.node);
    ready_.pop_front();
    ++oc.request.attempts;

    const bool in_range = oc.request.node >= 0 &&
                          oc.request.node < static_cast<int>(fleet.size());
    auto* fm = in_range
                   ? &fleet[static_cast<std::size_t>(oc.request.node)]
                   : nullptr;
    if (fm == nullptr || !fm->has_session(oc.request.session)) {
      // A malformed request stays malformed: fail it permanently instead
      // of burning the retry budget.
      oc.permanent = true;
      ++failed_;
      ++drained_;
    } else {
      if (inject_.should_fail(oc.request.node, inject_seq_++)) {
        oc.injected = true;
        ++injected_;
      } else {
        oc.switch_latency_s = fm->apply_session(oc.request.session, rng);
      }
      if (oc.ok()) {
        ++drained_;
      } else {
        ++failed_;
        if (oc.request.attempts >= policy_.max_attempts) {
          oc.dead_lettered = true;
          dead_.push_back(oc.request);
          ++dead_lettered_;
          ++drained_;
        } else {
          oc.will_retry = true;
          ReconfigRequest again = oc.request;
          again.not_before = now + policy_.backoff_for(again.attempts);
          // Stable insert by deadline: behind every request due no later.
          auto pos = retry_.end();
          while (pos != retry_.begin() &&
                 std::prev(pos)->not_before > again.not_before) {
            --pos;
          }
          const auto ins = retry_.insert(pos, std::move(again));
          by_node_[oc.request.node] = Slot{true, ins};
          ++retried_;
        }
      }
    }
    out.push_back(std::move(oc));
  }
  return out;
}

}  // namespace ihbd::ocstrx
