// OCSTrx: the Silicon-Photonics OCS transceiver (paper §4.1, Design 1).
//
// An OCSTrx embeds the OCS switch matrix inside a QSFP-DD 800G transceiver.
// It exposes three Tx/Rx paths - two external (primary/backup neighbor) and
// one cross-lane internal loopback - with time-division bandwidth
// allocation: exactly one path carries the full GPU bandwidth at any time,
// and switching between paths costs the 60-80 us hardware reconfiguration
// latency (plus control-plane latency unless the target session was
// preloaded; see FastSwitchController).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "src/common/rng.h"
#include "src/evsim/engine.h"
#include "src/phy/switch_matrix.h"

namespace ihbd::ocstrx {

using phy::OcsPath;

/// Lifecycle state of one OCSTrx module.
enum class TrxState {
  kIdle,           ///< powered, no path activated (dark)
  kActive,         ///< one path carrying traffic
  kReconfiguring,  ///< switch matrix mid-flight; no path carries traffic
  kFailed,         ///< module failure (manifests as a regular transceiver
                   ///< failure - no new failure patterns, per the paper)
};

/// Static description of one OCSTrx module.
struct TrxConfig {
  double line_rate_gbps = 800.0;   ///< QSFP-DD 800G
  int serdes_pairs = 8;            ///< 8x112G electrical lanes
  phy::SwitchMatrixParams matrix;  ///< OCS physics
  /// Control-plane latency added when the target configuration was NOT
  /// preloaded (software/session setup; the paper's fast-switch mechanism
  /// removes this). ASSUMPTION: 500 us, consistent with "software-level
  /// delays such as reconnection at the network protocol layer" being
  /// excluded from the 60-80 us figure.
  double control_plane_latency_s = 500e-6;
};

/// One OCS transceiver. Reconfiguration is modelled on the discrete-event
/// engine; a synchronous helper is provided for analytic callers.
class Transceiver {
 public:
  Transceiver(std::uint32_t id, const TrxConfig& config = {});

  std::uint32_t id() const { return id_; }
  TrxState state() const { return state_; }
  const TrxConfig& config() const { return config_; }

  /// Currently active path (empty unless state()==kActive).
  std::optional<OcsPath> active_path() const { return active_; }

  /// Bandwidth currently deliverable on `path` in Gbit/s: the full line rate
  /// if that path is active, 0 otherwise (time-division allocation - no
  /// splitting across paths, per §4.1 Design 1).
  double bandwidth_gbps(OcsPath path) const;

  /// True if the module can carry traffic (not failed).
  bool healthy() const { return state_ != TrxState::kFailed; }

  /// --- Event-driven reconfiguration -------------------------------------
  /// Begin switching to `path`. Completion fires `done` on the engine after
  /// the hardware latency (plus control-plane latency unless `preloaded`).
  /// During the switch no path carries traffic. No-op (immediate `done`)
  /// if `path` is already active. Returns false if the module has failed or
  /// a reconfiguration is already in flight.
  bool reconfigure(evsim::Engine& engine, OcsPath path, Rng& rng,
                   bool preloaded, std::function<void()> done = {});

  /// --- Synchronous helper ------------------------------------------------
  /// Switch immediately and return the latency the switch would have taken
  /// (seconds). Returns std::nullopt if failed.
  std::optional<double> reconfigure_now(OcsPath path, Rng& rng,
                                        bool preloaded = true);

  /// Inject / clear a module failure.
  void fail();
  void repair();

  /// Count of completed reconfigurations (telemetry).
  std::uint64_t reconfig_count() const { return reconfig_count_; }

  /// Physics access (loss / power / BER live in phy).
  const phy::OcsSwitchMatrix& matrix() const { return matrix_; }

 private:
  double switch_latency_s(Rng& rng, bool preloaded) const;

  std::uint32_t id_;
  TrxConfig config_;
  phy::OcsSwitchMatrix matrix_;
  TrxState state_ = TrxState::kIdle;
  std::optional<OcsPath> active_;
  std::uint64_t reconfig_count_ = 0;
  std::uint64_t epoch_ = 0;  ///< invalidates in-flight completions on fail()
};

}  // namespace ihbd::ocstrx
