#include "src/ocstrx/fabric_manager.h"

#include <algorithm>

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::ocstrx {

NodeFabricManager::NodeFabricManager(int gpus, int bundles,
                                     int trx_per_bundle,
                                     const TrxConfig& trx_config)
    : gpus_(gpus) {
  if (gpus < 2) throw ConfigError("node needs at least 2 GPUs");
  if (bundles < 1 || bundles > gpus)
    throw ConfigError("bundle count must be in [1, gpus]");
  if (trx_per_bundle < 1) throw ConfigError("trx_per_bundle must be >= 1");
  bundles_.reserve(static_cast<std::size_t>(bundles));
  for (int b = 0; b < bundles; ++b) {
    bundles_.emplace_back(static_cast<std::uint32_t>(b), b, (b + 1) % gpus,
                          trx_per_bundle, trx_config);
  }
}

void NodeFabricManager::preload_session(const std::string& name,
                                        Session session) {
  preloaded_[name] = std::move(session);
}

bool NodeFabricManager::has_session(const std::string& name) const {
  return preloaded_.count(name) > 0;
}

std::optional<double> NodeFabricManager::apply_session(const std::string& name,
                                                       Rng& rng) {
  auto it = preloaded_.find(name);
  if (it == preloaded_.end()) return std::nullopt;
  return apply(it->second, rng, /*preloaded=*/true);
}

std::optional<double> NodeFabricManager::apply_adhoc(const Session& session,
                                                     Rng& rng) {
  return apply(session, rng, /*preloaded=*/false);
}

std::optional<double> NodeFabricManager::apply(const Session& session,
                                               Rng& rng, bool preloaded) {
  double worst = 0.0;
  for (const auto& [bundle_id, path] : session) {
    if (bundle_id >= bundles_.size()) return std::nullopt;
    auto latency = bundles_[bundle_id].steer(path, rng, preloaded);
    if (!latency) return std::nullopt;
    worst = std::max(worst, *latency);
  }
  return worst;
}

void NodeFabricManager::park_all_loopback(Rng& rng) {
  for (auto& b : bundles_) {
    if (b.healthy()) b.steer(OcsPath::kLoopback, rng, /*preloaded=*/true);
  }
}

double NodeFabricManager::external_bandwidth_gbps() const {
  double total = 0.0;
  for (const auto& b : bundles_) {
    total += b.bandwidth_gbps(OcsPath::kExternal1) +
             b.bandwidth_gbps(OcsPath::kExternal2);
  }
  return total;
}

bool NodeFabricManager::healthy() const {
  return std::all_of(bundles_.begin(), bundles_.end(),
                     [](const Bundle& b) { return b.healthy(); });
}

}  // namespace ihbd::ocstrx
