// Batched OCS reconfiguration queue (control-plane side of §5.2 / G.1).
//
// The always-on control plane does not steer bundles synchronously: every
// placement change (job start, fault re-orchestration, repair) enqueues a
// per-node reconfiguration request — "apply preloaded session S on node n"
// — and a drain event applies a FIFO batch against the node fabric
// managers. Three properties matter at fleet scale:
//
//   * COALESCING: while a request for node n is still queued (ready or
//     backing off), a newer request for n replaces its target session in
//     place. The node switches once, to the latest target, but the request
//     keeps its original queue position and enqueue time — whoever started
//     waiting first has been waiting since then, and that wait is what the
//     ctrl.reconfig_latency histogram must see. Retargeting a backing-off
//     request resets its attempt budget (it is a new intent) but keeps its
//     backoff slot: the node's hardware is still the one that just failed.
//   * BATCHING: drain_batch() pops at most `max_batch` requests per call,
//     modelling a fabric-manager RPC fan-out budget per drain tick; the
//     control plane re-arms drain events while the queue stays non-empty.
//   * RETRY WITH BACKOFF: a transiently failed attempt (failed bundle
//     hardware, or an injected fault from fault::InjectionPlan) re-queues
//     the request with capped exponential backoff; after
//     RetryPolicy::max_attempts the request moves to a dead-letter list
//     for operator escalation. Unknown sessions and out-of-range nodes are
//     PERMANENT failures: retrying cannot fix a request that was wrong, so
//     they resolve (as failed) on the first attempt.
//
// The queue itself is pure bookkeeping (deterministic, no engine or obs
// dependency); src/ctrl owns the drain cadence and the metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/fault/injection.h"
#include "src/ocstrx/fabric_manager.h"

namespace ihbd::ocstrx {

/// One queued "apply session on node" request.
struct ReconfigRequest {
  int node = 0;
  std::string session;
  double enqueued_at = 0.0;  ///< caller's clock (the ctrl plane uses days)
  int attempts = 0;          ///< apply attempts consumed (incl. current)
  double not_before = 0.0;   ///< earliest next attempt (retry backoff)
};

/// Capped exponential backoff for transiently failed reconfigurations.
/// Times are in the caller's clock units; the defaults assume DAYS (the
/// ctrl plane's unit) and spell 2 s .. 64 s.
struct RetryPolicy {
  int max_attempts = 6;  ///< total attempts before dead-lettering
  double base_backoff = 2.0 / 86400.0;   ///< delay after the 1st failure
  double backoff_factor = 2.0;           ///< growth per further failure
  double max_backoff = 64.0 / 86400.0;   ///< backoff cap

  /// Backoff after `failed_attempts` consecutive failures (>= 1):
  /// min(base * factor^(failed_attempts-1), max).
  double backoff_for(int failed_attempts) const;
};

/// Outcome of one drained attempt. Exactly one of these holds per attempt;
/// an attempt is RESOLVED (success, permanent failure, or dead-letter)
/// unless `will_retry` is set, in which case the request is still queued
/// and a later drain produces its next outcome.
struct ReconfigOutcome {
  ReconfigRequest request;  ///< attempts = attempts consumed so far
  double drained_at = 0.0;
  /// Node-level hardware switch latency in seconds (preloaded fast path),
  /// or nullopt when the attempt failed.
  std::optional<double> switch_latency_s;
  bool injected = false;       ///< failure came from the InjectionPlan
  bool permanent = false;      ///< unknown session / node out of range
  bool will_retry = false;     ///< re-queued with backoff; NOT resolved
  bool dead_lettered = false;  ///< gave up after max_attempts

  bool ok() const { return switch_latency_s.has_value(); }
  bool resolved() const { return !will_retry; }
};

/// FIFO reconfiguration queue with per-node coalescing, batched drains and
/// capped-exponential retry of transient failures.
class ReconfigQueue {
 public:
  explicit ReconfigQueue(std::size_t max_batch = 64, RetryPolicy retry = {},
                         fault::InjectionPlan inject = {})
      : max_batch_(max_batch), policy_(retry), inject_(inject) {}

  /// Queue (or coalesce) a request for `node`. Returns true when a new
  /// entry was created, false when an in-queue request was coalesced.
  bool enqueue(int node, const std::string& session, double now);

  /// Requests not yet resolved: ready to drain plus backing off.
  std::size_t pending() const { return ready_.size() + retry_.size(); }
  bool empty() const { return ready_.empty() && retry_.empty(); }
  std::size_t ready() const { return ready_.size(); }
  std::size_t retrying() const { return retry_.size(); }
  std::size_t max_batch() const { return max_batch_; }
  const RetryPolicy& policy() const { return policy_; }

  /// Earliest backoff deadline among backing-off requests.
  std::optional<double> next_retry_at() const;

  /// Lifetime counters (monotonic). `drained` counts RESOLVED requests
  /// (success, permanent failure, dead-letter); `failed` counts failed
  /// apply attempts (including ones that were later retried to success);
  /// `retried` counts re-queues; `injected` counts InjectionPlan hits.
  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t coalesced() const { return coalesced_; }
  std::uint64_t drained() const { return drained_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t retried() const { return retried_; }
  std::uint64_t dead_lettered() const { return dead_lettered_; }
  std::uint64_t injected() const { return injected_; }

  /// Requests that exhausted their attempt budget, in give-up order.
  const std::vector<ReconfigRequest>& dead_letters() const { return dead_; }

  /// Pop up to max_batch() due requests in FIFO order (backed-off requests
  /// whose deadline has passed rejoin the FIFO first, in deadline order)
  /// and apply each to its node's fabric manager (preloaded fast path).
  /// `fleet` is indexed by node id. One outcome per attempt.
  std::vector<ReconfigOutcome> drain_batch(std::vector<NodeFabricManager>& fleet,
                                           double now, Rng& rng);

 private:
  /// Where a node's queued request lives (a node has at most one).
  struct Slot {
    bool in_retry = false;
    std::list<ReconfigRequest>::iterator it;
  };

  std::size_t max_batch_;
  RetryPolicy policy_;
  fault::InjectionPlan inject_;
  std::list<ReconfigRequest> ready_;  ///< FIFO, due now
  std::list<ReconfigRequest> retry_;  ///< sorted by not_before (stable)
  std::unordered_map<int, Slot> by_node_;
  std::vector<ReconfigRequest> dead_;
  std::uint64_t inject_seq_ = 0;  ///< per-attempt injection sequence
  std::uint64_t enqueued_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t drained_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retried_ = 0;
  std::uint64_t dead_lettered_ = 0;
  std::uint64_t injected_ = 0;
};

}  // namespace ihbd::ocstrx
