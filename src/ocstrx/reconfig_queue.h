// Batched OCS reconfiguration queue (control-plane side of §5.2 / G.1).
//
// The always-on control plane does not steer bundles synchronously: every
// placement change (job start, fault re-orchestration, repair) enqueues a
// per-node reconfiguration request — "apply preloaded session S on node n"
// — and a drain event applies a FIFO batch against the node fabric
// managers. Two properties matter at fleet scale:
//
//   * COALESCING: while a request for node n is still queued, a newer
//     request for n replaces its target session in place. The node
//     switches once, to the latest target, but the request keeps its
//     original queue position and enqueue time — whoever started waiting
//     first has been waiting since then, and that wait is what the
//     ctrl.reconfig_latency histogram must see.
//   * BATCHING: drain_batch() pops at most `max_batch` requests per call,
//     modelling a fabric-manager RPC fan-out budget per drain tick; the
//     control plane re-arms drain events while the queue stays non-empty.
//
// The queue itself is pure bookkeeping (deterministic, no engine or obs
// dependency); src/ctrl owns the drain cadence and the metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/ocstrx/fabric_manager.h"

namespace ihbd::ocstrx {

/// One queued "apply session on node" request.
struct ReconfigRequest {
  int node = 0;
  std::string session;
  double enqueued_at = 0.0;  ///< caller's clock (the ctrl plane uses days)
};

/// Outcome of one drained request.
struct ReconfigOutcome {
  ReconfigRequest request;
  double drained_at = 0.0;
  /// Node-level hardware switch latency in seconds (preloaded fast path),
  /// or nullopt when the session was unknown / a touched bundle had failed.
  std::optional<double> switch_latency_s;

  bool ok() const { return switch_latency_s.has_value(); }
};

/// FIFO reconfiguration queue with per-node coalescing and batched drains.
class ReconfigQueue {
 public:
  explicit ReconfigQueue(std::size_t max_batch = 64) : max_batch_(max_batch) {}

  /// Queue (or coalesce) a request for `node`. Returns true when a new
  /// entry was created, false when an in-queue request was coalesced.
  bool enqueue(int node, const std::string& session, double now);

  std::size_t pending() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  std::size_t max_batch() const { return max_batch_; }

  /// Lifetime counters (monotonic).
  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t coalesced() const { return coalesced_; }
  std::uint64_t drained() const { return drained_; }
  std::uint64_t failed() const { return failed_; }

  /// Pop up to max_batch() requests in FIFO order and apply each to its
  /// node's fabric manager (preloaded fast path). `fleet` is indexed by
  /// node id; out-of-range nodes and unknown sessions report !ok().
  std::vector<ReconfigOutcome> drain_batch(std::vector<NodeFabricManager>& fleet,
                                           double now, Rng& rng);

 private:
  std::size_t max_batch_;
  std::list<ReconfigRequest> queue_;
  std::unordered_map<int, std::list<ReconfigRequest>::iterator> by_node_;
  std::uint64_t enqueued_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t drained_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace ihbd::ocstrx
