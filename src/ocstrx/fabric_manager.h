// Node-level control plane (paper §5.2): the *node fabric manager*
// configures individual OCSTrx modules and handles topology switching.
//
// The fast-switch mechanism (Appendix G.1) preloads "Top-Session"
// configurations into the OCSTrx controller so that a later switch pays
// only the 60-80 us hardware latency, not the control-plane latency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/ocstrx/bundle.h"

namespace ihbd::ocstrx {

/// A session: the desired path for each bundle of the node.
/// Bundles absent from the map are left untouched.
using Session = std::map<std::uint32_t, OcsPath>;

/// Per-node fabric manager owning the node's OCSTrx bundles.
class NodeFabricManager {
 public:
  /// Build a manager for a node with `gpus` GPUs and `bundles` OCSTrx
  /// bundles wired per the UBB 2.0 pairing of Fig. 4: bundle b serves the
  /// GPU pair (b, (b+1) mod gpus) with upper/lower half lanes.
  NodeFabricManager(int gpus, int bundles, int trx_per_bundle,
                    const TrxConfig& trx_config = {});

  int gpu_count() const { return gpus_; }
  int bundle_count() const { return static_cast<int>(bundles_.size()); }
  Bundle& bundle(int index) { return bundles_.at(index); }
  const Bundle& bundle(int index) const { return bundles_.at(index); }

  /// Preload a named session into the controller (fast-switch candidate).
  /// Overwrites any session with the same name.
  void preload_session(const std::string& name, Session session);
  bool has_session(const std::string& name) const;

  /// Apply a named preloaded session. Returns the node-level switch latency
  /// (max across touched bundles; hardware-only, since it was preloaded),
  /// or nullopt if the session is unknown or a touched bundle has failed.
  std::optional<double> apply_session(const std::string& name, Rng& rng);

  /// Apply an ad-hoc session (not preloaded: pays control-plane latency).
  std::optional<double> apply_adhoc(const Session& session, Rng& rng);

  /// Steer every healthy bundle to loopback (the idle default: idle OCSTrx
  /// operate in loopback mode, per §4.2).
  void park_all_loopback(Rng& rng);

  /// Aggregate bandwidth the node currently presents on external paths
  /// (Gbit/s), i.e. deliverable HBD bandwidth.
  double external_bandwidth_gbps() const;

  /// True iff all bundles are healthy.
  bool healthy() const;

 private:
  std::optional<double> apply(const Session& session, Rng& rng,
                              bool preloaded);

  int gpus_;
  std::vector<Bundle> bundles_;
  std::map<std::string, Session> preloaded_;
};

}  // namespace ihbd::ocstrx
