#include "src/ocstrx/bundle.h"

#include <algorithm>
#include <memory>

#include "src/common/contracts.h"

namespace ihbd::ocstrx {

Bundle::Bundle(std::uint32_t id, int gpu_upper, int gpu_lower, int trx_count,
               const TrxConfig& trx_config)
    : id_(id), gpu_upper_(gpu_upper), gpu_lower_(gpu_lower) {
  IHBD_EXPECTS(trx_count > 0);
  IHBD_EXPECTS(gpu_upper >= 0 && gpu_lower >= 0 && gpu_upper != gpu_lower);
  trxs_.reserve(static_cast<std::size_t>(trx_count));
  for (int i = 0; i < trx_count; ++i) {
    trxs_.emplace_back(static_cast<std::uint32_t>(id * 64 + i), trx_config);
  }
}

double Bundle::total_line_rate_gbps() const {
  double total = 0.0;
  for (const auto& t : trxs_) total += t.config().line_rate_gbps;
  return total;
}

double Bundle::bandwidth_gbps(OcsPath path) const {
  double total = 0.0;
  for (const auto& t : trxs_) total += t.bandwidth_gbps(path);
  return total;
}

std::optional<double> Bundle::steer(OcsPath path, Rng& rng, bool preloaded) {
  if (!healthy()) return std::nullopt;
  double worst = 0.0;
  for (auto& t : trxs_) {
    auto latency = t.reconfigure_now(path, rng, preloaded);
    if (!latency) return std::nullopt;
    worst = std::max(worst, *latency);
  }
  return worst;
}

bool Bundle::steer_async(evsim::Engine& engine, OcsPath path, Rng& rng,
                         bool preloaded, std::function<void()> done) {
  if (!healthy()) return false;
  // Completion barrier across members.
  auto remaining = std::make_shared<int>(static_cast<int>(trxs_.size()));
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  for (auto& t : trxs_) {
    const bool ok =
        t.reconfigure(engine, path, rng, preloaded, [remaining, shared_done] {
          if (--*remaining == 0 && *shared_done) (*shared_done)();
        });
    if (!ok) return false;
  }
  return true;
}

bool Bundle::healthy() const {
  return std::all_of(trxs_.begin(), trxs_.end(),
                     [](const Transceiver& t) { return t.healthy(); });
}

void Bundle::fail() {
  for (auto& t : trxs_) t.fail();
}

void Bundle::repair() {
  for (auto& t : trxs_) t.repair();
}

void Bundle::fail_one(int index) { trxs_.at(index).fail(); }

}  // namespace ihbd::ocstrx
