// OCSTrx bundles and the intra-node wiring of paper §4.2 / Fig. 4.
//
// A node with R GPUs carries up to R bundles of OCSTrx. Each bundle is a
// group of transceivers (e.g. 8 x 800G for a 6.4 Tbps GPU) wired to a PAIR
// of GPUs: one GPU on the upper-half SerDes lanes, the other on the lower
// half. Activating the bundle's loopback path stitches the two GPUs
// together inside the node (ring construction); activating an external path
// extends the ring to a neighbor node.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/ocstrx/transceiver.h"

namespace ihbd::ocstrx {

/// A bundle of OCSTrx modules serving one GPU pair.
class Bundle {
 public:
  /// `id` is unique within the node; `gpu_upper`/`gpu_lower` are the node-
  /// local GPU indices wired to the upper/lower half lanes.
  Bundle(std::uint32_t id, int gpu_upper, int gpu_lower, int trx_count,
         const TrxConfig& trx_config = {});

  std::uint32_t id() const { return id_; }
  int gpu_upper() const { return gpu_upper_; }
  int gpu_lower() const { return gpu_lower_; }
  int trx_count() const { return static_cast<int>(trxs_.size()); }

  /// Aggregate line rate across member transceivers (Gbit/s).
  double total_line_rate_gbps() const;

  /// Aggregate bandwidth currently deliverable on `path` (Gbit/s): sums
  /// member transceivers whose active path is `path`.
  double bandwidth_gbps(OcsPath path) const;

  /// Synchronously steer every member transceiver to `path`. Returns the
  /// bundle switch latency = max member latency (members switch in
  /// parallel), or nullopt if any member has failed.
  std::optional<double> steer(OcsPath path, Rng& rng, bool preloaded = true);

  /// Event-driven steer: fires `done` when the slowest member completes.
  /// Returns false if any member is failed/busy (no state changed... members
  /// already switched are left pointing at `path`; callers treat a false
  /// return as a fault needing topology-level bypass).
  bool steer_async(evsim::Engine& engine, OcsPath path, Rng& rng,
                   bool preloaded, std::function<void()> done = {});

  /// True iff every member transceiver is healthy.
  bool healthy() const;
  /// Fail / repair the whole bundle (transceiver-level failures manifest
  /// as regular module failures).
  void fail();
  void repair();
  /// Fail exactly one member (partial-bandwidth degradation).
  void fail_one(int index);

  const Transceiver& trx(int index) const { return trxs_.at(index); }
  Transceiver& trx(int index) { return trxs_.at(index); }

 private:
  std::uint32_t id_;
  int gpu_upper_;
  int gpu_lower_;
  std::vector<Transceiver> trxs_;
};

}  // namespace ihbd::ocstrx
