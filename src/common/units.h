// Unit constants and conversions. The codebase stores:
//   bandwidth  : GB/s (bytes)     time : seconds     data size : bytes
//   power      : watts            cost : USD
// These helpers make unit intent explicit at call sites.
#pragma once

namespace ihbd::units {

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// Gbit/s -> GB/s (decimal).
constexpr double gbps_to_GBps(double gbps) { return gbps / 8.0; }
/// GB/s -> Gbit/s.
constexpr double GBps_to_gbps(double gBps) { return gBps * 8.0; }

/// Microseconds -> seconds.
constexpr double us(double v) { return v * 1e-6; }
/// Milliseconds -> seconds.
constexpr double ms(double v) { return v * 1e-3; }
/// Seconds -> microseconds.
constexpr double to_us(double seconds) { return seconds * 1e6; }

/// MiB/GiB in bytes.
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * kMiB;

/// TFLOPS -> FLOP/s.
constexpr double tflops(double v) { return v * 1e12; }

}  // namespace ihbd::units
