#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ihbd {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string Table::to_string() const {
  // Compute column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> w(ncols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      w[c] = std::max(w[c], r[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < ncols; ++c)
      s += std::string(w[c] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& r) {
    std::string s = "|";
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      s += " " + cell + std::string(w[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  os << rule();
  if (!header_.empty()) {
    os << line(header_);
    os << rule();
  }
  for (const auto& r : rows_) os << line(r);
  os << rule();
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    return q + "\"";
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << quote(r[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace ihbd
