#include "src/common/rng.h"

#include <cmath>

#include "src/common/contracts.h"

namespace ihbd {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  IHBD_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  IHBD_EXPECTS(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  IHBD_EXPECTS(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) {
  IHBD_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  IHBD_EXPECTS(sigma >= 0.0);
  return mean + sigma * normal();
}

double Rng::exponential(double lambda) {
  IHBD_EXPECTS(lambda > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double lambda) {
  IHBD_EXPECTS(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's method for small means.
    const double threshold = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > threshold);
    return k - 1;
  }
  // Normal approximation for large means, clamped at zero.
  const double v = normal(lambda, std::sqrt(lambda));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

Rng Rng::fork() { return Rng(next() ^ 0xD1B54A32D192ED03ull); }

namespace {

// Shared jump kernel: advances the state by the subsequence the given
// polynomial encodes (Blackman & Vigna's reference implementation).
void apply_jump(Rng& rng, std::uint64_t (&s)[4],
                const std::uint64_t (&poly)[4]) {
  std::uint64_t t[4] = {0, 0, 0, 0};
  for (const std::uint64_t word : poly) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ull << b)) {
        t[0] ^= s[0];
        t[1] ^= s[1];
        t[2] ^= s[2];
        t[3] ^= s[3];
      }
      rng.next();  // advances s in lockstep
    }
  }
  s[0] = t[0];
  s[1] = t[1];
  s[2] = t[2];
  s[3] = t[3];
}

}  // namespace

void Rng::jump() {
  static constexpr std::uint64_t kJump[4] = {
      0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull, 0xA9582618E03FC9AAull,
      0x39ABDC4529B1661Cull};
  apply_jump(*this, s_, kJump);
  have_spare_normal_ = false;  // the cached Box-Muller spare is stream state
}

void Rng::long_jump() {
  static constexpr std::uint64_t kLongJump[4] = {
      0x76E15D3EFEFDCBBFull, 0xC5004E441C522FB3ull, 0x77710069854EE241ull,
      0x39109BB02ACBE635ull};
  apply_jump(*this, s_, kLongJump);
  have_spare_normal_ = false;
}

}  // namespace ihbd
