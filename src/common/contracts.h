// Lightweight contract macros in the spirit of the C++ Core Guidelines'
// Expects()/Ensures() (I.6, I.8). Violations indicate programmer error and
// terminate with a diagnostic; they are never used for recoverable
// conditions (those throw ihbd::ConfigError instead, see error.h).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ihbd::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "[ihbd] %s violation: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace ihbd::detail

#define IHBD_EXPECTS(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ihbd::detail::contract_violation("precondition", #cond,          \
                                         __FILE__, __LINE__);            \
  } while (false)

#define IHBD_ENSURES(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ihbd::detail::contract_violation("postcondition", #cond,         \
                                         __FILE__, __LINE__);            \
  } while (false)
