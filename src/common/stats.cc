#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/contracts.h"

namespace ihbd {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile_sorted(std::span<const double> sorted, double q) {
  IHBD_EXPECTS(!sorted.empty());
  IHBD_EXPECTS(q >= 0.0 && q <= 100.0);
  if (sorted.size() == 1) return sorted.front();
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double percentile(std::span<const double> xs, double q) {
  IHBD_EXPECTS(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  // One sort serves min/max and all three percentile reads (the old
  // per-percentile copy+sort tripled the dominant cost on large samples).
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile_sorted(sorted, 50.0);
  s.p90 = percentile_sorted(sorted, 90.0);
  s.p99 = percentile_sorted(sorted, 99.0);
  return s;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  std::vector<CdfPoint> cdf;
  if (xs.empty()) return cdf;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  cdf.reserve(sorted.size());
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  IHBD_EXPECTS(bins >= 1);
  IHBD_EXPECTS(lo < hi);
}

void Histogram::add(double x) {
  // NaN compares false against both range guards and would reach the bin
  // cast below with an unrepresentable value (UB); count it separately.
  if (std::isnan(x)) {
    ++nan_count_;
    return;
  }
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
  IHBD_EXPECTS(bin < counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::bin_lo(std::size_t bin) const {
  IHBD_EXPECTS(bin < counts_.size());
  return lo_ + static_cast<double>(bin) * width_;
}

std::string Histogram::to_string(int max_bar) const {
  std::ostringstream os;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%8.3f..%-8.3f %6zu ", bin_lo(b),
                  bin_lo(b) + width_, counts_[b]);
    os << buf;
    const int bar = static_cast<int>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) * max_bar);
    for (int i = 0; i < bar; ++i) os << '#';
    os << '\n';
  }
  return os.str();
}

Summary TimeSeries::summarize_values() const { return summarize(v); }

}  // namespace ihbd
