// Paper-style ASCII table rendering for the bench harness. Each bench prints
// the same rows the paper's tables/figures report; Table handles alignment.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace ihbd {

/// Column-aligned ASCII table with an optional title and header row.
class Table {
 public:
  explicit Table(std::string title = "");

  /// Set the header row. Resets column count.
  void set_header(std::vector<std::string> header);

  /// Append a row; shorter rows are right-padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Convenience: formatted cell helpers.
  static std::string fmt(double v, int precision = 4);
  static std::string pct(double ratio, int precision = 2);  ///< 0.5 -> "50.00%"

  /// Render with box-drawing separators.
  std::string to_string() const;
  /// Render and write to stdout.
  void print() const;
  /// Render as CSV (header + rows, comma-separated, quoted when needed).
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ihbd
