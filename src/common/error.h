// Exception types for recoverable errors (invalid configuration, infeasible
// requests). Programmer errors use the contract macros in contracts.h.
#pragma once

#include <stdexcept>
#include <string>

namespace ihbd {

/// Thrown when a user-supplied configuration is invalid (e.g. a TP size that
/// does not divide the node GPU count, a negative bandwidth).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a request is well-formed but cannot be satisfied by the
/// current cluster state (e.g. a job larger than the healthy capacity).
class InfeasibleError : public std::runtime_error {
 public:
  explicit InfeasibleError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace ihbd
