// Descriptive statistics used throughout the evaluation harness:
// summaries, percentiles, empirical CDFs, histograms and time series.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ihbd {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Compute a Summary over a sample. Empty input yields a zero Summary.
Summary summarize(std::span<const double> xs);

/// Linear-interpolation percentile, q in [0, 100]. Requires non-empty input.
double percentile(std::span<const double> xs, double q);

/// percentile() for input that is already sorted ascending — skips the
/// per-call copy+sort, so one sort can serve many quantile reads (summarize
/// uses this for p50/p90/p99). Requires non-empty input.
double percentile_sorted(std::span<const double> sorted, double q);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cum_prob = 0.0;  ///< P(X <= value)
};

/// Empirical CDF of the sample (sorted values with cumulative probability).
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

/// Fixed-bin histogram.
class Histogram {
 public:
  /// Bins cover [lo, hi) uniformly with half-open [bin_lo, bin_lo + width)
  /// bins; values outside are clamped into the first/last bin (so x == hi,
  /// though outside the nominal half-open range, lands in the last bin).
  /// Requires bins >= 1 and lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Bins `x` as documented above. NaN inputs fit no bin: they are counted
  /// in nan_count() only and excluded from total().
  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  /// Number of binned (non-NaN) values; always the sum over count(bin).
  std::size_t total() const { return total_; }
  /// Number of NaN inputs that were rejected by add().
  std::size_t nan_count() const { return nan_count_; }
  /// Center value of a bin.
  double bin_center(std::size_t bin) const;
  /// Lower edge of a bin.
  double bin_lo(std::size_t bin) const;
  double bin_width() const { return width_; }

  /// Render as a one-line-per-bin ASCII bar chart.
  std::string to_string(int max_bar = 40) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_count_ = 0;
};

/// A (time, value) series, e.g. fault ratio per day.
struct TimeSeries {
  std::vector<double> t;
  std::vector<double> v;

  void push(double time, double value) {
    t.push_back(time);
    v.push_back(value);
  }
  std::size_t size() const { return t.size(); }
  Summary summarize_values() const;
};

}  // namespace ihbd
