// One common codec layer for every serialized artifact in the tree: the
// JSON emission used by the observability exports (metrics snapshots,
// Perfetto traces) and the binary wire format used by the distributed-sweep
// stack (shard checkpoints, shard result files, fleet metrics snapshots).
//
// Binary encoding: little-endian fixed-width integers, IEEE doubles carried
// by bit pattern (save -> load is bit-exact, including NaN payloads and
// infinities), strings and arrays length-prefixed with u64 counts. A
// Reader throws ConfigError on any underflow or malformed length, so a
// truncated buffer can never silently decode into a short value.
//
// Durable files wrap their payload in a versioned, checksummed record frame
// (frame_record / parse_record): magic + version + length + CRC-32. Readers
// get a typed FrameStatus instead of garbage — the checkpoint layer
// (src/runtime/checkpoint.h) uses it to fall back to the previous
// generation when a kill left a torn write behind.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/stats.h"

namespace ihbd::serde {

// --- JSON emission ----------------------------------------------------------

/// Append `s` as a quoted JSON string literal (escaping quotes, backslashes
/// and control characters).
void json_append_string(std::string& out, std::string_view s);

/// Append a JSON number. Finite doubles render with the shortest decimal
/// form that round-trips to the same bits (so snapshot -> JSON -> snapshot
/// is lossless); non-finite values render as null (JSON has no NaN/inf).
void json_append_number(std::string& out, double v);
void json_append_number(std::string& out, std::uint64_t v);

// --- checksums --------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`.
std::uint32_t crc32(std::string_view bytes);

// --- binary codec -----------------------------------------------------------

/// Append-only binary encoder over an owned byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Bit-exact double: the IEEE bit pattern travels as a u64.
  void f64(double v);
  /// u64 length prefix + raw bytes.
  void str(std::string_view s);
  void f64_vec(const std::vector<double>& v);

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Sequential binary decoder over a borrowed byte range. Every accessor
/// throws ConfigError on underflow; decode helpers validate length prefixes
/// against the remaining bytes before allocating.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<double> f64_vec();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Throws ConfigError unless every byte has been consumed — catches a
  /// payload longer than the decoder expects (version skew, corruption).
  void expect_done(std::string_view what) const;

 private:
  std::string_view take(std::size_t n, const char* what);

  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- shared domain codecs ---------------------------------------------------
// TimeSeries and Summary appear in every replay checkpoint/result payload
// (via topo::TraceWasteResult), so their encodings live here with the
// primitives rather than being restated by each consumer.

void write_time_series(Writer& w, const TimeSeries& ts);
TimeSeries read_time_series(Reader& r);

void write_summary(Writer& w, const Summary& s);
Summary read_summary(Reader& r);

// --- versioned, checksummed record frame ------------------------------------

enum class FrameStatus {
  ok,
  truncated,     ///< shorter than the header or the declared payload
  bad_magic,     ///< not the expected file kind
  bad_version,   ///< produced by an incompatible writer
  bad_checksum,  ///< payload bytes do not match the recorded CRC-32
};
const char* to_string(FrameStatus status);

/// Wrap `payload` in a frame: magic(u32) version(u32) length(u64)
/// crc32(u32) payload-bytes.
std::string frame_record(std::uint32_t magic, std::uint32_t version,
                         std::string_view payload);

/// Parse a frame produced by frame_record. On ok, *payload views into
/// `bytes` (valid while `bytes` lives). Trailing bytes after the declared
/// payload are rejected as truncated/torn writes would be.
FrameStatus parse_record(std::string_view bytes, std::uint32_t magic,
                         std::uint32_t version, std::string_view* payload);

// --- file IO ----------------------------------------------------------------

/// Write `bytes` to `path` atomically: a unique temp file in the same
/// directory, then rename over the target. Readers never observe a torn
/// file (they see the old content or the new, not a mix).
bool write_file_atomic(const std::string& path, std::string_view bytes);

/// Read a whole file; nullopt when it does not exist or cannot be read.
std::optional<std::string> read_file(const std::string& path);

}  // namespace ihbd::serde
