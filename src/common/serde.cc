#include "src/common/serde.h"

#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "src/common/error.h"

namespace ihbd::serde {

// --- JSON emission ----------------------------------------------------------

void json_append_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  // Shortest representation that round-trips: try increasing precision.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void json_append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

// --- checksums --------------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- binary codec -----------------------------------------------------------

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Writer::str(std::string_view s) {
  u64(s.size());
  buf_.append(s.data(), s.size());
}

void Writer::f64_vec(const std::vector<double>& v) {
  u64(v.size());
  for (const double x : v) f64(x);
}

std::string_view Reader::take(std::size_t n, const char* what) {
  if (n > data_.size() - pos_) {
    throw ConfigError(std::string("serde: truncated input reading ") + what);
  }
  const std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t Reader::u8() {
  return static_cast<std::uint8_t>(take(1, "u8")[0]);
}

std::uint32_t Reader::u32() {
  const std::string_view b = take(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t Reader::u64() {
  const std::string_view b = take(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  }
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Reader::str() {
  const std::uint64_t n = u64();
  if (n > remaining()) {
    throw ConfigError("serde: string length exceeds remaining bytes");
  }
  return std::string(take(static_cast<std::size_t>(n), "string body"));
}

std::vector<double> Reader::f64_vec() {
  const std::uint64_t n = u64();
  if (n > remaining() / 8) {
    throw ConfigError("serde: array length exceeds remaining bytes");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(f64());
  return out;
}

void Reader::expect_done(std::string_view what) const {
  if (!done()) {
    throw ConfigError("serde: " + std::string(what) + ": " +
                      std::to_string(remaining()) + " trailing bytes");
  }
}

// --- shared domain codecs ---------------------------------------------------

void write_time_series(Writer& w, const TimeSeries& ts) {
  w.f64_vec(ts.t);
  w.f64_vec(ts.v);
}

TimeSeries read_time_series(Reader& r) {
  TimeSeries ts;
  ts.t = r.f64_vec();
  ts.v = r.f64_vec();
  if (ts.t.size() != ts.v.size()) {
    throw ConfigError("serde: TimeSeries t/v length mismatch");
  }
  return ts;
}

void write_summary(Writer& w, const Summary& s) {
  w.u64(s.count);
  w.f64(s.mean);
  w.f64(s.stddev);
  w.f64(s.min);
  w.f64(s.max);
  w.f64(s.p50);
  w.f64(s.p90);
  w.f64(s.p99);
}

Summary read_summary(Reader& r) {
  Summary s;
  s.count = static_cast<std::size_t>(r.u64());
  s.mean = r.f64();
  s.stddev = r.f64();
  s.min = r.f64();
  s.max = r.f64();
  s.p50 = r.f64();
  s.p90 = r.f64();
  s.p99 = r.f64();
  return s;
}

// --- versioned, checksummed record frame ------------------------------------

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::ok: return "ok";
    case FrameStatus::truncated: return "truncated";
    case FrameStatus::bad_magic: return "bad-magic";
    case FrameStatus::bad_version: return "bad-version";
    case FrameStatus::bad_checksum: return "bad-checksum";
  }
  return "unknown";
}

std::string frame_record(std::uint32_t magic, std::uint32_t version,
                         std::string_view payload) {
  Writer w;
  w.u32(magic);
  w.u32(version);
  w.u64(payload.size());
  w.u32(crc32(payload));
  std::string out = w.take();
  out.append(payload.data(), payload.size());
  return out;
}

FrameStatus parse_record(std::string_view bytes, std::uint32_t magic,
                         std::uint32_t version, std::string_view* payload) {
  constexpr std::size_t kHeader = 4 + 4 + 8 + 4;
  if (bytes.size() < kHeader) return FrameStatus::truncated;
  Reader r(bytes.substr(0, kHeader));
  const std::uint32_t got_magic = r.u32();
  const std::uint32_t got_version = r.u32();
  const std::uint64_t length = r.u64();
  const std::uint32_t checksum = r.u32();
  if (got_magic != magic) return FrameStatus::bad_magic;
  if (got_version != version) return FrameStatus::bad_version;
  if (bytes.size() - kHeader != length) return FrameStatus::truncated;
  const std::string_view body = bytes.substr(kHeader);
  if (crc32(body) != checksum) return FrameStatus::bad_checksum;
  if (payload != nullptr) *payload = body;
  return FrameStatus::ok;
}

// --- file IO ----------------------------------------------------------------

bool write_file_atomic(const std::string& path, std::string_view bytes) {
  namespace fs = std::filesystem;
  // Unique per process so two owners racing on the same target never share
  // a temp file; rename() then makes publication atomic.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

}  // namespace ihbd::serde
