// Minimal CSV file writer used by benches (--csv <dir> mode).
#pragma once

#include <fstream>
#include <string>

#include "src/common/table.h"

namespace ihbd {

/// Write a Table to `<dir>/<name>.csv`. Returns false (and leaves no file)
/// if the directory is not writable. `dir` may be empty -> no-op, true.
bool write_csv(const std::string& dir, const std::string& name,
               const Table& table);

}  // namespace ihbd
