#include "src/common/csv.h"

#include <filesystem>

namespace ihbd {

bool write_csv(const std::string& dir, const std::string& name,
               const Table& table) {
  if (dir.empty()) return true;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path path =
      std::filesystem::path(dir) / (name + ".csv");
  std::ofstream out(path);
  if (!out) return false;
  out << table.to_csv();
  return static_cast<bool>(out);
}

}  // namespace ihbd
