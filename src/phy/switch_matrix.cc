#include "src/phy/switch_matrix.h"

#include <cmath>

#include "src/common/contracts.h"

namespace ihbd::phy {

namespace {
int ceil_log2(int n) {
  int d = 0;
  int v = 1;
  while (v < n) {
    v <<= 1;
    ++d;
  }
  return d;
}
}  // namespace

OcsSwitchMatrix::OcsSwitchMatrix(const SwitchMatrixParams& params)
    : params_(params), matrix_depth_(ceil_log2(params.lane_count)) {
  IHBD_EXPECTS(params.lane_count >= 2);
  IHBD_EXPECTS(params.coupling_loss_db >= 0.0);
}

int OcsSwitchMatrix::stages_for(OcsPath path) const {
  // Two initial routing MZIs + output combiner stage = 3 stages external.
  // The loopback re-enters the NxN matrix: + ceil(log2(N)) stages.
  switch (path) {
    case OcsPath::kExternal1:
    case OcsPath::kExternal2:
      return 3;
    case OcsPath::kLoopback:
      return 3 + matrix_depth_;
  }
  return 3;
}

double OcsSwitchMatrix::mean_insertion_loss_db(OcsPath path,
                                               double temp_c) const {
  const MziElement probe(params_.element);
  // The deeper matrix stages are optimized low-loss pass-throughs; weight
  // them at 40% of a routing element so the loopback stays within the same
  // measured envelope (the paper reports a single core-module distribution).
  const double routing_stages = 3.0;
  const double extra =
      0.4 * static_cast<double>(stages_for(path) - 3);
  return params_.coupling_loss_db + params_.waveguide_loss_db +
         (routing_stages + extra) * probe.mean_loss_db(temp_c);
}

double OcsSwitchMatrix::sample_insertion_loss_db(OcsPath path, double temp_c,
                                                 Rng& rng) const {
  const double mu = mean_insertion_loss_db(path, temp_c);
  // Device-to-device spread dominates: the paper's Fig. 11 histograms span
  // roughly 2.5..4.0 dB at 25 C => sigma ~= 0.28 dB around the 3.3 dB mean.
  const double sigma = 0.28 + 0.0008 * std::abs(temp_c - 25.0) * 2.0;
  double v = rng.normal(mu, sigma);
  const double lo = mu - 0.85;
  const double hi = mu + 0.85;
  if (v < lo) v = lo + (lo - v) * 0.25;  // soft reflection, keeps tails short
  if (v > hi) v = hi - (v - hi) * 0.25;
  return v;
}

double OcsSwitchMatrix::drive_power_w(OcsPath path, double temp_c) const {
  MziElement held(params_.element);
  held.set_state(MziState::kCross);
  MziElement trimmed(params_.element);
  trimmed.set_state(MziState::kBar);

  // Held (full-drive) shifters: the two initial routing elements per lane
  // direction plus, on the loopback, one matrix column element. Remaining
  // matrix elements sit at trim drive. Counts are per core module (all
  // lanes share the TO bias rails, modelled as 6 full-drive equivalents).
  double full_equiv = 5.6;  // external path 1
  if (path == OcsPath::kExternal2) full_equiv = 5.75;  // longer bias trace
  if (path == OcsPath::kLoopback) full_equiv = 6.0;    // + matrix column
  const double trim_equiv = 2.0;
  return full_equiv * held.hold_power_w(temp_c) +
         trim_equiv * trimmed.hold_power_w(temp_c);
}

double OcsSwitchMatrix::sample_reconfig_latency_s(Rng& rng) const {
  return rng.uniform(kReconfigMinS, kReconfigMaxS);
}

}  // namespace ihbd::phy
