#include "src/phy/mzi.h"

#include <algorithm>
#include <cmath>

#include "src/common/contracts.h"

namespace ihbd::phy {

MziElement::MziElement(const MziParams& params) : params_(params) {
  IHBD_EXPECTS(params.insertion_loss_db > 0.0);
  IHBD_EXPECTS(params.extinction_ratio_db > 0.0);
}

double MziElement::transfer_bar(double phase_rad) const {
  const double ideal = std::cos(phase_rad / 2.0);
  const double leak = crosstalk_linear();
  return std::clamp(ideal * ideal * (1.0 - leak) + leak * 0.5, 0.0, 1.0);
}

double MziElement::transfer_cross(double phase_rad) const {
  const double ideal = std::sin(phase_rad / 2.0);
  const double leak = crosstalk_linear();
  return std::clamp(ideal * ideal * (1.0 - leak) + leak * 0.5, 0.0, 1.0);
}

double MziElement::target_phase_rad() const {
  return state_ == MziState::kCross ? M_PI : 0.0;
}

double MziElement::mean_loss_db(double temp_c) const {
  return params_.insertion_loss_db +
         params_.loss_temp_coeff_db * (temp_c - 25.0);
}

double MziElement::sample_loss_db(double temp_c, Rng& rng) const {
  const double mu = mean_loss_db(temp_c);
  const double sample = rng.normal(mu, params_.loss_sigma_db);
  return std::max(sample, 0.4 * mu);
}

double MziElement::hold_power_w(double temp_c) const {
  // TO heaters hold a phase offset above ambient: as the ambient rises the
  // required heater power falls slightly (matches Fig. 10b's downward trend).
  const double scale = 1.0 - params_.power_temp_coeff * (temp_c - 25.0);
  const double full = params_.to_drive_power_w * std::max(scale, 0.5);
  return state_ == MziState::kCross ? full : 0.15 * full;
}

double MziElement::crosstalk_linear() const {
  return std::pow(10.0, -params_.extinction_ratio_db / 10.0);
}

}  // namespace ihbd::phy
