// The OCS micro-structure inside the OCSTrx PIC (paper §4.1, Fig. 3b):
// two initial routing MZI elements choose between external outputs 1 & 2
// and the internal loopback path; an internal NxN MZI matrix implements the
// cross-lane loopback. External paths traverse fewer stages by design
// ("reduce stages count and light attenuation of output 1&2, while ensuring
// consistent light attenuation for them").
#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/phy/mzi.h"

namespace ihbd::phy {

/// The three Tx light paths an OCSTrx can activate (paper Fig. 2, left).
enum class OcsPath {
  kExternal1 = 0,  ///< primary neighbor link
  kExternal2 = 1,  ///< backup neighbor link
  kLoopback = 2,   ///< cross-lane intra-node loopback (ring construction)
};

/// Number of distinct OcsPath values.
inline constexpr int kOcsPathCount = 3;

/// Static configuration of the OCS switch matrix.
struct SwitchMatrixParams {
  int lane_count = 8;             ///< SerDes lane pairs (8x100G in 800G QSFP-DD)
  MziParams element;              ///< per-MZI physics
  double coupling_loss_db = 1.5;  ///< fiber/facet coupling, both ends
  double waveguide_loss_db = 0.0; ///< routing waveguide loss (folded into
                                  ///< coupling by default)
};

/// Physical model of the OCS switch matrix: per-path stage counts, insertion
/// loss (mean + sampled), TO drive power, and reconfiguration latency.
/// Calibrated defaults reproduce the paper's measured envelopes:
/// loss 2.5-4.0 dB with mean 3.3 dB at 25 C; core power < 3.2 W; 60-80 us
/// reconfiguration.
class OcsSwitchMatrix {
 public:
  explicit OcsSwitchMatrix(const SwitchMatrixParams& params = {});

  int lane_count() const { return params_.lane_count; }

  /// Number of MZI stages a signal traverses on a path. External paths take
  /// the two initial routing elements plus one combiner stage; the loopback
  /// additionally crosses the log2(N)-deep cross-lane matrix.
  int stages_for(OcsPath path) const;

  /// Mean end-to-end insertion loss (dB) at ambient temperature `temp_c`.
  double mean_insertion_loss_db(OcsPath path, double temp_c) const;

  /// One sampled loss measurement (device spread + measurement noise).
  double sample_insertion_loss_db(OcsPath path, double temp_c, Rng& rng) const;

  /// Core-module TO drive power (W) with `path` activated at `temp_c`.
  /// Counts held phase shifters across the initial routing elements and,
  /// for the loopback, the active matrix column.
  double drive_power_w(OcsPath path, double temp_c) const;

  /// Sampled hardware reconfiguration latency (uniform in [60, 80] us,
  /// per paper §5.1), in seconds.
  double sample_reconfig_latency_s(Rng& rng) const;
  static constexpr double kReconfigMinS = 60e-6;
  static constexpr double kReconfigMaxS = 80e-6;

  const SwitchMatrixParams& params() const { return params_; }

 private:
  SwitchMatrixParams params_;
  int matrix_depth_;  ///< ceil(log2(lane_count)) stages in the NxN matrix
};

}  // namespace ihbd::phy
