#include "src/phy/ber.h"

#include <algorithm>
#include <cmath>

#include "src/common/contracts.h"

namespace ihbd::phy {

BerModel::BerModel(const OcsSwitchMatrix& matrix, const BerParams& params)
    : matrix_(matrix), params_(params) {
  IHBD_EXPECTS(params.detector_noise_mw_25c > 0.0);
  IHBD_EXPECTS(params.measured_bits > 0.0);
}

double BerModel::q_factor(OcsPath path, double oma_mw, double temp_c) const {
  IHBD_EXPECTS(oma_mw >= 0.0);
  const double loss_db = matrix_.mean_insertion_loss_db(path, temp_c);
  const double rx_mw = oma_mw * std::pow(10.0, -loss_db / 10.0);
  const double noise =
      params_.detector_noise_mw_25c *
      (1.0 + params_.noise_temp_coeff * (temp_c - 25.0));
  return rx_mw / std::max(noise, 1e-6);
}

double BerModel::ber_from_q(double q) {
  if (q <= 0.0) return 0.5;
  return 0.5 * std::erfc(q / std::sqrt(2.0));
}

double BerModel::expected_ber(OcsPath path, double oma_mw,
                              double temp_c) const {
  return ber_from_q(q_factor(path, oma_mw, temp_c));
}

double BerModel::measure_ber(OcsPath path, double oma_mw, double temp_c,
                             Rng& rng) const {
  // Sample the actual loss of this unit / measurement.
  const double loss_db = matrix_.sample_insertion_loss_db(path, temp_c, rng);
  const double mean_db = matrix_.mean_insertion_loss_db(path, temp_c);
  double rx_db_delta = mean_db - loss_db;  // positive = better than mean

  // Transient TO drift penalty at elevated temperature: exponential tail,
  // mostly small, occasionally large enough to surface errors at low OMA.
  if (temp_c > params_.drift_onset_temp_c) {
    const double scale =
        params_.drift_penalty_db_per_c * (temp_c - params_.drift_onset_temp_c);
    rx_db_delta -= rng.exponential(1.0 / std::max(scale, 1e-9));
  }

  const double q =
      q_factor(path, oma_mw, temp_c) * std::pow(10.0, rx_db_delta / 10.0);
  const double ber = ber_from_q(q);

  // Instrument floor: a tester that ran `measured_bits` bits cannot resolve
  // BER below 1/measured_bits; such runs report 0 (as the paper plots).
  const double floor = 1.0 / params_.measured_bits;
  return ber < floor ? 0.0 : ber;
}

}  // namespace ihbd::phy
