// Bit-error-rate model for the OCSTrx optical link (paper Fig. 12).
//
// Physics: the received optical modulation amplitude (OMA) after insertion
// loss drives a photodetector; thermal + shot noise at the TIA determine a
// Q factor, and BER = 0.5 * erfc(Q / sqrt(2)). At elevated ambient
// temperature the TO phase trim drifts between calibrations, occasionally
// adding a transient penalty -- which is why the paper observes zero BER at
// -5/25 C but occasional errors at very low OMA at 50/75 C.
//
// A real BER tester counts finitely many bits, so measured BER below the
// instrument floor reports as exactly 0; the model reproduces that too.
#pragma once

#include "src/common/rng.h"
#include "src/phy/switch_matrix.h"

namespace ihbd::phy {

struct BerParams {
  double detector_noise_mw_25c = 0.009;   ///< input-referred noise at 25 C
  double noise_temp_coeff = 0.0065;       ///< fractional noise growth per C
  double drift_onset_temp_c = 40.0;       ///< TO drift negligible below this
  double drift_penalty_db_per_c = 0.023;  ///< mean transient penalty scale
  double measured_bits = 1e13;            ///< BER tester depth (floor 1e-13)
};

/// BER model bound to a switch matrix (for its insertion loss).
class BerModel {
 public:
  explicit BerModel(const OcsSwitchMatrix& matrix, const BerParams& params = {});

  /// Q factor for a given transmit OMA (mW), path and ambient temperature,
  /// before any transient drift penalty.
  double q_factor(OcsPath path, double oma_mw, double temp_c) const;

  /// Analytic BER from a Q factor: 0.5 * erfc(Q / sqrt(2)).
  static double ber_from_q(double q);

  /// Expected (analytic) BER with no transient penalty.
  double expected_ber(OcsPath path, double oma_mw, double temp_c) const;

  /// One simulated BER *measurement*: samples the insertion loss and - at
  /// elevated temperature - a transient TO drift penalty, then applies the
  /// instrument floor (returns exactly 0 below 1/measured_bits).
  double measure_ber(OcsPath path, double oma_mw, double temp_c,
                     Rng& rng) const;

  const BerParams& params() const { return params_; }

 private:
  const OcsSwitchMatrix& matrix_;
  BerParams params_;
};

}  // namespace ihbd::phy
