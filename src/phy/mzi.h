// Mach-Zehnder interferometer (MZI) switch element with thermo-optic (TO)
// phase arms - the micro-structure the paper's OCS is built from (§4.1).
//
// An MZI element is a 2x2 optical switch: controlling the phase difference
// between its two arms routes the input to the "bar" or "cross" output
// through interference at the output combiner. The TO effect drives the
// phase arm; its response time bounds the reconfiguration latency.
#pragma once

#include "src/common/rng.h"

namespace ihbd::phy {

/// Routing state of a 2x2 MZI element.
enum class MziState {
  kBar,    ///< input i -> output i (phase difference 0)
  kCross,  ///< input i -> output 1-i (phase difference pi)
};

/// Physical parameters of one MZI element. Defaults are calibrated so that
/// a 3-stage path reproduces the paper's measured loss/power envelopes.
struct MziParams {
  double insertion_loss_db = 0.60;   ///< mean per-element loss at 25 C
  double loss_temp_coeff_db = 0.002; ///< additional dB per degree C above 25
  double loss_sigma_db = 0.12;       ///< device-to-device / measurement spread
  double extinction_ratio_db = 25.0; ///< bar/cross isolation
  double to_drive_power_w = 0.50;    ///< TO heater power to hold pi phase @25C
  double power_temp_coeff = 6e-4;    ///< heater power drops as ambient rises
  double switch_time_us = 12.0;      ///< TO thermal time constant contribution
};

/// One thermo-optic MZI switch element.
class MziElement {
 public:
  explicit MziElement(const MziParams& params = {});

  MziState state() const { return state_; }
  void set_state(MziState s) { state_ = s; }

  /// Optical power transfer to the bar/cross ports for a given phase
  /// difference (radians). Ideal element: bar = cos^2, cross = sin^2 of
  /// (phase/2); finite extinction ratio adds a leakage floor.
  double transfer_bar(double phase_rad) const;
  double transfer_cross(double phase_rad) const;

  /// Phase difference the TO controller targets for the current state.
  double target_phase_rad() const;

  /// Mean insertion loss (dB) of this element at ambient temperature (C).
  double mean_loss_db(double temp_c) const;
  /// Sampled loss (dB): mean plus Gaussian device/measurement spread,
  /// truncated at 60% of the mean so losses remain physical.
  double sample_loss_db(double temp_c, Rng& rng) const;

  /// TO heater power (W) needed to hold the current state at `temp_c`.
  /// The cross state holds a pi phase shift (full heater drive); the bar
  /// state needs only a small trim drive.
  double hold_power_w(double temp_c) const;

  /// Crosstalk leakage ratio (linear) from the finite extinction ratio.
  double crosstalk_linear() const;

  const MziParams& params() const { return params_; }

 private:
  MziParams params_;
  MziState state_ = MziState::kBar;
};

}  // namespace ihbd::phy
