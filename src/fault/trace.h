// Fault traces (paper Appendix A).
//
// The paper's evaluation replays a production fault trace from a ~3K-GPU
// cluster of 8-GPU nodes over 348 days: mean faulty-node ratio 2.33%,
// p50 1.67%, p99 7.22%. The trace itself is not bundled here, so
// generator.h synthesizes a trace calibrated to those statistics; this
// header defines the trace representation, replay and the paper's exact
// 8-GPU -> 4-GPU Bayes normalization.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/fault/packed_mask.h"

namespace ihbd::fault {

/// One node-fault interval: node `node` is down in [start_day, end_day).
///
/// Intervals on one node may OVERLAP or NEST — independent failure causes
/// coexist (a storm outage can land on a node already down with a
/// degradation fault, and the storm's crew-queued repair can outlast or end
/// inside the degradation repair). The node is faulty at day d while AT
/// LEAST ONE of its intervals covers d; symmetrically, one interval ending
/// does not mean the node is up. Consumers therefore count active intervals
/// per node (depth) and treat only 0 <-> 1 edges as state changes — that is
/// exactly what faulty_at(), the replay cursors and the control plane's
/// per-node depth counters do, and tests/ctrl_test.cc pins their agreement.
struct FaultEvent {
  int node = 0;
  double start_day = 0.0;
  double end_day = 0.0;

  double duration() const { return end_day - start_day; }
};

/// One edge of a trace's transition timeline: at `day`, `node` either goes
/// down (a fault interval starts) or comes back up (it ends). Derived from
/// FaultEvent half-open intervals, so a down edge takes effect at any
/// sample day >= `day` and an up edge at any sample day >= `day` as well
/// (matching `start_day <= d` / `end_day <= d` in faulty_at exactly).
struct FaultTransition {
  double day = 0.0;
  int node = 0;
  bool down = false;  ///< true: fault begins; false: repair completes
};

/// The word-parallel transition timeline: the net mask change of every
/// exact transition day, pre-folded into per-word XOR spans. Group g covers
/// deltas[offsets[g] .. offsets[g+1]) and XORs the faulty mask of days[g]'s
/// net flips (cancelling same-day edges and overlap-shadowed edges already
/// removed; days whose edges all cancel are omitted entirely). Because each
/// group is the exact bit change of its day, groups compose by XOR: the net
/// change across ANY day range is the XOR of its groups — which is what
/// lets a replay cursor advance over an arbitrary sample grid with a few
/// word XORs instead of a per-node walk (see FaultMaskCursor).
struct WordDeltaTimeline {
  std::vector<double> days;       ///< ascending, unique, zero-net days omitted
  std::vector<int> offsets;       ///< days.size() + 1 span bounds into deltas
  std::vector<WordDelta> deltas;  ///< word-ascending, nonzero, per group
};

/// An immutable fault trace over a fixed node count and duration.
class FaultTrace {
 public:
  FaultTrace(int node_count, double duration_days,
             std::vector<FaultEvent> events);

  int node_count() const { return node_count_; }
  double duration_days() const { return duration_days_; }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Faulty-node mask at an instant. O(log E + active) via the sorted index.
  std::vector<bool> faulty_at(double day) const;

  /// faulty_at() in packed form: same event scan, same comparisons, so
  /// packed_faulty_at(d).to_bools() == faulty_at(d) for every d.
  PackedMask packed_faulty_at(double day) const;

  /// Number of faulty nodes at an instant.
  int faulty_count_at(double day) const;

  /// The replay sample times for a step: {0, step, 2*step, ...} below
  /// duration_days(), accumulated exactly as a serial `day += step` replay
  /// loop would, so windowed replays enumerate bit-identical days.
  std::vector<double> sample_days(double step_days) const;

  /// Sub-trace restricted to the events overlapping the closed interval
  /// [start_day, end_day]: faulty_at(d) on the slice matches the full trace
  /// for every d in that range (masks for days before start_day are
  /// meaningless). Node count is preserved; the slice's duration_days() is
  /// clamped to just past end_day, so sample_days()/ratio_series() on a
  /// slice stop at the slice boundary instead of iterating over the full
  /// trace's range. This is the unit of work for the windowed parallel
  /// replay in src/topo/waste.h (which enumerates days from the *full*
  /// trace, so the clamp does not affect its sample sequence).
  FaultTrace slice(double start_day, double end_day) const;

  /// The sorted transition timeline: one `down` edge per event start and
  /// one `up` edge per event end, ordered by (day, node, up-before-down).
  /// Events may overlap on one node; consumers must count active intervals
  /// per node (see FaultMaskCursor in src/fault/transitions.h) — a node is
  /// faulty while its active count is positive, which reproduces
  /// faulty_at() bit-for-bit.
  std::vector<FaultTransition> transitions() const;

  /// Shared, lazily built view of transitions(): computed once per trace on
  /// first use (thread-safe; copies of the trace share the cache) so
  /// repeated replays — every cell of a TP x architecture grid, every
  /// window of a parallel replay — skip the timeline sort.
  std::shared_ptr<const std::vector<FaultTransition>> transition_timeline()
      const;

  /// Shared, lazily built word-parallel timeline (see WordDeltaTimeline):
  /// one active-interval walk over the whole transition timeline, folded
  /// into per-day word-XOR groups. Cached like transition_timeline(), so
  /// the fold cost is paid once per trace no matter how many replay
  /// cursors, windows or grid cells consume it.
  std::shared_ptr<const WordDeltaTimeline> word_delta_timeline() const;

  /// Grid-aligned variant: the exact-day groups folded onto the sample grid
  /// of `step_days` — one group per sample day with a net change, so a
  /// replay cursor bound to it applies at most ONE group per sample instead
  /// of re-folding every transition day in the step on every advance, for
  /// every cursor (the fold is paid once per trace x step and shared by all
  /// windows and grid cells). Groups after the last sample day keep their
  /// exact days. The folded masks are only correct ON the grid; the cursor
  /// constructor taking a step documents the contract. Cached per distinct
  /// step like the exact timeline.
  std::shared_ptr<const WordDeltaTimeline> word_delta_timeline(
      double step_days) const;

  /// Fault-node-ratio time series sampled every `step_days`.
  TimeSeries ratio_series(double step_days = 1.0) const;

  /// Summary of the sampled ratio series (mean/p50/p99 used for Fig. 18).
  Summary ratio_summary(double step_days = 1.0) const;

  /// Mean repair (fault) duration across events, in days. 0 if no events.
  double mean_repair_days() const;

  /// The paper's Appendix-A normalization: convert a trace over 8-GPU nodes
  /// into a trace over 2x as many 4-GPU nodes. Each fault of 8-GPU node i
  /// is inherited by 4-GPU nodes {2i, 2i+1} independently with probability
  /// P(4-GPU fault | 8-GPU fault) = 50.21% (Bayes, from i.i.d. per-GPU
  /// fault probability p = 0.29%).
  FaultTrace split_to_half_nodes(Rng& rng,
                                 double inherit_prob = 0.5021) const;

  /// Rescale the trace onto a cluster with `new_node_count` nodes by
  /// linearly mapping node ids (paper: "the simulator linearly maps the
  /// fault trace onto different network architectures"). Requires
  /// new_node_count <= node_count().
  FaultTrace remap_nodes(int new_node_count) const;

 private:
  struct TimelineCache;

  int node_count_;
  double duration_days_;
  std::vector<FaultEvent> events_;  // sorted by start_day
  std::shared_ptr<TimelineCache> timeline_cache_;  // filled on first use
};

/// A contiguous run of replay samples: indices [begin, begin + count) into
/// a sample-day sequence (FaultTrace::sample_days).
struct SampleWindow {
  std::size_t begin = 0;
  std::size_t count = 0;
};

/// Split `n` samples into consecutive windows of at most `window` samples
/// (the last window may be short). window == 0 yields a single window
/// spanning everything; n == 0 yields no windows.
std::vector<SampleWindow> split_windows(std::size_t n, std::size_t window);

/// Draw an i.i.d. faulty-node mask with an *exact* number of faulty nodes:
/// round(node_count * ratio) distinct nodes chosen uniformly. Used for the
/// fault-ratio sweep figures (14, 17c, 22).
std::vector<bool> sample_fault_mask(int node_count, double ratio, Rng& rng);

/// Bernoulli variant: each node faulty independently with probability
/// `ratio` (used by property tests against the analytic bound).
std::vector<bool> sample_fault_mask_iid(int node_count, double ratio,
                                        Rng& rng);

}  // namespace ihbd::fault
