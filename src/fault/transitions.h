// Event-driven fault-mask replay (the incremental tier of the trace
// replay, see src/topo/waste.h).
//
// FaultTrace::faulty_at(day) rebuilds the whole mask by scanning events at
// every sample; between two consecutive sample days, though, only the
// handful of nodes with a transition in that interval actually change. The
// FaultMaskCursor walks the trace's sorted transition timeline once,
// applying deltas as it advances, and reports exactly which nodes flipped —
// the masks it exposes are bit-identical to faulty_at() at every day.
#pragma once

#include <cstddef>
#include <vector>

#include "src/fault/trace.h"

namespace ihbd::fault {

/// Forward-only cursor over a trace's transition timeline.
///
/// advance_to(day) applies every transition with `transition.day <= day`
/// (monotonically non-decreasing days across calls) and returns the nodes
/// whose faulty bit actually flipped since the previous position —
/// deduplicated and net of cancelling transitions, so a zero-length event
/// or a same-day down+up pair reports nothing. Because a node is faulty
/// while its count of active fault intervals is positive, mask() equals
/// trace.faulty_at(day) bit-for-bit, including on overlapping events and on
/// FaultTrace::slice sub-traces (within the sliced day range).
class FaultMaskCursor {
 public:
  /// Binds to trace.transition_timeline(), so cursors over the same trace
  /// (all windows of a replay, all cells of a grid) share one sorted
  /// timeline instead of re-sorting per cursor.
  explicit FaultMaskCursor(const FaultTrace& trace);

  /// Advance to `day` (must be >= the previous call's day). Returns the
  /// nodes whose faulty bit flipped, ascending; valid until the next call.
  const std::vector<int>& advance_to(double day);

  /// Current fault mask; equals trace.faulty_at(day()) after advance_to.
  const std::vector<bool>& mask() const { return mask_; }

  /// The day of the last advance_to (-inf before the first call).
  double day() const { return day_; }

  /// Transitions not yet applied (the timeline has 2 * events() edges).
  std::size_t remaining() const { return timeline_->size() - next_; }

 private:
  std::shared_ptr<const std::vector<FaultTransition>> timeline_;
  std::size_t next_ = 0;           // first unapplied timeline entry
  std::vector<int> active_;        // active fault intervals per node
  std::vector<bool> mask_;         // active_[i] > 0
  std::vector<int> flipped_;       // result buffer for advance_to
  std::vector<int> touched_;       // scratch: nodes hit in current batch
  std::vector<char> touch_stamp_;  // scratch: membership flag for touched_
  double day_;
};

}  // namespace ihbd::fault
