// Event-driven fault-mask replay (the incremental tier of the trace
// replay, see src/topo/waste.h).
//
// FaultTrace::faulty_at(day) rebuilds the whole mask by scanning events at
// every sample; between two consecutive sample days, though, only the
// handful of nodes with a transition in that interval actually change. The
// FaultMaskCursor advances over the trace's transition structure and
// reports exactly what flipped — the masks it exposes are bit-identical to
// faulty_at() at every day.
//
// The cursor speaks both delta currencies through two independent engines:
//   * advance_to() is the classic per-node pipeline (PRs 4-5): it walks the
//     sorted transition timeline, counts active fault intervals per node,
//     and reports a sorted flip list. Kept intact as the --packed 0 oracle
//     tier.
//   * advance_to_words() is the word-parallel core: it consumes the trace's
//     pre-folded WordDeltaTimeline (per-day net word-XOR groups, cached
//     once per trace), so advancing a sample step is a few word XORs —
//     no per-node work at all — and emits {word_index, xor_bits} spans.
// Both engines maintain the packed mask; the vector<bool> view is synced
// lazily so the word path never pays for it.
#pragma once

#include <cstddef>
#include <vector>

#include "src/fault/packed_mask.h"
#include "src/fault/trace.h"

namespace ihbd::fault {

/// Forward-only cursor over a trace's transitions.
///
/// Both advance entry points apply every transition with
/// `transition.day <= day` and report the net effect since the previous
/// position — deduplicated and net of cancelling transitions, so a
/// zero-length event or a same-day down+up pair reports nothing. Because a
/// node is faulty while its count of active fault intervals is positive,
/// mask() / packed_mask() equal trace.faulty_at(day) bit-for-bit, including
/// on overlapping events and on FaultTrace::slice sub-traces (within the
/// sliced day range). The entry points may be mixed on one cursor: each
/// engine lazily catches its position up past days the other already
/// applied.
///
/// Contract: the cursor is forward-only. `day` must be monotonically
/// non-decreasing across advance calls (NaN is rejected too); a smaller day
/// would skip already-applied transitions and silently misapply the
/// timeline, so it aborts via IHBD_EXPECTS instead. Rewinding means
/// constructing a fresh cursor.
class FaultMaskCursor {
 public:
  /// Binds to trace.transition_timeline() and trace.word_delta_timeline(),
  /// so cursors over the same trace (all windows of a replay, all cells of
  /// a grid) share one sorted timeline and one word-delta fold.
  explicit FaultMaskCursor(const FaultTrace& trace);

  /// Grid-aligned cursor: binds the word engine to
  /// trace.word_delta_timeline(grid_step_days), whose groups are pre-folded
  /// per sample day — each replay sample then applies at most one group (the
  /// per-step fold is paid once per trace x step, not once per cursor x
  /// sample). Contract: every advance, through either entry point, must
  /// land on a day of trace.sample_days(grid_step_days); between grid points
  /// the word engine's mask would lag transitions already visible to
  /// faulty_at(). The replay drivers (src/topo/waste.cc) sample strictly on
  /// that grid, which is the intended user.
  FaultMaskCursor(const FaultTrace& trace, double grid_step_days);

  /// Advance to `day` (must be >= the previous call's day). Returns the
  /// net flips folded into per-word XOR spans: word indices strictly
  /// ascending, every xor_bits nonzero. Valid until the next advance call.
  const std::vector<WordDelta>& advance_to_words(double day);

  /// Advance to `day` (must be >= the previous call's day). Returns the
  /// nodes whose faulty bit flipped, ascending; valid until the next
  /// advance call.
  const std::vector<int>& advance_to(double day);

  /// Current fault mask; equals trace.faulty_at(day()) after an advance.
  /// Synced lazily after word-path advances (first call pays one O(N)
  /// unpack; pure flip-list use never resyncs).
  const std::vector<bool>& mask() const;

  /// Packed view of the same mask; always current whichever advance entry
  /// point is used.
  const PackedMask& packed_mask() const { return packed_; }

  /// The day of the last advance (-inf before the first call).
  double day() const { return day_; }

  /// Transitions with day > day(): not yet applied through either entry
  /// point. O(log E) on the sorted timeline, exact in mixed use too.
  std::size_t remaining() const;

 private:
  FaultMaskCursor(const FaultTrace& trace,
                  std::shared_ptr<const WordDeltaTimeline> words);

  void sync_mask() const;

  std::shared_ptr<const std::vector<FaultTransition>> timeline_;
  std::shared_ptr<const WordDeltaTimeline> words_;
  std::size_t next_ = 0;   // per-node engine: first unapplied timeline edge
  std::size_t gnext_ = 0;  // word engine: first unapplied delta group
  std::vector<int> active_;          // per-node engine: active intervals
  PackedMask packed_;                // current mask, packed (always current)
  mutable std::vector<bool> mask_;   // lazily synced vector<bool> view
  mutable bool mask_synced_ = true;
  std::vector<WordDelta> deltas_;    // result buffer for advance_to_words
  std::vector<int> flipped_;         // result buffer for advance_to
  std::vector<int> touched_;         // scratch: nodes hit in current batch
  std::vector<char> touch_stamp_;    // scratch: membership flag for touched_
  std::vector<std::uint64_t> word_xor_;  // scratch: per-word XOR accumulator
  std::vector<int> dirty_words_;     // scratch: words hit in current batch
  std::vector<char> word_stamp_;     // scratch: membership for dirty_words_
  double day_;
};

}  // namespace ihbd::fault
