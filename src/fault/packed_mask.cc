#include "src/fault/packed_mask.h"

namespace ihbd::fault {

PackedMask PackedMask::from_bools(const std::vector<bool>& bits) {
  PackedMask out(static_cast<int>(bits.size()));
  for (int i = 0; i < out.bits_; ++i)
    if (bits[static_cast<std::size_t>(i)])
      out.words_[static_cast<std::size_t>(i / kWordBits)] |=
          std::uint64_t{1} << (i % kWordBits);
  return out;
}

std::vector<bool> PackedMask::to_bools() const {
  std::vector<bool> out(static_cast<std::size_t>(bits_), false);
  for (int w = 0; w < word_count(); ++w)
    for_each_set_bit(words_[static_cast<std::size_t>(w)], w,
                     [&](int i) { out[static_cast<std::size_t>(i)] = true; });
  return out;
}

int PackedMask::popcount_range(int begin, int end) const {
  IHBD_EXPECTS(begin >= 0 && begin <= end && end <= bits_);
  if (begin == end) return 0;
  const int wb = begin / kWordBits;
  const int we = (end - 1) / kWordBits;  // last word with a counted bit
  const std::uint64_t lo = ~std::uint64_t{0} << (begin % kWordBits);
  const std::uint64_t hi =
      ~std::uint64_t{0} >> (kWordBits - 1 - (end - 1) % kWordBits);
  if (wb == we)
    return std::popcount(words_[static_cast<std::size_t>(wb)] & lo & hi);
  int n = std::popcount(words_[static_cast<std::size_t>(wb)] & lo) +
          std::popcount(words_[static_cast<std::size_t>(we)] & hi);
  for (int w = wb + 1; w < we; ++w)
    n += std::popcount(words_[static_cast<std::size_t>(w)]);
  return n;
}

int PackedMask::find_first_from(int from) const {
  IHBD_EXPECTS(from >= 0 && from <= bits_);
  if (from == bits_) return -1;
  int w = from / kWordBits;
  std::uint64_t bits = words_[static_cast<std::size_t>(w)] &
                       (~std::uint64_t{0} << (from % kWordBits));
  while (bits == 0) {
    if (++w == word_count()) return -1;
    bits = words_[static_cast<std::size_t>(w)];
  }
  return w * kWordBits + std::countr_zero(bits);
}

PackedMask PackedMask::complement() const {
  PackedMask out(bits_);
  for (int w = 0; w < word_count(); ++w)
    out.words_[static_cast<std::size_t>(w)] =
        ~words_[static_cast<std::size_t>(w)] & valid_mask(w);
  return out;
}

}  // namespace ihbd::fault
