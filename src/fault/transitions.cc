#include "src/fault/transitions.h"

#include <algorithm>
#include <limits>

#include "src/common/contracts.h"

namespace ihbd::fault {

FaultMaskCursor::FaultMaskCursor(const FaultTrace& trace)
    : timeline_(trace.transition_timeline()),
      active_(static_cast<std::size_t>(trace.node_count()), 0),
      mask_(static_cast<std::size_t>(trace.node_count()), false),
      touch_stamp_(static_cast<std::size_t>(trace.node_count()), 0),
      day_(-std::numeric_limits<double>::infinity()) {}

const std::vector<int>& FaultMaskCursor::advance_to(double day) {
  IHBD_EXPECTS(day >= day_);
  day_ = day;
  touched_.clear();
  const std::vector<FaultTransition>& timeline = *timeline_;
  // Apply every edge with edge.day <= day: the same comparisons faulty_at
  // uses (start_day <= d for down, end_day <= d for up), so the resulting
  // active-interval counts reproduce its mask exactly.
  while (next_ < timeline.size() && timeline[next_].day <= day) {
    const FaultTransition& edge = timeline[next_++];
    const auto node = static_cast<std::size_t>(edge.node);
    active_[node] += edge.down ? 1 : -1;
    if (!touch_stamp_[node]) {
      touch_stamp_[node] = 1;
      touched_.push_back(edge.node);
    }
  }
  // Net flips only: a node touched by cancelling edges (zero-length event,
  // same-day down+up, overlapping intervals) keeps its bit and is not
  // reported.
  flipped_.clear();
  for (const int node : touched_) {
    const auto i = static_cast<std::size_t>(node);
    touch_stamp_[i] = 0;
    const bool now = active_[i] > 0;
    if (mask_[i] != now) {
      mask_[i] = now;
      flipped_.push_back(node);
    }
  }
  std::sort(flipped_.begin(), flipped_.end());
  return flipped_;
}

}  // namespace ihbd::fault
