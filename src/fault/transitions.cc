#include "src/fault/transitions.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "src/common/contracts.h"
#include "src/obs/metrics.h"

namespace ihbd::fault {

namespace {

/// Word-batch metrics (src/obs): how well same-day transition groups fold
/// into word deltas. Recording sits behind obs::enabled() so the cursor's
/// hot path is unperturbed by default.
struct CursorObs {
  obs::Counter& word_batches;  ///< WordDeltas emitted by advance_to_words
  obs::Counter& xor_flips;     ///< net bit flips carried in those deltas
};

CursorObs& cursor_obs() {
  static CursorObs o{obs::counter("cursor.word_batches"),
                     obs::counter("cursor.xor_flips")};
  return o;
}

}  // namespace

FaultMaskCursor::FaultMaskCursor(const FaultTrace& trace)
    : FaultMaskCursor(trace, trace.word_delta_timeline()) {}

FaultMaskCursor::FaultMaskCursor(const FaultTrace& trace,
                                 double grid_step_days)
    : FaultMaskCursor(trace, trace.word_delta_timeline(grid_step_days)) {}

FaultMaskCursor::FaultMaskCursor(
    const FaultTrace& trace, std::shared_ptr<const WordDeltaTimeline> words)
    : timeline_(trace.transition_timeline()),
      words_(std::move(words)),
      active_(static_cast<std::size_t>(trace.node_count()), 0),
      packed_(trace.node_count()),
      mask_(static_cast<std::size_t>(trace.node_count()), false),
      touch_stamp_(static_cast<std::size_t>(trace.node_count()), 0),
      word_xor_(static_cast<std::size_t>(packed_.word_count()), 0),
      word_stamp_(static_cast<std::size_t>(packed_.word_count()), 0),
      day_(-std::numeric_limits<double>::infinity()) {}

void FaultMaskCursor::sync_mask() const {
  if (mask_synced_) return;
  for (int w = 0; w < packed_.word_count(); ++w) {
    const int begin = w * PackedMask::kWordBits;
    const int end = std::min(begin + PackedMask::kWordBits, packed_.size());
    std::uint64_t bits = packed_.word(w);
    for (int i = begin; i < end; ++i, bits >>= 1)
      mask_[static_cast<std::size_t>(i)] = bits & 1;
  }
  mask_synced_ = true;
}

const std::vector<bool>& FaultMaskCursor::mask() const {
  sync_mask();
  return mask_;
}

std::size_t FaultMaskCursor::remaining() const {
  // Position by day, not by engine index: exact whichever entry points ran.
  const auto it = std::upper_bound(
      timeline_->begin(), timeline_->end(), day_,
      [](double day, const FaultTransition& t) { return day < t.day; });
  return static_cast<std::size_t>(timeline_->end() - it);
}

const std::vector<WordDelta>& FaultMaskCursor::advance_to_words(double day) {
  // Forward-only: a smaller (or NaN) day would leave already-applied
  // transitions in place and silently misapply the timeline.
  IHBD_EXPECTS(day >= day_);
  const WordDeltaTimeline& words = *words_;
  const std::size_t groups = words.days.size();
  // Skip groups the per-node engine already applied (mixed use only; in
  // pure word use this loop exits on its first comparison).
  while (gnext_ < groups && words.days[gnext_] <= day_) ++gnext_;
  day_ = day;
  deltas_.clear();
  if (gnext_ >= groups || words.days[gnext_] > day) return deltas_;
  const std::size_t first = gnext_;
  do
    ++gnext_;
  while (gnext_ < groups && words.days[gnext_] <= day);
  mask_synced_ = false;
  if (gnext_ - first == 1) {
    // Single group: its spans are already net, nonzero and word-ascending —
    // apply and emit them straight from the shared timeline.
    for (int i = words.offsets[first]; i < words.offsets[first + 1]; ++i) {
      const WordDelta& d = words.deltas[static_cast<std::size_t>(i)];
      packed_.apply_xor(d.word, d.xor_bits);
      deltas_.push_back(d);
    }
  } else {
    // Several days fold into one sample step: XOR the groups together (a
    // node flipping down then back up within the step cancels out).
    for (std::size_t g = first; g < gnext_; ++g) {
      for (int i = words.offsets[g]; i < words.offsets[g + 1]; ++i) {
        const WordDelta& d = words.deltas[static_cast<std::size_t>(i)];
        const auto w = static_cast<std::size_t>(d.word);
        if (!word_stamp_[w]) {
          word_stamp_[w] = 1;
          word_xor_[w] = 0;
          dirty_words_.push_back(d.word);
        }
        word_xor_[w] ^= d.xor_bits;
      }
    }
    std::sort(dirty_words_.begin(), dirty_words_.end());
    for (const int w : dirty_words_) {
      word_stamp_[static_cast<std::size_t>(w)] = 0;
      const std::uint64_t bits = word_xor_[static_cast<std::size_t>(w)];
      if (bits == 0) continue;  // cross-day cancellation emptied the word
      packed_.apply_xor(w, bits);
      deltas_.push_back({w, bits});
    }
    dirty_words_.clear();
  }
  if (obs::enabled()) {
    std::uint64_t flips = 0;
    for (const WordDelta& d : deltas_)
      flips += static_cast<std::uint64_t>(std::popcount(d.xor_bits));
    CursorObs& o = cursor_obs();
    o.word_batches.add(deltas_.size());
    o.xor_flips.add(flips);
  }
  return deltas_;
}

const std::vector<int>& FaultMaskCursor::advance_to(double day) {
  IHBD_EXPECTS(day >= day_);
  const std::vector<FaultTransition>& timeline = *timeline_;
  // Catch the active-interval counts up past days the word engine already
  // applied (their bit effects are in the mask; only the counts lag). Pure
  // flip-list use exits this loop on its first comparison.
  while (next_ < timeline.size() && timeline[next_].day <= day_) {
    const FaultTransition& edge = timeline[next_++];
    active_[static_cast<std::size_t>(edge.node)] += edge.down ? 1 : -1;
  }
  sync_mask();
  day_ = day;
  flipped_.clear();
  if (next_ >= timeline.size() || timeline[next_].day > day) return flipped_;
  touched_.clear();
  // Apply every edge with edge.day <= day: the same comparisons faulty_at
  // uses (start_day <= d for down, end_day <= d for up), so the resulting
  // active-interval counts reproduce its mask exactly.
  do {
    const FaultTransition& edge = timeline[next_++];
    const auto node = static_cast<std::size_t>(edge.node);
    active_[node] += edge.down ? 1 : -1;
    if (!touch_stamp_[node]) {
      touch_stamp_[node] = 1;
      touched_.push_back(edge.node);
    }
  } while (next_ < timeline.size() && timeline[next_].day <= day);
  // Net flips only: a node touched by cancelling edges (zero-length event,
  // same-day down+up, overlapping intervals) keeps its bit and reports
  // nothing.
  for (const int node : touched_) {
    const auto i = static_cast<std::size_t>(node);
    touch_stamp_[i] = 0;
    const bool now_faulty = active_[i] > 0;
    if (mask_[i] == now_faulty) continue;
    mask_[i] = now_faulty;
    packed_.flip(node);
    flipped_.push_back(node);
  }
  std::sort(flipped_.begin(), flipped_.end());
  return flipped_;
}

}  // namespace ihbd::fault
