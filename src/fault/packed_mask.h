// Packed 64-bit fault masks — the word-parallel mask currency of the
// replay core.
//
// A PackedMask stores one bit per node in 64-bit words, so the replay hot
// path works at word granularity instead of node granularity: healthy and
// faulty counts are popcounts, spurious-flip filtering is a word XOR, and a
// whole same-day transition batch collapses into a handful of
// {word_index, xor_bits} deltas (WordDelta) that FaultMaskCursor emits and
// the incremental allocators consume directly (see
// FaultMaskCursor::advance_to_words and IncrementalAllocator::apply_words).
// Packed words are also trivially serializable, which makes them the
// natural wire state for the distributed-sweep sharding the ROADMAP targets
// (see save_packed_mask / load_packed_mask in trace_io.h).
//
// Invariant: bits at positions >= size() in the last word are always zero
// (the "tail" stays clear), so popcount() over raw words needs no masking
// and operator== is plain word equality. Every mutator preserves it;
// apply_xor requires it of its input.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "src/common/contracts.h"

namespace ihbd::fault {

/// One word-granular mask delta: XOR-ing `xor_bits` into word `word` flips
/// exactly the nodes whose bits are set. A batch of WordDeltas (ascending
/// `word`, each `xor_bits` nonzero) is the word-parallel replacement for a
/// per-node flip list.
struct WordDelta {
  int word = 0;
  std::uint64_t xor_bits = 0;

  friend bool operator==(const WordDelta&, const WordDelta&) = default;
};

class PackedMask {
 public:
  static constexpr int kWordBits = 64;

  PackedMask() = default;
  /// An all-clear mask over `bit_count` bits.
  explicit PackedMask(int bit_count)
      : bits_(bit_count),
        words_(static_cast<std::size_t>((bit_count + kWordBits - 1) /
                                        kWordBits),
               0) {
    IHBD_EXPECTS(bit_count >= 0);
  }

  static PackedMask from_bools(const std::vector<bool>& bits);
  std::vector<bool> to_bools() const;

  int size() const { return bits_; }
  int word_count() const { return static_cast<int>(words_.size()); }

  bool test(int i) const {
    IHBD_EXPECTS(i >= 0 && i < bits_);
    return (words_[static_cast<std::size_t>(i / kWordBits)] >>
            (i % kWordBits)) &
           1u;
  }

  void set(int i, bool value) {
    IHBD_EXPECTS(i >= 0 && i < bits_);
    const std::uint64_t bit = std::uint64_t{1} << (i % kWordBits);
    auto& w = words_[static_cast<std::size_t>(i / kWordBits)];
    if (value)
      w |= bit;
    else
      w &= ~bit;
  }

  void flip(int i) {
    IHBD_EXPECTS(i >= 0 && i < bits_);
    words_[static_cast<std::size_t>(i / kWordBits)] ^=
        std::uint64_t{1} << (i % kWordBits);
  }

  std::uint64_t word(int w) const {
    IHBD_EXPECTS(w >= 0 && w < word_count());
    return words_[static_cast<std::size_t>(w)];
  }

  /// Bits of word `w` that correspond to positions < size() (all-ones
  /// except possibly the last word).
  std::uint64_t valid_mask(int w) const {
    IHBD_EXPECTS(w >= 0 && w < word_count());
    const int tail = bits_ - w * kWordBits;
    return tail >= kWordBits ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << tail) - 1;
  }

  /// XOR `bits` into word `w`. `bits` must not touch the tail.
  void apply_xor(int w, std::uint64_t bits) {
    IHBD_EXPECTS(w >= 0 && w < word_count());
    IHBD_EXPECTS((bits & ~valid_mask(w)) == 0);
    words_[static_cast<std::size_t>(w)] ^= bits;
  }

  /// Number of set bits.
  int popcount() const {
    int n = 0;
    for (const std::uint64_t w : words_) n += std::popcount(w);
    return n;
  }

  /// Number of set bits in positions [begin, end).
  int popcount_range(int begin, int end) const;

  /// Smallest set-bit position >= from, or -1 when none. `from` == size()
  /// is allowed (returns -1), so scans can pass one-past-the-last.
  int find_first_from(int from) const;

  /// The bitwise complement over the valid positions (tail stays clear):
  /// a faulty mask's complement is the healthy mask.
  PackedMask complement() const;

  const std::uint64_t* data() const { return words_.data(); }

  friend bool operator==(const PackedMask&, const PackedMask&) = default;

 private:
  int bits_ = 0;
  std::vector<std::uint64_t> words_;  // tail bits always zero
};

/// Call `fn(position)` for every set bit of `bits`, ascending, where the
/// word sits at index `word` of a mask (positions are absolute).
template <typename Fn>
void for_each_set_bit(std::uint64_t bits, int word, Fn&& fn) {
  while (bits != 0) {
    fn(word * PackedMask::kWordBits + std::countr_zero(bits));
    bits &= bits - 1;
  }
}

/// Call `fn(position)` for every set bit of `mask`, ascending.
template <typename Fn>
void for_each_set_bit(const PackedMask& mask, Fn&& fn) {
  for (int w = 0; w < mask.word_count(); ++w)
    for_each_set_bit(mask.word(w), w, fn);
}

}  // namespace ihbd::fault
