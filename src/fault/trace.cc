#include "src/fault/trace.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <tuple>

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::fault {

struct FaultTrace::TimelineCache {
  std::once_flag once;
  std::shared_ptr<const std::vector<FaultTransition>> edges;
};

FaultTrace::FaultTrace(int node_count, double duration_days,
                       std::vector<FaultEvent> events)
    : node_count_(node_count), duration_days_(duration_days),
      events_(std::move(events)),
      timeline_cache_(std::make_shared<TimelineCache>()) {
  if (node_count <= 0) throw ConfigError("node_count must be positive");
  if (duration_days <= 0.0) throw ConfigError("duration must be positive");
  for (const auto& e : events_) {
    if (e.node < 0 || e.node >= node_count)
      throw ConfigError("fault event node out of range");
    if (e.end_day < e.start_day) throw ConfigError("fault event ends early");
  }
  // Deterministic total order (ties broken by node, then end): keeps
  // save/load round-trips and repeated runs bit-stable.
  std::sort(events_.begin(), events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tie(a.start_day, a.node, a.end_day) <
                     std::tie(b.start_day, b.node, b.end_day);
            });
}

std::vector<bool> FaultTrace::faulty_at(double day) const {
  std::vector<bool> mask(static_cast<std::size_t>(node_count_), false);
  // events_ sorted by start_day: stop scanning once start > day.
  for (const auto& e : events_) {
    if (e.start_day > day) break;
    if (day < e.end_day) mask[static_cast<std::size_t>(e.node)] = true;
  }
  return mask;
}

int FaultTrace::faulty_count_at(double day) const {
  const auto mask = faulty_at(day);
  return static_cast<int>(std::count(mask.begin(), mask.end(), true));
}

std::vector<double> FaultTrace::sample_days(double step_days) const {
  IHBD_EXPECTS(step_days > 0.0);
  std::vector<double> days;
  // Repeated addition (not i * step) on purpose: this must reproduce the
  // serial replay loop's floating-point day sequence bit-for-bit.
  for (double day = 0.0; day < duration_days_; day += step_days)
    days.push_back(day);
  return days;
}

FaultTrace FaultTrace::slice(double start_day, double end_day) const {
  IHBD_EXPECTS(start_day <= end_day);
  std::vector<FaultEvent> overlapping;
  for (const auto& e : events_) {
    if (e.start_day > end_day) break;  // events_ sorted by start_day
    if (e.end_day > start_day) overlapping.push_back(e);
  }
  // Clamp the slice's duration to just past end_day (nextafter keeps
  // end_day itself inside `day < duration` sample loops and stays positive
  // even for end_day == 0), so sample_days()/ratio_series() on a slice stop
  // at the slice boundary instead of running over the full trace range.
  const double sliced_duration =
      std::min(duration_days_,
               std::nextafter(end_day, std::numeric_limits<double>::infinity()));
  return FaultTrace(node_count_, sliced_duration, std::move(overlapping));
}

std::vector<FaultTransition> FaultTrace::transitions() const {
  std::vector<FaultTransition> edges;
  edges.reserve(events_.size() * 2);
  for (const auto& e : events_) {
    edges.push_back({e.start_day, e.node, /*down=*/true});
    edges.push_back({e.end_day, e.node, /*down=*/false});
  }
  // Deterministic total order. Ties within one day may be applied in any
  // order (active-interval counts are order-independent); the sort only
  // keeps repeated runs bit-stable.
  std::sort(edges.begin(), edges.end(),
            [](const FaultTransition& a, const FaultTransition& b) {
              return std::tie(a.day, a.node, a.down) <
                     std::tie(b.day, b.node, b.down);
            });
  return edges;
}

std::shared_ptr<const std::vector<FaultTransition>>
FaultTrace::transition_timeline() const {
  std::call_once(timeline_cache_->once, [&] {
    timeline_cache_->edges =
        std::make_shared<const std::vector<FaultTransition>>(transitions());
  });
  return timeline_cache_->edges;
}

TimeSeries FaultTrace::ratio_series(double step_days) const {
  TimeSeries ts;
  for (double day : sample_days(step_days)) {
    ts.push(day, static_cast<double>(faulty_count_at(day)) /
                     static_cast<double>(node_count_));
  }
  return ts;
}

Summary FaultTrace::ratio_summary(double step_days) const {
  return ratio_series(step_days).summarize_values();
}

double FaultTrace::mean_repair_days() const {
  if (events_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& e : events_) total += e.duration();
  return total / static_cast<double>(events_.size());
}

FaultTrace FaultTrace::split_to_half_nodes(Rng& rng,
                                           double inherit_prob) const {
  IHBD_EXPECTS(inherit_prob >= 0.0 && inherit_prob <= 1.0);
  std::vector<FaultEvent> out;
  out.reserve(events_.size());
  for (const auto& e : events_) {
    for (int half = 0; half < 2; ++half) {
      if (rng.bernoulli(inherit_prob)) {
        out.push_back(FaultEvent{e.node * 2 + half, e.start_day, e.end_day});
      }
    }
  }
  return FaultTrace(node_count_ * 2, duration_days_, std::move(out));
}

FaultTrace FaultTrace::remap_nodes(int new_node_count) const {
  if (new_node_count <= 0 || new_node_count > node_count_)
    throw ConfigError("remap_nodes: target must be in (0, node_count]");
  std::vector<FaultEvent> out;
  out.reserve(events_.size());
  for (const auto& e : events_) {
    // Linear map; events landing beyond the smaller cluster are dropped
    // proportionally (keeps the per-node fault statistics unchanged).
    if (e.node < new_node_count)
      out.push_back(e);
  }
  return FaultTrace(new_node_count, duration_days_, std::move(out));
}

std::vector<SampleWindow> split_windows(std::size_t n, std::size_t window) {
  std::vector<SampleWindow> windows;
  if (n == 0) return windows;
  if (window == 0) window = n;
  for (std::size_t begin = 0; begin < n; begin += window)
    windows.push_back({begin, std::min(window, n - begin)});
  return windows;
}

std::vector<bool> sample_fault_mask(int node_count, double ratio, Rng& rng) {
  IHBD_EXPECTS(node_count > 0);
  IHBD_EXPECTS(ratio >= 0.0 && ratio <= 1.0);
  const int want = static_cast<int>(
      std::lround(ratio * static_cast<double>(node_count)));
  std::vector<int> ids(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) ids[static_cast<std::size_t>(i)] = i;
  rng.shuffle(ids);
  std::vector<bool> mask(static_cast<std::size_t>(node_count), false);
  for (int i = 0; i < want; ++i)
    mask[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])] = true;
  return mask;
}

std::vector<bool> sample_fault_mask_iid(int node_count, double ratio,
                                        Rng& rng) {
  IHBD_EXPECTS(node_count > 0);
  IHBD_EXPECTS(ratio >= 0.0 && ratio <= 1.0);
  std::vector<bool> mask(static_cast<std::size_t>(node_count), false);
  for (auto&& m : mask) m = rng.bernoulli(ratio);
  return mask;
}

}  // namespace ihbd::fault
