#include "src/fault/trace.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <tuple>

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::fault {

struct FaultTrace::TimelineCache {
  std::once_flag once;
  std::shared_ptr<const std::vector<FaultTransition>> edges;
  std::once_flag words_once;
  std::shared_ptr<const WordDeltaTimeline> words;
  // Grid-folded timelines, one per distinct sample step. Replays use a
  // handful of steps at most, so a flat list beats a map.
  std::mutex grids_mutex;
  std::vector<std::pair<double, std::shared_ptr<const WordDeltaTimeline>>>
      grids;
};

FaultTrace::FaultTrace(int node_count, double duration_days,
                       std::vector<FaultEvent> events)
    : node_count_(node_count), duration_days_(duration_days),
      events_(std::move(events)),
      timeline_cache_(std::make_shared<TimelineCache>()) {
  if (node_count <= 0) throw ConfigError("node_count must be positive");
  if (duration_days <= 0.0) throw ConfigError("duration must be positive");
  for (const auto& e : events_) {
    if (e.node < 0 || e.node >= node_count)
      throw ConfigError("fault event node out of range");
    if (e.end_day < e.start_day) throw ConfigError("fault event ends early");
  }
  // Deterministic total order (ties broken by node, then end): keeps
  // save/load round-trips and repeated runs bit-stable.
  std::sort(events_.begin(), events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tie(a.start_day, a.node, a.end_day) <
                     std::tie(b.start_day, b.node, b.end_day);
            });
}

std::vector<bool> FaultTrace::faulty_at(double day) const {
  std::vector<bool> mask(static_cast<std::size_t>(node_count_), false);
  // events_ sorted by start_day: stop scanning once start > day.
  for (const auto& e : events_) {
    if (e.start_day > day) break;
    if (day < e.end_day) mask[static_cast<std::size_t>(e.node)] = true;
  }
  return mask;
}

PackedMask FaultTrace::packed_faulty_at(double day) const {
  PackedMask mask(node_count_);
  for (const auto& e : events_) {
    if (e.start_day > day) break;
    if (day < e.end_day) mask.set(e.node, true);
  }
  return mask;
}

int FaultTrace::faulty_count_at(double day) const {
  const auto mask = faulty_at(day);
  return static_cast<int>(std::count(mask.begin(), mask.end(), true));
}

std::vector<double> FaultTrace::sample_days(double step_days) const {
  IHBD_EXPECTS(step_days > 0.0);
  std::vector<double> days;
  // Repeated addition (not i * step) on purpose: this must reproduce the
  // serial replay loop's floating-point day sequence bit-for-bit.
  for (double day = 0.0; day < duration_days_; day += step_days)
    days.push_back(day);
  return days;
}

FaultTrace FaultTrace::slice(double start_day, double end_day) const {
  IHBD_EXPECTS(start_day <= end_day);
  std::vector<FaultEvent> overlapping;
  for (const auto& e : events_) {
    if (e.start_day > end_day) break;  // events_ sorted by start_day
    if (e.end_day > start_day) overlapping.push_back(e);
  }
  // Clamp the slice's duration to just past end_day (nextafter keeps
  // end_day itself inside `day < duration` sample loops and stays positive
  // even for end_day == 0), so sample_days()/ratio_series() on a slice stop
  // at the slice boundary instead of running over the full trace range.
  const double sliced_duration =
      std::min(duration_days_,
               std::nextafter(end_day, std::numeric_limits<double>::infinity()));
  return FaultTrace(node_count_, sliced_duration, std::move(overlapping));
}

std::vector<FaultTransition> FaultTrace::transitions() const {
  std::vector<FaultTransition> edges;
  edges.reserve(events_.size() * 2);
  for (const auto& e : events_) {
    edges.push_back({e.start_day, e.node, /*down=*/true});
    edges.push_back({e.end_day, e.node, /*down=*/false});
  }
  // Deterministic total order. Ties within one day may be applied in any
  // order (active-interval counts are order-independent); the sort only
  // keeps repeated runs bit-stable.
  std::sort(edges.begin(), edges.end(),
            [](const FaultTransition& a, const FaultTransition& b) {
              return std::tie(a.day, a.node, a.down) <
                     std::tie(b.day, b.node, b.down);
            });
  return edges;
}

std::shared_ptr<const std::vector<FaultTransition>>
FaultTrace::transition_timeline() const {
  std::call_once(timeline_cache_->once, [&] {
    timeline_cache_->edges =
        std::make_shared<const std::vector<FaultTransition>>(transitions());
  });
  return timeline_cache_->edges;
}

std::shared_ptr<const WordDeltaTimeline> FaultTrace::word_delta_timeline()
    const {
  std::call_once(timeline_cache_->words_once, [&] {
    const auto edges = transition_timeline();
    auto out = std::make_shared<WordDeltaTimeline>();
    // One active-interval walk over the whole timeline (the same counting
    // FaultMaskCursor's per-node path does), folding each exact-day batch
    // into the net per-word XOR of its genuine bit changes.
    std::vector<int> active(static_cast<std::size_t>(node_count_), 0);
    PackedMask current(node_count_);
    std::vector<std::uint64_t> word_xor(
        static_cast<std::size_t>(current.word_count()), 0);
    std::vector<char> word_stamp(
        static_cast<std::size_t>(current.word_count()), 0);
    std::vector<int> dirty_words;
    std::vector<int> touched;
    std::vector<char> touch_stamp(static_cast<std::size_t>(node_count_), 0);
    out->offsets.push_back(0);
    std::size_t i = 0;
    while (i < edges->size()) {
      const double day = (*edges)[i].day;
      do {
        const FaultTransition& edge = (*edges)[i++];
        const auto node = static_cast<std::size_t>(edge.node);
        active[node] += edge.down ? 1 : -1;
        if (!touch_stamp[node]) {
          touch_stamp[node] = 1;
          touched.push_back(edge.node);
        }
      } while (i < edges->size() && (*edges)[i].day == day);
      for (const int node : touched) {
        const auto n = static_cast<std::size_t>(node);
        touch_stamp[n] = 0;
        if (current.test(node) == (active[n] > 0)) continue;
        const int w = node / PackedMask::kWordBits;
        if (!word_stamp[static_cast<std::size_t>(w)]) {
          word_stamp[static_cast<std::size_t>(w)] = 1;
          word_xor[static_cast<std::size_t>(w)] = 0;
          dirty_words.push_back(w);
        }
        word_xor[static_cast<std::size_t>(w)] ^=
            std::uint64_t{1} << (node % PackedMask::kWordBits);
      }
      touched.clear();
      if (dirty_words.empty()) continue;  // all edges cancelled: omit the day
      std::sort(dirty_words.begin(), dirty_words.end());
      for (const int w : dirty_words) {
        word_stamp[static_cast<std::size_t>(w)] = 0;
        // Nonzero by construction: each node contributes its net flip at
        // most once, and distinct nodes occupy distinct bits.
        const std::uint64_t bits = word_xor[static_cast<std::size_t>(w)];
        current.apply_xor(w, bits);
        out->deltas.push_back({w, bits});
      }
      dirty_words.clear();
      out->days.push_back(day);
      out->offsets.push_back(static_cast<int>(out->deltas.size()));
    }
    timeline_cache_->words = std::move(out);
  });
  return timeline_cache_->words;
}

std::shared_ptr<const WordDeltaTimeline> FaultTrace::word_delta_timeline(
    double step_days) const {
  IHBD_EXPECTS(step_days > 0.0);
  {
    std::lock_guard<std::mutex> lock(timeline_cache_->grids_mutex);
    for (const auto& [step, grid] : timeline_cache_->grids)
      if (step == step_days) return grid;
  }
  const auto exact = word_delta_timeline();
  const std::vector<double> grid_days = sample_days(step_days);
  auto out = std::make_shared<WordDeltaTimeline>();
  out->offsets.push_back(0);
  const int words = (node_count_ + PackedMask::kWordBits - 1) /
                    PackedMask::kWordBits;
  std::vector<std::uint64_t> word_xor(static_cast<std::size_t>(words), 0);
  std::vector<char> word_stamp(static_cast<std::size_t>(words), 0);
  std::vector<int> dirty_words;
  std::size_t g = 0;
  for (const double day : grid_days) {
    // Fold every exact-day group that became visible by this sample day
    // (exact groups are net and compose by XOR, so the fold is exact).
    for (; g < exact->days.size() && exact->days[g] <= day; ++g) {
      for (int i = exact->offsets[g]; i < exact->offsets[g + 1]; ++i) {
        const WordDelta& d = exact->deltas[static_cast<std::size_t>(i)];
        const auto w = static_cast<std::size_t>(d.word);
        if (!word_stamp[w]) {
          word_stamp[w] = 1;
          word_xor[w] = 0;
          dirty_words.push_back(d.word);
        }
        word_xor[w] ^= d.xor_bits;
      }
    }
    if (dirty_words.empty()) continue;
    std::sort(dirty_words.begin(), dirty_words.end());
    bool any = false;
    for (const int w : dirty_words) {
      word_stamp[static_cast<std::size_t>(w)] = 0;
      const std::uint64_t bits = word_xor[static_cast<std::size_t>(w)];
      if (bits == 0) continue;  // down+up within one sample step cancels
      out->deltas.push_back({w, bits});
      any = true;
    }
    dirty_words.clear();
    if (!any) continue;
    out->days.push_back(day);
    out->offsets.push_back(static_cast<int>(out->deltas.size()));
  }
  // Exact groups past the last sample day keep their own days: a cursor
  // advanced beyond the grid still applies them at the exact moment.
  for (; g < exact->days.size(); ++g) {
    for (int i = exact->offsets[g]; i < exact->offsets[g + 1]; ++i)
      out->deltas.push_back(exact->deltas[static_cast<std::size_t>(i)]);
    out->days.push_back(exact->days[g]);
    out->offsets.push_back(static_cast<int>(out->deltas.size()));
  }
  std::lock_guard<std::mutex> lock(timeline_cache_->grids_mutex);
  for (const auto& [step, grid] : timeline_cache_->grids)
    if (step == step_days) return grid;  // lost a benign build race
  timeline_cache_->grids.emplace_back(step_days, out);
  return out;
}

TimeSeries FaultTrace::ratio_series(double step_days) const {
  TimeSeries ts;
  for (double day : sample_days(step_days)) {
    ts.push(day, static_cast<double>(faulty_count_at(day)) /
                     static_cast<double>(node_count_));
  }
  return ts;
}

Summary FaultTrace::ratio_summary(double step_days) const {
  return ratio_series(step_days).summarize_values();
}

double FaultTrace::mean_repair_days() const {
  if (events_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& e : events_) total += e.duration();
  return total / static_cast<double>(events_.size());
}

FaultTrace FaultTrace::split_to_half_nodes(Rng& rng,
                                           double inherit_prob) const {
  IHBD_EXPECTS(inherit_prob >= 0.0 && inherit_prob <= 1.0);
  std::vector<FaultEvent> out;
  out.reserve(events_.size());
  for (const auto& e : events_) {
    for (int half = 0; half < 2; ++half) {
      if (rng.bernoulli(inherit_prob)) {
        out.push_back(FaultEvent{e.node * 2 + half, e.start_day, e.end_day});
      }
    }
  }
  return FaultTrace(node_count_ * 2, duration_days_, std::move(out));
}

FaultTrace FaultTrace::remap_nodes(int new_node_count) const {
  if (new_node_count <= 0 || new_node_count > node_count_)
    throw ConfigError("remap_nodes: target must be in (0, node_count]");
  std::vector<FaultEvent> out;
  out.reserve(events_.size());
  for (const auto& e : events_) {
    // Linear map; events landing beyond the smaller cluster are dropped
    // proportionally (keeps the per-node fault statistics unchanged).
    if (e.node < new_node_count)
      out.push_back(e);
  }
  return FaultTrace(new_node_count, duration_days_, std::move(out));
}

std::vector<SampleWindow> split_windows(std::size_t n, std::size_t window) {
  std::vector<SampleWindow> windows;
  if (n == 0) return windows;
  if (window == 0) window = n;
  for (std::size_t begin = 0; begin < n; begin += window)
    windows.push_back({begin, std::min(window, n - begin)});
  return windows;
}

std::vector<bool> sample_fault_mask(int node_count, double ratio, Rng& rng) {
  IHBD_EXPECTS(node_count > 0);
  IHBD_EXPECTS(ratio >= 0.0 && ratio <= 1.0);
  const int want = static_cast<int>(
      std::lround(ratio * static_cast<double>(node_count)));
  std::vector<int> ids(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) ids[static_cast<std::size_t>(i)] = i;
  rng.shuffle(ids);
  std::vector<bool> mask(static_cast<std::size_t>(node_count), false);
  for (int i = 0; i < want; ++i)
    mask[static_cast<std::size_t>(ids[static_cast<std::size_t>(i)])] = true;
  return mask;
}

std::vector<bool> sample_fault_mask_iid(int node_count, double ratio,
                                        Rng& rng) {
  IHBD_EXPECTS(node_count > 0);
  IHBD_EXPECTS(ratio >= 0.0 && ratio <= 1.0);
  std::vector<bool> mask(static_cast<std::size_t>(node_count), false);
  for (auto&& m : mask) m = rng.bernoulli(ratio);
  return mask;
}

}  // namespace ihbd::fault
