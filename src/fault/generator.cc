#include "src/fault/generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/error.h"

namespace ihbd::fault {

FaultTrace generate_trace(const TraceGenConfig& config) {
  if (config.node_count <= 0) throw ConfigError("node_count must be > 0");
  if (config.duration_days <= 0.0) throw ConfigError("duration must be > 0");
  Rng rng(config.seed);
  std::vector<FaultEvent> events;

  // 1. Per-node baseline faults: Poisson arrivals per node.
  for (int node = 0; node < config.node_count; ++node) {
    double day = 0.0;
    while (true) {
      day += rng.exponential(config.node_fault_rate_per_day);
      if (day >= config.duration_days) break;
      const double repair =
          rng.lognormal(config.repair_lognorm_mu, config.repair_lognorm_sigma);
      events.push_back(FaultEvent{
          node, day, std::min(day + repair, config.duration_days)});
      day += repair;  // a node cannot re-fail while down
    }
  }

  // 2. Cluster incidents: groups of nodes down simultaneously. Incident
  // groups are contiguous node ranges (a failed ToR/PDU takes down a rack
  // neighborhood), which also stresses the K-hop bypass realistically.
  double day = 0.0;
  while (true) {
    day += rng.exponential(config.incident_rate_per_day);
    if (day >= config.duration_days) break;
    const double frac =
        config.incident_frac_mean *
        std::exp(rng.normal(0.0, config.incident_frac_sigma));
    int size = std::max(
        1, static_cast<int>(frac * static_cast<double>(config.node_count)));
    size = std::min(size, config.node_count);
    const double duration = rng.lognormal(config.incident_duration_mu,
                                          config.incident_duration_sigma);
    const int start_node = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(config.node_count)));
    for (int k = 0; k < size; ++k) {
      const int node = (start_node + k) % config.node_count;
      events.push_back(FaultEvent{
          node, day, std::min(day + duration, config.duration_days)});
    }
  }

  return FaultTrace(config.node_count, config.duration_days,
                    std::move(events));
}

}  // namespace ihbd::fault
