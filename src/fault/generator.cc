#include "src/fault/generator.h"

#include <algorithm>
#include <cmath>

#include "src/common/error.h"

namespace ihbd::fault {

FaultTrace generate_trace(const TraceGenConfig& config) {
  const auto require = [](bool ok, const char* field, const char* what) {
    if (!ok)
      throw ConfigError(std::string("TraceGenConfig.") + field + " " + what);
  };
  require(config.node_count > 0, "node_count", "must be > 0");
  require(config.duration_days > 0.0, "duration_days", "must be > 0");
  require(config.node_fault_rate_per_day > 0.0, "node_fault_rate_per_day",
          "must be > 0");
  require(config.repair_lognorm_sigma >= 0.0, "repair_lognorm_sigma",
          "must be >= 0");
  require(config.incident_rate_per_day > 0.0, "incident_rate_per_day",
          "must be > 0");
  require(config.incident_frac_mean > 0.0, "incident_frac_mean",
          "must be > 0");
  require(config.incident_frac_sigma >= 0.0, "incident_frac_sigma",
          "must be >= 0");
  require(config.incident_duration_sigma >= 0.0, "incident_duration_sigma",
          "must be >= 0");
  Rng rng(config.seed);
  std::vector<FaultEvent> events;

  // 1. Per-node baseline faults: Poisson arrivals per node.
  for (int node = 0; node < config.node_count; ++node) {
    double day = 0.0;
    while (true) {
      day += rng.exponential(config.node_fault_rate_per_day);
      if (day >= config.duration_days) break;
      const double repair =
          rng.lognormal(config.repair_lognorm_mu, config.repair_lognorm_sigma);
      events.push_back(FaultEvent{
          node, day, std::min(day + repair, config.duration_days)});
      day += repair;  // a node cannot re-fail while down
    }
  }

  // 2. Cluster incidents: groups of nodes down simultaneously. Incident
  // groups are contiguous node ranges (a failed ToR/PDU takes down a rack
  // neighborhood), which also stresses the K-hop bypass realistically.
  double day = 0.0;
  while (true) {
    day += rng.exponential(config.incident_rate_per_day);
    if (day >= config.duration_days) break;
    const double frac =
        config.incident_frac_mean *
        std::exp(rng.normal(0.0, config.incident_frac_sigma));
    int size = std::max(
        1, static_cast<int>(frac * static_cast<double>(config.node_count)));
    size = std::min(size, config.node_count);
    const double duration = rng.lognormal(config.incident_duration_mu,
                                          config.incident_duration_sigma);
    const int start_node = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(config.node_count)));
    for (int k = 0; k < size; ++k) {
      const int node = (start_node + k) % config.node_count;
      events.push_back(FaultEvent{
          node, day, std::min(day + duration, config.duration_days)});
    }
  }

  return FaultTrace(config.node_count, config.duration_days,
                    std::move(events));
}

}  // namespace ihbd::fault
