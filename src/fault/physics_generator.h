// Physics-grounded fault trace generator: degradation instead of memoryless
// Poisson draws.
//
// Each node carries the health state of its weakest OCSTrx link: launch OMA
// set at (re)calibration, a laser/TO aging random walk that erodes it, and a
// mean-reverting MZI bias-drift penalty. Every monitor tick the generator
// evaluates the link through phy::BerModel — insertion loss and detector
// noise at the current hall temperature (phy::MziParams thermal
// coefficients) — and declares a fault when the measured BER crosses
// `ber_threshold`. Above BerParams::drift_onset_temp_c the TO phase trim
// also takes transient exponential-tail hits (the same mechanism as
// BerModel::measure_ber), so a hot hall fails marginal links in bursts.
//
// Correlation enters twice:
//   * every node shares the hall temperature field (seasonal + diurnal
//     cycles plus stochastic cooling excursions), so thermal stress fails
//     many marginal transceivers together — correlated, bursty arrivals
//     with no cross-node sampling at all;
//   * optional failure STORMS take down a rack- or power-domain-aligned
//     blast radius at once (the contiguous-range geometry the ToR/PDU
//     incidents and topo::explosion_radius use), and the downed nodes queue
//     for a bounded repair-crew pool — big storms drain slowly, giving the
//     trace its long repair tails.
//
// Deterministic for a given config: one substream per node plus dedicated
// excursion/storm substreams, all derived from `seed`. Emits a standard
// FaultTrace, so every replay tier, bench and the control plane consume it
// unchanged; storm outages may overlap degradation outages on one node
// (nested intervals — see the FaultTrace overlap contract).
//
// Defaults are calibrated to the same PaperTraceStats targets as
// generator.h (mean 2.33%, p50 1.67%, p99 7.22% over 348 days of 8-GPU
// nodes) while being strictly burstier than the Poisson model (higher
// p99/p50 ratio) — tests/physics_fault_test.cc pins both properties.
#pragma once

#include <cstdint>

#include "src/fault/trace.h"
#include "src/phy/ber.h"
#include "src/phy/switch_matrix.h"

namespace ihbd::fault {

/// Which synthetic trace family a bench replays (--trace-model).
enum class TraceModel {
  kPoisson,  ///< generator.h: Poisson arrivals + cluster incidents
  kPhysics,  ///< degradation + shared thermal field (storms off)
  kStorm,    ///< degradation + correlated storms with crew-limited repair
};

/// Correlated-failure storm process (power/rack blast radius).
struct StormConfig {
  /// Storm arrival rate (storms/day). 0 disables the process.
  double rate_per_day = 0.0;
  /// Blast geometry: storms take out one rack (`nodes_per_rack` contiguous
  /// nodes) or, with `domain_prob`, a whole power domain
  /// (`racks_per_domain` racks) — rack-aligned, mirroring the fat-tree
  /// grouping the control plane places against.
  int nodes_per_rack = 8;
  int racks_per_domain = 4;
  double domain_prob = 0.3;
  /// Repair-crew pool: each downed node needs one crew for a log-normal
  /// work duration; with only `repair_crews` crews, repairs queue and a
  /// domain-wide storm drains over days (the long tail).
  int repair_crews = 3;
  double crew_work_mu = -1.4;     ///< log work, days (median ~0.25)
  double crew_work_sigma = 0.6;
};

struct PhysicsTraceConfig {
  int node_count = 375;          ///< ~3K GPUs at 8 GPUs/node
  double duration_days = 348.0;  ///< paper's collection window
  std::uint64_t seed = 2025;

  /// BER monitor cadence: the link is probed once per tick, and a probe
  /// over threshold declares the fault (hazard is per probe by design).
  double tick_days = 0.05;

  // --- hall temperature field (shared across nodes => correlation) ---
  double base_temp_c = 36.0;
  double seasonal_amp_c = 4.0;        ///< yearly swing
  double diurnal_amp_c = 3.0;         ///< daily swing
  double node_offset_sigma_c = 1.5;   ///< static per-node hot/cold spots
  /// Stochastic cooling excursions: Poisson arrivals, Gaussian amplitude,
  /// log-normal duration. The hall runs hot for the excursion, pushing the
  /// marginal tail of the fleet over threshold together.
  double excursion_rate_per_day = 0.12;
  double excursion_amp_mu_c = 6.2;
  double excursion_amp_sigma_c = 3.0;
  double excursion_duration_mu = -2.3;  ///< log days (median ~0.10)
  double excursion_duration_sigma = 0.5;

  // --- per-link health (weakest transceiver of the node) ---
  double oma_dbm_mean = -6.3;   ///< launch OMA right after (re)calibration
  double oma_dbm_sigma = 0.6;   ///< device spread (weakest-of-bundle)
  double aging_db_per_day = 0.085;  ///< mean laser/TO aging slope
  double aging_walk_db = 0.02;      ///< aging random walk, dB per sqrt(day)
  double drift_reversion_per_day = 1.0;  ///< MZI bias OU mean reversion
  double drift_sigma_db = 0.25;          ///< OU volatility, dB per sqrt(day)

  /// Probability that a TO drift transient occurs during one probe
  /// interval at all (the exponential tail then decides whether it eats
  /// the margin). Transients are discrete events, not a continuum.
  double transient_prob = 0.7;

  /// Measured BER above this declares the link (and node) faulty.
  double ber_threshold = 1e-9;

  /// Degradation repair = swap/recalibrate: log-normal, restores health.
  double repair_lognorm_mu = -0.69;   ///< median ~0.50 days
  double repair_lognorm_sigma = 0.55;

  // --- physical layer the health state is evaluated through ---
  phy::SwitchMatrixParams matrix;  ///< MZI geometry + thermal coefficients
  phy::BerParams ber;              ///< noise, drift onset, tester depth

  StormConfig storm;  ///< disabled unless storm.rate_per_day > 0
};

/// Generate a degradation-driven trace. Deterministic for a given config.
/// Throws ConfigError naming the offending field on invalid input.
FaultTrace generate_physics_trace(const PhysicsTraceConfig& config = {});

/// Calibrated defaults for `--trace-model physics`: storms off, thermal
/// excursions supply the bursty tail.
PhysicsTraceConfig physics_trace_defaults();

/// Calibrated defaults for `--trace-model storm`: excursions damped,
/// correlated storms + crew-limited repair supply the (longer) tail.
PhysicsTraceConfig storm_trace_defaults();

/// Canonical CLI spelling of a trace model ("poisson"/"physics"/"storm").
const char* trace_model_name(TraceModel model);

}  // namespace ihbd::fault
