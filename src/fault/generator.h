// Synthetic production-like fault trace generator.
//
// Calibrated to the published statistics of the paper's 348-day production
// trace (Appendix A / Fig. 18): mean faulty-8-GPU-node ratio 2.33%,
// p50 1.67%, p99 7.22%. Two superimposed processes produce both the steady
// baseline and the bursty right tail:
//   1. independent per-node faults (Poisson arrivals, log-normal repair) -
//      sets the p50 baseline;
//   2. cluster-level incidents (switch/power events) that take down a
//      random group of nodes simultaneously - sets the mean uplift and the
//      heavy p99 tail.
#pragma once

#include <cstdint>

#include "src/fault/trace.h"

namespace ihbd::fault {

struct TraceGenConfig {
  int node_count = 375;          ///< ~3K GPUs at 8 GPUs/node
  double duration_days = 348.0;  ///< paper's collection window

  // --- per-node baseline process ---
  /// Per-node fault arrival rate (faults/day). With mean repair below,
  /// steady-state per-node unavailability = rate * repair ~= 1.67% (p50).
  double node_fault_rate_per_day = 0.028;
  /// Log-normal repair duration: median exp(mu) days, spread sigma.
  double repair_lognorm_mu = -0.69;   ///< median ~0.50 days
  double repair_lognorm_sigma = 0.55; ///< mean ~0.58 days

  // --- cluster incident process ---
  /// Cluster-level incident arrival rate (incidents/day).
  double incident_rate_per_day = 0.16;
  /// Incident size as a fraction of the cluster (log-normal around this).
  double incident_frac_mean = 0.05;
  double incident_frac_sigma = 0.45;  ///< log-space spread
  /// Incident duration (log-normal, days).
  double incident_duration_mu = -0.92;  ///< median ~0.40 days
  double incident_duration_sigma = 0.50;

  std::uint64_t seed = 2025;
};

/// Generate a synthetic trace. Deterministic for a given config (seed).
FaultTrace generate_trace(const TraceGenConfig& config = {});

/// The published statistics the generator is calibrated against.
struct PaperTraceStats {
  static constexpr double kMeanRatio = 0.0233;
  static constexpr double kP50Ratio = 0.0167;
  static constexpr double kP99Ratio = 0.0722;
  static constexpr double kDurationDays = 348.0;
};

}  // namespace ihbd::fault
