// Fault-trace persistence. The paper open-sourced its production trace
// (github.com/stepfun-ai/InfiniteHBD-Trace) as per-event records; this
// module reads/writes the same natural CSV shape so users can replay a
// real trace through every evaluation in this library:
//
//     node,start_day,end_day
//     17,3.25,3.75
//     ...
//
// Header row optional on load; '#' comment lines skipped.
#pragma once

#include <iosfwd>
#include <string>

#include "src/fault/packed_mask.h"
#include "src/fault/trace.h"

namespace ihbd::fault {

/// Serialize a trace to CSV (with header and a metadata comment line).
void save_trace_csv(const FaultTrace& trace, std::ostream& out);
bool save_trace_csv(const FaultTrace& trace, const std::string& path);

/// Parse a trace from CSV. `node_count`/`duration_days` <= 0 are inferred
/// (max node id + 1, max end_day). Throws ConfigError (with the offending
/// line) on malformed rows — partial or non-finite fields, extra columns,
/// negative node ids or start days, end < start, node id >= an explicit
/// node_count, end_day beyond an explicit duration, or rows not sorted by
/// start_day (save_trace_csv always writes them sorted).
FaultTrace load_trace_csv(std::istream& in, int node_count = 0,
                          double duration_days = 0.0);
FaultTrace load_trace_csv_file(const std::string& path, int node_count = 0,
                               double duration_days = 0.0);

/// Serialize a packed fault mask as one self-describing text line —
/// `packed-mask v1 <bit_count> <hex word> ...` — the wire form a
/// distributed sweep shard would exchange as its mask snapshot (packed
/// words serialize as-is; no per-node expansion).
void save_packed_mask(const PackedMask& mask, std::ostream& out);

/// Parse a line produced by save_packed_mask. Throws ConfigError on a
/// malformed line or a set bit beyond the declared bit count.
PackedMask load_packed_mask(std::istream& in);

}  // namespace ihbd::fault
