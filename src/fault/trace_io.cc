#include "src/fault/trace_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/error.h"

namespace ihbd::fault {

void save_trace_csv(const FaultTrace& trace, std::ostream& out) {
  out.precision(17);  // lossless double round-trip
  out << "# nodes=" << trace.node_count()
      << " duration_days=" << trace.duration_days() << "\n";
  out << "node,start_day,end_day\n";
  for (const auto& e : trace.events())
    out << e.node << ',' << e.start_day << ',' << e.end_day << '\n';
}

bool save_trace_csv(const FaultTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_trace_csv(trace, out);
  return static_cast<bool>(out);
}

FaultTrace load_trace_csv(std::istream& in, int node_count,
                          double duration_days) {
  std::vector<FaultEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    // Skip a header row.
    if (line.find("node") != std::string::npos &&
        line.find_first_of("0123456789") == std::string::npos)
      continue;
    std::istringstream fields(line);
    std::string cell;
    FaultEvent e;
    try {
      if (!std::getline(fields, cell, ',')) throw std::invalid_argument(cell);
      e.node = std::stoi(cell);
      if (!std::getline(fields, cell, ',')) throw std::invalid_argument(cell);
      e.start_day = std::stod(cell);
      if (!std::getline(fields, cell, ',')) throw std::invalid_argument(cell);
      e.end_day = std::stod(cell);
    } catch (const std::exception&) {
      throw ConfigError("trace CSV: malformed row at line " +
                        std::to_string(line_no) + ": '" + line + "'");
    }
    events.push_back(e);
  }

  if (node_count <= 0) {
    int max_node = -1;
    for (const auto& e : events) max_node = std::max(max_node, e.node);
    node_count = max_node + 1;
    if (node_count <= 0)
      throw ConfigError("trace CSV: empty trace needs explicit node_count");
  }
  if (duration_days <= 0.0) {
    for (const auto& e : events)
      duration_days = std::max(duration_days, e.end_day);
    if (duration_days <= 0.0)
      throw ConfigError("trace CSV: cannot infer duration");
  }
  return FaultTrace(node_count, duration_days, std::move(events));
}

FaultTrace load_trace_csv_file(const std::string& path, int node_count,
                               double duration_days) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open trace file: " + path);
  return load_trace_csv(in, node_count, duration_days);
}

}  // namespace ihbd::fault
