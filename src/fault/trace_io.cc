#include "src/fault/trace_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "src/common/error.h"

namespace ihbd::fault {

void save_trace_csv(const FaultTrace& trace, std::ostream& out) {
  out.precision(17);  // lossless double round-trip
  out << "# nodes=" << trace.node_count()
      << " duration_days=" << trace.duration_days() << "\n";
  out << "node,start_day,end_day\n";
  for (const auto& e : trace.events())
    out << e.node << ',' << e.start_day << ',' << e.end_day << '\n';
}

bool save_trace_csv(const FaultTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_trace_csv(trace, out);
  return static_cast<bool>(out);
}

namespace {

[[noreturn]] void row_error(std::size_t line_no, const std::string& line,
                            const std::string& why) {
  throw ConfigError("trace CSV: " + why + " at line " +
                    std::to_string(line_no) + ": '" + line + "'");
}

/// Whole-field integer parse: "12abc" and "" are malformed, not 12.
int parse_int_field(const std::string& cell) {
  std::size_t used = 0;
  const int v = std::stoi(cell, &used);
  if (used != cell.size()) throw std::invalid_argument(cell);
  return v;
}

/// Whole-field finite double parse: trailing junk, nan and inf all reject.
double parse_double_field(const std::string& cell) {
  std::size_t used = 0;
  const double v = std::stod(cell, &used);
  if (used != cell.size() || !std::isfinite(v))
    throw std::invalid_argument(cell);
  return v;
}

}  // namespace

FaultTrace load_trace_csv(std::istream& in, int node_count,
                          double duration_days) {
  std::vector<FaultEvent> events;
  std::string line;
  std::size_t line_no = 0;
  double prev_start = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    // Skip a header row.
    if (line.find("node") != std::string::npos &&
        line.find_first_of("0123456789") == std::string::npos)
      continue;
    std::istringstream fields(line);
    std::string cell;
    FaultEvent e;
    try {
      if (!std::getline(fields, cell, ',')) throw std::invalid_argument(cell);
      e.node = parse_int_field(cell);
      if (!std::getline(fields, cell, ',')) throw std::invalid_argument(cell);
      e.start_day = parse_double_field(cell);
      if (!std::getline(fields, cell, ',')) throw std::invalid_argument(cell);
      e.end_day = parse_double_field(cell);
      if (std::getline(fields, cell, ',')) throw std::invalid_argument(cell);
    } catch (const std::exception&) {
      row_error(line_no, line, "malformed row");
    }
    // Row-level semantic checks carry the line number; the FaultTrace
    // constructor re-validates but can only say "somewhere in the trace".
    if (e.node < 0) row_error(line_no, line, "negative node id");
    if (node_count > 0 && e.node >= node_count)
      row_error(line_no, line,
                "node id >= node_count (" + std::to_string(node_count) + ")");
    if (e.start_day < 0.0) row_error(line_no, line, "negative start_day");
    if (e.end_day < e.start_day)
      row_error(line_no, line, "negative duration (end_day < start_day)");
    if (duration_days > 0.0 && e.end_day > duration_days)
      row_error(line_no, line,
                "end_day beyond trace duration (" +
                    std::to_string(duration_days) + ")");
    // save_trace_csv always writes events in start order; an out-of-order
    // row means a corrupt or hand-mangled file, not a real trace.
    if (!events.empty() && e.start_day < prev_start)
      row_error(line_no, line, "events not sorted by start_day");
    prev_start = e.start_day;
    events.push_back(e);
  }

  if (node_count <= 0) {
    int max_node = -1;
    for (const auto& e : events) max_node = std::max(max_node, e.node);
    node_count = max_node + 1;
    if (node_count <= 0)
      throw ConfigError("trace CSV: empty trace needs explicit node_count");
  }
  if (duration_days <= 0.0) {
    for (const auto& e : events)
      duration_days = std::max(duration_days, e.end_day);
    if (duration_days <= 0.0)
      throw ConfigError("trace CSV: cannot infer duration");
  }
  return FaultTrace(node_count, duration_days, std::move(events));
}

FaultTrace load_trace_csv_file(const std::string& path, int node_count,
                               double duration_days) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open trace file: " + path);
  return load_trace_csv(in, node_count, duration_days);
}

void save_packed_mask(const PackedMask& mask, std::ostream& out) {
  out << "packed-mask v1 " << mask.size();
  const auto flags = out.flags();
  out << std::hex;
  for (int w = 0; w < mask.word_count(); ++w) out << ' ' << mask.word(w);
  out.flags(flags);
  out << '\n';
}

PackedMask load_packed_mask(std::istream& in) {
  std::string tag, version;
  int bits = -1;
  if (!(in >> tag >> version >> bits) || tag != "packed-mask" ||
      version != "v1" || bits < 0)
    throw ConfigError("packed mask: malformed header");
  PackedMask mask(bits);
  for (int w = 0; w < mask.word_count(); ++w) {
    std::string cell;
    if (!(in >> cell)) throw ConfigError("packed mask: truncated words");
    std::uint64_t word = 0;
    try {
      std::size_t used = 0;
      word = std::stoull(cell, &used, 16);
      if (used != cell.size()) throw std::invalid_argument(cell);
    } catch (const std::exception&) {
      throw ConfigError("packed mask: malformed word '" + cell + "'");
    }
    if ((word & ~mask.valid_mask(w)) != 0)
      throw ConfigError("packed mask: set bit beyond declared size");
    mask.apply_xor(w, word);
  }
  return mask;
}

}  // namespace ihbd::fault
