// Deterministic fault-injection plan for OCS session switches.
//
// The robustness story of the control plane ("with 10% of reconfigurations
// failing, every run still completes") needs failures that are (a) cheap,
// (b) independent of the RNG streams the rest of the run consumes — adding
// injection must not perturb switch-latency draws or the workload — and
// (c) reproducible across replays, thread counts and shard shapes.
//
// An InjectionPlan is therefore stateless: whether one drain attempt fails
// is a pure hash of (seed, node, attempt sequence number). The queue keeps
// the sequence counter; the plan never holds mutable state, so copies are
// free and the decision for attempt k never depends on how earlier
// attempts were batched.
#pragma once

#include <cstdint>

namespace ihbd::fault {

/// Decides which OCS session-switch attempts fail (transiently).
struct InjectionPlan {
  /// Probability that one apply attempt fails. 0 disables injection.
  double session_failure_rate = 0.0;
  std::uint64_t seed = 0;

  bool enabled() const { return session_failure_rate > 0.0; }

  /// True when the attempt identified by (node, sequence) should fail.
  /// Pure function of the plan and its arguments.
  bool should_fail(int node, std::uint64_t sequence) const {
    if (!enabled()) return false;
    // splitmix64 finalizer over a (seed, node, sequence) mix.
    std::uint64_t x = seed ^ (static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(node)) *
                              0x9e3779b97f4a7c15ull);
    x ^= sequence + 0x9e3779b97f4a7c15ull + (x << 6) + (x >> 2);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    const double u =
        static_cast<double>(x >> 11) * 0x1.0p-53;  // uniform in [0, 1)
    return u < session_failure_rate;
  }
};

}  // namespace ihbd::fault
