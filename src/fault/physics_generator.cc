#include "src/fault/physics_generator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/error.h"

namespace ihbd::fault {
namespace {

void validate(const PhysicsTraceConfig& c) {
  const auto require = [](bool ok, const char* field, const char* what) {
    if (!ok)
      throw ConfigError(std::string("PhysicsTraceConfig.") + field + " " +
                        what);
  };
  require(c.node_count > 0, "node_count", "must be > 0");
  require(c.duration_days > 0.0, "duration_days", "must be > 0");
  require(c.tick_days > 0.0, "tick_days", "must be > 0");
  require(c.seasonal_amp_c >= 0.0, "seasonal_amp_c", "must be >= 0");
  require(c.diurnal_amp_c >= 0.0, "diurnal_amp_c", "must be >= 0");
  require(c.node_offset_sigma_c >= 0.0, "node_offset_sigma_c",
          "must be >= 0");
  require(c.excursion_rate_per_day >= 0.0, "excursion_rate_per_day",
          "must be >= 0");
  require(c.excursion_amp_sigma_c >= 0.0, "excursion_amp_sigma_c",
          "must be >= 0");
  require(c.excursion_duration_sigma >= 0.0, "excursion_duration_sigma",
          "must be >= 0");
  require(c.oma_dbm_sigma >= 0.0, "oma_dbm_sigma", "must be >= 0");
  require(c.aging_db_per_day >= 0.0, "aging_db_per_day", "must be >= 0");
  require(c.aging_walk_db >= 0.0, "aging_walk_db", "must be >= 0");
  require(c.drift_reversion_per_day >= 0.0, "drift_reversion_per_day",
          "must be >= 0");
  require(c.drift_sigma_db >= 0.0, "drift_sigma_db", "must be >= 0");
  require(c.transient_prob >= 0.0 && c.transient_prob <= 1.0,
          "transient_prob", "must be in [0, 1]");
  require(c.ber_threshold > 0.0 && c.ber_threshold < 0.5, "ber_threshold",
          "must be in (0, 0.5)");
  require(c.repair_lognorm_sigma >= 0.0, "repair_lognorm_sigma",
          "must be >= 0");
  require(c.storm.rate_per_day >= 0.0, "storm.rate_per_day",
          "must be >= 0");
  if (c.storm.rate_per_day > 0.0) {
    require(c.storm.nodes_per_rack > 0, "storm.nodes_per_rack",
            "must be > 0");
    require(c.storm.racks_per_domain > 0, "storm.racks_per_domain",
            "must be > 0");
    require(c.storm.domain_prob >= 0.0 && c.storm.domain_prob <= 1.0,
            "storm.domain_prob", "must be in [0, 1]");
    require(c.storm.repair_crews > 0, "storm.repair_crews", "must be > 0");
    require(c.storm.crew_work_sigma >= 0.0, "storm.crew_work_sigma",
            "must be >= 0");
  }
}

/// Q factor whose analytic BER equals `ber_threshold` (bisection: BER is
/// strictly decreasing in Q).
double q_for_ber(double ber_threshold) {
  double lo = 0.0, hi = 40.0;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (phy::BerModel::ber_from_q(mid) > ber_threshold)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

/// Non-overlapping hall-wide cooling excursions.
struct Excursion {
  double start, end, amp_c;
};

std::vector<Excursion> draw_excursions(const PhysicsTraceConfig& c,
                                       Rng& rng) {
  std::vector<Excursion> out;
  if (c.excursion_rate_per_day <= 0.0) return out;
  double day = 0.0;
  while (true) {
    day += rng.exponential(c.excursion_rate_per_day);
    if (day >= c.duration_days) break;
    const double amp =
        std::max(0.0, rng.normal(c.excursion_amp_mu_c, c.excursion_amp_sigma_c));
    const double dur =
        rng.lognormal(c.excursion_duration_mu, c.excursion_duration_sigma);
    out.push_back({day, std::min(day + dur, c.duration_days), amp});
    day += dur;  // the hall recovers before the next excursion can start
  }
  return out;
}

/// Correlated storms: rack-/domain-aligned blast radii whose nodes queue
/// for a bounded crew pool (crew availability carries across storms).
void append_storm_events(const PhysicsTraceConfig& c, Rng& rng,
                         std::vector<FaultEvent>& events) {
  const StormConfig& s = c.storm;
  if (s.rate_per_day <= 0.0) return;
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      crew_free;
  for (int i = 0; i < s.repair_crews; ++i) crew_free.push(0.0);
  double day = 0.0;
  while (true) {
    day += rng.exponential(s.rate_per_day);
    if (day >= c.duration_days) break;
    const bool whole_domain = rng.bernoulli(s.domain_prob);
    const int blast =
        whole_domain ? s.nodes_per_rack * s.racks_per_domain : s.nodes_per_rack;
    // Rack-aligned epicenter: the blast is a whole rack (or power domain),
    // never an arbitrary offset — matching how a PDU/ToR failure lands.
    const int units = (c.node_count + blast - 1) / blast;
    const int first =
        blast * static_cast<int>(rng.uniform_index(
                    static_cast<std::uint64_t>(units)));
    const int last = std::min(first + blast, c.node_count);
    for (int node = first; node < last; ++node) {
      const double work = rng.lognormal(s.crew_work_mu, s.crew_work_sigma);
      const double crew_at = crew_free.top();
      crew_free.pop();
      const double done = std::max(day, crew_at) + work;
      crew_free.push(done);
      events.push_back(
          FaultEvent{node, day, std::min(done, c.duration_days)});
    }
  }
}

}  // namespace

FaultTrace generate_physics_trace(const PhysicsTraceConfig& config) {
  validate(config);
  Rng master(config.seed);
  Rng excursion_rng(master.next());
  Rng storm_rng(master.next());
  std::vector<std::uint64_t> node_seeds(
      static_cast<std::size_t>(config.node_count));
  for (auto& s : node_seeds) s = master.next();

  const auto excursions = draw_excursions(config, excursion_rng);

  // Hall temperature per tick (shared by every node): deterministic
  // seasonal + diurnal cycles plus the stochastic excursions.
  const double dt = config.tick_days;
  const std::size_t ticks =
      static_cast<std::size_t>(std::ceil(config.duration_days / dt));
  std::vector<double> hall(ticks, config.base_temp_c);
  {
    constexpr double kTwoPi = 6.283185307179586;
    std::size_t e = 0;
    for (std::size_t i = 0; i < ticks; ++i) {
      const double t = static_cast<double>(i + 1) * dt;
      hall[i] += config.seasonal_amp_c * std::sin(kTwoPi * t / 365.25) +
                 config.diurnal_amp_c * std::sin(kTwoPi * t);
      while (e < excursions.size() && excursions[e].end <= t) ++e;
      if (e < excursions.size() && excursions[e].start <= t)
        hall[i] += excursions[e].amp_c;
    }
  }

  const phy::OcsSwitchMatrix matrix(config.matrix);
  const phy::BerModel model(matrix, config.ber);
  const double q_thr = q_for_ber(config.ber_threshold);
  const double sqrt_dt = std::sqrt(dt);

  std::vector<FaultEvent> events;
  for (int node = 0; node < config.node_count; ++node) {
    Rng rng(node_seeds[static_cast<std::size_t>(node)]);
    const double offset_c = rng.normal(0.0, config.node_offset_sigma_c);
    double oma_dbm = rng.normal(config.oma_dbm_mean, config.oma_dbm_sigma);
    double age_db = 0.0;
    double drift_db = 0.0;
    for (std::size_t i = 0; i < ticks; ++i) {
      const double t = static_cast<double>(i + 1) * dt;
      const double temp_c =
          hall[i] + offset_c;
      // Laser/TO aging: drifting random walk, floored at fresh.
      age_db += config.aging_db_per_day * dt +
                config.aging_walk_db * sqrt_dt * rng.normal();
      age_db = std::max(age_db, 0.0);
      // MZI bias error: mean-reverting OU walk; either sign costs light.
      drift_db += -config.drift_reversion_per_day * drift_db * dt +
                  config.drift_sigma_db * sqrt_dt * rng.normal();
      const double eff_dbm = oma_dbm - age_db - std::fabs(drift_db);
      const double oma_mw = std::pow(10.0, eff_dbm / 10.0);
      const double q =
          model.q_factor(phy::OcsPath::kExternal1, oma_mw, temp_c);
      const double margin_db = 10.0 * std::log10(std::max(q, 1e-12) / q_thr);
      bool down = margin_db <= 0.0;
      if (!down && temp_c > config.ber.drift_onset_temp_c) {
        // Transient TO drift penalty (same exponential tail as
        // BerModel::measure_ber): the monitor probe fails when the
        // transient eats the whole margin.
        const double scale = config.ber.drift_penalty_db_per_c *
                             (temp_c - config.ber.drift_onset_temp_c);
        down = rng.bernoulli(config.transient_prob *
                             std::exp(-margin_db / scale));
      }
      if (!down) continue;
      const double repair = rng.lognormal(config.repair_lognorm_mu,
                                          config.repair_lognorm_sigma);
      events.push_back(
          FaultEvent{node, t, std::min(t + repair, config.duration_days)});
      // Repair recalibrates the link: fresh OMA draw, aging/drift reset;
      // no health evolves while the node is down.
      oma_dbm = rng.normal(config.oma_dbm_mean, config.oma_dbm_sigma);
      age_db = 0.0;
      drift_db = 0.0;
      const double resume = t + repair;
      if (resume >= config.duration_days) break;
      // Fast-forward to the first tick at or after repair completion: the
      // next processed index j satisfies (j + 1) * dt >= resume.
      i = static_cast<std::size_t>(std::ceil(resume / dt)) - 2;
    }
  }

  append_storm_events(config, storm_rng, events);

  return FaultTrace(config.node_count, config.duration_days,
                    std::move(events));
}

PhysicsTraceConfig physics_trace_defaults() { return PhysicsTraceConfig{}; }

PhysicsTraceConfig storm_trace_defaults() {
  PhysicsTraceConfig c;
  // Storms take over part of the correlated tail, so the degradation side
  // is softened (slower aging, fewer transient probes) to keep the
  // aggregate statistics on the paper's targets.
  c.aging_db_per_day = 0.078;
  c.transient_prob = 0.5;
  c.storm.rate_per_day = 0.025;
  c.storm.crew_work_mu = -1.0;
  return c;
}

const char* trace_model_name(TraceModel model) {
  switch (model) {
    case TraceModel::kPoisson:
      return "poisson";
    case TraceModel::kPhysics:
      return "physics";
    case TraceModel::kStorm:
      return "storm";
  }
  return "poisson";
}

}  // namespace ihbd::fault
