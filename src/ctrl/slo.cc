#include "src/ctrl/slo.h"

#include <cmath>

#include "src/common/serde.h"

namespace ihbd::ctrl {

void SloHistogram::observe(double x) {
  const std::size_t b = obs::Histogram::bucket_of(x);
  if (b >= obs::kHistogramBuckets) return;  // NaN sentinel
  ++buckets_[b];
  ++count_;
  sum_ += x;
}

double SloHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    cumulative += buckets_[b];
    if (buckets_[b] == 0) continue;
    if (static_cast<double>(cumulative) >= target) {
      if (b + 1 == buckets_.size()) {
        // Last bucket is unbounded above: report its lower bound.
        return obs::Histogram::bucket_upper_bound(b - 1);
      }
      return obs::Histogram::bucket_upper_bound(b);
    }
  }
  return obs::Histogram::bucket_upper_bound(buckets_.size() - 2);
}

void SloHistogram::merge(const SloHistogram& other) {
  for (std::size_t b = 0; b < buckets_.size(); ++b)
    buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
}

void SloHistogram::save(serde::Writer& w) const {
  w.u64(count_);
  w.f64(sum_);
  // Sparse encoding: most buckets are empty for latency-shaped data.
  std::uint32_t nonzero = 0;
  for (const auto c : buckets_)
    if (c != 0) ++nonzero;
  w.u32(nonzero);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    w.u32(static_cast<std::uint32_t>(b));
    w.u64(buckets_[b]);
  }
}

SloHistogram SloHistogram::load(serde::Reader& r) {
  SloHistogram h;
  h.count_ = r.u64();
  h.sum_ = r.f64();
  const std::uint32_t nonzero = r.u32();
  for (std::uint32_t i = 0; i < nonzero; ++i) {
    const std::uint32_t b = r.u32();
    h.buckets_.at(b) = r.u64();
  }
  return h;
}

}  // namespace ihbd::ctrl
