#include "src/ctrl/control_plane.h"

#include <algorithm>

#include "src/common/contracts.h"
#include "src/common/error.h"
#include "src/common/serde.h"
#include "src/obs/metrics.h"

namespace ihbd::ctrl {
namespace {

constexpr double kSecondsPerDay = 86400.0;
constexpr const char* kHbdSession = "hbd";
constexpr const char* kParkSession = "park";

dcn::FatTree make_tree(const ControlPlaneConfig& cfg) {
  dcn::FatTreeConfig tree;
  tree.node_count = cfg.node_count;
  tree.nodes_per_tor = cfg.nodes_per_tor;
  tree.tors_per_domain = cfg.tors_per_domain;
  return dcn::FatTree(tree);
}

}  // namespace

void ControlPlaneResult::merge(const ControlPlaneResult& other) {
  events += other.events;
  arrivals += other.arrivals;
  starts += other.starts;
  completions += other.completions;
  preemptions += other.preemptions;
  unfinished += other.unfinished;
  fault_transitions += other.fault_transitions;
  placement_churn += other.placement_churn;
  reconfig_enqueued += other.reconfig_enqueued;
  reconfig_coalesced += other.reconfig_coalesced;
  reconfig_drained += other.reconfig_drained;
  reconfig_failed += other.reconfig_failed;
  reconfig_retried += other.reconfig_retried;
  reconfig_dead_lettered += other.reconfig_dead_lettered;
  reconfig_injected += other.reconfig_injected;
  reconfig_pending_end += other.reconfig_pending_end;
  reconfig_batches += other.reconfig_batches;
  degraded_starts += other.degraded_starts;
  peak_pending_jobs = std::max(peak_pending_jobs, other.peak_pending_jobs);
  peak_reconfig_depth =
      std::max(peak_reconfig_depth, other.peak_reconfig_depth);
  job_wait_s.merge(other.job_wait_s);
  job_wait_degraded_s.merge(other.job_wait_degraded_s);
  reconfig_latency_s.merge(other.reconfig_latency_s);
  reconfig_latency_retried_s.merge(other.reconfig_latency_retried_s);
}

void ControlPlaneResult::save(serde::Writer& w) const {
  w.u64(events);
  w.u64(arrivals);
  w.u64(starts);
  w.u64(completions);
  w.u64(preemptions);
  w.u64(unfinished);
  w.u64(fault_transitions);
  w.u64(placement_churn);
  w.u64(reconfig_enqueued);
  w.u64(reconfig_coalesced);
  w.u64(reconfig_drained);
  w.u64(reconfig_failed);
  w.u64(reconfig_retried);
  w.u64(reconfig_dead_lettered);
  w.u64(reconfig_injected);
  w.u64(reconfig_pending_end);
  w.u64(reconfig_batches);
  w.u64(degraded_starts);
  w.u64(peak_pending_jobs);
  w.u64(peak_reconfig_depth);
  job_wait_s.save(w);
  job_wait_degraded_s.save(w);
  reconfig_latency_s.save(w);
  reconfig_latency_retried_s.save(w);
}

ControlPlaneResult ControlPlaneResult::load(serde::Reader& r) {
  ControlPlaneResult out;
  out.events = r.u64();
  out.arrivals = r.u64();
  out.starts = r.u64();
  out.completions = r.u64();
  out.preemptions = r.u64();
  out.unfinished = r.u64();
  out.fault_transitions = r.u64();
  out.placement_churn = r.u64();
  out.reconfig_enqueued = r.u64();
  out.reconfig_coalesced = r.u64();
  out.reconfig_drained = r.u64();
  out.reconfig_failed = r.u64();
  out.reconfig_retried = r.u64();
  out.reconfig_dead_lettered = r.u64();
  out.reconfig_injected = r.u64();
  out.reconfig_pending_end = r.u64();
  out.reconfig_batches = r.u64();
  out.degraded_starts = r.u64();
  out.peak_pending_jobs = r.u64();
  out.peak_reconfig_depth = r.u64();
  out.job_wait_s = SloHistogram::load(r);
  out.job_wait_degraded_s = SloHistogram::load(r);
  out.reconfig_latency_s = SloHistogram::load(r);
  out.reconfig_latency_retried_s = SloHistogram::load(r);
  return out;
}

ControlPlane::ControlPlane(const ControlPlaneConfig& cfg,
                           const fault::FaultTrace& trace,
                           std::vector<JobArrival> arrivals)
    : cfg_(cfg),
      trace_(trace),
      arrivals_(std::move(arrivals)),
      fat_tree_(make_tree(cfg)),
      orch_(fat_tree_, cfg.k, cfg.gpus_per_node),
      inc_(orch_,
           orch::JobSpec{arrivals_.empty() ? 32 : arrivals_[0].tp_size_gpus,
                         0},
           cfg.n_constraints < 0 ? orch_.max_constraints() : cfg.n_constraints,
           std::vector<bool>(static_cast<std::size_t>(cfg.node_count), false)),
      rng_(cfg.seed) {
  if (trace.node_count() != cfg.node_count)
    throw ConfigError("trace/control-plane node count mismatch");
  if (cfg.inject.session_failure_rate < 0.0 ||
      cfg.inject.session_failure_rate > 1.0)
    throw ConfigError(
        "ControlPlaneConfig.inject.session_failure_rate must be in [0, 1]");
  if (cfg.retry.max_attempts < 1)
    throw ConfigError("ControlPlaneConfig.retry.max_attempts must be >= 1");
  for (const auto& a : arrivals_) {
    if (a.tp_size_gpus != arrivals_[0].tp_size_gpus)
      throw ConfigError("mixed TP sizes in one control-plane fleet");
    if (a.groups < 1) throw ConfigError("job must request >= 1 TP group");
  }

  // Per-node fabric managers with the fast-switch sessions preloaded: the
  // HBD steering applied when a node joins a job, and the idle loopback
  // park (§4.2) applied on release.
  ocstrx::Session hbd;
  ocstrx::Session park;
  for (int b = 0; b < cfg.bundles_per_node; ++b) {
    hbd[static_cast<std::uint32_t>(b)] = b % 2 == 0
                                             ? ocstrx::OcsPath::kExternal1
                                             : ocstrx::OcsPath::kExternal2;
    park[static_cast<std::uint32_t>(b)] = ocstrx::OcsPath::kLoopback;
  }
  fleet_.reserve(static_cast<std::size_t>(cfg.node_count));
  for (int n = 0; n < cfg.node_count; ++n) {
    fleet_.emplace_back(cfg.gpus_per_node, cfg.bundles_per_node,
                        cfg.trx_per_bundle);
    fleet_.back().preload_session(kHbdSession, hbd);
    fleet_.back().preload_session(kParkSession, park);
  }
  queue_ = ocstrx::ReconfigQueue(cfg.reconfig_batch, cfg.retry, cfg.inject);

  // Seed the free pool from the healthy placement, in placement order
  // (aligned groups first — jobs consume alignment-preserving capacity
  // before the shifted spill-over).
  for (const auto& g : inc_.placement().groups) add_free_group(g.group.nodes);

  jobs_.reserve(arrivals_.size());
  for (const auto& a : arrivals_) {
    Job j;
    j.arrival = a;
    j.pending_since = a.day;
    jobs_.push_back(std::move(j));
  }
}

void ControlPlane::add_free_group(const std::vector<int>& nodes) {
  free_list_.push_back(nodes);
  free_by_first_.emplace(nodes.front(), std::prev(free_list_.end()));
}

bool ControlPlane::take_free_group(std::vector<int>& out) {
  if (free_list_.empty()) return false;
  out = std::move(free_list_.front());
  free_by_first_.erase(out.front());
  free_list_.pop_front();
  return true;
}

void ControlPlane::remove_free_group(int first_node) {
  const auto it = free_by_first_.find(first_node);
  IHBD_EXPECTS(it != free_by_first_.end());
  free_list_.erase(it->second);
  free_by_first_.erase(it);
}

void ControlPlane::arm_drain() {
  if (drain_armed_) return;
  drain_armed_ = true;
  engine_.schedule_in(cfg_.drain_period_days,
                      [this](evsim::Engine&) { on_drain(); });
}

void ControlPlane::enqueue_reconfig(int node, const std::string& session,
                                    int waiter_job) {
  queue_.enqueue(node, session, engine_.now());
  if (waiter_job >= 0) {
    waiter_of_node_[node] = waiter_job;
    ++jobs_[static_cast<std::size_t>(waiter_job)].outstanding_reconfigs;
  }
  result_.peak_reconfig_depth =
      std::max(result_.peak_reconfig_depth,
               static_cast<std::uint64_t>(queue_.pending()));
  arm_drain();
}

void ControlPlane::on_drain() {
  static obs::Histogram& h_latency =
      obs::histogram("ctrl.reconfig_latency_seconds");
  static obs::Gauge& g_depth = obs::gauge("ctrl.reconfig_queue_depth");
  const auto outcomes = queue_.drain_batch(fleet_, engine_.now(), rng_);
  ++result_.reconfig_batches;
  for (const auto& oc : outcomes) {
    if (oc.ok()) {
      const double latency_s =
          (oc.drained_at - oc.request.enqueued_at) * kSecondsPerDay +
          *oc.switch_latency_s;
      (oc.request.attempts > 1 ? result_.reconfig_latency_retried_s
                               : result_.reconfig_latency_s)
          .observe(latency_s);
      h_latency.observe(latency_s);
    }
    // A retrying attempt has not resolved: its waiter keeps waiting (the
    // job stays on its last good placement) and the coalescing key stays
    // live inside the queue.
    if (oc.will_retry) continue;
    const auto waiter = waiter_of_node_.find(oc.request.node);
    if (waiter != waiter_of_node_.end()) {
      Job& job = jobs_[static_cast<std::size_t>(waiter->second)];
      waiter_of_node_.erase(waiter);
      // Giving up on a steer does not block the job: it starts anyway,
      // marked degraded so its wait lands in the degraded SLO split.
      if (!oc.ok()) job.degraded = true;
      if (--job.outstanding_reconfigs == 0 &&
          job.state == JobState::kStarting) {
        begin_running(job.arrival.id);
      }
    }
  }
  g_depth.set(static_cast<double>(queue_.pending()));
  drain_armed_ = false;
  if (!queue_.empty()) arm_drain();
}

void ControlPlane::on_arrival(std::size_t index) {
  Job& job = jobs_[index];
  job.state = JobState::kPending;
  job.pending_since = engine_.now();
  pending_.push_back(job.arrival.id);  // arrivals come in id order
  ++result_.arrivals;
  result_.peak_pending_jobs = std::max(
      result_.peak_pending_jobs, static_cast<std::uint64_t>(pending_.size()));
  if (index + 1 < arrivals_.size()) {
    engine_.schedule_at(arrivals_[index + 1].day, [this, index](
                                                      evsim::Engine&) {
      on_arrival(index + 1);
    });
  }
  try_admit();
}

void ControlPlane::try_admit() {
  // FIFO head + bounded backfill: admit any of the first backfill_window
  // pending jobs whose group demand fits the free pool.
  std::size_t scanned = 0;
  for (auto it = pending_.begin();
       it != pending_.end() && scanned < cfg_.backfill_window &&
       !free_list_.empty();
       ++scanned) {
    Job& job = jobs_[static_cast<std::size_t>(*it)];
    const std::size_t needed = static_cast<std::size_t>(job.arrival.groups);
    if (free_list_.size() < needed) {
      ++it;
      continue;
    }
    for (std::size_t g = 0; g < needed; ++g) {
      std::vector<int> nodes;
      take_free_group(nodes);
      owner_of_first_.emplace(nodes.front(), job.arrival.id);
      job.groups.push_back(std::move(nodes));
    }
    job.state = JobState::kStarting;
    job.degraded = false;  // fresh start attempt, fresh SLO attribution
    start_pending_reconfigs(job);
    it = pending_.erase(it);
  }
}

void ControlPlane::start_pending_reconfigs(Job& job) {
  for (const auto& nodes : job.groups)
    for (int n : nodes) enqueue_reconfig(n, kHbdSession, job.arrival.id);
  // Degenerate case (already-drained nodes coalesced away): start at once.
  if (job.outstanding_reconfigs == 0 && job.state == JobState::kStarting)
    begin_running(job.arrival.id);
}

void ControlPlane::begin_running(int job_id) {
  static obs::Histogram& h_wait = obs::histogram("ctrl.job_wait_seconds");
  Job& job = jobs_[static_cast<std::size_t>(job_id)];
  job.state = JobState::kRunning;
  ++running_count_;
  ++result_.starts;
  const double wait_s = (engine_.now() - job.pending_since) * kSecondsPerDay;
  if (job.degraded) {
    ++result_.degraded_starts;
    result_.job_wait_degraded_s.observe(wait_s);
  } else {
    result_.job_wait_s.observe(wait_s);
  }
  h_wait.observe(wait_s);
  job.completion = engine_.schedule_in(
      job.arrival.run_days, [this, job_id](evsim::Engine&) {
        complete(job_id);
      });
}

void ControlPlane::complete(int job_id) {
  Job& job = jobs_[static_cast<std::size_t>(job_id)];
  job.state = JobState::kDone;
  job.completion = 0;
  --running_count_;
  ++result_.completions;
  release_groups(job, /*park=*/true);
  try_admit();
}

void ControlPlane::release_groups(Job& job, bool park) {
  for (const auto& nodes : job.groups) {
    owner_of_first_.erase(nodes.front());
    for (int n : nodes) {
      const auto waiter = waiter_of_node_.find(n);
      if (waiter != waiter_of_node_.end() &&
          waiter->second == job.arrival.id) {
        waiter_of_node_.erase(waiter);
        --job.outstanding_reconfigs;
      }
      if (park) enqueue_reconfig(n, kParkSession, /*waiter_job=*/-1);
    }
    add_free_group(nodes);
  }
  job.groups.clear();
  job.outstanding_reconfigs = 0;
}

void ControlPlane::preempt(int job_id) {
  Job& job = jobs_[static_cast<std::size_t>(job_id)];
  if (job.state == JobState::kRunning) {
    // The cancellable-completion contract in action: a preempted job's
    // departure event must never fire.
    const bool cancelled = engine_.cancel(job.completion);
    IHBD_EXPECTS(cancelled);
    job.completion = 0;
    --running_count_;
  }
  release_groups(job, /*park=*/false);
  job.state = JobState::kPending;
  job.pending_since = engine_.now();
  ++result_.preemptions;
  // Re-queue in arrival order (ids are arrival-ordered).
  const auto at =
      std::lower_bound(pending_.begin(), pending_.end(), job_id);
  pending_.insert(at, job_id);
  result_.peak_pending_jobs = std::max(
      result_.peak_pending_jobs, static_cast<std::uint64_t>(pending_.size()));
}

void ControlPlane::apply_delta(const orch::PlacementDelta& delta) {
  result_.placement_churn += delta.removed.size() + delta.added.size();
  // Jobs that lost at least one group, in loss order.
  std::vector<int> affected;
  for (const auto& g : delta.removed) {
    const int first = g.group.nodes.front();
    const auto owner = owner_of_first_.find(first);
    if (owner == owner_of_first_.end()) {
      remove_free_group(first);
      continue;
    }
    const int job_id = owner->second;
    Job& job = jobs_[static_cast<std::size_t>(job_id)];
    owner_of_first_.erase(owner);
    for (auto it = job.groups.begin(); it != job.groups.end(); ++it) {
      if (*it != g.group.nodes) continue;
      for (int n : *it) {
        const auto waiter = waiter_of_node_.find(n);
        if (waiter != waiter_of_node_.end() && waiter->second == job_id) {
          waiter_of_node_.erase(waiter);
          --job.outstanding_reconfigs;
        }
      }
      job.groups.erase(it);
      break;
    }
    if (std::find(affected.begin(), affected.end(), job_id) ==
        affected.end()) {
      affected.push_back(job_id);
    }
  }
  for (const auto& g : delta.added) add_free_group(g.group.nodes);

  // Repair each affected job from the free pool; preempt when the pool
  // cannot restore its full group demand.
  for (const int job_id : affected) {
    Job& job = jobs_[static_cast<std::size_t>(job_id)];
    bool whole = true;
    while (static_cast<int>(job.groups.size()) < job.arrival.groups) {
      std::vector<int> nodes;
      if (!take_free_group(nodes)) {
        whole = false;
        break;
      }
      owner_of_first_.emplace(nodes.front(), job_id);
      // Replacement nodes must be steered before they carry traffic: a
      // starting job adds them to its wait set; a running job keeps
      // running on the rest while the new group steers in the background.
      const int waiter =
          job.state == JobState::kStarting ? job_id : -1;
      for (int n : nodes) enqueue_reconfig(n, kHbdSession, waiter);
      job.groups.push_back(std::move(nodes));
    }
    if (!whole) preempt(job_id);
  }
}

void ControlPlane::on_fault_day(std::size_t cursor) {
  const auto& timeline = *trace_.transition_timeline();
  const double day = timeline[cursor].day;
  std::size_t end = cursor;
  while (end < timeline.size() && timeline[end].day == day) ++end;
  for (std::size_t i = cursor; i < end; ++i) {
    const auto& tr = timeline[i];
    ++result_.fault_transitions;
    // Overlapping fault intervals: a node is down while its active-interval
    // count is positive (FaultTrace contract), so only 0<->1 edges are real
    // state changes.
    auto& depth = fault_depth_[static_cast<std::size_t>(tr.node)];
    const bool was_down = depth > 0;
    depth += tr.down ? 1 : -1;
    const bool now_down = depth > 0;
    if (was_down == now_down) continue;
    auto& fm = fleet_[static_cast<std::size_t>(tr.node)];
    for (int b = 0; b < fm.bundle_count(); ++b) {
      if (now_down) {
        fm.bundle(b).fail();
      } else {
        fm.bundle(b).repair();
      }
    }
    apply_delta(inc_.set_faulty(tr.node, now_down));
  }
  try_admit();
  if (end < timeline.size()) {
    engine_.schedule_at(timeline[end].day, [this, end](evsim::Engine&) {
      on_fault_day(end);
    });
  }
}

ControlPlaneResult ControlPlane::run() {
  static obs::Gauge& g_pending = obs::gauge("ctrl.pending_jobs");
  static obs::Gauge& g_running = obs::gauge("ctrl.running_jobs");
  static obs::Gauge& g_free = obs::gauge("ctrl.free_groups");
  fault_depth_.assign(static_cast<std::size_t>(cfg_.node_count), 0);

  if (!arrivals_.empty()) {
    engine_.schedule_at(arrivals_[0].day,
                        [this](evsim::Engine&) { on_arrival(0); });
  }
  const auto& timeline = *trace_.transition_timeline();
  if (!timeline.empty()) {
    engine_.schedule_at(timeline[0].day,
                        [this](evsim::Engine&) { on_fault_day(0); });
  }
  // Periodic health sampler: the always-on daemon's heartbeat, feeding the
  // live gauges (never read back into results — obs stays monitoring-only).
  engine_.schedule_every(0.25, 0.25, [&](evsim::Engine&) {
    g_pending.set(static_cast<double>(pending_.size()));
    g_running.set(static_cast<double>(running_count_));
    g_free.set(static_cast<double>(free_list_.size()));
    if (health_probe) health_probe(*this, engine_.now());
  });

  engine_.run_until(trace_.duration_days());

  result_.events = engine_.executed();
  result_.unfinished =
      static_cast<std::uint64_t>(jobs_.size()) - result_.completions;
  result_.reconfig_enqueued = queue_.enqueued();
  result_.reconfig_coalesced = queue_.coalesced();
  result_.reconfig_drained = queue_.drained();
  result_.reconfig_failed = queue_.failed();
  result_.reconfig_retried = queue_.retried();
  result_.reconfig_dead_lettered = queue_.dead_lettered();
  result_.reconfig_injected = queue_.injected();
  result_.reconfig_pending_end =
      static_cast<std::uint64_t>(queue_.pending());

  if (obs::enabled()) {
    obs::counter("ctrl.events").add(result_.events);
    obs::counter("ctrl.job_arrivals").add(result_.arrivals);
    obs::counter("ctrl.job_starts").add(result_.starts);
    obs::counter("ctrl.job_completions").add(result_.completions);
    obs::counter("ctrl.preemptions").add(result_.preemptions);
    obs::counter("ctrl.fault_transitions").add(result_.fault_transitions);
    obs::counter("ctrl.placement_churn").add(result_.placement_churn);
    obs::counter("ctrl.reconfig_enqueued").add(result_.reconfig_enqueued);
    obs::counter("ctrl.reconfig_coalesced").add(result_.reconfig_coalesced);
    obs::counter("ctrl.reconfig_drained").add(result_.reconfig_drained);
    obs::counter("ctrl.reconfig_failed").add(result_.reconfig_failed);
    obs::counter("ctrl.reconfig_retried").add(result_.reconfig_retried);
    obs::counter("ctrl.reconfig_dead_lettered")
        .add(result_.reconfig_dead_lettered);
    obs::counter("ctrl.reconfig_injected").add(result_.reconfig_injected);
    obs::counter("ctrl.degraded_starts").add(result_.degraded_starts);
  }
  return result_;
}

ControlPlaneResult run_control_plane(const ControlPlaneConfig& cfg,
                                     const fault::FaultTrace& trace,
                                     std::vector<JobArrival> arrivals) {
  ControlPlane cp(cfg, trace, std::move(arrivals));
  return cp.run();
}

}  // namespace ihbd::ctrl
