// Deterministic job-arrival workload for the control plane.
//
// Training-job arrivals are modelled as a Poisson process (exponential
// inter-arrival gaps) with lognormal run lengths and uniformly drawn job
// scales, pre-generated into a flat arrival list from one substream seed.
// Pre-generation (rather than drawing inside engine callbacks) is what
// makes control-plane runs replayable and shardable: the same
// WorkloadConfig always produces byte-identical arrivals regardless of
// event interleaving, so a sweep cell's trial substream fully determines
// its input stream.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace ihbd::ctrl {

struct WorkloadConfig {
  double arrival_rate_per_day = 200.0;  ///< Poisson arrival intensity
  double duration_days = 64.0;          ///< arrivals generated below this
  int tp_size_gpus = 32;                ///< t (fixed per fleet)
  int min_groups = 1;                   ///< job scale in TP groups,
  int max_groups = 8;                   ///<   uniform on [min, max]
  double mean_run_days = 0.06;          ///< lognormal mean of run length
  double run_sigma = 0.5;               ///< lognormal shape
};

/// One job arrival: `groups` TP groups of `tp_size_gpus`, running
/// `run_days` once placed.
struct JobArrival {
  int id = 0;
  double day = 0.0;
  int tp_size_gpus = 32;
  int groups = 1;
  double run_days = 0.0;
};

/// Generate the arrival stream for `cfg` from `rng` (draw order is part of
/// the format: gap, groups, run length - per arrival).
std::vector<JobArrival> generate_workload(const WorkloadConfig& cfg, Rng& rng);

}  // namespace ihbd::ctrl
