// Deterministic SLO histograms for the control plane.
//
// The ctrl.* obs histograms are process-global and shard-merged with
// unspecified FP order — perfect for live monitoring, unusable as a bench
// table source when the table must be byte-identical across thread counts
// and shard shapes. SloHistogram is the local, value-typed counterpart:
// the SAME base-2 bucket layout as obs::Histogram (so a mirror observe()
// into the global registry lines up bucket-for-bucket), but owned by one
// control-plane run, mergeable in trial order, and serde-serializable for
// --shard-dir sweeps. Quantiles are bucket upper bounds — deterministic by
// construction, with base-2 resolution (plenty for p50/p99/p999 SLO rows).
#pragma once

#include <array>
#include <cstdint>

#include "src/obs/metrics.h"

namespace ihbd::serde {
class Writer;
class Reader;
}  // namespace ihbd::serde

namespace ihbd::ctrl {

/// Local fixed-layout histogram over positive doubles (seconds, depths).
/// Bucket layout is obs::Histogram's: 64 base-2 exponential buckets.
class SloHistogram {
 public:
  /// Record one observation (NaN is dropped, matching obs::Histogram).
  void observe(double x);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Smallest bucket upper bound covering at least ceil(q * count)
  /// observations (0 <= q <= 1). Returns 0 for an empty histogram; the
  /// last bucket reports its lower bound (its upper bound is +inf).
  double quantile(double q) const;

  /// Fold another histogram in (bucket-wise adds: associative and
  /// commutative except for the FP sum, which callers keep in trial order).
  void merge(const SloHistogram& other);

  void save(serde::Writer& w) const;
  static SloHistogram load(serde::Reader& r);

 private:
  std::array<std::uint64_t, obs::kHistogramBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace ihbd::ctrl
