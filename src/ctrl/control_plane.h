// Always-on orchestration control plane (the daemon the paper's §5
// deployment implies): an event-driven service on evsim::Engine that keeps
// a cluster's placement, job set, and OCS fabric consistent under a
// continuous stream of events, instead of re-running the offline
// orchestration pipeline per scenario.
//
// Event sources, all on one engine clock (time unit: DAYS):
//   * job arrivals/departures - a pre-generated deterministic workload
//     (src/ctrl/workload.h); completions are cancellable one-shot events
//     (preemption cancels them via evsim::Engine::cancel);
//   * fault/repair transitions - FaultTrace::transitions(), walked by a
//     cursor event chain; each transition patches the incremental
//     placement (src/orch/incremental.h) and fails/repairs the node's
//     fabric-manager bundles;
//   * reconfiguration drains - a batched ReconfigQueue
//     (src/ocstrx/reconfig_queue.h) armed while non-empty, applying
//     preloaded sessions against per-node NodeFabricManagers.
//
// State model: the incremental placement partitions healthy capacity into
// TP groups; the control plane tracks each group as FREE or owned by a
// job. Admission is FIFO-with-backfill over pending jobs (any job whose
// group demand fits the free pool starts). A started job's nodes are
// steered via the reconfig queue; the job begins running only when its
// last reconfig drains, so job-wait SLOs include control-plane queueing. A
// fault that removes an owned group first tries a replacement group from
// the free pool; failing that the job is preempted - completion event
// cancelled, remaining groups released, job re-queued in arrival order.
//
// Determinism: all randomness (workload, switch-latency draws) comes from
// the caller's seeds; event ties resolve by the engine's FIFO order;
// SLO aggregates live in local SloHistograms so sweep results are
// byte-identical across thread counts and shard shapes. ctrl.* obs
// metrics mirror the same quantities for live monitoring and are never
// read back into results.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/ctrl/slo.h"
#include "src/ctrl/workload.h"
#include "src/dcn/fattree.h"
#include "src/evsim/engine.h"
#include "src/fault/injection.h"
#include "src/fault/trace.h"
#include "src/ocstrx/fabric_manager.h"
#include "src/ocstrx/reconfig_queue.h"
#include "src/orch/incremental.h"
#include "src/orch/orchestrator.h"

namespace ihbd::serde {
class Writer;
class Reader;
}  // namespace ihbd::serde

namespace ihbd::ctrl {

struct ControlPlaneConfig {
  // Fleet shape (fat-tree DCN under the InfiniteHBD ring).
  int node_count = 1024;
  int nodes_per_tor = 4;
  int tors_per_domain = 32;
  int k = 2;                ///< OCSTrx hop reach
  int gpus_per_node = 4;    ///< r
  /// Alignment constraints pinned for the daemon (-1: max_constraints()).
  int n_constraints = -1;

  // OCS fabric per node.
  int bundles_per_node = 2;
  int trx_per_bundle = 1;

  // Reconfiguration batching.
  std::size_t reconfig_batch = 64;
  double drain_period_days = 1.0 / 86400.0;  ///< one drain tick per sim-second

  /// Retry/backoff for transiently failed reconfigurations (days).
  ocstrx::RetryPolicy retry;
  /// Deterministic session-switch fault injection (off by default).
  fault::InjectionPlan inject;

  /// Admission looks at most this many pending jobs per pass (FIFO head +
  /// bounded backfill), keeping event cost bounded under overload.
  std::size_t backfill_window = 64;

  std::uint64_t seed = 2025;  ///< switch-latency draws
};

/// Deterministic, mergeable outcome of one control-plane run (the sweep
/// accumulator unit for bench_ctrl_plane).
struct ControlPlaneResult {
  std::uint64_t events = 0;  ///< engine events executed
  std::uint64_t arrivals = 0;
  std::uint64_t starts = 0;
  std::uint64_t completions = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t unfinished = 0;  ///< pending or running at the horizon
  std::uint64_t fault_transitions = 0;
  std::uint64_t placement_churn = 0;  ///< groups removed+added by faults
  std::uint64_t reconfig_enqueued = 0;
  std::uint64_t reconfig_coalesced = 0;
  std::uint64_t reconfig_drained = 0;  ///< resolved (success/perm/dead)
  std::uint64_t reconfig_failed = 0;   ///< failed apply ATTEMPTS
  std::uint64_t reconfig_retried = 0;
  std::uint64_t reconfig_dead_lettered = 0;
  std::uint64_t reconfig_injected = 0;
  std::uint64_t reconfig_pending_end = 0;  ///< unresolved at the horizon
  std::uint64_t reconfig_batches = 0;
  std::uint64_t degraded_starts = 0;  ///< jobs started with a failed steer
  std::uint64_t peak_pending_jobs = 0;
  std::uint64_t peak_reconfig_depth = 0;

  SloHistogram job_wait_s;           ///< pending -> running, seconds
  SloHistogram job_wait_degraded_s;  ///< same, jobs that started degraded
  SloHistogram reconfig_latency_s;   ///< enqueue -> applied 1st try, seconds
  SloHistogram reconfig_latency_retried_s;  ///< applied after >= 1 retry

  /// Trial-order fold for sweeps (counter adds + histogram merges).
  void merge(const ControlPlaneResult& other);

  void save(serde::Writer& w) const;
  static ControlPlaneResult load(serde::Reader& r);
};

/// The daemon. Construct, then run() to the trace horizon. One-shot: a new
/// scenario takes a new instance (long-running *within* a run; the bench
/// restarts per trial).
class ControlPlane {
 public:
  ControlPlane(const ControlPlaneConfig& cfg, const fault::FaultTrace& trace,
               std::vector<JobArrival> arrivals);

  /// Consume every event up to trace.duration_days() and return the run's
  /// aggregate result.
  ControlPlaneResult run();

  /// Live introspection (valid during/after run()).
  const evsim::Engine& engine() const { return engine_; }
  std::size_t pending_jobs() const { return pending_.size(); }
  std::size_t running_jobs() const { return running_count_; }
  int free_groups() const { return static_cast<int>(free_list_.size()); }
  /// True while the node has >= 1 active fault interval (depth > 0) —
  /// the control plane's view of FaultTrace::faulty_at under overlapping
  /// intervals. Valid during/after run().
  bool node_faulty(int node) const {
    return node >= 0 && node < static_cast<int>(fault_depth_.size()) &&
           fault_depth_[static_cast<std::size_t>(node)] > 0;
  }

  /// Optional probe invoked by the periodic health sampler with
  /// (*this, now). Monitoring/test hook; must not mutate the plane.
  std::function<void(const ControlPlane&, double)> health_probe;

 private:
  enum class JobState { kPending, kStarting, kRunning, kDone };

  struct Job {
    JobArrival arrival;
    JobState state = JobState::kPending;
    double pending_since = 0.0;  ///< arrival or last preemption day
    std::vector<std::vector<int>> groups;  ///< owned node groups
    int outstanding_reconfigs = 0;
    /// A steer for this start attempt failed permanently or dead-lettered:
    /// the job runs on its last good placement (graceful degradation) and
    /// its wait lands in the degraded SLO split.
    bool degraded = false;
    evsim::EventId completion = 0;
  };

  void on_arrival(std::size_t index);
  void on_fault_day(std::size_t cursor);
  void on_drain();
  void try_admit();
  void start_pending_reconfigs(Job& job);
  void begin_running(int job_id);
  void complete(int job_id);
  void preempt(int job_id);
  void release_groups(Job& job, bool park);
  void apply_delta(const orch::PlacementDelta& delta);
  void add_free_group(const std::vector<int>& nodes);
  bool take_free_group(std::vector<int>& out);
  void remove_free_group(int first_node);
  void arm_drain();
  void enqueue_reconfig(int node, const std::string& session, int waiter_job);

  ControlPlaneConfig cfg_;
  const fault::FaultTrace& trace_;
  std::vector<JobArrival> arrivals_;

  dcn::FatTree fat_tree_;
  orch::FatTreeOrchestrator orch_;
  orch::IncrementalPlacement inc_;
  std::vector<ocstrx::NodeFabricManager> fleet_;
  ocstrx::ReconfigQueue queue_;
  evsim::Engine engine_;
  Rng rng_;

  std::vector<Job> jobs_;          ///< indexed by arrival id
  std::deque<int> pending_;        ///< FIFO (arrival order maintained)
  std::size_t running_count_ = 0;

  /// Free groups: FIFO order (placement order at init, release/churn order
  /// after), keyed by first node for O(1) removal on fault churn. A group's
  /// first node identifies it uniquely: placement groups are disjoint.
  std::list<std::vector<int>> free_list_;
  std::unordered_map<int, std::list<std::vector<int>>::iterator>
      free_by_first_;

  std::unordered_map<int, int> owner_of_first_;  ///< group first node -> job
  std::unordered_map<int, int> waiter_of_node_;  ///< node -> starting job
  std::vector<int> fault_depth_;  ///< active fault intervals per node

  bool drain_armed_ = false;
  ControlPlaneResult result_;
};

/// Convenience: build + run.
ControlPlaneResult run_control_plane(const ControlPlaneConfig& cfg,
                                     const fault::FaultTrace& trace,
                                     std::vector<JobArrival> arrivals);

}  // namespace ihbd::ctrl
