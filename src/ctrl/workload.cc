#include "src/ctrl/workload.h"

#include <cmath>

#include "src/common/contracts.h"

namespace ihbd::ctrl {

std::vector<JobArrival> generate_workload(const WorkloadConfig& cfg,
                                          Rng& rng) {
  IHBD_EXPECTS(cfg.arrival_rate_per_day > 0.0);
  IHBD_EXPECTS(cfg.duration_days > 0.0);
  IHBD_EXPECTS(cfg.min_groups >= 1 && cfg.max_groups >= cfg.min_groups);
  IHBD_EXPECTS(cfg.mean_run_days > 0.0 && cfg.run_sigma >= 0.0);
  // Lognormal parameterized by its mean: mu = ln(mean) - sigma^2 / 2.
  const double mu =
      std::log(cfg.mean_run_days) - 0.5 * cfg.run_sigma * cfg.run_sigma;

  std::vector<JobArrival> arrivals;
  double day = 0.0;
  int id = 0;
  for (;;) {
    day += rng.exponential(cfg.arrival_rate_per_day);
    if (day >= cfg.duration_days) break;
    JobArrival a;
    a.id = id++;
    a.day = day;
    a.tp_size_gpus = cfg.tp_size_gpus;
    a.groups = cfg.min_groups +
               static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(
                   cfg.max_groups - cfg.min_groups + 1)));
    a.run_days = rng.lognormal(mu, cfg.run_sigma);
    arrivals.push_back(a);
  }
  return arrivals;
}

}  // namespace ihbd::ctrl
