#include "src/runtime/thread_pool.h"

#include <atomic>
#include <memory>

#include "src/common/contracts.h"

namespace ihbd::runtime {

namespace {
// The pool whose worker_loop is running on this thread, if any. Lets
// parallel_for detect re-entry from one of its own workers and degrade to
// inline execution instead of deadlocking on helpers that can never run.
thread_local const ThreadPool* current_pool = nullptr;
}  // namespace

int ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  IHBD_EXPECTS(threads >= 0);
  if (threads == 0) threads = default_threads();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    IHBD_EXPECTS(!stop_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  IHBD_EXPECTS(grain >= 1);
  if (n == 0) return;

  // Re-entrant call from one of this pool's own workers: helpers would sit
  // behind the caller in the queue while the caller blocks on them, so run
  // the whole range inline on this thread instead.
  if (current_pool == this) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared fan-out state: a dynamic index cursor plus first-error capture.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::size_t live_tasks = 0;
  };
  auto shared = std::make_shared<Shared>();

  auto run_chunks = [shared, n, grain, &body] {
    for (;;) {
      if (shared->failed.load(std::memory_order_relaxed)) return;
      const std::size_t begin =
          shared->next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + grain);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(shared->error_mu);
          if (!shared->error) shared->error = std::current_exception();
          shared->failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(workers_.size(), (n + grain - 1) / grain);
  shared->live_tasks = helpers;
  for (std::size_t t = 0; t < helpers; ++t) {
    submit([shared, run_chunks] {
      run_chunks();
      {
        std::lock_guard<std::mutex> lock(shared->done_mu);
        --shared->live_tasks;
      }
      shared->done_cv.notify_one();
    });
  }

  // The caller participates too: with a 1-thread pool this alone does all
  // the work, and it guarantees forward progress even if the pool is busy
  // with unrelated submitted tasks.
  run_chunks();

  std::unique_lock<std::mutex> lock(shared->done_mu);
  shared->done_cv.wait(lock, [&shared] { return shared->live_tasks == 0; });
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace ihbd::runtime
