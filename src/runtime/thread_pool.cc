#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/common/contracts.h"
#include "src/obs/metrics.h"

namespace ihbd::runtime {

namespace {
// The pool whose worker_loop runs on this thread (if any) and the index of
// that worker within it. Lets enqueue target the calling worker's own deque
// (LIFO locality) and lets pop_task skip the useless self-steal.
thread_local ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

/// Nanoseconds between two steady_clock points; taken only when obs is on.
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}
}  // namespace

struct ThreadPool::Worker {
  std::mutex mu;
  std::deque<Task> tasks;  ///< back = owner's LIFO end, front = steal end
  /// Round-robin steal cursor; touched only by the owning thread.
  std::size_t next_victim = 0;
  std::thread thread;
};

// --- TaskGroup --------------------------------------------------------------

TaskGroup::~TaskGroup() {
  // Join without observing exceptions (wait() must be called for that);
  // never let a still-running task outlive the state it captured.
  pool_->help_until([this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void TaskGroup::run(std::function<void()> task) {
  pool_->enqueue(ThreadPool::Task{std::move(task), this});
}

void TaskGroup::capture(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (!error_) error_ = std::move(error);
  failed_.store(true, std::memory_order_relaxed);
}

void TaskGroup::wait() {
  pool_->help_until([this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error = std::exchange(error_, nullptr);
    failed_.store(false, std::memory_order_relaxed);
  }
  if (error) std::rethrow_exception(error);
}

// --- ThreadPool -------------------------------------------------------------

int ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::shared() {
  // Meyers singleton: created on first use, joined at normal process exit.
  static ThreadPool pool(0);
  return pool;
}

ThreadPool::ThreadPool(int threads) : root_(*this) {
  IHBD_EXPECTS(threads >= 0);
  if (threads == 0) threads = default_threads();
  // Resolve the metric handles BEFORE any worker starts: this also orders
  // the obs registry's construction before this pool's, so the registry
  // outlives the shared() pool's shutdown drain at process exit.
  obs_ = ObsRefs{&obs::counter("pool.tasks_executed"),
                 &obs::counter("pool.tasks_stolen"),
                 &obs::counter("pool.steal_attempts"),
                 &obs::counter("pool.steal_failures"),
                 &obs::counter("pool.tasks_injected"),
                 &obs::counter("pool.wake_signals"),
                 &obs::counter("pool.busy_ns"),
                 &obs::counter("pool.idle_ns"),
                 &obs::gauge("pool.inject_depth"),
                 &obs::gauge("pool.wake_epoch")};
  workers_.reserve(static_cast<std::size_t>(threads));
  // Materialize every Worker before any thread starts: workers steal by
  // scanning workers_, which must never resize under them.
  for (int i = 0; i < threads; ++i)
    workers_.push_back(std::make_unique<Worker>());
  for (int i = 0; i < threads; ++i) {
    const auto self = static_cast<std::size_t>(i);
    workers_[self]->thread = std::thread([this, self] { worker_loop(self); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
    ++wake_epoch_;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w->thread.join();
}

void ThreadPool::signal(bool assert_not_stopped) {
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    if (assert_not_stopped) IHBD_EXPECTS(!stop_);
    epoch = ++wake_epoch_;
  }
  if (obs::enabled()) {
    obs_.wake_signals->add(1);
    obs_.wake_epoch->set(static_cast<double>(epoch));
  }
  wake_cv_.notify_all();
}

void ThreadPool::enqueue(Task task) {
  task.group->pending_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (tls_pool == this) {
    Worker& self = *workers_[tls_worker];
    std::lock_guard<std::mutex> lock(self.mu);
    self.tasks.push_back(std::move(task));
  } else {
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lock(inject_mu_);
      inject_.push_back(std::move(task));
      depth = inject_.size();
    }
    if (obs::enabled()) {
      obs_.injected->add(1);
      obs_.inject_depth->set(static_cast<double>(depth));
    }
  }
  // Forks from this pool's own tasks stay legal during the destructor's
  // shutdown drain — the draining workers complete them (a drained task
  // may run a nested parallel_for). Only a NON-worker thread enqueueing
  // into a stopping pool is a lifetime bug in the caller.
  signal(/*assert_not_stopped=*/tls_pool != this);
}

bool ThreadPool::pop_task(Task& out) {
  const bool on_pool = tls_pool == this;
  if (on_pool) {
    Worker& self = *workers_[tls_worker];
    std::lock_guard<std::mutex> lock(self.mu);
    if (!self.tasks.empty()) {
      out = std::move(self.tasks.back());
      self.tasks.pop_back();
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(inject_mu_);
    if (!inject_.empty()) {
      out = std::move(inject_.front());
      inject_.pop_front();
      return true;
    }
  }
  const bool obs_on = obs::enabled();
  if (obs_on) obs_.steal_attempts->add(1);
  const std::size_t n = workers_.size();
  const std::size_t start = on_pool ? workers_[tls_worker]->next_victim++ : 0;
  for (std::size_t k = 0; k < n; ++k) {
    Worker& victim = *workers_[(start + k) % n];
    if (on_pool && &victim == workers_[tls_worker].get()) continue;
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      if (obs_on) obs_.stolen->add(1);
      return true;
    }
  }
  if (obs_on) obs_.steal_failures->add(1);
  return false;
}

void ThreadPool::run_task(Task&& task) {
  TaskGroup* group = task.group;
  const bool obs_on = obs::enabled();
  const auto t0 = obs_on ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  try {
    task.fn();
  } catch (...) {
    group->capture(std::current_exception());
  }
  if (obs_on) {
    obs_.executed->add(1);
    obs_.busy_ns->add(elapsed_ns(t0));
  }
  // Destroy the callable BEFORE announcing completion: once pending_ hits
  // zero a joiner may return and tear down whatever the callable captured.
  task.fn = nullptr;
  group->pending_.fetch_sub(1, std::memory_order_acq_rel);
  // `group` may be dead from here on; only pool-owned state below.
  in_flight_.fetch_sub(1, std::memory_order_release);
  // false: completions during the shutdown drain are legal.
  signal(/*assert_not_stopped=*/false);
}

bool ThreadPool::try_run_one() {
  Task task;
  if (!pop_task(task)) return false;
  run_task(std::move(task));
  return true;
}

void ThreadPool::help_until(const std::function<bool()>& done) {
  while (!done()) {
    if (try_run_one()) continue;
    std::uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      epoch = wake_epoch_;
    }
    // Re-check after the snapshot: anything made visible before it is found
    // here; anything after it moves the epoch and cancels the sleep.
    if (done()) return;
    if (try_run_one()) continue;
    const bool obs_on = obs::enabled();
    const auto t0 = obs_on ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [&] { return wake_epoch_ != epoch || done(); });
    }
    if (obs_on) obs_.idle_ns->add(elapsed_ns(t0));
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    if (try_run_one()) continue;
    std::uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      if (stop_) break;
      epoch = wake_epoch_;
    }
    if (try_run_one()) continue;
    const bool obs_on = obs::enabled();
    const auto t0 = obs_on ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
    bool stopped;
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [&] { return stop_ || wake_epoch_ != epoch; });
      stopped = stop_;
    }
    if (obs_on) obs_.idle_ns->add(elapsed_ns(t0));
    if (stopped) break;
  }
  // Shutdown drain: serve whatever is still queued so no enqueued task is
  // ever silently dropped (same contract as the old shared-queue pool).
  while (try_run_one()) {
  }
  tls_pool = nullptr;
}

void ThreadPool::submit(std::function<void()> task) {
  root_.run(std::move(task));
}

void ThreadPool::wait_idle() {
  help_until([this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(root_.error_mu_);
    error = std::exchange(root_.error_, nullptr);
    root_.failed_.store(false, std::memory_order_relaxed);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (n == 0) return;
  if (grain == 0)
    grain = std::max<std::size_t>(1, n / (workers_.size() * 8));

  // Shared fan-out state lives on this frame: every chunk runner is joined
  // before the function returns (at the latest by ~TaskGroup's drain, which
  // is why `next` is declared BEFORE `group` — queued runners may still
  // execute during that drain and must find the cursor alive), so no heap
  // indirection is needed.
  std::atomic<std::size_t> next{0};
  TaskGroup group(*this);
  const auto run_chunks = [&group, &next, n, grain, &body] {
    for (;;) {
      if (group.failed()) return;  // cancel remaining chunks on first error
      const std::size_t begin =
          next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(n, begin + grain);
      for (std::size_t i = begin; i < end; ++i) body(i);
    }
  };

  // One stealable chunk runner per worker that could usefully help; the
  // caller participates as the +1'th. Runners that lose the race to an
  // exhausted cursor return immediately.
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t helpers = std::min<std::size_t>(workers_.size(), chunks);
  for (std::size_t t = 0; t < helpers; ++t) group.run(run_chunks);
  try {
    run_chunks();
  } catch (...) {
    group.capture(std::current_exception());
  }
  group.wait();  // helps, then rethrows the first captured exception
}

}  // namespace ihbd::runtime
