// Fixed-size worker pool with a shared task queue and a blocking
// parallel_for. The pool is the execution substrate of the sweep engine
// (src/runtime/sweep.h) but is usable on its own for any embarrassingly
// parallel work, e.g. replaying a fault trace per architecture.
//
// Determinism contract: parallel_for(n, body) invokes body exactly once for
// every index in [0, n); which thread runs which index is unspecified, so
// bodies must only write state owned by their index (typically a
// pre-sized results slot). Under that discipline results are bit-identical
// for any pool size.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ihbd::runtime {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1). Workers start
  /// immediately and live until destruction.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency may
  /// report 0 on exotic platforms).
  static int default_threads();

  /// Run body(i) for every i in [0, n), fanned across the pool; blocks the
  /// caller until all indices finish. Work is claimed dynamically in chunks
  /// of `grain` indices, so uneven per-index cost still balances. If any
  /// body throws, the first exception (in completion order) is rethrown
  /// here after remaining work is cancelled; the pool stays usable.
  /// Re-entrant calls from one of this pool's own workers degrade to
  /// inline (serial) execution on that worker rather than deadlocking.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Enqueue one task; returns immediately. Exceptions escaping a submitted
  /// task terminate (use parallel_for for checked fan-out).
  void submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;       // queue not empty / shutting down
  std::condition_variable idle_cv_;  // a task finished
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Map fn over items with a transient pool of `threads` workers, preserving
/// order: result[i] == fn(items[i]). The result type must be
/// default-constructible. threads == 0 picks default_threads().
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn, int threads = 0)
    -> std::vector<decltype(fn(items[std::size_t{0}]))> {
  using R = decltype(fn(items[std::size_t{0}]));
  std::vector<R> out(items.size());
  ThreadPool pool(threads);
  pool.parallel_for(items.size(),
                    [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

}  // namespace ihbd::runtime
