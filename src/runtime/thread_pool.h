// Work-stealing task scheduler with true nested parallelism. The pool is
// the execution substrate of the sweep engine (src/runtime/sweep.h) and of
// the windowed trace replay (src/topo/waste.h); because both levels can
// share ONE pool, a sweep over a few expensive cells no longer strands the
// remaining cores — each cell's inner fan-out is stealable by idle workers.
//
// Design:
//   * Every worker owns a deque of tasks. The owner pushes and pops at the
//     back (LIFO, so the innermost fork runs first and stays cache-hot);
//     thieves steal from the front (FIFO, so they take the oldest — i.e.
//     largest — pending piece of work). Threads that are not pool workers
//     submit into a shared injection queue.
//   * TaskGroup is the fork/join primitive: run() forks a task into the
//     scheduler, wait() joins. A blocked joiner HELPS instead of sleeping:
//     it executes tasks from its own deque and steals from peers, so a
//     nested parallel_for inside a pool task recruits the whole machine
//     rather than serializing (and cannot deadlock — the joiner itself
//     drains the very tasks it waits on).
//   * Exceptions thrown by a task are captured into its owning TaskGroup
//     and the first one (in completion order) is rethrown at wait(); tasks
//     enqueued with ThreadPool::submit() belong to an internal root group
//     whose exception is rethrown at wait_idle().
//
// Determinism contract: parallel_for(n, body) invokes body exactly once for
// every index in [0, n); which thread runs which index — and therefore the
// steal order — is unspecified, so bodies must only write state owned by
// their index (typically a pre-sized results slot). Under that discipline
// results are bit-identical for any worker count, nesting depth and steal
// order. The contract composes: a nested parallel_for's bodies own their
// (outer index, inner index) slots.
//
// When to pass an explicit pool vs shared(): shared() is the process-wide
// lazily-created pool sized to the hardware — the right default for
// everything that just wants the machine (and what the sweep engine and
// trace replay use when given no pool). Construct a dedicated ThreadPool
// only to pin a specific width (e.g. the benches' --threads N flag, or a
// test that needs a 1-worker pool); pass that same pool to BOTH fan-out
// levels so they cooperate instead of oversubscribing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

namespace ihbd::obs {
class Counter;
class Gauge;
}  // namespace ihbd::obs

namespace ihbd::runtime {

class ThreadPool;

/// Fork/join primitive. run() enqueues a task; wait() blocks until every
/// task run() so far has finished, executing and stealing tasks itself
/// while it waits, then rethrows the first exception any of them threw.
/// A group is reusable after wait() returns (or throws). The destructor
/// joins outstanding tasks but drops their exceptions — call wait() to
/// observe them. A TaskGroup may be forked/joined from any thread,
/// including another task of the same pool (nested fork/join).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(&pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Fork: enqueue task on the pool (onto the calling worker's own deque
  /// when called from a pool task, else onto the injection queue).
  void run(std::function<void()> task);

  /// Join: helps until every forked task finished, then rethrows the first
  /// captured exception (clearing it, so the group can be reused).
  void wait();

  /// True once any task of this group has thrown and the exception has not
  /// yet been consumed by wait(). Cooperative-cancellation hook: long loops
  /// inside tasks may poll it and bail early.
  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  /// Record an exception as if a task of this group had thrown it (first
  /// one wins). Used by callers that participate in the work themselves,
  /// e.g. parallel_for's calling thread.
  void capture(std::exception_ptr error);

 private:
  friend class ThreadPool;

  ThreadPool* pool_;
  std::atomic<std::size_t> pending_{0};  ///< forked, not yet finished
  std::atomic<bool> failed_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;  ///< guarded by error_mu_
};

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1). Workers start
  /// immediately and live until destruction.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency may
  /// report 0 on exotic platforms).
  static int default_threads();

  /// The lazily-created process-wide pool (default_threads() workers).
  /// Everything that does not need a specific width should fan out here so
  /// nested fan-outs cooperate on one set of workers.
  static ThreadPool& shared();

  /// Run body(i) for every i in [0, n), fanned across the pool; blocks the
  /// caller until all indices finish, helping with the work itself (with a
  /// 1-worker pool the caller alone makes progress). Work is claimed
  /// dynamically in chunks of `grain` indices; grain == 0 (the default)
  /// derives a grain from n / (workers * 8), clamped to >= 1, so cheap
  /// bodies do not contend on the claim cursor while uneven per-index cost
  /// still balances. Results are identical for every grain. If any body
  /// throws, the first exception (in completion order) is rethrown here
  /// after remaining chunks are cancelled; the pool stays usable.
  /// Fully re-entrant: calling it from inside another parallel_for body on
  /// the same pool fans the inner range across idle workers too.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

  /// Enqueue one fire-and-forget task; returns immediately. An escaping
  /// exception is captured (first one wins) and rethrown by the next
  /// wait_idle(). Use TaskGroup or parallel_for for scoped fan-out.
  void submit(std::function<void()> task);

  /// Block until no task is queued or running anywhere in the pool,
  /// helping with queued work meanwhile; then rethrows the first exception
  /// that escaped a submit()ted task since the last wait_idle().
  void wait_idle();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };
  struct Worker;

  void worker_loop(std::size_t self);
  void enqueue(Task task);
  /// Pop own-deque back / injection front / steal a peer's front; run it.
  bool try_run_one();
  bool pop_task(Task& out);
  void run_task(Task&& task);
  /// Bump the wake epoch and wake sleepers (enqueue and task completion).
  void signal(bool assert_not_stopped);
  /// Help-then-sleep until done() (which must become true only via task
  /// completions or enqueues, both of which bump the wake epoch).
  void help_until(const std::function<bool()>& done);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex inject_mu_;
  std::deque<Task> inject_;  ///< tasks from non-worker threads (FIFO)

  // Sleep/wake protocol: every enqueue and every task completion bumps
  // wake_epoch_ under wake_mu_ and notifies. A sleeper snapshots the epoch,
  // re-scans for work, and only then waits for the epoch to move — so a
  // task made visible before the re-scan is found, and one made visible
  // after it moves the epoch past the snapshot. No timed waits needed.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::uint64_t wake_epoch_ = 0;  ///< guarded by wake_mu_
  bool stop_ = false;             ///< guarded by wake_mu_

  std::atomic<std::size_t> in_flight_{0};  ///< enqueued or running tasks
  TaskGroup root_;                         ///< owns submit()ted tasks

  // Observability handles (src/obs), resolved once at construction — every
  // recording call is a relaxed branch while obs is disabled (the default),
  // so the scheduler hot path stays unperturbed. All pools aggregate into
  // the same named metrics ("pool.*").
  struct ObsRefs {
    obs::Counter* executed = nullptr;       ///< tasks run to completion
    obs::Counter* stolen = nullptr;         ///< tasks taken from a peer deque
    obs::Counter* steal_attempts = nullptr; ///< peer-deque scans started
    obs::Counter* steal_failures = nullptr; ///< scans that found nothing
    obs::Counter* injected = nullptr;       ///< tasks from non-worker threads
    obs::Counter* wake_signals = nullptr;   ///< wake-epoch bumps
    obs::Counter* busy_ns = nullptr;        ///< wall time inside task bodies
    obs::Counter* idle_ns = nullptr;        ///< wall time asleep on wake_cv_
    obs::Gauge* inject_depth = nullptr;     ///< injection-queue depth sample
    obs::Gauge* wake_epoch = nullptr;       ///< latest wake epoch sample
  };
  ObsRefs obs_;
};

/// Owns-or-borrows resolution of the stack-wide pool convention (the bench
/// --threads flag, run_sweep*'s threads, TraceReplayOptions::threads): an
/// explicit `pool` wins (borrowed); otherwise threads == 0 borrows the
/// process-wide shared() pool and threads > 0 owns a dedicated pool of
/// that width for the PoolRef's lifetime. The single home of this policy —
/// the sweep engine, the trace replay and the benches all resolve through
/// it instead of re-implementing the branches.
class PoolRef {
 public:
  explicit PoolRef(int threads, ThreadPool* pool = nullptr)
      : owned_(pool != nullptr || threads == 0
                   ? nullptr
                   : std::make_unique<ThreadPool>(threads)),
        pool_(pool != nullptr ? pool
              : owned_        ? owned_.get()
                              : &ThreadPool::shared()) {}

  ThreadPool* get() const { return pool_; }
  ThreadPool& operator*() const { return *pool_; }
  ThreadPool* operator->() const { return pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_;
};

/// Map fn over items preserving order: result[i] == fn(items[i]). The
/// result type must be default-constructible. Fans out on `pool` — pass the
/// same pool at every nesting level that should cooperate.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn, ThreadPool& pool)
    -> std::vector<std::decay_t<decltype(fn(items[std::size_t{0}]))>> {
  using R = std::decay_t<decltype(fn(items[std::size_t{0}]))>;
  std::vector<R> out(items.size());
  pool.parallel_for(items.size(),
                    [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

/// parallel_map on the process-wide shared() pool (threads == 0) or, for an
/// explicit width, a dedicated transient pool. The shared default means a
/// bare parallel_map call no longer spawns and tears down threads.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn, int threads = 0)
    -> std::vector<std::decay_t<decltype(fn(items[std::size_t{0}]))>> {
  if (threads == 0) return parallel_map(items, fn, ThreadPool::shared());
  ThreadPool pool(threads);
  return parallel_map(items, fn, pool);
}

}  // namespace ihbd::runtime
