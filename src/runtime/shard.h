// The plan stage of the plan -> execute -> reduce sweep pipeline, plus the
// serializable boundary types the three stages exchange.
//
//   plan    — plan_shards() deterministically partitions a SweepSpec's
//             cells x trials into ShardSpecs with stable ids derived from
//             the spec fingerprint. Any process holding an equal spec and
//             policy computes the identical plan: shards need no
//             distribution channel, only the spec itself.
//   execute — the engine (sweep.h) runs one shard on the work-stealing
//             pool and serializes per-cell partial state through a
//             ShardCodec into an opaque ShardPayload (also the checkpoint
//             payload — see src/runtime/checkpoint.h).
//   reduce  — reduce_shard_payloads (sweep.h) folds payloads back into the
//             result grid, order-respecting, bit-identical to the
//             single-process engine.
//
// Granularity: the default plan partitions whole cells. Trials within a
// cell always fold in trial order and Accumulator's Chan moment merge is
// associative but not bit-identical to the sequential fold, so splitting
// one cell's trials across shards is opt-in (PlanPolicy::split_trials);
// with it enabled, count/min/max/samples stay exact and the moments agree
// up to FP rounding. Replay sweeps (trials == 1 per cell) are unaffected
// either way — their reduce is pure placement.
//
// ShardContext is the transport seam: the engine asks an installed context
// which shards to execute, where to checkpoint and how to publish/collect
// results, but never how bytes move. src/sweepd implements the context
// over a shared run directory (claim/lease/heartbeat/result files); tests
// implement it in-memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/serde.h"
#include "src/runtime/sweep_spec.h"

namespace ihbd::runtime {
class Accumulator;
}  // namespace ihbd::runtime

namespace ihbd::runtime::shard {

/// How a sweep is partitioned. Part of the plan identity (hashed into
/// plan_hash): every participant must run the same policy.
struct PlanPolicy {
  /// Upper bound on shard count; the planner never splits finer than one
  /// cell (or one trial with split_trials), so the actual count is
  /// min(max_shards, cells) without trial-splitting.
  std::size_t max_shards = 16;
  /// Allow splitting one cell's trial range across shards when there are
  /// fewer cells than max_shards (see the granularity note above).
  bool split_trials = false;
};

/// One unit of distributable work: a contiguous cell range, and (when a
/// single cell's trials are split) a trial sub-range of one cell.
struct ShardSpec {
  std::size_t index = 0;       ///< position in the plan (reduce order)
  std::size_t cell_begin = 0;  ///< first cell, inclusive
  std::size_t cell_end = 0;    ///< last cell, exclusive
  int trial_begin = 0;         ///< first trial, inclusive
  int trial_end = 0;           ///< last trial, exclusive
  std::uint64_t id = 0;        ///< stable: hash(plan_hash, index)

  std::size_t cells() const { return cell_end - cell_begin; }
  int trials() const { return trial_end - trial_begin; }
};

struct ShardPlan {
  std::uint64_t spec_hash = 0;  ///< spec_fingerprint(spec)
  std::uint64_t plan_hash = 0;  ///< spec_hash folded with the policy
  std::size_t cell_count = 0;
  int trials = 0;
  std::vector<ShardSpec> shards;
};

/// Order-independent digest of everything that defines a sweep's identity:
/// seed, trials, keep_samples, fingerprint_salt, and each axis's name,
/// labels and value bits (FNV-1a 64). Two processes agree on this iff they
/// would compute the same sweep.
std::uint64_t spec_fingerprint(const SweepSpec& spec);

/// Deterministically partition the spec: contiguous cell ranges balanced to
/// within one cell, in cell order (shard 0 owns the lowest cells), so the
/// reduce is a simple in-order walk. With policy.split_trials and fewer
/// cells than max_shards, single-cell shards are further split into
/// contiguous trial ranges. Shard ids are content-derived and stable.
ShardPlan plan_shards(const SweepSpec& spec, const PlanPolicy& policy = {});

/// 16-hex-digit rendering used in file names and logs.
std::string shard_id_hex(std::uint64_t id);

/// How the engine serializes one cell's accumulator across the shard
/// boundary. `merge` is needed only for trial-split plans: it folds the
/// partial result of the NEXT trial range of the same cell into `into`.
template <typename Acc>
struct ShardCodec {
  std::function<void(serde::Writer&, const Acc&)> save;
  std::function<Acc(serde::Reader&)> load;
  std::function<void(Acc& into, Acc&& next)> merge;
};

/// Codec for the scalar engine's moments Accumulator (merge = Chan fold).
const ShardCodec<Accumulator>& accumulator_codec();

// --- shard payload ----------------------------------------------------------
// The one wire format for both checkpoints (partial: the entries completed
// so far) and results (complete): plan/shard identity, the per-cell
// serialized accumulators, and an optional obs::MetricsSnapshot so a
// killed worker's counters survive into the fleet merge.

struct ShardPayloadEntry {
  std::size_t cell = 0;
  int trial_begin = 0;
  int trial_end = 0;
  std::string acc_bytes;  ///< ShardCodec-serialized accumulator
};

struct ShardPayload {
  std::uint64_t plan_hash = 0;
  std::uint64_t shard_id = 0;
  std::size_t shard_index = 0;
  std::vector<ShardPayloadEntry> entries;  ///< ascending (cell, trial_begin)
  std::string metrics;  ///< serialized obs::MetricsSnapshot; "" = none
};

std::string encode_shard_payload(const ShardPayload& payload);
/// Throws ConfigError on malformed bytes (callers pass only payloads that
/// already passed frame validation, so malformed here means version skew
/// or a logic bug, not disk corruption).
ShardPayload decode_shard_payload(std::string_view bytes);

// --- transport seam ---------------------------------------------------------

/// One sweep's view of a shard transport. The engine drives it:
///
///   begin_sweep(plan)
///   while executes():
///     claim() -> shard index (nullopt: nothing claimable right now)
///     ... execute, checkpointing to checkpoint_path(shard) ...
///     publish_result(shard, payload)   |  release(shard) on failure
///   until try_collect() -> all payloads:  poll_wait()
///   end_sweep()
///
/// Implementations must tolerate duplicate execution of a shard (two
/// workers racing a reclaimed lease): execution is deterministic, so any
/// published result for a shard id is byte-interchangeable.
class ShardContext {
 public:
  virtual ~ShardContext() = default;

  /// Must agree across every participant of a run (hashed into the plan).
  virtual PlanPolicy policy() const = 0;

  /// A new sweep over `plan` starts. Called by every participant, in the
  /// same sweep order — transports key per-sweep state off plan.plan_hash
  /// plus an ordinal so one process can run many sweeps in sequence.
  virtual void begin_sweep(const ShardPlan& plan) = 0;

  /// Whether this participant executes shards (worker) or only reduces
  /// (coordinator).
  virtual bool executes() const = 0;

  /// Try to acquire one unexecuted shard (by plan index). nullopt when
  /// nothing is claimable *right now*; the engine then moves to collection
  /// and keeps alternating claim/poll until results are complete, so a
  /// shard reclaimed from a dead owner later is still picked up.
  virtual std::optional<std::size_t> claim() = 0;

  /// Where the executor persists mid-shard checkpoints; "" disables
  /// checkpointing for this transport.
  virtual std::string checkpoint_path(std::size_t shard) const = 0;

  /// Checkpoint cadence: persist after every N completed cells.
  virtual std::size_t checkpoint_every() const { return 1; }

  /// A heartbeat opportunity after each completed cell (lease renewal).
  virtual void note_progress(std::size_t shard) { (void)shard; }

  /// Publish the complete result payload for a claimed shard.
  virtual void publish_result(std::size_t shard, std::string payload) = 0;

  /// Give up a claimed shard without a result (executor failed); the shard
  /// becomes claimable again.
  virtual void release(std::size_t shard) { (void)shard; }

  /// All shard payloads in plan order if every result is available.
  virtual std::optional<std::vector<std::string>> try_collect() = 0;

  /// Block briefly before the next claim/collect attempt. May throw to
  /// abort a sweep that cannot complete (transport-defined timeout).
  virtual void poll_wait() = 0;

  /// Serialized obs::MetricsSnapshot recovered from a checkpoint written
  /// by a previous (killed) incarnation; the transport folds it into this
  /// process's published metrics so no recorded work is double-lost.
  virtual void note_resumed_metrics(std::string_view metrics_bytes) {
    (void)metrics_bytes;
  }

  /// The sweep's result grid is complete in this process.
  virtual void end_sweep() = 0;
};

/// Process-global ambient context (not owned). bench_util installs one when
/// --shard-dir is passed; run_sweep_reduce routes through it only when the
/// caller also supplies a ShardCodec, so codec-less sweeps keep running
/// locally in every process (deterministically identical everywhere).
ShardContext* context();
void set_context(ShardContext* ctx);

}  // namespace ihbd::runtime::shard
