#include "src/runtime/substream.h"

namespace ihbd::runtime {
namespace {

// splitmix64 finalizer: a bijective avalanche mix, the same construction
// Rng uses to expand a seed into state.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng substream(std::uint64_t seed, std::uint64_t i) {
  // Key-mix the stream index into the seed so that (seed, i) and
  // (seed, j != i) land in unrelated splitmix64 neighbourhoods, then let
  // the Rng constructor expand the combined key into xoshiro state.
  return Rng(mix64(seed ^ mix64(i * 0xA24BAED4963EE407ull)));
}

SubstreamSeq::SubstreamSeq(std::uint64_t seed) : seed_(seed), cursor_(seed) {}

Rng SubstreamSeq::at(std::uint64_t i) {
  if (i < cursor_index_) {
    cursor_ = Rng(seed_);
    cursor_index_ = 0;
  }
  for (; cursor_index_ < i; ++cursor_index_) cursor_.long_jump();
  return cursor_;
}

}  // namespace ihbd::runtime
