// Mergeable running statistics, the reduction primitive shared by the sweep
// engine (src/runtime/sweep.h) and the windowed trace replay
// (src/topo/waste.h): count/mean/M2 (Welford) plus min/max, optionally
// retaining the raw samples so Summary percentiles are available. merge()
// is associative up to floating-point rounding in the moments and exact in
// count/min/max/samples, enabling tree reductions over partial results.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "src/common/stats.h"

namespace ihbd::runtime {

class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::vector<double>& samples() const { return samples_; }

  /// Full Summary. Percentiles require retained samples; without them the
  /// percentile fields are left at the mean (documented approximation).
  Summary summary() const;

  void set_keep_samples(bool keep) { keep_samples_ = keep; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  bool keep_samples_ = true;
  std::vector<double> samples_;
};

}  // namespace ihbd::runtime
