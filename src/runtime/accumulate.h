// Mergeable running statistics, the reduction primitive shared by the sweep
// engine (src/runtime/sweep.h) and the windowed trace replay
// (src/topo/waste.h): count/mean/M2 (Welford) plus min/max, optionally
// retaining the raw samples so Summary percentiles are available. merge()
// is associative up to floating-point rounding in the moments and exact in
// count/min/max/samples, enabling tree reductions over partial results.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "src/common/stats.h"

namespace ihbd::serde {
class Writer;
class Reader;
}  // namespace ihbd::serde

namespace ihbd::runtime {

// Sample-retention semantics: `samples_` is always either empty or a
// complete record of every add (the complete-or-empty invariant), so
// summary() percentiles are never computed over a partial subset while
// count() says otherwise. merge() keeps samples only when BOTH sides hold a
// complete set and this side retains; any mismatch (e.g. a keep_samples
// accumulator merged with a moments-only one) drops retention entirely
// rather than concatenating a partial sample array. set_keep_samples
// preserves the invariant at the only place it could break: disabling
// retention discards the samples already held, and re-enabling it on an
// accumulator that has dropped values is refused (the set can never be
// completed retroactively).
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::vector<double>& samples() const { return samples_; }

  /// Full Summary. Percentiles require retained samples; without them the
  /// percentile fields are left at the mean (documented approximation).
  Summary summary() const;

  /// Enable/disable sample retention (see the class comment): disabling
  /// discards retained samples; enabling after values were dropped is a
  /// no-op (retention stays off). Returns the retention state in effect.
  bool set_keep_samples(bool keep);

  /// Binary codec (serde): bit-exact round trip of the full state —
  /// moments, min/max, retention flag and retained samples — so a shard
  /// checkpoint restores an Accumulator indistinguishable from the one
  /// that was saved. load() re-validates the complete-or-empty invariant.
  void save(serde::Writer& w) const;
  static Accumulator load(serde::Reader& r);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  bool keep_samples_ = true;
  std::vector<double> samples_;
};

}  // namespace ihbd::runtime
