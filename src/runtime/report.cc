#include "src/runtime/report.h"

#include "src/common/contracts.h"

namespace ihbd::runtime {

double reduce_mean(const Accumulator& acc) { return acc.mean(); }
double reduce_p99(const Accumulator& acc) { return acc.summary().p99; }
double reduce_max(const Accumulator& acc) { return acc.max(); }

Table to_table(const SweepResult& result, const ReportSpec& report) {
  const auto& axes = result.spec.axes;
  IHBD_EXPECTS(report.row_axis < axes.size());
  IHBD_EXPECTS(report.col_axis < axes.size());
  IHBD_EXPECTS(report.row_axis != report.col_axis);
  // Every non-row/col axis must be pinned to exactly one level.
  std::vector<std::size_t> idx(axes.size(), 0);
  std::vector<bool> pinned(axes.size(), false);
  pinned[report.row_axis] = pinned[report.col_axis] = true;
  for (const auto& [axis, level] : report.fixed) {
    IHBD_EXPECTS(axis < axes.size() && level < axes[axis].size());
    idx[axis] = level;
    pinned[axis] = true;
  }
  for (bool p : pinned) IHBD_EXPECTS(p);

  const auto reduce =
      report.reduce ? report.reduce : std::function(reduce_mean);
  const auto format = report.format
                          ? report.format
                          : std::function([](double v) { return Table::fmt(v); });

  const Axis& rows = axes[report.row_axis];
  const Axis& cols = axes[report.col_axis];

  // Drop columns that are empty on every row.
  std::vector<std::size_t> live_cols;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    bool any = false;
    for (std::size_t r = 0; r < rows.size() && !any; ++r) {
      idx[report.row_axis] = r;
      idx[report.col_axis] = c;
      any = !result.cell(idx).empty();
    }
    if (any) live_cols.push_back(c);
  }

  Table table(report.title);
  std::vector<std::string> header{report.corner.empty() ? rows.name
                                                        : report.corner};
  for (std::size_t c : live_cols) header.push_back(cols.labels[c]);
  table.set_header(header);

  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::vector<std::string> row{rows.labels[r]};
    for (std::size_t c : live_cols) {
      idx[report.row_axis] = r;
      idx[report.col_axis] = c;
      const Accumulator& acc = result.cell(idx);
      row.push_back(acc.empty() ? "-" : format(reduce(acc)));
    }
    table.add_row(row);
  }
  return table;
}

}  // namespace ihbd::runtime
