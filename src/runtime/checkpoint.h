// Durable, versioned, checksummed checkpoints for shard executors.
//
// A checkpoint file is a serde record frame (magic "IHCK", version 1)
// whose payload is an opaque byte string chosen by the caller (the sweep
// executor stores an encoded shard::ShardPayload: completed cell/trial
// ranges with their serialized accumulators, plus an obs metrics
// snapshot).
//
// Durability model — two generations, atomic rotation:
//   write(path, payload):  <path>.tmp.<pid>  --rename-->  keeps old <path>
//                          old <path>        --rename-->  <path>.1
//                          tmp               --rename-->  <path>
// A SIGKILL at any instant leaves either the old generation, the new one,
// or both — never a world with only a torn file, because renames are
// atomic and the previous generation survives until the new one is in
// place. load_with_fallback() tries <path> first and falls back to
// <path>.1 when the primary is missing or fails frame validation
// (truncated / bad checksum / wrong version), reporting what happened so
// tests and operators can see corruption being caught.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ihbd::runtime::checkpoint {

inline constexpr std::uint32_t kMagic = 0x4B434849;  // "IHCK" little-endian
inline constexpr std::uint32_t kVersion = 1;

enum class LoadStatus {
  ok,
  missing,       ///< file does not exist (first run: not an error)
  truncated,     ///< short read / torn write
  bad_magic,     ///< not a checkpoint file
  bad_version,   ///< written by an incompatible executor
  bad_checksum,  ///< payload corrupted on disk
};
const char* to_string(LoadStatus status);

/// Persist `payload` durably at `path`, rotating any existing checkpoint to
/// `<path>.1` first. Returns false on IO failure (the previous generations
/// are left untouched). Records sweepd.checkpoint_* obs metrics.
bool write(const std::string& path, std::string_view payload);

/// Validate and decode one checkpoint generation.
struct LoadResult {
  LoadStatus status = LoadStatus::missing;
  std::string payload;  ///< valid only when status == ok
};
LoadResult load_file(const std::string& path);

/// Newest valid generation of the checkpoint at `path`.
struct Recovered {
  bool valid = false;
  int generation = -1;      ///< 0 = <path>, 1 = <path>.1
  std::string payload;      ///< valid only when valid
  LoadStatus primary = LoadStatus::missing;   ///< what <path> looked like
  LoadStatus fallback = LoadStatus::missing;  ///< what <path>.1 looked like
};

/// Try `<path>`, then `<path>.1`. A corrupt primary with a valid previous
/// generation yields {valid, generation=1} — the executor resumes from the
/// older state and simply re-runs the work completed since (deterministic
/// trials make the re-execution bit-identical).
Recovered load_with_fallback(const std::string& path);

}  // namespace ihbd::runtime::checkpoint
