// The declarative sweep description — axes, spec, scenario view and the
// per-(cell, trial) RNG substream derivation — split out of sweep.h so the
// shard planner (src/runtime/shard.h) can partition a spec without pulling
// in the execution engine (thread pool, obs, accumulators).
//
// Everything here is pure data + pure functions of that data: two
// processes that hold equal SweepSpecs derive identical cell decodings,
// identical trial RNG streams and identical shard plans, which is what
// makes a sweep distributable without any coordination beyond the spec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"

namespace ihbd::runtime {

/// One scenario-grid dimension: a name plus per-level labels and optional
/// numeric values (values are NaN for purely categorical axes).
struct Axis {
  std::string name;
  std::vector<std::string> labels;
  std::vector<double> values;

  /// Numeric axis; labels default to Table-style fixed-precision rendering
  /// unless a label_fn is supplied.
  static Axis of_values(std::string name, std::vector<double> values,
                        const std::function<std::string(double)>& label_fn = {});
  /// Categorical axis (architectures, model names, ...).
  static Axis of_labels(std::string name, std::vector<std::string> labels);

  std::size_t size() const { return labels.size(); }
};

struct SweepSpec {
  std::uint64_t seed = 0;
  int trials = 1;            ///< Monte-Carlo trials per grid cell.
  std::vector<Axis> axes;    ///< row-major: last axis varies fastest.
  bool keep_samples = true;  ///< retain per-trial samples (percentiles).
  /// Folded into shard::spec_fingerprint alongside the fields above. The
  /// axes name a grid, not the data behind it — two sweeps over the same
  /// grid but different inputs (e.g. a full vs --quick fault trace) would
  /// otherwise hash identically and could adopt each other's shard results
  /// in a shared run directory. Callers salt with a digest of the inputs
  /// (replay_trace_grid hashes the trace). Purely an identity: does not
  /// perturb RNG streams or results.
  std::uint64_t fingerprint_salt = 0;

  std::size_t cell_count() const;
  /// Index of the axis with the given name; aborts if absent.
  std::size_t axis_index(std::string_view name) const;
};

/// View of one (cell, trial) handed to the trial function.
class Scenario {
 public:
  Scenario(const SweepSpec& spec, std::size_t cell,
           const std::vector<std::size_t>& idx, int trial)
      : spec_(&spec), cell_(cell), idx_(&idx), trial_(trial) {}

  std::size_t cell() const { return cell_; }
  int trial() const { return trial_; }
  const SweepSpec& spec() const { return *spec_; }
  /// Per-axis level index / numeric value / label.
  std::size_t index(std::size_t axis) const { return (*idx_)[axis]; }
  double value(std::size_t axis) const {
    return spec_->axes[axis].values[index(axis)];
  }
  const std::string& label(std::size_t axis) const {
    return spec_->axes[axis].labels[index(axis)];
  }

 private:
  const SweepSpec* spec_;
  std::size_t cell_;
  const std::vector<std::size_t>* idx_;
  int trial_;
};

/// Row-major flat index of a per-axis level tuple.
std::size_t flat_cell_index(const SweepSpec& spec,
                            const std::vector<std::size_t>& idx);

/// The RNG substream of one (cell, trial) pair: O(1), order-independent,
/// shared by the scalar and generic engines (and usable by callers that
/// need to re-materialize a trial's stream, e.g. for resume or debugging).
/// This is why a shard checkpoint needs no RNG state beyond the (cell,
/// trial-range) cursor: every pending trial's stream is re-derived here.
Rng trial_rng(const SweepSpec& spec, std::size_t cell, int trial);

namespace detail {
/// Abort on malformed specs (no axes, empty axis, label/value mismatch).
void validate_spec(const SweepSpec& spec);
/// Decode a row-major flat cell index into per-axis levels.
std::vector<std::size_t> decode_cell(const SweepSpec& spec, std::size_t cell);
}  // namespace detail

}  // namespace ihbd::runtime
