#include "src/runtime/accumulate.h"

#include <cmath>

#include "src/common/error.h"
#include "src/common/serde.h"

namespace ihbd::runtime {

void Accumulator::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
  if (keep_samples_) samples_.push_back(x);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  // Samples survive a merge only when both sides retained a complete set;
  // otherwise the result degrades to moments-only rather than silently
  // reporting percentiles over a partial sample.
  const bool keep = keep_samples_ && samples_.size() == count_ &&
                    other.samples_.size() == other.count_;
  if (count_ == 0) {
    const bool my_keep = keep_samples_;
    *this = other;
    keep_samples_ = my_keep;
  } else {
    // Chan et al. pairwise moment combination.
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    if (keep)
      samples_.insert(samples_.end(), other.samples_.begin(),
                      other.samples_.end());
  }
  if (!keep) {
    samples_.clear();
    keep_samples_ = false;
  }
}

bool Accumulator::set_keep_samples(bool keep) {
  if (!keep) {
    // Keep the complete-or-empty invariant: a sample array frozen short of
    // count_ would feed summary() percentiles over a partial subset.
    samples_.clear();
    samples_.shrink_to_fit();
    keep_samples_ = false;
  } else if (samples_.size() == count_) {
    keep_samples_ = true;
  }
  // else: values were already dropped; the set can never be complete again,
  // so retention stays off.
  return keep_samples_;
}

void Accumulator::save(serde::Writer& w) const {
  w.u64(count_);
  w.f64(mean_);
  w.f64(m2_);
  w.f64(min_);
  w.f64(max_);
  w.u8(keep_samples_ ? 1 : 0);
  w.f64_vec(samples_);
}

Accumulator Accumulator::load(serde::Reader& r) {
  Accumulator acc;
  acc.count_ = static_cast<std::size_t>(r.u64());
  acc.mean_ = r.f64();
  acc.m2_ = r.f64();
  acc.min_ = r.f64();
  acc.max_ = r.f64();
  acc.keep_samples_ = r.u8() != 0;
  acc.samples_ = r.f64_vec();
  if (!acc.samples_.empty() && acc.samples_.size() != acc.count_) {
    throw ConfigError(
        "Accumulator::load: retained samples are neither complete nor "
        "empty");
  }
  return acc;
}

double Accumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Summary Accumulator::summary() const {
  // The complete-or-empty invariant makes the size check redundant, but it
  // is cheap and keeps a partial set (should one ever slip in) from
  // masquerading as the full sample.
  if (!samples_.empty() && samples_.size() == count_)
    return summarize(samples_);
  Summary s;
  s.count = count_;
  s.mean = mean();
  s.stddev = stddev();
  s.min = min();
  s.max = max();
  s.p50 = s.p90 = s.p99 = mean();
  return s;
}

}  // namespace ihbd::runtime
