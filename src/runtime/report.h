// Report layer: project a SweepResult onto the repo's existing Table/CSV
// output path. A report picks one axis for rows and one for columns, fixes
// every other axis at a chosen level, reduces each cell's Accumulator to a
// scalar (mean by default) and formats it (Table::fmt by default).
//
// Cells left empty by NaN-returning trials render as "-"; columns that are
// empty for every row (e.g. NVL-36 at TP-64) are dropped, matching how the
// paper omits unsupported architectures from its plots.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/table.h"
#include "src/runtime/sweep.h"

namespace ihbd::runtime {

struct ReportSpec {
  std::string title;
  std::size_t row_axis = 0;
  std::size_t col_axis = 1;
  /// Levels for every axis that is neither row nor col: (axis, level).
  std::vector<std::pair<std::size_t, std::size_t>> fixed;
  /// Accumulator -> scalar; default mean().
  std::function<double(const Accumulator&)> reduce;
  /// Scalar -> cell text; default Table::fmt.
  std::function<std::string(double)> format;
  /// Header of the row-label column; default: the row axis name.
  std::string corner;
};

/// Render one 2-D slice of the sweep as a Table.
Table to_table(const SweepResult& result, const ReportSpec& report);

/// Convenience reducers for ReportSpec::reduce.
double reduce_mean(const Accumulator& acc);
double reduce_p99(const Accumulator& acc);
double reduce_max(const Accumulator& acc);

}  // namespace ihbd::runtime
