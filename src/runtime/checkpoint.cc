#include "src/runtime/checkpoint.h"

#include <chrono>
#include <filesystem>
#include <optional>

#include <unistd.h>

#include "src/common/serde.h"
#include "src/obs/metrics.h"

namespace ihbd::runtime::checkpoint {

namespace {

namespace fs = std::filesystem;

struct CheckpointObs {
  obs::Counter& writes;
  obs::Counter& bytes;
  obs::Counter& write_ns;
  obs::Counter& loads;
  obs::Counter& fallbacks;
  obs::Counter& corrupt;
};

CheckpointObs& ckpt_obs() {
  static CheckpointObs o{obs::counter("sweepd.checkpoint_writes"),
                         obs::counter("sweepd.checkpoint_bytes"),
                         obs::counter("sweepd.checkpoint_write_ns"),
                         obs::counter("sweepd.checkpoint_loads"),
                         obs::counter("sweepd.checkpoint_fallbacks"),
                         obs::counter("sweepd.checkpoint_corrupt")};
  return o;
}

LoadStatus from_frame_status(serde::FrameStatus status) {
  switch (status) {
    case serde::FrameStatus::ok: return LoadStatus::ok;
    case serde::FrameStatus::truncated: return LoadStatus::truncated;
    case serde::FrameStatus::bad_magic: return LoadStatus::bad_magic;
    case serde::FrameStatus::bad_version: return LoadStatus::bad_version;
    case serde::FrameStatus::bad_checksum: return LoadStatus::bad_checksum;
  }
  return LoadStatus::truncated;
}

}  // namespace

const char* to_string(LoadStatus status) {
  switch (status) {
    case LoadStatus::ok: return "ok";
    case LoadStatus::missing: return "missing";
    case LoadStatus::truncated: return "truncated";
    case LoadStatus::bad_magic: return "bad-magic";
    case LoadStatus::bad_version: return "bad-version";
    case LoadStatus::bad_checksum: return "bad-checksum";
  }
  return "unknown";
}

bool write(const std::string& path, std::string_view payload) {
  const bool obs_on = obs::enabled();
  const auto t0 = obs_on ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  const std::string framed = serde::frame_record(kMagic, kVersion, payload);

  // Stage the new generation under a per-process unique name so two owners
  // racing after a lease reclaim never share a temp file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  {
    std::error_code ec;
    fs::remove(tmp, ec);
  }
  if (!serde::write_file_atomic(tmp, framed)) return false;

  std::error_code ec;
  if (fs::exists(path, ec)) {
    fs::rename(path, path + ".1", ec);
    if (ec) {
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }

  if (obs_on) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    CheckpointObs& o = ckpt_obs();
    o.writes.add(1);
    o.bytes.add(framed.size());
    o.write_ns.add(static_cast<std::uint64_t>(ns));
  }
  return true;
}

LoadResult load_file(const std::string& path) {
  LoadResult result;
  const std::optional<std::string> bytes = serde::read_file(path);
  if (!bytes.has_value()) {
    result.status = LoadStatus::missing;
    return result;
  }
  std::string_view payload;
  const serde::FrameStatus frame =
      serde::parse_record(*bytes, kMagic, kVersion, &payload);
  result.status = from_frame_status(frame);
  if (result.status == LoadStatus::ok) {
    result.payload.assign(payload);
  } else if (obs::enabled()) {
    ckpt_obs().corrupt.add(1);
  }
  return result;
}

Recovered load_with_fallback(const std::string& path) {
  Recovered rec;
  LoadResult primary = load_file(path);
  rec.primary = primary.status;
  if (primary.status == LoadStatus::ok) {
    rec.valid = true;
    rec.generation = 0;
    rec.payload = std::move(primary.payload);
    if (obs::enabled()) ckpt_obs().loads.add(1);
    return rec;
  }
  LoadResult fallback = load_file(path + ".1");
  rec.fallback = fallback.status;
  if (fallback.status == LoadStatus::ok) {
    rec.valid = true;
    rec.generation = 1;
    rec.payload = std::move(fallback.payload);
    if (obs::enabled()) {
      CheckpointObs& o = ckpt_obs();
      o.loads.add(1);
      o.fallbacks.add(1);
    }
  }
  return rec;
}

}  // namespace ihbd::runtime::checkpoint
